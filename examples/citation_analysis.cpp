// Prior-art analysis on a patent citation network — the PATENT workload.
//
// Generates a family-structured citation DAG, then demonstrates the rest
// of the library surface beyond all-pairs OIP:
//  * single-pair SimRank for an on-demand query (no O(n²) computation);
//  * Monte-Carlo estimation as a scalable approximation, compared against
//    exact scores;
//  * P-Rank, the in+out-link extension the paper mentions, which on
//    citation data also credits patents citing the same prior art.
#include <cmath>
#include <cstdio>

#include "simrank/core/engine.h"
#include "simrank/extra/montecarlo.h"
#include "simrank/extra/prank.h"
#include "simrank/extra/single_pair.h"
#include "simrank/extra/topk.h"
#include "simrank/gen/generators.h"

int main() {
  simrank::gen::CitationGraphParams params;
  params.n = 1200;
  params.refs_per_node = 3;
  params.seed = 11;
  auto graph = simrank::gen::CitationGraph(params);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("citation network: %u patents, %llu citations (acyclic)\n\n",
              graph->n(), static_cast<unsigned long long>(graph->m()));

  // Exact all-pairs scores as the reference.
  simrank::EngineOptions options;
  options.algorithm = simrank::Algorithm::kOip;
  options.simrank.damping = 0.6;
  options.simrank.epsilon = 1e-3;
  auto exact = simrank::ComputeSimRank(*graph, options);
  if (!exact.ok()) return 1;

  // Pick the most-cited patent and its strongest sibling.
  simrank::VertexId hot = 0;
  for (simrank::VertexId v = 1; v < graph->n(); ++v) {
    if (graph->InDegree(v) > graph->InDegree(hot)) hot = v;
  }
  auto top = simrank::TopKSimilar(exact->scores, hot, 3);
  std::printf("patent %u (%u citers); most similar prior art:\n", hot,
              graph->InDegree(hot));
  for (const auto& sv : top) {
    std::printf("  patent %-5u  s = %.4f\n", sv.vertex, sv.score);
  }

  // Single-pair query: same value without the all-pairs run.
  if (!top.empty()) {
    simrank::SimRankOptions pair_options = options.simrank;
    pair_options.iterations = exact->stats.iterations;
    simrank::SinglePairStats pair_stats;
    auto pair = simrank::SinglePairSimRank(*graph, hot, top[0].vertex,
                                           pair_options, &pair_stats);
    if (pair.ok()) {
      std::printf("\nsingle-pair query s(%u, %u) = %.4f (all-pairs says "
                  "%.4f; %llu subproblems)\n",
                  hot, top[0].vertex, *pair, top[0].score,
                  static_cast<unsigned long long>(pair_stats.subproblems));
    }
  }

  // Monte-Carlo estimate of the same row.
  simrank::MonteCarloOptions mc_options;
  mc_options.num_fingerprints = 512;
  mc_options.damping = 0.6;
  simrank::MonteCarloSimRank mc(*graph, mc_options);
  double worst = 0.0;
  for (const auto& sv : top) {
    worst = std::max(worst,
                     std::abs(mc.EstimatePair(hot, sv.vertex) - sv.score));
  }
  std::printf("Monte-Carlo (512 fingerprints) max error on those pairs: "
              "%.3f\n",
              worst);

  // P-Rank: also reward citing the same prior art (out-links).
  simrank::PRankOptions prank_options;
  prank_options.lambda = 0.5;
  prank_options.simrank = options.simrank;
  auto prank = simrank::PRank(*graph, prank_options);
  if (prank.ok()) {
    auto prank_top = simrank::TopKSimilar(*prank, hot, 3);
    std::printf("\nP-Rank (lambda = 0.5) view of patent %u:\n", hot);
    for (const auto& sv : prank_top) {
      std::printf("  patent %-5u  p = %.4f\n", sv.vertex, sv.score);
    }
  }
  return 0;
}
