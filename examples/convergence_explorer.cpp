// Convergence explorer — Section IV of the paper, interactively.
//
// Shows, for a user-adjustable damping factor (argv[1], default 0.8), how
// many iterations the conventional geometric model versus the differential
// exponential model need across accuracy targets, both a-priori (bounds,
// Lambert-W / log estimates) and measured on a real graph; then verifies
// that the differential scores preserve the conventional ranking.
#include <cstdio>
#include <cstdlib>

#include "simrank/benchlib/convergence.h"
#include "simrank/common/string_util.h"
#include "simrank/common/table_printer.h"
#include "simrank/core/bounds.h"
#include "simrank/core/engine.h"
#include "simrank/eval/rank_corr.h"
#include "simrank/gen/generators.h"

int main(int argc, char** argv) {
  double damping = 0.8;
  if (argc > 1) {
    damping = std::atof(argv[1]);
    if (damping <= 0.0 || damping >= 1.0) {
      std::fprintf(stderr, "usage: %s [damping in (0,1)]\n", argv[0]);
      return 1;
    }
  }

  std::printf("Iteration counts for damping C = %.2f\n", damping);
  simrank::TablePrinter table({"eps", "conventional bound",
                               "differential exact", "Lambert-W est.",
                               "log est."});
  for (double eps : {1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-8}) {
    table.AddRow(
        {simrank::StrFormat("%.0e", eps),
         simrank::StrFormat(
             "%u", simrank::ConventionalIterationsForAccuracy(damping, eps)),
         simrank::StrFormat(
             "%u", simrank::DifferentialIterationsExact(damping, eps)),
         simrank::StrFormat(
             "%u", simrank::DifferentialIterationsLambertW(damping, eps)),
         simrank::StrFormat(
             "%u", simrank::DifferentialIterationsLogEstimate(damping, eps))});
  }
  table.Print();

  // Measure on a mid-size co-authorship graph.
  simrank::gen::CoauthorGraphParams params;
  params.num_authors = 800;
  params.num_papers = 360;
  params.seed = 3;
  auto graph = simrank::gen::CoauthorGraph(params);
  if (!graph.ok()) return 1;
  std::printf("\nmeasured on a %u-vertex co-authorship graph, eps = 1e-4:\n",
              graph->n());
  auto conventional = simrank::bench::MeasureConventionalConvergence(
      *graph, damping, 1e-4, 150);
  auto differential = simrank::bench::MeasureDifferentialConvergence(
      *graph, damping, 1e-4, 150);
  std::printf("  conventional: %u iterations, differential: %u iterations "
              "(%.1fx fewer)\n",
              conventional.iterations, differential.iterations,
              static_cast<double>(conventional.iterations) /
                  differential.iterations);

  // Rank preservation check (Spearman over one query row).
  simrank::EngineOptions options;
  options.simrank.damping = damping;
  options.simrank.epsilon = 1e-4;
  options.algorithm = simrank::Algorithm::kOip;
  auto sr = simrank::ComputeSimRank(*graph, options);
  options.algorithm = simrank::Algorithm::kOipDsr;
  auto dsr = simrank::ComputeSimRank(*graph, options);
  if (!sr.ok() || !dsr.ok()) return 1;
  std::vector<double> sr_row(graph->n()), dsr_row(graph->n());
  for (uint32_t v = 0; v < graph->n(); ++v) {
    sr_row[v] = sr->scores(0, v);
    dsr_row[v] = dsr->scores(0, v);
  }
  std::printf("  rank preservation vs conventional (query row 0): "
              "Spearman rho = %.3f, Kendall tau = %.3f\n",
              simrank::SpearmanRho(sr_row, dsr_row),
              simrank::KendallTau(sr_row, dsr_row));
  return 0;
}
