// Collaborator recommendation on a co-authorship network — the scenario
// behind the paper's Fig. 6g/6h experiments.
//
// Generates a DBLP-style co-authorship graph, computes SimRank with the
// fast differential model (OIP-DSR), and recommends potential
// collaborators for the most prolific author: highly similar authors the
// author has *not* yet published with. Also cross-checks the top-10
// against conventional SimRank to show the differential model preserves
// the ranking.
#include <cstdio>

#include "simrank/core/engine.h"
#include "simrank/eval/topk_metrics.h"
#include "simrank/extra/topk.h"
#include "simrank/gen/generators.h"

int main() {
  simrank::gen::CoauthorGraphParams params;
  params.num_authors = 1200;
  params.num_papers = 540;
  params.num_communities = 30;
  params.seed = 7;
  auto graph = simrank::gen::CoauthorGraph(params);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("co-authorship network: %u authors, %llu edges\n",
              graph->n(), static_cast<unsigned long long>(graph->m()));

  // The most prolific author = highest degree.
  simrank::VertexId star = 0;
  for (simrank::VertexId v = 1; v < graph->n(); ++v) {
    if (graph->InDegree(v) > graph->InDegree(star)) star = v;
  }
  std::printf("query: author %u (%u collaborators)\n\n", star,
              graph->InDegree(star));

  simrank::EngineOptions options;
  options.algorithm = simrank::Algorithm::kOipDsr;
  options.simrank.damping = 0.6;
  options.simrank.epsilon = 1e-3;
  auto dsr = simrank::ComputeSimRank(*graph, options);
  options.algorithm = simrank::Algorithm::kOip;
  auto sr = simrank::ComputeSimRank(*graph, options);
  if (!dsr.ok() || !sr.ok()) {
    std::fprintf(stderr, "computation failed\n");
    return 1;
  }
  std::printf("OIP-DSR: %u iterations, %.0f ms   |   OIP-SR: %u "
              "iterations, %.0f ms\n\n",
              dsr->stats.iterations, dsr->stats.seconds_total() * 1e3,
              sr->stats.iterations, sr->stats.seconds_total() * 1e3);

  // Recommendations: similar authors who are not yet collaborators.
  std::printf("top collaborator recommendations for author %u:\n", star);
  int shown = 0;
  for (const auto& sv : simrank::TopKSimilar(dsr->scores, star, 50)) {
    if (graph->HasEdge(star, sv.vertex)) continue;  // already collaborate
    std::printf("  author %-5u  similarity %.4f\n", sv.vertex, sv.score);
    if (++shown == 5) break;
  }

  // Ranking agreement between the two models (the Fig. 6g question).
  auto dsr_top = simrank::TopKIds(dsr->scores, star, 10);
  auto sr_top = simrank::TopKIds(sr->scores, star, 10);
  std::printf("\ntop-10 agreement with conventional SimRank: overlap %.2f, "
              "inversions %llu\n",
              simrank::TopKOverlap(dsr_top, sr_top),
              static_cast<unsigned long long>(
                  simrank::RankingInversions(dsr_top, sr_top)));
  return 0;
}
