// Quickstart: build a small graph, compute SimRank with OIP-SR, query the
// most similar vertices.
//
//   $ ./build/examples/quickstart
//
// The graph is the paper's running example (Fig. 1a): a citation network
// of nine papers a..i. Expected output includes s(a, c) ≈ 0.21 — papers a
// and c are similar because both are cited by b, d and g.
#include <cstdio>

#include "simrank/core/engine.h"
#include "simrank/extra/topk.h"
#include "simrank/graph/digraph.h"

int main() {
  // --- 1. Build a graph. Vertices are dense integers; AddEdge(u, v) means
  // "u links to / cites v".
  const char* names = "abcdefghi";
  simrank::DiGraph::Builder builder(9);
  auto edge = [&builder](char src, char dst) {
    builder.AddEdge(static_cast<simrank::VertexId>(src - 'a'),
                    static_cast<simrank::VertexId>(dst - 'a'));
  };
  // The Fig. 1a citation network.
  edge('b', 'a'); edge('g', 'a');                    // I(a) = {b, g}
  edge('f', 'e'); edge('g', 'e');                    // I(e) = {f, g}
  edge('b', 'h'); edge('d', 'h');                    // I(h) = {b, d}
  edge('b', 'c'); edge('d', 'c'); edge('g', 'c');    // I(c) = {b, d, g}
  edge('e', 'b'); edge('f', 'b'); edge('g', 'b'); edge('i', 'b');
  edge('a', 'd'); edge('e', 'd'); edge('f', 'd'); edge('i', 'd');
  simrank::DiGraph graph = std::move(builder).Build();

  // --- 2. Configure and run. OIP-SR is the paper's partial-sums-sharing
  // algorithm; kOipDsr would use the fast-converging differential model.
  simrank::EngineOptions options;
  options.algorithm = simrank::Algorithm::kOip;
  options.simrank.damping = 0.6;   // the paper's default C
  options.simrank.epsilon = 1e-4;  // iterations derived automatically
  auto run = simrank::ComputeSimRank(graph, options);
  if (!run.ok()) {
    std::fprintf(stderr, "SimRank failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }

  // --- 3. Read scores.
  std::printf("Computed %u iterations in %.2f ms (%llu additions)\n\n",
              run->stats.iterations, run->stats.seconds_total() * 1e3,
              static_cast<unsigned long long>(run->stats.ops.total_adds()));
  std::printf("s(a, c) = %.4f   (both cited by b, d, g)\n",
              run->scores(0, 2));
  std::printf("s(b, d) = %.4f   (share citers e, f, i)\n",
              run->scores(1, 3));
  std::printf("s(a, f) = %.4f   (f has no citers: a-priori zero)\n\n",
              run->scores(0, 5));

  // --- 4. Top-k queries.
  for (char q : {'a', 'b'}) {
    auto top = simrank::TopKSimilar(run->scores,
                                    static_cast<simrank::VertexId>(q - 'a'),
                                    3);
    std::printf("most similar to '%c':", q);
    for (const auto& sv : top) {
      std::printf("  %c (%.4f)", names[sv.vertex], sv.score);
    }
    std::printf("\n");
  }
  return 0;
}
