// Similar-page detection on a web graph — the BERKSTAN-style workload of
// the paper's introduction (hypertext classification, related-page
// search).
//
// Generates a copying-model web graph, computes SimRank with OIP-SR, and
// showcases the partial-sums-sharing machinery itself: the DMST, its
// share ratio, and how the sharing plan translates into saved additions
// versus psum-SR on the same input. Finishes with a related-page query.
#include <cstdio>

#include "simrank/core/dmst.h"
#include "simrank/core/oip.h"
#include "simrank/core/psum.h"
#include "simrank/extra/topk.h"
#include "simrank/gen/generators.h"

int main() {
  simrank::gen::WebGraphParams params;
  params.n = 1500;
  params.out_degree = 4;
  params.copy_prob = 0.85;
  params.in_copy_prob = 0.8;
  params.seed = 42;
  auto graph = simrank::gen::WebGraph(params);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("web graph: %u pages, %llu links, avg in-degree %.1f\n\n",
              graph->n(), static_cast<unsigned long long>(graph->m()),
              graph->AverageInDegree());

  // Inspect the sharing plan before running (the library exposes it).
  auto mst = simrank::DmstReduce(*graph);
  if (!mst.ok()) return 1;
  std::printf("DMST-Reduce: %u distinct in-neighbour sets, share ratio "
              "%.2f\n",
              mst->sets.num_sets, mst->share_ratio());
  std::printf("  plan cost %llu additions/column vs %llu without sharing\n\n",
              static_cast<unsigned long long>(mst->total_cost),
              static_cast<unsigned long long>(mst->cost_without_sharing));

  simrank::SimRankOptions options;
  options.damping = 0.6;
  options.epsilon = 1e-3;
  simrank::KernelStats oip_stats, psum_stats;
  auto oip = simrank::OipSimRankWithMst(*graph, *mst, options, &oip_stats);
  auto psum = simrank::PsumSimRank(*graph, options, &psum_stats);
  if (!oip.ok() || !psum.ok()) return 1;
  std::printf("OIP-SR : %.0f ms, %llu additions\n",
              oip_stats.seconds_total() * 1e3,
              static_cast<unsigned long long>(oip_stats.ops.total_adds()));
  std::printf("psum-SR: %.0f ms, %llu additions  (%.2fx more)\n\n",
              psum_stats.seconds_total() * 1e3,
              static_cast<unsigned long long>(psum_stats.ops.total_adds()),
              static_cast<double>(psum_stats.ops.total_adds()) /
                  static_cast<double>(oip_stats.ops.total_adds()));

  // Related-page query for a mid-popularity page.
  simrank::VertexId query = 0;
  for (simrank::VertexId v = 0; v < graph->n(); ++v) {
    if (graph->InDegree(v) >= 8) {
      query = v;
      break;
    }
  }
  std::printf("pages most similar to page %u:\n", query);
  for (const auto& sv : simrank::TopKSimilar(*oip, query, 5)) {
    std::printf("  page %-5u  s = %.4f\n", sv.vertex, sv.score);
  }
  return 0;
}
