#include "simrank/eval/ndcg.h"

#include <algorithm>
#include <cmath>

#include "simrank/common/macros.h"

namespace simrank {

namespace {

double DcgAtP(const std::vector<double>& relevance, uint32_t p) {
  double dcg = 0.0;
  const uint32_t limit =
      std::min<uint32_t>(p, static_cast<uint32_t>(relevance.size()));
  for (uint32_t i = 0; i < limit; ++i) {
    dcg += (std::exp2(relevance[i]) - 1.0) /
           std::log2(static_cast<double>(i) + 2.0);
  }
  return dcg;
}

}  // namespace

double NdcgAtP(const std::vector<double>& relevance, uint32_t p) {
  const double dcg = DcgAtP(relevance, p);
  std::vector<double> ideal = relevance;
  std::sort(ideal.begin(), ideal.end(), std::greater<double>());
  const double idcg = DcgAtP(ideal, p);
  return idcg <= 0.0 ? 0.0 : dcg / idcg;
}

double NdcgForRanking(const std::vector<VertexId>& ranking,
                      const std::vector<double>& ground_truth_scores,
                      uint32_t p, uint32_t levels) {
  OIPSIM_CHECK_GT(levels, 0u);
  // Grade the pool: min-max scale the ground-truth scores of the ranked
  // items onto 0..levels integer relevance, like the evaluator judgments
  // the paper aggregates.
  double lo = 0.0, hi = 0.0;
  bool first = true;
  for (VertexId v : ranking) {
    OIPSIM_CHECK_LT(v, ground_truth_scores.size());
    const double s = ground_truth_scores[v];
    if (first || s < lo) lo = first ? s : std::min(lo, s);
    if (first || s > hi) hi = first ? s : std::max(hi, s);
    first = false;
  }
  std::vector<double> relevance;
  relevance.reserve(ranking.size());
  const double span = hi - lo;
  for (VertexId v : ranking) {
    const double scaled =
        span <= 0.0 ? 0.0
                    : (ground_truth_scores[v] - lo) / span *
                          static_cast<double>(levels);
    relevance.push_back(std::round(scaled));
  }
  return NdcgAtP(relevance, p);
}

}  // namespace simrank
