#include "simrank/eval/topk_metrics.h"

#include <algorithm>
#include <unordered_map>

namespace simrank {

double TopKOverlap(const std::vector<VertexId>& a,
                   const std::vector<VertexId>& b) {
  if (a.empty() || b.empty()) return 0.0;
  std::unordered_map<VertexId, bool> in_a;
  in_a.reserve(a.size());
  for (VertexId v : a) in_a[v] = true;
  size_t common = 0;
  for (VertexId v : b) {
    if (in_a.count(v) > 0) ++common;
  }
  return static_cast<double>(common) /
         static_cast<double>(std::max(a.size(), b.size()));
}

uint64_t RankingInversions(const std::vector<VertexId>& a,
                           const std::vector<VertexId>& b) {
  // Restrict to common items, then count pairs ordered differently —
  // equivalently the number of adjacent swaps bubble sort would need.
  std::unordered_map<VertexId, uint32_t> pos_b;
  pos_b.reserve(b.size());
  for (uint32_t i = 0; i < b.size(); ++i) pos_b[b[i]] = i;
  std::vector<uint32_t> mapped;
  mapped.reserve(a.size());
  for (VertexId v : a) {
    auto it = pos_b.find(v);
    if (it != pos_b.end()) mapped.push_back(it->second);
  }
  uint64_t inversions = 0;
  for (size_t i = 0; i < mapped.size(); ++i) {
    for (size_t j = i + 1; j < mapped.size(); ++j) {
      if (mapped[i] > mapped[j]) ++inversions;
    }
  }
  return inversions;
}

std::vector<uint32_t> DisagreeingPositions(const std::vector<VertexId>& a,
                                           const std::vector<VertexId>& b) {
  std::vector<uint32_t> positions;
  const size_t limit = std::min(a.size(), b.size());
  for (uint32_t i = 0; i < limit; ++i) {
    if (a[i] != b[i]) positions.push_back(i);
  }
  return positions;
}

}  // namespace simrank
