// Rank-correlation measures between two score vectors: Kendall's tau-b and
// Spearman's rho. Used to quantify how well the differential model
// preserves the relative order of conventional SimRank (Exp-4).
#ifndef OIPSIM_SIMRANK_EVAL_RANK_CORR_H_
#define OIPSIM_SIMRANK_EVAL_RANK_CORR_H_

#include <vector>

namespace simrank {

/// Kendall's tau-b (tie-corrected) between paired samples. O(n²); intended
/// for rankings up to a few thousand items. Returns 0 when degenerate
/// (all-tied input).
double KendallTau(const std::vector<double>& x, const std::vector<double>& y);

/// Spearman's rho: Pearson correlation of the (average-tie) ranks.
double SpearmanRho(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_EVAL_RANK_CORR_H_
