#include "simrank/eval/rank_corr.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "simrank/common/macros.h"

namespace simrank {

double KendallTau(const std::vector<double>& x,
                  const std::vector<double>& y) {
  OIPSIM_CHECK_EQ(x.size(), y.size());
  const size_t n = x.size();
  if (n < 2) return 0.0;
  int64_t concordant = 0, discordant = 0;
  int64_t ties_x = 0, ties_y = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      if (dx == 0.0 && dy == 0.0) continue;
      if (dx == 0.0) {
        ++ties_x;
      } else if (dy == 0.0) {
        ++ties_y;
      } else if ((dx > 0) == (dy > 0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double n0 = static_cast<double>(n) * (n - 1) / 2.0;
  const double denom = std::sqrt((n0 - ties_x) * (n0 - ties_y));
  if (denom <= 0.0) return 0.0;
  return (concordant - discordant) / denom;
}

namespace {

/// Average ranks with tie handling (1-based midranks).
std::vector<double> MidRanks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&values](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double mid = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = mid;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double SpearmanRho(const std::vector<double>& x,
                   const std::vector<double>& y) {
  OIPSIM_CHECK_EQ(x.size(), y.size());
  const size_t n = x.size();
  if (n < 2) return 0.0;
  std::vector<double> rx = MidRanks(x);
  std::vector<double> ry = MidRanks(y);
  double mean = (static_cast<double>(n) + 1.0) / 2.0;
  double cov = 0.0, var_x = 0.0, var_y = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = rx[i] - mean;
    const double dy = ry[i] - mean;
    cov += dx * dy;
    var_x += dx * dx;
    var_y += dy * dy;
  }
  const double denom = std::sqrt(var_x * var_y);
  return denom <= 0.0 ? 0.0 : cov / denom;
}

}  // namespace simrank
