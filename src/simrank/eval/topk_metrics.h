// Metrics comparing two top-k rankings (Exp-4, Fig. 6h: "the results of
// OIP-DSR merely differ in one inversion at two adjacent positions").
#ifndef OIPSIM_SIMRANK_EVAL_TOPK_METRICS_H_
#define OIPSIM_SIMRANK_EVAL_TOPK_METRICS_H_

#include <cstdint>
#include <vector>

#include "simrank/graph/digraph.h"

namespace simrank {

/// |A ∩ B| / k overlap of two top-k id lists.
double TopKOverlap(const std::vector<VertexId>& a,
                   const std::vector<VertexId>& b);

/// Number of *adjacent transpositions* needed to turn ranking `a` into
/// ranking `b`, counted over their common items (Kendall distance
/// restricted to the intersection). 0 means identical relative order.
uint64_t RankingInversions(const std::vector<VertexId>& a,
                           const std::vector<VertexId>& b);

/// Positions at which the two rankings disagree (for reporting "#23/#24
/// swapped"-style findings). Compares position by position over the
/// shorter length.
std::vector<uint32_t> DisagreeingPositions(const std::vector<VertexId>& a,
                                           const std::vector<VertexId>& b);

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_EVAL_TOPK_METRICS_H_
