// Normalized Discounted Cumulative Gain — the ranking-quality metric of
// the paper's Exp-4 (Fig. 6g):
//   NDCG_p = (1/IDCG_p) · Σ_{i=1..p} (2^{rel_i} - 1) / log2(1 + i),
// where rel_i is the graded relevance of the item at rank i and IDCG_p
// normalises by the ideal ordering.
#ifndef OIPSIM_SIMRANK_EVAL_NDCG_H_
#define OIPSIM_SIMRANK_EVAL_NDCG_H_

#include <cstdint>
#include <vector>

#include "simrank/graph/digraph.h"

namespace simrank {

/// NDCG at position p for a ranked list whose i-th element carries graded
/// relevance `relevance[i]`. Returns 1.0 for an ideal ranking, 0.0 when
/// every relevance is zero.
double NdcgAtP(const std::vector<double>& relevance, uint32_t p);

/// Convenience for SimRank experiments: `ranking` is a candidate's ranked
/// vertex list; `ground_truth_scores[v]` is the reference relevance of
/// vertex v (e.g. converged conventional SimRank similarity to the query).
/// Relevances are min-max scaled to [0, levels] and rounded to integer
/// grades, mirroring the paper's human 0..levels judgments, then NDCG@p is
/// computed against the ideal ordering of the *same* graded pool.
double NdcgForRanking(const std::vector<VertexId>& ranking,
                      const std::vector<double>& ground_truth_scores,
                      uint32_t p, uint32_t levels = 4);

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_EVAL_NDCG_H_
