// mtx-SR: SVD-based matrix SimRank (Li et al., EDBT'10) — the paper's
// low-rank baseline.
//
// From the power-series form S = (1-C)·Σ C^i·Qⁱ(Qᵀ)ⁱ (Eq. 12) and a
// truncated SVD Q ≈ U·Σ·Vᵀ of rank r:
//   Qⁱ = U·Aʳ^{i-1}·Σ·Vᵀ    with A = Σ·Vᵀ·U (r x r),
//   Qⁱ(Qᵀ)ⁱ = U·A^{i-1}·Σ²·(A^{i-1})ᵀ·Uᵀ   (V has orthonormal columns),
// so S ≈ (1-C)·(Iₙ + U·W·Uᵀ) with W = Σ_{i>=1} C^i·A^{i-1}·Σ²·(A^{i-1})ᵀ
// accumulated by r x r iterations. Exact on graphs whose transition matrix
// has rank <= r; an approximation elsewhere — which is why the paper only
// runs it on the low-rank DBLP graphs, and why its dense U·W·Uᵀ final
// product destroys sparsity (the memory blow-up of Fig. 6d).
#ifndef OIPSIM_SIMRANK_CORE_MTX_SR_H_
#define OIPSIM_SIMRANK_CORE_MTX_SR_H_

#include "simrank/common/status.h"
#include "simrank/core/kernel_stats.h"
#include "simrank/core/options.h"
#include "simrank/graph/digraph.h"
#include "simrank/linalg/dense_matrix.h"

namespace simrank {

/// Options specific to the low-rank baseline.
struct MtxSrOptions {
  /// Truncation rank r of the SVD of Q.
  uint32_t rank = 64;
  /// Oversampling and power iterations of the randomized range finder.
  uint32_t oversample = 8;
  uint32_t power_iterations = 2;
  uint64_t svd_seed = 42;
};

/// Computes the rank-r approximation of SimRank.
Result<DenseMatrix> MtxSimRank(const DiGraph& graph,
                               const SimRankOptions& options,
                               const MtxSrOptions& mtx_options = {},
                               KernelStats* stats = nullptr);

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_CORE_MTX_SR_H_
