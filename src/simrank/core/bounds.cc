#include "simrank/core/bounds.h"

#include <cmath>
#include <numbers>

#include "simrank/common/macros.h"

namespace simrank {

double LambertW0(double x) {
  OIPSIM_CHECK_GE(x, 0.0);
  if (x == 0.0) return 0.0;
  // Initial guess: log-based for large x, series for small x.
  double w = x < std::numbers::e ? x / std::numbers::e
                                 : std::log(x) - std::log(std::log(x) + 1e-12);
  if (w < 0.1) w = x * (1.0 - x);  // W(x) ~ x - x^2 near 0
  // Halley iteration.
  for (int iter = 0; iter < 64; ++iter) {
    const double ew = std::exp(w);
    const double f = w * ew - x;
    const double denom = ew * (w + 1.0) - (w + 2.0) * f / (2.0 * w + 2.0);
    const double step = f / denom;
    w -= step;
    if (std::abs(step) < 1e-14 * (1.0 + std::abs(w))) break;
  }
  return w;
}

uint32_t ConventionalIterationsForAccuracy(double damping, double epsilon) {
  OIPSIM_CHECK(damping > 0.0 && damping < 1.0);
  OIPSIM_CHECK(epsilon > 0.0 && epsilon < 1.0);
  // Smallest K with C^{K+1} <= eps (the Lizorkin guarantee
  // |s_K - s| <= C^{K+1}); the paper's Section IV example C = 0.8,
  // eps = 1e-4 gives 41.
  const double k = std::log(epsilon) / std::log(damping) - 1.0;
  return static_cast<uint32_t>(
      std::max(1.0, std::ceil(k - 1e-12)));
}

double ConventionalErrorBound(double damping, uint32_t k) {
  return std::pow(damping, static_cast<double>(k) + 1.0);
}

double DifferentialErrorBound(double damping, uint32_t k) {
  // C^{k+1}/(k+1)! computed multiplicatively to avoid overflow of the
  // factorial for large k.
  double bound = 1.0;
  for (uint32_t i = 1; i <= k + 1; ++i) {
    bound *= damping / static_cast<double>(i);
  }
  return bound;
}

uint32_t DifferentialIterationsExact(double damping, double epsilon) {
  OIPSIM_CHECK(damping > 0.0 && damping < 1.0);
  OIPSIM_CHECK_GT(epsilon, 0.0);
  double bound = damping;  // k = 0: C^1/1!
  uint32_t k = 0;
  while (bound > epsilon && k < 10000) {
    ++k;
    bound *= damping / static_cast<double>(k + 1);
  }
  return k;
}

uint32_t DifferentialIterationsLambertW(double damping, double epsilon) {
  OIPSIM_CHECK(damping > 0.0 && damping < 1.0);
  OIPSIM_CHECK_GT(epsilon, 0.0);
  const double sqrt_2pi = std::sqrt(2.0 * std::numbers::pi);
  if (epsilon >= 1.0 / sqrt_2pi) return 1;
  // eps0 = (sqrt(2*pi) * eps)^{-1}; from Stirling,
  // (K'+1) >= e*C*exp(W(t)) with t = ln(eps0)/(e*C), and exp(W(t)) = t/W(t),
  // hence K' >= ln(eps0)/W(t) - 1.
  const double ln_eps0 = -std::log(sqrt_2pi * epsilon);
  const double t = ln_eps0 / (std::numbers::e * damping);
  const double w = LambertW0(t);
  const double k = ln_eps0 / w - 1.0;
  return static_cast<uint32_t>(std::ceil(std::max(1.0, k) - 1e-9));
}

uint32_t DifferentialIterationsLogEstimate(double damping, double epsilon) {
  OIPSIM_CHECK(damping > 0.0 && damping < 1.0);
  OIPSIM_CHECK_GT(epsilon, 0.0);
  const double sqrt_2pi = std::sqrt(2.0 * std::numbers::pi);
  if (epsilon >= 1.0 / sqrt_2pi) {
    return DifferentialIterationsLambertW(damping, epsilon);
  }
  const double ln_eps0 = -std::log(sqrt_2pi * epsilon);
  const double phi = std::log(ln_eps0 / (std::numbers::e * damping));
  if (phi <= 1.0) {
    // Outside Corollary 2's validity range (ln(x) - ln(ln(x)) <= W(x)
    // requires x > e); fall back to the Lambert-W estimate.
    return DifferentialIterationsLambertW(damping, epsilon);
  }
  // W(t) >= ln(t) - ln(ln(t)) = phi' where t = ln(eps0)/(eC); substituting
  // the lower bound on W gives the paper's Corollary 2 form.
  const double k = ln_eps0 / (phi - std::log(phi)) - 1.0;
  return static_cast<uint32_t>(std::ceil(std::max(1.0, k) - 1e-9));
}

}  // namespace simrank
