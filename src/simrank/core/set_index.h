// Index of distinct non-empty in-neighbour sets.
//
// The transition graph G* of DMST-Reduce (paper, Fig. 2) has one vertex per
// *distinct* non-empty in-neighbour set — vertices of G that share the same
// I(·) reuse each other's partial sums for free. This index maps vertices
// to set ids and back.
#ifndef OIPSIM_SIMRANK_CORE_SET_INDEX_H_
#define OIPSIM_SIMRANK_CORE_SET_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "simrank/graph/digraph.h"

namespace simrank {

/// Deduplicated in-neighbour sets of a graph.
struct InSetIndex {
  /// Number of distinct non-empty sets, p.
  uint32_t num_sets = 0;
  /// set_of_vertex[v] = set id of I(v), or -1 when I(v) = ∅.
  std::vector<int32_t> set_of_vertex;
  /// Vertices that share set s (ascending).
  std::vector<std::vector<VertexId>> members;
  /// One vertex per set whose InNeighbors() *is* the set's contents.
  std::vector<VertexId> representative;
  /// |I| per set.
  std::vector<uint32_t> set_size;

  /// The sorted contents of set `s` (borrowed from the graph's CSR).
  std::span<const VertexId> Contents(const DiGraph& graph, uint32_t s) const {
    return graph.InNeighbors(representative[s]);
  }
};

/// Builds the index in O(m) expected time (hashing of sorted lists).
InSetIndex BuildInSetIndex(const DiGraph& graph);

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_CORE_SET_INDEX_H_
