#include "simrank/core/set_index.h"

#include <unordered_map>

#include "simrank/graph/set_ops.h"

namespace simrank {

InSetIndex BuildInSetIndex(const DiGraph& graph) {
  InSetIndex index;
  const uint32_t n = graph.n();
  index.set_of_vertex.assign(n, -1);

  // Bucket vertices by a hash of their sorted in-neighbour list, resolving
  // collisions by exact comparison against each bucket member.
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;  // hash -> set ids
  buckets.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    auto in = graph.InNeighbors(v);
    if (in.empty()) continue;
    uint64_t h = 1469598103934665603ULL;
    for (VertexId u : in) {
      h ^= u;
      h *= 1099511628211ULL;
    }
    int32_t found = -1;
    auto& bucket = buckets[h];
    for (uint32_t set_id : bucket) {
      if (SetsEqual(graph.InNeighbors(index.representative[set_id]), in)) {
        found = static_cast<int32_t>(set_id);
        break;
      }
    }
    if (found < 0) {
      found = static_cast<int32_t>(index.num_sets++);
      index.representative.push_back(v);
      index.set_size.push_back(static_cast<uint32_t>(in.size()));
      index.members.emplace_back();
      bucket.push_back(static_cast<uint32_t>(found));
    }
    index.set_of_vertex[v] = found;
    index.members[static_cast<size_t>(found)].push_back(v);
  }
  return index;
}

}  // namespace simrank
