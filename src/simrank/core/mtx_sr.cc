#include "simrank/core/mtx_sr.h"

#include <algorithm>

#include "simrank/common/memory_tracker.h"
#include "simrank/common/timer.h"
#include "simrank/core/bounds.h"
#include "simrank/linalg/sparse_matrix.h"
#include "simrank/linalg/svd.h"

namespace simrank {

Result<DenseMatrix> MtxSimRank(const DiGraph& graph,
                               const SimRankOptions& options,
                               const MtxSrOptions& mtx_options,
                               KernelStats* stats) {
  if (!options.Valid()) {
    return Status::InvalidArgument("invalid SimRank options");
  }
  const uint32_t n = graph.n();
  const uint32_t iterations =
      options.iterations > 0
          ? options.iterations
          : ConventionalIterationsForAccuracy(options.damping,
                                              options.epsilon);

  WallTimer setup_timer;
  setup_timer.Start();
  SparseMatrix q = SparseMatrix::BackwardTransition(graph);
  SvdOptions svd_options;
  svd_options.rank = std::min(mtx_options.rank, n);
  svd_options.oversample =
      std::min(mtx_options.oversample,
               n - std::min(mtx_options.rank, n));
  svd_options.power_iterations = mtx_options.power_iterations;
  svd_options.seed = mtx_options.svd_seed;
  Result<SvdResult> svd = RandomizedSvd(q, svd_options);
  setup_timer.Stop();
  if (!svd.ok()) return svd.status();

  WallTimer timer;
  timer.Start();
  const uint32_t r = static_cast<uint32_t>(svd->sigma.size());

  // A = Σ·Vᵀ·U (r x r): row i of Vᵀ·U scaled by σ_i.
  DenseMatrix vt_u = svd->v.Transposed().Multiply(svd->u);
  DenseMatrix a(r, r);
  for (uint32_t i = 0; i < r; ++i) {
    for (uint32_t j = 0; j < r; ++j) {
      a(i, j) = svd->sigma[i] * vt_u(i, j);
    }
  }
  // M_1 = Σ² (diagonal since V is orthonormal).
  DenseMatrix m(r, r);
  for (uint32_t i = 0; i < r; ++i) m(i, i) = svd->sigma[i] * svd->sigma[i];

  // W = Σ_{i=1..K} C^i · A^{i-1} · M_1 · (A^{i-1})ᵀ by r x r recurrence.
  DenseMatrix w(r, r);
  double coeff = options.damping;
  for (uint32_t i = 1; i <= iterations; ++i) {
    w.AddScaled(m, coeff);
    coeff *= options.damping;
    if (i < iterations) {
      m = a.Multiply(m).MultiplyTransposed(a);
    }
  }

  // S = (1-C)·(Iₙ + U·W·Uᵀ).
  DenseMatrix uw = svd->u.Multiply(w);
  DenseMatrix s = uw.MultiplyTransposed(svd->u);
  for (uint32_t i = 0; i < n; ++i) s(i, i) += 1.0;
  s.Scale(1.0 - options.damping);
  timer.Stop();

  if (stats != nullptr) {
    stats->iterations = iterations;
    stats->seconds_setup = setup_timer.ElapsedSeconds();
    stats->seconds_iterate = timer.ElapsedSeconds();
    // The factor matrices are the method's intermediate memory: U, V
    // (n x r each), plus the r x r work matrices. This is what explodes
    // relative to psum-SR's O(n) scratch in Fig. 6d.
    stats->aux_peak_bytes =
        2ull * n * r * sizeof(double) + 3ull * r * r * sizeof(double);
    stats->score_buffers = 2;  // U·W buffer + final S
  }
  return s;
}

}  // namespace simrank
