#include "simrank/core/matrix_simrank.h"

#include <cmath>
#include <utility>

#include "simrank/common/timer.h"
#include "simrank/core/bounds.h"
#include "simrank/linalg/sparse_matrix.h"

namespace simrank {

Result<DenseMatrix> MatrixSimRank(const DiGraph& graph,
                                  const SimRankOptions& options,
                                  MatrixForm form, KernelStats* stats) {
  if (!options.Valid()) {
    return Status::InvalidArgument("invalid SimRank options");
  }
  const uint32_t n = graph.n();
  const uint32_t iterations =
      options.iterations > 0
          ? options.iterations
          : ConventionalIterationsForAccuracy(options.damping,
                                              options.epsilon);
  WallTimer setup_timer;
  setup_timer.Start();
  SparseMatrix q = SparseMatrix::BackwardTransition(graph);
  setup_timer.Stop();

  WallTimer timer;
  timer.Start();
  DenseMatrix s = DenseMatrix::Identity(n);
  for (uint32_t k = 0; k < iterations; ++k) {
    DenseMatrix next = q.SandwichDense(s);
    next.Scale(options.damping);
    if (form == MatrixForm::kPinnedDiagonal) {
      for (uint32_t i = 0; i < n; ++i) next(i, i) = 1.0;
    } else {
      for (uint32_t i = 0; i < n; ++i) next(i, i) += 1.0 - options.damping;
    }
    s = std::move(next);
  }
  timer.Stop();

  if (stats != nullptr) {
    stats->iterations = iterations;
    stats->seconds_setup = setup_timer.ElapsedSeconds();
    stats->seconds_iterate = timer.ElapsedSeconds();
    stats->score_buffers = 3;  // S, Q·S, Q·S·Qᵀ
  }
  return s;
}

Result<DenseMatrix> MatrixDifferentialSimRank(const DiGraph& graph,
                                              const SimRankOptions& options,
                                              KernelStats* stats) {
  if (!options.Valid()) {
    return Status::InvalidArgument("invalid SimRank options");
  }
  const uint32_t n = graph.n();
  const uint32_t iterations =
      options.iterations > 0
          ? options.iterations
          : DifferentialIterationsExact(options.damping, options.epsilon);
  SparseMatrix q = SparseMatrix::BackwardTransition(graph);

  WallTimer timer;
  timer.Start();
  const double exp_neg_c = std::exp(-options.damping);
  DenseMatrix t = DenseMatrix::Identity(n);
  DenseMatrix s_hat = DenseMatrix::Identity(n);
  s_hat.Scale(exp_neg_c);
  double coeff = exp_neg_c;
  for (uint32_t k = 0; k < iterations; ++k) {
    t = q.SandwichDense(t);
    coeff *= options.damping / static_cast<double>(k + 1);
    s_hat.AddScaled(t, coeff);
  }
  timer.Stop();

  if (stats != nullptr) {
    stats->iterations = iterations;
    stats->seconds_iterate = timer.ElapsedSeconds();
    stats->score_buffers = 3;
  }
  return s_hat;
}

}  // namespace simrank
