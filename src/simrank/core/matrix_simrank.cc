#include "simrank/core/matrix_simrank.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "simrank/common/timer.h"
#include "simrank/core/bounds.h"
#include "simrank/core/parallel.h"
#include "simrank/linalg/sparse_matrix.h"

namespace simrank {

namespace {

/// Block-parallel sparse sandwich S ↦ scale·Q·S·Qᵀ (core/parallel.h).
/// Output rows are partitioned into contiguous ranges; row i needs only
/// Q's row i, all of S and one n-vector of scratch for t_i = (Q·S)_i, so
/// blocks are independent and the result is bitwise identical to the
/// sequential two-phase product for any decomposition — each out(i,j)
/// accumulates the same terms in the same CSR order.
class MatrixPropagationKernel final : public PropagationKernel {
 public:
  MatrixPropagationKernel(const SparseMatrix& q, MatrixForm form,
                          const PropagationExecutor& executor)
      : q_(q), form_(form) {
    blocks_ = PartitionBlocks(q.rows(), DefaultBlockCount(q.rows()));
    t_rows_.resize(executor.SlotsFor(num_blocks()));
    for (auto& t_row : t_rows_) t_row.assign(q.rows(), 0.0);
  }

  uint32_t num_blocks() const override {
    return static_cast<uint32_t>(blocks_.size());
  }

  void PropagateBlock(uint32_t block, uint32_t slot,
                      const DenseMatrix& current, DenseMatrix* next,
                      double scale, bool pin_diagonal,
                      OpCounter* /*ops*/) override {
    const uint32_t n = q_.rows();
    const BlockRange range = blocks_[block];
    const auto& offsets = q_.row_offsets();
    const auto& cols = q_.col_indices();
    const auto& values = q_.values();
    std::vector<double>& t_row = t_rows_[slot];

    for (uint32_t i = range.begin; i < range.end; ++i) {
      // t_i = (Q · S) row i.
      for (uint32_t j = 0; j < n; ++j) t_row[j] = 0.0;
      for (uint64_t k = offsets[i]; k < offsets[i + 1]; ++k) {
        const double a = values[k];
        const double* s_row = current.Row(cols[k]);
        for (uint32_t j = 0; j < n; ++j) t_row[j] += a * s_row[j];
      }
      // out(i, j) = scale · <t_i, Q row j>.
      double* out_row = next->Row(i);
      for (uint32_t j = 0; j < n; ++j) {
        double sum = 0.0;
        for (uint64_t k = offsets[j]; k < offsets[j + 1]; ++k) {
          sum += values[k] * t_row[cols[k]];
        }
        out_row[j] = sum;
      }
      for (uint32_t j = 0; j < n; ++j) out_row[j] *= scale;
      if (form_ == MatrixForm::kPinnedDiagonal) {
        if (pin_diagonal) out_row[i] = 1.0;
      } else {
        out_row[i] += 1.0 - scale;
      }
    }
  }

  uint64_t TotalScratchBytes() const {
    uint64_t total = 0;
    for (const auto& t_row : t_rows_) total += t_row.size() * sizeof(double);
    return total;
  }

 private:
  const SparseMatrix& q_;
  MatrixForm form_;
  std::vector<BlockRange> blocks_;
  std::vector<std::vector<double>> t_rows_;  // one (Q·S) row per slot
};

}  // namespace

Result<DenseMatrix> MatrixSimRank(const DiGraph& graph,
                                  const SimRankOptions& options,
                                  MatrixForm form, KernelStats* stats) {
  if (!options.Valid()) {
    return Status::InvalidArgument("invalid SimRank options");
  }
  const uint32_t n = graph.n();
  const uint32_t iterations =
      options.iterations > 0
          ? options.iterations
          : ConventionalIterationsForAccuracy(options.damping,
                                              options.epsilon);
  WallTimer setup_timer;
  setup_timer.Start();
  SparseMatrix q = SparseMatrix::BackwardTransition(graph);
  setup_timer.Stop();

  WallTimer timer;
  timer.Start();
  PropagationExecutor executor(options.threads);
  MatrixPropagationKernel kernel(q, form, executor);
  DenseMatrix current = DenseMatrix::Identity(n);
  DenseMatrix next(n, n);
  for (uint32_t k = 0; k < iterations; ++k) {
    RunPropagation(kernel, executor, current, &next, options.damping,
                   /*pin_diagonal=*/form == MatrixForm::kPinnedDiagonal,
                   /*ops=*/nullptr);
    std::swap(current, next);
  }
  timer.Stop();

  if (stats != nullptr) {
    stats->iterations = iterations;
    stats->seconds_setup = setup_timer.ElapsedSeconds();
    stats->seconds_iterate = timer.ElapsedSeconds();
    stats->aux_peak_bytes =
        std::max(stats->aux_peak_bytes, kernel.TotalScratchBytes());
    // current/next pair; the old dense Q·S intermediate is now one row of
    // per-worker scratch.
    stats->score_buffers = 2;
  }
  return current;
}

Result<DenseMatrix> MatrixDifferentialSimRank(const DiGraph& graph,
                                              const SimRankOptions& options,
                                              KernelStats* stats) {
  if (!options.Valid()) {
    return Status::InvalidArgument("invalid SimRank options");
  }
  const uint32_t n = graph.n();
  const uint32_t iterations =
      options.iterations > 0
          ? options.iterations
          : DifferentialIterationsExact(options.damping, options.epsilon);
  SparseMatrix q = SparseMatrix::BackwardTransition(graph);

  WallTimer timer;
  timer.Start();
  const double exp_neg_c = std::exp(-options.damping);
  DenseMatrix t = DenseMatrix::Identity(n);
  DenseMatrix s_hat = DenseMatrix::Identity(n);
  s_hat.Scale(exp_neg_c);
  double coeff = exp_neg_c;
  for (uint32_t k = 0; k < iterations; ++k) {
    t = q.SandwichDense(t);
    coeff *= options.damping / static_cast<double>(k + 1);
    s_hat.AddScaled(t, coeff);
  }
  timer.Stop();

  if (stats != nullptr) {
    stats->iterations = iterations;
    stats->seconds_iterate = timer.ElapsedSeconds();
    stats->score_buffers = 3;
  }
  return s_hat;
}

}  // namespace simrank
