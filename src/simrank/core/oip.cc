#include "simrank/core/oip.h"

#include <algorithm>
#include <span>
#include <utility>

#include "simrank/common/memory_tracker.h"
#include "simrank/common/timer.h"
#include "simrank/core/bounds.h"

namespace simrank {
namespace internal {

void PrepareScratch(const TransitionMst& mst, uint32_t n,
                    OipScratch* scratch) {
  OIPSIM_CHECK(scratch != nullptr);
  scratch->partial.assign(n, 0.0);
  scratch->row.assign(n, 0.0);
  scratch->empty_in_vertices.clear();
  for (uint32_t v = 0; v < n; ++v) {
    if (v < mst.sets.set_of_vertex.size() &&
        mst.sets.set_of_vertex[v] < 0) {
      scratch->empty_in_vertices.push_back(v);
    }
  }
  scratch->inv_set_size.resize(mst.sets.num_sets);
  for (uint32_t s = 0; s < mst.sets.num_sets; ++s) {
    scratch->inv_set_size[s] = 1.0 / static_cast<double>(mst.sets.set_size[s]);
  }
}

uint64_t ScratchBytes(const OipScratch& scratch) {
  return scratch.partial.size() * sizeof(double) +
         scratch.row.size() * sizeof(double);
}

namespace {

/// Replays the schedule with a scalar accumulator to produce the full
/// similarity row of one source set (outer sharing, Prop. 4), then copies
/// it into every member vertex of the source set.
inline void ComputeRowsForSource(const TransitionMst& mst, uint32_t source_set,
                                 double scale, DenseMatrix* next,
                                 OpCounter* ops, OipScratch* scratch) {
  const auto& sets = mst.sets;
  const double inv_a =
      scale / static_cast<double>(sets.set_size[source_set]);
  const std::vector<double>& partial = scratch->partial;
  // Positions for empty in-neighbour sets are 0 since PrepareScratch and
  // are never written; all other positions are overwritten below, so no
  // per-source zero-fill is needed.
  std::vector<double>& row = scratch->row;

  double outer = 0.0;
  uint64_t outer_adds = 0;
  for (const ScheduleStep& step : mst.schedule) {
    if (step.from_scratch) {
      // OuterPartial_{I(w)} recomputed (first edge of a path in Proc. OP).
      outer = 0.0;
      for (VertexId y : step.add) outer += partial[y];
      outer_adds += step.add.size() - 1;
    } else {
      // Derived from the previous set's cached value (Prop. 4).
      for (VertexId y : step.add) outer += partial[y];
      for (VertexId y : step.sub) outer -= partial[y];
      outer_adds += step.add.size() + step.sub.size();
    }
    const double value = inv_a * outer * scratch->inv_set_size[step.set];
    for (VertexId b : sets.members[step.set]) row[b] = value;
  }
  CountOuterAdds(ops, outer_adds);
  CountMultiplies(ops, mst.schedule.size() * 2);

  for (VertexId a : sets.members[source_set]) {
    double* dst = next->Row(a);
    std::copy(row.begin(), row.end(), dst);
  }
}

}  // namespace

void OipPropagate(const TransitionMst& mst, const DenseMatrix& current,
                  DenseMatrix* next, double scale, bool pin_diagonal,
                  OpCounter* ops, OipScratch* scratch) {
  OIPSIM_CHECK(next != nullptr && scratch != nullptr);
  const uint32_t n = current.rows();
  // Rows of vertices with non-empty in-sets are fully overwritten by the
  // per-source copy below; only the empty-in-set rows must be cleared
  // (they may hold stale values from two propagations ago).
  for (VertexId v : scratch->empty_in_vertices) {
    double* dst = next->Row(v);
    std::fill(dst, dst + n, 0.0);
  }
  std::vector<double>& partial = scratch->partial;
  std::fill(partial.begin(), partial.end(), 0.0);

  for (const ScheduleStep& step : mst.schedule) {
    // Partial_{I(v)} via Eq. (9): diff against the previous set's vector,
    // or rebuild from scratch when the diff would not pay off (Eq. 7 cap).
    if (step.from_scratch) {
      std::fill(partial.begin(), partial.end(), 0.0);
      CountPartialAdds(ops, (step.add.size() - 1) * static_cast<uint64_t>(n));
    } else {
      CountPartialAdds(
          ops,
          (step.add.size() + step.sub.size()) * static_cast<uint64_t>(n));
    }
    for (VertexId x : step.add) {
      const double* src = current.Row(x);
      for (uint32_t y = 0; y < n; ++y) partial[y] += src[y];
    }
    for (VertexId x : step.sub) {
      const double* src = current.Row(x);
      for (uint32_t y = 0; y < n; ++y) partial[y] -= src[y];
    }
    ComputeRowsForSource(mst, step.set, scale, next, ops, scratch);
  }

  if (pin_diagonal) {
    for (uint32_t a = 0; a < n; ++a) (*next)(a, a) = 1.0;
  }
}

OipPropagationKernel::OipPropagationKernel(const DiGraph& graph,
                                           const TransitionMst& mst,
                                           const PropagationExecutor& executor)
    : graph_(graph), mst_(mst), n_(graph.n()) {
  blocks_ = PartitionBlocks(mst_.schedule.size(),
                            DefaultBlockCount(mst_.schedule.size()));
  scratches_.resize(executor.SlotsFor(num_blocks()));
  for (OipScratch& scratch : scratches_) {
    PrepareScratch(mst_, n_, &scratch);
  }
}

uint64_t OipPropagationKernel::TotalScratchBytes() const {
  uint64_t total = 0;
  for (const OipScratch& scratch : scratches_) total += ScratchBytes(scratch);
  return total;
}

void OipPropagationKernel::PropagateBlock(uint32_t block, uint32_t slot,
                                          const DenseMatrix& current,
                                          DenseMatrix* next, double scale,
                                          bool pin_diagonal, OpCounter* ops) {
  OIPSIM_CHECK(next != nullptr);
  OipScratch& scratch = scratches_[slot];
  const uint32_t n = n_;
  if (block == 0) {
    // Rows of vertices with I(v) = ∅ belong to no schedule step; block 0
    // owns their (all-zero, diagonal-pinned) housekeeping.
    for (VertexId v : scratch.empty_in_vertices) {
      double* dst = next->Row(v);
      std::fill(dst, dst + n, 0.0);
      if (pin_diagonal) (*next)(v, v) = 1.0;
    }
  }

  const BlockRange range = blocks_[block];
  std::vector<double>& partial = scratch.partial;
  for (uint32_t i = range.begin; i < range.end; ++i) {
    const ScheduleStep& step = mst_.schedule[i];
    // A slice's first step cannot diff against the previous slice's last
    // set (that set lives in another worker's scratch), so it is forced
    // from scratch: the Eq. (7) cap makes the rebuild cost |I| - 1 per
    // column — exactly psum-SR's price for the set, never more.
    const bool from_scratch = step.from_scratch || i == range.begin;
    if (from_scratch) {
      std::fill(partial.begin(), partial.end(), 0.0);
      // For a scheduled from-scratch step, `add` is already the whole set;
      // for a forced one it is only the diff, so rebuild from the set's
      // contents instead.
      const auto contents = step.from_scratch
                                ? std::span<const VertexId>(step.add)
                                : mst_.sets.Contents(graph_, step.set);
      for (VertexId x : contents) {
        const double* src = current.Row(x);
        for (uint32_t y = 0; y < n; ++y) partial[y] += src[y];
      }
      CountPartialAdds(ops,
                       (contents.size() - 1) * static_cast<uint64_t>(n));
    } else {
      for (VertexId x : step.add) {
        const double* src = current.Row(x);
        for (uint32_t y = 0; y < n; ++y) partial[y] += src[y];
      }
      for (VertexId x : step.sub) {
        const double* src = current.Row(x);
        for (uint32_t y = 0; y < n; ++y) partial[y] -= src[y];
      }
      CountPartialAdds(
          ops,
          (step.add.size() + step.sub.size()) * static_cast<uint64_t>(n));
    }
    ComputeRowsForSource(mst_, step.set, scale, next, ops, &scratch);
    if (pin_diagonal) {
      // Each source set appears exactly once in the schedule, so its
      // members' rows are final after this step; pin their diagonal here
      // rather than in a global pass that would race across blocks.
      for (VertexId a : mst_.sets.members[step.set]) (*next)(a, a) = 1.0;
    }
  }
}

}  // namespace internal

Result<DenseMatrix> OipSimRankWithMst(const DiGraph& graph,
                                      const TransitionMst& mst,
                                      const SimRankOptions& options,
                                      KernelStats* stats) {
  if (!options.Valid()) {
    return Status::InvalidArgument("invalid SimRank options");
  }
  const uint32_t n = graph.n();
  const uint32_t iterations =
      options.iterations > 0
          ? options.iterations
          : ConventionalIterationsForAccuracy(options.damping,
                                              options.epsilon);
  OpCounter ops;
  MemoryTracker mem;
  WallTimer timer;
  timer.Start();

  PropagationExecutor executor(options.threads);
  internal::OipPropagationKernel kernel(graph, mst, executor);
  TrackAlloc(&mem, kernel.TotalScratchBytes());
  TrackAlloc(&mem, mst.MemoryBytes());

  DenseMatrix current = DenseMatrix::Identity(n);
  DenseMatrix next(n, n);
  for (uint32_t k = 0; k < iterations; ++k) {
    RunPropagation(kernel, executor, current, &next, options.damping,
                   /*pin_diagonal=*/true, &ops);
    std::swap(current, next);
  }
  timer.Stop();

  if (stats != nullptr) {
    stats->iterations = iterations;
    stats->seconds_iterate = timer.ElapsedSeconds();
    stats->ops += ops.counts();
    stats->aux_peak_bytes = std::max(stats->aux_peak_bytes, mem.peak_bytes());
    stats->score_buffers = 2;
  }
  return current;
}

Result<DenseMatrix> OipSimRank(const DiGraph& graph,
                               const SimRankOptions& options,
                               KernelStats* stats) {
  WallTimer setup_timer;
  setup_timer.Start();
  OpCounter setup_ops;
  Result<TransitionMst> mst = DmstReduce(
      graph, {DmstPolicy::kMinCost, options.threads}, &setup_ops);
  setup_timer.Stop();
  if (!mst.ok()) return mst.status();
  if (stats != nullptr) {
    stats->seconds_setup = setup_timer.ElapsedSeconds();
    stats->ops += setup_ops.counts();
  }
  return OipSimRankWithMst(graph, *mst, options, stats);
}

}  // namespace simrank
