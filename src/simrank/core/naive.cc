#include "simrank/core/naive.h"

#include <algorithm>
#include <utility>

#include "simrank/common/timer.h"
#include "simrank/core/bounds.h"
#include "simrank/core/parallel.h"

namespace simrank {

namespace {

/// Block-parallel direct iteration (Eq. 2): source vertices partitioned
/// into contiguous ranges, no shared state at all, so any decomposition is
/// bitwise identical to the sequential sweep.
class NaivePropagationKernel final : public PropagationKernel {
 public:
  explicit NaivePropagationKernel(const DiGraph& graph) : graph_(graph) {
    blocks_ = PartitionBlocks(graph.n(), DefaultBlockCount(graph.n()));
  }

  uint32_t num_blocks() const override {
    return static_cast<uint32_t>(blocks_.size());
  }

  void PropagateBlock(uint32_t block, uint32_t /*slot*/,
                      const DenseMatrix& current, DenseMatrix* next,
                      double scale, bool pin_diagonal,
                      OpCounter* ops) override {
    const uint32_t n = graph_.n();
    const BlockRange range = blocks_[block];
    for (VertexId a = range.begin; a < range.end; ++a) {
      double* next_row = next->Row(a);
      std::fill(next_row, next_row + n, 0.0);
      auto in_a = graph_.InNeighbors(a);
      if (!in_a.empty()) {
        for (VertexId b = 0; b < n; ++b) {
          auto in_b = graph_.InNeighbors(b);
          if (in_b.empty()) continue;
          double sum = 0.0;
          for (VertexId i : in_a) {
            const double* row = current.Row(i);
            for (VertexId j : in_b) sum += row[j];
          }
          CountPartialAdds(ops, in_a.size() * in_b.size());
          next_row[b] = scale * sum /
                        (static_cast<double>(in_a.size()) *
                         static_cast<double>(in_b.size()));
          CountMultiplies(ops, 2);
        }
      }
      if (pin_diagonal) next_row[a] = 1.0;
    }
  }

 private:
  const DiGraph& graph_;
  std::vector<BlockRange> blocks_;
};

}  // namespace

Result<DenseMatrix> NaiveSimRank(const DiGraph& graph,
                                 const SimRankOptions& options,
                                 KernelStats* stats) {
  if (!options.Valid()) {
    return Status::InvalidArgument("invalid SimRank options");
  }
  const uint32_t n = graph.n();
  const uint32_t iterations =
      options.iterations > 0
          ? options.iterations
          : ConventionalIterationsForAccuracy(options.damping,
                                              options.epsilon);
  OpCounter ops;
  WallTimer timer;
  timer.Start();

  PropagationExecutor executor(options.threads);
  NaivePropagationKernel kernel(graph);
  DenseMatrix current = DenseMatrix::Identity(n);
  DenseMatrix next(n, n);
  for (uint32_t k = 0; k < iterations; ++k) {
    RunPropagation(kernel, executor, current, &next, options.damping,
                   /*pin_diagonal=*/true, &ops);
    std::swap(current, next);
  }
  timer.Stop();

  if (stats != nullptr) {
    stats->iterations = iterations;
    stats->seconds_setup = 0.0;
    stats->seconds_iterate = timer.ElapsedSeconds();
    stats->ops = ops.counts();
    stats->aux_peak_bytes = 0;  // no intermediate structures at all
    stats->score_buffers = 2;
  }
  return current;
}

}  // namespace simrank
