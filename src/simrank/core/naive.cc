#include "simrank/core/naive.h"

#include "simrank/common/timer.h"
#include "simrank/core/bounds.h"

namespace simrank {

Result<DenseMatrix> NaiveSimRank(const DiGraph& graph,
                                 const SimRankOptions& options,
                                 KernelStats* stats) {
  if (!options.Valid()) {
    return Status::InvalidArgument("invalid SimRank options");
  }
  const uint32_t n = graph.n();
  const uint32_t iterations =
      options.iterations > 0
          ? options.iterations
          : ConventionalIterationsForAccuracy(options.damping,
                                              options.epsilon);
  OpCounter ops;
  WallTimer timer;
  timer.Start();

  DenseMatrix current = DenseMatrix::Identity(n);
  DenseMatrix next(n, n);
  for (uint32_t k = 0; k < iterations; ++k) {
    next.Fill(0.0);
    for (VertexId a = 0; a < n; ++a) {
      auto in_a = graph.InNeighbors(a);
      if (in_a.empty()) continue;
      for (VertexId b = 0; b < n; ++b) {
        auto in_b = graph.InNeighbors(b);
        if (in_b.empty()) continue;
        double sum = 0.0;
        for (VertexId i : in_a) {
          const double* row = current.Row(i);
          for (VertexId j : in_b) sum += row[j];
        }
        CountPartialAdds(&ops, in_a.size() * in_b.size());
        next(a, b) = options.damping * sum /
                     (static_cast<double>(in_a.size()) *
                      static_cast<double>(in_b.size()));
        CountMultiplies(&ops, 2);
      }
    }
    for (VertexId a = 0; a < n; ++a) next(a, a) = 1.0;
    std::swap(current, next);
  }
  timer.Stop();

  if (stats != nullptr) {
    stats->iterations = iterations;
    stats->seconds_setup = 0.0;
    stats->seconds_iterate = timer.ElapsedSeconds();
    stats->ops = ops.counts();
    stats->aux_peak_bytes = 0;  // no intermediate structures at all
    stats->score_buffers = 2;
  }
  return current;
}

}  // namespace simrank
