// Shared configuration for all SimRank algorithms.
#ifndef OIPSIM_SIMRANK_CORE_OPTIONS_H_
#define OIPSIM_SIMRANK_CORE_OPTIONS_H_

#include <cstdint>

namespace simrank {

/// Parameters of the SimRank model and its iterative solvers. The paper's
/// defaults are C = 0.6 and eps = 0.001 (Section V-A).
struct SimRankOptions {
  /// Damping factor C in (0, 1).
  double damping = 0.6;

  /// Number of iterations K. When 0, K is derived from `epsilon` using the
  /// model-specific accuracy bound (⌈log_C eps⌉ for the conventional
  /// model, Corollary 1 for the differential model).
  uint32_t iterations = 0;

  /// Desired accuracy eps; used when `iterations` == 0.
  double epsilon = 1e-3;

  /// Threshold-sieving cutoff delta of psum-SR (Lizorkin et al.,
  /// optimisation 3). Scores below delta are clipped to zero during
  /// iteration. 0 disables sieving (exact computation).
  double sieve_threshold = 0.0;

  /// Root seed for stochastic estimators configured from these options
  /// (see WalkIndexOptions::FromSimRank). The deterministic iterative
  /// solvers ignore it; mtx-SR's randomized SVD has its own svd_seed.
  uint64_t seed = 7;

  /// Worker threads for the block-parallel propagation kernels (naive,
  /// psum, OIP, the DSR backends and the matrix oracle). 0 means hardware
  /// concurrency; the default of 1 keeps runs single-threaded. The block
  /// decomposition never depends on this value, so scores and operation
  /// counts are bitwise identical for every setting (see core/parallel.h);
  /// mtx-SR's SVD pipeline ignores it.
  uint32_t threads = 1;

  /// True if the options describe a valid configuration.
  bool Valid() const {
    return damping > 0.0 && damping < 1.0 &&
           (iterations > 0 || epsilon > 0.0) && sieve_threshold >= 0.0;
  }
};

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_CORE_OPTIONS_H_
