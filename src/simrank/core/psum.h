// psum-SR: SimRank with partial sums memoisation (Lizorkin et al.,
// PVLDB'08) — the state of the art the paper improves upon.
//
// For every source vertex a, the partial sums Partial_{I(a)}(y) =
// Σ_{i∈I(a)} s_k(i, y) are computed once (Eq. 4) and reused across all
// targets b (Eq. 5), cutting the naive O(K·d²·n²) to O(K·d·n²). The two
// additional optimisations of that paper are included: essential-pair
// selection (rows/columns of in-neighbour-less vertices are a-priori zero)
// and threshold-sieved similarities (scores below a cutoff are clipped,
// trading accuracy for speed; see SimRankOptions::sieve_threshold).
#ifndef OIPSIM_SIMRANK_CORE_PSUM_H_
#define OIPSIM_SIMRANK_CORE_PSUM_H_

#include "simrank/common/status.h"
#include "simrank/core/kernel_stats.h"
#include "simrank/core/options.h"
#include "simrank/core/parallel.h"
#include "simrank/graph/digraph.h"
#include "simrank/linalg/dense_matrix.h"

namespace simrank {

/// Computes all-pairs SimRank with partial sums memoisation.
Result<DenseMatrix> PsumSimRank(const DiGraph& graph,
                                const SimRankOptions& options,
                                KernelStats* stats = nullptr);

namespace internal {

/// One propagation step shared with the differential model:
///   next(a,b) = scale / (|I(a)||I(b)|) · Σ_{j∈I(b)} Σ_{i∈I(a)} current(i,j)
/// for non-empty I(a), I(b); zero otherwise. When `pin_diagonal` is true
/// the diagonal is then forced to 1 (conventional SimRank, Eq. 2); when
/// false the diagonal keeps its propagated value (the Tk iteration of
/// Eq. 15). Scores below `sieve_threshold` are clipped to 0 (off-diagonal
/// only); pass 0 to disable.
void PsumPropagate(const DiGraph& graph, const DenseMatrix& current,
                   DenseMatrix* next, double scale, bool pin_diagonal,
                   double sieve_threshold, OpCounter* ops);

/// Block-parallel psum propagation (core/parallel.h): source vertices are
/// partitioned into contiguous ranges, each with a private partial-sum
/// vector per worker slot. Every source's partial sums are rebuilt from
/// scratch anyway, so any partition produces bitwise identical scores; the
/// fixed DefaultBlockCount decomposition additionally keeps the reported
/// operation counts invariant across thread counts.
class PsumPropagationKernel final : public PropagationKernel {
 public:
  PsumPropagationKernel(const DiGraph& graph, double sieve_threshold,
                        const PropagationExecutor& executor);

  uint32_t num_blocks() const override {
    return static_cast<uint32_t>(blocks_.size());
  }
  void PropagateBlock(uint32_t block, uint32_t slot,
                      const DenseMatrix& current, DenseMatrix* next,
                      double scale, bool pin_diagonal,
                      OpCounter* ops) override;

  /// Bytes of all per-slot partial-sum vectors.
  uint64_t TotalScratchBytes() const;

 private:
  const DiGraph& graph_;
  double sieve_threshold_;
  std::vector<BlockRange> blocks_;
  std::vector<std::vector<double>> partials_;  // one per worker slot
};

}  // namespace internal
}  // namespace simrank

#endif  // OIPSIM_SIMRANK_CORE_PSUM_H_
