// psum-SR: SimRank with partial sums memoisation (Lizorkin et al.,
// PVLDB'08) — the state of the art the paper improves upon.
//
// For every source vertex a, the partial sums Partial_{I(a)}(y) =
// Σ_{i∈I(a)} s_k(i, y) are computed once (Eq. 4) and reused across all
// targets b (Eq. 5), cutting the naive O(K·d²·n²) to O(K·d·n²). The two
// additional optimisations of that paper are included: essential-pair
// selection (rows/columns of in-neighbour-less vertices are a-priori zero)
// and threshold-sieved similarities (scores below a cutoff are clipped,
// trading accuracy for speed; see SimRankOptions::sieve_threshold).
#ifndef OIPSIM_SIMRANK_CORE_PSUM_H_
#define OIPSIM_SIMRANK_CORE_PSUM_H_

#include "simrank/common/status.h"
#include "simrank/core/kernel_stats.h"
#include "simrank/core/options.h"
#include "simrank/graph/digraph.h"
#include "simrank/linalg/dense_matrix.h"

namespace simrank {

/// Computes all-pairs SimRank with partial sums memoisation.
Result<DenseMatrix> PsumSimRank(const DiGraph& graph,
                                const SimRankOptions& options,
                                KernelStats* stats = nullptr);

namespace internal {

/// One propagation step shared with the differential model:
///   next(a,b) = scale / (|I(a)||I(b)|) · Σ_{j∈I(b)} Σ_{i∈I(a)} current(i,j)
/// for non-empty I(a), I(b); zero otherwise. When `pin_diagonal` is true
/// the diagonal is then forced to 1 (conventional SimRank, Eq. 2); when
/// false the diagonal keeps its propagated value (the Tk iteration of
/// Eq. 15). Scores below `sieve_threshold` are clipped to 0 (off-diagonal
/// only); pass 0 to disable.
void PsumPropagate(const DiGraph& graph, const DenseMatrix& current,
                   DenseMatrix* next, double scale, bool pin_diagonal,
                   double sieve_threshold, OpCounter* ops);

}  // namespace internal
}  // namespace simrank

#endif  // OIPSIM_SIMRANK_CORE_PSUM_H_
