// Unified entry point over every SimRank algorithm in the library.
//
// This is the API most callers want:
//
//   simrank::EngineOptions opts;
//   opts.algorithm = simrank::Algorithm::kOip;
//   opts.simrank.damping = 0.6;
//   opts.simrank.epsilon = 1e-3;
//   auto run = simrank::ComputeSimRank(graph, opts);
//   double s_ab = run->scores(a, b);
#ifndef OIPSIM_SIMRANK_CORE_ENGINE_H_
#define OIPSIM_SIMRANK_CORE_ENGINE_H_

#include <string>

#include "simrank/common/status.h"
#include "simrank/core/kernel_stats.h"
#include "simrank/core/mtx_sr.h"
#include "simrank/core/options.h"
#include "simrank/graph/digraph.h"
#include "simrank/linalg/dense_matrix.h"

namespace simrank {

/// All-pairs SimRank algorithms provided by the library.
enum class Algorithm {
  kNaive,    ///< Jeh & Widom direct iteration, O(K·d²·n²).
  kPsum,     ///< psum-SR: partial sums memoisation (Lizorkin et al.).
  kOip,      ///< OIP-SR: MST-shared partial sums (this paper).
  kOipDsr,   ///< OIP-DSR: differential model + MST sharing (this paper).
  kPsumDsr,  ///< differential model + psum backend (ablation).
  kMatrix,   ///< sparse matrix-form oracle.
  kMtx,      ///< mtx-SR: SVD low-rank baseline (Li et al.).
};

/// Short display name ("OIP-SR", "psum-SR", ...).
const char* AlgorithmName(Algorithm algorithm);

/// Full configuration of a SimRank computation.
struct EngineOptions {
  Algorithm algorithm = Algorithm::kOip;
  SimRankOptions simrank;
  /// Only consulted for Algorithm::kMtx.
  MtxSrOptions mtx;
};

/// Scores plus per-run metrics.
struct SimRankRun {
  DenseMatrix scores;
  KernelStats stats;
};

/// Runs the selected algorithm on `graph`.
Result<SimRankRun> ComputeSimRank(const DiGraph& graph,
                                  const EngineOptions& options);

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_CORE_ENGINE_H_
