// Unified entry point over every SimRank algorithm in the library.
//
// This is the API most callers want:
//
//   simrank::EngineOptions opts;
//   opts.algorithm = simrank::Algorithm::kOip;
//   opts.simrank.damping = 0.6;
//   opts.simrank.epsilon = 1e-3;
//   auto run = simrank::ComputeSimRank(graph, opts);
//   double s_ab = run->scores(a, b);
#ifndef OIPSIM_SIMRANK_CORE_ENGINE_H_
#define OIPSIM_SIMRANK_CORE_ENGINE_H_

#include <span>
#include <string>
#include <string_view>

#include "simrank/common/status.h"
#include "simrank/core/kernel_stats.h"
#include "simrank/core/mtx_sr.h"
#include "simrank/core/options.h"
#include "simrank/graph/digraph.h"
#include "simrank/linalg/dense_matrix.h"

namespace simrank {

/// All-pairs SimRank algorithms provided by the library.
enum class Algorithm {
  kNaive,    ///< Jeh & Widom direct iteration, O(K·d²·n²).
  kPsum,     ///< psum-SR: partial sums memoisation (Lizorkin et al.).
  kOip,      ///< OIP-SR: MST-shared partial sums (this paper).
  kOipDsr,   ///< OIP-DSR: differential model + MST sharing (this paper).
  kPsumDsr,  ///< differential model + psum backend (ablation).
  kMatrix,   ///< sparse matrix-form oracle.
  kMtx,      ///< mtx-SR: SVD low-rank baseline (Li et al.).
};

/// Short display name ("OIP-SR", "psum-SR", ...).
const char* AlgorithmName(Algorithm algorithm);

/// Full configuration of a SimRank computation.
struct EngineOptions {
  Algorithm algorithm = Algorithm::kOip;
  SimRankOptions simrank;
  /// Only consulted for Algorithm::kMtx.
  MtxSrOptions mtx;
};

/// Which fixed point an algorithm converges to — algorithms of the same
/// family are mutually comparable (the cross-engine consistency suite
/// checks each against its family's oracle).
enum class ScoreModel {
  kConventional,  ///< Eq. (2): pinned diagonal, geometric convergence.
  kDifferential,  ///< Eq. (13): exponential series Ŝ.
  kLowRank,       ///< Eq. (12) power series via truncated SVD (mtx-SR).
};

/// One registry entry per Algorithm value. The registry is the single
/// source of truth for dispatch (ComputeSimRank), display names
/// (AlgorithmName), CLI flag parsing and bench/CLI listings.
struct AlgorithmInfo {
  Algorithm algorithm;
  /// Display name ("OIP-SR").
  const char* name;
  /// CLI flag value ("oip", as in --algo=oip).
  const char* flag;
  /// One-line description for listings.
  const char* summary;
  ScoreModel model;
  /// True when the engine honours SimRankOptions::threads via the
  /// block-parallel propagation path (core/parallel.h).
  bool parallel;
  /// Runs the algorithm. Never null.
  Result<DenseMatrix> (*compute)(const DiGraph& graph,
                                 const EngineOptions& options,
                                 KernelStats* stats);
};

/// All registered algorithms, in Algorithm enum order.
std::span<const AlgorithmInfo> AlgorithmRegistry();

/// Registry entry for `algorithm`; never null for a valid enum value.
const AlgorithmInfo* FindAlgorithm(Algorithm algorithm);

/// Registry entry whose CLI flag equals `flag`, or null.
const AlgorithmInfo* FindAlgorithmByFlag(std::string_view flag);

/// "oip|oip-dsr|psum|..." — every CLI flag in registry order, for usage
/// strings and bench listings.
std::string AlgorithmFlagList();

/// Scores plus per-run metrics.
struct SimRankRun {
  DenseMatrix scores;
  KernelStats stats;
};

/// Runs the selected algorithm on `graph`.
Result<SimRankRun> ComputeSimRank(const DiGraph& graph,
                                  const EngineOptions& options);

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_CORE_ENGINE_H_
