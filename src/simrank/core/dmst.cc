#include "simrank/core/dmst.h"

#include <algorithm>
#include <numeric>

#include "simrank/core/parallel.h"
#include "simrank/graph/set_ops.h"

namespace simrank {

uint64_t TransitionMst::MemoryBytes() const {
  uint64_t bytes = 0;
  for (const auto& list : add) bytes += list.size() * sizeof(VertexId);
  for (const auto& list : sub) bytes += list.size() * sizeof(VertexId);
  for (const auto& step : schedule) {
    bytes += sizeof(ScheduleStep) +
             (step.add.size() + step.sub.size()) * sizeof(VertexId);
  }
  bytes += (tree.size()) * sizeof(uint32_t);  // parent array
  bytes += sets.set_of_vertex.size() * sizeof(int32_t);
  bytes += sets.representative.size() * sizeof(VertexId);
  bytes += sets.set_size.size() * sizeof(uint32_t);
  for (const auto& m : sets.members) bytes += m.size() * sizeof(VertexId);
  return bytes;
}

Result<TransitionMst> DmstReduce(const DiGraph& graph,
                                 const DmstOptions& options, OpCounter* ops) {
  TransitionMst mst;
  mst.sets = BuildInSetIndex(graph);
  const uint32_t p = mst.sets.num_sets;

  // Process sets in non-decreasing size order (Procedure DMST-Reduce line
  // 2), ids as tie-break for determinism.
  std::vector<uint32_t> order(p);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t x, uint32_t y) {
    return mst.sets.set_size[x] != mst.sets.set_size[y]
               ? mst.sets.set_size[x] < mst.sets.set_size[y]
               : x < y;
  });

  // parent_set[s] = parent set id, or -1 for the root ∅.
  std::vector<int32_t> parent_set(p, -1);

  if (options.policy == DmstPolicy::kPreviousInOrder) {
    for (uint32_t idx = 1; idx < p; ++idx) {
      parent_set[order[idx]] = static_cast<int32_t>(order[idx - 1]);
    }
  } else if (options.policy == DmstPolicy::kMinCost) {
    // Inverted index over set contents, filled incrementally so it only
    // ever contains sets earlier in the order (legal parents).
    std::vector<std::vector<uint32_t>> sets_containing(graph.n());
    std::vector<uint32_t> stamp(p, UINT32_MAX);
    for (uint32_t idx = 0; idx < p; ++idx) {
      const uint32_t v = order[idx];
      auto contents_v = mst.sets.Contents(graph, v);
      uint64_t best_cost = mst.sets.set_size[v] - 1;  // from-scratch cost
      int32_t best_parent = -1;
      for (VertexId x : contents_v) {
        for (uint32_t u : sets_containing[x]) {
          if (stamp[u] == idx) continue;  // already compared
          stamp[u] = idx;
          if (best_cost == 0) break;
          auto contents_u = mst.sets.Contents(graph, u);
          CountSetOps(ops, contents_u.size() + contents_v.size());
          uint64_t cost = SymmetricDifferenceSizeCapped(
              contents_u, contents_v, best_cost);
          if (cost < best_cost) {
            best_cost = cost;
            best_parent = static_cast<int32_t>(u);
          }
        }
      }
      parent_set[v] = best_parent;
      for (VertexId x : contents_v) sets_containing[x].push_back(v);
    }
  }
  // DmstPolicy::kAlwaysRoot keeps every parent_set[s] == -1.

  // Assemble the rooted tree: node 0 = ∅, node s+1 = set s.
  std::vector<uint32_t> parent(p + 1);
  parent[0] = 0;
  for (uint32_t s = 0; s < p; ++s) {
    parent[s + 1] = parent_set[s] < 0
                        ? 0u
                        : static_cast<uint32_t>(parent_set[s]) + 1;
  }
  mst.tree = Tree(0, std::move(parent));

  // Diff lists (Eq. 9). Each set's lists depend only on its own and its
  // parent's (read-only) contents, so they materialise in parallel; the
  // cost statistics are reduced serially from the list sizes afterwards,
  // making both the lists and the stats thread-count independent. Parent
  // selection above stays serial: it is the op-counted, order-dependent
  // phase.
  PropagationExecutor executor(options.num_threads);
  mst.add.assign(p + 1, {});
  mst.sub.assign(p + 1, {});
  executor.ParallelFor(0, p, [&](uint64_t i) {
    const auto s = static_cast<uint32_t>(i);
    const uint32_t node = s + 1;
    auto contents = mst.sets.Contents(graph, s);
    if (parent_set[s] < 0) {
      mst.add[node].assign(contents.begin(), contents.end());
    } else {
      auto parent_contents =
          mst.sets.Contents(graph, static_cast<uint32_t>(parent_set[s]));
      SetDifferences(contents, parent_contents, &mst.add[node],
                     &mst.sub[node]);
    }
  });
  uint64_t symdiff_total = 0;
  for (uint32_t s = 0; s < p; ++s) {
    const uint32_t node = s + 1;
    mst.cost_without_sharing += mst.sets.set_size[s] - 1;
    if (parent_set[s] < 0) {
      mst.total_cost += mst.sets.set_size[s] - 1;
    } else {
      const uint64_t symdiff = mst.add[node].size() + mst.sub[node].size();
      mst.total_cost += symdiff;
      symdiff_total += symdiff;
      ++mst.shared_edges;
    }
  }
  mst.avg_symmetric_difference =
      mst.shared_edges == 0
          ? 0.0
          : static_cast<double>(symdiff_total) / mst.shared_edges;

  // Linearise the tree preorder into the replay schedule: consecutive
  // preorder sets diff directly against each other, capped by the
  // from-scratch cost of Eq. (7).
  std::vector<uint32_t> preorder;
  preorder.reserve(p);
  mst.tree.DepthFirstWalk(
      [&preorder](uint32_t node) {
        if (node != 0) preorder.push_back(node - 1);
      },
      [](uint32_t) {});
  // Step i diffs only against preorder[i-1], so every step is computable
  // independently from the (already fixed) preorder — same parallel shape
  // as the diff lists, with the serial cost reduction after.
  mst.schedule.assign(p, ScheduleStep{});
  executor.ParallelFor(0, p, [&](uint64_t i) {
    ScheduleStep& step = mst.schedule[i];
    const uint32_t s = preorder[i];
    step.set = s;
    auto contents = mst.sets.Contents(graph, s);
    const uint64_t scratch_cost = mst.sets.set_size[s] - 1;
    bool use_diff = false;
    if (i > 0) {
      auto prev_contents = mst.sets.Contents(graph, preorder[i - 1]);
      if (SymmetricDifferenceSizeCapped(prev_contents, contents,
                                        scratch_cost) < scratch_cost) {
        SetDifferences(contents, prev_contents, &step.add, &step.sub);
        use_diff = true;
      }
    }
    if (!use_diff) {
      step.from_scratch = true;
      step.add.assign(contents.begin(), contents.end());
    }
  });
  for (const ScheduleStep& step : mst.schedule) {
    mst.schedule_cost += step.from_scratch
                             ? mst.sets.set_size[step.set] - 1
                             : step.add.size() + step.sub.size();
  }
  return mst;
}

}  // namespace simrank
