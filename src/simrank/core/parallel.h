// Block-parallel propagation architecture for the all-pairs engines.
//
// Every all-pairs engine advances an n x n score matrix one propagation
// step at a time. Each step decomposes into independent *blocks* that
// write disjoint output rows: a contiguous slice of the DMST replay
// schedule for OIP (every source set's rows belong to exactly one slice),
// or a contiguous vertex range for the psum/naive/matrix kernels. The
// block decomposition is fixed by a thread-count-INDEPENDENT policy
// (DefaultBlockCount), and per-block OpCounters are merged in block order,
// so both the scores and the reported operation counts are bitwise
// identical for any number of workers — parallelism is only the assignment
// of blocks to pool threads.
#ifndef OIPSIM_SIMRANK_CORE_PARALLEL_H_
#define OIPSIM_SIMRANK_CORE_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "simrank/common/op_counter.h"
#include "simrank/common/thread_pool.h"
#include "simrank/linalg/dense_matrix.h"

namespace simrank {

/// Half-open range [begin, end) of schedule steps or vertices.
struct BlockRange {
  uint32_t begin = 0;
  uint32_t end = 0;
  uint32_t size() const { return end - begin; }
};

/// Block-count policy shared by every kernel. Depends only on the number of
/// work items — never on the thread count — so the decomposition (and hence
/// the floating-point result) is the same whether one worker or eight
/// execute it. Small inputs stay in a single block, matching the fully
/// sequential kernels bit for bit.
uint32_t DefaultBlockCount(uint64_t items);

/// Splits [0, items) into `num_blocks` contiguous near-equal ranges (the
/// first `items % num_blocks` ranges are one larger). `items` == 0 yields a
/// single empty range so per-step housekeeping tied to block 0 still runs.
std::vector<BlockRange> PartitionBlocks(uint64_t items, uint32_t num_blocks);

/// One propagation step of an all-pairs engine, split into blocks that
/// write disjoint rows of `next`. Implementations own any per-worker
/// scratch, indexed by `slot` (the executor guarantees no two concurrent
/// blocks share a slot, and that slot < the executor's SlotsFor()).
class PropagationKernel {
 public:
  virtual ~PropagationKernel() = default;

  /// Number of blocks in the fixed decomposition (>= 1).
  virtual uint32_t num_blocks() const = 0;

  /// Computes output block `block` of one step:
  ///   next(a,b) = scale / (|I(a)||I(b)|) · Σ_{j∈I(b)} Σ_{i∈I(a)} current(i,j)
  /// for the rows `a` the block owns, pinning their diagonal entries to 1
  /// when `pin_diagonal` (conventional model) or leaving them propagated
  /// (the differential model's T_k). Must not read or write rows owned by
  /// other blocks.
  virtual void PropagateBlock(uint32_t block, uint32_t slot,
                              const DenseMatrix& current, DenseMatrix* next,
                              double scale, bool pin_diagonal,
                              OpCounter* ops) = 0;
};

/// Runs blocks across a private worker pool. One executor is created per
/// SimRank run and reused by every iteration, so pool start-up is paid
/// once. `num_threads` == 0 means hardware concurrency; 1 runs inline with
/// no pool at all.
class PropagationExecutor {
 public:
  explicit PropagationExecutor(uint32_t num_threads = 1);
  ~PropagationExecutor();

  PropagationExecutor(const PropagationExecutor&) = delete;
  PropagationExecutor& operator=(const PropagationExecutor&) = delete;

  /// Resolved worker count (>= 1).
  uint32_t num_threads() const { return num_threads_; }

  /// Worker slots a kernel must provision scratch for: min(threads, blocks),
  /// at least 1.
  uint32_t SlotsFor(uint32_t num_blocks) const;

  using BlockFn =
      std::function<void(uint32_t block, uint32_t slot, OpCounter* ops)>;

  /// Runs fn(block, slot, block_ops) for every block in [0, num_blocks).
  /// Blocks are claimed dynamically (their costs differ), but each block's
  /// OpCounter is private and the counters are merged into `ops` in block
  /// order, so the aggregate is identical for every thread count. `ops` may
  /// be null to disable counting.
  void Run(uint32_t num_blocks, const BlockFn& fn, OpCounter* ops);

  /// Runs fn(i) for i in [begin, end) across the pool (inline when
  /// single-threaded). For element-wise work whose result is independent of
  /// the split, e.g. row-blocked DenseMatrix updates.
  void ParallelFor(uint64_t begin, uint64_t end,
                   const std::function<void(uint64_t)>& fn);

 private:
  uint32_t num_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads_ == 1
};

/// One full propagation step: every kernel block through the executor.
void RunPropagation(PropagationKernel& kernel, PropagationExecutor& executor,
                    const DenseMatrix& current, DenseMatrix* next,
                    double scale, bool pin_diagonal, OpCounter* ops);

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_CORE_PARALLEL_H_
