#include "simrank/core/dsr.h"

#include <cmath>
#include <utility>

#include "simrank/common/memory_tracker.h"
#include "simrank/common/timer.h"
#include "simrank/core/bounds.h"
#include "simrank/core/oip.h"
#include "simrank/core/psum.h"

namespace simrank {

namespace {

/// Runs the Eq. 15 accumulation given a T-step propagator.
template <typename PropagateFn>
DenseMatrix RunDifferentialIteration(uint32_t n, uint32_t iterations,
                                     double damping,
                                     PropagateFn&& propagate) {
  const double exp_neg_c = std::exp(-damping);
  DenseMatrix t_current = DenseMatrix::Identity(n);
  DenseMatrix t_next(n, n);
  DenseMatrix s_hat = DenseMatrix::Identity(n);
  s_hat.Scale(exp_neg_c);  // Ŝ_0 = e^{-C}·I

  double coeff = exp_neg_c;  // e^{-C}·C^k/k! at k = 0
  for (uint32_t k = 0; k < iterations; ++k) {
    propagate(t_current, &t_next);
    coeff *= damping / static_cast<double>(k + 1);
    s_hat.AddScaled(t_next, coeff);
    std::swap(t_current, t_next);
  }
  return s_hat;
}

uint32_t ResolveIterations(const SimRankOptions& options) {
  return options.iterations > 0
             ? options.iterations
             : DifferentialIterationsExact(options.damping, options.epsilon);
}

}  // namespace

Result<DenseMatrix> DifferentialSimRankWithMst(const DiGraph& graph,
                                               const TransitionMst& mst,
                                               const SimRankOptions& options,
                                               KernelStats* stats) {
  if (!options.Valid()) {
    return Status::InvalidArgument("invalid SimRank options");
  }
  const uint32_t n = graph.n();
  const uint32_t iterations = ResolveIterations(options);

  OpCounter ops;
  MemoryTracker mem;
  WallTimer timer;
  timer.Start();

  internal::OipScratch scratch;
  internal::PrepareScratch(mst, n, &scratch);
  TrackAlloc(&mem, internal::ScratchBytes(scratch));
  TrackAlloc(&mem, mst.MemoryBytes());

  DenseMatrix result = RunDifferentialIteration(
      n, iterations, options.damping,
      [&](const DenseMatrix& current, DenseMatrix* next) {
        internal::OipPropagate(mst, current, next, /*scale=*/1.0,
                               /*pin_diagonal=*/false, &ops, &scratch);
      });
  timer.Stop();

  if (stats != nullptr) {
    stats->iterations = iterations;
    stats->seconds_iterate = timer.ElapsedSeconds();
    stats->ops += ops.counts();
    stats->aux_peak_bytes = std::max(stats->aux_peak_bytes, mem.peak_bytes());
    stats->score_buffers = 3;  // T_k, T_{k+1}, Ŝ accumulator
  }
  return result;
}

Result<DenseMatrix> DifferentialSimRank(const DiGraph& graph,
                                        const SimRankOptions& options,
                                        DsrBackend backend,
                                        KernelStats* stats) {
  if (!options.Valid()) {
    return Status::InvalidArgument("invalid SimRank options");
  }
  if (backend == DsrBackend::kOip) {
    WallTimer setup_timer;
    setup_timer.Start();
    OpCounter setup_ops;
    Result<TransitionMst> mst = DmstReduce(graph, {}, &setup_ops);
    setup_timer.Stop();
    if (!mst.ok()) return mst.status();
    if (stats != nullptr) {
      stats->seconds_setup = setup_timer.ElapsedSeconds();
      stats->ops += setup_ops.counts();
    }
    return DifferentialSimRankWithMst(graph, *mst, options, stats);
  }

  // psum backend.
  const uint32_t n = graph.n();
  const uint32_t iterations = ResolveIterations(options);
  OpCounter ops;
  MemoryTracker mem;
  WallTimer timer;
  timer.Start();
  ScopedTrackedBytes partial_buf(&mem, static_cast<uint64_t>(n) * 8);
  DenseMatrix result = RunDifferentialIteration(
      n, iterations, options.damping,
      [&](const DenseMatrix& current, DenseMatrix* next) {
        internal::PsumPropagate(graph, current, next, /*scale=*/1.0,
                                /*pin_diagonal=*/false,
                                /*sieve_threshold=*/0.0, &ops);
      });
  timer.Stop();
  if (stats != nullptr) {
    stats->iterations = iterations;
    stats->seconds_iterate = timer.ElapsedSeconds();
    stats->ops += ops.counts();
    stats->aux_peak_bytes = std::max(stats->aux_peak_bytes, mem.peak_bytes());
    stats->score_buffers = 3;
  }
  return result;
}

}  // namespace simrank
