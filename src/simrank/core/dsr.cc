#include "simrank/core/dsr.h"

#include <cmath>
#include <utility>

#include "simrank/common/memory_tracker.h"
#include "simrank/common/timer.h"
#include "simrank/core/bounds.h"
#include "simrank/core/oip.h"
#include "simrank/core/parallel.h"
#include "simrank/core/psum.h"

namespace simrank {

namespace {

/// Runs the Eq. 15 accumulation over the given T-step kernel. The Ŝ +=
/// coeff·T update is row-blocked across the same executor (row-wise, so
/// the result is independent of the split); without this the O(n²)
/// accumulation would Amdahl-cap the parallel speedup of the propagation.
DenseMatrix RunDifferentialIteration(uint32_t n, uint32_t iterations,
                                     double damping,
                                     PropagationKernel& kernel,
                                     PropagationExecutor& executor,
                                     OpCounter* ops) {
  const double exp_neg_c = std::exp(-damping);
  DenseMatrix t_current = DenseMatrix::Identity(n);
  DenseMatrix t_next(n, n);
  DenseMatrix s_hat = DenseMatrix::Identity(n);
  s_hat.Scale(exp_neg_c);  // Ŝ_0 = e^{-C}·I

  double coeff = exp_neg_c;  // e^{-C}·C^k/k! at k = 0
  for (uint32_t k = 0; k < iterations; ++k) {
    RunPropagation(kernel, executor, t_current, &t_next, /*scale=*/1.0,
                   /*pin_diagonal=*/false, ops);
    coeff *= damping / static_cast<double>(k + 1);
    executor.ParallelFor(0, n, [&](uint64_t row) {
      double* dst = s_hat.Row(static_cast<uint32_t>(row));
      const double* src = t_next.Row(static_cast<uint32_t>(row));
      for (uint32_t j = 0; j < n; ++j) dst[j] += coeff * src[j];
    });
    std::swap(t_current, t_next);
  }
  return s_hat;
}

uint32_t ResolveIterations(const SimRankOptions& options) {
  return options.iterations > 0
             ? options.iterations
             : DifferentialIterationsExact(options.damping, options.epsilon);
}

}  // namespace

Result<DenseMatrix> DifferentialSimRankWithMst(const DiGraph& graph,
                                               const TransitionMst& mst,
                                               const SimRankOptions& options,
                                               KernelStats* stats) {
  if (!options.Valid()) {
    return Status::InvalidArgument("invalid SimRank options");
  }
  const uint32_t n = graph.n();
  const uint32_t iterations = ResolveIterations(options);

  OpCounter ops;
  MemoryTracker mem;
  WallTimer timer;
  timer.Start();

  PropagationExecutor executor(options.threads);
  internal::OipPropagationKernel kernel(graph, mst, executor);
  TrackAlloc(&mem, kernel.TotalScratchBytes());
  TrackAlloc(&mem, mst.MemoryBytes());

  DenseMatrix result = RunDifferentialIteration(n, iterations,
                                                options.damping, kernel,
                                                executor, &ops);
  timer.Stop();

  if (stats != nullptr) {
    stats->iterations = iterations;
    stats->seconds_iterate = timer.ElapsedSeconds();
    stats->ops += ops.counts();
    stats->aux_peak_bytes = std::max(stats->aux_peak_bytes, mem.peak_bytes());
    stats->score_buffers = 3;  // T_k, T_{k+1}, Ŝ accumulator
  }
  return result;
}

Result<DenseMatrix> DifferentialSimRank(const DiGraph& graph,
                                        const SimRankOptions& options,
                                        DsrBackend backend,
                                        KernelStats* stats) {
  if (!options.Valid()) {
    return Status::InvalidArgument("invalid SimRank options");
  }
  if (backend == DsrBackend::kOip) {
    WallTimer setup_timer;
    setup_timer.Start();
    OpCounter setup_ops;
    Result<TransitionMst> mst = DmstReduce(
        graph, {DmstPolicy::kMinCost, options.threads}, &setup_ops);
    setup_timer.Stop();
    if (!mst.ok()) return mst.status();
    if (stats != nullptr) {
      stats->seconds_setup = setup_timer.ElapsedSeconds();
      stats->ops += setup_ops.counts();
    }
    return DifferentialSimRankWithMst(graph, *mst, options, stats);
  }

  // psum backend.
  const uint32_t n = graph.n();
  const uint32_t iterations = ResolveIterations(options);
  OpCounter ops;
  MemoryTracker mem;
  WallTimer timer;
  timer.Start();
  PropagationExecutor executor(options.threads);
  internal::PsumPropagationKernel kernel(graph, /*sieve_threshold=*/0.0,
                                         executor);
  ScopedTrackedBytes partial_buf(&mem, kernel.TotalScratchBytes());
  DenseMatrix result = RunDifferentialIteration(n, iterations,
                                                options.damping, kernel,
                                                executor, &ops);
  timer.Stop();
  if (stats != nullptr) {
    stats->iterations = iterations;
    stats->seconds_iterate = timer.ElapsedSeconds();
    stats->ops += ops.counts();
    stats->aux_peak_bytes = std::max(stats->aux_peak_bytes, mem.peak_bytes());
    stats->score_buffers = 3;
  }
  return result;
}

}  // namespace simrank
