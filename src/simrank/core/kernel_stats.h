// Per-run metrics reported by every SimRank kernel.
#ifndef OIPSIM_SIMRANK_CORE_KERNEL_STATS_H_
#define OIPSIM_SIMRANK_CORE_KERNEL_STATS_H_

#include <cstdint>

#include "simrank/common/op_counter.h"

namespace simrank {

/// Timing, operation counts and memory accounting for one SimRank run.
///
/// `aux_peak_bytes` counts *intermediate* structures only (partial-sum
/// vectors, the MST and its diff lists, outer caches) — the same accounting
/// Fig. 6d of the paper uses. O(n²) score matrices are tallied separately
/// in `score_buffers` because every dense all-pairs method needs them and
/// their size is fully determined by n.
struct KernelStats {
  /// Iterations actually performed.
  uint32_t iterations = 0;

  /// Wall time of the setup phase ("Build MST" in Fig. 6b; SVD for mtx-SR).
  double seconds_setup = 0.0;
  /// Wall time of the iterative phase ("Share Sums" in Fig. 6b).
  double seconds_iterate = 0.0;
  double seconds_total() const { return seconds_setup + seconds_iterate; }

  /// Arithmetic work (machine-independent cost measure).
  OpCounts ops;

  /// Peak bytes of O(n)-scale intermediate memory.
  uint64_t aux_peak_bytes = 0;

  /// Number of n x n double buffers the method keeps live (2 for the
  /// iterative methods' current/next pair, 3 for OIP-DSR which also keeps
  /// the accumulator Ŝ).
  uint32_t score_buffers = 2;
};

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_CORE_KERNEL_STATS_H_
