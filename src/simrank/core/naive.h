// Naive iterative SimRank (Jeh & Widom, KDD'02) — Eq. (2) evaluated
// directly, O(K·d²·n²) time. Kept as the ground-truth baseline the paper
// compares against and as the simplest possible reference implementation.
#ifndef OIPSIM_SIMRANK_CORE_NAIVE_H_
#define OIPSIM_SIMRANK_CORE_NAIVE_H_

#include "simrank/common/memory_tracker.h"
#include "simrank/common/status.h"
#include "simrank/core/kernel_stats.h"
#include "simrank/core/options.h"
#include "simrank/graph/digraph.h"
#include "simrank/linalg/dense_matrix.h"

namespace simrank {

/// Computes all-pairs SimRank scores with the naive double-summation
/// iteration. `stats` may be null.
Result<DenseMatrix> NaiveSimRank(const DiGraph& graph,
                                 const SimRankOptions& options,
                                 KernelStats* stats = nullptr);

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_CORE_NAIVE_H_
