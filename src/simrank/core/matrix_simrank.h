// Matrix-form SimRank via sparse linear algebra — the correctness oracle.
//
// Eq. (3) of the paper: S = C·Q·S·Qᵀ + (1-C)·Iₙ with Q the backward
// transition matrix. Two iteration variants are provided:
//  * pinned-diagonal (default): S_{k+1} = C·Q·S_k·Qᵀ off-diagonal, diag 1 —
//    exactly the component recursion of Eq. (2), so naive/psum/OIP must
//    match it to machine precision;
//  * pure matrix form: S_{k+1} = C·Q·S_k·Qᵀ + (1-C)·Iₙ — the Li et al.
//    matrix model, whose diagonal is ≤ 1 rather than exactly 1.
#ifndef OIPSIM_SIMRANK_CORE_MATRIX_SIMRANK_H_
#define OIPSIM_SIMRANK_CORE_MATRIX_SIMRANK_H_

#include "simrank/common/status.h"
#include "simrank/core/kernel_stats.h"
#include "simrank/core/options.h"
#include "simrank/graph/digraph.h"
#include "simrank/linalg/dense_matrix.h"

namespace simrank {

/// Which matrix recursion to iterate.
enum class MatrixForm {
  kPinnedDiagonal,  ///< component form of Eq. (2) — matches the iterative
                    ///< algorithms exactly.
  kPure,            ///< Eq. (3) with the (1-C)·I term.
};

/// Computes SimRank by dense-sandwich iteration with the sparse Q.
Result<DenseMatrix> MatrixSimRank(const DiGraph& graph,
                                  const SimRankOptions& options,
                                  MatrixForm form = MatrixForm::kPinnedDiagonal,
                                  KernelStats* stats = nullptr);

/// Computes the differential SimRank Ŝ_K via the same sparse sandwich —
/// the oracle for core/dsr.h.
Result<DenseMatrix> MatrixDifferentialSimRank(const DiGraph& graph,
                                              const SimRankOptions& options,
                                              KernelStats* stats = nullptr);

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_CORE_MATRIX_SIMRANK_H_
