// DMST-Reduce: the transition minimum spanning tree over in-neighbour sets
// (paper, Section III and Procedure DMST-Reduce).
//
// Vertices of the weighted digraph G* are the distinct non-empty
// in-neighbour sets plus a root ∅. An edge (A -> B) exists when |A| <= |B|
// and costs TC(A -> B) = min{|A ⊖ B|, |B| - 1} (Eq. 7) — the number of
// additions needed to derive Partial_B from Partial_A. The directed MST of
// G* rooted at ∅ is the cheapest plan for computing every partial sum; its
// tree edges also fix the partition P(I(b)) = {I(b)∩I(a), I(b)\I(a)} of
// Eq. (8) used for both inner and outer sharing.
//
// Because every edge of G* goes from an earlier set to a later set in the
// (size, id) order, G* is a DAG and the MST is found by the min-in-edge
// rule (see mst/arborescence.h). An inverted index over set contents
// restricts candidate parents to sets that share at least one vertex —
// exact, since a disjoint parent costs |A| + |B| > |B| - 1 and can never
// beat the root edge.
#ifndef OIPSIM_SIMRANK_CORE_DMST_H_
#define OIPSIM_SIMRANK_CORE_DMST_H_

#include <cstdint>
#include <vector>

#include "simrank/common/op_counter.h"
#include "simrank/common/status.h"
#include "simrank/core/set_index.h"
#include "simrank/graph/digraph.h"
#include "simrank/mst/tree.h"

namespace simrank {

/// Parent-selection policy, exposed for the ablation benchmark.
enum class DmstPolicy {
  /// Cheapest parent per Eq. (7) — the paper's DMST-Reduce.
  kMinCost,
  /// Previous set in the (size, id) order — a chain without optimisation.
  kPreviousInOrder,
  /// Every set computed from scratch — degenerates OIP to psum-SR.
  kAlwaysRoot,
};

struct DmstOptions {
  DmstPolicy policy = DmstPolicy::kMinCost;
  /// Worker threads for the embarrassingly-parallel phases (diff-list
  /// materialisation and schedule construction; parent *selection* stays
  /// serial — it is the one op-counted, order-dependent part). 0 = hardware
  /// concurrency. The output is identical for every value.
  uint32_t num_threads = 1;
};

/// One step of the partial-sum replay schedule: derive the partial sums of
/// `set` either from scratch (zero-fill + sum its contents) or by diffing
/// against the set handled by the previous step.
struct ScheduleStep {
  uint32_t set = 0;
  bool from_scratch = false;
  /// Vertices whose s_k rows are added / subtracted. For a from-scratch
  /// step, `add` is the whole set and `sub` is empty.
  std::vector<VertexId> add;
  std::vector<VertexId> sub;
};

/// The transition MST plus the per-edge diff lists the kernels replay.
struct TransitionMst {
  /// Distinct in-neighbour sets; tree node s+1 corresponds to set s and
  /// node 0 is the root ∅.
  InSetIndex sets;
  /// Spanning arborescence of G* rooted at node 0.
  Tree tree;

  /// Per tree node v (set s = v-1): add[v] = I(s) \ I(parent) and
  /// sub[v] = I(parent) \ I(s); for children of the root add[v] = I(s).
  /// Replaying sub/add against a cached partial sum is Eq. (9).
  std::vector<std::vector<VertexId>> add;
  std::vector<std::vector<VertexId>> sub;

  /// Execution schedule: the tree's preorder linearised into consecutive
  /// diffs. Step i derives set_i's partial sums from step i-1's set by a
  /// direct Eq. (9) diff when that beats recomputing (the Eq. 7 cap), so a
  /// single O(n) vector suffices with no undo pass; an Euler-tour argument
  /// bounds the total schedule cost by twice the MST cost, and the per-step
  /// cap bounds it by psum-SR's cost.
  std::vector<ScheduleStep> schedule;
  /// Σ over steps of the additions per target column.
  uint64_t schedule_cost = 0;

  /// Σ over tree edges of TC (Eq. 7) — additions per target column.
  uint64_t total_cost = 0;
  /// Σ_s (|I(s)| - 1): the cost psum-SR pays without sharing.
  uint64_t cost_without_sharing = 0;
  /// Mean |add| + |sub| over *shared* (non-root) edges: the paper's d⊖.
  double avg_symmetric_difference = 0.0;
  /// Number of tree edges that reuse a cached parent (tagged # in Fig. 2b).
  uint32_t shared_edges = 0;

  /// Fraction of additions saved versus computing every set from scratch.
  double share_ratio() const {
    return cost_without_sharing == 0
               ? 0.0
               : 1.0 - static_cast<double>(total_cost) /
                           static_cast<double>(cost_without_sharing);
  }

  /// Bytes of the tree + diff lists (the setup part of Fig. 6d's
  /// intermediate memory).
  uint64_t MemoryBytes() const;
};

/// Builds the transition MST. O(d·n²) worst-case time, O(n + Σ|⊖|) space.
Result<TransitionMst> DmstReduce(const DiGraph& graph,
                                 const DmstOptions& options = {},
                                 OpCounter* ops = nullptr);

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_CORE_DMST_H_
