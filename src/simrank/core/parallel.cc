#include "simrank/core/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>

namespace simrank {

namespace {

/// Below 2x this many items per block, blocking buys nothing and the
/// decomposition collapses to one block (bit-identical to the fully
/// sequential kernels on small graphs).
constexpr uint32_t kMinItemsPerBlock = 32;
/// Cap so per-block bookkeeping (one forced from-scratch rebuild per OIP
/// block, one OpCounter per block) stays negligible.
constexpr uint32_t kMaxBlocks = 64;

}  // namespace

uint32_t DefaultBlockCount(uint64_t items) {
  if (items < 2 * static_cast<uint64_t>(kMinItemsPerBlock)) return 1;
  return static_cast<uint32_t>(
      std::min<uint64_t>(kMaxBlocks, items / kMinItemsPerBlock));
}

std::vector<BlockRange> PartitionBlocks(uint64_t items, uint32_t num_blocks) {
  std::vector<BlockRange> blocks;
  if (items == 0) {
    blocks.push_back(BlockRange{0, 0});
    return blocks;
  }
  const uint64_t n = std::max<uint32_t>(num_blocks, 1);
  const uint64_t count = std::min<uint64_t>(n, items);
  const uint64_t base = items / count;
  const uint64_t extra = items % count;
  blocks.reserve(count);
  uint64_t begin = 0;
  for (uint64_t b = 0; b < count; ++b) {
    const uint64_t size = base + (b < extra ? 1 : 0);
    blocks.push_back(BlockRange{static_cast<uint32_t>(begin),
                                static_cast<uint32_t>(begin + size)});
    begin += size;
  }
  return blocks;
}

PropagationExecutor::PropagationExecutor(uint32_t num_threads)
    : num_threads_(ThreadPool::ResolveThreadCount(
          num_threads == 0 ? 0 : num_threads)) {
  if (num_threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(num_threads_);
  }
}

PropagationExecutor::~PropagationExecutor() = default;

uint32_t PropagationExecutor::SlotsFor(uint32_t num_blocks) const {
  return std::max<uint32_t>(1, std::min(num_threads_, num_blocks));
}

void PropagationExecutor::Run(uint32_t num_blocks, const BlockFn& fn,
                              OpCounter* ops) {
  if (num_blocks == 0) return;
  const uint32_t slots = SlotsFor(num_blocks);
  if (pool_ == nullptr || slots <= 1) {
    // Inline execution visits blocks in index order, so counting directly
    // into `ops` matches the parallel path's ordered merge below.
    for (uint32_t block = 0; block < num_blocks; ++block) {
      fn(block, 0, ops);
    }
    return;
  }

  std::vector<OpCounter> block_ops(ops != nullptr ? num_blocks : 0);
  std::atomic<uint32_t> next_block{0};
  // Per-invocation latch rather than the pool-wide Wait(), mirroring
  // ThreadPool::ParallelFor; blocks are claimed dynamically because their
  // costs differ (set sizes and diff lists vary), which is safe since no
  // shared state depends on the assignment.
  std::mutex done_mutex;
  std::condition_variable done_cv;
  uint32_t remaining = slots;
  for (uint32_t slot = 0; slot < slots; ++slot) {
    pool_->Submit([&, slot] {
      for (;;) {
        const uint32_t block =
            next_block.fetch_add(1, std::memory_order_relaxed);
        if (block >= num_blocks) break;
        fn(block, slot, block_ops.empty() ? nullptr : &block_ops[block]);
      }
      std::lock_guard<std::mutex> lock(done_mutex);
      if (--remaining == 0) done_cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&remaining] { return remaining == 0; });

  if (ops != nullptr) {
    for (const OpCounter& counter : block_ops) ops->Merge(counter.counts());
  }
}

void PropagationExecutor::ParallelFor(
    uint64_t begin, uint64_t end, const std::function<void(uint64_t)>& fn) {
  if (pool_ == nullptr) {
    for (uint64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  pool_->ParallelFor(begin, end, fn);
}

void RunPropagation(PropagationKernel& kernel, PropagationExecutor& executor,
                    const DenseMatrix& current, DenseMatrix* next,
                    double scale, bool pin_diagonal, OpCounter* ops) {
  executor.Run(
      kernel.num_blocks(),
      [&](uint32_t block, uint32_t slot, OpCounter* block_ops) {
        kernel.PropagateBlock(block, slot, current, next, scale, pin_diagonal,
                              block_ops);
      },
      ops);
}

}  // namespace simrank
