// OIP-SR: SimRank with optimised in-neighbour partitioning — the paper's
// primary contribution (Algorithm 1 + Procedure OP).
//
// Per iteration, partial sums are computed along the transition MST's
// replay schedule: each set's partial-sum vector is derived from the
// previous set's by the Eq. (9) diff lists (inner sharing, Section III-A),
// and for every source set the outer sums over target sets replay the same
// schedule with scalar diffs (outer sharing, Section III-B). A single O(n)
// partial-sum vector stays alive — the O(n) intermediate memory of
// Proposition 5 — and each step costs min{|⊖|, |I|-1} additions per
// column, never more than psum-SR's from-scratch cost.
#ifndef OIPSIM_SIMRANK_CORE_OIP_H_
#define OIPSIM_SIMRANK_CORE_OIP_H_

#include "simrank/common/status.h"
#include "simrank/core/dmst.h"
#include "simrank/core/kernel_stats.h"
#include "simrank/core/options.h"
#include "simrank/core/parallel.h"
#include "simrank/graph/digraph.h"
#include "simrank/linalg/dense_matrix.h"

namespace simrank {

/// Computes all-pairs SimRank with inner + outer partial-sums sharing.
/// Builds the transition MST internally (stats->seconds_setup).
Result<DenseMatrix> OipSimRank(const DiGraph& graph,
                               const SimRankOptions& options,
                               KernelStats* stats = nullptr);

/// Same, but reuses a prebuilt transition MST (e.g. to share the setup
/// across parameter sweeps, or to ablate DmstPolicy choices).
Result<DenseMatrix> OipSimRankWithMst(const DiGraph& graph,
                                      const TransitionMst& mst,
                                      const SimRankOptions& options,
                                      KernelStats* stats = nullptr);

namespace internal {

/// Reusable scratch buffers for OipPropagate (one partial-sum vector and
/// one output-row buffer — the O(n) intermediate memory).
struct OipScratch {
  std::vector<double> partial;
  /// Row buffer: positions of vertices with empty in-neighbour sets stay 0
  /// forever; every other position is overwritten on each schedule replay,
  /// so the buffer is zeroed once here rather than per source set.
  std::vector<double> row;
  /// Vertices with I(v) = ∅ — their output rows must be zeroed explicitly
  /// (everything else is fully overwritten each propagation).
  std::vector<VertexId> empty_in_vertices;
  /// 1 / |I(s)| per set, precomputed to keep divisions out of the p² outer
  /// loop.
  std::vector<double> inv_set_size;
};

/// Prepares scratch for the given MST/graph (idempotent).
void PrepareScratch(const TransitionMst& mst, uint32_t n,
                    OipScratch* scratch);

/// Bytes of scratch accounted as intermediate memory.
uint64_t ScratchBytes(const OipScratch& scratch);

/// One propagation step with full sharing:
///   next(a,b) = scale / (|I(a)||I(b)|) · Σ_{j∈I(b)} Σ_{i∈I(a)} current(i,j),
/// diagonal pinned to 1 when `pin_diagonal` (conventional model) or left as
/// propagated (differential model's Tk). This is the single-block reference
/// replay: its addition counts match the schedule's static cost model
/// exactly (see tests/core/schedule_properties_test.cc).
void OipPropagate(const TransitionMst& mst, const DenseMatrix& current,
                  DenseMatrix* next, double scale, bool pin_diagonal,
                  OpCounter* ops, OipScratch* scratch);

/// Block-parallel OIP propagation (core/parallel.h). The replay schedule is
/// partitioned into contiguous slices; each slice replays independently
/// with its own OipScratch, its first step forced from scratch (rebuilding
/// the slice's first partial-sum vector from the set's contents instead of
/// diffing against the previous slice's last set). Because every source
/// set appears exactly once in the schedule, slices write disjoint rows of
/// `next`; block 0 additionally owns the rows of vertices with I(v) = ∅.
/// The decomposition depends only on the schedule length, so results are
/// bitwise identical for any worker count, and the Eq. (7) cap still
/// bounds every forced rebuild by psum-SR's from-scratch cost.
class OipPropagationKernel final : public PropagationKernel {
 public:
  /// Provisions one OipScratch per worker slot of `executor`
  /// (executor.SlotsFor(num_blocks()), bounded by the block count).
  OipPropagationKernel(const DiGraph& graph, const TransitionMst& mst,
                       const PropagationExecutor& executor);

  uint32_t num_blocks() const override {
    return static_cast<uint32_t>(blocks_.size());
  }
  void PropagateBlock(uint32_t block, uint32_t slot,
                      const DenseMatrix& current, DenseMatrix* next,
                      double scale, bool pin_diagonal,
                      OpCounter* ops) override;

  /// Bytes of all per-slot scratch, for aux-memory accounting.
  uint64_t TotalScratchBytes() const;

 private:
  const DiGraph& graph_;
  const TransitionMst& mst_;
  uint32_t n_;
  std::vector<BlockRange> blocks_;
  std::vector<OipScratch> scratches_;
};

}  // namespace internal
}  // namespace simrank

#endif  // OIPSIM_SIMRANK_CORE_OIP_H_
