#include "simrank/core/engine.h"

#include <array>
#include <utility>

#include "simrank/core/dsr.h"
#include "simrank/core/matrix_simrank.h"
#include "simrank/core/naive.h"
#include "simrank/core/oip.h"
#include "simrank/core/psum.h"

namespace simrank {

namespace {

Result<DenseMatrix> ComputeNaive(const DiGraph& graph,
                                 const EngineOptions& options,
                                 KernelStats* stats) {
  return NaiveSimRank(graph, options.simrank, stats);
}

Result<DenseMatrix> ComputePsum(const DiGraph& graph,
                                const EngineOptions& options,
                                KernelStats* stats) {
  return PsumSimRank(graph, options.simrank, stats);
}

Result<DenseMatrix> ComputeOip(const DiGraph& graph,
                               const EngineOptions& options,
                               KernelStats* stats) {
  return OipSimRank(graph, options.simrank, stats);
}

Result<DenseMatrix> ComputeOipDsr(const DiGraph& graph,
                                  const EngineOptions& options,
                                  KernelStats* stats) {
  return DifferentialSimRank(graph, options.simrank, DsrBackend::kOip, stats);
}

Result<DenseMatrix> ComputePsumDsr(const DiGraph& graph,
                                   const EngineOptions& options,
                                   KernelStats* stats) {
  return DifferentialSimRank(graph, options.simrank, DsrBackend::kPsum,
                             stats);
}

Result<DenseMatrix> ComputeMatrix(const DiGraph& graph,
                                  const EngineOptions& options,
                                  KernelStats* stats) {
  return MatrixSimRank(graph, options.simrank, MatrixForm::kPinnedDiagonal,
                       stats);
}

Result<DenseMatrix> ComputeMtx(const DiGraph& graph,
                               const EngineOptions& options,
                               KernelStats* stats) {
  return MtxSimRank(graph, options.simrank, options.mtx, stats);
}

// In Algorithm enum order (checked by the registry tests).
constexpr std::array<AlgorithmInfo, 7> kRegistry{{
    {Algorithm::kNaive, "naive-SR", "naive",
     "Jeh & Widom direct iteration, O(K*d^2*n^2)", ScoreModel::kConventional,
     /*parallel=*/true, &ComputeNaive},
    {Algorithm::kPsum, "psum-SR", "psum",
     "partial sums memoisation (Lizorkin et al.)",
     ScoreModel::kConventional, /*parallel=*/true, &ComputePsum},
    {Algorithm::kOip, "OIP-SR", "oip",
     "MST-shared partial sums (this paper)", ScoreModel::kConventional,
     /*parallel=*/true, &ComputeOip},
    {Algorithm::kOipDsr, "OIP-DSR", "oip-dsr",
     "differential model + MST sharing (this paper)",
     ScoreModel::kDifferential, /*parallel=*/true, &ComputeOipDsr},
    {Algorithm::kPsumDsr, "psum-DSR", "psum-dsr",
     "differential model + psum backend (ablation)",
     ScoreModel::kDifferential, /*parallel=*/true, &ComputePsumDsr},
    {Algorithm::kMatrix, "mtx-oracle", "matrix",
     "sparse matrix-form oracle", ScoreModel::kConventional,
     /*parallel=*/true, &ComputeMatrix},
    {Algorithm::kMtx, "mtx-SR", "mtx",
     "SVD low-rank baseline (Li et al.)", ScoreModel::kLowRank,
     /*parallel=*/false, &ComputeMtx},
}};

}  // namespace

std::span<const AlgorithmInfo> AlgorithmRegistry() { return kRegistry; }

const AlgorithmInfo* FindAlgorithm(Algorithm algorithm) {
  for (const AlgorithmInfo& info : kRegistry) {
    if (info.algorithm == algorithm) return &info;
  }
  return nullptr;
}

const AlgorithmInfo* FindAlgorithmByFlag(std::string_view flag) {
  for (const AlgorithmInfo& info : kRegistry) {
    if (flag == info.flag) return &info;
  }
  return nullptr;
}

std::string AlgorithmFlagList() {
  std::string flags;
  for (const AlgorithmInfo& info : kRegistry) {
    if (!flags.empty()) flags += '|';
    flags += info.flag;
  }
  return flags;
}

const char* AlgorithmName(Algorithm algorithm) {
  const AlgorithmInfo* info = FindAlgorithm(algorithm);
  return info != nullptr ? info->name : "?";
}

Result<SimRankRun> ComputeSimRank(const DiGraph& graph,
                                  const EngineOptions& options) {
  const AlgorithmInfo* info = FindAlgorithm(options.algorithm);
  if (info == nullptr) {
    return Status::InvalidArgument("unknown algorithm");
  }
  SimRankRun run;
  Result<DenseMatrix> scores = info->compute(graph, options, &run.stats);
  if (!scores.ok()) return scores.status();
  run.scores = std::move(scores).value();
  return run;
}

}  // namespace simrank
