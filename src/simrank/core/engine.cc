#include "simrank/core/engine.h"

#include "simrank/core/dsr.h"
#include "simrank/core/matrix_simrank.h"
#include "simrank/core/naive.h"
#include "simrank/core/oip.h"
#include "simrank/core/psum.h"

namespace simrank {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kNaive:
      return "naive-SR";
    case Algorithm::kPsum:
      return "psum-SR";
    case Algorithm::kOip:
      return "OIP-SR";
    case Algorithm::kOipDsr:
      return "OIP-DSR";
    case Algorithm::kPsumDsr:
      return "psum-DSR";
    case Algorithm::kMatrix:
      return "mtx-oracle";
    case Algorithm::kMtx:
      return "mtx-SR";
  }
  return "?";
}

Result<SimRankRun> ComputeSimRank(const DiGraph& graph,
                                  const EngineOptions& options) {
  SimRankRun run;
  Result<DenseMatrix> scores = [&]() -> Result<DenseMatrix> {
    switch (options.algorithm) {
      case Algorithm::kNaive:
        return NaiveSimRank(graph, options.simrank, &run.stats);
      case Algorithm::kPsum:
        return PsumSimRank(graph, options.simrank, &run.stats);
      case Algorithm::kOip:
        return OipSimRank(graph, options.simrank, &run.stats);
      case Algorithm::kOipDsr:
        return DifferentialSimRank(graph, options.simrank, DsrBackend::kOip,
                                   &run.stats);
      case Algorithm::kPsumDsr:
        return DifferentialSimRank(graph, options.simrank, DsrBackend::kPsum,
                                   &run.stats);
      case Algorithm::kMatrix:
        return MatrixSimRank(graph, options.simrank,
                             MatrixForm::kPinnedDiagonal, &run.stats);
      case Algorithm::kMtx:
        return MtxSimRank(graph, options.simrank, options.mtx, &run.stats);
    }
    return Status::InvalidArgument("unknown algorithm");
  }();
  if (!scores.ok()) return scores.status();
  run.scores = std::move(scores).value();
  return run;
}

}  // namespace simrank
