#include "simrank/core/psum.h"

#include <vector>

#include "simrank/common/memory_tracker.h"
#include "simrank/common/timer.h"
#include "simrank/core/bounds.h"

namespace simrank {

namespace internal {

void PsumPropagate(const DiGraph& graph, const DenseMatrix& current,
                   DenseMatrix* next, double scale, bool pin_diagonal,
                   double sieve_threshold, OpCounter* ops) {
  OIPSIM_CHECK(next != nullptr);
  const uint32_t n = graph.n();
  // Only rows of in-neighbour-less vertices need zeroing: every other row
  // is rewritten below, and columns of in-neighbour-less vertices are
  // never written and were zero in every earlier iterate.
  for (VertexId v = 0; v < n; ++v) {
    if (graph.InDegree(v) == 0) {
      double* dst = next->Row(v);
      std::fill(dst, dst + n, 0.0);
    }
  }
  std::vector<double> partial(n, 0.0);

  for (VertexId a = 0; a < n; ++a) {
    auto in_a = graph.InNeighbors(a);
    if (in_a.empty()) continue;
    // Partial_{I(a)}(y) for all y — memoised once per source a (Eq. 4).
    for (VertexId y = 0; y < n; ++y) partial[y] = 0.0;
    for (VertexId i : in_a) {
      const double* row = current.Row(i);
      for (VertexId y = 0; y < n; ++y) partial[y] += row[y];
    }
    CountPartialAdds(ops, static_cast<uint64_t>(in_a.size() > 0
                                                    ? (in_a.size() - 1)
                                                    : 0) *
                              n);

    const double inv_deg_a = 1.0 / static_cast<double>(in_a.size());
    double* next_row = next->Row(a);
    for (VertexId b = 0; b < n; ++b) {
      auto in_b = graph.InNeighbors(b);
      if (in_b.empty()) continue;
      // Outer sum over I(b), one partial-sum lookup per in-neighbour
      // (Eq. 5).
      double sum = 0.0;
      for (VertexId j : in_b) sum += partial[j];
      CountOuterAdds(ops, in_b.size() - 1);
      double value =
          scale * inv_deg_a * sum / static_cast<double>(in_b.size());
      CountMultiplies(ops, 2);
      if (sieve_threshold > 0.0 && value < sieve_threshold && a != b) {
        value = 0.0;
      }
      next_row[b] = value;
    }
  }
  if (pin_diagonal) {
    for (VertexId a = 0; a < n; ++a) (*next)(a, a) = 1.0;
  }
}

PsumPropagationKernel::PsumPropagationKernel(
    const DiGraph& graph, double sieve_threshold,
    const PropagationExecutor& executor)
    : graph_(graph), sieve_threshold_(sieve_threshold) {
  blocks_ = PartitionBlocks(graph.n(), DefaultBlockCount(graph.n()));
  partials_.resize(executor.SlotsFor(num_blocks()));
  for (auto& partial : partials_) partial.assign(graph.n(), 0.0);
}

uint64_t PsumPropagationKernel::TotalScratchBytes() const {
  uint64_t total = 0;
  for (const auto& partial : partials_) {
    total += partial.size() * sizeof(double);
  }
  return total;
}

void PsumPropagationKernel::PropagateBlock(uint32_t block, uint32_t slot,
                                           const DenseMatrix& current,
                                           DenseMatrix* next, double scale,
                                           bool pin_diagonal,
                                           OpCounter* ops) {
  OIPSIM_CHECK(next != nullptr);
  const uint32_t n = graph_.n();
  const BlockRange range = blocks_[block];
  std::vector<double>& partial = partials_[slot];

  for (VertexId a = range.begin; a < range.end; ++a) {
    auto in_a = graph_.InNeighbors(a);
    if (in_a.empty()) {
      // Essential-pair selection: the whole row is a-priori zero (but the
      // diagonal may still be pinned below).
      double* dst = next->Row(a);
      std::fill(dst, dst + n, 0.0);
      if (pin_diagonal) (*next)(a, a) = 1.0;
      continue;
    }
    // Partial_{I(a)}(y) for all y — memoised once per source a (Eq. 4).
    for (VertexId y = 0; y < n; ++y) partial[y] = 0.0;
    for (VertexId i : in_a) {
      const double* row = current.Row(i);
      for (VertexId y = 0; y < n; ++y) partial[y] += row[y];
    }
    CountPartialAdds(ops, static_cast<uint64_t>(in_a.size() - 1) * n);

    const double inv_deg_a = 1.0 / static_cast<double>(in_a.size());
    double* next_row = next->Row(a);
    for (VertexId b = 0; b < n; ++b) {
      auto in_b = graph_.InNeighbors(b);
      if (in_b.empty()) {
        next_row[b] = 0.0;
        continue;
      }
      // Outer sum over I(b), one partial-sum lookup per in-neighbour
      // (Eq. 5).
      double sum = 0.0;
      for (VertexId j : in_b) sum += partial[j];
      CountOuterAdds(ops, in_b.size() - 1);
      double value =
          scale * inv_deg_a * sum / static_cast<double>(in_b.size());
      CountMultiplies(ops, 2);
      if (sieve_threshold_ > 0.0 && value < sieve_threshold_ && a != b) {
        value = 0.0;
      }
      next_row[b] = value;
    }
    if (pin_diagonal) next_row[a] = 1.0;
  }
}

}  // namespace internal

Result<DenseMatrix> PsumSimRank(const DiGraph& graph,
                                const SimRankOptions& options,
                                KernelStats* stats) {
  if (!options.Valid()) {
    return Status::InvalidArgument("invalid SimRank options");
  }
  const uint32_t n = graph.n();
  const uint32_t iterations =
      options.iterations > 0
          ? options.iterations
          : ConventionalIterationsForAccuracy(options.damping,
                                              options.epsilon);
  OpCounter ops;
  MemoryTracker mem;
  WallTimer timer;
  timer.Start();

  PropagationExecutor executor(options.threads);
  internal::PsumPropagationKernel kernel(graph, options.sieve_threshold,
                                         executor);
  DenseMatrix current = DenseMatrix::Identity(n);
  DenseMatrix next(n, n);
  ScopedTrackedBytes partial_buf(&mem, kernel.TotalScratchBytes());
  for (uint32_t k = 0; k < iterations; ++k) {
    RunPropagation(kernel, executor, current, &next, options.damping,
                   /*pin_diagonal=*/true, &ops);
    std::swap(current, next);
  }
  timer.Stop();

  if (stats != nullptr) {
    stats->iterations = iterations;
    stats->seconds_setup = 0.0;
    stats->seconds_iterate = timer.ElapsedSeconds();
    stats->ops = ops.counts();
    stats->aux_peak_bytes = mem.peak_bytes();
    stats->score_buffers = 2;
  }
  return current;
}

}  // namespace simrank
