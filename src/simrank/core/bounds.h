// Accuracy bounds and iteration-count estimates (Section IV of the paper).
//
// Conventional SimRank converges geometrically: |s_k - s| <= C^{k+1}, so a
// desired accuracy eps needs K = ceil(log_C eps) iterations (Lizorkin et
// al.). The differential model converges like an exponential series:
// |ŝ_k - ŝ| <= C^{k+1}/(k+1)! (Proposition 7), giving the far smaller K'
// of Corollary 1 (via the Lambert W function) and Corollary 2 (via a
// log-log closed form that avoids W).
#ifndef OIPSIM_SIMRANK_CORE_BOUNDS_H_
#define OIPSIM_SIMRANK_CORE_BOUNDS_H_

#include <cstdint>

namespace simrank {

/// Principal branch W0 of the Lambert W function (w·e^w = x) for x >= 0.
/// Accurate to ~1e-12 via Halley iteration.
double LambertW0(double x);

/// Conventional-model iteration count: the smallest K with C^{K+1} <= eps,
/// i.e. ceil(log_C(eps) - 1) — the paper's K = ⌈log_C eps⌉ guarantee
/// stated in terms of the |s_K - s| <= C^{K+1} error bound (Section IV's
/// worked example: C = 0.8, eps = 1e-4 -> K = 41).
uint32_t ConventionalIterationsForAccuracy(double damping, double epsilon);

/// Error bound of conventional SimRank after k iterations: C^{k+1}.
double ConventionalErrorBound(double damping, uint32_t k);

/// Error bound of differential SimRank after k iterations (Prop. 7):
/// C^{k+1} / (k+1)!.
double DifferentialErrorBound(double damping, uint32_t k);

/// Smallest K' with C^{K'+1}/(K'+1)! <= eps, by direct search. This is the
/// ground truth the two closed-form estimates below approximate.
uint32_t DifferentialIterationsExact(double damping, double epsilon);

/// Corollary 1 estimate of K' using the Lambert W function:
///   with eps0 = 1/(sqrt(2*pi)*eps) and t = ln(eps0)/(e*C),
///   K' = ceil(ln(eps0)/W(t) - 1).
/// Requires eps < 1/sqrt(2*pi) (otherwise returns 1).
uint32_t DifferentialIterationsLambertW(double damping, double epsilon);

/// Corollary 2 estimate of K' avoiding the W function:
///   with phi = ln(ln(eps0)/(e*C)),
///   K' = ceil(ln(eps0)/(phi - ln(phi)) - 1).
/// Valid when phi > 1, i.e. eps below the corollary's threshold
/// (1/sqrt(2*pi)) * exp(-C*e^2); returns the Lambert-W estimate otherwise.
uint32_t DifferentialIterationsLogEstimate(double damping, double epsilon);

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_CORE_BOUNDS_H_
