// Differential SimRank (Section IV of the paper).
//
// The revised model replaces the geometric series of conventional SimRank
// by the exponential series
//   Ŝ = e^{-C} · Σ_{i>=0} (C^i / i!) · Qⁱ (Qᵀ)ⁱ            (Eq. 13)
// which is the unique solution of the matrix differential equation
// dŜ(t)/dt = Q·Ŝ(t)·Qᵀ with Ŝ(0) = e^{-C}·I at t = C (Definition 2,
// Proposition 6). Iterating
//   T_{k+1} = Q·T_k·Qᵀ,  Ŝ_{k+1} = Ŝ_k + e^{-C}·C^{k+1}/(k+1)!·T_{k+1}
// (Eq. 15) converges with error C^{k+1}/(k+1)! (Proposition 7), i.e.
// exponentially faster than the conventional C^{k+1}. The component form
// of T's recursion matches conventional SimRank without the damping factor
// and without the pinned diagonal, so the same psum / OIP sharing
// machinery applies.
#ifndef OIPSIM_SIMRANK_CORE_DSR_H_
#define OIPSIM_SIMRANK_CORE_DSR_H_

#include "simrank/common/status.h"
#include "simrank/core/dmst.h"
#include "simrank/core/kernel_stats.h"
#include "simrank/core/options.h"
#include "simrank/graph/digraph.h"
#include "simrank/linalg/dense_matrix.h"

namespace simrank {

/// Which sharing backend evaluates the T_{k+1} = Q·T_k·Qᵀ step.
enum class DsrBackend {
  kOip,   ///< OIP-DSR: MST-shared partial sums (the paper's combination).
  kPsum,  ///< psum-backed: partial sums without MST sharing.
};

/// Computes the differential SimRank scores Ŝ_K. When
/// `options.iterations` == 0, K is the exact minimal K' with
/// C^{K'+1}/(K'+1)! <= options.epsilon (Proposition 7 / Corollary 1).
Result<DenseMatrix> DifferentialSimRank(const DiGraph& graph,
                                        const SimRankOptions& options,
                                        DsrBackend backend = DsrBackend::kOip,
                                        KernelStats* stats = nullptr);

/// Same, reusing a prebuilt transition MST (kOip backend only).
Result<DenseMatrix> DifferentialSimRankWithMst(const DiGraph& graph,
                                               const TransitionMst& mst,
                                               const SimRankOptions& options,
                                               KernelStats* stats = nullptr);

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_CORE_DSR_H_
