// Minimal blocking HTTP/1.1 client for loopback use.
//
// This is the measurement and verification side of the serving story: the
// throughput bench's closed-loop clients and the server tests both need a
// real socket speaking real HTTP at the server, without pulling in a
// dependency. One connection object = one keep-alive TCP connection; Get()
// writes a request and blocks until the full response (status, headers,
// Content-Length-delimited body) is read. Not a general client: no TLS, no
// redirects, no chunked responses — exactly the dialect SimRankServer
// emits.
#ifndef OIPSIM_SIMRANK_SERVER_HTTP_CLIENT_H_
#define OIPSIM_SIMRANK_SERVER_HTTP_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "simrank/common/status.h"

namespace simrank {

/// One parsed response.
struct HttpClientResponse {
  int status = 0;
  /// Header fields in response order, names lower-cased.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First value of `name` (lower-case), or nullptr.
  const std::string* FindHeader(std::string_view name) const;
};

/// A blocking keep-alive connection to 127.0.0.1:port. Movable, not
/// copyable; the socket closes on destruction.
class LoopbackHttpClient {
 public:
  /// Connects; fails with IoError when nothing is listening.
  static Result<LoopbackHttpClient> Connect(uint16_t port);

  /// Connects with a per-operation socket timeout: every send/recv on the
  /// connection fails with IoError after `timeout_ms` of no progress
  /// instead of blocking forever — what the router's scatter-gather fan-out
  /// needs to bound a dead shard's damage. 0 keeps fully blocking sockets.
  static Result<LoopbackHttpClient> Connect(uint16_t port,
                                            uint32_t timeout_ms);

  LoopbackHttpClient(LoopbackHttpClient&& other) noexcept;
  LoopbackHttpClient& operator=(LoopbackHttpClient&& other) noexcept;
  LoopbackHttpClient(const LoopbackHttpClient&) = delete;
  LoopbackHttpClient& operator=(const LoopbackHttpClient&) = delete;
  ~LoopbackHttpClient();

  /// Issues `GET target HTTP/1.1` and reads the full response. After a
  /// `Connection: close` response the connection is unusable (IoError on
  /// the next call). `extra_headers` are appended to the request verbatim
  /// (e.g. {"X-Simrank-Trace", "<id>"} for trace propagation).
  Result<HttpClientResponse> Get(
      const std::string& target,
      const std::vector<std::pair<std::string, std::string>>& extra_headers =
          {});

  /// Issues `POST target` with a Content-Length body and reads the full
  /// response.
  Result<HttpClientResponse> Post(
      const std::string& target, std::string_view body,
      std::string_view content_type = "text/plain",
      const std::vector<std::pair<std::string, std::string>>& extra_headers =
          {});

  /// Sends raw bytes without awaiting a response (pipelining tests).
  Status SendRaw(std::string_view bytes);

  /// Half-closes the write side (shutdown(SHUT_WR)): the server sees EOF
  /// but must still answer everything already sent.
  Status ShutdownWrite();

  /// Reads one response off the wire (pairs with SendRaw).
  Result<HttpClientResponse> ReadResponse();

 private:
  explicit LoopbackHttpClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  /// Bytes read past the previous response (pipelined tail).
  std::string buffer_;
};

/// One-shot convenience: connect, GET, close.
Result<HttpClientResponse> HttpGet(uint16_t port, const std::string& target);

/// One-shot convenience: connect, POST, close.
Result<HttpClientResponse> HttpPost(uint16_t port, const std::string& target,
                                    std::string_view body,
                                    std::string_view content_type =
                                        "text/plain");

/// The number following `"key":` in `body`, searched from `*cursor` (or
/// the start when null); `*cursor` advances past the key so repeated
/// fields can be walked in order. The server emits doubles in shortest-
/// round-trip form, so the value parses back bit-exact — the serving
/// tests and bench compare it bitwise against direct QueryEngine results.
/// Aborts (checked error) when the key is absent: these are verification
/// helpers, not a JSON parser.
double FindJsonNumber(const std::string& body, const std::string& key,
                      size_t* cursor = nullptr);

/// The array of numbers following `"key":[` in `body`, in order.
std::vector<double> FindJsonNumberArray(const std::string& body,
                                        const std::string& key);

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_SERVER_HTTP_CLIENT_H_
