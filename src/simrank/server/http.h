// Dependency-free HTTP/1.1 subset for the SimRank serving frontend.
//
// The server speaks exactly the slice of HTTP/1.1 a point-query-and-update
// API needs: GET requests with percent-encoded query strings,
// Content-Length-delimited bodies (the POST update/batch endpoints),
// keep-alive and pipelining. Everything else is rejected *early* with the
// right status code — the parser is the admission boundary for malformed
// and oversized input, so hardened limits live here, not in the event
// loop:
//   - request line + headers over HttpLimits::max_request_bytes -> 431
//     (reported as soon as the prefix exceeds the limit, before a
//     terminator ever arrives, so a slow-drip oversized request cannot
//     buffer unboundedly);
//   - request target over max_target_bytes -> 414;
//   - more than max_headers header fields -> 431;
//   - a body over max_body_bytes -> 413 (reported from the header alone,
//     before any body byte is buffered);
//   - any Transfer-Encoding -> 501: bodies are Content-Length-delimited
//     only, because skipping an unparsed chunked body would desynchronise
//     pipelined connections;
//   - anything structurally malformed (bad request line, stray control
//     bytes in header names, broken percent-escapes) -> 400;
//   - HTTP versions other than 1.0/1.1 -> 505.
// Whether a *particular* endpoint/method accepts a body is routing policy,
// enforced by the server, not here.
// Parsing is incremental: feed the buffered bytes, get kComplete with the
// consumed prefix length (pipelining = parse again on the remainder),
// kNeedMore, or kError with the status to send before closing.
#ifndef OIPSIM_SIMRANK_SERVER_HTTP_H_
#define OIPSIM_SIMRANK_SERVER_HTTP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace simrank {

/// Hardening limits of the request parser. Defaults fit point-query URLs
/// with room to spare; all three are enforced per request, not per read.
struct HttpLimits {
  /// Upper bound on request line + headers together, in bytes.
  size_t max_request_bytes = 8192;
  /// Upper bound on the request-target (path + query string), in bytes.
  size_t max_target_bytes = 2048;
  /// Upper bound on the number of header fields.
  size_t max_headers = 64;
  /// Upper bound on a Content-Length body (update batches, pair lists).
  size_t max_body_bytes = 1u << 20;
};

/// One parsed request. Strings own their bytes (the input buffer may be
/// compacted or refilled after parsing).
struct HttpRequest {
  std::string method;
  /// Request path before '?', percent-decoded.
  std::string path;
  /// Query parameters in request order, keys and values percent-decoded
  /// ('+' decodes to space). A key without '=' yields an empty value.
  std::vector<std::pair<std::string, std::string>> params;
  /// Header fields in request order, names lowercased, values trimmed.
  /// Kept verbatim (beyond the parser's validation) — routing-relevant
  /// headers like X-Simrank-Trace are read from here.
  std::vector<std::pair<std::string, std::string>> headers;
  /// Content-Length body bytes (empty for the common GET case).
  std::string body;
  /// 0 for HTTP/1.0, 1 for HTTP/1.1.
  int minor_version = 1;
  /// Persistent-connection semantics after this request: HTTP/1.1 unless
  /// "Connection: close", HTTP/1.0 only with "Connection: keep-alive".
  bool keep_alive = true;

  /// First value of `key`, or nullptr when absent.
  const std::string* FindParam(std::string_view key) const;

  /// First value of header `name` (must be given lowercase), or nullptr
  /// when absent.
  const std::string* FindHeader(std::string_view name) const;
};

/// Outcome of one ParseHttpRequest call.
struct HttpParseStatus {
  enum Outcome {
    kComplete,  ///< One request parsed; `consumed` bytes belong to it.
    kNeedMore,  ///< Input is a valid proper prefix; read more and retry.
    kError,     ///< Protocol violation; reply `error_status` and close.
  };

  Outcome outcome = kNeedMore;
  /// Bytes of input consumed by the request (kComplete only).
  size_t consumed = 0;
  /// HTTP status to send before closing (kError only):
  /// 400/413/414/431/501/505.
  int error_status = 0;
  /// Human-readable reason for the error response body (kError only).
  std::string error_message;
};

/// Parses the first request out of `input`. `out` is overwritten on
/// kComplete and unspecified otherwise.
HttpParseStatus ParseHttpRequest(std::string_view input,
                                 const HttpLimits& limits, HttpRequest* out);

/// Percent-decodes `in` into `out` (overwritten); '+' becomes a space when
/// `plus_as_space`. Returns false on a truncated or non-hex escape.
bool PercentDecode(std::string_view in, bool plus_as_space, std::string* out);

/// Serialization knobs of BuildHttpResponse.
struct HttpResponseOptions {
  bool keep_alive = true;
  std::string_view content_type = "application/json";
  /// Extra headers, e.g. {"Retry-After", "1"} on admission rejections.
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

/// Serializes a complete response: status line, Content-Type,
/// Content-Length, Connection, the extra headers, then `body`.
std::string BuildHttpResponse(int status, std::string_view body,
                              const HttpResponseOptions& options);

/// Canonical reason phrase ("OK", "Too Many Requests", ...); "Unknown" for
/// statuses the server never emits.
const char* HttpStatusReason(int status);

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_SERVER_HTTP_H_
