#include "simrank/server/http.h"

#include <algorithm>
#include <cctype>
#include <cstring>

#include "simrank/common/string_util.h"

namespace simrank {
namespace {

bool AsciiEqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// True when the comma-separated `header_value` contains `token`
/// (case-insensitive, surrounding whitespace ignored) — the grammar of
/// Connection and Transfer-Encoding values.
bool HasToken(std::string_view header_value, std::string_view token) {
  for (std::string_view piece : StrSplit(header_value, ',')) {
    if (AsciiEqualsIgnoreCase(StrTrim(piece), token)) return true;
  }
  return false;
}

/// RFC 9110 token characters, the legal alphabet of methods and header
/// names. The explicit NUL check matters: strchr would otherwise match
/// '\0' against the literal's terminator and bless embedded NUL bytes.
bool IsTokenChar(char c) {
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  return c != '\0' && std::strchr("!#$%&'*+-.^_`|~", c) != nullptr;
}

bool IsToken(std::string_view text) {
  if (text.empty()) return false;
  return std::all_of(text.begin(), text.end(), IsTokenChar);
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

HttpParseStatus Error(int status, std::string message) {
  HttpParseStatus result;
  result.outcome = HttpParseStatus::kError;
  result.error_status = status;
  result.error_message = std::move(message);
  return result;
}

/// Splits the query string on '&' and percent-decodes each key and value.
bool ParseQueryString(std::string_view query, HttpRequest* out) {
  if (query.empty()) return true;
  for (std::string_view piece : StrSplit(query, '&')) {
    if (piece.empty()) continue;  // "a=1&&b=2" tolerated
    const size_t eq = piece.find('=');
    std::pair<std::string, std::string> param;
    const std::string_view raw_key =
        eq == std::string_view::npos ? piece : piece.substr(0, eq);
    const std::string_view raw_value =
        eq == std::string_view::npos ? std::string_view() : piece.substr(eq + 1);
    if (!PercentDecode(raw_key, /*plus_as_space=*/true, &param.first) ||
        !PercentDecode(raw_value, /*plus_as_space=*/true, &param.second)) {
      return false;
    }
    out->params.push_back(std::move(param));
  }
  return true;
}

}  // namespace

bool PercentDecode(std::string_view in, bool plus_as_space,
                   std::string* out) {
  out->clear();
  out->reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    if (c == '%') {
      if (i + 2 >= in.size()) return false;
      const int hi = HexValue(in[i + 1]);
      const int lo = HexValue(in[i + 2]);
      if (hi < 0 || lo < 0) return false;
      out->push_back(static_cast<char>(hi * 16 + lo));
      i += 2;
    } else if (c == '+' && plus_as_space) {
      out->push_back(' ');
    } else {
      out->push_back(c);
    }
  }
  return true;
}

const std::string* HttpRequest::FindParam(std::string_view key) const {
  for (const auto& [k, v] : params) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return &v;
  }
  return nullptr;
}

HttpParseStatus ParseHttpRequest(std::string_view input,
                                 const HttpLimits& limits, HttpRequest* out) {
  *out = HttpRequest();
  const size_t header_end = input.find("\r\n\r\n");
  if (header_end == std::string_view::npos) {
    // The limit applies to the un-terminated prefix too: a client dripping
    // an endless header section is cut off at the cap, not buffered.
    if (input.size() > limits.max_request_bytes) {
      return Error(431, StrFormat("request head exceeds %zu bytes",
                                  limits.max_request_bytes));
    }
    return HttpParseStatus{HttpParseStatus::kNeedMore, 0, 0, ""};
  }
  const size_t head_bytes = header_end + 4;
  if (head_bytes > limits.max_request_bytes) {
    return Error(431, StrFormat("request head exceeds %zu bytes",
                                limits.max_request_bytes));
  }
  const std::string_view head = input.substr(0, header_end);

  // --- request line -------------------------------------------------------
  const size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos) {
    return Error(400, "malformed request line");
  }
  const std::string_view method = request_line.substr(0, sp1);
  const std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = request_line.substr(sp2 + 1);
  if (!IsToken(method)) return Error(400, "malformed method token");
  if (version == "HTTP/1.1") {
    out->minor_version = 1;
  } else if (version == "HTTP/1.0") {
    out->minor_version = 0;
  } else if (version.substr(0, 5) == "HTTP/") {
    return Error(505, "only HTTP/1.0 and HTTP/1.1 are supported");
  } else {
    return Error(400, "malformed HTTP version");
  }
  if (target.size() > limits.max_target_bytes) {
    return Error(414, StrFormat("request target exceeds %zu bytes",
                                limits.max_target_bytes));
  }
  if (target.empty() || target[0] != '/') {
    return Error(400, "request target must be origin-form (start with '/')");
  }

  // --- header fields ------------------------------------------------------
  bool connection_close = false;
  bool connection_keep_alive = false;
  bool content_length_seen = false;
  uint64_t content_length = 0;
  size_t header_count = 0;
  size_t cursor = line_end == std::string_view::npos ? head.size()
                                                     : line_end + 2;
  while (cursor < head.size()) {
    size_t eol = head.find("\r\n", cursor);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(cursor, eol - cursor);
    cursor = eol + 2;
    if (++header_count > limits.max_headers) {
      return Error(431, StrFormat("more than %zu header fields",
                                  limits.max_headers));
    }
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Error(400, "malformed header field");
    }
    const std::string_view name = line.substr(0, colon);
    if (!IsToken(name)) return Error(400, "malformed header field name");
    const std::string_view value = StrTrim(line.substr(colon + 1));
    for (const char c : value) {
      if (static_cast<unsigned char>(c) < 0x20 && c != '\t') {
        return Error(400, "control byte in header field value");
      }
    }
    std::string lower_name(name);
    for (char& c : lower_name) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    out->headers.emplace_back(std::move(lower_name), std::string(value));
    if (AsciiEqualsIgnoreCase(name, "content-length")) {
      uint64_t length = 0;
      if (!ParseUint64(value, &length)) {
        return Error(400, "malformed Content-Length");
      }
      if (length > limits.max_body_bytes) {
        // Rejected from the header alone: the oversized body is never
        // buffered.
        return Error(413, StrFormat("request body exceeds %zu bytes",
                                    limits.max_body_bytes));
      }
      if (content_length_seen && length != content_length) {
        return Error(400, "conflicting Content-Length headers");
      }
      content_length = length;
      content_length_seen = true;
    } else if (AsciiEqualsIgnoreCase(name, "transfer-encoding")) {
      return Error(
          501, "only Content-Length-delimited request bodies are supported");
    } else if (AsciiEqualsIgnoreCase(name, "connection")) {
      connection_close = connection_close || HasToken(value, "close");
      connection_keep_alive =
          connection_keep_alive || HasToken(value, "keep-alive");
    }
  }
  out->keep_alive = connection_close
                        ? false
                        : (out->minor_version >= 1 || connection_keep_alive);

  // --- target decoding ----------------------------------------------------
  const size_t question = target.find('?');
  const std::string_view raw_path = target.substr(0, question);
  if (!PercentDecode(raw_path, /*plus_as_space=*/false, &out->path)) {
    return Error(400, "malformed percent-escape in request path");
  }
  if (question != std::string_view::npos &&
      !ParseQueryString(target.substr(question + 1), out)) {
    return Error(400, "malformed percent-escape in query string");
  }
  out->method = std::string(method);

  // --- body ---------------------------------------------------------------
  // Content-Length-delimited; consumed covers head + body so a pipelined
  // successor parses from the right offset.
  if (content_length > input.size() - head_bytes) {
    return HttpParseStatus{HttpParseStatus::kNeedMore, 0, 0, ""};
  }
  out->body = std::string(input.substr(head_bytes, content_length));

  HttpParseStatus result;
  result.outcome = HttpParseStatus::kComplete;
  result.consumed = head_bytes + static_cast<size_t>(content_length);
  return result;
}

const char* HttpStatusReason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 403:
      return "Forbidden";
    case 405:
      return "Method Not Allowed";
    case 409:
      return "Conflict";
    case 413:
      return "Content Too Large";
    case 414:
      return "URI Too Long";
    case 421:
      return "Misdirected Request";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    case 505:
      return "HTTP Version Not Supported";
    default:
      return "Unknown";
  }
}

std::string BuildHttpResponse(int status, std::string_view body,
                              const HttpResponseOptions& options) {
  std::string out = StrFormat("HTTP/1.1 %d %s\r\n", status,
                              HttpStatusReason(status));
  out.append("Content-Type: ");
  out.append(options.content_type);
  out.append("\r\n");
  out.append(StrFormat("Content-Length: %zu\r\n", body.size()));
  out.append(options.keep_alive ? "Connection: keep-alive\r\n"
                                : "Connection: close\r\n");
  for (const auto& [name, value] : options.extra_headers) {
    out.append(name);
    out.append(": ");
    out.append(value);
    out.append("\r\n");
  }
  out.append("\r\n");
  out.append(body);
  return out;
}

}  // namespace simrank
