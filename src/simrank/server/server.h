// Epoll HTTP serving frontend over a QueryEngine.
//
// One event-loop thread owns every socket: nonblocking accept on the
// listener, buffered reads, request parsing (server/http.h), response
// flushing, keep-alive and pipelining. Query work never runs on the loop:
// a validated request is *dispatched* to a worker pool and the connection
// keeps reading-writing other traffic until the worker's completion is
// handed back through an eventfd-signalled queue. Cheap introspection
// endpoints (/healthz, /v1/stats) are answered inline on the loop, so they
// respond even when every worker is busy — that is what makes the stats
// endpoint usable as an overload probe.
//
// Admission control protects cold rows: a request beyond the global
// in-flight cap is rejected with 429, one beyond its endpoint's in-flight
// limit with 503, both carrying Retry-After — the request queue is
// bounded by construction and the server never buffers work it cannot
// serve. Rejections are serialized on the loop thread, so they stay fast
// and allocation-light under fanout.
//
// Endpoints (JSON unless noted):
//   GET  /v1/pair?a=&b=        s(a, b)
//   GET  /v1/single_source?v=  the full row s(v, .)
//   GET  /v1/topk?v=&k=        k most similar vertices (default k=10)
//   POST /v1/batch_pair        body: "A B" per line -> {"scores":[...]}
//   POST /v1/update            body: "+ SRC DST"/"- SRC DST" per line;
//                              patches the live index (requires an
//                              IndexUpdater, 503 otherwise)
//   POST /v1/compact           merges base+overlay into the configured
//                              index file and resets the WAL
//   GET  /v1/stats             request/admission/cache/index/update
//                              counters + per-endpoint latency histograms
//   GET  /metrics              the same counters in Prometheus text
//                              exposition (text/plain)
//   GET  /healthz              liveness probe (text/plain)
//   GET  /v1/debug/slow        captured slow/sampled query traces (ring)
//   GET  /v1/debug/profile     sampling CPU profile: arms SIGPROF timers
//                              for ?seconds=N (default 2), returns
//                              flamegraph collapsed-stack text; 409 when
//                              a session is already running
//   GET  /v1/debug/timeseries  metrics history ring as JSON
//                              (?metric=NAME&window=SECONDS; no args
//                              lists the available families)
// /healthz, /v1/stats, /metrics, /v1/debug/slow and /v1/debug/timeseries
// are answered inline; /v1/debug/profile parks the connection and answers
// from a dedicated capture thread (the loop keeps serving while the
// profile runs, and profiling a loaded server is the whole point);
// everything else dispatches to the worker pool under admission control.
// Update/compact serialize inside the IndexUpdater while reads keep
// flowing against RCU overlay snapshots — queries are never blocked by an
// in-flight update, and a query admitted mid-update serves either the
// pre- or post-batch index, never a mixture.
//
// Lifecycle: Bind() (port 0 picks a free port, see port()), then Serve()
// blocks until Shutdown() — which is async-signal-safe, so a SIGINT/
// SIGTERM handler may call it directly. Shutdown drains: the listener
// closes first, in-flight queries finish and flush, then Serve returns.
#ifndef OIPSIM_SIMRANK_SERVER_SERVER_H_
#define OIPSIM_SIMRANK_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "simrank/cluster/shard_plan.h"
#include "simrank/common/latency_histogram.h"
#include "simrank/common/status.h"
#include "simrank/common/thread_pool.h"
#include "simrank/extra/topk.h"
#include "simrank/index/index_updater.h"
#include "simrank/index/query_engine.h"
#include "simrank/obs/log_sink.h"
#include "simrank/obs/metrics_history.h"
#include "simrank/obs/profiler.h"
#include "simrank/obs/slow_query_log.h"
#include "simrank/obs/trace.h"
#include "simrank/obs/watchdog.h"
#include "simrank/server/http.h"

namespace simrank {

/// The dispatchable endpoints (inline endpoints are not admission-
/// controlled and not enumerated here).
enum class ServerEndpoint : uint8_t {
  kPair = 0,
  kSingleSource,
  kTopK,
  kBatchPair,
  kUpdate,
  kCompact,
};
inline constexpr uint32_t kNumServerEndpoints = 6;

/// Returns the path of `endpoint` ("/v1/pair", ...).
const char* ServerEndpointPath(ServerEndpoint endpoint);

/// Short label of `endpoint` ("pair", "batch_pair", ...) — stats JSON keys
/// and Prometheus label values.
const char* ServerEndpointName(ServerEndpoint endpoint);

/// Parses a /v1/batch_pair body: one "A B" pair per line, '#' comments and
/// blank lines ignored. Shared by the server's worker and the router
/// (which must split a batch across shards pair by pair).
Result<std::vector<std::pair<VertexId, VertexId>>> ParsePairBatch(
    std::string_view body, uint32_t max_pairs);

/// Serving knobs. Defaults suit a loopback deployment; Validate() gates
/// every field the flags can reach.
struct ServerOptions {
  /// Listening address; queries carry no authentication, so binding
  /// non-loopback addresses is the operator's deliberate choice.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 lets the kernel pick one (read it back via port()).
  uint16_t port = 8080;
  /// Worker threads executing queries; 0 means hardware concurrency.
  uint32_t threads = 0;
  /// Global cap on dispatched-but-unfinished queries; the 429 boundary.
  uint32_t max_inflight = 64;
  /// Per-endpoint cap on dispatched-but-unfinished queries; the 503
  /// boundary (a single-source fanout cannot starve cheap pair traffic).
  uint32_t max_endpoint_inflight = 32;
  /// Connections beyond this are accepted and immediately closed.
  uint32_t max_connections = 1024;
  /// Retry-After value on 429/503 responses, in seconds.
  uint32_t retry_after_seconds = 1;
  /// Synthetic per-query service time, in milliseconds. Zero in
  /// production; the admission-control tests and the throughput bench use
  /// it to hold queries in flight deterministically.
  uint32_t handler_delay_ms = 0;
  /// Upper bound on pairs in one /v1/batch_pair body.
  uint32_t max_batch_pairs = 4096;
  /// Where POST /v1/compact writes the merged index (typically the served
  /// index path itself: the rename is atomic and an mmap backend keeps
  /// serving the old inode). Required for compaction over HTTP.
  std::string compact_path;
  /// Compress the segments of compacted indexes (match the base file's
  /// encoding to keep byte-identity with a fresh build using that flag).
  bool compact_compress = false;
  /// Where compaction persists the updated graph (binary format). The WAL
  /// reset makes the original --graph file stale, so a restart points
  /// --graph here; compaction refuses to run when this is unset.
  std::string compact_graph_path;
  /// Request-parser hardening limits.
  HttpLimits http;

  /// Shard role. With `sharded`, the server owns exactly
  /// shard_plan.shards[shard_id]'s vertex range: /v1/pair and
  /// /v1/batch_pair answer only when every queried vertex is in range
  /// (421 Misdirected Request otherwise), /v1/single_source and /v1/topk
  /// are 421 outright on a partial shard (their answers span every
  /// shard; the router composes them), and the /internal/* exchange
  /// endpoints the router fans out to come alive. Bind() cross-checks the
  /// plan's n and graph fingerprint against the served index, so a shard
  /// started with the wrong plan (or the wrong shard file) fails loudly.
  bool sharded = false;
  ShardPlan shard_plan;
  uint32_t shard_id = 0;
  /// Replica role: this server mirrors a primary by tailing its WAL, so
  /// direct writes are refused — /v1/update and /v1/compact answer 403
  /// (the WAL tailer applies batches through the IndexUpdater directly,
  /// not over HTTP).
  bool replica = false;

  /// Tracing knobs (all default off — the near-free null-recorder path).
  /// A request is traced when any of these asks for it:
  ///   - the client sent `?trace=1` (trace JSON inlined in the envelope),
  ///   - the client sent an `X-Simrank-Trace: <hex id>` header (trace JSON
  ///     returned in the `X-Simrank-Trace-Json` response header, body
  ///     untouched — the router's propagation channel),
  ///   - it won the `trace_sample` coin flip,
  ///   - `slow_query_us` > 0 (every dispatched request is traced so the
  ///     slow ones have a trace to capture).
  /// Sampled traces and traces slower than `slow_query_us` land in the
  /// slow-query ring (GET /v1/debug/slow) and, when `trace_log_path` is
  /// set, as JSONL lines. Every trace folds into the per-stage latency
  /// histograms and stage counters in /v1/stats and /metrics.
  double trace_sample = 0.0;
  uint64_t slow_query_us = 0;
  uint32_t slow_ring_capacity = 64;
  std::string trace_log_path;
  /// One JSONL line per routed request (method, path, status, bytes,
  /// micros, trace id), written off the event loop.
  std::string access_log_path;

  /// Self-diagnosis knobs (obs/). The /v1/debug/profile endpoint is
  /// always live; these tune the background pieces.
  /// Continuous low-rate profiling: one collapsed profile JSONL line per
  /// period appended to this path (empty = off). Periods overlapping an
  /// on-demand /v1/debug/profile session are skipped.
  std::string profile_log_path;
  uint32_t profile_log_hz = 19;
  uint32_t profile_log_period_s = 60;
  /// Watchdog monitor cadence and the epoll-loop heartbeat lag that
  /// counts as a stall (warned once per episode, with the loop thread's
  /// stack). watchdog_interval_ms = 0 disables the monitor thread.
  uint32_t watchdog_interval_ms = 100;
  uint64_t watchdog_stall_us = 1000000;
  /// Metrics history ring behind /v1/debug/timeseries: window and sample
  /// interval. metrics_history_window_s = 0 disables the ring.
  uint32_t metrics_history_window_s = 900;
  uint32_t metrics_history_interval_ms = 1000;
  /// Test hook: when nonzero, GET /v1/debug/stall?ms=N (N capped by this
  /// value) sleeps on the loop thread — a deterministic injected stall
  /// for the watchdog tests. Zero in production; the endpoint is then
  /// 404.
  uint32_t debug_stall_limit_ms = 0;

  Status Validate() const;
};

/// Monotonic counters since construction, readable from any thread.
struct ServerStats {
  /// Dispatchable requests routed per endpoint (admitted or rejected).
  uint64_t requests[kNumServerEndpoints] = {};
  uint64_t requests_stats = 0;
  uint64_t requests_healthz = 0;
  uint64_t requests_metrics = 0;
  /// GET /v1/wal polls served (WAL shipping to replicas).
  uint64_t requests_wal = 0;
  /// GET /v1/debug/slow polls served.
  uint64_t requests_debug_slow = 0;
  /// GET /v1/debug/profile sessions requested / GET /v1/debug/timeseries
  /// polls served.
  uint64_t requests_debug_profile = 0;
  uint64_t requests_debug_timeseries = 0;
  /// Requests that ran with a live trace recorder.
  uint64_t traced_requests = 0;
  /// Traces captured into the slow-query ring (threshold or sampled).
  uint64_t slow_captured = 0;
  /// Responses by status class.
  uint64_t responses_2xx = 0;
  uint64_t responses_4xx = 0;
  uint64_t responses_5xx = 0;
  /// Admission rejections: global cap (429) and endpoint cap (503).
  uint64_t rejected_inflight = 0;
  uint64_t rejected_endpoint = 0;
  /// 421 Misdirected Request responses (shard role: the queried vertex
  /// range is not this shard's).
  uint64_t rejected_misdirected = 0;
  uint64_t connections_accepted = 0;
  uint64_t connections_open = 0;
  /// Dispatched queries not yet completed.
  uint64_t inflight = 0;
};

/// Single-listener epoll server. The engine (and its index) must outlive
/// the server. Linux-only (epoll/eventfd); Bind returns Unimplemented
/// elsewhere.
class SimRankServer {
 public:
  /// `updater` (optional) enables the live-update endpoints; it must
  /// outlive the server and be bound to the same index the engine serves.
  SimRankServer(QueryEngine& engine, const ServerOptions& options,
                IndexUpdater* updater = nullptr);
  ~SimRankServer();

  OIPSIM_DISALLOW_COPY_AND_ASSIGN(SimRankServer);

  /// Validates options, binds and listens. Must precede Serve().
  Status Bind();

  /// The bound port (the kernel's choice when options.port was 0).
  uint16_t port() const { return bound_port_; }

  /// Runs the event loop on the calling thread until Shutdown(). Returns
  /// OK after a clean drain.
  Status Serve();

  /// Requests a graceful stop: stop accepting, finish in-flight queries,
  /// flush, return from Serve. Callable from any thread and from signal
  /// handlers (it only touches an atomic and an eventfd write).
  void Shutdown();

  /// Faults in the storage pages of `vertices` (mmap backends) and
  /// populates the row cache, so first traffic hits warm rows. Call
  /// between Bind and Serve.
  Status Warm(std::span<const VertexId> vertices);

  /// Counter snapshot; safe concurrently with Serve.
  ServerStats stats() const;

  /// Latency snapshot of one dispatchable endpoint (dispatch to
  /// completion, including queue wait); safe concurrently with Serve.
  LatencyHistogram::Snapshot latency(ServerEndpoint endpoint) const {
    return latency_[static_cast<size_t>(endpoint)].snapshot();
  }

  /// Latency snapshot of one trace stage, folded from traced requests
  /// only; safe concurrently with Serve.
  LatencyHistogram::Snapshot stage_latency(TraceStage stage) const {
    return stage_latency_[static_cast<size_t>(stage)].snapshot();
  }

  /// The slow-query ring (always constructed; empty when nothing was
  /// captured).
  const SlowQueryLog& slow_log() const { return slow_log_; }

  /// Watchdog view: epoll-loop heartbeat lag, worker queue depth, stall
  /// count; safe concurrently with Serve.
  Watchdog::Snapshot watchdog_snapshot() const {
    return watchdog_.snapshot();
  }

  /// Dispatch-to-start latency (queue wait before a worker picks a query
  /// up); safe concurrently with Serve.
  LatencyHistogram::Snapshot dispatch_latency() const {
    return dispatch_latency_.snapshot();
  }

  /// The metrics history ring; null when disabled.
  const MetricsHistory* metrics_history() const {
    return metrics_history_.get();
  }

 private:
  struct Connection;
  struct Completion;

  // Event-loop steps (loop thread only).
  void HandleAccept();
  void HandleReadable(Connection* conn);
  void HandleWritable(Connection* conn);
  void ProcessBufferedRequests(Connection* conn);
  bool MaybeCloseAfterEof(Connection* conn);
  void RouteRequest(Connection* conn, const HttpRequest& request);
  void DispatchQuery(Connection* conn, ServerEndpoint endpoint,
                     const HttpRequest& request);
  /// Parks the connection and runs the profile session on a dedicated
  /// thread; the result comes back through the completion queue.
  void HandleProfileRequest(Connection* conn, const HttpRequest& request);
  /// Starts/stops the watchdog, metrics sampler, profile logger and any
  /// in-flight profile capture threads (Serve entry/exit + destructor).
  void StartDiagnostics();
  void StopDiagnostics();
  void DrainCompletions();
  void QueueResponse(Connection* conn, int status, std::string_view body,
                     const std::vector<std::pair<std::string, std::string>>&
                         extra_headers = {},
                     std::string_view content_type = "application/json");
  void QueueErrorResponse(Connection* conn, int status,
                          std::string_view message);
  void UpdateEpoll(Connection* conn);
  void CloseConnection(Connection* conn);
  std::string BuildStatsBody() const;
  std::string BuildMetricsBody() const;
  std::string BuildSlowBody() const;
  void CountResponse(int status);
  /// Folds a finished trace into the per-stage histograms and counter
  /// totals (any thread).
  void FoldTrace(const TraceRecorder& recorder);
  /// Captures a finished trace into the slow ring and trace log
  /// (any thread).
  void CaptureTrace(const TraceRecorder& recorder, std::string_view target,
                    uint64_t duration_micros);
  /// Emits one access-log JSONL line (loop thread; no-op without a sink).
  void LogAccess(const Connection& conn, int status, size_t body_bytes);

  QueryEngine& engine_;
  ServerOptions options_;
  /// Optional live-update hook; null disables /v1/update and /v1/compact.
  IndexUpdater* updater_ = nullptr;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  /// Sacrificial fd closed to accept-then-shed under EMFILE/ENFILE (the
  /// level-triggered listener would otherwise busy-spin the loop).
  int reserve_fd_ = -1;
  uint16_t bound_port_ = 0;
  std::atomic<bool> stop_{false};
  bool draining_ = false;

  /// Live connections by fd; ids disambiguate completions across fd reuse.
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;
  uint64_t next_connection_id_ = 1;

  /// Loop-thread view of admission state.
  uint32_t inflight_ = 0;
  uint32_t endpoint_inflight_[kNumServerEndpoints] = {};

  /// Worker -> loop handoff.
  std::mutex completions_mutex_;
  std::deque<Completion> completions_;

  /// Counters (relaxed atomics: read by stats() from other threads).
  mutable std::atomic<uint64_t> stat_requests_[kNumServerEndpoints] = {};
  mutable std::atomic<uint64_t> stat_requests_stats_{0};
  mutable std::atomic<uint64_t> stat_requests_healthz_{0};
  mutable std::atomic<uint64_t> stat_requests_metrics_{0};
  mutable std::atomic<uint64_t> stat_requests_wal_{0};
  mutable std::atomic<uint64_t> stat_requests_debug_slow_{0};
  mutable std::atomic<uint64_t> stat_requests_debug_profile_{0};
  mutable std::atomic<uint64_t> stat_requests_debug_timeseries_{0};
  mutable std::atomic<uint64_t> stat_traced_requests_{0};
  mutable std::atomic<uint64_t> stat_responses_2xx_{0};
  mutable std::atomic<uint64_t> stat_responses_4xx_{0};
  mutable std::atomic<uint64_t> stat_responses_5xx_{0};
  mutable std::atomic<uint64_t> stat_rejected_inflight_{0};
  mutable std::atomic<uint64_t> stat_rejected_endpoint_{0};
  mutable std::atomic<uint64_t> stat_rejected_misdirected_{0};
  mutable std::atomic<uint64_t> stat_connections_accepted_{0};
  mutable std::atomic<uint64_t> stat_connections_open_{0};
  mutable std::atomic<uint64_t> stat_inflight_{0};

  /// Dispatch-to-completion latency per dispatchable endpoint (lock-free;
  /// workers record, stats/metrics snapshot).
  LatencyHistogram latency_[kNumServerEndpoints];

  /// Per-stage latency and stage-counter totals, folded from traced
  /// requests only (untraced requests never touch these).
  LatencyHistogram stage_latency_[kNumTraceStages];
  mutable std::atomic<uint64_t> stage_counters_[kNumTraceCounters] = {};

  /// Captured slow/sampled traces (GET /v1/debug/slow).
  SlowQueryLog slow_log_;
  /// Optional JSONL sinks (--trace-log / --access-log); opened in Bind().
  std::unique_ptr<JsonlLogSink> trace_sink_;
  std::unique_ptr<JsonlLogSink> access_sink_;
  /// xorshift state for --trace-sample coin flips (loop thread only).
  uint64_t sample_state_ = 0;

  /// Self-diagnosis (obs/): loop/worker watchdog, metrics history ring +
  /// its 1 Hz sampler, continuous profile logger, on-demand profile
  /// capture threads. All stopped by StopDiagnostics() *before* pool_ is
  /// destroyed — the watchdog and sampler read pool_.queue_depth().
  Watchdog watchdog_;
  std::unique_ptr<MetricsHistory> metrics_history_;
  std::unique_ptr<MetricsSampler> metrics_sampler_;
  std::unique_ptr<ProfileLogger> profile_logger_;
  /// Dispatch-to-start queue-wait latency (workers record).
  LatencyHistogram dispatch_latency_;
  /// Serializes /v1/debug/profile sessions (second request gets 409).
  std::atomic<bool> profile_busy_{false};
  std::mutex profile_threads_mutex_;
  std::vector<std::thread> profile_threads_;

  /// Declared last so its destructor joins workers before fds close —
  /// workers may still be appending to the sinks above.
  ThreadPool pool_;
};

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_SERVER_SERVER_H_
