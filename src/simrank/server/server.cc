#include "simrank/server/server.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <thread>
#include <utility>

#include "simrank/common/build_info.h"
#include "simrank/common/json_writer.h"
#include "simrank/common/memory_tracker.h"
#include "simrank/common/simd.h"
#include "simrank/common/string_util.h"
#include "simrank/graph/graph_io.h"
#include "simrank/index/segment_reader.h"

#if defined(__linux__)
#define OIPSIM_HAVE_EPOLL 1
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace simrank {
namespace {

/// Backpressure bounds: when a connection's unsent responses or unparsed
/// input exceed these, the loop stops *reading* it (TCP pushes back on the
/// peer) until the backlog drains — no connection can buffer the server
/// into the ground, which is what lets server.h promise bounded queues.
constexpr size_t kMaxPendingOutputBytes = 4u << 20;
constexpr size_t kInputBufferSlackBytes = 64u << 10;

/// Parsed arguments of one dispatchable query; only the fields of the
/// request's endpoint are meaningful. POST bodies travel raw and are
/// parsed in the worker, so a large batch never stalls the event loop.
struct QueryArgs {
  VertexId a = 0;
  VertexId b = 0;
  VertexId v = 0;
  uint32_t k = 10;
  /// Which /internal/* exchange op this dispatch carries (kNone for the
  /// public endpoints). Internal ops share the public endpoints'
  /// admission classes: walks/partial count against single_source, topk
  /// against topk, pair against pair.
  enum class Internal : uint8_t { kNone, kWalks, kPartial, kTopK, kPair };
  Internal internal = Internal::kNone;
  /// Overlay sequence the router pinned this exchange to (internal ops
  /// except walks): the shard answers 409 when its published sequence
  /// differs, so a scatter-gather never merges mixed-version slices.
  uint64_t seq = 0;
  std::string body;
  /// Tracing decisions, made on the loop thread so the worker needs no
  /// access to the request. `trace_inline` is the only one allowed to
  /// change a response body.
  bool trace_inline = false;   // ?trace=1: trace JSON into the envelope
  bool trace_header = false;   // X-Simrank-Trace: trace in response header
  bool trace_sampled = false;  // coin flip / slow-query threshold
  uint64_t trace_id = 0;
  /// Request path, kept only for traced requests (slow-ring target).
  std::string target;
};

std::string ErrorBody(std::string_view code, std::string_view message) {
  JsonWriter json;
  json.BeginObject()
      .Key("error")
      .BeginObject()
      .Key("code")
      .String(code)
      .Key("message")
      .String(message)
      .EndObject()
      .EndObject();
  return json.str();
}

/// HTTP status + body for a query or update that failed inside the engine
/// or updater. Parse errors are client errors here: the only parsed input
/// is the request body.
std::pair<int, std::string> EngineErrorResponse(const Status& status) {
  const int http_status =
      (status.code() == StatusCode::kOutOfRange ||
       status.code() == StatusCode::kInvalidArgument ||
       status.code() == StatusCode::kParseError)
          ? 400
          : (status.code() == StatusCode::kNotFound ? 404 : 500);
  return {http_status,
          ErrorBody(StatusCodeToString(status.code()), status.message())};
}

std::pair<int, std::string> ExecutePair(QueryEngine& engine,
                                        const QueryArgs& args) {
  auto score = engine.Pair(args.a, args.b);
  if (!score.ok()) return EngineErrorResponse(score.status());
  TraceScope serialize(TraceStage::kSerialize);
  JsonWriter json;
  json.BeginObject()
      .Key("a")
      .Uint(args.a)
      .Key("b")
      .Uint(args.b)
      .Key("score")
      .Double(*score)
      .EndObject();
  return {200, json.str()};
}

std::pair<int, std::string> ExecuteSingleSource(QueryEngine& engine,
                                                const QueryArgs& args) {
  auto row = engine.SingleSource(args.v);
  if (!row.ok()) return EngineErrorResponse(row.status());
  TraceScope serialize(TraceStage::kSerialize);
  JsonWriter json;
  json.BeginObject().Key("v").Uint(args.v).Key("scores").BeginArray();
  for (const double score : **row) json.Double(score);
  json.EndArray().EndObject();
  return {200, json.str()};
}

std::pair<int, std::string> ExecuteTopK(QueryEngine& engine,
                                        const QueryArgs& args) {
  auto top = engine.TopK(args.v, args.k);
  if (!top.ok()) return EngineErrorResponse(top.status());
  TraceScope serialize(TraceStage::kSerialize);
  JsonWriter json;
  json.BeginObject()
      .Key("v")
      .Uint(args.v)
      .Key("k")
      .Uint(args.k)
      .Key("results")
      .BeginArray();
  for (const auto& scored : *top) {
    json.BeginObject()
        .Key("vertex")
        .Uint(scored.vertex)
        .Key("score")
        .Double(scored.score)
        .EndObject();
  }
  json.EndArray().EndObject();
  return {200, json.str()};
}

}  // namespace

Result<std::vector<std::pair<VertexId, VertexId>>> ParsePairBatch(
    std::string_view body, uint32_t max_pairs) {
  std::vector<std::pair<VertexId, VertexId>> pairs;
  int line_no = 0;
  for (std::string_view line : StrSplit(body, '\n')) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = StrTrim(line);
    if (line.empty()) continue;
    const size_t space = line.find_first_of(" \t");
    uint64_t a = 0;
    uint64_t b = 0;
    if (space == std::string_view::npos ||
        !ParseUint64(StrTrim(line.substr(0, space)), &a) ||
        !ParseUint64(StrTrim(line.substr(space + 1)), &b) ||
        a > UINT32_MAX || b > UINT32_MAX) {
      return Status::InvalidArgument(
          StrFormat("line %d: expected two vertex ids per line", line_no));
    }
    if (pairs.size() >= max_pairs) {
      return Status::InvalidArgument(StrFormat(
          "batch exceeds the %u-pair limit; split it", max_pairs));
    }
    pairs.emplace_back(static_cast<VertexId>(a), static_cast<VertexId>(b));
  }
  if (pairs.empty()) {
    return Status::InvalidArgument("empty pair batch");
  }
  return pairs;
}

namespace {

std::pair<int, std::string> ExecuteBatchPair(QueryEngine& engine,
                                             const QueryArgs& args,
                                             const ServerOptions& options) {
  auto pairs = ParsePairBatch(args.body, options.max_batch_pairs);
  if (!pairs.ok()) return EngineErrorResponse(pairs.status());
  if (options.sharded) {
    // A shard answers only pairs it can answer exactly: both endpoints in
    // range (their walk rows are complete here). Anything else belongs to
    // the router.
    const ShardRange& range = options.shard_plan.shards[options.shard_id];
    for (const auto& [a, b] : *pairs) {
      if (!range.Contains(a) || !range.Contains(b)) {
        return {421,
                ErrorBody("Misdirected",
                          StrFormat("pair (%u, %u) is not fully inside this "
                                    "shard's vertex range [%u, %u); ask the "
                                    "router",
                                    a, b, range.begin, range.end))};
      }
    }
  }
  const auto answers = engine.BatchPair(*pairs);
  for (const auto& answer : answers) {
    if (!answer.ok()) return EngineErrorResponse(answer.status());
  }
  TraceScope serialize(TraceStage::kSerialize);
  JsonWriter json;
  json.BeginObject()
      .Key("count")
      .Uint(answers.size())
      .Key("scores")
      .BeginArray();
  for (const auto& answer : answers) json.Double(*answer);
  json.EndArray().EndObject();
  return {200, json.str()};
}

std::pair<int, std::string> ExecuteUpdate(QueryEngine& engine,
                                          IndexUpdater& updater,
                                          const QueryArgs& args) {
  auto updates = ParseEdgeUpdates(args.body);
  if (!updates.ok()) return EngineErrorResponse(updates.status());
  const Status applied = updater.ApplyUpdates(*updates);
  if (!applied.ok()) return EngineErrorResponse(applied);
  // Stale rows are already unservable through their sequence stamp; this
  // frees them eagerly.
  engine.InvalidateCache();
  const IndexUpdateStats stats = updater.stats();
  JsonWriter json;
  json.BeginObject()
      .Key("applied")
      .Uint(updates->size())
      .Key("sequence")
      .Uint(stats.overlay_sequence)
      .Key("patched_vertices")
      .Uint(stats.patched_vertices)
      .Key("changed_slots")
      .Uint(stats.changed_slots)
      .Key("graph_fingerprint")
      .String(FormatFingerprint(stats.current_graph_fingerprint))
      .Key("wal_records")
      .Uint(stats.wal_records)
      .EndObject();
  return {200, json.str()};
}

std::pair<int, std::string> ExecuteCompact(IndexUpdater& updater,
                                           const ServerOptions& options) {
  if (options.compact_path.empty() || options.compact_graph_path.empty()) {
    return {503, ErrorBody("Unavailable",
                           "no compaction target configured "
                           "(--compact-to / --compact-graph-to)")};
  }
  WalkIndex::SaveOptions save;
  save.compress = options.compact_compress;
  // The updated graph is persisted alongside the index before the WAL
  // reset — afterwards the WAL can no longer re-derive it from the
  // original --graph file, so a restart points --graph at the emitted
  // file.
  const Status status =
      updater.Compact(options.compact_path, save, /*reset_wal=*/true,
                      options.compact_graph_path);
  if (!status.ok()) return EngineErrorResponse(status);
  const IndexUpdateStats stats = updater.stats();
  JsonWriter json;
  json.BeginObject()
      .Key("path")
      .String(options.compact_path)
      .Key("graph_path")
      .String(options.compact_graph_path)
      .Key("sequence")
      .Uint(stats.overlay_sequence)
      .Key("graph_fingerprint")
      .String(FormatFingerprint(stats.current_graph_fingerprint))
      .EndObject();
  return {200, json.str()};
}

/// A consistent view for one internal exchange: the overlay snapshot the
/// computation will use plus the sequence and graph fingerprint it
/// corresponds to. Fingerprint and snapshot are read from different
/// structures (updater stats vs. index slot), so the fingerprint is read
/// on both sides of the snapshot and re-taken on a mismatch — an update
/// landing mid-read yields a coherent (overlay, fingerprint) pair instead
/// of a torn one.
struct OverlayView {
  std::shared_ptr<const DeltaOverlay> overlay;
  uint64_t fingerprint = 0;
  uint64_t sequence = 0;
};

OverlayView SnapshotOverlay(const WalkIndex& index,
                            const IndexUpdater* updater) {
  OverlayView view;
  while (true) {
    const uint64_t before = updater != nullptr
                                ? updater->stats().current_graph_fingerprint
                                : index.graph_fingerprint();
    view.overlay = index.overlay_snapshot();
    const uint64_t after = updater != nullptr
                               ? updater->stats().current_graph_fingerprint
                               : index.graph_fingerprint();
    if (before == after) {
      view.fingerprint = after;
      break;
    }
  }
  view.sequence =
      view.overlay == nullptr ? 0 : view.overlay->sequence();
  return view;
}

/// What a worker hands back for an /internal/* exchange: status and body
/// like the public executors, plus a content type and the version headers
/// the router cross-checks.
struct ExchangeResponse {
  int status = 500;
  std::string body;
  std::string content_type = "application/json";
  std::vector<std::pair<std::string, std::string>> headers;
};

std::vector<std::pair<std::string, std::string>> ExchangeHeaders(
    const OverlayView& view, const ServerOptions& options) {
  return {{"X-Graph-Fingerprint", FormatFingerprint(view.fingerprint)},
          {"X-Overlay-Sequence",
           StrFormat("%llu", static_cast<unsigned long long>(view.sequence))},
          {"X-Plan-Epoch",
           StrFormat("%llu", static_cast<unsigned long long>(
                                 options.shard_plan.epoch))}};
}

/// The /internal/* exchange ops (shard role only). Bodies are binary —
/// native-endian walk rows in, native-endian score slices out — so the
/// doubles that cross the wire are the exact bits the estimators
/// produced; the router's merge is then bitwise by construction.
ExchangeResponse ExecuteInternal(QueryEngine& engine,
                                 const IndexUpdater* updater,
                                 const ServerOptions& options,
                                 const QueryArgs& args) {
  const WalkIndex& index = engine.index();
  const ShardRange& range = options.shard_plan.shards[options.shard_id];
  const OverlayView view = SnapshotOverlay(index, updater);
  ExchangeResponse out;
  out.headers = ExchangeHeaders(view, options);
  const uint32_t n = index.n();
  const size_t words =
      static_cast<size_t>(index.options().num_fingerprints) *
      (index.options().walk_length + 1);

  if (args.internal == QueryArgs::Internal::kWalks) {
    if (!range.Contains(args.v)) {
      out.status = 421;
      out.body = ErrorBody(
          "Misdirected",
          StrFormat("vertex %u is outside this shard's range [%u, %u)",
                    args.v, range.begin, range.end));
      return out;
    }
    const std::vector<uint32_t> row =
        index.MaterializeRow(args.v, view.overlay.get());
    out.status = 200;
    out.content_type = "application/octet-stream";
    out.body.assign(reinterpret_cast<const char*>(row.data()),
                    row.size() * sizeof(uint32_t));
    return out;
  }

  // The remaining ops compute against the sequence the router pinned; a
  // publish that raced the fan-out turns into a 409 the router retries.
  if (args.seq != view.sequence) {
    out.status = 409;
    out.body = ErrorBody(
        "Conflict",
        StrFormat("overlay sequence moved: request pinned %llu, serving "
                  "%llu; re-fetch the row and retry",
                  static_cast<unsigned long long>(args.seq),
                  static_cast<unsigned long long>(view.sequence)));
    return out;
  }
  if (args.body.size() != words * sizeof(uint32_t)) {
    out.status = 400;
    out.body = ErrorBody(
        "InvalidArgument",
        StrFormat("walk row body must be %zu bytes (R*(L+1) u32 words), "
                  "got %zu",
                  words * sizeof(uint32_t), args.body.size()));
    return out;
  }
  std::vector<uint32_t> row(words);
  std::memcpy(row.data(), args.body.data(), args.body.size());

  if (args.internal == QueryArgs::Internal::kPair) {
    if (!range.Contains(args.b)) {
      out.status = 421;
      out.body = ErrorBody(
          "Misdirected",
          StrFormat("vertex %u is outside this shard's range [%u, %u)",
                    args.b, range.begin, range.end));
      return out;
    }
    // row[0] is step 0 of fingerprint 0 — always the row's own vertex.
    const double score =
        row[0] == args.b
            ? 1.0
            : index.EstimatePairWithRow(row, args.b, view.overlay.get());
    out.status = 200;
    out.content_type = "application/octet-stream";
    out.body.assign(reinterpret_cast<const char*>(&score), sizeof(score));
    return out;
  }

  if (args.v >= n) {
    out.status = 400;
    out.body = ErrorBody(
        "OutOfRange",
        StrFormat("vertex %u out of range (index has %u vertices)", args.v,
                  n));
    return out;
  }
  if (row[0] != args.v) {
    out.status = 400;
    out.body = ErrorBody(
        "InvalidArgument",
        StrFormat("walk row belongs to vertex %u, not the queried %u",
                  row[0], args.v));
    return out;
  }
  const std::vector<double> full =
      index.EstimateSingleSourceWithRow(args.v, row, view.overlay.get());
  if (args.internal == QueryArgs::Internal::kPartial) {
    out.status = 200;
    out.content_type = "application/octet-stream";
    out.body.assign(
        reinterpret_cast<const char*>(full.data() + range.begin),
        static_cast<size_t>(range.end - range.begin) * sizeof(double));
    return out;
  }

  // kTopK: this shard's top-k of its slice, as packed {u32 vertex,
  // f64 score} records in rank order.
  const std::vector<ScoredVertex> top = TopKFromRowSlice(
      std::span<const double>(full).subspan(range.begin,
                                            range.end - range.begin),
      range.begin, args.v, args.k);
  out.status = 200;
  out.content_type = "application/octet-stream";
  out.body.reserve(top.size() * 12);
  for (const ScoredVertex& scored : top) {
    char record[12];
    std::memcpy(record, &scored.vertex, sizeof(uint32_t));
    std::memcpy(record + 4, &scored.score, sizeof(double));
    out.body.append(record, sizeof(record));
  }
  return out;
}

/// Renders one /v1/wal poll: the primary side of WAL shipping. Text
/// framing over the same `+/- SRC DST` line format the update endpoint
/// accepts:
///   wal COUNT CURRENT_FINGERPRINT
///   record INDEX POST_FINGERPRINT NUM_UPDATES
///   + SRC DST            (NUM_UPDATES lines)
///   ...
///   end
std::string BuildWalStreamBody(const IndexUpdater& updater, uint64_t from) {
  const std::vector<WalRecord> records = updater.WalRecordsFrom(from);
  const IndexUpdateStats stats = updater.stats();
  std::string out = StrFormat(
      "wal %zu %s\n", records.size(),
      FormatFingerprint(stats.current_graph_fingerprint).c_str());
  for (size_t i = 0; i < records.size(); ++i) {
    const WalRecord& record = records[i];
    out += StrFormat(
        "record %llu %s %zu\n",
        static_cast<unsigned long long>(from + i),
        FormatFingerprint(record.post_graph_fingerprint).c_str(),
        record.updates.size());
    out += FormatEdgeUpdates(record.updates);
  }
  out += "end\n";
  return out;
}

}  // namespace

const char* ServerEndpointPath(ServerEndpoint endpoint) {
  switch (endpoint) {
    case ServerEndpoint::kPair:
      return "/v1/pair";
    case ServerEndpoint::kSingleSource:
      return "/v1/single_source";
    case ServerEndpoint::kTopK:
      return "/v1/topk";
    case ServerEndpoint::kBatchPair:
      return "/v1/batch_pair";
    case ServerEndpoint::kUpdate:
      return "/v1/update";
    case ServerEndpoint::kCompact:
      return "/v1/compact";
  }
  return "?";
}

const char* ServerEndpointName(ServerEndpoint endpoint) {
  switch (endpoint) {
    case ServerEndpoint::kPair:
      return "pair";
    case ServerEndpoint::kSingleSource:
      return "single_source";
    case ServerEndpoint::kTopK:
      return "topk";
    case ServerEndpoint::kBatchPair:
      return "batch_pair";
    case ServerEndpoint::kUpdate:
      return "update";
    case ServerEndpoint::kCompact:
      return "compact";
  }
  return "?";
}

Status ServerOptions::Validate() const {
  if (bind_address.empty()) {
    return Status::InvalidArgument("server bind address must not be empty");
  }
  if (threads > 4096) {
    return Status::InvalidArgument(
        StrFormat("--threads=%u is not a sane worker count", threads));
  }
  if (max_inflight == 0) {
    return Status::InvalidArgument(
        "--max-inflight must be positive: a zero cap rejects every query");
  }
  if (max_endpoint_inflight == 0) {
    return Status::InvalidArgument(
        "--endpoint-inflight must be positive: a zero cap rejects every "
        "query");
  }
  if (max_connections == 0) {
    return Status::InvalidArgument("max_connections must be positive");
  }
  if (max_batch_pairs == 0) {
    return Status::InvalidArgument(
        "max_batch_pairs must be positive: a zero cap rejects every batch");
  }
  if (!(trace_sample >= 0.0 && trace_sample <= 1.0)) {
    return Status::InvalidArgument(StrFormat(
        "--trace-sample=%g is not a probability in [0, 1]", trace_sample));
  }
  if (slow_ring_capacity > 65536) {
    return Status::InvalidArgument(
        StrFormat("--slow-ring=%u would pin an unreasonable amount of "
                  "trace JSON in memory",
                  slow_ring_capacity));
  }
  if (!profile_log_path.empty()) {
    if (profile_log_hz == 0 || profile_log_hz > CpuProfiler::kMaxHz) {
      return Status::InvalidArgument(
          StrFormat("--profile-log-hz=%u is not in [1, %u]", profile_log_hz,
                    CpuProfiler::kMaxHz));
    }
    if (profile_log_period_s == 0) {
      return Status::InvalidArgument(
          "--profile-log-period must be positive");
    }
  }
  if (watchdog_interval_ms > 60000) {
    return Status::InvalidArgument(
        StrFormat("--watchdog-interval-ms=%u is longer than any plausible "
                  "stall",
                  watchdog_interval_ms));
  }
  if (watchdog_interval_ms > 0 && watchdog_stall_us == 0) {
    return Status::InvalidArgument(
        "--watchdog-stall-us must be positive when the watchdog is armed");
  }
  if (metrics_history_window_s > 0) {
    if (metrics_history_interval_ms == 0) {
      return Status::InvalidArgument(
          "--metrics-history-interval-ms must be positive");
    }
    const uint64_t points = static_cast<uint64_t>(metrics_history_window_s) *
                            1000 / metrics_history_interval_ms;
    if (points > 1u << 20) {
      return Status::InvalidArgument(
          StrFormat("metrics history of %llu points per series would pin an "
                    "unreasonable amount of memory",
                    static_cast<unsigned long long>(points)));
    }
  }
  if (debug_stall_limit_ms > 10000) {
    return Status::InvalidArgument(
        StrFormat("--debug-stall-limit-ms=%u would let a request freeze the "
                  "loop for over 10s",
                  debug_stall_limit_ms));
  }
  if (sharded) {
    OIPSIM_RETURN_IF_ERROR(shard_plan.Validate());
    if (shard_id >= shard_plan.shards.size()) {
      return Status::InvalidArgument(
          StrFormat("shard id %u is not in the plan (it declares %zu "
                    "shards)",
                    shard_id, shard_plan.shards.size()));
    }
  }
  return Status::OK();
}

/// Per-connection state owned by the event loop. A connection handles one
/// dispatched query at a time (`awaiting`); pipelined requests stay
/// buffered in `in` until the response of the previous one is queued, so
/// responses always leave in request order.
struct SimRankServer::Connection {
  int fd = -1;
  uint64_t id = 0;
  std::string in;
  std::string out;
  size_t out_sent = 0;
  /// A query is dispatched and its completion not yet queued.
  bool awaiting = false;
  /// Flush `out`, then close (error, Connection: close, drain).
  bool close_after_flush = false;
  /// The peer half-closed: no further reads, but every request already
  /// buffered still gets its answer before the connection closes.
  bool peer_eof = false;
  /// Keep-alive decision of the request currently being answered.
  bool request_keep_alive = true;
  /// Events currently registered with epoll.
  uint32_t epoll_events = 0;
  /// Access-log capture of the request currently being answered: set by
  /// RouteRequest (only when --access-log is active), consumed and
  /// cleared by QueueResponse. One dispatched query at a time per
  /// connection keeps this a single slot.
  uint64_t access_start_ns = 0;
  uint64_t access_trace_id = 0;
  std::string access_method;
  std::string access_path;
};

/// A worker's finished query, handed back to the loop thread.
struct SimRankServer::Completion {
  int fd = -1;
  uint64_t connection_id = 0;
  ServerEndpoint endpoint = ServerEndpoint::kPair;
  int status = 500;
  std::string body;
  /// Internal exchange responses are binary and carry version headers;
  /// public responses keep the JSON defaults.
  std::string content_type = "application/json";
  std::vector<std::pair<std::string, std::string>> headers;
  /// True for worker-pool completions that passed admission control and
  /// hold an inflight slot; false for out-of-band completions (the
  /// deferred /v1/debug/profile capture), which must not decrement
  /// counters they never incremented.
  bool admission = true;
};

SimRankServer::SimRankServer(QueryEngine& engine,
                             const ServerOptions& options,
                             IndexUpdater* updater)
    : engine_(engine),
      options_(options),
      updater_(updater),
      slow_log_(options.slow_ring_capacity),
      pool_(options.threads) {}

SimRankServer::~SimRankServer() {
  // Diagnostics threads poll pool_ and call BuildMetricsBody; stop them
  // here, before member destructors run (pool_ is declared after them and
  // would be destroyed first).
  StopDiagnostics();
  // Workers may still be executing queries if Serve was never run to
  // completion; let them finish (they only touch the engine, the
  // completion queue and wake_fd_) before the fds go away.
  pool_.Wait();
#if OIPSIM_HAVE_EPOLL
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (reserve_fd_ >= 0) ::close(reserve_fd_);
#endif
}

#if OIPSIM_HAVE_EPOLL

Status SimRankServer::Bind() {
  OIPSIM_RETURN_IF_ERROR(options_.Validate());
  if (options_.sharded) {
    // The plan must be the one the served shard file was split under: same
    // vertex universe, same base graph. Serving a shard against the wrong
    // plan would silently cross-wire the cluster's answers.
    const WalkIndex& index = engine_.index();
    if (options_.shard_plan.n != index.n()) {
      return Status::InvalidArgument(
          StrFormat("shard plan partitions n=%u but the served index has "
                    "n=%u vertices",
                    options_.shard_plan.n, index.n()));
    }
    if (options_.shard_plan.graph_fingerprint !=
        index.graph_fingerprint()) {
      return Status::InvalidArgument(StrFormat(
          "shard plan is bound to graph %s but the served index was built "
          "from %s",
          FormatFingerprint(options_.shard_plan.graph_fingerprint).c_str(),
          FormatFingerprint(index.graph_fingerprint()).c_str()));
    }
  }
  if (listen_fd_ >= 0) {
    return Status::InvalidArgument("Bind() called twice");
  }
  if (!options_.trace_log_path.empty() && trace_sink_ == nullptr) {
    auto sink = JsonlLogSink::Open(options_.trace_log_path);
    if (!sink.ok()) return sink.status();
    trace_sink_ = std::move(*sink);
  }
  if (!options_.access_log_path.empty() && access_sink_ == nullptr) {
    auto sink = JsonlLogSink::Open(options_.access_log_path);
    if (!sink.ok()) return sink.status();
    access_sink_ = std::move(*sink);
  }
  if (options_.metrics_history_window_s > 0 && metrics_history_ == nullptr) {
    MetricsHistory::Options history_options;
    history_options.window_seconds = options_.metrics_history_window_s;
    history_options.interval_ms = options_.metrics_history_interval_ms;
    metrics_history_ = std::make_unique<MetricsHistory>(history_options);
  }
  if (!options_.profile_log_path.empty() && profile_logger_ == nullptr) {
    ProfileLogger::Options logger_options;
    logger_options.path = options_.profile_log_path;
    logger_options.frequency_hz = options_.profile_log_hz;
    logger_options.period_seconds = options_.profile_log_period_s;
    // Sample a slice of each period, not all of it: the profiler is a
    // singleton, and a full-duty logger would starve every on-demand
    // /v1/debug/profile session with 409s.
    logger_options.duty_cycle = 0.1;
    auto logger = ProfileLogger::Start(logger_options);
    if (!logger.ok()) return logger.status();
    profile_logger_ = std::move(*logger);
  }
  sample_state_ = GenerateTraceId();

  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("not an IPv4 bind address: " +
                                   options_.bind_address);
  }

  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IoError(StrFormat("cannot bind %s:%u: %s",
                                     options_.bind_address.c_str(),
                                     options_.port, std::strerror(errno)));
  }
  if (::listen(fd, 128) != 0) {
    ::close(fd);
    return Status::IoError(StrFormat("listen() failed: %s",
                                     std::strerror(errno)));
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) !=
      0) {
    ::close(fd);
    return Status::IoError("getsockname() failed");
  }
  bound_port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    ::close(fd);
    return Status::IoError("epoll_create1/eventfd failed");
  }
  reserve_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
  listen_fd_ = fd;

  epoll_event event = {};
  event.events = EPOLLIN;
  event.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &event);
  event.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event);
  return Status::OK();
}

void SimRankServer::Shutdown() {
  stop_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    // Async-signal-safe: a plain write on an eventfd. The return value is
    // irrelevant — a full counter already wakes the loop.
    [[maybe_unused]] const auto ignored =
        ::write(wake_fd_, &one, sizeof(one));
  }
}

Status SimRankServer::Serve() {
  if (listen_fd_ < 0) {
    return Status::InvalidArgument("Serve() requires a successful Bind()");
  }
  // The loop thread itself shows up in profiles, and its kernel tid is
  // what the watchdog annotates stall warnings with.
  ScopedProfiledThread profiled_loop("epoll-loop");
  StartDiagnostics();
  // An armed watchdog needs the idle loop to keep beating: cap the epoll
  // wait at the watchdog poll interval instead of blocking forever.
  const int idle_timeout_ms =
      options_.watchdog_interval_ms > 0
          ? static_cast<int>(options_.watchdog_interval_ms)
          : -1;
  epoll_event events[64];
  while (true) {
    watchdog_.Beat();
    if (stop_.load(std::memory_order_acquire) && !draining_) {
      draining_ = true;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    if (draining_) {
      // Idle keep-alive connections have nothing left to say; everything
      // else drains through its completion + flush.
      std::vector<Connection*> idle;
      for (auto& [fd, conn] : connections_) {
        if (!conn->awaiting && conn->out_sent == conn->out.size()) {
          idle.push_back(conn.get());
        }
      }
      for (Connection* conn : idle) CloseConnection(conn);
      if (connections_.empty() && inflight_ == 0) {
        StopDiagnostics();
        return Status::OK();
      }
    }
    const int ready =
        ::epoll_wait(epoll_fd_, events, 64,
                     /*timeout_ms=*/draining_ ? 50 : idle_timeout_ms);
    if (ready < 0 && errno != EINTR) {
      StopDiagnostics();
      return Status::IoError(StrFormat("epoll_wait failed: %s",
                                       std::strerror(errno)));
    }
    for (int i = 0; i < ready; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained = 0;
        [[maybe_unused]] const auto ignored =
            ::read(wake_fd_, &drained, sizeof(drained));
        continue;
      }
      if (fd == listen_fd_) {
        HandleAccept();
        continue;
      }
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;  // closed earlier this batch
      Connection* conn = it->second.get();
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        if (conn->awaiting || conn->out_sent < conn->out.size()) {
          // Let the completion/flush path observe the error itself.
        } else {
          CloseConnection(conn);
          continue;
        }
      }
      if (events[i].events & EPOLLIN) HandleReadable(conn);
      it = connections_.find(fd);
      if (it == connections_.end() || it->second.get() != conn) continue;
      if (events[i].events & EPOLLOUT) HandleWritable(conn);
    }
    DrainCompletions();
  }
}

void SimRankServer::HandleAccept() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if ((errno == EMFILE || errno == ENFILE) && reserve_fd_ >= 0) {
        // Out of fds: the pending connection would keep the level-
        // triggered listener readable forever. Spend the reserve fd to
        // accept-and-shed it, then re-arm the reserve.
        ::close(reserve_fd_);
        reserve_fd_ = -1;
        const int shed = ::accept4(listen_fd_, nullptr, nullptr,
                                   SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (shed >= 0) ::close(shed);
        reserve_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
        continue;
      }
      return;  // EAGAIN, or a transient accept failure
    }
    stat_connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    if (connections_.size() >= options_.max_connections) {
      // Beyond the connection cap there is no buffer to even parse a
      // request from; shedding at accept keeps existing traffic intact.
      ::close(fd);
      continue;
    }
    const int enable = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_connection_id_++;
    conn->epoll_events = EPOLLIN;
    epoll_event event = {};
    event.events = EPOLLIN;
    event.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event);
    connections_.emplace(fd, std::move(conn));
    stat_connections_open_.fetch_add(1, std::memory_order_relaxed);
  }
}

void SimRankServer::HandleReadable(Connection* conn) {
  char buffer[4096];
  // The budget covers a full head plus the largest admissible body — a
  // request the parser would accept must be able to buffer completely, or
  // the read-side backpressure below would deadlock it.
  const size_t input_cap = options_.http.max_request_bytes +
                           options_.http.max_body_bytes +
                           kInputBufferSlackBytes;
  while (conn->in.size() < input_cap) {
    const ssize_t got = ::recv(conn->fd, buffer, sizeof(buffer), 0);
    if (got > 0) {
      conn->in.append(buffer, static_cast<size_t>(got));
      continue;
    }
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (got < 0) {
      CloseConnection(conn);  // hard error; nothing is deliverable
      return;
    }
    conn->peer_eof = true;  // orderly half-close: answer, then close
    break;
  }
  ProcessBufferedRequests(conn);
}

void SimRankServer::ProcessBufferedRequests(Connection* conn) {
  // One dispatched query per connection at a time; the rest of the
  // pipeline waits buffered so responses preserve request order. Parsing
  // also pauses while the unsent-output backlog is over the cap — a
  // pipelining client that never reads cannot make `out` grow without
  // bound, it just stops being read itself.
  while (!conn->awaiting && !conn->close_after_flush &&
         conn->out.size() - conn->out_sent < kMaxPendingOutputBytes) {
    HttpRequest request;
    const HttpParseStatus parsed =
        ParseHttpRequest(conn->in, options_.http, &request);
    if (parsed.outcome == HttpParseStatus::kNeedMore) break;
    if (parsed.outcome == HttpParseStatus::kError) {
      conn->request_keep_alive = false;
      QueueErrorResponse(conn, parsed.error_status, parsed.error_message);
      break;
    }
    conn->in.erase(0, parsed.consumed);
    conn->request_keep_alive = request.keep_alive;
    RouteRequest(conn, request);
  }
  if (MaybeCloseAfterEof(conn)) return;
  UpdateEpoll(conn);
}

/// After a half-close, the connection lives exactly until its buffered
/// requests are answered and flushed. Returns true when it closed `conn`.
bool SimRankServer::MaybeCloseAfterEof(Connection* conn) {
  if (!conn->peer_eof) return false;
  if (conn->awaiting || conn->out_sent < conn->out.size()) return false;
  // Nothing in flight, everything flushed; whatever remains buffered is an
  // incomplete request head that can never complete.
  CloseConnection(conn);
  return true;
}

void SimRankServer::RouteRequest(Connection* conn,
                                 const HttpRequest& request) {
  if (access_sink_ != nullptr) {
    conn->access_start_ns = TraceNowNanos();
    conn->access_trace_id = 0;
    conn->access_method = request.method;
    conn->access_path = request.path;
  }
  // /v1/debug/profile parks the connection while a dedicated capture
  // thread runs the sampling session; everything about it (method checks,
  // params, the 409 busy answer) is handled out of line.
  if (request.path == "/v1/debug/profile") {
    HandleProfileRequest(conn, request);
    return;
  }
  // Inline endpoints: answered on the loop thread, GET only.
  const bool is_inline = request.path == "/healthz" ||
                         request.path == "/v1/stats" ||
                         request.path == "/metrics" ||
                         request.path == "/v1/wal" ||
                         request.path == "/v1/debug/slow" ||
                         request.path == "/v1/debug/timeseries" ||
                         (options_.debug_stall_limit_ms > 0 &&
                          request.path == "/v1/debug/stall");
  // The /internal/* exchange endpoints exist only in the shard role; a
  // standalone server 404s them like any unknown path.
  const bool is_internal =
      options_.sharded && (request.path == "/internal/walks" ||
                           request.path == "/internal/partial" ||
                           request.path == "/internal/topk" ||
                           request.path == "/internal/pair");
  // Dispatchable endpoints and the method each accepts.
  ServerEndpoint endpoint = ServerEndpoint::kPair;
  bool known = false;
  for (uint32_t i = 0; i < kNumServerEndpoints; ++i) {
    const auto candidate = static_cast<ServerEndpoint>(i);
    if (request.path == ServerEndpointPath(candidate)) {
      endpoint = candidate;
      known = true;
      break;
    }
  }
  if (!is_inline && !known && !is_internal) {
    QueueResponse(conn, 404,
                  ErrorBody("NotFound", "no such endpoint: " + request.path));
    return;
  }
  const bool wants_post =
      (known && (endpoint == ServerEndpoint::kBatchPair ||
                 endpoint == ServerEndpoint::kUpdate ||
                 endpoint == ServerEndpoint::kCompact)) ||
      (is_internal && request.path != "/internal/walks");
  const char* allowed = wants_post ? "POST" : "GET";
  if (request.method != allowed) {
    QueueResponse(conn, 405,
                  ErrorBody("MethodNotAllowed",
                            StrFormat("%s only accepts %s",
                                      request.path.c_str(), allowed)),
                  {{"Allow", allowed}});
    return;
  }
  if (!wants_post && !request.body.empty()) {
    QueueErrorResponse(conn, 400, "GET endpoints take no request body");
    return;
  }

  if (request.path == "/healthz") {
    stat_requests_healthz_.fetch_add(1, std::memory_order_relaxed);
    QueueResponse(conn, 200, "ok\n", {}, "text/plain");
    return;
  }
  if (request.path == "/v1/stats") {
    stat_requests_stats_.fetch_add(1, std::memory_order_relaxed);
    QueueResponse(conn, 200, BuildStatsBody());
    return;
  }
  if (request.path == "/metrics") {
    stat_requests_metrics_.fetch_add(1, std::memory_order_relaxed);
    QueueResponse(conn, 200, BuildMetricsBody(), {},
                  "text/plain; version=0.0.4");
    return;
  }
  if (request.path == "/v1/debug/slow") {
    stat_requests_debug_slow_.fetch_add(1, std::memory_order_relaxed);
    QueueResponse(conn, 200, BuildSlowBody());
    return;
  }
  if (request.path == "/v1/debug/timeseries") {
    stat_requests_debug_timeseries_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_history_ == nullptr) {
      QueueResponse(conn, 503,
                    ErrorBody("Unavailable",
                              "metrics history is disabled "
                              "(--metrics-history=0)"));
      return;
    }
    const std::string* metric = request.FindParam("metric");
    if (metric == nullptr) {
      // No metric selected: list what is recorded.
      QueueResponse(conn, 200, metrics_history_->ListJson());
      return;
    }
    uint64_t window = 0;  // 0 = the full configured window
    const std::string* raw_window = request.FindParam("window");
    if (raw_window != nullptr && !ParseUint64(*raw_window, &window)) {
      QueueErrorResponse(conn, 400,
                         "parameter 'window' must be a span in seconds");
      return;
    }
    QueueResponse(conn, 200, metrics_history_->QueryJson(*metric, window));
    return;
  }
  if (request.path == "/v1/debug/stall") {
    // Test-only (armed by --debug-stall-limit-ms): block the loop thread
    // itself so watchdog stall detection can be exercised deterministically.
    uint64_t ms = options_.debug_stall_limit_ms;
    const std::string* raw_ms = request.FindParam("ms");
    if (raw_ms != nullptr && !ParseUint64(*raw_ms, &ms)) {
      QueueErrorResponse(conn, 400,
                         "parameter 'ms' must be a duration in milliseconds");
      return;
    }
    ms = std::min<uint64_t>(ms, options_.debug_stall_limit_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    QueueResponse(conn, 200,
                  StrFormat("{\"stalled_ms\":%llu}",
                            static_cast<unsigned long long>(ms)));
    return;
  }
  if (request.path == "/v1/wal") {
    stat_requests_wal_.fetch_add(1, std::memory_order_relaxed);
    if (updater_ == nullptr) {
      QueueResponse(conn, 503,
                    ErrorBody("Unavailable",
                              "this server keeps no WAL (started without "
                              "--graph/--wal); nothing to ship"));
      return;
    }
    uint64_t from = 0;
    const std::string* raw = request.FindParam("from");
    if (raw != nullptr && !ParseUint64(*raw, &from)) {
      QueueErrorResponse(conn, 400,
                         "parameter 'from' must be a record index");
      return;
    }
    // Served inline: WalRecordsFrom copies under its own mutex and never
    // waits behind a patch, so a replica's poll cadence cannot be starved
    // by busy workers.
    QueueResponse(conn, 200, BuildWalStreamBody(*updater_, from), {},
                  "text/plain");
    return;
  }

  if (options_.replica && (endpoint == ServerEndpoint::kUpdate ||
                           endpoint == ServerEndpoint::kCompact)) {
    QueueResponse(
        conn, 403,
        ErrorBody("Forbidden",
                  "this server is a replica; it applies batches by tailing "
                  "its primary's WAL, never by direct writes"));
    return;
  }
  if (options_.sharded && !is_internal) {
    const ShardRange& range =
        options_.shard_plan.shards[options_.shard_id];
    const bool partial_shard =
        range.begin != 0 || range.end != engine_.index().n();
    if (partial_shard && (endpoint == ServerEndpoint::kSingleSource ||
                          endpoint == ServerEndpoint::kTopK)) {
      QueueResponse(
          conn, 421,
          ErrorBody("Misdirected",
                    StrFormat("%s spans every shard; this shard serves "
                              "only [%u, %u) — ask the router",
                              request.path.c_str(), range.begin,
                              range.end)));
      return;
    }
  }

  if ((endpoint == ServerEndpoint::kUpdate ||
       endpoint == ServerEndpoint::kCompact) &&
      updater_ == nullptr) {
    QueueResponse(
        conn, 503,
        ErrorBody("Unavailable",
                  "dynamic updates are disabled: the server was started "
                  "without an update log (--graph/--wal)"));
    return;
  }
  if (is_internal) {
    // Internal exchanges ride the public admission classes of the work
    // they stand in for: row fetch / partial row under single_source,
    // slice top-k under topk, one-sided pair under pair.
    endpoint = request.path == "/internal/topk" ? ServerEndpoint::kTopK
               : request.path == "/internal/pair"
                   ? ServerEndpoint::kPair
                   : ServerEndpoint::kSingleSource;
  }
  DispatchQuery(conn, endpoint, request);
}

namespace {

/// Parses the required uint32 parameter `name`, appending a 400-worthy
/// message to `error` when missing or malformed.
bool ParseVertexParam(const HttpRequest& request, const char* name,
                      uint32_t* out, std::string* error) {
  const std::string* raw = request.FindParam(name);
  if (raw == nullptr) {
    *error = StrFormat("missing required parameter '%s'", name);
    return false;
  }
  uint64_t value = 0;
  if (!ParseUint64(*raw, &value) || value > UINT32_MAX) {
    *error = StrFormat("parameter '%s' must be a vertex id, got '%s'", name,
                       raw->c_str());
    return false;
  }
  *out = static_cast<uint32_t>(value);
  return true;
}

/// Parses the required uint64 parameter `name` (overlay sequences).
bool ParseSeqParam(const HttpRequest& request, const char* name,
                   uint64_t* out, std::string* error) {
  const std::string* raw = request.FindParam(name);
  if (raw == nullptr) {
    *error = StrFormat("missing required parameter '%s'", name);
    return false;
  }
  if (!ParseUint64(*raw, out)) {
    *error = StrFormat("parameter '%s' must be an unsigned integer, got "
                       "'%s'",
                       name, raw->c_str());
    return false;
  }
  return true;
}

/// Rejects parameters the endpoint does not define (and duplicates), so a
/// typo like `/v1/pair?a=1&c=2` fails loudly instead of querying b=0.
bool CheckAllowedParams(const HttpRequest& request,
                        std::initializer_list<const char*> allowed,
                        std::string* error) {
  std::vector<std::string_view> seen;
  for (const auto& [key, value] : request.params) {
    bool known = false;
    for (const char* name : allowed) known = known || key == name;
    if (!known) {
      *error = StrFormat("unknown parameter '%s'", key.c_str());
      return false;
    }
    for (const std::string_view earlier : seen) {
      if (earlier == key) {
        *error = StrFormat("duplicate parameter '%s'", key.c_str());
        return false;
      }
    }
    seen.push_back(key);
  }
  return true;
}

}  // namespace

void SimRankServer::DispatchQuery(Connection* conn, ServerEndpoint endpoint,
                                  const HttpRequest& request) {
  const auto slot = static_cast<size_t>(endpoint);
  stat_requests_[slot].fetch_add(1, std::memory_order_relaxed);

  QueryArgs args;
  std::string error;
  bool params_ok = false;
  if (StartsWith(request.path, "/internal/")) {
    if (request.path == "/internal/walks") {
      args.internal = QueryArgs::Internal::kWalks;
      params_ok = CheckAllowedParams(request, {"v"}, &error) &&
                  ParseVertexParam(request, "v", &args.v, &error);
    } else if (request.path == "/internal/partial") {
      args.internal = QueryArgs::Internal::kPartial;
      params_ok = CheckAllowedParams(request, {"v", "seq"}, &error) &&
                  ParseVertexParam(request, "v", &args.v, &error) &&
                  ParseSeqParam(request, "seq", &args.seq, &error);
    } else if (request.path == "/internal/topk") {
      args.internal = QueryArgs::Internal::kTopK;
      params_ok = CheckAllowedParams(request, {"v", "k", "seq"}, &error) &&
                  ParseVertexParam(request, "v", &args.v, &error) &&
                  ParseSeqParam(request, "seq", &args.seq, &error);
      if (params_ok && request.FindParam("k") != nullptr) {
        params_ok = ParseVertexParam(request, "k", &args.k, &error);
      }
    } else {
      args.internal = QueryArgs::Internal::kPair;
      params_ok = CheckAllowedParams(request, {"b", "seq"}, &error) &&
                  ParseVertexParam(request, "b", &args.b, &error) &&
                  ParseSeqParam(request, "seq", &args.seq, &error);
    }
    args.body = request.body;
  } else {
    switch (endpoint) {
      case ServerEndpoint::kPair:
        params_ok =
            CheckAllowedParams(request, {"a", "b", "trace"}, &error) &&
            ParseVertexParam(request, "a", &args.a, &error) &&
            ParseVertexParam(request, "b", &args.b, &error);
        break;
      case ServerEndpoint::kSingleSource:
        params_ok = CheckAllowedParams(request, {"v", "trace"}, &error) &&
                    ParseVertexParam(request, "v", &args.v, &error);
        break;
      case ServerEndpoint::kTopK:
        params_ok =
            CheckAllowedParams(request, {"v", "k", "trace"}, &error) &&
            ParseVertexParam(request, "v", &args.v, &error);
        if (params_ok && request.FindParam("k") != nullptr) {
          params_ok = ParseVertexParam(request, "k", &args.k, &error);
        }
        break;
      case ServerEndpoint::kBatchPair:
      case ServerEndpoint::kUpdate:
      case ServerEndpoint::kCompact:
        // Body endpoints take no query parameters beyond the trace
        // opt-in; the body itself is parsed in the worker.
        params_ok = CheckAllowedParams(request, {"trace"}, &error);
        args.body = request.body;
        break;
    }
    // ?trace=1 inlines the trace JSON into the response envelope — the
    // only tracing channel allowed to change a body.
    const std::string* trace_param = request.FindParam("trace");
    if (params_ok && trace_param != nullptr) {
      if (*trace_param == "1") {
        args.trace_inline = true;
      } else if (*trace_param != "0") {
        params_ok = false;
        error = StrFormat("parameter 'trace' must be 0 or 1, got '%s'",
                          trace_param->c_str());
      }
    }
  }
  if (!params_ok) {
    QueueErrorResponse(conn, 400, error);
    return;
  }
  // X-Simrank-Trace activates tracing without touching the body: the
  // trace comes back in the X-Simrank-Trace-Json response header. This is
  // how the router threads one trace id through its shard fan-out (the
  // /internal/* bodies are binary and must stay byte-exact).
  if (const std::string* header = request.FindHeader("x-simrank-trace")) {
    uint64_t id = 0;
    if (ParseTraceId(*header, &id)) {
      args.trace_header = true;
      args.trace_id = id;
    }
  }
  // Ambient tracing: every request when a slow-query threshold is armed
  // (the slow ones must already have a trace by the time they turn out
  // slow), else a trace_sample coin flip.
  if (options_.slow_query_us > 0) {
    args.trace_sampled = true;
  } else if (options_.trace_sample > 0.0) {
    // xorshift64*: cheap, loop-thread-only, statistical only.
    sample_state_ ^= sample_state_ >> 12;
    sample_state_ ^= sample_state_ << 25;
    sample_state_ ^= sample_state_ >> 27;
    const uint64_t draw = sample_state_ * 0x2545F4914F6CDD1Dull;
    args.trace_sampled =
        static_cast<double>(draw >> 11) * 0x1.0p-53 < options_.trace_sample;
  }
  const bool traced =
      args.trace_inline || args.trace_header || args.trace_sampled;
  if (traced) {
    if (args.trace_id == 0) args.trace_id = GenerateTraceId();
    // Reassembled path + query (the parser splits the raw target) so slow
    // captures name the exact request.
    args.target = request.path;
    for (size_t i = 0; i < request.params.size(); ++i) {
      args.target += i == 0 ? '?' : '&';
      args.target += request.params[i].first;
      args.target += '=';
      args.target += request.params[i].second;
    }
    if (access_sink_ != nullptr) conn->access_trace_id = args.trace_id;
  }
  if (options_.sharded && args.internal == QueryArgs::Internal::kNone &&
      endpoint == ServerEndpoint::kPair) {
    // A shard's pair answer is exact only when both rows are local.
    const ShardRange& range =
        options_.shard_plan.shards[options_.shard_id];
    if (!range.Contains(args.a) || !range.Contains(args.b)) {
      QueueResponse(
          conn, 421,
          ErrorBody("Misdirected",
                    StrFormat("pair (%u, %u) is not fully inside this "
                              "shard's vertex range [%u, %u); ask the "
                              "router",
                              args.a, args.b, range.begin, range.end)));
      return;
    }
  }

  // Admission control: bounded queues, never buffered overload. The global
  // cap answers 429 (the client is fanning out faster than the pool
  // drains), the per-endpoint cap 503 (this endpoint specifically is
  // saturated); both tell the client when to come back.
  const std::vector<std::pair<std::string, std::string>> retry_after = {
      {"Retry-After", StrFormat("%u", options_.retry_after_seconds)}};
  if (inflight_ >= options_.max_inflight) {
    stat_rejected_inflight_.fetch_add(1, std::memory_order_relaxed);
    QueueResponse(
        conn, 429,
        ErrorBody("Overloaded",
                  StrFormat("server is at its in-flight cap (%u); retry",
                            options_.max_inflight)),
        retry_after);
    return;
  }
  if (endpoint_inflight_[slot] >= options_.max_endpoint_inflight) {
    stat_rejected_endpoint_.fetch_add(1, std::memory_order_relaxed);
    QueueResponse(
        conn, 503,
        ErrorBody("Overloaded",
                  StrFormat("endpoint %s is at its in-flight cap (%u); retry",
                            ServerEndpointPath(endpoint),
                            options_.max_endpoint_inflight)),
        retry_after);
    return;
  }

  ++inflight_;
  ++endpoint_inflight_[slot];
  stat_inflight_.store(inflight_, std::memory_order_relaxed);
  conn->awaiting = true;
  const int fd = conn->fd;
  const uint64_t connection_id = conn->id;
  const auto dispatched_at = std::chrono::steady_clock::now();
  // One clock read per *traced* dispatch; untraced requests skip it.
  const uint64_t dispatch_ns = traced ? TraceNowNanos() : 0;
  pool_.Submit([this, fd, connection_id, endpoint, dispatched_at,
                dispatch_ns, args = std::move(args)] {
    // Queue-wait component of latency: dispatch to the moment a worker
    // actually picks the query up. Recorded before the synthetic
    // handler delay so tests measure real scheduling, not the injection.
    dispatch_latency_.Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - dispatched_at)
            .count()));
    if (options_.handler_delay_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.handler_delay_ms));
    }
    const bool traced =
        args.trace_inline || args.trace_header || args.trace_sampled;
    std::optional<TraceRecorder> recorder;
    if (traced) recorder.emplace(args.trace_id);
    Completion completion;
    completion.fd = fd;
    completion.connection_id = connection_id;
    completion.endpoint = endpoint;
    {
      // Bound for the duration of the query: every TraceScope/TraceAdd
      // down in the engine lands in this recorder (or no-ops when null).
      TraceBinding binding(traced ? &*recorder : nullptr);
      if (traced) {
        recorder->AddCompletedSpan(TraceStage::kQueueWait, dispatch_ns,
                                   TraceNowNanos() - dispatch_ns);
      }
      TraceScope root(TraceStage::kRequest, ServerEndpointName(endpoint));
      if (args.internal != QueryArgs::Internal::kNone) {
        ExchangeResponse exchange =
            ExecuteInternal(engine_, updater_, options_, args);
        completion.status = exchange.status;
        completion.body = std::move(exchange.body);
        completion.content_type = std::move(exchange.content_type);
        completion.headers = std::move(exchange.headers);
      } else {
        std::pair<int, std::string> result;
        switch (endpoint) {
          case ServerEndpoint::kPair:
            result = ExecutePair(engine_, args);
            break;
          case ServerEndpoint::kSingleSource:
            result = ExecuteSingleSource(engine_, args);
            break;
          case ServerEndpoint::kTopK:
            result = ExecuteTopK(engine_, args);
            break;
          case ServerEndpoint::kBatchPair:
            result = ExecuteBatchPair(engine_, args, options_);
            break;
          case ServerEndpoint::kUpdate:
            result = ExecuteUpdate(engine_, *updater_, args);
            break;
          case ServerEndpoint::kCompact:
            result = ExecuteCompact(*updater_, options_);
            break;
        }
        completion.status = result.first;
        completion.body = std::move(result.second);
      }
    }
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - dispatched_at);
    latency_[static_cast<size_t>(endpoint)].Record(
        static_cast<uint64_t>(elapsed.count()));
    if (traced) {
      stat_traced_requests_.fetch_add(1, std::memory_order_relaxed);
      FoldTrace(*recorder);
      const uint64_t elapsed_us = static_cast<uint64_t>(elapsed.count());
      const bool slow = options_.slow_query_us > 0 &&
                        elapsed_us >= options_.slow_query_us;
      const bool sampled_capture =
          args.trace_sampled && options_.slow_query_us == 0;
      if (slow || sampled_capture) {
        CaptureTrace(*recorder, args.target, elapsed_us);
      }
      if (args.trace_inline && completion.body.size() > 2 &&
          completion.body.front() == '{' && completion.body.back() == '}') {
        // Splice the trace into the JSON envelope. Only the explicit
        // ?trace=1 opt-in ever changes a response body.
        completion.body.insert(completion.body.size() - 1,
                               ",\"trace\":" + recorder->ToJson());
      }
      if (args.trace_header) {
        completion.headers.emplace_back("X-Simrank-Trace-Json",
                                        recorder->ToJson());
      }
    }
    {
      std::lock_guard<std::mutex> lock(completions_mutex_);
      completions_.push_back(std::move(completion));
    }
    const uint64_t one = 1;
    [[maybe_unused]] const auto ignored =
        ::write(wake_fd_, &one, sizeof(one));
  });
}

void SimRankServer::DrainCompletions() {
  std::deque<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) {
    if (completion.admission) {
      --inflight_;
      --endpoint_inflight_[static_cast<size_t>(completion.endpoint)];
      stat_inflight_.store(inflight_, std::memory_order_relaxed);
    }
    auto it = connections_.find(completion.fd);
    if (it == connections_.end() ||
        it->second->id != completion.connection_id) {
      continue;  // the client hung up mid-query; drop the answer
    }
    Connection* conn = it->second.get();
    conn->awaiting = false;
    QueueResponse(conn, completion.status, completion.body,
                  completion.headers, completion.content_type);
    // The response is queued; pipelined follow-ups may now proceed (this
    // also closes half-closed connections once they flush).
    ProcessBufferedRequests(conn);
  }
}

void SimRankServer::HandleProfileRequest(Connection* conn,
                                         const HttpRequest& request) {
  stat_requests_debug_profile_.fetch_add(1, std::memory_order_relaxed);
  if (request.method != "GET") {
    QueueResponse(conn, 405,
                  ErrorBody("MethodNotAllowed",
                            "/v1/debug/profile only accepts GET"),
                  {{"Allow", "GET"}});
    return;
  }
  if (!request.body.empty()) {
    QueueErrorResponse(conn, 400, "GET endpoints take no request body");
    return;
  }
  std::string error;
  if (!CheckAllowedParams(request, {"seconds", "hz"}, &error)) {
    QueueErrorResponse(conn, 400, error);
    return;
  }
  double seconds = 2.0;
  if (const std::string* raw = request.FindParam("seconds")) {
    if (!ParseDouble(*raw, &seconds) || !(seconds > 0.0) ||
        seconds > CpuProfiler::kMaxSeconds) {
      QueueErrorResponse(
          conn, 400,
          StrFormat("parameter 'seconds' must be in (0, %g]",
                    CpuProfiler::kMaxSeconds));
      return;
    }
  }
  uint64_t hz = CpuProfiler::kDefaultHz;
  if (const std::string* raw = request.FindParam("hz")) {
    if (!ParseUint64(*raw, &hz) || hz == 0 || hz > CpuProfiler::kMaxHz) {
      QueueErrorResponse(conn, 400,
                         StrFormat("parameter 'hz' must be in [1, %u]",
                                   CpuProfiler::kMaxHz));
      return;
    }
  }
  bool expected = false;
  if (!profile_busy_.compare_exchange_strong(expected, true)) {
    QueueResponse(conn, 409,
                  ErrorBody("Busy",
                            "a profiling session is already running; retry "
                            "when it finishes"));
    return;
  }
  // Park the connection and capture on a dedicated thread: the session
  // sleeps for `seconds`, which must not block the loop or hold a worker.
  conn->awaiting = true;
  const int fd = conn->fd;
  const uint64_t connection_id = conn->id;
  std::lock_guard<std::mutex> lock(profile_threads_mutex_);
  // The previous session (if any) released profile_busy_ before pushing
  // its completion, so these joins only wait out its final microseconds.
  for (std::thread& thread : profile_threads_) {
    if (thread.joinable()) thread.join();
  }
  profile_threads_.clear();
  profile_threads_.emplace_back([this, fd, connection_id, seconds, hz] {
    auto profiled =
        CpuProfiler::Instance().ProfileFor(seconds, static_cast<uint32_t>(hz));
    profile_busy_.store(false, std::memory_order_release);
    Completion completion;
    completion.fd = fd;
    completion.connection_id = connection_id;
    completion.admission = false;
    if (!profiled.ok()) {
      // The profiler itself was busy (e.g. a --profile-log period is
      // mid-capture) or the platform lacks support.
      completion.status = 409;
      completion.body = ErrorBody("Busy", profiled.status().message());
    } else {
      const ProfileReport& report = *profiled;
      completion.status = 200;
      completion.content_type = "text/plain";
      completion.body = StrFormat(
          "# profile duration_seconds=%.3f frequency_hz=%u samples=%llu "
          "dropped=%llu threads=%u\n",
          report.duration_seconds, report.frequency_hz,
          static_cast<unsigned long long>(report.total_samples),
          static_cast<unsigned long long>(report.dropped_samples),
          report.armed_threads);
      completion.body += report.collapsed;
    }
    {
      std::lock_guard<std::mutex> completions_lock(completions_mutex_);
      completions_.push_back(std::move(completion));
    }
    const uint64_t one = 1;
    [[maybe_unused]] const auto ignored =
        ::write(wake_fd_, &one, sizeof(one));
  });
}

void SimRankServer::StartDiagnostics() {
  if (options_.watchdog_interval_ms > 0) {
    WatchdogOptions watchdog_options;
    watchdog_options.poll_interval_ms = options_.watchdog_interval_ms;
    watchdog_options.stall_threshold_us = options_.watchdog_stall_us;
    watchdog_options.name = "epoll-loop";
    watchdog_.set_options(watchdog_options);
    // Called from the loop thread itself, so this tid is the loop's.
    watchdog_.SetWatchedTid(CurrentTid());
    watchdog_.SetQueueDepthProvider([this] { return pool_.queue_depth(); });
    watchdog_.Start();
  }
  if (metrics_history_ != nullptr && metrics_sampler_ == nullptr) {
    metrics_sampler_ = std::make_unique<MetricsSampler>(
        metrics_history_.get(), [this] { return BuildMetricsBody(); });
  }
  if (metrics_sampler_ != nullptr) metrics_sampler_->Start();
}

void SimRankServer::StopDiagnostics() {
  watchdog_.Stop();
  if (metrics_sampler_ != nullptr) metrics_sampler_->Stop();
  if (profile_logger_ != nullptr) profile_logger_->Stop();
  std::lock_guard<std::mutex> lock(profile_threads_mutex_);
  for (std::thread& thread : profile_threads_) {
    if (thread.joinable()) thread.join();
  }
  profile_threads_.clear();
}

void SimRankServer::QueueResponse(
    Connection* conn, int status, std::string_view body,
    const std::vector<std::pair<std::string, std::string>>& extra_headers,
    std::string_view content_type) {
  const bool keep =
      conn->request_keep_alive && !draining_ && !conn->close_after_flush;
  HttpResponseOptions response_options;
  response_options.keep_alive = keep;
  response_options.content_type = content_type;
  response_options.extra_headers = extra_headers;
  conn->out += BuildHttpResponse(status, body, response_options);
  if (!keep) conn->close_after_flush = true;
  CountResponse(status);
  if (access_sink_ != nullptr && !conn->access_method.empty()) {
    LogAccess(*conn, status, body.size());
    conn->access_method.clear();
  }
  UpdateEpoll(conn);
}

void SimRankServer::QueueErrorResponse(Connection* conn, int status,
                                       std::string_view message) {
  const char* code = status == 400 ? "InvalidArgument" : "BadRequest";
  QueueResponse(conn, status, ErrorBody(code, message));
}

void SimRankServer::HandleWritable(Connection* conn) {
  while (conn->out_sent < conn->out.size()) {
    const ssize_t sent =
        ::send(conn->fd, conn->out.data() + conn->out_sent,
               conn->out.size() - conn->out_sent, MSG_NOSIGNAL);
    if (sent > 0) {
      conn->out_sent += static_cast<size_t>(sent);
      continue;
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    CloseConnection(conn);  // peer is gone; nothing left to deliver
    return;
  }
  conn->out.clear();
  conn->out_sent = 0;
  if (conn->close_after_flush && !conn->awaiting) {
    CloseConnection(conn);
    return;
  }
  // Output drained: resume any requests that were parked on the
  // output-backlog backpressure cap (no-op when there are none).
  ProcessBufferedRequests(conn);
}

void SimRankServer::UpdateEpoll(Connection* conn) {
  // Backpressure: a connection over its input or unsent-output budget is
  // not read until the backlog drains (ProcessBufferedRequests and
  // HandleWritable re-run this as they consume).
  const bool over_budget =
      conn->in.size() >= options_.http.max_request_bytes +
                             options_.http.max_body_bytes +
                             kInputBufferSlackBytes ||
      conn->out.size() - conn->out_sent >= kMaxPendingOutputBytes;
  uint32_t desired = 0;
  if (!conn->close_after_flush && !conn->peer_eof && !over_budget) {
    desired |= EPOLLIN;
  }
  if (conn->out_sent < conn->out.size()) desired |= EPOLLOUT;
  if (desired == conn->epoll_events) return;
  epoll_event event = {};
  event.events = desired;
  event.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &event);
  conn->epoll_events = desired;
}

void SimRankServer::CloseConnection(Connection* conn) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  connections_.erase(conn->fd);
  stat_connections_open_.fetch_sub(1, std::memory_order_relaxed);
}

#else  // !OIPSIM_HAVE_EPOLL

Status SimRankServer::Bind() {
  return Status::Unimplemented(
      "SimRankServer requires Linux epoll/eventfd");
}
Status SimRankServer::Serve() {
  return Status::Unimplemented(
      "SimRankServer requires Linux epoll/eventfd");
}
void SimRankServer::Shutdown() { stop_.store(true); }
void SimRankServer::HandleAccept() {}
void SimRankServer::HandleReadable(Connection*) {}
void SimRankServer::HandleWritable(Connection*) {}
void SimRankServer::ProcessBufferedRequests(Connection*) {}
bool SimRankServer::MaybeCloseAfterEof(Connection*) { return false; }
void SimRankServer::RouteRequest(Connection*, const HttpRequest&) {}
void SimRankServer::DispatchQuery(Connection*, ServerEndpoint,
                                  const HttpRequest&) {}
void SimRankServer::DrainCompletions() {}
void SimRankServer::HandleProfileRequest(Connection*, const HttpRequest&) {}
void SimRankServer::StartDiagnostics() {}
void SimRankServer::StopDiagnostics() {}
void SimRankServer::QueueResponse(
    Connection*, int, std::string_view,
    const std::vector<std::pair<std::string, std::string>>&) {}
void SimRankServer::QueueErrorResponse(Connection*, int, std::string_view) {}
void SimRankServer::UpdateEpoll(Connection*) {}
void SimRankServer::CloseConnection(Connection*) {}

#endif  // OIPSIM_HAVE_EPOLL

Status SimRankServer::Warm(std::span<const VertexId> vertices) {
  const uint32_t n = engine_.index().n();
  for (const VertexId v : vertices) {
    if (v >= n) {
      return Status::OutOfRange(StrFormat(
          "warm vertex %u out of range (index has %u vertices)", v, n));
    }
  }
  // Page-cache first (one madvise sweep on mmap backends), then the row
  // cache: the SingleSource misses below fault warm pages, not cold disk.
  engine_.index().store().Prefetch(vertices);
  for (const VertexId v : vertices) {
    auto row = engine_.SingleSource(v);
    if (!row.ok()) return row.status();
  }
  return Status::OK();
}

ServerStats SimRankServer::stats() const {
  ServerStats stats;
  for (uint32_t i = 0; i < kNumServerEndpoints; ++i) {
    stats.requests[i] = stat_requests_[i].load(std::memory_order_relaxed);
  }
  stats.requests_stats =
      stat_requests_stats_.load(std::memory_order_relaxed);
  stats.requests_healthz =
      stat_requests_healthz_.load(std::memory_order_relaxed);
  stats.requests_metrics =
      stat_requests_metrics_.load(std::memory_order_relaxed);
  stats.requests_wal = stat_requests_wal_.load(std::memory_order_relaxed);
  stats.requests_debug_slow =
      stat_requests_debug_slow_.load(std::memory_order_relaxed);
  stats.requests_debug_profile =
      stat_requests_debug_profile_.load(std::memory_order_relaxed);
  stats.requests_debug_timeseries =
      stat_requests_debug_timeseries_.load(std::memory_order_relaxed);
  stats.traced_requests =
      stat_traced_requests_.load(std::memory_order_relaxed);
  stats.slow_captured = slow_log_.total_recorded();
  stats.responses_2xx = stat_responses_2xx_.load(std::memory_order_relaxed);
  stats.responses_4xx = stat_responses_4xx_.load(std::memory_order_relaxed);
  stats.responses_5xx = stat_responses_5xx_.load(std::memory_order_relaxed);
  stats.rejected_inflight =
      stat_rejected_inflight_.load(std::memory_order_relaxed);
  stats.rejected_endpoint =
      stat_rejected_endpoint_.load(std::memory_order_relaxed);
  stats.rejected_misdirected =
      stat_rejected_misdirected_.load(std::memory_order_relaxed);
  stats.connections_accepted =
      stat_connections_accepted_.load(std::memory_order_relaxed);
  stats.connections_open =
      stat_connections_open_.load(std::memory_order_relaxed);
  stats.inflight = stat_inflight_.load(std::memory_order_relaxed);
  return stats;
}

void SimRankServer::CountResponse(int status) {
  if (status < 300) {
    stat_responses_2xx_.fetch_add(1, std::memory_order_relaxed);
  } else if (status < 500) {
    stat_responses_4xx_.fetch_add(1, std::memory_order_relaxed);
  } else {
    stat_responses_5xx_.fetch_add(1, std::memory_order_relaxed);
  }
  if (status == 421) {
    stat_rejected_misdirected_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::string SimRankServer::BuildStatsBody() const {
  const ServerStats stats = this->stats();
  const QueryEngine::CacheStats cache = engine_.cache_stats();
  const WalkIndex& index = engine_.index();
  JsonWriter json;
  json.BeginObject();
  json.Key("server").BeginObject();
  json.Key("inflight").Uint(inflight_);
  json.Key("max_inflight").Uint(options_.max_inflight);
  json.Key("max_endpoint_inflight").Uint(options_.max_endpoint_inflight);
  json.Key("threads").Uint(pool_.num_threads());
  json.Key("draining").Bool(draining_);
  json.Key("uptime_seconds").Double(UptimeSeconds());
  json.EndObject();
  // What exactly is running: resolved at build (version, compiler) and at
  // startup (SIMD tier, io_uring), so a fleet dashboard can spot a stale
  // or differently-capable node at a glance.
  const BuildInfo& build = GetBuildInfo();
  json.Key("build_info").BeginObject();
  json.Key("version").String(build.git_describe);
  json.Key("compiler").String(build.compiler);
  json.Key("build_type").String(build.build_type);
  json.Key("cxx_standard").String(build.cxx_standard);
  json.Key("simd").String(SimdLevelName(ActiveSimdLevel()));
  json.Key("io_uring_compiled").Bool(SegmentReader::BuildSupportsIoUring());
  json.Key("io_uring_enabled").Bool(SegmentReader::IoUringEnabled());
  json.EndObject();
  {
    const Watchdog::Snapshot dog = watchdog_.snapshot();
    json.Key("watchdog").BeginObject();
    json.Key("armed").Bool(options_.watchdog_interval_ms > 0);
    json.Key("loop_lag_us").Uint(dog.loop_lag_us);
    json.Key("max_loop_lag_us").Uint(dog.max_loop_lag_us);
    json.Key("queue_depth").Uint(dog.queue_depth);
    json.Key("max_queue_depth").Uint(dog.max_queue_depth);
    json.Key("stalls").Uint(dog.stalls);
    json.Key("last_stall_us").Uint(dog.last_stall_us);
    const LatencyHistogram::Snapshot dispatch = dispatch_latency_.snapshot();
    json.Key("dispatch_latency_us").BeginObject();
    json.Key("count").Uint(dispatch.count);
    json.Key("p50_us").Uint(dispatch.QuantileUpperMicros(0.5));
    json.Key("p99_us").Uint(dispatch.QuantileUpperMicros(0.99));
    json.EndObject();
    json.EndObject();
  }
  {
    ProcessMemoryStats memory;
    if (ReadProcessMemoryStats(&memory)) {
      json.Key("process_memory").BeginObject();
      json.Key("resident_bytes").Uint(memory.resident_bytes);
      json.Key("virtual_bytes").Uint(memory.virtual_bytes);
      json.Key("peak_resident_bytes").Uint(memory.peak_resident_bytes);
      json.Key("data_bytes").Uint(memory.data_bytes);
      json.EndObject();
    }
  }
  json.Key("requests").BeginObject();
  for (uint32_t i = 0; i < kNumServerEndpoints; ++i) {
    json.Key(ServerEndpointName(static_cast<ServerEndpoint>(i)))
        .Uint(stats.requests[i]);
  }
  json.Key("stats").Uint(stats.requests_stats);
  json.Key("healthz").Uint(stats.requests_healthz);
  json.Key("metrics").Uint(stats.requests_metrics);
  json.Key("wal").Uint(stats.requests_wal);
  json.Key("debug_slow").Uint(stats.requests_debug_slow);
  json.Key("debug_profile").Uint(stats.requests_debug_profile);
  json.Key("debug_timeseries").Uint(stats.requests_debug_timeseries);
  json.EndObject();
  json.Key("responses").BeginObject();
  json.Key("2xx").Uint(stats.responses_2xx);
  json.Key("4xx").Uint(stats.responses_4xx);
  json.Key("5xx").Uint(stats.responses_5xx);
  json.EndObject();
  json.Key("admission").BeginObject();
  json.Key("rejected_inflight").Uint(stats.rejected_inflight);
  json.Key("rejected_endpoint").Uint(stats.rejected_endpoint);
  json.Key("rejected_misdirected").Uint(stats.rejected_misdirected);
  json.EndObject();
  json.Key("connections").BeginObject();
  json.Key("accepted").Uint(stats.connections_accepted);
  json.Key("open").Uint(stats.connections_open);
  json.EndObject();
  json.Key("cache").BeginObject();
  json.Key("hits").Uint(cache.hits);
  json.Key("misses").Uint(cache.misses);
  json.Key("evictions").Uint(cache.evictions);
  json.EndObject();
  // Per-endpoint dispatch-to-completion latency: count/sum plus the fixed
  // log-spaced buckets (upper bounds in µs; last bucket +Inf) and
  // bucket-resolution quantile estimates.
  json.Key("latency_us").BeginObject();
  for (uint32_t i = 0; i < kNumServerEndpoints; ++i) {
    const LatencyHistogram::Snapshot snapshot = latency_[i].snapshot();
    json.Key(ServerEndpointName(static_cast<ServerEndpoint>(i)))
        .BeginObject();
    json.Key("count").Uint(snapshot.count);
    json.Key("sum_us").Uint(snapshot.sum_micros);
    json.Key("p50_us").Uint(snapshot.QuantileUpperMicros(0.5));
    json.Key("p99_us").Uint(snapshot.QuantileUpperMicros(0.99));
    json.Key("buckets").BeginArray();
    for (uint32_t b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
      json.Uint(snapshot.buckets[b]);
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndObject();
  // Tracing: per-stage latency and work counters, folded from traced
  // requests only (untraced requests contribute nothing here).
  json.Key("trace").BeginObject();
  json.Key("sample_rate").Double(options_.trace_sample);
  json.Key("slow_query_us").Uint(options_.slow_query_us);
  json.Key("traced_requests").Uint(stats.traced_requests);
  json.Key("slow_captured").Uint(stats.slow_captured);
  json.Key("slow_ring_capacity").Uint(slow_log_.capacity());
  json.Key("stages").BeginObject();
  for (uint32_t i = 0; i < kNumTraceStages; ++i) {
    const LatencyHistogram::Snapshot snapshot =
        stage_latency_[i].snapshot();
    if (snapshot.count == 0) continue;  // only stages that actually ran
    json.Key(TraceStageName(static_cast<TraceStage>(i))).BeginObject();
    json.Key("count").Uint(snapshot.count);
    json.Key("sum_us").Uint(snapshot.sum_micros);
    json.Key("p50_us").Uint(snapshot.QuantileUpperMicros(0.5));
    json.Key("p99_us").Uint(snapshot.QuantileUpperMicros(0.99));
    json.EndObject();
  }
  json.EndObject();
  json.Key("counters").BeginObject();
  for (uint32_t c = 0; c < kNumTraceCounters; ++c) {
    json.Key(TraceCounterName(static_cast<TraceCounter>(c)))
        .Uint(stage_counters_[c].load(std::memory_order_relaxed));
  }
  json.EndObject();
  json.EndObject();
  if (updater_ != nullptr) {
    const IndexUpdateStats updates = updater_->stats();
    json.Key("updates").BeginObject();
    json.Key("batches_applied").Uint(updates.batches_applied);
    json.Key("batches_replayed").Uint(updates.batches_replayed);
    json.Key("edges_inserted").Uint(updates.edges_inserted);
    json.Key("edges_deleted").Uint(updates.edges_deleted);
    json.Key("walks_resimulated").Uint(updates.walks_resimulated);
    json.Key("walks_changed").Uint(updates.walks_changed);
    json.Key("overlay_sequence").Uint(updates.overlay_sequence);
    json.Key("patched_vertices").Uint(updates.patched_vertices);
    json.Key("patched_walks").Uint(updates.patched_walks);
    json.Key("changed_slots").Uint(updates.changed_slots);
    json.Key("delta_entries").Uint(updates.delta_entries);
    json.Key("overlay_bytes").Uint(updates.overlay_bytes);
    json.Key("graph_edges").Uint(updates.graph_edges);
    json.Key("graph_fingerprint")
        .String(FormatFingerprint(updates.current_graph_fingerprint));
    json.Key("wal_records").Uint(updates.wal_records);
    json.Key("wal_bytes").Uint(updates.wal_bytes);
    json.Key("wal_syncs").Uint(updates.wal_syncs);
    json.Key("wal_truncated_bytes").Uint(updates.wal_truncated_bytes);
    json.Key("compaction").BeginObject();
    json.Key("completed").Uint(updates.compactions);
    json.Key("auto_triggered").Uint(updates.auto_compactions);
    json.Key("auto_failures").Uint(updates.auto_compact_failures);
    json.Key("last_total_us").Uint(updates.last_compaction_micros);
    json.Key("last_pause_us").Uint(updates.last_compaction_pause_micros);
    const LatencyHistogram::Snapshot compaction =
        updater_->compaction_histogram().snapshot();
    json.Key("p50_us").Uint(compaction.QuantileUpperMicros(0.5));
    json.Key("p99_us").Uint(compaction.QuantileUpperMicros(0.99));
    json.EndObject();
    json.EndObject();
  }
  if (options_.sharded || options_.replica) {
    json.Key("cluster").BeginObject();
    json.Key("role").String(options_.replica ? "replica" : "primary");
    if (options_.sharded) {
      const ShardRange& range =
          options_.shard_plan.shards[options_.shard_id];
      json.Key("shard_id").Uint(options_.shard_id);
      json.Key("vertex_begin").Uint(range.begin);
      json.Key("vertex_end").Uint(range.end);
      json.Key("plan_epoch").Uint(options_.shard_plan.epoch);
      json.Key("plan_shards").Uint(options_.shard_plan.shards.size());
    }
    json.Key("overlay_sequence").Uint(index.overlay_sequence());
    json.EndObject();
  }
  json.Key("index").BeginObject();
  json.Key("vertices").Uint(index.n());
  json.Key("fingerprints").Uint(index.options().num_fingerprints);
  json.Key("walk_length").Uint(index.options().walk_length);
  json.Key("damping").Double(index.options().damping);
  json.Key("seed").Uint(index.options().seed);
  json.Key("graph_fingerprint")
      .String(FormatFingerprint(index.graph_fingerprint()));
  json.Key("backend").String(index.store().backend_name());
  json.Key("simd").String(SimdLevelName(ActiveSimdLevel()));
  json.Key("io_uring").Bool(index.store().UsesIoUring());
  json.Key("resident_bytes").Uint(index.SizeBytes());
  json.EndObject();
  json.EndObject();
  return json.str();
}

std::string SimRankServer::BuildMetricsBody() const {
  // Prometheus text exposition (v0.0.4) twinning /v1/stats: counters and
  // gauges line for line, histograms in the native bucket form.
  const ServerStats stats = this->stats();
  const QueryEngine::CacheStats cache = engine_.cache_stats();
  const WalkIndex& index = engine_.index();
  std::string out;
  auto counter = [&out](const char* name, const char* labels,
                        uint64_t value) {
    out += StrFormat("%s%s %llu\n", name, labels,
                     static_cast<unsigned long long>(value));
  };
  auto type = [&out](const char* name, const char* kind) {
    out += StrFormat("# TYPE %s %s\n", name, kind);
  };

  type("simrank_requests_total", "counter");
  for (uint32_t i = 0; i < kNumServerEndpoints; ++i) {
    counter("simrank_requests_total",
            StrFormat("{endpoint=\"%s\"}",
                      ServerEndpointName(static_cast<ServerEndpoint>(i)))
                .c_str(),
            stats.requests[i]);
  }
  counter("simrank_requests_total", "{endpoint=\"stats\"}",
          stats.requests_stats);
  counter("simrank_requests_total", "{endpoint=\"healthz\"}",
          stats.requests_healthz);
  counter("simrank_requests_total", "{endpoint=\"metrics\"}",
          stats.requests_metrics);
  counter("simrank_requests_total", "{endpoint=\"wal\"}",
          stats.requests_wal);
  counter("simrank_requests_total", "{endpoint=\"debug_slow\"}",
          stats.requests_debug_slow);
  counter("simrank_requests_total", "{endpoint=\"debug_profile\"}",
          stats.requests_debug_profile);
  counter("simrank_requests_total", "{endpoint=\"debug_timeseries\"}",
          stats.requests_debug_timeseries);

  type("simrank_responses_total", "counter");
  counter("simrank_responses_total", "{class=\"2xx\"}",
          stats.responses_2xx);
  counter("simrank_responses_total", "{class=\"4xx\"}",
          stats.responses_4xx);
  counter("simrank_responses_total", "{class=\"5xx\"}",
          stats.responses_5xx);

  type("simrank_rejected_total", "counter");
  counter("simrank_rejected_total", "{reason=\"inflight\"}",
          stats.rejected_inflight);
  counter("simrank_rejected_total", "{reason=\"endpoint\"}",
          stats.rejected_endpoint);
  counter("simrank_rejected_total", "{reason=\"misdirected\"}",
          stats.rejected_misdirected);

  type("simrank_connections_accepted_total", "counter");
  counter("simrank_connections_accepted_total", "",
          stats.connections_accepted);
  type("simrank_connections_open", "gauge");
  counter("simrank_connections_open", "", stats.connections_open);
  type("simrank_inflight", "gauge");
  counter("simrank_inflight", "", stats.inflight);

  const BuildInfo& build = GetBuildInfo();
  type("simrank_build_info", "gauge");
  out += StrFormat(
      "simrank_build_info{version=\"%s\",compiler=\"%s\",build_type=\"%s\","
      "simd=\"%s\",io_uring=\"%s\"} 1\n",
      build.git_describe, build.compiler, build.build_type,
      SimdLevelName(ActiveSimdLevel()),
      SegmentReader::IoUringEnabled() ? "true" : "false");
  type("simrank_uptime_seconds", "gauge");
  out += StrFormat("simrank_uptime_seconds %g\n", UptimeSeconds());

  const Watchdog::Snapshot dog = watchdog_.snapshot();
  type("simrank_loop_lag_seconds", "gauge");
  out += StrFormat("simrank_loop_lag_seconds %g\n",
                   static_cast<double>(dog.loop_lag_us) / 1e6);
  type("simrank_loop_lag_max_seconds", "gauge");
  out += StrFormat("simrank_loop_lag_max_seconds %g\n",
                   static_cast<double>(dog.max_loop_lag_us) / 1e6);
  type("simrank_loop_stalls_total", "counter");
  counter("simrank_loop_stalls_total", "", dog.stalls);
  type("simrank_queue_depth", "gauge");
  counter("simrank_queue_depth", "", dog.queue_depth);
  type("simrank_queue_depth_max", "gauge");
  counter("simrank_queue_depth_max", "", dog.max_queue_depth);

  // Dispatch-to-start latency: the queue wait workers actually observed.
  type("simrank_dispatch_latency_seconds", "histogram");
  {
    const LatencyHistogram::Snapshot snapshot = dispatch_latency_.snapshot();
    uint64_t cumulative = 0;
    for (uint32_t b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
      cumulative += snapshot.buckets[b];
      if (b + 1 < LatencyHistogram::kNumBuckets) {
        out += StrFormat(
            "simrank_dispatch_latency_seconds_bucket{le=\"%g\"} %llu\n",
            static_cast<double>(LatencyHistogram::BucketUpperMicros(b)) /
                1e6,
            static_cast<unsigned long long>(cumulative));
      } else {
        out += StrFormat(
            "simrank_dispatch_latency_seconds_bucket{le=\"+Inf\"} %llu\n",
            static_cast<unsigned long long>(cumulative));
      }
    }
    out += StrFormat("simrank_dispatch_latency_seconds_sum %g\n",
                     static_cast<double>(snapshot.sum_micros) / 1e6);
    out += StrFormat("simrank_dispatch_latency_seconds_count %llu\n",
                     static_cast<unsigned long long>(snapshot.count));
  }

  ProcessMemoryStats memory;
  if (ReadProcessMemoryStats(&memory)) {
    type("simrank_resident_bytes", "gauge");
    counter("simrank_resident_bytes", "", memory.resident_bytes);
    type("simrank_virtual_bytes", "gauge");
    counter("simrank_virtual_bytes", "", memory.virtual_bytes);
    type("simrank_peak_resident_bytes", "gauge");
    counter("simrank_peak_resident_bytes", "", memory.peak_resident_bytes);
  }

  type("simrank_cache_hits_total", "counter");
  counter("simrank_cache_hits_total", "", cache.hits);
  type("simrank_cache_misses_total", "counter");
  counter("simrank_cache_misses_total", "", cache.misses);
  type("simrank_cache_evictions_total", "counter");
  counter("simrank_cache_evictions_total", "", cache.evictions);

  type("simrank_index_vertices", "gauge");
  counter("simrank_index_vertices", "", index.n());
  type("simrank_index_resident_bytes", "gauge");
  counter("simrank_index_resident_bytes", "", index.SizeBytes());
  type("simrank_index_info", "gauge");
  out += StrFormat("simrank_index_info{backend=\"%s\"} 1\n",
                   index.store().backend_name());
  type("simrank_overlay_sequence_current", "gauge");
  counter("simrank_overlay_sequence_current", "",
          index.overlay_sequence());

  if (options_.sharded || options_.replica) {
    type("simrank_shard_replica", "gauge");
    counter("simrank_shard_replica", "", options_.replica ? 1 : 0);
    if (options_.sharded) {
      const ShardRange& range =
          options_.shard_plan.shards[options_.shard_id];
      type("simrank_shard_id", "gauge");
      counter("simrank_shard_id", "", options_.shard_id);
      type("simrank_shard_plan_epoch", "gauge");
      counter("simrank_shard_plan_epoch", "", options_.shard_plan.epoch);
      type("simrank_shard_vertex_begin", "gauge");
      counter("simrank_shard_vertex_begin", "", range.begin);
      type("simrank_shard_vertex_end", "gauge");
      counter("simrank_shard_vertex_end", "", range.end);
    }
  }

  type("simrank_request_duration_seconds", "histogram");
  for (uint32_t i = 0; i < kNumServerEndpoints; ++i) {
    const char* name = ServerEndpointName(static_cast<ServerEndpoint>(i));
    const LatencyHistogram::Snapshot snapshot = latency_[i].snapshot();
    uint64_t cumulative = 0;
    for (uint32_t b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
      cumulative += snapshot.buckets[b];
      if (b + 1 < LatencyHistogram::kNumBuckets) {
        out += StrFormat(
            "simrank_request_duration_seconds_bucket{endpoint=\"%s\","
            "le=\"%g\"} %llu\n",
            name,
            static_cast<double>(LatencyHistogram::BucketUpperMicros(b)) /
                1e6,
            static_cast<unsigned long long>(cumulative));
      } else {
        out += StrFormat(
            "simrank_request_duration_seconds_bucket{endpoint=\"%s\","
            "le=\"+Inf\"} %llu\n",
            name, static_cast<unsigned long long>(cumulative));
      }
    }
    out += StrFormat(
        "simrank_request_duration_seconds_sum{endpoint=\"%s\"} %g\n", name,
        static_cast<double>(snapshot.sum_micros) / 1e6);
    out += StrFormat(
        "simrank_request_duration_seconds_count{endpoint=\"%s\"} %llu\n",
        name, static_cast<unsigned long long>(snapshot.count));
  }

  type("simrank_traced_requests_total", "counter");
  counter("simrank_traced_requests_total", "", stats.traced_requests);
  type("simrank_slow_queries_total", "counter");
  counter("simrank_slow_queries_total", "", stats.slow_captured);

  // Per-stage latency folded from traced requests only; all stages are
  // emitted (zeroed when never hit) so scrapers see a stable family.
  type("simrank_stage_duration_seconds", "histogram");
  for (uint32_t i = 0; i < kNumTraceStages; ++i) {
    const char* name = TraceStageName(static_cast<TraceStage>(i));
    const LatencyHistogram::Snapshot snapshot =
        stage_latency_[i].snapshot();
    uint64_t cumulative = 0;
    for (uint32_t b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
      cumulative += snapshot.buckets[b];
      if (b + 1 < LatencyHistogram::kNumBuckets) {
        out += StrFormat(
            "simrank_stage_duration_seconds_bucket{stage=\"%s\","
            "le=\"%g\"} %llu\n",
            name,
            static_cast<double>(LatencyHistogram::BucketUpperMicros(b)) /
                1e6,
            static_cast<unsigned long long>(cumulative));
      } else {
        out += StrFormat(
            "simrank_stage_duration_seconds_bucket{stage=\"%s\","
            "le=\"+Inf\"} %llu\n",
            name, static_cast<unsigned long long>(cumulative));
      }
    }
    out += StrFormat(
        "simrank_stage_duration_seconds_sum{stage=\"%s\"} %g\n", name,
        static_cast<double>(snapshot.sum_micros) / 1e6);
    out += StrFormat(
        "simrank_stage_duration_seconds_count{stage=\"%s\"} %llu\n", name,
        static_cast<unsigned long long>(snapshot.count));
  }

  type("simrank_stage_counter_total", "counter");
  for (uint32_t c = 0; c < kNumTraceCounters; ++c) {
    counter("simrank_stage_counter_total",
            StrFormat("{counter=\"%s\"}",
                      TraceCounterName(static_cast<TraceCounter>(c)))
                .c_str(),
            stage_counters_[c].load(std::memory_order_relaxed));
  }

  if (updater_ != nullptr) {
    const IndexUpdateStats updates = updater_->stats();
    type("simrank_update_batches_total", "counter");
    counter("simrank_update_batches_total", "", updates.batches_applied);
    type("simrank_update_edges_total", "counter");
    counter("simrank_update_edges_total", "{op=\"insert\"}",
            updates.edges_inserted);
    counter("simrank_update_edges_total", "{op=\"delete\"}",
            updates.edges_deleted);
    type("simrank_update_walks_resimulated_total", "counter");
    counter("simrank_update_walks_resimulated_total", "",
            updates.walks_resimulated);
    type("simrank_overlay_sequence", "gauge");
    counter("simrank_overlay_sequence", "", updates.overlay_sequence);
    type("simrank_overlay_patched_vertices", "gauge");
    counter("simrank_overlay_patched_vertices", "",
            updates.patched_vertices);
    type("simrank_overlay_delta_entries", "gauge");
    counter("simrank_overlay_delta_entries", "", updates.delta_entries);
    type("simrank_overlay_patches", "gauge");
    counter("simrank_overlay_patches", "", updates.patched_walks);
    type("simrank_overlay_bytes", "gauge");
    counter("simrank_overlay_bytes", "", updates.overlay_bytes);
    type("simrank_compactions_total", "counter");
    counter("simrank_compactions_total", "", updates.compactions);
    type("simrank_auto_compactions_total", "counter");
    counter("simrank_auto_compactions_total", "", updates.auto_compactions);
    type("simrank_auto_compact_failures_total", "counter");
    counter("simrank_auto_compact_failures_total", "",
            updates.auto_compact_failures);
    type("simrank_compaction_pause_seconds", "gauge");
    out += StrFormat(
        "simrank_compaction_pause_seconds %g\n",
        static_cast<double>(updates.last_compaction_pause_micros) / 1e6);
    // Durations of completed compactions (manual + auto), native buckets.
    type("simrank_compaction_duration_seconds", "histogram");
    {
      const LatencyHistogram::Snapshot snapshot =
          updater_->compaction_histogram().snapshot();
      uint64_t cumulative = 0;
      for (uint32_t b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
        cumulative += snapshot.buckets[b];
        if (b + 1 < LatencyHistogram::kNumBuckets) {
          out += StrFormat(
              "simrank_compaction_duration_seconds_bucket{le=\"%g\"} "
              "%llu\n",
              static_cast<double>(LatencyHistogram::BucketUpperMicros(b)) /
                  1e6,
              static_cast<unsigned long long>(cumulative));
        } else {
          out += StrFormat(
              "simrank_compaction_duration_seconds_bucket{le=\"+Inf\"} "
              "%llu\n",
              static_cast<unsigned long long>(cumulative));
        }
      }
      out += StrFormat("simrank_compaction_duration_seconds_sum %g\n",
                       static_cast<double>(snapshot.sum_micros) / 1e6);
      out += StrFormat(
          "simrank_compaction_duration_seconds_count %llu\n",
          static_cast<unsigned long long>(snapshot.count));
    }
    type("simrank_wal_records", "gauge");
    counter("simrank_wal_records", "", updates.wal_records);
    type("simrank_wal_bytes", "gauge");
    counter("simrank_wal_bytes", "", updates.wal_bytes);
    type("simrank_wal_syncs_total", "counter");
    counter("simrank_wal_syncs_total", "", updates.wal_syncs);
  }
  return out;
}

namespace {

uint64_t WallClockMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string SimRankServer::BuildSlowBody() const {
  // Hand-built (not JsonWriter): the captured traces are already
  // serialized JSON objects and are embedded verbatim.
  const std::vector<SlowQueryEntry> entries = slow_log_.Snapshot();
  std::string out = StrFormat(
      "{\"capacity\":%zu,\"total_recorded\":%llu,\"threshold_us\":%llu,"
      "\"entries\":[",
      slow_log_.capacity(),
      static_cast<unsigned long long>(slow_log_.total_recorded()),
      static_cast<unsigned long long>(options_.slow_query_us));
  for (size_t i = 0; i < entries.size(); ++i) {
    const SlowQueryEntry& entry = entries[i];
    if (i > 0) out += ',';
    out += StrFormat(
        "{\"unix_micros\":%llu,\"duration_us\":%llu,\"trace_id\":\"%s\","
        "\"target\":\"",
        static_cast<unsigned long long>(entry.unix_micros),
        static_cast<unsigned long long>(entry.duration_micros),
        TraceIdToHex(entry.trace_id).c_str());
    JsonEscape(entry.target, &out);
    out += "\",\"trace\":";
    out += entry.trace_json;
    out += '}';
  }
  out += "]}";
  return out;
}

void SimRankServer::FoldTrace(const TraceRecorder& recorder) {
  for (uint32_t i = 0; i < recorder.num_spans(); ++i) {
    const TraceSpan& span = recorder.span(i);
    stage_latency_[static_cast<size_t>(span.stage)].Record(
        span.duration_ns / 1000);
  }
  for (uint32_t c = 0; c < kNumTraceCounters; ++c) {
    const uint64_t value = recorder.counter(static_cast<TraceCounter>(c));
    if (value > 0) {
      stage_counters_[c].fetch_add(value, std::memory_order_relaxed);
    }
  }
}

void SimRankServer::CaptureTrace(const TraceRecorder& recorder,
                                 std::string_view target,
                                 uint64_t duration_micros) {
  SlowQueryEntry entry;
  entry.unix_micros = WallClockMicros();
  entry.duration_micros = duration_micros;
  entry.trace_id = recorder.trace_id();
  entry.target = std::string(target);
  entry.trace_json = recorder.ToJson();
  if (trace_sink_ != nullptr) {
    std::string line =
        StrFormat("{\"unix_micros\":%llu,\"target\":\"",
                  static_cast<unsigned long long>(entry.unix_micros));
    JsonEscape(target, &line);
    line += StrFormat(
        "\",\"duration_us\":%llu,\"trace\":",
        static_cast<unsigned long long>(duration_micros));
    line += entry.trace_json;
    line += '}';
    trace_sink_->Append(std::move(line));
  }
  slow_log_.Record(std::move(entry));
}

void SimRankServer::LogAccess(const Connection& conn, int status,
                              size_t body_bytes) {
  const uint64_t micros =
      conn.access_start_ns == 0
          ? 0
          : (TraceNowNanos() - conn.access_start_ns) / 1000;
  std::string line = StrFormat("{\"unix_micros\":%llu,\"method\":\"",
                               static_cast<unsigned long long>(
                                   WallClockMicros()));
  JsonEscape(conn.access_method, &line);
  line += "\",\"path\":\"";
  JsonEscape(conn.access_path, &line);
  line += StrFormat("\",\"status\":%d,\"bytes\":%zu,\"micros\":%llu",
                    status, body_bytes,
                    static_cast<unsigned long long>(micros));
  if (conn.access_trace_id != 0) {
    line += StrFormat(",\"trace_id\":\"%s\"",
                      TraceIdToHex(conn.access_trace_id).c_str());
  }
  line += '}';
  access_sink_->Append(std::move(line));
}

}  // namespace simrank
