#include "simrank/server/http_client.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "simrank/common/string_util.h"

#if defined(__unix__) || defined(__APPLE__)
#define OIPSIM_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace simrank {

const std::string* HttpClientResponse::FindHeader(
    std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

double FindJsonNumber(const std::string& body, const std::string& key,
                      size_t* cursor) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = body.find(needle, cursor == nullptr ? 0 : *cursor);
  OIPSIM_CHECK_MSG(at != std::string::npos, "no \"%s\" in %s", key.c_str(),
                   body.c_str());
  const size_t value_at = at + needle.size();
  if (cursor != nullptr) *cursor = value_at;
  return std::strtod(body.c_str() + value_at, nullptr);
}

std::vector<double> FindJsonNumberArray(const std::string& body,
                                        const std::string& key) {
  const std::string needle = "\"" + key + "\":[";
  const size_t at = body.find(needle);
  OIPSIM_CHECK_MSG(at != std::string::npos, "no \"%s\" array in %s",
                   key.c_str(), body.c_str());
  std::vector<double> values;
  const char* cursor = body.c_str() + at + needle.size();
  while (*cursor != ']') {
    char* next = nullptr;
    values.push_back(std::strtod(cursor, &next));
    OIPSIM_CHECK_MSG(next != cursor, "malformed number array in %s",
                     body.c_str());
    cursor = *next == ',' ? next + 1 : next;
  }
  return values;
}

#if OIPSIM_HAVE_SOCKETS

Result<LoopbackHttpClient> LoopbackHttpClient::Connect(uint16_t port) {
  return Connect(port, /*timeout_ms=*/0);
}

Result<LoopbackHttpClient> LoopbackHttpClient::Connect(uint16_t port,
                                                       uint32_t timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  if (timeout_ms > 0) {
    timeval tv = {};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = static_cast<long>(timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IoError(StrFormat("cannot connect to 127.0.0.1:%u: %s",
                                     port, std::strerror(errno)));
  }
  const int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  return LoopbackHttpClient(fd);
}

LoopbackHttpClient::LoopbackHttpClient(LoopbackHttpClient&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

LoopbackHttpClient& LoopbackHttpClient::operator=(
    LoopbackHttpClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

LoopbackHttpClient::~LoopbackHttpClient() {
  if (fd_ >= 0) ::close(fd_);
}

Status LoopbackHttpClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::IoError("connection is closed");
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::IoError("send failed: connection reset");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status LoopbackHttpClient::ShutdownWrite() {
  if (fd_ < 0) return Status::IoError("connection is closed");
  if (::shutdown(fd_, SHUT_WR) != 0) {
    return Status::IoError("shutdown(SHUT_WR) failed");
  }
  return Status::OK();
}

Result<HttpClientResponse> LoopbackHttpClient::ReadResponse() {
  if (fd_ < 0) return Status::IoError("connection is closed");
  // Accumulate until the header terminator, then until Content-Length
  // bytes of body are buffered.
  size_t header_end = std::string::npos;
  while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
    char chunk[4096];
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      return Status::IoError("connection closed before response headers");
    }
    buffer_.append(chunk, static_cast<size_t>(got));
  }

  HttpClientResponse response;
  const std::string head = buffer_.substr(0, header_end);
  const std::vector<std::string> lines = StrSplit(head, '\n');
  if (lines.empty()) return Status::ParseError("empty response head");
  const std::string_view status_line = StrTrim(lines[0]);
  // "HTTP/1.1 200 OK"
  const size_t sp = status_line.find(' ');
  uint64_t status = 0;
  if (sp == std::string_view::npos ||
      !ParseUint64(status_line.substr(sp + 1, 3), &status)) {
    return Status::ParseError("malformed status line: " +
                              std::string(status_line));
  }
  response.status = static_cast<int>(status);
  uint64_t content_length = 0;
  bool have_length = false;
  for (size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = StrTrim(lines[i]);
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string name(line.substr(0, colon));
    for (char& c : name) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    const std::string value(StrTrim(line.substr(colon + 1)));
    if (name == "content-length" && ParseUint64(value, &content_length)) {
      have_length = true;
    }
    response.headers.emplace_back(std::move(name), value);
  }
  if (!have_length) {
    return Status::ParseError("response without Content-Length");
  }

  const size_t body_start = header_end + 4;
  while (buffer_.size() < body_start + content_length) {
    char chunk[4096];
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      return Status::IoError("connection closed mid-body");
    }
    buffer_.append(chunk, static_cast<size_t>(got));
  }
  response.body = buffer_.substr(body_start, content_length);
  buffer_.erase(0, body_start + content_length);
  return response;
}

Result<HttpClientResponse> LoopbackHttpClient::Get(
    const std::string& target,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  std::string request = "GET " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n";
  for (const auto& [name, value] : extra_headers) {
    request += name;
    request += ": ";
    request += value;
    request += "\r\n";
  }
  request += "\r\n";
  OIPSIM_RETURN_IF_ERROR(SendRaw(request));
  return ReadResponse();
}

Result<HttpClientResponse> LoopbackHttpClient::Post(
    const std::string& target, std::string_view body,
    std::string_view content_type,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  std::string request = "POST " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n";
  request += "Content-Type: ";
  request += content_type;
  request += StrFormat("\r\nContent-Length: %zu\r\n", body.size());
  for (const auto& [name, value] : extra_headers) {
    request += name;
    request += ": ";
    request += value;
    request += "\r\n";
  }
  request += "\r\n";
  request += body;
  OIPSIM_RETURN_IF_ERROR(SendRaw(request));
  return ReadResponse();
}

Result<HttpClientResponse> HttpGet(uint16_t port,
                                   const std::string& target) {
  auto client = LoopbackHttpClient::Connect(port);
  if (!client.ok()) return client.status();
  return client->Get(target);
}

Result<HttpClientResponse> HttpPost(uint16_t port, const std::string& target,
                                    std::string_view body,
                                    std::string_view content_type) {
  auto client = LoopbackHttpClient::Connect(port);
  if (!client.ok()) return client.status();
  return client->Post(target, body, content_type);
}

#else  // !OIPSIM_HAVE_SOCKETS

Result<LoopbackHttpClient> LoopbackHttpClient::Connect(uint16_t) {
  return Status::Unimplemented("LoopbackHttpClient requires POSIX sockets");
}
LoopbackHttpClient::LoopbackHttpClient(LoopbackHttpClient&&) noexcept =
    default;
LoopbackHttpClient& LoopbackHttpClient::operator=(
    LoopbackHttpClient&&) noexcept = default;
LoopbackHttpClient::~LoopbackHttpClient() = default;
Status LoopbackHttpClient::SendRaw(std::string_view) {
  return Status::Unimplemented("LoopbackHttpClient requires POSIX sockets");
}
Status LoopbackHttpClient::ShutdownWrite() {
  return Status::Unimplemented("LoopbackHttpClient requires POSIX sockets");
}
Result<HttpClientResponse> LoopbackHttpClient::ReadResponse() {
  return Status::Unimplemented("LoopbackHttpClient requires POSIX sockets");
}
Result<HttpClientResponse> LoopbackHttpClient::Get(
    const std::string&,
    const std::vector<std::pair<std::string, std::string>>&) {
  return Status::Unimplemented("LoopbackHttpClient requires POSIX sockets");
}
Result<HttpClientResponse> LoopbackHttpClient::Post(
    const std::string&, std::string_view, std::string_view,
    const std::vector<std::pair<std::string, std::string>>&) {
  return Status::Unimplemented("LoopbackHttpClient requires POSIX sockets");
}
Result<HttpClientResponse> HttpGet(uint16_t, const std::string&) {
  return Status::Unimplemented("LoopbackHttpClient requires POSIX sockets");
}
Result<HttpClientResponse> HttpPost(uint16_t, const std::string&,
                                    std::string_view, std::string_view) {
  return Status::Unimplemented("LoopbackHttpClient requires POSIX sockets");
}

#endif  // OIPSIM_HAVE_SOCKETS

}  // namespace simrank
