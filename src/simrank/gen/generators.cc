#include "simrank/gen/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "simrank/common/rng.h"
#include "simrank/graph/graph_ops.h"

namespace simrank::gen {

namespace {

/// Packs a directed edge into a single 64-bit key for dedup sets.
inline uint64_t EdgeKey(VertexId src, VertexId dst) {
  return (static_cast<uint64_t>(src) << 32) | dst;
}

}  // namespace

Result<DiGraph> ErdosRenyi(const ErdosRenyiParams& params) {
  if (params.n < 2) {
    return Status::InvalidArgument("ErdosRenyi requires n >= 2");
  }
  const uint64_t max_edges =
      static_cast<uint64_t>(params.n) * (params.n - 1);
  if (params.m > max_edges) {
    return Status::InvalidArgument(
        "ErdosRenyi: m exceeds n*(n-1) possible edges");
  }
  Rng rng(params.seed);
  std::unordered_set<uint64_t> seen;
  seen.reserve(params.m * 2);
  DiGraph::Builder builder(params.n);
  while (seen.size() < params.m) {
    VertexId src = static_cast<VertexId>(rng.NextUint64(params.n));
    VertexId dst = static_cast<VertexId>(rng.NextUint64(params.n));
    if (src == dst) continue;
    if (seen.insert(EdgeKey(src, dst)).second) {
      builder.AddEdge(src, dst);
    }
  }
  return std::move(builder).Build();
}

Result<DiGraph> Rmat(const RmatParams& params) {
  if (params.scale == 0 || params.scale > 28) {
    return Status::InvalidArgument("Rmat: scale must be in [1, 28]");
  }
  const double sum = params.a + params.b + params.c + params.d;
  if (params.a <= 0 || params.b <= 0 || params.c <= 0 || params.d <= 0 ||
      std::abs(sum - 1.0) > 1e-9) {
    return Status::InvalidArgument(
        "Rmat: probabilities must be positive and sum to 1");
  }
  const uint32_t n = 1u << params.scale;
  Rng rng(params.seed);
  DiGraph::Builder builder(n);
  for (uint64_t e = 0; e < params.m_target; ++e) {
    uint32_t row = 0, col = 0;
    for (uint32_t bit = 0; bit < params.scale; ++bit) {
      double r = rng.NextDouble();
      row <<= 1;
      col <<= 1;
      if (r < params.a) {
        // top-left quadrant: no bits set
      } else if (r < params.a + params.b) {
        col |= 1;
      } else if (r < params.a + params.b + params.c) {
        row |= 1;
      } else {
        row |= 1;
        col |= 1;
      }
    }
    if (row != col) builder.AddEdge(row, col);
  }
  DiGraph graph = std::move(builder).Build();
  if (params.shuffle_ids) {
    std::vector<VertexId> perm(n);
    for (uint32_t i = 0; i < n; ++i) perm[i] = i;
    rng.Shuffle(&perm);
    Result<DiGraph> relabeled = RelabelVertices(graph, perm);
    OIPSIM_CHECK(relabeled.ok());
    return std::move(relabeled).value();
  }
  return graph;
}

Result<DiGraph> Ssca2(const Ssca2Params& params) {
  if (params.n < 2 || params.max_clique_size < 2) {
    return Status::InvalidArgument(
        "Ssca2 requires n >= 2 and max_clique_size >= 2");
  }
  if (params.inter_clique_ratio < 0.0 || params.inter_clique_ratio > 1.0) {
    return Status::InvalidArgument(
        "Ssca2: inter_clique_ratio must be in [0, 1]");
  }
  Rng rng(params.seed);
  DiGraph::Builder builder(params.n);
  // Partition vertices into cliques of uniform random size.
  VertexId next = 0;
  std::vector<std::pair<VertexId, VertexId>> cliques;  // [begin, end)
  while (next < params.n) {
    uint32_t size = static_cast<uint32_t>(
        2 + rng.NextUint64(params.max_clique_size - 1));
    size = std::min<uint32_t>(size, params.n - next);
    cliques.emplace_back(next, next + size);
    next += size;
  }
  for (auto [begin, end] : cliques) {
    const uint32_t size = end - begin;
    for (VertexId u = begin; u < end; ++u) {
      for (VertexId v = begin; v < end; ++v) {
        if (u != v) builder.AddEdge(u, v);
      }
      // Inter-clique edges: a small fraction of the clique degree.
      const uint32_t extra = static_cast<uint32_t>(
          params.inter_clique_ratio * (size - 1) + rng.NextDouble());
      for (uint32_t e = 0; e < extra; ++e) {
        VertexId target = static_cast<VertexId>(rng.NextUint64(params.n));
        if (target != u) builder.AddEdge(u, target);
      }
    }
  }
  return std::move(builder).Build();
}

Result<DiGraph> BarabasiAlbert(const BarabasiAlbertParams& params) {
  if (params.n < 2 || params.out_degree == 0) {
    return Status::InvalidArgument(
        "BarabasiAlbert requires n >= 2 and out_degree >= 1");
  }
  Rng rng(params.seed);
  DiGraph::Builder builder(params.n);
  // `targets` holds one entry per (in-degree + 1) unit, so sampling an
  // element uniformly realises the preferential-attachment distribution.
  std::vector<VertexId> targets;
  targets.reserve(static_cast<size_t>(params.n) *
                  (1 + params.out_degree));
  targets.push_back(0);  // vertex 0 starts with weight 1
  for (VertexId v = 1; v < params.n; ++v) {
    uint32_t degree = std::min<uint32_t>(params.out_degree, v);
    std::unordered_set<VertexId> chosen;
    while (chosen.size() < degree) {
      VertexId u = targets[rng.NextUint64(targets.size())];
      if (u != v) chosen.insert(u);
    }
    for (VertexId u : chosen) {
      builder.AddEdge(v, u);
      targets.push_back(u);  // u gained an in-edge
    }
    targets.push_back(v);  // the newcomer's base weight
  }
  return std::move(builder).Build();
}

Result<DiGraph> WebGraph(const WebGraphParams& params) {
  if (params.n < 3 || params.out_degree == 0) {
    return Status::InvalidArgument(
        "WebGraph requires n >= 3 and out_degree >= 1");
  }
  if (params.copy_prob < 0.0 || params.copy_prob > 1.0 ||
      params.in_copy_prob < 0.0 || params.in_copy_prob > 1.0) {
    return Status::InvalidArgument(
        "WebGraph: copy_prob and in_copy_prob must be in [0, 1]");
  }
  Rng rng(params.seed);
  DiGraph::Builder builder(params.n);
  // Seed nucleus: a small cycle so every page has a link to copy.
  const uint32_t nucleus = std::min<uint32_t>(params.out_degree + 1, params.n);
  std::vector<std::vector<VertexId>> out_links(params.n);
  std::vector<std::vector<VertexId>> in_links(params.n);
  auto add_edge = [&](VertexId src, VertexId dst) {
    builder.AddEdge(src, dst);
    out_links[src].push_back(dst);
    in_links[dst].push_back(src);
  };
  for (VertexId v = 0; v < nucleus; ++v) {
    add_edge(v, (v + 1) % nucleus);
  }
  for (VertexId v = nucleus; v < params.n; ++v) {
    VertexId prototype = static_cast<VertexId>(rng.NextUint64(v));
    std::unordered_set<VertexId> chosen;
    // Link to the prototype itself (web pages link to their "hub"), then
    // copy (or rewire) its links while staying within the degree budget —
    // without the cap, copied pages with above-average degree compound
    // across generations and the realised degree creeps past the target.
    chosen.insert(prototype);
    for (VertexId u : out_links[prototype]) {
      if (chosen.size() >= params.out_degree) break;
      VertexId target;
      if (rng.NextBool(params.copy_prob)) {
        target = u;
      } else {
        target = static_cast<VertexId>(rng.NextUint64(v));
      }
      if (target != v) chosen.insert(target);
    }
    // Top up with random links until the page has out_degree links.
    uint32_t attempts = 0;
    while (chosen.size() < params.out_degree && attempts < 10 * params.out_degree) {
      VertexId target = static_cast<VertexId>(rng.NextUint64(v));
      if (target != v) chosen.insert(target);
      ++attempts;
    }
    for (VertexId u : chosen) add_edge(v, u);

    // Audience inheritance: the pages that link to a sibling also pick up
    // the newcomer — I(v) becomes a near-copy of I(sibling).
    if (rng.NextBool(params.in_copy_prob)) {
      VertexId sibling = static_cast<VertexId>(rng.NextUint64(v));
      // Snapshot the sibling's current audience (add_edge mutates it).
      std::vector<VertexId> audience = in_links[sibling];
      for (VertexId x : audience) {
        if (x != v && rng.NextBool(params.copy_prob)) add_edge(x, v);
      }
    }
  }
  return std::move(builder).Build();
}

Result<DiGraph> CitationGraph(const CitationGraphParams& params) {
  if (params.n < 2 || params.refs_per_node == 0 ||
      params.max_family_size == 0) {
    return Status::InvalidArgument(
        "CitationGraph requires n >= 2, refs_per_node >= 1 and "
        "max_family_size >= 1");
  }
  if (params.pref_prob < 0.0 || params.pref_prob > 1.0 ||
      params.join_family_prob < 0.0 || params.join_family_prob > 1.0 ||
      params.cite_family_prob < 0.0 || params.cite_family_prob > 1.0) {
    return Status::InvalidArgument(
        "CitationGraph: probabilities must be in [0, 1]");
  }
  Rng rng(params.seed);
  DiGraph::Builder builder(params.n);
  // Family bookkeeping: family_of[v] indexes into families.
  std::vector<uint32_t> family_of(params.n, 0);
  std::vector<std::vector<VertexId>> families;
  families.push_back({0});
  std::vector<VertexId> pref_pool;  // one entry per citation received + 1
  pref_pool.reserve(static_cast<size_t>(params.n) *
                    (1 + params.refs_per_node));
  pref_pool.push_back(0);
  for (VertexId v = 1; v < params.n; ++v) {
    // Join the newest still-open family or found a new one.
    if (rng.NextBool(params.join_family_prob) &&
        families.back().size() < params.max_family_size) {
      families.back().push_back(v);
    } else {
      families.push_back({v});
    }
    family_of[v] = static_cast<uint32_t>(families.size() - 1);

    uint32_t refs = std::min<uint32_t>(params.refs_per_node, v);
    std::unordered_set<VertexId> cited;
    uint32_t attempts = 0;
    while (cited.size() < refs && attempts < 20 * refs) {
      ++attempts;
      VertexId target;
      if (rng.NextBool(params.pref_prob)) {
        target = pref_pool[rng.NextUint64(pref_pool.size())];
      } else {
        // Recency window: patents cite recent work.
        uint32_t lo = v > params.window ? v - params.window : 0;
        target = static_cast<VertexId>(lo + rng.NextUint64(v - lo));
      }
      if (target >= v) continue;  // DAG: only cite older patents
      cited.insert(target);
      // Cite the target's family siblings too (prior art comes in
      // families, which is what makes citer sets near-duplicates).
      for (VertexId sibling : families[family_of[target]]) {
        if (sibling < v && rng.NextBool(params.cite_family_prob)) {
          cited.insert(sibling);
        }
      }
    }
    for (VertexId u : cited) {
      builder.AddEdge(v, u);
      pref_pool.push_back(u);
    }
    pref_pool.push_back(v);
  }
  return std::move(builder).Build();
}

Result<DiGraph> CoauthorGraph(const CoauthorGraphParams& params) {
  if (params.num_authors < 2 || params.num_communities == 0 ||
      params.max_authors_per_paper < 2) {
    return Status::InvalidArgument(
        "CoauthorGraph requires >=2 authors, >=1 community, "
        ">=2 authors per paper");
  }
  if (params.cross_community_prob < 0.0 ||
      params.cross_community_prob > 1.0 || params.repeat_team_prob < 0.0 ||
      params.repeat_team_prob > 1.0) {
    return Status::InvalidArgument(
        "CoauthorGraph: probabilities must be in [0, 1]");
  }
  Rng rng(params.seed);
  const uint32_t n = params.num_authors;
  // Assign authors round-robin to communities, then collect members.
  std::vector<std::vector<VertexId>> members(params.num_communities);
  for (VertexId a = 0; a < n; ++a) {
    members[a % params.num_communities].push_back(a);
  }
  // Per-author "productivity" weight pool for preferential lead selection:
  // prolific authors publish more, matching DBLP's skew.
  std::vector<VertexId> lead_pool;
  lead_pool.reserve(n + params.num_papers * params.max_authors_per_paper);
  for (VertexId a = 0; a < n; ++a) lead_pool.push_back(a);

  // The last team each author published with (index into `teams`).
  std::vector<int32_t> last_team(n, -1);
  std::vector<std::vector<VertexId>> teams;

  DiGraph::Builder builder(n);
  for (uint32_t p = 0; p < params.num_papers; ++p) {
    VertexId lead = lead_pool[rng.NextUint64(lead_pool.size())];
    const auto& home = members[lead % params.num_communities];
    std::unordered_set<VertexId> team{lead};
    if (last_team[lead] >= 0 && rng.NextBool(params.repeat_team_prob)) {
      // Stable collaboration: the previous team publishes again, possibly
      // picking up one newcomer.
      for (VertexId member : teams[static_cast<size_t>(last_team[lead])]) {
        team.insert(member);
      }
      if (team.size() < params.max_authors_per_paper &&
          rng.NextBool(0.5)) {
        team.insert(home[rng.NextUint64(home.size())]);
      }
    } else {
      uint32_t team_size = static_cast<uint32_t>(
          2 + rng.NextUint64(params.max_authors_per_paper - 1));
      uint32_t attempts = 0;
      while (team.size() < team_size && attempts < 20 * team_size) {
        ++attempts;
        VertexId coauthor;
        if (rng.NextBool(params.cross_community_prob)) {
          coauthor = static_cast<VertexId>(rng.NextUint64(n));
        } else {
          coauthor = home[rng.NextUint64(home.size())];
        }
        team.insert(coauthor);
      }
    }
    std::vector<VertexId> team_list(team.begin(), team.end());
    std::sort(team_list.begin(), team_list.end());
    teams.push_back(team_list);
    for (VertexId member : team_list) {
      last_team[member] = static_cast<int32_t>(teams.size() - 1);
    }
    for (size_t i = 0; i < team_list.size(); ++i) {
      for (size_t j = i + 1; j < team_list.size(); ++j) {
        builder.AddEdge(team_list[i], team_list[j]);
        builder.AddEdge(team_list[j], team_list[i]);
      }
      lead_pool.push_back(team_list[i]);
    }
  }
  return std::move(builder).Build();
}

}  // namespace simrank::gen
