// Synthetic graph generators.
//
// The paper evaluates on BERKSTAN (web graph), PATENT (citation network),
// DBLP (co-authorship snapshots) and GTGraph synthetic graphs. Those inputs
// are reproduced here by generators that match the structural properties
// SimRank's cost model depends on: average in-degree, in-degree skew, and —
// crucial for OIP — the overlap between in-neighbour sets (see DESIGN.md
// section 1 for the substitution rationale). All generators are
// deterministic given their seed.
#ifndef OIPSIM_SIMRANK_GEN_GENERATORS_H_
#define OIPSIM_SIMRANK_GEN_GENERATORS_H_

#include <cstdint>

#include "simrank/common/status.h"
#include "simrank/graph/digraph.h"

namespace simrank::gen {

/// Uniform random digraph G(n, m): m distinct directed edges (no
/// self-loops) sampled uniformly.
struct ErdosRenyiParams {
  uint32_t n = 1000;
  uint64_t m = 5000;
  uint64_t seed = 1;
};
Result<DiGraph> ErdosRenyi(const ErdosRenyiParams& params);

/// R-MAT recursive-matrix generator (the model behind GTGraph's default
/// mode, used for the paper's SYN datasets). Probabilities must be positive
/// and sum to 1. Duplicate edges are collapsed, so the realised m is
/// slightly below `m_target` on dense corners.
struct RmatParams {
  uint32_t scale = 10;        ///< n = 2^scale vertices.
  uint64_t m_target = 8000;   ///< edges drawn before deduplication.
  double a = 0.45, b = 0.15, c = 0.15, d = 0.25;
  uint64_t seed = 1;
  /// Randomly permute vertex ids afterwards so locality artefacts of the
  /// recursive construction do not leak into algorithms.
  bool shuffle_ids = true;
};
Result<DiGraph> Rmat(const RmatParams& params);

/// SSCA#2-style clustered graph (the GTGraph generator behind the paper's
/// SYN density sweep). Vertices are partitioned into cliques of uniform
/// random size in [2, max_clique_size]; every ordered pair inside a clique
/// gets an edge, and each vertex adds a few random inter-clique edges
/// (`inter_clique_ratio` of its clique degree). Clique members have
/// in-neighbour sets that differ in exactly two elements plus noise, so
/// the DMST share ratio *grows with density* — the regime of Fig. 6c.
struct Ssca2Params {
  uint32_t n = 1024;
  uint32_t max_clique_size = 16;
  double inter_clique_ratio = 0.15;
  uint64_t seed = 1;
};
Result<DiGraph> Ssca2(const Ssca2Params& params);

/// Directed preferential attachment (Barabási–Albert flavour): each new
/// vertex adds `out_degree` edges to earlier vertices chosen proportional
/// to (in-degree + 1).
struct BarabasiAlbertParams {
  uint32_t n = 1000;
  uint32_t out_degree = 4;
  uint64_t seed = 1;
};
Result<DiGraph> BarabasiAlbert(const BarabasiAlbertParams& params);

/// Copying-model web graph — the BERKSTAN analogue. Each new page picks a
/// prototype page and copies each of the prototype's out-links with
/// probability `copy_prob` (otherwise rewiring to a random page), then adds
/// a link to the prototype itself. Additionally, with probability
/// `in_copy_prob` the new page joins an existing page's audience: each
/// page linking to a chosen sibling also links to the newcomer (with
/// probability `copy_prob`). The second mechanism models template/index
/// pages that link to every page of a site section and is what gives real
/// web graphs their heavily-overlapping (often near-duplicate)
/// in-neighbour sets — the property the paper's partial-sums sharing
/// exploits.
struct WebGraphParams {
  uint32_t n = 3000;
  uint32_t out_degree = 8;  ///< direct links per new page.
  double copy_prob = 0.7;
  /// Probability that a new page inherits a sibling's audience.
  double in_copy_prob = 0.6;
  uint64_t seed = 1;
};
Result<DiGraph> WebGraph(const WebGraphParams& params);

/// Time-ordered citation DAG — the PATENT analogue. Vertices arrive in
/// order and are grouped into *families* (continuations/divisionals of one
/// invention). Vertex v picks `refs_per_node` earlier targets, drawn from
/// a mixture of preferential attachment (probability `pref_prob`) and a
/// recency window of the last `window` vertices; with probability
/// `cite_family_prob` each sibling of a cited patent is cited too. Citing
/// whole families is what gives patent data its near-duplicate in-neighbour
/// (citer) sets. All edges point from newer to older, so the graph is
/// acyclic like a real citation network.
struct CitationGraphParams {
  uint32_t n = 4000;
  uint32_t refs_per_node = 3;  ///< cited families per patent.
  double pref_prob = 0.5;
  uint32_t window = 200;
  /// Probability a new patent extends the most recent family rather than
  /// founding its own.
  double join_family_prob = 0.4;
  uint32_t max_family_size = 4;
  /// Probability each family sibling of a cited patent is cited as well.
  double cite_family_prob = 0.8;
  uint64_t seed = 1;
};
Result<DiGraph> CitationGraph(const CitationGraphParams& params);

/// Community-based co-authorship network — the DBLP analogue. Authors live
/// in overlapping communities; papers pick 2..max_authors authors, mostly
/// from one community with occasional cross-community collaborators, and
/// all pairs of co-authors get symmetric edges. With probability
/// `repeat_team_prob` a paper reuses its lead author's previous team
/// (possibly adding one newcomer) — stable collaborations are what give
/// co-authorship data its near-duplicate neighbour sets. Growing
/// `num_papers` produces the paper's D02..D11-style snapshots.
struct CoauthorGraphParams {
  uint32_t num_authors = 2000;
  uint32_t num_papers = 3000;
  uint32_t num_communities = 40;
  uint32_t max_authors_per_paper = 5;
  double cross_community_prob = 0.15;
  /// Probability that the lead's previous team publishes together again.
  double repeat_team_prob = 0.4;
  uint64_t seed = 1;
};
Result<DiGraph> CoauthorGraph(const CoauthorGraphParams& params);

}  // namespace simrank::gen

#endif  // OIPSIM_SIMRANK_GEN_GENERATORS_H_
