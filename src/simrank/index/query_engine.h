// Query serving layer over a WalkIndex.
//
// QueryEngine answers the three point-query shapes a SimRank service needs
// — Pair(a, b), SingleSource(v) and TopK(v, k) — from a prebuilt walk
// index, with a sharded LRU cache of single-source rows in front of the
// estimator. A cached query is an O(1) row lookup; top-k and pair queries
// are served from the cached row when one is resident. Row misses go
// through the index's inverted-position path (output-sensitive, bitwise
// identical to the legacy full scan — see WalkIndex::EstimateSingleSource),
// so the engine serves identically whether the index is fully resident or
// mmap-backed. Batch variants fan the work across a thread pool (the cache
// is thread-safe), which is how a server drains a request queue.
#ifndef OIPSIM_SIMRANK_INDEX_QUERY_ENGINE_H_
#define OIPSIM_SIMRANK_INDEX_QUERY_ENGINE_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "simrank/common/status.h"
#include "simrank/common/thread_pool.h"
#include "simrank/extra/topk.h"
#include "simrank/graph/digraph.h"
#include "simrank/index/lru_cache.h"
#include "simrank/index/walk_index.h"

namespace simrank {

/// Serving-time knobs. Defaults suit a few thousand distinct hot vertices.
struct QueryEngineOptions {
  /// Independently-locked cache shards.
  uint32_t cache_shards = 8;
  /// Cached single-source rows per shard (total rows = shards × this).
  uint32_t cache_capacity_per_shard = 128;
  /// Threads for the batch APIs; 0 means hardware concurrency.
  uint32_t num_threads = 0;

  bool Valid() const {
    return cache_shards > 0 && cache_capacity_per_shard > 0;
  }
};

/// Thread-safe query frontend. The WalkIndex must outlive the engine.
///
/// Dynamic updates: every cached row is stamped with the index's overlay
/// sequence at computation time, and a stale stamp reads as a miss — so a
/// concurrent IndexUpdater::ApplyUpdates can never make the engine serve a
/// pre-update row, even in the window between the overlay swap and an
/// explicit InvalidateCache(). InvalidateCache() additionally frees the
/// stale rows eagerly.
class QueryEngine {
 public:
  /// A cached, immutable single-source score row s(v, ·).
  using Row = std::shared_ptr<const std::vector<double>>;

  explicit QueryEngine(const WalkIndex& index,
                       const QueryEngineOptions& options = {});

  OIPSIM_DISALLOW_COPY_AND_ASSIGN(QueryEngine);

  /// Estimate of s(a, b). Served from a cached row when one of the
  /// endpoints' rows is resident, otherwise O(R·L) from the index.
  Result<double> Pair(VertexId a, VertexId b);

  /// The full estimated row s(v, ·), computed on miss — via the inverted
  /// position index, touching only vertices that share a walk slot with
  /// `v` — and cached.
  Result<Row> SingleSource(VertexId v);

  /// The k vertices most similar to `v` (self excluded), from the — cached
  /// — single-source row. Ties break by ascending id.
  Result<std::vector<ScoredVertex>> TopK(VertexId v, uint32_t k);

  /// Batch variants: answer[i] corresponds to queries[i]. Work is spread
  /// across the engine's thread pool; results are deterministic (identical
  /// to issuing the queries sequentially). The whole batch is pinned to
  /// one overlay snapshot, so a concurrent update can never make one
  /// response mix index versions.
  std::vector<Result<double>> BatchPair(
      const std::vector<std::pair<VertexId, VertexId>>& queries);
  std::vector<Result<std::vector<ScoredVertex>>> BatchTopK(
      const std::vector<VertexId>& queries, uint32_t k);

  /// Drops every cached row. Rows computed against an older overlay are
  /// already unservable through the sequence stamp; this frees them.
  /// (There is deliberately no per-row invalidation: an update stales
  /// *every* cached row — a row s(v, ·) depends on all vertices' walks,
  /// not just v's.)
  void InvalidateCache() { cache_.Clear(); }

  /// Aggregated cache counters (hits/misses/evictions) since construction.
  using CacheStats = ShardedLruCache<VertexId, Row>::Stats;
  CacheStats cache_stats() const { return cache_.stats(); }

  const WalkIndex& index() const { return index_; }

 private:
  /// Cache value: the row plus the overlay sequence it was computed under.
  struct VersionedRow {
    uint64_t sequence = 0;
    Row row;
  };

  Status CheckVertex(VertexId v) const;

  /// The cached row of `v` if it is resident and was computed under
  /// overlay sequence `sequence`; stale entries read as absent.
  Row GetFresh(VertexId v, uint64_t sequence);

  /// Pair/SingleSource/TopK against one pinned overlay snapshot — the
  /// shared core of the public entry points and the version-consistent
  /// batch APIs.
  Result<double> PairAtSnapshot(
      VertexId a, VertexId b,
      const std::shared_ptr<const DeltaOverlay>& overlay);
  Result<Row> SingleSourceAtSnapshot(
      VertexId v, const std::shared_ptr<const DeltaOverlay>& overlay);
  Result<std::vector<ScoredVertex>> TopKAtSnapshot(
      VertexId v, uint32_t k,
      const std::shared_ptr<const DeltaOverlay>& overlay);

  const WalkIndex& index_;
  QueryEngineOptions options_;
  ShardedLruCache<VertexId, VersionedRow> cache_;
  ThreadPool pool_;
};

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_INDEX_QUERY_ENGINE_H_
