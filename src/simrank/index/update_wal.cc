#include "simrank/index/update_wal.h"

#include <cstring>
#include <utility>

#include "simrank/common/stream_hash.h"
#include "simrank/common/string_util.h"

#if defined(__unix__) || defined(__APPLE__)
#define OIPSIM_HAVE_FSYNC 1
#include <unistd.h>
#endif

namespace simrank {
namespace {

constexpr uint32_t kWalMagic = 0x4C415753;        // "SWAL"
constexpr uint32_t kWalVersion = 1;
constexpr uint32_t kWalRecordMagic = 0x44525753;  // "SWRD"
constexpr size_t kWalHeaderBytes = 64;
constexpr size_t kRecordPrologueBytes = 16;  // magic, count, post fingerprint
// Domain salts, part of the on-disk format.
constexpr uint64_t kWalHeaderSalt = 0x53574c48445231ULL;  // "SWLHDR1"
constexpr uint64_t kWalRecordSalt = 0x53574c52454331ULL;  // "SWLREC1"
/// A record beyond this many updates is treated as corruption, not a
/// request for a giant allocation.
constexpr uint32_t kMaxUpdatesPerRecord = 1u << 26;

template <typename T>
T ReadScalar(const uint8_t* bytes) {
  T value;
  std::memcpy(&value, bytes, sizeof(T));
  return value;
}

template <typename T>
void AppendScalar(std::vector<uint8_t>* out, T value) {
  const size_t at = out->size();
  out->resize(at + sizeof(value));
  std::memcpy(out->data() + at, &value, sizeof(value));
}

uint64_t DampingBits(double damping) {
  uint64_t bits = 0;
  std::memcpy(&bits, &damping, sizeof(bits));
  return bits;
}

std::vector<uint8_t> BuildHeader(const WalBaseIdentity& identity) {
  std::vector<uint8_t> header;
  header.reserve(kWalHeaderBytes);
  AppendScalar<uint32_t>(&header, kWalMagic);
  AppendScalar<uint32_t>(&header, kWalVersion);
  AppendScalar<uint32_t>(&header, identity.n);
  AppendScalar<uint32_t>(&header, identity.num_fingerprints);
  AppendScalar<uint32_t>(&header, identity.walk_length);
  AppendScalar<uint32_t>(&header, 0);  // reserved flags
  AppendScalar<uint64_t>(&header, identity.seed);
  AppendScalar<uint64_t>(&header, DampingBits(identity.damping));
  AppendScalar<uint64_t>(&header, identity.graph_fingerprint);
  AppendScalar<uint64_t>(&header, 0);  // reserved
  StreamHasher hasher(kWalHeaderSalt);
  hasher.AbsorbBytes(header.data(), header.size());
  AppendScalar<uint64_t>(&header, hasher.digest());
  return header;
}

std::vector<uint8_t> BuildRecord(const WalRecord& record) {
  std::vector<uint8_t> bytes;
  bytes.reserve(kRecordPrologueBytes + record.updates.size() * 12 + 8);
  AppendScalar<uint32_t>(&bytes, kWalRecordMagic);
  AppendScalar<uint32_t>(&bytes,
                         static_cast<uint32_t>(record.updates.size()));
  AppendScalar<uint64_t>(&bytes, record.post_graph_fingerprint);
  for (const EdgeUpdate& update : record.updates) {
    AppendScalar<uint32_t>(&bytes, static_cast<uint32_t>(update.op));
    AppendScalar<uint32_t>(&bytes, update.src);
    AppendScalar<uint32_t>(&bytes, update.dst);
  }
  StreamHasher hasher(kWalRecordSalt);
  hasher.AbsorbBytes(bytes.data(), bytes.size());
  AppendScalar<uint64_t>(&bytes, hasher.digest());
  return bytes;
}

Status FlushAndMaybeSync(std::FILE* file, bool sync,
                         const std::string& path) {
  if (std::fflush(file) != 0) {
    return Status::IoError("cannot flush WAL: " + path);
  }
#if OIPSIM_HAVE_FSYNC
  if (sync && ::fsync(::fileno(file)) != 0) {
    return Status::IoError("cannot fsync WAL: " + path);
  }
#else
  (void)sync;
#endif
  return Status::OK();
}

/// Reads the whole file. A missing file yields `*existed = false` (fine:
/// Open creates it); a *read error* is a hard failure — it must never be
/// mistaken for a torn tail, or Open would truncate away durable records
/// it merely failed to read.
Status ReadAllBytes(const std::string& path, std::vector<uint8_t>* out,
                    bool* existed) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *existed = false;
    return Status::OK();
  }
  *existed = true;
  char chunk[4096];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    out->insert(out->end(), chunk, chunk + got);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    return Status::IoError("read error while opening WAL: " + path);
  }
  return Status::OK();
}

}  // namespace

UpdateWal::UpdateWal(UpdateWal&& other) noexcept
    : path_(std::move(other.path_)),
      options_(other.options_),
      file_(std::exchange(other.file_, nullptr)),
      record_count_(other.record_count_),
      size_bytes_(other.size_bytes_),
      sync_count_(other.sync_count_) {}

UpdateWal& UpdateWal::operator=(UpdateWal&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    path_ = std::move(other.path_);
    options_ = other.options_;
    file_ = std::exchange(other.file_, nullptr);
    record_count_ = other.record_count_;
    size_bytes_ = other.size_bytes_;
    sync_count_ = other.sync_count_;
  }
  return *this;
}

UpdateWal::~UpdateWal() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<UpdateWal::Opened> UpdateWal::Open(const std::string& path,
                                          const WalBaseIdentity& expected,
                                          const Options& options) {
  Opened opened;
  opened.wal.path_ = path;
  opened.wal.options_ = options;

  std::vector<uint8_t> bytes;
  bool existed = false;
  OIPSIM_RETURN_IF_ERROR(ReadAllBytes(path, &bytes, &existed));

  uint64_t valid_bytes = 0;
  if (existed && !bytes.empty()) {
    if (bytes.size() < kWalHeaderBytes) {
      return Status::ParseError(StrFormat(
          "%s is not a walk-index WAL: %zu bytes, the header is %zu",
          path.c_str(), bytes.size(), kWalHeaderBytes));
    }
    if (ReadScalar<uint32_t>(bytes.data()) != kWalMagic) {
      return Status::ParseError("not a walk-index WAL (bad magic): " + path);
    }
    const uint32_t version = ReadScalar<uint32_t>(bytes.data() + 4);
    if (version != kWalVersion) {
      return Status::ParseError(StrFormat(
          "WAL version %u found in %s but this build supports only %u",
          version, path.c_str(), kWalVersion));
    }
    StreamHasher hasher(kWalHeaderSalt);
    hasher.AbsorbBytes(bytes.data(), kWalHeaderBytes - sizeof(uint64_t));
    if (hasher.digest() !=
        ReadScalar<uint64_t>(bytes.data() + kWalHeaderBytes - 8)) {
      return Status::ParseError("WAL header checksum mismatch in " + path);
    }
    WalBaseIdentity found;
    found.n = ReadScalar<uint32_t>(bytes.data() + 8);
    found.num_fingerprints = ReadScalar<uint32_t>(bytes.data() + 12);
    found.walk_length = ReadScalar<uint32_t>(bytes.data() + 16);
    found.seed = ReadScalar<uint64_t>(bytes.data() + 24);
    const uint64_t damping_bits = ReadScalar<uint64_t>(bytes.data() + 32);
    std::memcpy(&found.damping, &damping_bits, sizeof(found.damping));
    found.graph_fingerprint = ReadScalar<uint64_t>(bytes.data() + 40);
    if (!(found == expected)) {
      return Status::InvalidArgument(StrFormat(
          "WAL %s belongs to a different index: it is bound to graph "
          "fingerprint %016llx (n=%u, R=%u, L=%u), the loaded index has "
          "%016llx (n=%u, R=%u, L=%u) — a compacted index needs a fresh "
          "(or Reset) WAL",
          path.c_str(),
          static_cast<unsigned long long>(found.graph_fingerprint), found.n,
          found.num_fingerprints, found.walk_length,
          static_cast<unsigned long long>(expected.graph_fingerprint),
          expected.n, expected.num_fingerprints, expected.walk_length));
    }
    valid_bytes = kWalHeaderBytes;

    // Records: any structural violation from here on is a torn tail, not
    // an error — the write-ahead contract is prefix-durability.
    uint64_t cursor = kWalHeaderBytes;
    while (cursor < bytes.size()) {
      if (bytes.size() - cursor < kRecordPrologueBytes) break;
      const uint8_t* record = bytes.data() + cursor;
      if (ReadScalar<uint32_t>(record) != kWalRecordMagic) break;
      const uint32_t count = ReadScalar<uint32_t>(record + 4);
      if (count > kMaxUpdatesPerRecord) break;
      const uint64_t record_bytes =
          kRecordPrologueBytes + static_cast<uint64_t>(count) * 12 + 8;
      if (bytes.size() - cursor < record_bytes) break;
      StreamHasher record_hasher(kWalRecordSalt);
      record_hasher.AbsorbBytes(record, record_bytes - 8);
      if (record_hasher.digest() !=
          ReadScalar<uint64_t>(record + record_bytes - 8)) {
        break;
      }
      WalRecord parsed;
      parsed.post_graph_fingerprint = ReadScalar<uint64_t>(record + 8);
      parsed.updates.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        const uint8_t* update = record + kRecordPrologueBytes +
                                static_cast<uint64_t>(i) * 12;
        const uint32_t op = ReadScalar<uint32_t>(update);
        if (op > static_cast<uint32_t>(EdgeUpdate::Op::kDelete)) break;
        parsed.updates.push_back(
            EdgeUpdate{static_cast<EdgeUpdate::Op>(op),
                       ReadScalar<uint32_t>(update + 4),
                       ReadScalar<uint32_t>(update + 8)});
      }
      if (parsed.updates.size() != count) break;  // bad op code in tail
      opened.records.push_back(std::move(parsed));
      cursor += record_bytes;
      valid_bytes = cursor;
    }
    opened.truncated_bytes = bytes.size() - valid_bytes;
  }

  if (!existed || bytes.empty() || valid_bytes == 0) {
    // Fresh (or never-initialized) file: write the header. Nothing
    // durable exists yet, so a crash mid-write at worst leaves an empty
    // file the next Open re-initializes.
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      return Status::IoError("cannot open WAL for writing: " + path);
    }
    const std::vector<uint8_t> header = BuildHeader(expected);
    const bool ok =
        std::fwrite(header.data(), 1, header.size(), f) == header.size();
    if (!ok) {
      std::fclose(f);
      return Status::IoError("short write initializing WAL: " + path);
    }
    Status flushed = FlushAndMaybeSync(f, options.sync_every_append, path);
    std::fclose(f);
    OIPSIM_RETURN_IF_ERROR(flushed);
    valid_bytes = header.size();
  } else if (opened.truncated_bytes > 0) {
    // Torn tail: drop it *in place*. Rewriting the whole file would open
    // a window where a second crash destroys every durable record.
#if OIPSIM_HAVE_FSYNC
    if (::truncate(path.c_str(),
                   static_cast<off_t>(valid_bytes)) != 0) {
      return Status::IoError("cannot truncate torn WAL tail: " + path);
    }
#else
    // Best-effort fallback without POSIX truncate: rewrite the prefix.
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      return Status::IoError("cannot open WAL for writing: " + path);
    }
    const bool ok = std::fwrite(bytes.data(), 1, valid_bytes, f) ==
                    valid_bytes;
    std::fclose(f);
    if (!ok) {
      return Status::IoError("short write truncating WAL: " + path);
    }
#endif
  }

  opened.wal.file_ = std::fopen(path.c_str(), "ab");
  if (opened.wal.file_ == nullptr) {
    return Status::IoError("cannot open WAL for appending: " + path);
  }
  opened.wal.record_count_ = opened.records.size();
  opened.wal.size_bytes_ = valid_bytes;
  return opened;
}

Status UpdateWal::Append(const WalRecord& record, bool sync) {
  if (file_ == nullptr) {
    return Status::Internal("WAL is not open: " + path_);
  }
  const std::vector<uint8_t> bytes = BuildRecord(record);
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    return Status::IoError("short write appending to WAL: " + path_);
  }
  const bool do_sync = sync && options_.sync_every_append;
  OIPSIM_RETURN_IF_ERROR(FlushAndMaybeSync(file_, do_sync, path_));
  if (do_sync) ++sync_count_;
  ++record_count_;
  size_bytes_ += bytes.size();
  return Status::OK();
}

Status UpdateWal::Sync() {
  if (file_ == nullptr) {
    return Status::Internal("WAL is not open: " + path_);
  }
  if (!options_.sync_every_append) return Status::OK();
  OIPSIM_RETURN_IF_ERROR(FlushAndMaybeSync(file_, true, path_));
  ++sync_count_;
  return Status::OK();
}

Status UpdateWal::Reset(const WalBaseIdentity& identity) {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open WAL for reset: " + path_);
  }
  const std::vector<uint8_t> header = BuildHeader(identity);
  const bool ok =
      std::fwrite(header.data(), 1, header.size(), f) == header.size();
  if (!ok) {
    std::fclose(f);
    return Status::IoError("short write resetting WAL: " + path_);
  }
  Status flushed = FlushAndMaybeSync(f, options_.sync_every_append, path_);
  std::fclose(f);
  OIPSIM_RETURN_IF_ERROR(flushed);
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IoError("cannot reopen WAL after reset: " + path_);
  }
  record_count_ = 0;
  size_bytes_ = header.size();
  return Status::OK();
}

}  // namespace simrank
