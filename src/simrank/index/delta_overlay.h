// In-memory patch set over an immutable WalkStore.
//
// A DeltaOverlay is what an IndexUpdater publishes after applying an edge
// batch: for every (vertex, fingerprint) walk whose positions changed, the
// re-simulated *suffix* of that walk (positions from its first affected
// step onwards), and for every (fingerprint, step) slot whose contents
// changed, a sparse diff of the inverted position index *relative to the
// base store* (entries removed because a walk left a position, entries
// added because one arrived). Storing suffixes instead of whole patched
// segments keeps an update batch O(affected walk-steps), not
// O(affected vertices · R · L) — the difference between microseconds and
// milliseconds per batch — at the cost of one extra hash lookup per
// (patched vertex, fingerprint) on the read side, which only queries that
// touch patched vertices ever pay.
//
// Overlays are immutable once published; an update batch builds a new
// overlay from the previous one and swaps it in RCU-style (see
// WalkIndex::PublishOverlay), so queries in flight keep the snapshot they
// started with and never observe a half-applied batch.
//
// Both patch kinds are expressed against the *base* store, not the
// previous overlay: lookup cost stays O(base + patch) however many
// batches have accumulated, and Compact() can rebuild the merged index
// from base + one overlay.
#ifndef OIPSIM_SIMRANK_INDEX_DELTA_OVERLAY_H_
#define OIPSIM_SIMRANK_INDEX_DELTA_OVERLAY_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "simrank/common/status.h"
#include "simrank/graph/digraph.h"
#include "simrank/index/walk_store.h"

namespace simrank {

/// One inverted-index entry: fingerprint-r walk of `vertex` sits at
/// `position` after t steps (the slot identifies r and t).
struct OverlayEntry {
  uint32_t position = 0;
  VertexId vertex = 0;

  friend bool operator==(const OverlayEntry&, const OverlayEntry&) = default;
  /// Slot diffs are sorted by (position, vertex), the same order the
  /// on-disk inverted blobs use.
  friend bool operator<(const OverlayEntry& a, const OverlayEntry& b) {
    return a.position != b.position ? a.position < b.position
                                    : a.vertex < b.vertex;
  }
};

/// Immutable patch set; thread-safe for concurrent reads.
class DeltaOverlay {
 public:
  /// Re-simulated positions of one (vertex, fingerprint) walk: suffix[i]
  /// is the position after t0 + i steps (kDeadWalk once the walk dies).
  /// The patch covers exactly steps [t0, t0 + suffix.size()); everywhere
  /// else the walk still holds the base store's positions — re-simulated
  /// walks usually re-couple with their old path within a step or two
  /// (the same coalescence SimRank itself rests on), so patches stay a
  /// few words long instead of O(L).
  struct WalkPatch {
    uint32_t t0 = 1;
    std::vector<uint32_t> suffix;

    bool Covers(uint32_t t) const {
      return t >= t0 && t - t0 < suffix.size();
    }
    uint32_t Position(uint32_t t) const { return suffix[t - t0]; }
  };

  /// Sparse diff of one inverted slot vs. the base store, both sides
  /// sorted by (position, vertex). An entry never appears on both sides,
  /// and `removed` entries always exist in the base slot.
  struct SlotDelta {
    std::vector<OverlayEntry> removed;
    std::vector<OverlayEntry> added;
  };

  /// Monotone batch counter (1 for the first applied batch). Rows cached by
  /// a QueryEngine are stamped with this so stale rows read as misses.
  uint64_t sequence() const { return sequence_; }

  /// Structural fingerprint of the updated graph this overlay represents —
  /// what GraphFingerprint() returns for rebuild-equivalent graphs.
  uint64_t graph_fingerprint() const { return graph_fingerprint_; }

  /// True when any of v's walks is patched — the one-hash fast-path test
  /// every overlay-aware read does first.
  bool IsPatched(VertexId v) const {
    return patch_counts_.find(v) != patch_counts_.end();
  }

  /// The patch of walk (v, r), or nullptr when that walk is unchanged.
  const WalkPatch* FindPatch(VertexId v, uint32_t r) const {
    auto it = patches_.find(WalkKey(v, r));
    return it == patches_.end() ? nullptr : it->second.get();
  }

  /// Diff of slot (r, t) vs. the base store, or nullptr when unchanged.
  const SlotDelta* Delta(uint32_t r, uint32_t t) const {
    auto it = deltas_.find(SlotId(r, t));
    return it == deltas_.end() ? nullptr : it->second.get();
  }

  size_t patched_vertex_count() const { return patch_counts_.size(); }
  size_t patched_walk_count() const { return patches_.size(); }
  size_t changed_slot_count() const { return deltas_.size(); }

  /// Total entries across all slot diffs (removed + added); a size gauge.
  uint64_t delta_entry_count() const { return delta_entries_; }

  /// Estimated heap bytes this overlay keeps resident (patches, slot
  /// diffs, hash-map overhead). What the updater's --overlay-budget is
  /// compared against; computed once at publish time.
  uint64_t resident_bytes() const { return resident_bytes_; }

  /// The store this overlay's patches and slot diffs are expressed
  /// against, when it differs from the index's original store: a
  /// background compaction publishes its merged store *through* the
  /// overlay it rebases (one RCU pointer swap hands queries a coherent
  /// (store, overlay) pair — see WalkIndex::ServingStore). Null for
  /// overlays over the load/build-time base store. The shared_ptr keeps
  /// superseded merged stores alive exactly as long as a reader still
  /// holds a snapshot expressed against them.
  const std::shared_ptr<const WalkStore>& rebased_store() const {
    return rebased_store_;
  }

  /// The patched vertices and how many of their walks are patched;
  /// iteration support for Compact() and the scan estimator.
  const std::unordered_map<VertexId, uint32_t>& patched_vertices() const {
    return patch_counts_;
  }

 private:
  friend class IndexUpdater;

  static uint64_t WalkKey(VertexId v, uint32_t r) {
    return (static_cast<uint64_t>(v) << 32) | r;
  }

  uint64_t SlotId(uint32_t r, uint32_t t) const {
    return static_cast<uint64_t>(r) * walk_length_ + (t - 1);
  }

  uint64_t sequence_ = 0;
  uint64_t graph_fingerprint_ = 0;
  uint32_t walk_length_ = 0;
  uint64_t delta_entries_ = 0;
  uint64_t resident_bytes_ = 0;
  /// See rebased_store().
  std::shared_ptr<const WalkStore> rebased_store_;
  /// Walk patches keyed by (v << 32 | r). Values are shared with successor
  /// overlays for walks later batches did not touch again.
  std::unordered_map<uint64_t, std::shared_ptr<const WalkPatch>> patches_;
  /// Patched-walk count per vertex — the read side's fast membership test.
  std::unordered_map<VertexId, uint32_t> patch_counts_;
  /// Slot diffs keyed by slot id r·L + (t-1), shared like patches_.
  std::unordered_map<uint64_t, std::shared_ptr<const SlotDelta>> deltas_;
};

/// Decodes vertex `v`'s full walk table (WalkWords layout) under
/// base+overlay: the base segment with every patched suffix overwritten.
/// The slow-but-simple row accessor shared by Compact(), the scan
/// estimator and tests; hot read paths consult patches per step instead.
inline Status MaterializeRow(const WalkStore& store,
                             const DeltaOverlay* overlay, VertexId v,
                             uint32_t* out) {
  OIPSIM_RETURN_IF_ERROR(store.DecodeVertex(v, out));
  if (overlay == nullptr || !overlay->IsPatched(v)) return Status::OK();
  const uint32_t L = store.meta().walk_length;
  const size_t row = static_cast<size_t>(L) + 1;
  for (uint32_t r = 0; r < store.meta().num_fingerprints; ++r) {
    const DeltaOverlay::WalkPatch* patch = overlay->FindPatch(v, r);
    if (patch == nullptr) continue;
    const uint32_t end = std::min(
        L, patch->t0 + static_cast<uint32_t>(patch->suffix.size()) - 1);
    for (uint32_t t = patch->t0; t <= end; ++t) {
      out[r * row + t] = patch->Position(t);
    }
  }
  return Status::OK();
}

/// Calls `fn(vertex)` for every vertex whose fingerprint-r walk sits at
/// `position` after t steps under base+overlay, in ascending vertex order —
/// the exact sequence a store rebuilt on the updated graph would serve from
/// WalkStore::Bucket, which is what keeps overlay-served single-source rows
/// bitwise identical to a rebuild's. `overlay` may be null (base only).
template <typename Fn>
void ForEachBucketVertex(const WalkStore& store, const DeltaOverlay* overlay,
                         uint32_t r, uint32_t t, uint32_t position, Fn&& fn) {
  const std::span<const VertexId> base = store.Bucket(r, t, position);
  const DeltaOverlay::SlotDelta* delta =
      overlay == nullptr ? nullptr : overlay->Delta(r, t);
  if (delta == nullptr) {
    for (const VertexId b : base) fn(b);
    return;
  }
  auto range = [position](const std::vector<OverlayEntry>& entries) {
    const OverlayEntry lo{position, 0};
    const OverlayEntry hi{position, UINT32_MAX};
    auto begin = std::lower_bound(entries.begin(), entries.end(), lo);
    auto end = std::upper_bound(begin, entries.end(), hi);
    return std::pair(begin, end);
  };
  auto [rem, rem_end] = range(delta->removed);
  auto [add, add_end] = range(delta->added);
  size_t bi = 0;
  while (bi < base.size() || add != add_end) {
    if (bi < base.size()) {
      const VertexId b = base[bi];
      while (rem != rem_end && rem->vertex < b) ++rem;
      if (rem != rem_end && rem->vertex == b) {
        ++bi;  // this walk moved away from `position`
        ++rem;
        continue;
      }
      if (add == add_end || b < add->vertex) {
        fn(b);
        ++bi;
        continue;
      }
    }
    fn(add->vertex);
    ++add;
  }
}

/// Materializes the ForEachBucketVertex sequence into `out` (cleared
/// first) — the array form the vectorized accumulation kernel consumes.
/// Same vertices, same ascending order.
inline void CollectBucketVertices(const WalkStore& store,
                                  const DeltaOverlay* overlay, uint32_t r,
                                  uint32_t t, uint32_t position,
                                  std::vector<VertexId>* out) {
  out->clear();
  ForEachBucketVertex(store, overlay, r, t, position,
                      [out](const VertexId b) { out->push_back(b); });
}

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_INDEX_DELTA_OVERLAY_H_
