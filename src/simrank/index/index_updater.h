// Incremental maintenance of a walk index under edge updates.
//
// A full rebuild after one edge change costs O(n·R·L) walk simulation; the
// updater patches locally instead, exploiting two properties of the index:
// walks are *coupled* (every step is a pure function of (seed, fingerprint,
// step, vertex) — common/coupled_hash.h), and the v2 store carries a
// per-(fingerprint, step) inverted position index. An edge update (u → w)
// changes only w's in-neighbour list, so exactly the walks that visit w at
// some step can change. The updater:
//   1. finds every such walk through the inverted index — for each touched
//      vertex x and step t, Bucket(r, t, x) lists the walks parked at x —
//      and records the earliest affected step per (vertex, fingerprint);
//   2. deterministically re-simulates each affected walk's suffix from the
//      same coupled-hash seed against the updated graph;
//   3. publishes the result as a new DeltaOverlay (patched per-vertex
//      segments + inverted-slot diffs), swapped into the WalkIndex
//      RCU-style so concurrent queries never block and never see a
//      half-applied batch.
// Because the re-simulated suffixes are exactly what a from-scratch build
// on the updated graph would produce (the unaffected prefixes already
// are), the patched index is *bitwise identical* to a rebuild: every query
// answer matches, and Compact() writes a v2 file byte-identical to
// `build-index` on the updated graph.
//
// Cost model: the current graph is kept as per-vertex sorted adjacency
// lists maintained in place — O(degree) per edge update, never an
// O(n + m) copy per batch — and the structural fingerprint is the
// commutative ComposeGraphFingerprint form, updated in O(1) per edge.
// Discovery and re-simulation fan out over a thread pool
// (options.num_threads); every affected walk is an independent pure
// function of the updated graph, and per-worker results are merged in
// canonical (vertex, fingerprint) order, so the published overlay is
// bitwise identical for any thread count.
//
// Overlay growth is bounded: every publish carries a resident-byte
// estimate, and when it exceeds options.overlay_budget_bytes (or the
// patched-walk fraction trips the amplification heuristic) a *background*
// compaction starts on a dedicated thread. Updates and queries keep
// running against the live overlay while the merged store is built; the
// only exclusive window is the final pointer swap, which publishes the
// merged store *through* the overlay (DeltaOverlay::rebased_store) and
// rebases any batches that landed mid-compaction onto it. Serves never
// block behind a compaction.
//
// Durability: every accepted batch is appended to a checksummed WAL
// (update_wal.h) *before* the overlay is built. Reopening the updater
// replays the WAL over the base index and reconstructs the overlay; a torn
// tail (crash mid-append) is dropped, losing only the unacknowledged
// batch.
//
// Concurrency: ApplyUpdates/Compact serialize on an internal mutex and may
// be called from any thread (the server calls them from worker threads);
// queries against the index proceed concurrently through overlay
// snapshots.
#ifndef OIPSIM_SIMRANK_INDEX_INDEX_UPDATER_H_
#define OIPSIM_SIMRANK_INDEX_INDEX_UPDATER_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "simrank/common/latency_histogram.h"
#include "simrank/common/status.h"
#include "simrank/common/thread_pool.h"
#include "simrank/graph/digraph.h"
#include "simrank/index/edge_update.h"
#include "simrank/index/update_wal.h"
#include "simrank/index/walk_index.h"

namespace simrank {

/// Updater construction knobs.
struct IndexUpdaterOptions {
  /// Path of the write-ahead log; created when absent, replayed when
  /// present. Required.
  std::string wal_path;
  /// fsync the WAL after every append. Off only for benchmarking the pure
  /// patch path.
  bool sync_wal = true;
  /// Coalesce WAL fsyncs across concurrently submitted batches (group
  /// commit): batches queue, one leader appends every queued record, then
  /// issues a single fsync before any of them is acknowledged or made
  /// visible. On by default; irrelevant when sync_wal is off.
  bool group_commit = true;
  /// Upper bound on how long a group-commit leader waits for more batches
  /// to queue before syncing, in microseconds. Small against an fsync
  /// (~ms), so the uncontended latency cost is negligible.
  uint32_t group_commit_window_us = 200;
  /// Serve only the vertex range [vertex_begin, vertex_end) — the shard
  /// role. Walks of out-of-range vertices are represented as dead in a
  /// shard index and must stay dead under updates, so discovery skips
  /// them. Both zero means the full range.
  uint32_t vertex_begin = 0;
  uint32_t vertex_end = 0;
  /// Worker threads for affected-walk discovery, suffix re-simulation and
  /// compaction's merged-store build. 1 = serial, 0 = hardware
  /// concurrency. The published overlay — and therefore every query
  /// answer and every compacted file — is bitwise identical for any
  /// value.
  uint32_t num_threads = 1;
  /// Resident-byte budget for the published overlay. A publish that
  /// leaves the overlay above it triggers a background auto-compaction
  /// (requires auto_compact_path). 0 = unbounded.
  uint64_t overlay_budget_bytes = 0;
  /// Patch-amplification heuristic: auto-compact once more than this
  /// fraction of all n·R walks carries a patch (reads of patched vertices
  /// pay an extra hash lookup per step, so a heavily patched overlay
  /// serves slower than the store a compaction would fold it into).
  /// 0 disables the heuristic.
  double auto_compact_patched_fraction = 0.0;
  /// Where background auto-compaction writes the merged index; arming
  /// either trigger requires this.
  std::string auto_compact_path;
  /// Compress the auto-compacted index's walk segments.
  bool auto_compact_compress = false;
  /// Where auto-compaction writes the updated graph. When set, the WAL is
  /// also reset to the compacted state (batches that landed during the
  /// compaction are re-appended); when empty the WAL is left whole,
  /// because a reset WAL without a matching durable graph would strand
  /// acknowledged updates on restart.
  std::string auto_compact_graph_path;
};

/// Cumulative counters (replayed batches included), readable concurrently
/// with updates.
struct IndexUpdateStats {
  uint64_t batches_applied = 0;
  /// Of batches_applied, how many were replayed from the WAL at Open.
  uint64_t batches_replayed = 0;
  uint64_t edges_inserted = 0;
  uint64_t edges_deleted = 0;
  /// (vertex, fingerprint) walk suffixes re-simulated.
  uint64_t walks_resimulated = 0;
  /// Of those, how many actually changed some position.
  uint64_t walks_changed = 0;
  /// Walk positions written while re-simulating (the patch's true size).
  uint64_t steps_resimulated = 0;
  /// Torn-tail bytes the WAL dropped at Open (0 for a clean log).
  uint64_t wal_truncated_bytes = 0;
  uint64_t wal_records = 0;
  uint64_t wal_bytes = 0;
  /// fsyncs issued; under group commit, less than batches_applied.
  uint64_t wal_syncs = 0;
  /// Current overlay footprint.
  uint64_t overlay_sequence = 0;
  uint64_t patched_vertices = 0;
  uint64_t patched_walks = 0;
  uint64_t changed_slots = 0;
  uint64_t delta_entries = 0;
  /// Estimated resident bytes of the published overlay — what
  /// overlay_budget_bytes is compared against.
  uint64_t overlay_bytes = 0;
  /// Compactions completed since Open (manual + auto), and of those, how
  /// many the background triggers started; failures are auto ones only
  /// (manual Compact reports its error to the caller).
  uint64_t compactions = 0;
  uint64_t auto_compactions = 0;
  uint64_t auto_compact_failures = 0;
  /// Wall time of the most recent completed compaction, and how long it
  /// held the update mutex (the only window updates wait behind a
  /// compaction; queries never do).
  uint64_t last_compaction_micros = 0;
  uint64_t last_compaction_pause_micros = 0;
  /// Current (updated) graph.
  uint64_t graph_edges = 0;
  uint64_t current_graph_fingerprint = 0;
};

/// Owns the dynamic state of one served index: the current graph, the WAL,
/// and the published overlay. The WalkIndex and the base graph's storage
/// must outlive the updater.
class IndexUpdater {
 public:
  /// Binds an updater to `index`, which must have been built from
  /// `base_graph` (validated via the structural fingerprint) and must not
  /// already carry an overlay. Opens (or creates) the WAL and replays any
  /// recorded batches — on return the index already serves the replayed
  /// state.
  static Result<std::unique_ptr<IndexUpdater>> Open(
      WalkIndex& index, DiGraph base_graph,
      const IndexUpdaterOptions& options);

  ~IndexUpdater();

  OIPSIM_DISALLOW_COPY_AND_ASSIGN(IndexUpdater);

  /// Applies one batch: validates it against the current graph, appends it
  /// to the WAL (write-ahead), patches the affected walks and publishes
  /// the new overlay. On error nothing is published and the graph is
  /// unchanged. Empty batches are rejected. Thread-safe. With group
  /// commit, concurrent callers share one fsync; each still returns only
  /// once its own batch is durable and visible.
  Status ApplyUpdates(std::span<const EdgeUpdate> updates);

  /// Applies a batch replicated from a primary's WAL stream: identical to
  /// ApplyUpdates (the batch is appended to this replica's own WAL) except
  /// that the post-batch graph fingerprint must equal
  /// `expected_post_fingerprint` — the replica's graph diverging from the
  /// primary's fails loudly instead of silently forking. Thread-safe.
  Status ApplyReplicated(std::span<const EdgeUpdate> updates,
                         uint64_t expected_post_fingerprint);

  /// Copies WAL records [from, from + limit) in append order — the
  /// primary side of WAL shipping (a replica polls from its own record
  /// count). `from` past the end yields an empty vector. Thread-safe.
  std::vector<WalRecord> WalRecordsFrom(uint64_t from,
                                        uint64_t limit = 256) const;

  /// Writes the serving state as a fresh v2 index file at `path` (via a
  /// temporary file and an atomic rename), byte-identical to what
  /// `build-index` on the current graph would write with the same save
  /// options, then swaps serving onto the merged store (published through
  /// the overlay, DeltaOverlay::rebased_store) so the accumulated patches
  /// are released. Updates and queries keep running while the merged
  /// store is built; batches that land mid-compaction are rebased onto it
  /// at the final swap, and the swap itself is the only exclusive window.
  /// With `reset_wal`, the WAL is re-bound to the compacted index's
  /// fingerprint and re-seeded with exactly the batches the compacted
  /// file does not embody. A non-empty `graph_path` additionally writes
  /// the compacted graph in the id-exact binary format (also via atomic
  /// rename, and *before* the WAL reset): resetting the WAL makes the
  /// base graph file stale, so a restart needs this file — without it,
  /// acknowledged updates would survive only in an index whose matching
  /// graph exists nowhere on disk. Thread-safe.
  Status Compact(const std::string& path,
                 const WalkIndex::SaveOptions& save, bool reset_wal = false,
                 const std::string& graph_path = "");

  /// Blocks until no background auto-compaction is pending or running.
  /// Test and benchmark support; serving code never needs it.
  void DrainBackgroundCompaction();

  /// Durations of completed compactions (manual + auto), for /metrics.
  const LatencyHistogram& compaction_histogram() const {
    return compaction_hist_;
  }

  /// Counter snapshot. Thread-safe.
  IndexUpdateStats stats() const;

  /// Materializes the current (updated) graph as a DiGraph — for the CLI's
  /// --write-graph, tests and the bench; the patch path itself never
  /// rebuilds one. Thread-safe but O(n + m): not for hot paths.
  DiGraph CurrentGraph() const;

  const WalkIndex& index() const { return index_; }

 private:
  struct PendingBatch;
  struct SlotEdit;
  struct WalkOutcome;

  IndexUpdater(WalkIndex& index, const DiGraph& base_graph, UpdateWal wal,
               const IndexUpdaterOptions& options);

  /// The patch pipeline shared by ApplyUpdates and WAL replay. Caller
  /// holds mutex_. `expected_post_fingerprint` (nonzero during replay and
  /// replication) must match the patched graph's fingerprint. With
  /// `defer_sync_and_publish` (the group-commit path) the WAL append skips
  /// its fsync and the overlay lands in pending_overlay_ instead of the
  /// index; the caller syncs and publishes for the whole group.
  Status ApplyBatch(std::span<const EdgeUpdate> updates, bool append_to_wal,
                    uint64_t expected_post_fingerprint,
                    bool defer_sync_and_publish = false);

  /// The group-commit slow path of ApplyUpdates/ApplyReplicated: enqueue,
  /// then either follow (wait for a leader to process the batch) or lead
  /// (drain the queue, one fsync, one publish).
  Status ApplyGrouped(std::span<const EdgeUpdate> updates,
                      uint64_t expected_post_fingerprint);

  /// Merges a slot-sorted flat edit list into `overlay`'s slot diffs
  /// (replacing the edited vertices' prior entries) and recomputes
  /// delta_entries_. Shared by the patch path and the compaction rebase.
  void FoldSlotEdits(std::span<const SlotEdit> edits, DeltaOverlay* overlay);

  /// The compaction pipeline behind Compact() and the background trigger.
  /// Takes compact_mutex_ for its whole run and mutex_ only for the
  /// snapshot pin and the final swap.
  Status CompactInternal(const std::string& path,
                         const WalkIndex::SaveOptions& save, bool reset_wal,
                         const std::string& graph_path, bool background);

  /// Caller holds mutex_. Checks the published overlay against the budget
  /// and amplification triggers and wakes the background thread.
  void MaybeTriggerAutoCompact(const DeltaOverlay& overlay);

  /// True when `overlay` exceeds the byte budget or the patched-walk
  /// amplification fraction. Overlays are immutable once published, so
  /// this needs no lock.
  bool OverlayOverThreshold(const DeltaOverlay& overlay) const;

  bool AutoCompactArmed() const;

  void BackgroundCompactLoop();

  WalkIndex& index_;
  UpdateWal wal_;
  IndexUpdaterOptions options_;

  // The current graph as per-vertex sorted adjacency (src-ascending
  // in-lists feed the re-simulation; dst-ascending out-lists reproduce
  // the canonical edge enumeration for CurrentGraph and compaction),
  // maintained *in place* in O(degree) per edge update, plus the
  // commutative fingerprint accumulators maintained in O(1) per edge
  // (graph_io's EdgeFingerprint / ComposeGraphFingerprint).
  uint32_t n_ = 0;
  uint64_t m_ = 0;
  std::vector<std::vector<VertexId>> in_lists_;
  std::vector<std::vector<VertexId>> out_lists_;
  uint64_t edge_sum_ = 0;
  uint64_t edge_xor_ = 0;
  uint64_t graph_fingerprint_ = 0;

  /// Resolved worker count; the pool exists only when it exceeds 1.
  uint32_t num_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;

  /// Serializes ApplyBatch and the compaction swap.
  mutable std::mutex mutex_;

  /// Group-commit state. Batches enqueue under queue_mutex_; the first
  /// arrival while no leader is active becomes the leader, takes mutex_,
  /// processes every queued batch with deferred sync/publish, then issues
  /// one fsync and one overlay publish before waking the followers.
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<PendingBatch*> queue_;
  bool leader_active_ = false;
  /// The group's unpublished overlay chain (mutex_ holder only): batch
  /// i + 1 of a group builds on batch i's overlay before it is published.
  std::shared_ptr<const DeltaOverlay> pending_overlay_;

  /// Serializes whole compactions (manual and background) against each
  /// other without blocking updates.
  std::mutex compact_mutex_;
  /// Background-compaction worker state.
  std::mutex bg_mutex_;
  std::condition_variable bg_cv_;
  bool bg_requested_ = false;
  bool bg_running_ = false;
  bool bg_shutdown_ = false;
  std::thread bg_thread_;
  LatencyHistogram compaction_hist_;

  /// In-memory copy of every durable WAL record, in append order — the
  /// primary side of WAL shipping. Guarded by records_mutex_ so a
  /// replica's poll never waits behind a patch holding mutex_.
  mutable std::mutex records_mutex_;
  std::vector<WalRecord> records_;
  /// Guards stats_ alone, so stats() (the server's inline /v1/stats and
  /// /metrics handlers run it on the event loop) never waits behind a
  /// long patch or compaction holding mutex_.
  mutable std::mutex stats_mutex_;
  IndexUpdateStats stats_;
};

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_INDEX_INDEX_UPDATER_H_
