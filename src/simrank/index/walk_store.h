// Storage layer of the walk index: the versioned v2 segmented on-disk
// format and the two backends that serve it.
//
// Version 2 reorganises the v1 flat walk table into per-vertex *segments*
// (optionally delta+varint-compressed: a pair query touches two contiguous
// byte ranges instead of R·L strided words) plus a per-(fingerprint, step)
// *inverted position index* mapping a walk position to the vertices whose
// walk is there — the data structure behind the output-sensitive
// single-source path (ProbeSim-style: accumulation only over vertices that
// actually appear at some slot, instead of a full O(R·L·n) row scan).
//
// On-disk layout (native-endian, like graph_io's binary format; offsets
// are absolute bytes unless marked relative):
//
//   page 0      header, 104 bytes used, zero-padded to the directory
//   page 1..    segment directory (page-aligned):
//                 uint64 seg_rel[n+1]     vertex v's segment occupies
//                                         [seg_rel[v], seg_rel[v+1])
//                                         relative to segments_offset
//                 uint64 inv_rel[R·L+1]   slot s = r·L + (t-1); blob at
//                                         [inv_rel[s], inv_rel[s+1])
//                                         relative to inverted_offset
//   ...         per-vertex walk segments (page-aligned region start)
//   ...         inverted index blobs (page-aligned region start):
//                 per slot: uint32 positions[m] sorted ascending, then
//                 uint32 vertices[m] (ascending within equal positions)
//
// The header carries three checksums: over its own fields, over the
// directory (an extent that starts right after the header fields, so the
// header page's alignment padding is covered too), and over the two
// payload regions — together they cover every byte of the file.
// InMemoryWalkStore (full read at open)
// verifies all three; MmapWalkStore verifies header + directory only — by
// design it never reads the payload at open (pages fault in on demand) —
// and defends every decode with bounds checks instead; VerifyPayload()
// performs the full payload sweep on request.
#ifndef OIPSIM_SIMRANK_INDEX_WALK_STORE_H_
#define OIPSIM_SIMRANK_INDEX_WALK_STORE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "simrank/common/status.h"
#include "simrank/graph/digraph.h"

namespace simrank {

class SegmentReader;

/// Format-level cap on walk_length, enforced at build and load. The
/// truncation weight C^t is dozens of orders of magnitude below the
/// estimator's resolution long before this many steps (FromAccuracy never
/// derives more), and the cap bounds the decoded walk table any header
/// can demand to ~4·(kMaxWalkLength+1) × its real segment bytes — a
/// crafted small file cannot request an absurd allocation.
inline constexpr uint32_t kMaxWalkLength = 10000;

/// Model parameters and provenance persisted in a v2 index header.
struct WalkStoreMeta {
  uint32_t n = 0;
  uint32_t num_fingerprints = 0;
  uint32_t walk_length = 0;
  double damping = 0.0;
  uint64_t seed = 0;
  uint64_t graph_fingerprint = 0;
};

/// Read-only access to one graph's stored walks and their inverted
/// position index. Implementations are immutable after construction and
/// thread-safe for concurrent reads.
class WalkStore {
 public:
  /// Sentinel position of a walk that left a vertex with no in-neighbours.
  static constexpr uint32_t kDeadWalk = UINT32_MAX;

  virtual ~WalkStore() = default;

  const WalkStoreMeta& meta() const { return meta_; }

  /// Words per vertex in the decoded layout: num_fingerprints rows of
  /// (walk_length + 1) steps.
  size_t WalkWords() const {
    return static_cast<size_t>(meta_.num_fingerprints) *
           (meta_.walk_length + 1);
  }

  /// Decodes every walk of vertex `v` into `out` (capacity WalkWords()):
  /// out[r·(L+1) + t] is the position after t steps of fingerprint r's
  /// walk, kDeadWalk from the step the walk died onwards; out[r·(L+1)]
  /// is always v. Returns a ParseError naming the corrupt byte offset when
  /// the backing bytes are malformed (reachable only on the mmap backend,
  /// whose payload is not checksummed at open).
  virtual Status DecodeVertex(VertexId v, uint32_t* out) const = 0;

  /// One slot of the inverted index: the alive walks at (fingerprint r,
  /// step t), as parallel arrays sorted by (position, vertex).
  struct SlotView {
    const uint32_t* positions = nullptr;
    const uint32_t* vertices = nullptr;
    size_t count = 0;
  };

  /// Slot accessor; r < num_fingerprints, 1 <= t <= walk_length.
  virtual SlotView Slot(uint32_t r, uint32_t t) const = 0;

  /// The vertices whose fingerprint-r walk sits at `position` after t
  /// steps, ascending — the output-sensitive single-source path iterates
  /// exactly these instead of all n rows. O(log n) bucket lookup.
  std::span<const VertexId> Bucket(uint32_t r, uint32_t t,
                                   uint32_t position) const;

  /// The resident flat v1-layout walk table ((r,t)-major, see
  /// WalkIndex::EstimateSingleSourceScan), or nullptr when the backend
  /// does not keep the walks decoded in RAM.
  virtual const uint32_t* FlatWalks() const { return nullptr; }

  /// Start of slot (r, t) — the n per-vertex positions of fingerprint r
  /// after t steps — within FlatWalks(). The single point of truth for
  /// the flat table's (r,t)-major layout.
  size_t FlatSlot(uint32_t r, uint32_t t) const {
    return (static_cast<size_t>(r) * (meta_.walk_length + 1) + t) *
           meta_.n;
  }

  /// Heap (plus, for mmap, unavoidably-touched page) bytes this store
  /// keeps resident, independent of what the kernel has faulted in.
  virtual uint64_t ResidentBytes() const = 0;

  /// Advises the OS to fault in the walk segments of `vertices` ahead of
  /// queries (madvise(MADV_WILLNEED) on the mmap backend, one call per
  /// coalesced page range). Purely a scheduling hint: results are
  /// identical with or without it. No-op on backends that are already
  /// resident.
  virtual void Prefetch(std::span<const VertexId> vertices) const {
    (void)vertices;
  }

  /// Advises the OS to fault in the whole inverted-index region, which an
  /// output-sensitive single-source query walks bucket by bucket. Backends
  /// that are already resident no-op; the mmap backend issues the
  /// readahead once per store lifetime. Purely a hint, like Prefetch.
  virtual void PrefetchSlots() const {}

  /// True when cold reads of this store are currently serviced through an
  /// io_uring (mmap backend with a live ring); diagnostics only.
  virtual bool UsesIoUring() const { return false; }

  /// Recomputes the payload checksum against the header's. The in-memory
  /// backend verified it at open and returns OK immediately; the mmap
  /// backend performs the full payload read this entails.
  virtual Status VerifyPayload() const { return Status::OK(); }

  /// "in-memory" or "mmap"; bench and diagnostics labels.
  virtual const char* backend_name() const = 0;

 protected:
  WalkStore() = default;

  WalkStoreMeta meta_;
};

/// Serialization knobs of SaveWalkStore.
struct WalkStoreSaveOptions {
  /// Delta+varint-compress the per-vertex segments (the inverted index
  /// stays raw for O(log n) mmap bucket lookups). Roughly halves the
  /// segment region on web-style graphs at a small decode cost.
  bool compress = false;
};

/// Writes `store` as a v2 index file. Deterministic: equal stores and
/// options produce byte-identical files, regardless of backend.
Status SaveWalkStore(const WalkStore& store, const std::string& path,
                     const WalkStoreSaveOptions& options = {});

/// Backend that materialises the full walk table (and inverted index) in
/// RAM — v1's serving behavior, still bit-deterministic, fastest per
/// query; open cost and footprint are linear in the payload.
class InMemoryWalkStore final : public WalkStore {
 public:
  /// Wraps a freshly built flat walk table (v1 layout, see FlatWalks) and
  /// constructs the inverted index from it, parallelised across
  /// `num_threads` (0 = hardware concurrency) with thread-count-independent
  /// output.
  InMemoryWalkStore(const WalkStoreMeta& meta, std::vector<uint32_t> walks,
                    uint32_t num_threads = 1);

  /// Reads and fully verifies (all three checksums) a v2 file, decoding
  /// every segment into the resident flat table. The per-vertex decode —
  /// the dominant cost of a cold open — is parallelised over disjoint
  /// vertex ranges across `num_threads` workers (0 = hardware
  /// concurrency); every thread count produces a bitwise-identical store
  /// and, on corrupt input, the same first-corrupt-vertex error as the
  /// serial pass.
  static Result<std::unique_ptr<InMemoryWalkStore>> Open(
      const std::string& path, uint32_t num_threads = 0);

  Status DecodeVertex(VertexId v, uint32_t* out) const override;
  SlotView Slot(uint32_t r, uint32_t t) const override;
  const uint32_t* FlatWalks() const override { return walks_.data(); }
  uint64_t ResidentBytes() const override;
  const char* backend_name() const override { return "in-memory"; }

 private:
  InMemoryWalkStore() = default;

  void BuildInverted(uint32_t num_threads);

  /// Flat walk table: position after t steps of fingerprint r's walk from
  /// v lives at walks_[(r·(L+1) + t)·n + v].
  std::vector<uint32_t> walks_;
  /// Inverted index: slot s = r·L + (t-1) occupies entry range
  /// [slot_offsets_[s], slot_offsets_[s+1]) of the two parallel arrays.
  std::vector<uint64_t> slot_offsets_;
  std::vector<uint32_t> inverted_positions_;
  std::vector<uint32_t> inverted_vertices_;
};

/// Backend that maps the file and serves straight from the page cache:
/// open reads only the header and directory, the payload faults in on
/// demand. Segments are decoded per access; buckets are binary searches
/// over the mapped arrays. POSIX-only (Status::Unimplemented elsewhere).
class MmapWalkStore final : public WalkStore {
 public:
  static Result<std::unique_ptr<MmapWalkStore>> Open(
      const std::string& path);

  ~MmapWalkStore() override;

  Status DecodeVertex(VertexId v, uint32_t* out) const override;
  SlotView Slot(uint32_t r, uint32_t t) const override;
  uint64_t ResidentBytes() const override;
  Status VerifyPayload() const override;
  void Prefetch(std::span<const VertexId> vertices) const override;
  void PrefetchSlots() const override;
  bool UsesIoUring() const override;
  const char* backend_name() const override { return "mmap"; }

 private:
  MmapWalkStore();

  std::string path_;
  const uint8_t* data_ = nullptr;  // whole-file read-only mapping
  size_t size_ = 0;
  bool compressed_ = false;
  uint64_t payload_checksum_ = 0;
  // Directory views into the mapping.
  const uint64_t* seg_rel_ = nullptr;  // n + 1 entries
  const uint64_t* inv_rel_ = nullptr;  // R·L + 1 entries
  const uint8_t* segments_base_ = nullptr;
  const uint8_t* inverted_base_ = nullptr;
  uint64_t segments_bytes_ = 0;
  uint64_t inverted_bytes_ = 0;
  uint64_t directory_bytes_ = 0;
  /// Batched cold-read accelerator over the same file (own descriptor;
  /// the mapping's fd is closed right after mmap). Null when the file
  /// could not be reopened — prefetch then falls back to madvise.
  std::unique_ptr<SegmentReader> reader_;
  mutable std::atomic<bool> slots_prefetched_{false};
};

/// Header/directory summary of an index file, readable without loading
/// (or even mapping) the payload. Powers `simrank_cli index-info`.
struct WalkIndexInfo {
  uint32_t version = 0;
  bool compressed = false;
  WalkStoreMeta meta;
  uint64_t file_bytes = 0;
  uint64_t directory_bytes = 0;
  /// Size of the (possibly compressed) segment region on disk.
  uint64_t segment_bytes = 0;
  uint64_t inverted_bytes = 0;
  /// What the v1 flat table would occupy: n · R · (L+1) · 4 bytes.
  uint64_t raw_walk_bytes = 0;
};

/// Reads and validates the header of a v2 index file (magic, version,
/// header checksum, declared sizes vs the real file).
Result<WalkIndexInfo> ReadWalkIndexInfo(const std::string& path);

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_INDEX_WALK_STORE_H_
