#include "simrank/index/index_updater.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <span>
#include <unordered_map>
#include <utility>

#include "simrank/common/coupled_hash.h"
#include "simrank/common/string_util.h"
#include "simrank/graph/graph_io.h"

namespace simrank {
namespace {

constexpr uint32_t kDead = WalkStore::kDeadWalk;

/// Base-store position reads for the patch path: O(1) against a resident
/// flat table, otherwise one cached segment decode per touched vertex.
/// Not shared across threads — each re-simulation worker owns one.
class BaseRowReader {
 public:
  explicit BaseRowReader(const WalkStore& store)
      : store_(store),
        flat_(store.FlatWalks()),
        row_(static_cast<size_t>(store.meta().walk_length) + 1) {}

  uint32_t Pos(VertexId v, uint32_t r, uint32_t t) {
    if (flat_ != nullptr) return flat_[store_.FlatSlot(r, t) + v];
    std::vector<uint32_t>& row = cache_[v];
    if (row.empty()) {
      row.resize(store_.WalkWords());
      const Status status = store_.DecodeVertex(v, row.data());
      OIPSIM_CHECK_MSG(status.ok(),
                       "corrupt walk segment while patching: %s",
                       status.ToString().c_str());
    }
    return row[r * row_ + t];
  }

 private:
  const WalkStore& store_;
  const uint32_t* flat_;
  size_t row_;
  std::unordered_map<VertexId, std::vector<uint32_t>> cache_;
};

/// Deterministic estimate of an overlay's heap footprint from its size
/// counters: per-container-node constants (key + value + hash-node
/// overhead) plus the payload words. What --overlay-budget compares
/// against; exactness is not required, stability and monotonicity are.
uint64_t OverlayBytesFromCounts(size_t patches, uint64_t suffix_words,
                                size_t patched_vertices, size_t slots,
                                uint64_t delta_entries) {
  return static_cast<uint64_t>(patches) * 88 + suffix_words * 4 +
         static_cast<uint64_t>(patched_vertices) * 48 +
         static_cast<uint64_t>(slots) * 112 + delta_entries * 8;
}

}  // namespace

/// One pending change of vertex `vertex`'s inverted-index entry in slot
/// `slot`: its position in the base store vs. the re-simulated one. kDead
/// on either side means "no entry" (the walk is dead at that step).
/// Collected flat and grouped by one sort — per-slot containers would
/// cost an allocation per touched slot per batch.
struct IndexUpdater::SlotEdit {
  uint64_t slot = 0;
  VertexId vertex = 0;
  uint32_t base_position = 0;
  uint32_t new_position = 0;

  friend bool operator<(const SlotEdit& a, const SlotEdit& b) {
    return a.slot < b.slot;
  }
};

/// What one re-simulated walk does to the overlay's patch map. Workers
/// emit these into per-block vectors; the merge applies them in canonical
/// (vertex, fingerprint) order, so the map contents are independent of
/// the block partition.
struct IndexUpdater::WalkOutcome {
  enum class Kind : uint8_t {
    kInsert,  // fresh walk diverged: add patch, bump the vertex count
    kSet,     // previously patched walk: replace its patch
    kErase,   // previously patched walk re-equals the base: drop it
  };

  uint64_t key = 0;
  Kind kind = Kind::kInsert;
  std::shared_ptr<const DeltaOverlay::WalkPatch> patch;
};

/// One batch waiting in the group-commit queue, owned by its submitting
/// thread's stack frame.
struct IndexUpdater::PendingBatch {
  std::span<const EdgeUpdate> updates;
  uint64_t expected_post_fingerprint = 0;
  Status status;
  bool done = false;
};

IndexUpdater::IndexUpdater(WalkIndex& index, const DiGraph& base_graph,
                           UpdateWal wal, const IndexUpdaterOptions& options)
    : index_(index), wal_(std::move(wal)), options_(options) {
  n_ = base_graph.n();
  m_ = base_graph.m();
  in_lists_.resize(n_);
  out_lists_.resize(n_);
  for (VertexId v = 0; v < n_; ++v) {
    const auto in = base_graph.InNeighbors(v);
    in_lists_[v].assign(in.begin(), in.end());  // src-ascending per dst
    const auto out = base_graph.OutNeighbors(v);
    out_lists_[v].assign(out.begin(), out.end());
    for (const VertexId u : out) {
      const uint64_t h = EdgeFingerprint(v, u);
      edge_sum_ += h;
      edge_xor_ ^= h;
    }
  }
  graph_fingerprint_ = ComposeGraphFingerprint(n_, m_, edge_sum_, edge_xor_);
  num_threads_ = ThreadPool::ResolveThreadCount(options.num_threads);
  if (num_threads_ > 1) pool_ = std::make_unique<ThreadPool>(num_threads_);
}

IndexUpdater::~IndexUpdater() {
  if (bg_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(bg_mutex_);
      bg_shutdown_ = true;
    }
    bg_cv_.notify_all();
    bg_thread_.join();
  }
}

Result<std::unique_ptr<IndexUpdater>> IndexUpdater::Open(
    WalkIndex& index, DiGraph base_graph,
    const IndexUpdaterOptions& options) {
  if (options.wal_path.empty()) {
    return Status::InvalidArgument(
        "IndexUpdaterOptions::wal_path is required: updates are only "
        "accepted write-ahead");
  }
  OIPSIM_RETURN_IF_ERROR(index.ValidateGraph(base_graph));
  if (index.overlay_sequence() != 0) {
    return Status::InvalidArgument(
        "index already carries an overlay; one IndexUpdater per index");
  }
  if (options.vertex_begin != 0 || options.vertex_end != 0) {
    if (options.vertex_begin >= options.vertex_end ||
        options.vertex_end > index.n()) {
      return Status::InvalidArgument(StrFormat(
          "shard vertex range [%u, %u) is not a non-empty subrange of "
          "[0, %u)",
          options.vertex_begin, options.vertex_end, index.n()));
    }
  }
  if ((options.overlay_budget_bytes > 0 ||
       options.auto_compact_patched_fraction > 0.0) &&
      options.auto_compact_path.empty()) {
    return Status::InvalidArgument(
        "overlay_budget_bytes / auto_compact_patched_fraction require "
        "auto_compact_path: an auto-compaction must know where to write "
        "the merged index");
  }

  WalBaseIdentity identity;
  identity.n = index.n();
  identity.num_fingerprints = index.options().num_fingerprints;
  identity.walk_length = index.options().walk_length;
  identity.seed = index.options().seed;
  identity.damping = index.options().damping;
  identity.graph_fingerprint = index.graph_fingerprint();
  UpdateWal::Options wal_options;
  wal_options.sync_every_append = options.sync_wal;
  auto opened = UpdateWal::Open(options.wal_path, identity, wal_options);
  if (!opened.ok()) return opened.status();

  std::unique_ptr<IndexUpdater> updater(
      new IndexUpdater(index, base_graph, std::move(opened->wal), options));
  {
    std::lock_guard<std::mutex> stats_lock(updater->stats_mutex_);
    updater->stats_.wal_truncated_bytes = opened->truncated_bytes;
    updater->stats_.graph_edges = updater->m_;
    updater->stats_.current_graph_fingerprint =
        updater->graph_fingerprint_;
    updater->stats_.wal_records = updater->wal_.record_count();
    updater->stats_.wal_bytes = updater->wal_.size_bytes();
  }
  {
    std::lock_guard<std::mutex> lock(updater->mutex_);
    for (const WalRecord& record : opened->records) {
      OIPSIM_RETURN_IF_ERROR(updater->ApplyBatch(
          record.updates, /*append_to_wal=*/false,
          record.post_graph_fingerprint));
      std::lock_guard<std::mutex> stats_lock(updater->stats_mutex_);
      ++updater->stats_.batches_replayed;
    }
  }
  {
    std::lock_guard<std::mutex> records_lock(updater->records_mutex_);
    updater->records_ = std::move(opened->records);
  }
  if (updater->AutoCompactArmed()) {
    // Started after replay so a replay that already trips a trigger is
    // picked up as the thread's first wait wakes.
    updater->bg_thread_ =
        std::thread(&IndexUpdater::BackgroundCompactLoop, updater.get());
  }
  return updater;
}

Status IndexUpdater::ApplyUpdates(std::span<const EdgeUpdate> updates) {
  if (options_.group_commit && options_.sync_wal) {
    return ApplyGrouped(updates, /*expected_post_fingerprint=*/0);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return ApplyBatch(updates, /*append_to_wal=*/true,
                    /*expected_post_fingerprint=*/0);
}

Status IndexUpdater::ApplyReplicated(std::span<const EdgeUpdate> updates,
                                     uint64_t expected_post_fingerprint) {
  if (expected_post_fingerprint == 0) {
    return Status::InvalidArgument(
        "replicated batches must carry the primary's post-batch graph "
        "fingerprint");
  }
  if (options_.group_commit && options_.sync_wal) {
    return ApplyGrouped(updates, expected_post_fingerprint);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return ApplyBatch(updates, /*append_to_wal=*/true,
                    expected_post_fingerprint);
}

std::vector<WalRecord> IndexUpdater::WalRecordsFrom(uint64_t from,
                                                    uint64_t limit) const {
  std::lock_guard<std::mutex> lock(records_mutex_);
  std::vector<WalRecord> out;
  for (uint64_t i = from; i < records_.size() && out.size() < limit; ++i) {
    out.push_back(records_[i]);
  }
  return out;
}

Status IndexUpdater::ApplyGrouped(std::span<const EdgeUpdate> updates,
                                  uint64_t expected_post_fingerprint) {
  PendingBatch pending;
  pending.updates = updates;
  pending.expected_post_fingerprint = expected_post_fingerprint;
  {
    std::unique_lock<std::mutex> queue_lock(queue_mutex_);
    queue_.push_back(&pending);
    if (leader_active_) {
      // Follow: a leader is draining; it (or a successor leader) will
      // process this batch and wake us with its status.
      queue_cv_.wait(queue_lock, [&pending] { return pending.done; });
      return pending.status;
    }
    leader_active_ = true;
  }
  // Lead. The bounded window lets concurrently arriving batches join this
  // group's single fsync; batches arriving later still coalesce naturally,
  // because they queue while this group is being patched and synced.
  if (options_.group_commit_window_us > 0) {
    std::unique_lock<std::mutex> queue_lock(queue_mutex_);
    queue_cv_.wait_for(
        queue_lock,
        std::chrono::microseconds(options_.group_commit_window_us));
  }
  while (true) {
    std::deque<PendingBatch*> group;
    {
      std::lock_guard<std::mutex> queue_lock(queue_mutex_);
      if (queue_.empty()) {
        leader_active_ = false;
        break;
      }
      group.swap(queue_);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      pending_overlay_ = nullptr;
      // A WAL write error poisons the rest of the group: appending after
      // a possibly torn record would leave records that replay drops.
      Status wal_broken = Status::OK();
      bool any_appended = false;
      for (PendingBatch* batch : group) {
        if (!wal_broken.ok()) {
          batch->status = wal_broken;
          continue;
        }
        batch->status =
            ApplyBatch(batch->updates, /*append_to_wal=*/true,
                       batch->expected_post_fingerprint,
                       /*defer_sync_and_publish=*/true);
        if (batch->status.ok()) {
          any_appended = true;
        } else if (batch->status.code() == StatusCode::kIoError) {
          wal_broken = batch->status;
        }
      }
      if (any_appended) {
        // The group's durability point: everything appended above hits
        // disk in one fsync, before any batch is acknowledged or its
        // overlay made visible to queries.
        const Status synced = wal_.Sync();
        if (!synced.ok()) {
          for (PendingBatch* batch : group) {
            if (batch->status.ok()) batch->status = synced;
          }
        }
        {
          std::lock_guard<std::mutex> stats_lock(stats_mutex_);
          stats_.wal_syncs = wal_.sync_count();
        }
        // Publish even when the fsync failed: the records are flushed to
        // the OS and the in-memory graph already reflects the group, so
        // withholding the overlay would fork serving state from update
        // state. The callers still get the sync error.
        if (pending_overlay_ != nullptr) {
          index_.PublishOverlay(pending_overlay_);
          MaybeTriggerAutoCompact(*pending_overlay_);
        }
      }
      pending_overlay_ = nullptr;
    }
    {
      std::lock_guard<std::mutex> queue_lock(queue_mutex_);
      for (PendingBatch* batch : group) batch->done = true;
    }
    queue_cv_.notify_all();
  }
  return pending.status;
}

Status IndexUpdater::ApplyBatch(std::span<const EdgeUpdate> updates,
                                bool append_to_wal,
                                uint64_t expected_post_fingerprint,
                                bool defer_sync_and_publish) {
  if (updates.empty()) {
    return Status::InvalidArgument("empty update batch");
  }

  // --- graph: validate strictly against the live adjacency --------------
  // (Same semantics and wording as ApplyEdgeUpdates in edge_update.cc;
  // keep them in lockstep.) Nothing mutates yet: intra-batch transitions
  // are tracked in a pending map keyed by the packed edge, so a rejected
  // batch leaves the adjacency untouched, and the commutative fingerprint
  // accumulates its delta in O(1) per update as a side effect.
  std::unordered_map<uint64_t, bool> pending;
  pending.reserve(updates.size() * 2);
  uint64_t delta_sum = 0;
  uint64_t delta_xor = 0;
  int64_t delta_m = 0;
  for (size_t i = 0; i < updates.size(); ++i) {
    const EdgeUpdate& update = updates[i];
    if (update.src >= n_ || update.dst >= n_) {
      return Status::OutOfRange(StrFormat(
          "update %zu: edge (%u, %u) leaves the vertex set [0, %u) the "
          "index was built for (adding vertices requires a rebuild)",
          i, update.src, update.dst, n_));
    }
    const uint64_t packed =
        (static_cast<uint64_t>(update.src) << 32) | update.dst;
    bool exists;
    if (auto it = pending.find(packed); it != pending.end()) {
      exists = it->second;
    } else {
      const std::vector<VertexId>& in = in_lists_[update.dst];
      exists = std::binary_search(in.begin(), in.end(), update.src);
    }
    const uint64_t h = EdgeFingerprint(update.src, update.dst);
    if (update.op == EdgeUpdate::Op::kInsert) {
      if (exists) {
        return Status::InvalidArgument(StrFormat(
            "update %zu: edge (%u, %u) already exists; inserts must add a "
            "new edge",
            i, update.src, update.dst));
      }
      pending[packed] = true;
      delta_sum += h;
      delta_xor ^= h;
      ++delta_m;
    } else {
      if (!exists) {
        return Status::InvalidArgument(StrFormat(
            "update %zu: edge (%u, %u) does not exist; deletes must "
            "remove an existing edge",
            i, update.src, update.dst));
      }
      pending[packed] = false;
      delta_sum -= h;
      delta_xor ^= h;
      --delta_m;
    }
  }
  const uint64_t post_m =
      static_cast<uint64_t>(static_cast<int64_t>(m_) + delta_m);
  const uint64_t post_fingerprint = ComposeGraphFingerprint(
      n_, post_m, edge_sum_ + delta_sum, edge_xor_ ^ delta_xor);
  if (expected_post_fingerprint != 0 &&
      post_fingerprint != expected_post_fingerprint) {
    return Status::ParseError(StrFormat(
        "WAL replay diverged: batch yields graph fingerprint %s, the "
        "record expects %s — the WAL does not belong to this base graph",
        FormatFingerprint(post_fingerprint).c_str(),
        FormatFingerprint(expected_post_fingerprint).c_str()));
  }

  // Write-ahead: the batch must be durable before any serving state
  // changes, so a crash at any later point replays it. Under group commit
  // the append defers its fsync; the group leader syncs once before
  // anything becomes visible.
  if (append_to_wal) {
    WalRecord record;
    record.updates.assign(updates.begin(), updates.end());
    record.post_graph_fingerprint = post_fingerprint;
    OIPSIM_RETURN_IF_ERROR(
        wal_.Append(record, /*sync=*/!defer_sync_and_publish));
    std::lock_guard<std::mutex> records_lock(records_mutex_);
    records_.push_back(std::move(record));
  }

  // --- O(degree) in-place maintenance -----------------------------------
  // The batch is validated and durable; fold it into the per-vertex
  // sorted lists. Nothing below this point can fail (corruption while
  // reading the store is a fatal checked error, as everywhere).
  for (const EdgeUpdate& update : updates) {
    std::vector<VertexId>& in = in_lists_[update.dst];
    std::vector<VertexId>& out = out_lists_[update.src];
    if (update.op == EdgeUpdate::Op::kInsert) {
      in.insert(std::lower_bound(in.begin(), in.end(), update.src),
                update.src);
      out.insert(std::lower_bound(out.begin(), out.end(), update.dst),
                 update.dst);
    } else {
      in.erase(std::lower_bound(in.begin(), in.end(), update.src));
      out.erase(std::lower_bound(out.begin(), out.end(), update.dst));
    }
  }
  m_ = post_m;
  edge_sum_ += delta_sum;
  edge_xor_ ^= delta_xor;
  graph_fingerprint_ = post_fingerprint;
  auto in_of = [this](VertexId v) {
    return std::span<const VertexId>(in_lists_[v]);
  };

  // During a group, later batches build on the group's still-unpublished
  // overlay chain, not on what queries currently see.
  const std::shared_ptr<const DeltaOverlay> old =
      defer_sync_and_publish && pending_overlay_ != nullptr
          ? pending_overlay_
          : index_.overlay_snapshot();
  // The store the overlay chain is expressed against — the original
  // backend, or the merged store a background compaction published.
  const WalkStore& base = index_.ServingStore(old.get());
  const WalkStoreMeta& meta = base.meta();
  const uint32_t R = meta.num_fingerprints;
  const uint32_t L = meta.walk_length;

  // The vertices whose in-neighbour list changed. Only transitions *out
  // of* these vertices can differ on the updated graph.
  std::vector<VertexId> touched;
  touched.reserve(updates.size());
  for (const EdgeUpdate& update : updates) touched.push_back(update.dst);
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()),
                touched.end());

  // Discovery: every (vertex, fingerprint, step) whose transition is
  // affected. A walk sitting at x after t steps takes its step-(t+1)
  // transition from x's in-list, so Bucket(r, t, x) (merged with the
  // current overlay) lists exactly the walks affected at step t+1; the
  // walk *starting* at a touched vertex is affected at step 1. Keyed
  // (v << 32 | r) so one sort groups by vertex, then fingerprint, with
  // each walk's affected steps ascending — the exact order the
  // re-simulation wants. Slot-major loops keep the 8-or-so binary
  // searches per slot on warm cache lines. Fingerprints are independent,
  // so the bucket sweep fans out over contiguous fingerprint blocks;
  // block results are concatenated in block order and the full sort makes
  // the candidate list identical for any partition.
  std::vector<std::pair<uint64_t, uint32_t>> candidates;
  candidates.reserve(1024);
  // A shard index represents out-of-range walks as dead from step 1 and
  // must keep them that way: re-simulating a dead row would revive the
  // vertex into this shard's inverted index and double-count it across
  // the cluster. Bucket-discovered candidates below are in-range by
  // construction (the shard's inverted index only lists its own range).
  const bool range_limited =
      options_.vertex_begin != 0 || options_.vertex_end != 0;
  for (const VertexId x : touched) {
    if (range_limited &&
        (x < options_.vertex_begin || x >= options_.vertex_end)) {
      continue;
    }
    for (uint32_t r = 0; r < R; ++r) {
      candidates.emplace_back(DeltaOverlay::WalkKey(x, r), 1);
    }
  }
  auto discover_block = [&](uint32_t r_begin, uint32_t r_end,
                            std::vector<std::pair<uint64_t, uint32_t>>* out) {
    for (uint32_t r = r_begin; r < r_end; ++r) {
      for (uint32_t t = 1; t + 1 <= L; ++t) {
        for (const VertexId x : touched) {
          ForEachBucketVertex(base, old.get(), r, t, x,
                              [&](const VertexId v) {
                                out->emplace_back(
                                    DeltaOverlay::WalkKey(v, r), t + 1);
                              });
        }
      }
    }
  };
  if (pool_ != nullptr && R >= 2) {
    const uint32_t blocks =
        std::min(R, num_threads_ * 4u);
    std::vector<std::vector<std::pair<uint64_t, uint32_t>>> found(blocks);
    pool_->ParallelFor(0, blocks, [&](uint64_t b) {
      discover_block(static_cast<uint32_t>(R * b / blocks),
                     static_cast<uint32_t>(R * (b + 1) / blocks),
                     &found[b]);
    });
    for (const auto& block : found) {
      candidates.insert(candidates.end(), block.begin(), block.end());
    }
  } else {
    discover_block(0, R, &candidates);
  }
  std::sort(candidates.begin(), candidates.end());

  auto overlay = std::make_shared<DeltaOverlay>();
  overlay->sequence_ = (old == nullptr ? 0 : old->sequence_) + 1;
  overlay->graph_fingerprint_ = post_fingerprint;
  overlay->walk_length_ = L;
  if (old != nullptr) {
    overlay->patches_ = old->patches_;  // shared_ptr values: cheap copy
    overlay->patch_counts_ = old->patch_counts_;
    overlay->deltas_ = old->deltas_;
    overlay->rebased_store_ = old->rebased_store_;
  }

  // --- re-simulation of the affected walks ------------------------------
  // Each walk is an independent pure function of (updated graph, base
  // store, previous overlay), so the sorted candidate list is cut into
  // contiguous walk groups and fanned out; per-worker slot edits and
  // patch outcomes are concatenated in block order — which *is* the
  // serial canonical (vertex, fingerprint) order, because blocks are
  // contiguous key ranges — before they touch any shared state.
  std::vector<std::pair<size_t, size_t>> groups;
  for (size_t at = 0; at < candidates.size();) {
    const size_t begin = at;
    const uint64_t key = candidates[at].first;
    while (at < candidates.size() && candidates[at].first == key) ++at;
    groups.emplace_back(begin, at);
  }

  // Re-simulates one walk group; emits slot edits and the patch outcome
  // instead of mutating the overlay, so any worker can run it.
  auto resim_walk = [&](size_t begin, size_t end, BaseRowReader& reader,
                        std::vector<uint32_t>& steps,
                        std::vector<SlotEdit>& edits,
                        std::vector<WalkOutcome>& outcomes,
                        uint64_t& steps_written, uint64_t& changed_walks) {
    const uint64_t key = candidates[begin].first;
    steps.clear();
    for (size_t i = begin; i < end; ++i) {
      const uint32_t t = candidates[i].second;
      if (steps.empty() || steps.back() != t) steps.push_back(t);
    }
    const auto v = static_cast<VertexId>(key >> 32);
    const auto r = static_cast<uint32_t>(key & 0xffffffffu);

    // Re-simulate from each affected step; once the new position
    // coincides with the current one at some step, the walks are coupled
    // — identical until the *next* affected step, so skip ahead. That
    // convergence is what keeps a patch O(changed steps) instead of
    // O(L) even when a walk brushes a touched vertex late.
    const DeltaOverlay::WalkPatch* prev =
        old == nullptr ? nullptr : old->FindPatch(v, r);
    DeltaOverlay::WalkPatch merged;
    bool any_change = false;
    if (prev == nullptr) {
      // Fresh walk: "current" is the base store itself, so convergence is
      // re-joining the base path — the patch grows only while the new
      // path diverges, and the slot edit doubles as the comparison read.
      merged.t0 = steps[0];
      size_t step_index = 0;
      uint32_t t = steps[0];
      while (true) {
        // Segments are contiguous in the suffix; a converged span between
        // two affected steps back-fills with (equal) base positions.
        while (merged.t0 + merged.suffix.size() < t) {
          merged.suffix.push_back(reader.Pos(
              v, r, merged.t0 + static_cast<uint32_t>(merged.suffix.size())));
        }
        uint32_t position =
            t - 1 >= merged.t0 ? merged.suffix[t - 1 - merged.t0]
                               : reader.Pos(v, r, t - 1);
        OIPSIM_DCHECK(position != kDead);
        bool converged = false;
        for (; t <= L; ++t) {
          if (position != kDead) {
            const auto in = in_of(position);
            position =
                in.empty()
                    ? kDead
                    : in[CoupledWalkHash(meta.seed, r, t, position) %
                         in.size()];
          }
          ++steps_written;
          const uint32_t base_position = reader.Pos(v, r, t);
          if (position == base_position) {
            converged = true;  // re-coupled: identical until next touch
            ++t;
            break;
          }
          edits.push_back(SlotEdit{
              static_cast<uint64_t>(r) * L + (t - 1), v, base_position,
              position});
          merged.suffix.push_back(position);
          any_change = true;
        }
        while (step_index < steps.size() && steps[step_index] < t) {
          ++step_index;
        }
        if (!converged || step_index >= steps.size()) break;
        t = steps[step_index];
      }
      if (any_change) {
        outcomes.push_back(WalkOutcome{
            key, WalkOutcome::Kind::kInsert,
            std::make_shared<DeltaOverlay::WalkPatch>(std::move(merged))});
        ++changed_walks;
      }
    } else {
      // Previously patched walk: "current" is base + previous patch. The
      // merged patch spans from the earliest step either covers, and
      // every simulated step emits an edit (no-ops included — they clear
      // the previous batch's entries for this walk).
      merged.t0 = std::min(prev->t0, steps[0]);
      merged.suffix.resize(L - merged.t0 + 1);
      for (uint32_t t = merged.t0; t <= L; ++t) {
        merged.suffix[t - merged.t0] = prev->Covers(t)
                                           ? prev->Position(t)
                                           : reader.Pos(v, r, t);
      }
      size_t step_index = 0;
      uint32_t t = steps[0];
      while (true) {
        uint32_t position = t - 1 >= merged.t0
                                ? merged.suffix[t - 1 - merged.t0]
                                : reader.Pos(v, r, t - 1);
        OIPSIM_DCHECK(position != kDead);
        bool converged = false;
        for (; t <= L; ++t) {
          if (position != kDead) {
            const auto in = in_of(position);
            position =
                in.empty()
                    ? kDead
                    : in[CoupledWalkHash(meta.seed, r, t, position) %
                         in.size()];
          }
          ++steps_written;
          uint32_t& current = merged.suffix[t - merged.t0];
          edits.push_back(SlotEdit{
              static_cast<uint64_t>(r) * L + (t - 1), v,
              reader.Pos(v, r, t), position});
          if (position == current) {
            converged = true;
            ++t;
            break;
          }
          current = position;
          any_change = true;
        }
        while (step_index < steps.size() && steps[step_index] < t) {
          ++step_index;
        }
        if (!converged || step_index >= steps.size()) break;
        t = steps[step_index];
      }
      if (any_change) ++changed_walks;
      // A walk whose merged suffix equals the base store's again vanishes
      // from the overlay entirely (the edits above cleared its entries).
      bool equals_base = true;
      for (uint32_t check = merged.t0; check <= L && equals_base;
           ++check) {
        equals_base =
            merged.suffix[check - merged.t0] == reader.Pos(v, r, check);
      }
      if (equals_base) {
        outcomes.push_back(
            WalkOutcome{key, WalkOutcome::Kind::kErase, nullptr});
      } else {
        outcomes.push_back(WalkOutcome{
            key, WalkOutcome::Kind::kSet,
            std::make_shared<DeltaOverlay::WalkPatch>(std::move(merged))});
      }
    }
  };

  const uint64_t resimulated = groups.size();
  uint64_t changed_walks = 0;
  uint64_t steps_written = 0;
  std::vector<SlotEdit> slot_edits;
  std::vector<WalkOutcome> outcomes;
  if (pool_ != nullptr && groups.size() >= 2) {
    const size_t blocks =
        std::min(groups.size(), static_cast<size_t>(num_threads_) * 4);
    struct BlockOut {
      std::vector<SlotEdit> edits;
      std::vector<WalkOutcome> outcomes;
      uint64_t steps_written = 0;
      uint64_t changed_walks = 0;
    };
    std::vector<BlockOut> block_out(blocks);
    pool_->ParallelFor(0, blocks, [&](uint64_t b) {
      const size_t g0 = groups.size() * b / blocks;
      const size_t g1 = groups.size() * (b + 1) / blocks;
      BaseRowReader reader(base);
      std::vector<uint32_t> steps;
      BlockOut& out = block_out[b];
      for (size_t g = g0; g < g1; ++g) {
        resim_walk(groups[g].first, groups[g].second, reader, steps,
                   out.edits, out.outcomes, out.steps_written,
                   out.changed_walks);
      }
    });
    size_t total_edits = 0;
    size_t total_outcomes = 0;
    for (const BlockOut& out : block_out) {
      total_edits += out.edits.size();
      total_outcomes += out.outcomes.size();
      steps_written += out.steps_written;
      changed_walks += out.changed_walks;
    }
    slot_edits.reserve(total_edits);
    outcomes.reserve(total_outcomes);
    for (BlockOut& out : block_out) {
      slot_edits.insert(slot_edits.end(), out.edits.begin(),
                        out.edits.end());
      outcomes.insert(outcomes.end(),
                      std::make_move_iterator(out.outcomes.begin()),
                      std::make_move_iterator(out.outcomes.end()));
    }
  } else {
    BaseRowReader reader(base);
    std::vector<uint32_t> steps;
    for (const auto& [begin, end] : groups) {
      resim_walk(begin, end, reader, steps, slot_edits, outcomes,
                 steps_written, changed_walks);
    }
  }

  // Apply the patch outcomes in canonical order (ascending walk key; see
  // above on why block concatenation preserves it).
  for (const WalkOutcome& outcome : outcomes) {
    const auto v = static_cast<VertexId>(outcome.key >> 32);
    switch (outcome.kind) {
      case WalkOutcome::Kind::kInsert:
        overlay->patches_[outcome.key] = outcome.patch;
        ++overlay->patch_counts_[v];
        break;
      case WalkOutcome::Kind::kSet:
        overlay->patches_[outcome.key] = outcome.patch;
        break;
      case WalkOutcome::Kind::kErase: {
        overlay->patches_.erase(outcome.key);
        auto count = overlay->patch_counts_.find(v);
        if (--count->second == 0) overlay->patch_counts_.erase(count);
        break;
      }
    }
  }

  // --- fold the edits into per-slot diffs vs. the base store ------------
  std::stable_sort(slot_edits.begin(), slot_edits.end());
  FoldSlotEdits(slot_edits, overlay.get());

  uint64_t suffix_words = 0;
  for (const auto& [patch_key, patch] : overlay->patches_) {
    suffix_words += patch->suffix.size();
  }
  overlay->resident_bytes_ = OverlayBytesFromCounts(
      overlay->patches_.size(), suffix_words, overlay->patch_counts_.size(),
      overlay->deltas_.size(), overlay->delta_entries_);

  // Publish: one pointer swap; concurrent queries either see the previous
  // overlay or this one, never a mixture. A batch that cancels every
  // patch out still publishes the (empty) overlay: the sequence must stay
  // monotone, or a QueryEngine row cached under an earlier overlay could
  // read as fresh once the counter wrapped back around.
  const uint64_t sequence = overlay->sequence_;
  const uint64_t patched_vertices = overlay->patch_counts_.size();
  const uint64_t patched_walks = overlay->patches_.size();
  const uint64_t changed_slots = overlay->deltas_.size();
  const uint64_t delta_entries = overlay->delta_entries_;
  const uint64_t overlay_bytes = overlay->resident_bytes_;
  if (defer_sync_and_publish) {
    pending_overlay_ = std::move(overlay);  // published after the group sync
  } else {
    index_.PublishOverlay(overlay);
    MaybeTriggerAutoCompact(*overlay);
  }

  // Counters live under their own mutex so the server's inline stats
  // endpoints never block behind a long patch or compaction.
  std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  ++stats_.batches_applied;
  for (const EdgeUpdate& update : updates) {
    if (update.op == EdgeUpdate::Op::kInsert) {
      ++stats_.edges_inserted;
    } else {
      ++stats_.edges_deleted;
    }
  }
  stats_.walks_resimulated += resimulated;
  stats_.walks_changed += changed_walks;
  stats_.steps_resimulated += steps_written;
  stats_.overlay_sequence = sequence;
  stats_.patched_vertices = patched_vertices;
  stats_.patched_walks = patched_walks;
  stats_.changed_slots = changed_slots;
  stats_.delta_entries = delta_entries;
  stats_.overlay_bytes = overlay_bytes;
  stats_.graph_edges = m_;
  stats_.current_graph_fingerprint = post_fingerprint;
  stats_.wal_records = wal_.record_count();
  stats_.wal_bytes = wal_.size_bytes();
  stats_.wal_syncs = wal_.sync_count();
  return Status::OK();
}

void IndexUpdater::FoldSlotEdits(std::span<const SlotEdit> slot_edits,
                                 DeltaOverlay* overlay) {
  // Previous entries of an edited vertex in a slot are replaced by its
  // (base, new) pair; steps before a walk's earliest affected step carry
  // no edit and keep their previous entries. The input arrives grouped by
  // slot (one stable sort over the flat edit list).
  for (size_t at_edit = 0; at_edit < slot_edits.size();) {
    const uint64_t slot = slot_edits[at_edit].slot;
    const size_t begin = at_edit;
    while (at_edit < slot_edits.size() && slot_edits[at_edit].slot == slot) {
      ++at_edit;
    }
    const std::span<const SlotEdit> edits(slot_edits.data() + begin,
                                          at_edit - begin);
    auto next = std::make_shared<DeltaOverlay::SlotDelta>();
    if (auto it = overlay->deltas_.find(slot);
        it != overlay->deltas_.end()) {
      auto edited = [&edits](VertexId v) {
        for (const SlotEdit& edit : edits) {
          if (edit.vertex == v) return true;
        }
        return false;
      };
      for (const OverlayEntry& entry : it->second->removed) {
        if (!edited(entry.vertex)) next->removed.push_back(entry);
      }
      for (const OverlayEntry& entry : it->second->added) {
        if (!edited(entry.vertex)) next->added.push_back(entry);
      }
    }
    for (const SlotEdit& edit : edits) {
      if (edit.base_position == edit.new_position) continue;
      if (edit.base_position != kDead) {
        next->removed.push_back(
            OverlayEntry{edit.base_position, edit.vertex});
      }
      if (edit.new_position != kDead) {
        next->added.push_back(OverlayEntry{edit.new_position, edit.vertex});
      }
    }
    std::sort(next->removed.begin(), next->removed.end());
    std::sort(next->added.begin(), next->added.end());
    if (next->removed.empty() && next->added.empty()) {
      overlay->deltas_.erase(slot);
    } else {
      overlay->deltas_[slot] = std::move(next);
    }
  }
  overlay->delta_entries_ = 0;
  for (const auto& [slot, delta] : overlay->deltas_) {
    overlay->delta_entries_ += delta->removed.size() + delta->added.size();
  }
}

Status IndexUpdater::Compact(const std::string& path,
                             const WalkIndex::SaveOptions& save,
                             bool reset_wal,
                             const std::string& graph_path) {
  return CompactInternal(path, save, reset_wal, graph_path,
                         /*background=*/false);
}

Status IndexUpdater::CompactInternal(const std::string& path,
                                     const WalkIndex::SaveOptions& save,
                                     bool reset_wal,
                                     const std::string& graph_path,
                                     bool background) {
  (void)background;
  // One compaction at a time (manual or auto); updates are only excluded
  // during the two brief mutex_ windows below.
  std::lock_guard<std::mutex> compact_lock(compact_mutex_);
  const auto compact_start = std::chrono::steady_clock::now();

  // Phase 1 — pin the snapshot this compaction materializes: the overlay,
  // the record count it embodies and (when a graph file is wanted) the
  // adjacency. O(m) worst case, no store reads.
  std::shared_ptr<const DeltaOverlay> snap;
  uint64_t snap_fingerprint = 0;
  size_t records_at_snapshot = 0;
  std::vector<std::vector<VertexId>> out_copy;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snap = index_.overlay_snapshot();
    snap_fingerprint = graph_fingerprint_;
    {
      std::lock_guard<std::mutex> records_lock(records_mutex_);
      records_at_snapshot = records_.size();
    }
    if (!graph_path.empty()) out_copy = out_lists_;
  }
  const WalkStore& base = index_.ServingStore(snap.get());
  WalkStoreMeta meta = base.meta();
  meta.graph_fingerprint = snap_fingerprint;

  // Phase 2 — no update lock held: updates and queries proceed against
  // the live overlay while the merged store is built. Materialize base +
  // overlay as a flat walk table, exactly what Build() would have
  // produced on the updated graph, and save it through the same writer —
  // byte identity follows. Vertex ranges are disjoint, so the
  // materialization fans out; the result is position-for-position
  // identical for any thread count.
  const uint32_t n = meta.n;
  const size_t words = base.WalkWords();
  std::vector<uint32_t> walks(words * n);
  {
    const size_t blocks =
        pool_ != nullptr && n >= 2
            ? std::min<size_t>(n, static_cast<size_t>(num_threads_) * 4)
            : 1;
    std::vector<Status> block_status(blocks, Status::OK());
    auto materialize_block = [&](size_t b) {
      const VertexId v0 = static_cast<VertexId>(n * b / blocks);
      const VertexId v1 = static_cast<VertexId>(n * (b + 1) / blocks);
      std::vector<uint32_t> scratch(words);
      for (VertexId v = v0; v < v1; ++v) {
        const Status status =
            MaterializeRow(base, snap.get(), v, scratch.data());
        if (!status.ok()) {
          block_status[b] = status;
          return;
        }
        for (size_t word = 0; word < words; ++word) {
          walks[word * n + v] = scratch[word];
        }
      }
    };
    if (blocks > 1) {
      pool_->ParallelFor(0, blocks,
                         [&](uint64_t b) { materialize_block(b); });
    } else {
      materialize_block(0);
    }
    for (const Status& status : block_status) {
      OIPSIM_RETURN_IF_ERROR(status);
    }
  }
  auto merged = std::make_shared<InMemoryWalkStore>(meta, std::move(walks),
                                                    num_threads_);

  WalkStoreSaveOptions store_save;
  store_save.compress = save.compress;
  const std::string tmp = path + ".tmp";
  OIPSIM_RETURN_IF_ERROR(SaveWalkStore(*merged, tmp, store_save));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError(
        StrFormat("cannot move compacted index into place: %s -> %s",
                  tmp.c_str(), path.c_str()));
  }

  if (!graph_path.empty()) {
    // The updated graph must be durable before the WAL forgets how to
    // re-derive it.
    DiGraph::Builder builder(n_);
    for (VertexId v = 0; v < n_; ++v) {
      for (const VertexId dst : out_copy[v]) builder.AddEdge(v, dst);
    }
    const DiGraph graph = std::move(builder).Build();
    const std::string graph_tmp = graph_path + ".tmp";
    OIPSIM_RETURN_IF_ERROR(WriteBinary(graph, graph_tmp));
    if (std::rename(graph_tmp.c_str(), graph_path.c_str()) != 0) {
      std::remove(graph_tmp.c_str());
      return Status::IoError(
          StrFormat("cannot move compacted graph into place: %s -> %s",
                    graph_tmp.c_str(), graph_path.c_str()));
    }
  }

  // The store serving swaps onto. A paged deployment re-opens the
  // compacted file through the paged backend, so a compaction does not
  // silently convert it into a fully resident one; the rename above left
  // the old mapping's inode intact for readers still on old snapshots.
  std::shared_ptr<const WalkStore> serving = merged;
  if (index_.store().FlatWalks() == nullptr) {
    auto reopened = MmapWalkStore::Open(path);
    if (reopened.ok()) {
      serving = std::shared_ptr<const WalkStore>(std::move(*reopened));
    }
    // On reopen failure keep the in-memory merged store: correctness is
    // unaffected, only residency.
  }

  // Phase 3 — the swap: one brief mutex_ hold. Batches that landed while
  // the merged store was building are rebased onto it (their net effect
  // re-expressed as patches against the merged store), so the published
  // (store, overlay) pair is coherent and the sequence keeps counting —
  // cached rows stamped with the snapshot sequence stay valid, because
  // the merged store is bitwise the snapshot state.
  Status result = Status::OK();
  uint64_t pause_micros = 0;
  uint64_t published_sequence = 0;
  uint64_t published_patched_vertices = 0;
  uint64_t published_patched_walks = 0;
  uint64_t published_changed_slots = 0;
  uint64_t published_delta_entries = 0;
  uint64_t published_overlay_bytes = 0;
  bool published = false;
  {
    const auto pause_start = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(mutex_);
    const std::shared_ptr<const DeltaOverlay> current =
        index_.overlay_snapshot();
    if (current != nullptr || snap != nullptr) {
      auto rebased = std::make_shared<DeltaOverlay>();
      rebased->walk_length_ = meta.walk_length;
      rebased->rebased_store_ = serving;
      if (current == snap) {
        rebased->sequence_ = current->sequence_;
        rebased->graph_fingerprint_ = snap_fingerprint;
      } else {
        rebased->sequence_ = current->sequence_;
        rebased->graph_fingerprint_ = current->graph_fingerprint_;
        // Diff every walk either patch set touches: merged-store value
        // (snapshot side) vs live value (current side), both expressed
        // against the *old* base. Cost is proportional to the churn
        // during the build window, never O(n).
        std::vector<uint64_t> keys;
        keys.reserve((snap != nullptr ? snap->patches_.size() : 0) +
                     current->patches_.size());
        if (snap != nullptr) {
          for (const auto& [key, patch] : snap->patches_) {
            keys.push_back(key);
          }
        }
        for (const auto& [key, patch] : current->patches_) {
          keys.push_back(key);
        }
        std::sort(keys.begin(), keys.end());
        keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
        BaseRowReader reader(base);
        std::vector<SlotEdit> edits;
        const uint32_t L = meta.walk_length;
        std::vector<uint32_t> cur_row(static_cast<size_t>(L) + 1);
        for (const uint64_t key : keys) {
          const auto v = static_cast<VertexId>(key >> 32);
          const auto r = static_cast<uint32_t>(key & 0xffffffffu);
          const DeltaOverlay::WalkPatch* sp = nullptr;
          if (snap != nullptr) {
            if (auto it = snap->patches_.find(key);
                it != snap->patches_.end()) {
              sp = it->second.get();
            }
          }
          const DeltaOverlay::WalkPatch* cp = current->FindPatch(v, r);
          uint32_t first = 0;
          uint32_t last = 0;
          bool any = false;
          for (uint32_t t = 1; t <= L; ++t) {
            const uint32_t merged_position =
                sp != nullptr && sp->Covers(t) ? sp->Position(t)
                                               : reader.Pos(v, r, t);
            const uint32_t current_position =
                cp != nullptr && cp->Covers(t) ? cp->Position(t)
                                               : reader.Pos(v, r, t);
            cur_row[t] = current_position;
            if (merged_position != current_position) {
              edits.push_back(
                  SlotEdit{static_cast<uint64_t>(r) * L + (t - 1), v,
                           merged_position, current_position});
              if (!any) {
                first = t;
                any = true;
              }
              last = t;
            }
          }
          if (any) {
            DeltaOverlay::WalkPatch patch;
            patch.t0 = first;
            patch.suffix.assign(cur_row.begin() + first,
                                cur_row.begin() + last + 1);
            rebased->patches_[key] =
                std::make_shared<DeltaOverlay::WalkPatch>(std::move(patch));
            ++rebased->patch_counts_[v];
          }
        }
        std::stable_sort(edits.begin(), edits.end());
        FoldSlotEdits(edits, rebased.get());
      }
      uint64_t suffix_words = 0;
      for (const auto& [patch_key, patch] : rebased->patches_) {
        suffix_words += patch->suffix.size();
      }
      rebased->resident_bytes_ = OverlayBytesFromCounts(
          rebased->patches_.size(), suffix_words,
          rebased->patch_counts_.size(), rebased->deltas_.size(),
          rebased->delta_entries_);
      published_sequence = rebased->sequence_;
      published_patched_vertices = rebased->patch_counts_.size();
      published_patched_walks = rebased->patches_.size();
      published_changed_slots = rebased->deltas_.size();
      published_delta_entries = rebased->delta_entries_;
      published_overlay_bytes = rebased->resident_bytes_;
      published = true;
      index_.PublishOverlay(std::move(rebased));
    }

    if (reset_wal) {
      WalBaseIdentity identity;
      identity.n = meta.n;
      identity.num_fingerprints = meta.num_fingerprints;
      identity.walk_length = meta.walk_length;
      identity.seed = meta.seed;
      identity.damping = meta.damping;
      identity.graph_fingerprint = snap_fingerprint;
      result = wal_.Reset(identity);
      if (result.ok()) {
        // The compacted file embodies records [0, records_at_snapshot);
        // batches that landed during the build are re-appended so their
        // durability survives the reset.
        std::lock_guard<std::mutex> records_lock(records_mutex_);
        std::vector<WalRecord> tail(
            records_.begin() +
                static_cast<std::ptrdiff_t>(records_at_snapshot),
            records_.end());
        for (const WalRecord& record : tail) {
          result = wal_.Append(record, /*sync=*/false);
          if (!result.ok()) break;
        }
        if (result.ok() && options_.sync_wal && !tail.empty()) {
          result = wal_.Sync();
        }
        records_ = std::move(tail);
      }
    }
    pause_micros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - pause_start)
            .count());
  }

  const uint64_t total_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - compact_start)
          .count());
  compaction_hist_.Record(total_micros);
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.compactions;
    stats_.last_compaction_micros = total_micros;
    stats_.last_compaction_pause_micros = pause_micros;
    stats_.wal_records = wal_.record_count();
    stats_.wal_bytes = wal_.size_bytes();
    stats_.wal_syncs = wal_.sync_count();
    if (published) {
      stats_.overlay_sequence = published_sequence;
      stats_.patched_vertices = published_patched_vertices;
      stats_.patched_walks = published_patched_walks;
      stats_.changed_slots = published_changed_slots;
      stats_.delta_entries = published_delta_entries;
      stats_.overlay_bytes = published_overlay_bytes;
    }
  }
  return result;
}

bool IndexUpdater::OverlayOverThreshold(const DeltaOverlay& overlay) const {
  const bool over_budget =
      options_.overlay_budget_bytes > 0 &&
      overlay.resident_bytes_ > options_.overlay_budget_bytes;
  const double fraction = options_.auto_compact_patched_fraction;
  const bool amplified =
      fraction > 0.0 &&
      static_cast<double>(overlay.patches_.size()) >
          fraction * static_cast<double>(n_) *
              static_cast<double>(index_.options().num_fingerprints);
  return over_budget || amplified;
}

void IndexUpdater::MaybeTriggerAutoCompact(const DeltaOverlay& overlay) {
  if (!AutoCompactArmed()) return;
  if (!OverlayOverThreshold(overlay)) return;
  {
    std::lock_guard<std::mutex> lock(bg_mutex_);
    // One compaction in flight at a time; the overlay this publish built
    // is folded in anyway if it lands before the running one's swap, and
    // re-trips the trigger at its next publish otherwise.
    if (bg_shutdown_ || bg_requested_ || bg_running_) return;
    bg_requested_ = true;
  }
  bg_cv_.notify_all();
}

bool IndexUpdater::AutoCompactArmed() const {
  return !options_.auto_compact_path.empty() &&
         (options_.overlay_budget_bytes > 0 ||
          options_.auto_compact_patched_fraction > 0.0);
}

void IndexUpdater::BackgroundCompactLoop() {
  for (;;) {
    std::unique_lock<std::mutex> lock(bg_mutex_);
    bg_cv_.wait(lock, [this] { return bg_requested_ || bg_shutdown_; });
    if (bg_shutdown_) return;
    bg_requested_ = false;
    bg_running_ = true;
    lock.unlock();

    WalkIndex::SaveOptions save;
    save.compress = options_.auto_compact_compress;
    // Reset the WAL only when the matching graph is made durable too; a
    // reset without it would strand acknowledged updates on restart.
    const bool reset_wal = !options_.auto_compact_graph_path.empty();
    const Status status =
        CompactInternal(options_.auto_compact_path, save, reset_wal,
                        options_.auto_compact_graph_path,
                        /*background=*/true);
    {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      if (status.ok()) {
        ++stats_.auto_compactions;
      } else {
        ++stats_.auto_compact_failures;
      }
    }
    if (!status.ok()) {
      std::fprintf(stderr, "simrank: background auto-compaction failed: %s\n",
                   status.ToString().c_str());
    }

    // A batch that published during this run saw bg_running_ and dropped
    // its trigger; if its rebased tail is still over threshold, re-arm
    // before declaring the compactor idle so the tail cannot strand.
    // Re-compacting an unchanged over-threshold overlay converges: the
    // second pass rebases it to empty.  Checked before clearing
    // bg_running_ so DrainBackgroundCompaction cannot observe a
    // momentarily-idle compactor with work still pending.
    bool rearm = false;
    if (status.ok()) {
      const auto overlay = index_.overlay_snapshot();
      rearm = overlay && OverlayOverThreshold(*overlay);
    }

    lock.lock();
    bg_running_ = false;
    if (rearm && !bg_shutdown_) bg_requested_ = true;
    lock.unlock();
    bg_cv_.notify_all();
  }
}

void IndexUpdater::DrainBackgroundCompaction() {
  std::unique_lock<std::mutex> lock(bg_mutex_);
  bg_cv_.wait(lock, [this] { return !bg_requested_ && !bg_running_; });
}

DiGraph IndexUpdater::CurrentGraph() const {
  std::lock_guard<std::mutex> lock(mutex_);
  DiGraph::Builder builder(n_);
  for (VertexId v = 0; v < n_; ++v) {
    for (const VertexId dst : out_lists_[v]) builder.AddEdge(v, dst);
  }
  return std::move(builder).Build();
}

IndexUpdateStats IndexUpdater::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace simrank
