#include "simrank/index/index_updater.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <span>
#include <unordered_map>
#include <utility>

#include "simrank/common/coupled_hash.h"
#include "simrank/common/stream_hash.h"
#include "simrank/common/string_util.h"
#include "simrank/graph/graph_io.h"

namespace simrank {
namespace {

constexpr uint32_t kDead = WalkStore::kDeadWalk;

bool EdgeLess(const Edge& a, const Edge& b) {
  return a.src != b.src ? a.src < b.src : a.dst < b.dst;
}

/// GraphFingerprint() over the canonical sorted edge list — identical to
/// hashing the DiGraph it builds (same n, m and (src, dst) sequence),
/// without materializing one.
uint64_t FingerprintEdges(uint32_t n, const std::vector<Edge>& edges) {
  StreamHasher hasher;
  hasher.Absorb(n);
  hasher.Absorb(edges.size());
  for (const Edge& edge : edges) {
    hasher.Absorb((static_cast<uint64_t>(edge.src) << 32) | edge.dst);
  }
  return hasher.digest();
}

/// One pending change of vertex `vertex`'s inverted-index entry in slot
/// `slot`: its position in the base store vs. the re-simulated one. kDead
/// on either side means "no entry" (the walk is dead at that step).
/// Collected flat and grouped by one sort — per-slot containers would
/// cost an allocation per touched slot per batch.
struct SlotEdit {
  uint64_t slot = 0;
  VertexId vertex = 0;
  uint32_t base_position = 0;
  uint32_t new_position = 0;

  friend bool operator<(const SlotEdit& a, const SlotEdit& b) {
    return a.slot < b.slot;
  }
};

/// Base-store position reads for the patch path: O(1) against a resident
/// flat table, otherwise one cached segment decode per touched vertex.
class BaseRowReader {
 public:
  explicit BaseRowReader(const WalkStore& store)
      : store_(store),
        flat_(store.FlatWalks()),
        row_(static_cast<size_t>(store.meta().walk_length) + 1) {}

  uint32_t Pos(VertexId v, uint32_t r, uint32_t t) {
    if (flat_ != nullptr) return flat_[store_.FlatSlot(r, t) + v];
    std::vector<uint32_t>& row = cache_[v];
    if (row.empty()) {
      row.resize(store_.WalkWords());
      const Status status = store_.DecodeVertex(v, row.data());
      OIPSIM_CHECK_MSG(status.ok(),
                       "corrupt walk segment while patching: %s",
                       status.ToString().c_str());
    }
    return row[r * row_ + t];
  }

 private:
  const WalkStore& store_;
  const uint32_t* flat_;
  size_t row_;
  std::unordered_map<VertexId, std::vector<uint32_t>> cache_;
};

}  // namespace

/// One batch waiting in the group-commit queue, owned by its submitting
/// thread's stack frame.
struct IndexUpdater::PendingBatch {
  std::span<const EdgeUpdate> updates;
  uint64_t expected_post_fingerprint = 0;
  Status status;
  bool done = false;
};

IndexUpdater::IndexUpdater(WalkIndex& index, const DiGraph& base_graph,
                           UpdateWal wal, const IndexUpdaterOptions& options)
    : index_(index), wal_(std::move(wal)), options_(options) {
  n_ = base_graph.n();
  edges_ = base_graph.Edges();  // (src, dst)-sorted, deduped
  graph_fingerprint_ = GraphFingerprint(base_graph);
  in_offsets_.assign(static_cast<size_t>(n_) + 1, 0);
  for (const Edge& edge : edges_) ++in_offsets_[edge.dst + 1];
  for (uint32_t v = 0; v < n_; ++v) in_offsets_[v + 1] += in_offsets_[v];
  in_sources_.resize(edges_.size());
  std::vector<uint64_t> cursor(in_offsets_.begin(), in_offsets_.end() - 1);
  for (const Edge& edge : edges_) {
    in_sources_[cursor[edge.dst]++] = edge.src;  // src-ascending per dst
  }
}

Result<std::unique_ptr<IndexUpdater>> IndexUpdater::Open(
    WalkIndex& index, DiGraph base_graph,
    const IndexUpdaterOptions& options) {
  if (options.wal_path.empty()) {
    return Status::InvalidArgument(
        "IndexUpdaterOptions::wal_path is required: updates are only "
        "accepted write-ahead");
  }
  OIPSIM_RETURN_IF_ERROR(index.ValidateGraph(base_graph));
  if (index.overlay_sequence() != 0) {
    return Status::InvalidArgument(
        "index already carries an overlay; one IndexUpdater per index");
  }
  if (options.vertex_begin != 0 || options.vertex_end != 0) {
    if (options.vertex_begin >= options.vertex_end ||
        options.vertex_end > index.n()) {
      return Status::InvalidArgument(StrFormat(
          "shard vertex range [%u, %u) is not a non-empty subrange of "
          "[0, %u)",
          options.vertex_begin, options.vertex_end, index.n()));
    }
  }

  WalBaseIdentity identity;
  identity.n = index.n();
  identity.num_fingerprints = index.options().num_fingerprints;
  identity.walk_length = index.options().walk_length;
  identity.seed = index.options().seed;
  identity.damping = index.options().damping;
  identity.graph_fingerprint = index.graph_fingerprint();
  UpdateWal::Options wal_options;
  wal_options.sync_every_append = options.sync_wal;
  auto opened = UpdateWal::Open(options.wal_path, identity, wal_options);
  if (!opened.ok()) return opened.status();

  std::unique_ptr<IndexUpdater> updater(
      new IndexUpdater(index, base_graph, std::move(opened->wal), options));
  {
    std::lock_guard<std::mutex> stats_lock(updater->stats_mutex_);
    updater->stats_.wal_truncated_bytes = opened->truncated_bytes;
    updater->stats_.graph_edges = updater->edges_.size();
    updater->stats_.current_graph_fingerprint =
        updater->graph_fingerprint_;
    updater->stats_.wal_records = updater->wal_.record_count();
    updater->stats_.wal_bytes = updater->wal_.size_bytes();
  }
  {
    std::lock_guard<std::mutex> lock(updater->mutex_);
    for (const WalRecord& record : opened->records) {
      OIPSIM_RETURN_IF_ERROR(updater->ApplyBatch(
          record.updates, /*append_to_wal=*/false,
          record.post_graph_fingerprint));
      std::lock_guard<std::mutex> stats_lock(updater->stats_mutex_);
      ++updater->stats_.batches_replayed;
    }
  }
  {
    std::lock_guard<std::mutex> records_lock(updater->records_mutex_);
    updater->records_ = std::move(opened->records);
  }
  return updater;
}

Status IndexUpdater::ApplyUpdates(std::span<const EdgeUpdate> updates) {
  if (options_.group_commit && options_.sync_wal) {
    return ApplyGrouped(updates, /*expected_post_fingerprint=*/0);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return ApplyBatch(updates, /*append_to_wal=*/true,
                    /*expected_post_fingerprint=*/0);
}

Status IndexUpdater::ApplyReplicated(std::span<const EdgeUpdate> updates,
                                     uint64_t expected_post_fingerprint) {
  if (expected_post_fingerprint == 0) {
    return Status::InvalidArgument(
        "replicated batches must carry the primary's post-batch graph "
        "fingerprint");
  }
  if (options_.group_commit && options_.sync_wal) {
    return ApplyGrouped(updates, expected_post_fingerprint);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return ApplyBatch(updates, /*append_to_wal=*/true,
                    expected_post_fingerprint);
}

std::vector<WalRecord> IndexUpdater::WalRecordsFrom(uint64_t from,
                                                    uint64_t limit) const {
  std::lock_guard<std::mutex> lock(records_mutex_);
  std::vector<WalRecord> out;
  for (uint64_t i = from; i < records_.size() && out.size() < limit; ++i) {
    out.push_back(records_[i]);
  }
  return out;
}

Status IndexUpdater::ApplyGrouped(std::span<const EdgeUpdate> updates,
                                  uint64_t expected_post_fingerprint) {
  PendingBatch pending;
  pending.updates = updates;
  pending.expected_post_fingerprint = expected_post_fingerprint;
  {
    std::unique_lock<std::mutex> queue_lock(queue_mutex_);
    queue_.push_back(&pending);
    if (leader_active_) {
      // Follow: a leader is draining; it (or a successor leader) will
      // process this batch and wake us with its status.
      queue_cv_.wait(queue_lock, [&pending] { return pending.done; });
      return pending.status;
    }
    leader_active_ = true;
  }
  // Lead. The bounded window lets concurrently arriving batches join this
  // group's single fsync; batches arriving later still coalesce naturally,
  // because they queue while this group is being patched and synced.
  if (options_.group_commit_window_us > 0) {
    std::unique_lock<std::mutex> queue_lock(queue_mutex_);
    queue_cv_.wait_for(
        queue_lock,
        std::chrono::microseconds(options_.group_commit_window_us));
  }
  while (true) {
    std::deque<PendingBatch*> group;
    {
      std::lock_guard<std::mutex> queue_lock(queue_mutex_);
      if (queue_.empty()) {
        leader_active_ = false;
        break;
      }
      group.swap(queue_);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      pending_overlay_ = nullptr;
      // A WAL write error poisons the rest of the group: appending after
      // a possibly torn record would leave records that replay drops.
      Status wal_broken = Status::OK();
      bool any_appended = false;
      for (PendingBatch* batch : group) {
        if (!wal_broken.ok()) {
          batch->status = wal_broken;
          continue;
        }
        batch->status =
            ApplyBatch(batch->updates, /*append_to_wal=*/true,
                       batch->expected_post_fingerprint,
                       /*defer_sync_and_publish=*/true);
        if (batch->status.ok()) {
          any_appended = true;
        } else if (batch->status.code() == StatusCode::kIoError) {
          wal_broken = batch->status;
        }
      }
      if (any_appended) {
        // The group's durability point: everything appended above hits
        // disk in one fsync, before any batch is acknowledged or its
        // overlay made visible to queries.
        const Status synced = wal_.Sync();
        if (!synced.ok()) {
          for (PendingBatch* batch : group) {
            if (batch->status.ok()) batch->status = synced;
          }
        }
        {
          std::lock_guard<std::mutex> stats_lock(stats_mutex_);
          stats_.wal_syncs = wal_.sync_count();
        }
        // Publish even when the fsync failed: the records are flushed to
        // the OS and the in-memory graph already reflects the group, so
        // withholding the overlay would fork serving state from update
        // state. The callers still get the sync error.
        if (pending_overlay_ != nullptr) {
          index_.PublishOverlay(pending_overlay_);
        }
      }
      pending_overlay_ = nullptr;
    }
    {
      std::lock_guard<std::mutex> queue_lock(queue_mutex_);
      for (PendingBatch* batch : group) batch->done = true;
    }
    queue_cv_.notify_all();
  }
  return pending.status;
}

Status IndexUpdater::ApplyBatch(std::span<const EdgeUpdate> updates,
                                bool append_to_wal,
                                uint64_t expected_post_fingerprint,
                                bool defer_sync_and_publish) {
  if (updates.empty()) {
    return Status::InvalidArgument("empty update batch");
  }

  // --- graph: validate strictly and apply to the sorted edge list -------
  // (Same semantics and wording as ApplyEdgeUpdates in edge_update.cc,
  // re-implemented over the sorted representation; keep them in
  // lockstep.)
  std::vector<Edge> new_edges = edges_;
  for (size_t i = 0; i < updates.size(); ++i) {
    const EdgeUpdate& update = updates[i];
    if (update.src >= n_ || update.dst >= n_) {
      return Status::OutOfRange(StrFormat(
          "update %zu: edge (%u, %u) leaves the vertex set [0, %u) the "
          "index was built for (adding vertices requires a rebuild)",
          i, update.src, update.dst, n_));
    }
    const Edge edge{update.src, update.dst};
    auto it = std::lower_bound(new_edges.begin(), new_edges.end(), edge,
                               EdgeLess);
    const bool exists = it != new_edges.end() && *it == edge;
    if (update.op == EdgeUpdate::Op::kInsert) {
      if (exists) {
        return Status::InvalidArgument(StrFormat(
            "update %zu: edge (%u, %u) already exists; inserts must add a "
            "new edge",
            i, update.src, update.dst));
      }
      new_edges.insert(it, edge);
    } else {
      if (!exists) {
        return Status::InvalidArgument(StrFormat(
            "update %zu: edge (%u, %u) does not exist; deletes must "
            "remove an existing edge",
            i, update.src, update.dst));
      }
      new_edges.erase(it);
    }
  }
  const uint64_t post_fingerprint = FingerprintEdges(n_, new_edges);
  if (expected_post_fingerprint != 0 &&
      post_fingerprint != expected_post_fingerprint) {
    return Status::ParseError(StrFormat(
        "WAL replay diverged: batch yields graph fingerprint %s, the "
        "record expects %s — the WAL does not belong to this base graph",
        FormatFingerprint(post_fingerprint).c_str(),
        FormatFingerprint(expected_post_fingerprint).c_str()));
  }

  // Write-ahead: the batch must be durable before any serving state
  // changes, so a crash at any later point replays it. Under group commit
  // the append defers its fsync; the group leader syncs once before
  // anything becomes visible.
  if (append_to_wal) {
    WalRecord record;
    record.updates.assign(updates.begin(), updates.end());
    record.post_graph_fingerprint = post_fingerprint;
    OIPSIM_RETURN_IF_ERROR(
        wal_.Append(record, /*sync=*/!defer_sync_and_publish));
    std::lock_guard<std::mutex> records_lock(records_mutex_);
    records_.push_back(std::move(record));
  }

  // In-neighbour CSR of the updated graph — what the re-simulation reads.
  std::vector<uint64_t> new_in_offsets(static_cast<size_t>(n_) + 1, 0);
  for (const Edge& edge : new_edges) ++new_in_offsets[edge.dst + 1];
  for (uint32_t v = 0; v < n_; ++v) {
    new_in_offsets[v + 1] += new_in_offsets[v];
  }
  std::vector<VertexId> new_in_sources(new_edges.size());
  {
    std::vector<uint64_t> cursor(new_in_offsets.begin(),
                                 new_in_offsets.end() - 1);
    for (const Edge& edge : new_edges) {
      new_in_sources[cursor[edge.dst]++] = edge.src;
    }
  }
  auto in_of = [&](VertexId v) {
    return std::span<const VertexId>(
        new_in_sources.data() + new_in_offsets[v],
        new_in_sources.data() + new_in_offsets[v + 1]);
  };

  const WalkStore& base = index_.store();
  const WalkStoreMeta& meta = base.meta();
  const uint32_t R = meta.num_fingerprints;
  const uint32_t L = meta.walk_length;
  // During a group, later batches build on the group's still-unpublished
  // overlay chain, not on what queries currently see.
  const std::shared_ptr<const DeltaOverlay> old =
      defer_sync_and_publish && pending_overlay_ != nullptr
          ? pending_overlay_
          : index_.overlay_snapshot();

  // The vertices whose in-neighbour list changed. Only transitions *out
  // of* these vertices can differ on the updated graph.
  std::vector<VertexId> touched;
  touched.reserve(updates.size());
  for (const EdgeUpdate& update : updates) touched.push_back(update.dst);
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()),
                touched.end());

  // Discovery: every (vertex, fingerprint, step) whose transition is
  // affected. A walk sitting at x after t steps takes its step-(t+1)
  // transition from x's in-list, so Bucket(r, t, x) (merged with the
  // current overlay) lists exactly the walks affected at step t+1; the
  // walk *starting* at a touched vertex is affected at step 1. Keyed
  // (v << 32 | r) so one sort groups by vertex, then fingerprint, with
  // each walk's affected steps ascending — the exact order the
  // re-simulation wants. Slot-major loops keep the 8-or-so binary
  // searches per slot on warm cache lines.
  std::vector<std::pair<uint64_t, uint32_t>> candidates;
  candidates.reserve(1024);
  // A shard index represents out-of-range walks as dead from step 1 and
  // must keep them that way: re-simulating a dead row would revive the
  // vertex into this shard's inverted index and double-count it across
  // the cluster. Bucket-discovered candidates below are in-range by
  // construction (the shard's inverted index only lists its own range).
  const bool range_limited =
      options_.vertex_begin != 0 || options_.vertex_end != 0;
  for (const VertexId x : touched) {
    if (range_limited &&
        (x < options_.vertex_begin || x >= options_.vertex_end)) {
      continue;
    }
    for (uint32_t r = 0; r < R; ++r) {
      candidates.emplace_back(DeltaOverlay::WalkKey(x, r), 1);
    }
  }
  for (uint32_t r = 0; r < R; ++r) {
    for (uint32_t t = 1; t + 1 <= L; ++t) {
      for (const VertexId x : touched) {
        ForEachBucketVertex(base, old.get(), r, t, x,
                            [&](const VertexId v) {
                              candidates.emplace_back(
                                  DeltaOverlay::WalkKey(v, r), t + 1);
                            });
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());

  auto overlay = std::make_shared<DeltaOverlay>();
  overlay->sequence_ = (old == nullptr ? 0 : old->sequence_) + 1;
  overlay->graph_fingerprint_ = post_fingerprint;
  overlay->walk_length_ = L;
  if (old != nullptr) {
    overlay->patches_ = old->patches_;  // shared_ptr values: cheap copy
    overlay->patch_counts_ = old->patch_counts_;
    overlay->deltas_ = old->deltas_;
  }

  // --- re-simulation, one affected walk at a time -----------------------
  BaseRowReader base_reader(base);
  std::vector<SlotEdit> slot_edits;
  slot_edits.reserve(candidates.size() * 2);
  uint64_t resimulated = 0;
  uint64_t changed_walks = 0;
  uint64_t steps_written = 0;
  std::vector<uint32_t> steps;  // affected steps of the current walk
  for (size_t at_candidate = 0; at_candidate < candidates.size();) {
    const uint64_t key = candidates[at_candidate].first;
    steps.clear();
    for (; at_candidate < candidates.size() &&
           candidates[at_candidate].first == key;
         ++at_candidate) {
      const uint32_t t = candidates[at_candidate].second;
      if (steps.empty() || steps.back() != t) steps.push_back(t);
    }
    const auto v = static_cast<VertexId>(key >> 32);
    const auto r = static_cast<uint32_t>(key & 0xffffffffu);
    ++resimulated;

    // Re-simulate from each affected step; once the new position
    // coincides with the current one at some step, the walks are coupled
    // — identical until the *next* affected step, so skip ahead. That
    // convergence is what keeps a patch O(changed steps) instead of
    // O(L) even when a walk brushes a touched vertex late.
    const DeltaOverlay::WalkPatch* prev =
        old == nullptr ? nullptr : old->FindPatch(v, r);
    DeltaOverlay::WalkPatch merged;
    bool any_change = false;
    if (prev == nullptr) {
      // Fresh walk: "current" is the base store itself, so convergence is
      // re-joining the base path — the patch grows only while the new
      // path diverges, and the slot edit doubles as the comparison read.
      merged.t0 = steps[0];
      size_t step_index = 0;
      uint32_t t = steps[0];
      while (true) {
        // Segments are contiguous in the suffix; a converged span between
        // two affected steps back-fills with (equal) base positions.
        while (merged.t0 + merged.suffix.size() < t) {
          merged.suffix.push_back(base_reader.Pos(
              v, r, merged.t0 + static_cast<uint32_t>(merged.suffix.size())));
        }
        uint32_t position =
            t - 1 >= merged.t0 ? merged.suffix[t - 1 - merged.t0]
                               : base_reader.Pos(v, r, t - 1);
        OIPSIM_DCHECK(position != kDead);
        bool converged = false;
        for (; t <= L; ++t) {
          if (position != kDead) {
            const auto in = in_of(position);
            position =
                in.empty()
                    ? kDead
                    : in[CoupledWalkHash(meta.seed, r, t, position) %
                         in.size()];
          }
          ++steps_written;
          const uint32_t base_position = base_reader.Pos(v, r, t);
          if (position == base_position) {
            converged = true;  // re-coupled: identical until next touch
            ++t;
            break;
          }
          slot_edits.push_back(SlotEdit{
              static_cast<uint64_t>(r) * L + (t - 1), v, base_position,
              position});
          merged.suffix.push_back(position);
          any_change = true;
        }
        while (step_index < steps.size() && steps[step_index] < t) {
          ++step_index;
        }
        if (!converged || step_index >= steps.size()) break;
        t = steps[step_index];
      }
      if (any_change) {
        overlay->patches_[key] =
            std::make_shared<DeltaOverlay::WalkPatch>(std::move(merged));
        ++overlay->patch_counts_[v];
      }
    } else {
      // Previously patched walk: "current" is base + previous patch. The
      // merged patch spans from the earliest step either covers, and
      // every simulated step emits an edit (no-ops included — they clear
      // the previous batch's entries for this walk).
      merged.t0 = std::min(prev->t0, steps[0]);
      merged.suffix.resize(L - merged.t0 + 1);
      for (uint32_t t = merged.t0; t <= L; ++t) {
        merged.suffix[t - merged.t0] = prev->Covers(t)
                                           ? prev->Position(t)
                                           : base_reader.Pos(v, r, t);
      }
      size_t step_index = 0;
      uint32_t t = steps[0];
      while (true) {
        uint32_t position = t - 1 >= merged.t0
                                ? merged.suffix[t - 1 - merged.t0]
                                : base_reader.Pos(v, r, t - 1);
        OIPSIM_DCHECK(position != kDead);
        bool converged = false;
        for (; t <= L; ++t) {
          if (position != kDead) {
            const auto in = in_of(position);
            position =
                in.empty()
                    ? kDead
                    : in[CoupledWalkHash(meta.seed, r, t, position) %
                         in.size()];
          }
          ++steps_written;
          uint32_t& current = merged.suffix[t - merged.t0];
          slot_edits.push_back(SlotEdit{
              static_cast<uint64_t>(r) * L + (t - 1), v,
              base_reader.Pos(v, r, t), position});
          if (position == current) {
            converged = true;
            ++t;
            break;
          }
          current = position;
          any_change = true;
        }
        while (step_index < steps.size() && steps[step_index] < t) {
          ++step_index;
        }
        if (!converged || step_index >= steps.size()) break;
        t = steps[step_index];
      }
      // A walk whose merged suffix equals the base store's again vanishes
      // from the overlay entirely (the edits above cleared its entries).
      bool equals_base = true;
      for (uint32_t check = merged.t0; check <= L && equals_base;
           ++check) {
        equals_base = merged.suffix[check - merged.t0] ==
                      base_reader.Pos(v, r, check);
      }
      if (equals_base) {
        overlay->patches_.erase(key);
        auto count = overlay->patch_counts_.find(v);
        if (--count->second == 0) overlay->patch_counts_.erase(count);
      } else {
        overlay->patches_[key] = std::make_shared<DeltaOverlay::WalkPatch>(
            std::move(merged));
      }
    }
    changed_walks += any_change ? 1 : 0;
  }

  // --- fold the edits into per-slot diffs vs. the base store ------------
  // Previous entries of an edited vertex in a slot are replaced by its
  // (base, new) pair; steps before a walk's earliest affected step carry
  // no edit and keep their previous entries. One stable sort groups the
  // flat edit list by slot (stable: a walk edited twice in a slot across
  // merged segments keeps its last state... it cannot be — each walk
  // visits a step once per batch — but stability costs nothing).
  std::stable_sort(slot_edits.begin(), slot_edits.end());
  for (size_t at_edit = 0; at_edit < slot_edits.size();) {
    const uint64_t slot = slot_edits[at_edit].slot;
    const size_t begin = at_edit;
    while (at_edit < slot_edits.size() && slot_edits[at_edit].slot == slot) {
      ++at_edit;
    }
    const std::span<const SlotEdit> edits(slot_edits.data() + begin,
                                          at_edit - begin);
    auto next = std::make_shared<DeltaOverlay::SlotDelta>();
    if (auto it = overlay->deltas_.find(slot);
        it != overlay->deltas_.end()) {
      auto edited = [&edits](VertexId v) {
        for (const SlotEdit& edit : edits) {
          if (edit.vertex == v) return true;
        }
        return false;
      };
      for (const OverlayEntry& entry : it->second->removed) {
        if (!edited(entry.vertex)) next->removed.push_back(entry);
      }
      for (const OverlayEntry& entry : it->second->added) {
        if (!edited(entry.vertex)) next->added.push_back(entry);
      }
    }
    for (const SlotEdit& edit : edits) {
      if (edit.base_position == edit.new_position) continue;
      if (edit.base_position != kDead) {
        next->removed.push_back(
            OverlayEntry{edit.base_position, edit.vertex});
      }
      if (edit.new_position != kDead) {
        next->added.push_back(OverlayEntry{edit.new_position, edit.vertex});
      }
    }
    std::sort(next->removed.begin(), next->removed.end());
    std::sort(next->added.begin(), next->added.end());
    if (next->removed.empty() && next->added.empty()) {
      overlay->deltas_.erase(slot);
    } else {
      overlay->deltas_[slot] = std::move(next);
    }
  }
  overlay->delta_entries_ = 0;
  for (const auto& [slot, delta] : overlay->deltas_) {
    overlay->delta_entries_ += delta->removed.size() + delta->added.size();
  }

  // Publish: one pointer swap; concurrent queries either see the previous
  // overlay or this one, never a mixture. A batch that cancels every
  // patch out still publishes the (empty) overlay: the sequence must stay
  // monotone, or a QueryEngine row cached under an earlier overlay could
  // read as fresh once the counter wrapped back around.
  const uint64_t sequence = overlay->sequence_;
  const uint64_t patched_vertices = overlay->patch_counts_.size();
  const uint64_t patched_walks = overlay->patches_.size();
  const uint64_t changed_slots = overlay->deltas_.size();
  const uint64_t delta_entries = overlay->delta_entries_;
  if (defer_sync_and_publish) {
    pending_overlay_ = std::move(overlay);  // published after the group sync
  } else {
    index_.PublishOverlay(std::move(overlay));
  }
  edges_ = std::move(new_edges);
  in_offsets_ = std::move(new_in_offsets);
  in_sources_ = std::move(new_in_sources);
  graph_fingerprint_ = post_fingerprint;

  // Counters live under their own mutex so the server's inline stats
  // endpoints never block behind a long patch or compaction.
  std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  ++stats_.batches_applied;
  for (const EdgeUpdate& update : updates) {
    if (update.op == EdgeUpdate::Op::kInsert) {
      ++stats_.edges_inserted;
    } else {
      ++stats_.edges_deleted;
    }
  }
  stats_.walks_resimulated += resimulated;
  stats_.walks_changed += changed_walks;
  stats_.steps_resimulated += steps_written;
  stats_.overlay_sequence = sequence;
  stats_.patched_vertices = patched_vertices;
  stats_.patched_walks = patched_walks;
  stats_.changed_slots = changed_slots;
  stats_.delta_entries = delta_entries;
  stats_.graph_edges = edges_.size();
  stats_.current_graph_fingerprint = post_fingerprint;
  stats_.wal_records = wal_.record_count();
  stats_.wal_bytes = wal_.size_bytes();
  stats_.wal_syncs = wal_.sync_count();
  return Status::OK();
}

Status IndexUpdater::Compact(const std::string& path,
                             const WalkIndex::SaveOptions& save,
                             bool reset_wal,
                             const std::string& graph_path) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::shared_ptr<const DeltaOverlay> overlay =
      index_.overlay_snapshot();
  const WalkStore& base = index_.store();
  WalkStoreMeta meta = base.meta();
  meta.graph_fingerprint = graph_fingerprint_;

  // Materialize base + overlay as a flat walk table, exactly what Build()
  // would have produced on the updated graph, and save it through the
  // same writer — byte identity follows.
  const uint32_t n = meta.n;
  const size_t words = base.WalkWords();
  std::vector<uint32_t> walks(words * n);
  std::vector<uint32_t> scratch(words);
  for (VertexId v = 0; v < n; ++v) {
    OIPSIM_RETURN_IF_ERROR(
        MaterializeRow(base, overlay.get(), v, scratch.data()));
    for (size_t word = 0; word < words; ++word) {
      walks[word * n + v] = scratch[word];
    }
  }
  InMemoryWalkStore merged(meta, std::move(walks), /*num_threads=*/1);

  WalkStoreSaveOptions store_save;
  store_save.compress = save.compress;
  const std::string tmp = path + ".tmp";
  OIPSIM_RETURN_IF_ERROR(SaveWalkStore(merged, tmp, store_save));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError(
        StrFormat("cannot move compacted index into place: %s -> %s",
                  tmp.c_str(), path.c_str()));
  }

  if (!graph_path.empty()) {
    // The updated graph must be durable before the WAL forgets how to
    // re-derive it.
    DiGraph::Builder builder(n_);
    for (const Edge& edge : edges_) builder.AddEdge(edge.src, edge.dst);
    const DiGraph graph = std::move(builder).Build();
    const std::string graph_tmp = graph_path + ".tmp";
    OIPSIM_RETURN_IF_ERROR(WriteBinary(graph, graph_tmp));
    if (std::rename(graph_tmp.c_str(), graph_path.c_str()) != 0) {
      std::remove(graph_tmp.c_str());
      return Status::IoError(
          StrFormat("cannot move compacted graph into place: %s -> %s",
                    graph_tmp.c_str(), graph_path.c_str()));
    }
  }

  if (reset_wal) {
    WalBaseIdentity identity;
    identity.n = meta.n;
    identity.num_fingerprints = meta.num_fingerprints;
    identity.walk_length = meta.walk_length;
    identity.seed = meta.seed;
    identity.damping = meta.damping;
    identity.graph_fingerprint = meta.graph_fingerprint;
    OIPSIM_RETURN_IF_ERROR(wal_.Reset(identity));
    {
      std::lock_guard<std::mutex> records_lock(records_mutex_);
      records_.clear();
    }
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    stats_.wal_records = wal_.record_count();
    stats_.wal_bytes = wal_.size_bytes();
  }
  return Status::OK();
}

DiGraph IndexUpdater::CurrentGraph() const {
  std::lock_guard<std::mutex> lock(mutex_);
  DiGraph::Builder builder(n_);
  for (const Edge& edge : edges_) builder.AddEdge(edge.src, edge.dst);
  return std::move(builder).Build();
}

IndexUpdateStats IndexUpdater::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace simrank
