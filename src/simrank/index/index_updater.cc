#include "simrank/index/index_updater.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <span>
#include <unordered_map>
#include <utility>

#include "simrank/common/coupled_hash.h"
#include "simrank/common/stream_hash.h"
#include "simrank/common/string_util.h"
#include "simrank/graph/graph_io.h"

namespace simrank {
namespace {

constexpr uint32_t kDead = WalkStore::kDeadWalk;

bool EdgeLess(const Edge& a, const Edge& b) {
  return a.src != b.src ? a.src < b.src : a.dst < b.dst;
}

/// GraphFingerprint() over the canonical sorted edge list — identical to
/// hashing the DiGraph it builds (same n, m and (src, dst) sequence),
/// without materializing one.
uint64_t FingerprintEdges(uint32_t n, const std::vector<Edge>& edges) {
  StreamHasher hasher;
  hasher.Absorb(n);
  hasher.Absorb(edges.size());
  for (const Edge& edge : edges) {
    hasher.Absorb((static_cast<uint64_t>(edge.src) << 32) | edge.dst);
  }
  return hasher.digest();
}

/// One pending change of vertex `vertex`'s inverted-index entry in slot
/// `slot`: its position in the base store vs. the re-simulated one. kDead
/// on either side means "no entry" (the walk is dead at that step).
/// Collected flat and grouped by one sort — per-slot containers would
/// cost an allocation per touched slot per batch.
struct SlotEdit {
  uint64_t slot = 0;
  VertexId vertex = 0;
  uint32_t base_position = 0;
  uint32_t new_position = 0;

  friend bool operator<(const SlotEdit& a, const SlotEdit& b) {
    return a.slot < b.slot;
  }
};

/// Base-store position reads for the patch path: O(1) against a resident
/// flat table, otherwise one cached segment decode per touched vertex.
class BaseRowReader {
 public:
  explicit BaseRowReader(const WalkStore& store)
      : store_(store),
        flat_(store.FlatWalks()),
        row_(static_cast<size_t>(store.meta().walk_length) + 1) {}

  uint32_t Pos(VertexId v, uint32_t r, uint32_t t) {
    if (flat_ != nullptr) return flat_[store_.FlatSlot(r, t) + v];
    std::vector<uint32_t>& row = cache_[v];
    if (row.empty()) {
      row.resize(store_.WalkWords());
      const Status status = store_.DecodeVertex(v, row.data());
      OIPSIM_CHECK_MSG(status.ok(),
                       "corrupt walk segment while patching: %s",
                       status.ToString().c_str());
    }
    return row[r * row_ + t];
  }

 private:
  const WalkStore& store_;
  const uint32_t* flat_;
  size_t row_;
  std::unordered_map<VertexId, std::vector<uint32_t>> cache_;
};

}  // namespace

IndexUpdater::IndexUpdater(WalkIndex& index, const DiGraph& base_graph,
                           UpdateWal wal)
    : index_(index), wal_(std::move(wal)) {
  n_ = base_graph.n();
  edges_ = base_graph.Edges();  // (src, dst)-sorted, deduped
  graph_fingerprint_ = GraphFingerprint(base_graph);
  in_offsets_.assign(static_cast<size_t>(n_) + 1, 0);
  for (const Edge& edge : edges_) ++in_offsets_[edge.dst + 1];
  for (uint32_t v = 0; v < n_; ++v) in_offsets_[v + 1] += in_offsets_[v];
  in_sources_.resize(edges_.size());
  std::vector<uint64_t> cursor(in_offsets_.begin(), in_offsets_.end() - 1);
  for (const Edge& edge : edges_) {
    in_sources_[cursor[edge.dst]++] = edge.src;  // src-ascending per dst
  }
}

Result<std::unique_ptr<IndexUpdater>> IndexUpdater::Open(
    WalkIndex& index, DiGraph base_graph,
    const IndexUpdaterOptions& options) {
  if (options.wal_path.empty()) {
    return Status::InvalidArgument(
        "IndexUpdaterOptions::wal_path is required: updates are only "
        "accepted write-ahead");
  }
  OIPSIM_RETURN_IF_ERROR(index.ValidateGraph(base_graph));
  if (index.overlay_sequence() != 0) {
    return Status::InvalidArgument(
        "index already carries an overlay; one IndexUpdater per index");
  }

  WalBaseIdentity identity;
  identity.n = index.n();
  identity.num_fingerprints = index.options().num_fingerprints;
  identity.walk_length = index.options().walk_length;
  identity.seed = index.options().seed;
  identity.damping = index.options().damping;
  identity.graph_fingerprint = index.graph_fingerprint();
  UpdateWal::Options wal_options;
  wal_options.sync_every_append = options.sync_wal;
  auto opened = UpdateWal::Open(options.wal_path, identity, wal_options);
  if (!opened.ok()) return opened.status();

  std::unique_ptr<IndexUpdater> updater(
      new IndexUpdater(index, base_graph, std::move(opened->wal)));
  {
    std::lock_guard<std::mutex> stats_lock(updater->stats_mutex_);
    updater->stats_.wal_truncated_bytes = opened->truncated_bytes;
    updater->stats_.graph_edges = updater->edges_.size();
    updater->stats_.current_graph_fingerprint =
        updater->graph_fingerprint_;
    updater->stats_.wal_records = updater->wal_.record_count();
    updater->stats_.wal_bytes = updater->wal_.size_bytes();
  }
  {
    std::lock_guard<std::mutex> lock(updater->mutex_);
    for (const WalRecord& record : opened->records) {
      OIPSIM_RETURN_IF_ERROR(updater->ApplyBatch(
          record.updates, /*append_to_wal=*/false,
          record.post_graph_fingerprint));
      std::lock_guard<std::mutex> stats_lock(updater->stats_mutex_);
      ++updater->stats_.batches_replayed;
    }
  }
  return updater;
}

Status IndexUpdater::ApplyUpdates(std::span<const EdgeUpdate> updates) {
  std::lock_guard<std::mutex> lock(mutex_);
  return ApplyBatch(updates, /*append_to_wal=*/true,
                    /*expected_post_fingerprint=*/0);
}

Status IndexUpdater::ApplyBatch(std::span<const EdgeUpdate> updates,
                                bool append_to_wal,
                                uint64_t expected_post_fingerprint) {
  if (updates.empty()) {
    return Status::InvalidArgument("empty update batch");
  }

  // --- graph: validate strictly and apply to the sorted edge list -------
  // (Same semantics and wording as ApplyEdgeUpdates in edge_update.cc,
  // re-implemented over the sorted representation; keep them in
  // lockstep.)
  std::vector<Edge> new_edges = edges_;
  for (size_t i = 0; i < updates.size(); ++i) {
    const EdgeUpdate& update = updates[i];
    if (update.src >= n_ || update.dst >= n_) {
      return Status::OutOfRange(StrFormat(
          "update %zu: edge (%u, %u) leaves the vertex set [0, %u) the "
          "index was built for (adding vertices requires a rebuild)",
          i, update.src, update.dst, n_));
    }
    const Edge edge{update.src, update.dst};
    auto it = std::lower_bound(new_edges.begin(), new_edges.end(), edge,
                               EdgeLess);
    const bool exists = it != new_edges.end() && *it == edge;
    if (update.op == EdgeUpdate::Op::kInsert) {
      if (exists) {
        return Status::InvalidArgument(StrFormat(
            "update %zu: edge (%u, %u) already exists; inserts must add a "
            "new edge",
            i, update.src, update.dst));
      }
      new_edges.insert(it, edge);
    } else {
      if (!exists) {
        return Status::InvalidArgument(StrFormat(
            "update %zu: edge (%u, %u) does not exist; deletes must "
            "remove an existing edge",
            i, update.src, update.dst));
      }
      new_edges.erase(it);
    }
  }
  const uint64_t post_fingerprint = FingerprintEdges(n_, new_edges);
  if (expected_post_fingerprint != 0 &&
      post_fingerprint != expected_post_fingerprint) {
    return Status::ParseError(StrFormat(
        "WAL replay diverged: batch yields graph fingerprint %s, the "
        "record expects %s — the WAL does not belong to this base graph",
        FormatFingerprint(post_fingerprint).c_str(),
        FormatFingerprint(expected_post_fingerprint).c_str()));
  }

  // Write-ahead: the batch must be durable before any serving state
  // changes, so a crash at any later point replays it.
  if (append_to_wal) {
    WalRecord record;
    record.updates.assign(updates.begin(), updates.end());
    record.post_graph_fingerprint = post_fingerprint;
    OIPSIM_RETURN_IF_ERROR(wal_.Append(record));
  }

  // In-neighbour CSR of the updated graph — what the re-simulation reads.
  std::vector<uint64_t> new_in_offsets(static_cast<size_t>(n_) + 1, 0);
  for (const Edge& edge : new_edges) ++new_in_offsets[edge.dst + 1];
  for (uint32_t v = 0; v < n_; ++v) {
    new_in_offsets[v + 1] += new_in_offsets[v];
  }
  std::vector<VertexId> new_in_sources(new_edges.size());
  {
    std::vector<uint64_t> cursor(new_in_offsets.begin(),
                                 new_in_offsets.end() - 1);
    for (const Edge& edge : new_edges) {
      new_in_sources[cursor[edge.dst]++] = edge.src;
    }
  }
  auto in_of = [&](VertexId v) {
    return std::span<const VertexId>(
        new_in_sources.data() + new_in_offsets[v],
        new_in_sources.data() + new_in_offsets[v + 1]);
  };

  const WalkStore& base = index_.store();
  const WalkStoreMeta& meta = base.meta();
  const uint32_t R = meta.num_fingerprints;
  const uint32_t L = meta.walk_length;
  const std::shared_ptr<const DeltaOverlay> old = index_.overlay_snapshot();

  // The vertices whose in-neighbour list changed. Only transitions *out
  // of* these vertices can differ on the updated graph.
  std::vector<VertexId> touched;
  touched.reserve(updates.size());
  for (const EdgeUpdate& update : updates) touched.push_back(update.dst);
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()),
                touched.end());

  // Discovery: every (vertex, fingerprint, step) whose transition is
  // affected. A walk sitting at x after t steps takes its step-(t+1)
  // transition from x's in-list, so Bucket(r, t, x) (merged with the
  // current overlay) lists exactly the walks affected at step t+1; the
  // walk *starting* at a touched vertex is affected at step 1. Keyed
  // (v << 32 | r) so one sort groups by vertex, then fingerprint, with
  // each walk's affected steps ascending — the exact order the
  // re-simulation wants. Slot-major loops keep the 8-or-so binary
  // searches per slot on warm cache lines.
  std::vector<std::pair<uint64_t, uint32_t>> candidates;
  candidates.reserve(1024);
  for (const VertexId x : touched) {
    for (uint32_t r = 0; r < R; ++r) {
      candidates.emplace_back(DeltaOverlay::WalkKey(x, r), 1);
    }
  }
  for (uint32_t r = 0; r < R; ++r) {
    for (uint32_t t = 1; t + 1 <= L; ++t) {
      for (const VertexId x : touched) {
        ForEachBucketVertex(base, old.get(), r, t, x,
                            [&](const VertexId v) {
                              candidates.emplace_back(
                                  DeltaOverlay::WalkKey(v, r), t + 1);
                            });
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());

  auto overlay = std::make_shared<DeltaOverlay>();
  overlay->sequence_ = (old == nullptr ? 0 : old->sequence_) + 1;
  overlay->graph_fingerprint_ = post_fingerprint;
  overlay->walk_length_ = L;
  if (old != nullptr) {
    overlay->patches_ = old->patches_;  // shared_ptr values: cheap copy
    overlay->patch_counts_ = old->patch_counts_;
    overlay->deltas_ = old->deltas_;
  }

  // --- re-simulation, one affected walk at a time -----------------------
  BaseRowReader base_reader(base);
  std::vector<SlotEdit> slot_edits;
  slot_edits.reserve(candidates.size() * 2);
  uint64_t resimulated = 0;
  uint64_t changed_walks = 0;
  uint64_t steps_written = 0;
  std::vector<uint32_t> steps;  // affected steps of the current walk
  for (size_t at_candidate = 0; at_candidate < candidates.size();) {
    const uint64_t key = candidates[at_candidate].first;
    steps.clear();
    for (; at_candidate < candidates.size() &&
           candidates[at_candidate].first == key;
         ++at_candidate) {
      const uint32_t t = candidates[at_candidate].second;
      if (steps.empty() || steps.back() != t) steps.push_back(t);
    }
    const auto v = static_cast<VertexId>(key >> 32);
    const auto r = static_cast<uint32_t>(key & 0xffffffffu);
    ++resimulated;

    // Re-simulate from each affected step; once the new position
    // coincides with the current one at some step, the walks are coupled
    // — identical until the *next* affected step, so skip ahead. That
    // convergence is what keeps a patch O(changed steps) instead of
    // O(L) even when a walk brushes a touched vertex late.
    const DeltaOverlay::WalkPatch* prev =
        old == nullptr ? nullptr : old->FindPatch(v, r);
    DeltaOverlay::WalkPatch merged;
    bool any_change = false;
    if (prev == nullptr) {
      // Fresh walk: "current" is the base store itself, so convergence is
      // re-joining the base path — the patch grows only while the new
      // path diverges, and the slot edit doubles as the comparison read.
      merged.t0 = steps[0];
      size_t step_index = 0;
      uint32_t t = steps[0];
      while (true) {
        // Segments are contiguous in the suffix; a converged span between
        // two affected steps back-fills with (equal) base positions.
        while (merged.t0 + merged.suffix.size() < t) {
          merged.suffix.push_back(base_reader.Pos(
              v, r, merged.t0 + static_cast<uint32_t>(merged.suffix.size())));
        }
        uint32_t position =
            t - 1 >= merged.t0 ? merged.suffix[t - 1 - merged.t0]
                               : base_reader.Pos(v, r, t - 1);
        OIPSIM_DCHECK(position != kDead);
        bool converged = false;
        for (; t <= L; ++t) {
          if (position != kDead) {
            const auto in = in_of(position);
            position =
                in.empty()
                    ? kDead
                    : in[CoupledWalkHash(meta.seed, r, t, position) %
                         in.size()];
          }
          ++steps_written;
          const uint32_t base_position = base_reader.Pos(v, r, t);
          if (position == base_position) {
            converged = true;  // re-coupled: identical until next touch
            ++t;
            break;
          }
          slot_edits.push_back(SlotEdit{
              static_cast<uint64_t>(r) * L + (t - 1), v, base_position,
              position});
          merged.suffix.push_back(position);
          any_change = true;
        }
        while (step_index < steps.size() && steps[step_index] < t) {
          ++step_index;
        }
        if (!converged || step_index >= steps.size()) break;
        t = steps[step_index];
      }
      if (any_change) {
        overlay->patches_[key] =
            std::make_shared<DeltaOverlay::WalkPatch>(std::move(merged));
        ++overlay->patch_counts_[v];
      }
    } else {
      // Previously patched walk: "current" is base + previous patch. The
      // merged patch spans from the earliest step either covers, and
      // every simulated step emits an edit (no-ops included — they clear
      // the previous batch's entries for this walk).
      merged.t0 = std::min(prev->t0, steps[0]);
      merged.suffix.resize(L - merged.t0 + 1);
      for (uint32_t t = merged.t0; t <= L; ++t) {
        merged.suffix[t - merged.t0] = prev->Covers(t)
                                           ? prev->Position(t)
                                           : base_reader.Pos(v, r, t);
      }
      size_t step_index = 0;
      uint32_t t = steps[0];
      while (true) {
        uint32_t position = t - 1 >= merged.t0
                                ? merged.suffix[t - 1 - merged.t0]
                                : base_reader.Pos(v, r, t - 1);
        OIPSIM_DCHECK(position != kDead);
        bool converged = false;
        for (; t <= L; ++t) {
          if (position != kDead) {
            const auto in = in_of(position);
            position =
                in.empty()
                    ? kDead
                    : in[CoupledWalkHash(meta.seed, r, t, position) %
                         in.size()];
          }
          ++steps_written;
          uint32_t& current = merged.suffix[t - merged.t0];
          slot_edits.push_back(SlotEdit{
              static_cast<uint64_t>(r) * L + (t - 1), v,
              base_reader.Pos(v, r, t), position});
          if (position == current) {
            converged = true;
            ++t;
            break;
          }
          current = position;
          any_change = true;
        }
        while (step_index < steps.size() && steps[step_index] < t) {
          ++step_index;
        }
        if (!converged || step_index >= steps.size()) break;
        t = steps[step_index];
      }
      // A walk whose merged suffix equals the base store's again vanishes
      // from the overlay entirely (the edits above cleared its entries).
      bool equals_base = true;
      for (uint32_t check = merged.t0; check <= L && equals_base;
           ++check) {
        equals_base = merged.suffix[check - merged.t0] ==
                      base_reader.Pos(v, r, check);
      }
      if (equals_base) {
        overlay->patches_.erase(key);
        auto count = overlay->patch_counts_.find(v);
        if (--count->second == 0) overlay->patch_counts_.erase(count);
      } else {
        overlay->patches_[key] = std::make_shared<DeltaOverlay::WalkPatch>(
            std::move(merged));
      }
    }
    changed_walks += any_change ? 1 : 0;
  }

  // --- fold the edits into per-slot diffs vs. the base store ------------
  // Previous entries of an edited vertex in a slot are replaced by its
  // (base, new) pair; steps before a walk's earliest affected step carry
  // no edit and keep their previous entries. One stable sort groups the
  // flat edit list by slot (stable: a walk edited twice in a slot across
  // merged segments keeps its last state... it cannot be — each walk
  // visits a step once per batch — but stability costs nothing).
  std::stable_sort(slot_edits.begin(), slot_edits.end());
  for (size_t at_edit = 0; at_edit < slot_edits.size();) {
    const uint64_t slot = slot_edits[at_edit].slot;
    const size_t begin = at_edit;
    while (at_edit < slot_edits.size() && slot_edits[at_edit].slot == slot) {
      ++at_edit;
    }
    const std::span<const SlotEdit> edits(slot_edits.data() + begin,
                                          at_edit - begin);
    auto next = std::make_shared<DeltaOverlay::SlotDelta>();
    if (auto it = overlay->deltas_.find(slot);
        it != overlay->deltas_.end()) {
      auto edited = [&edits](VertexId v) {
        for (const SlotEdit& edit : edits) {
          if (edit.vertex == v) return true;
        }
        return false;
      };
      for (const OverlayEntry& entry : it->second->removed) {
        if (!edited(entry.vertex)) next->removed.push_back(entry);
      }
      for (const OverlayEntry& entry : it->second->added) {
        if (!edited(entry.vertex)) next->added.push_back(entry);
      }
    }
    for (const SlotEdit& edit : edits) {
      if (edit.base_position == edit.new_position) continue;
      if (edit.base_position != kDead) {
        next->removed.push_back(
            OverlayEntry{edit.base_position, edit.vertex});
      }
      if (edit.new_position != kDead) {
        next->added.push_back(OverlayEntry{edit.new_position, edit.vertex});
      }
    }
    std::sort(next->removed.begin(), next->removed.end());
    std::sort(next->added.begin(), next->added.end());
    if (next->removed.empty() && next->added.empty()) {
      overlay->deltas_.erase(slot);
    } else {
      overlay->deltas_[slot] = std::move(next);
    }
  }
  overlay->delta_entries_ = 0;
  for (const auto& [slot, delta] : overlay->deltas_) {
    overlay->delta_entries_ += delta->removed.size() + delta->added.size();
  }

  // Publish: one pointer swap; concurrent queries either see the previous
  // overlay or this one, never a mixture. A batch that cancels every
  // patch out still publishes the (empty) overlay: the sequence must stay
  // monotone, or a QueryEngine row cached under an earlier overlay could
  // read as fresh once the counter wrapped back around.
  const uint64_t sequence = overlay->sequence_;
  const uint64_t patched_vertices = overlay->patch_counts_.size();
  const uint64_t patched_walks = overlay->patches_.size();
  const uint64_t changed_slots = overlay->deltas_.size();
  const uint64_t delta_entries = overlay->delta_entries_;
  index_.PublishOverlay(std::move(overlay));
  edges_ = std::move(new_edges);
  in_offsets_ = std::move(new_in_offsets);
  in_sources_ = std::move(new_in_sources);
  graph_fingerprint_ = post_fingerprint;

  // Counters live under their own mutex so the server's inline stats
  // endpoints never block behind a long patch or compaction.
  std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  ++stats_.batches_applied;
  for (const EdgeUpdate& update : updates) {
    if (update.op == EdgeUpdate::Op::kInsert) {
      ++stats_.edges_inserted;
    } else {
      ++stats_.edges_deleted;
    }
  }
  stats_.walks_resimulated += resimulated;
  stats_.walks_changed += changed_walks;
  stats_.steps_resimulated += steps_written;
  stats_.overlay_sequence = sequence;
  stats_.patched_vertices = patched_vertices;
  stats_.patched_walks = patched_walks;
  stats_.changed_slots = changed_slots;
  stats_.delta_entries = delta_entries;
  stats_.graph_edges = edges_.size();
  stats_.current_graph_fingerprint = post_fingerprint;
  stats_.wal_records = wal_.record_count();
  stats_.wal_bytes = wal_.size_bytes();
  return Status::OK();
}

Status IndexUpdater::Compact(const std::string& path,
                             const WalkIndex::SaveOptions& save,
                             bool reset_wal,
                             const std::string& graph_path) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::shared_ptr<const DeltaOverlay> overlay =
      index_.overlay_snapshot();
  const WalkStore& base = index_.store();
  WalkStoreMeta meta = base.meta();
  meta.graph_fingerprint = graph_fingerprint_;

  // Materialize base + overlay as a flat walk table, exactly what Build()
  // would have produced on the updated graph, and save it through the
  // same writer — byte identity follows.
  const uint32_t n = meta.n;
  const size_t words = base.WalkWords();
  std::vector<uint32_t> walks(words * n);
  std::vector<uint32_t> scratch(words);
  for (VertexId v = 0; v < n; ++v) {
    OIPSIM_RETURN_IF_ERROR(
        MaterializeRow(base, overlay.get(), v, scratch.data()));
    for (size_t word = 0; word < words; ++word) {
      walks[word * n + v] = scratch[word];
    }
  }
  InMemoryWalkStore merged(meta, std::move(walks), /*num_threads=*/1);

  WalkStoreSaveOptions store_save;
  store_save.compress = save.compress;
  const std::string tmp = path + ".tmp";
  OIPSIM_RETURN_IF_ERROR(SaveWalkStore(merged, tmp, store_save));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError(
        StrFormat("cannot move compacted index into place: %s -> %s",
                  tmp.c_str(), path.c_str()));
  }

  if (!graph_path.empty()) {
    // The updated graph must be durable before the WAL forgets how to
    // re-derive it.
    DiGraph::Builder builder(n_);
    for (const Edge& edge : edges_) builder.AddEdge(edge.src, edge.dst);
    const DiGraph graph = std::move(builder).Build();
    const std::string graph_tmp = graph_path + ".tmp";
    OIPSIM_RETURN_IF_ERROR(WriteBinary(graph, graph_tmp));
    if (std::rename(graph_tmp.c_str(), graph_path.c_str()) != 0) {
      std::remove(graph_tmp.c_str());
      return Status::IoError(
          StrFormat("cannot move compacted graph into place: %s -> %s",
                    graph_tmp.c_str(), graph_path.c_str()));
    }
  }

  if (reset_wal) {
    WalBaseIdentity identity;
    identity.n = meta.n;
    identity.num_fingerprints = meta.num_fingerprints;
    identity.walk_length = meta.walk_length;
    identity.seed = meta.seed;
    identity.damping = meta.damping;
    identity.graph_fingerprint = meta.graph_fingerprint;
    OIPSIM_RETURN_IF_ERROR(wal_.Reset(identity));
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    stats_.wal_records = wal_.record_count();
    stats_.wal_bytes = wal_.size_bytes();
  }
  return Status::OK();
}

DiGraph IndexUpdater::CurrentGraph() const {
  std::lock_guard<std::mutex> lock(mutex_);
  DiGraph::Builder builder(n_);
  for (const Edge& edge : edges_) builder.AddEdge(edge.src, edge.dst);
  return std::move(builder).Build();
}

IndexUpdateStats IndexUpdater::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace simrank
