// Persistent fingerprint index for single-source / top-k SimRank serving.
//
// All-pairs engines (core/) cannot serve point queries on large graphs:
// their O(n²) score matrix does not fit, and recomputation per query is far
// too slow. Following the fingerprint-index line of work (Fogaras & Rácz,
// and more recently SLING / ProbeSim), WalkIndex precomputes, for every
// vertex, `num_fingerprints` coupled reverse random walks of length
// `walk_length`. A pair estimate is then E[C^τ] over the stored walks,
// where τ is the first time the two walks meet — O(R·L) per pair,
// independent of the graph's edge count. Single-source rows are served
// through the per-(fingerprint, step) inverted position index of the
// storage layer: accumulation touches only the vertices whose walk
// actually coincides with the query's at some slot (output-sensitive,
// ProbeSim-style), yet produces bitwise-identical scores to the full
// O(R·L·n) row scan, which remains available for verification.
//
// The index is built once (in parallel across a thread pool; each
// fingerprint is seeded deterministically, so the result is bit-identical
// for any thread count) and serialized in the versioned v2 segmented
// format of index/walk_store.h. Serving picks a storage backend per
// deployment: fully resident (InMemoryWalkStore, fastest) or mmap-backed
// (MmapWalkStore — open cost and resident set are O(header + directory),
// payload pages fault in on demand). The walks are coupled through
// simrank::CoupledWalkHash — the same function the on-the-fly Monte-Carlo
// estimator uses — so both sample identical walk distributions.
#ifndef OIPSIM_SIMRANK_INDEX_WALK_INDEX_H_
#define OIPSIM_SIMRANK_INDEX_WALK_INDEX_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "simrank/common/status.h"
#include "simrank/core/options.h"
#include "simrank/graph/digraph.h"
#include "simrank/index/delta_overlay.h"
#include "simrank/index/walk_store.h"

namespace simrank {

/// Build- and estimate-time parameters of the walk index.
struct WalkIndexOptions {
  /// Independent walk sets per vertex. Estimator standard error shrinks as
  /// 1/sqrt(num_fingerprints) (Hoeffding).
  uint32_t num_fingerprints = 256;
  /// Walk truncation length; meetings beyond it contribute 0, biasing each
  /// estimate down by at most C^(walk_length+1)/(1-C). Capped at
  /// kMaxWalkLength (a format limit; see walk_store.h).
  uint32_t walk_length = 12;
  /// SimRank damping factor C.
  double damping = 0.6;
  /// Root seed; fingerprint r derives all its steps from (seed, r), so the
  /// index content is independent of build parallelism.
  uint64_t seed = 7;
  /// Build-time worker threads; 0 means hardware concurrency. Not part of
  /// the serialized index.
  uint32_t num_threads = 0;

  bool Valid() const {
    return num_fingerprints > 0 && walk_length > 0 &&
           walk_length <= kMaxWalkLength && damping > 0.0 && damping < 1.0;
  }

  /// Derives index options from the shared SimRank model options: damping
  /// and the stochastic-path seed carry over, everything else keeps its
  /// default. This is how callers configured for the all-pairs engines
  /// (e.g. the CLI) hand their model parameters to the index.
  static WalkIndexOptions FromSimRank(const SimRankOptions& simrank) {
    WalkIndexOptions options;
    options.damping = simrank.damping;
    options.seed = simrank.seed;
    return options;
  }

  /// Derives index options from a target accuracy instead of raw knobs:
  /// with probability at least 1 - delta, each pair estimate deviates from
  /// the exact score by at most `eps`. The error budget is split evenly —
  /// `num_fingerprints` comes from inverting the Hoeffding bound
  ///   P(|est - E est| >= eps/2) <= 2·exp(-2·R·(eps/2)²) <= delta
  ///     =>  R = ⌈2·ln(2/delta)/eps²⌉,
  /// and `walk_length` is the smallest L whose truncation bias
  /// C^(L+1)/(1-C) is at most eps/2. Damping and seed carry over from
  /// `simrank` exactly as in FromSimRank. Requires eps in (0, 1) and
  /// delta in (0, 1); invalid inputs — and targets that cannot be
  /// provisioned (R beyond uint32, or damping so close to 1 that no
  /// reasonable L meets the bias budget) — yield options with
  /// Valid() == false rather than an index that silently misses the
  /// guarantee.
  static WalkIndexOptions FromAccuracy(double eps, double delta = 0.01,
                                       const SimRankOptions& simrank = {});
};

/// Fingerprint index over one graph. The storage backend is immutable;
/// dynamic edge updates are served through a DeltaOverlay published by an
/// IndexUpdater (PublishOverlay), swapped RCU-style so the index stays
/// thread-safe for concurrent reads — including reads concurrent with a
/// publish. Move-only (it owns its storage backend).
class WalkIndex {
 public:
  /// Sentinel position of a walk that left a vertex with no in-neighbours.
  static constexpr uint32_t kDeadWalk = WalkStore::kDeadWalk;

  /// Storage backend selection for Load.
  struct LoadOptions {
    /// Serve straight from the file via MmapWalkStore: open reads only the
    /// header and segment directory, the payload pages in on demand.
    /// Payload integrity is then enforced per decode (bounds checks)
    /// instead of a whole-file checksum at open; corruption detected
    /// mid-serve is a fatal checked error, so pre-validate files from
    /// untrusted storage with store().VerifyPayload() before serving.
    /// The full-row scan path (EstimateSingleSourceScan) is unavailable.
    /// false loads and fully verifies everything into RAM — v1's serving
    /// behavior.
    bool use_mmap = false;
    /// Worker threads for the in-memory backend's segment decode (the
    /// dominant cold-open cost); 0 means hardware concurrency. The loaded
    /// store is bitwise identical for any value. Ignored by mmap.
    uint32_t num_threads = 0;
  };

  /// v2 serialization knobs; see WalkStoreSaveOptions.
  struct SaveOptions {
    /// Delta+varint-compress the per-vertex walk segments.
    bool compress = false;
  };

  /// Builds the index for `graph`. Deterministic in `options.seed`
  /// regardless of `options.num_threads`.
  static Result<WalkIndex> Build(const DiGraph& graph,
                                 const WalkIndexOptions& options);

  /// Opens an index previously written by Save through the backend `load`
  /// selects. Validation errors are descriptive: a v1 or unknown-version
  /// file names the version found and the one supported, truncation names
  /// the offset the data stops at. The overload without options uses the
  /// fully-verifying in-memory backend.
  static Result<WalkIndex> Load(const std::string& path,
                                const LoadOptions& load);
  static Result<WalkIndex> Load(const std::string& path) {
    return Load(path, LoadOptions());
  }

  /// Writes the versioned v2 binary format. Saving the same index twice
  /// produces byte-identical files, whatever the backend. The overload
  /// without options writes uncompressed segments.
  Status Save(const std::string& path, const SaveOptions& save) const;
  Status Save(const std::string& path) const {
    return Save(path, SaveOptions());
  }

  /// Verifies the index was built from `graph` (vertex count and structural
  /// fingerprint, see GraphFingerprint).
  Status ValidateGraph(const DiGraph& graph) const;

  /// Estimate of s(a, b); exactly 1 for a == b. Both ids must be < n().
  /// The no-overlay overload snapshots the published overlay itself; the
  /// explicit overload serves against exactly `overlay` (nullptr = base),
  /// which is how a QueryEngine pins a whole row to one overlay version.
  double EstimatePair(VertexId a, VertexId b) const {
    return EstimatePair(a, b, overlay_snapshot().get());
  }
  double EstimatePair(VertexId a, VertexId b,
                      const DeltaOverlay* overlay) const;

  /// Estimates the full row s(v, ·) through the inverted position index:
  /// per (fingerprint, step) slot, only the vertices whose walk sits at
  /// the query walk's position are touched — O(R·L·log n + output) versus
  /// the scan's O(R·L·n) — and the result is bitwise identical to
  /// EstimateSingleSourceScan and to n EstimatePair calls. With an overlay
  /// (published or passed explicitly) the patched walks and slot diffs are
  /// merged in, and the row is bitwise identical to what an index rebuilt
  /// on the updated graph would serve.
  std::vector<double> EstimateSingleSource(VertexId v) const {
    return EstimateSingleSource(v, overlay_snapshot().get());
  }
  std::vector<double> EstimateSingleSource(
      VertexId v, const DeltaOverlay* overlay) const;

  /// Cross-shard variants: the query vertex's walk row arrives fully
  /// materialized (base + overlay merged by its owning shard,
  /// MaterializeRow layout: row[r * (L + 1) + t]) instead of being read
  /// from this index's store. Accumulation order and arithmetic match the
  /// corresponding local estimators exactly, so on a shard index whose
  /// local rows cover a vertex range the results are bitwise equal to the
  /// single-node answer restricted to that range. `v` is only used for
  /// the diagonal (result[v] = 1, never accumulated); `a` must differ
  /// from `b` in the pair variant (equal ids never cross shards — the
  /// owner serves them locally).
  double EstimatePairWithRow(std::span<const uint32_t> row_a, VertexId b,
                             const DeltaOverlay* overlay) const;
  std::vector<double> EstimateSingleSourceWithRow(
      VertexId v, std::span<const uint32_t> row,
      const DeltaOverlay* overlay) const;

  /// Materializes v's full walk row — base positions with `overlay`'s
  /// patches merged — in the layout the WithRow estimators consume:
  /// row[r * (L + 1) + t], with row[r * (L + 1)] == v. This is what a
  /// shard ships to its peers for a cross-shard query.
  std::vector<uint32_t> MaterializeRow(VertexId v,
                                       const DeltaOverlay* overlay) const;

  /// The pre-v2 full-row scan over the flat walk table, kept as the
  /// reference implementation the inverted path is validated against
  /// (overlay-aware like the inverted path, so the two stay comparable
  /// under updates). Requires a backend with resident walks
  /// (has_resident_walks()).
  std::vector<double> EstimateSingleSourceScan(VertexId v) const {
    return EstimateSingleSourceScan(v, overlay_snapshot().get());
  }
  std::vector<double> EstimateSingleSourceScan(
      VertexId v, const DeltaOverlay* overlay) const;

  /// Publishes `overlay` as the served patch set (nullptr reverts to the
  /// base store). RCU-style: in-flight queries keep the snapshot they
  /// started with; new queries see the new overlay. Called by an
  /// IndexUpdater after it has fully built the overlay — readers never
  /// observe a half-applied batch.
  void PublishOverlay(std::shared_ptr<const DeltaOverlay> overlay);

  /// The currently published overlay (nullptr when serving the base).
  std::shared_ptr<const DeltaOverlay> overlay_snapshot() const;

  /// Sequence number of the published overlay; 0 when serving the base.
  /// Monotone across PublishOverlay calls — the staleness stamp for
  /// cached rows.
  uint64_t overlay_sequence() const {
    auto overlay = overlay_snapshot();
    return overlay == nullptr ? 0 : overlay->sequence();
  }

  /// True when the backend keeps the flat walk table in RAM (in-memory
  /// backend; false for mmap), enabling EstimateSingleSourceScan.
  bool has_resident_walks() const {
    return store_->FlatWalks() != nullptr;
  }

  uint32_t n() const { return store_->meta().n; }
  const WalkIndexOptions& options() const { return options_; }
  uint64_t graph_fingerprint() const {
    return store_->meta().graph_fingerprint;
  }
  /// Bytes the backing store keeps resident in RAM (flat table plus
  /// inverted index for the in-memory backend; header/directory pages for
  /// mmap).
  uint64_t SizeBytes() const { return store_->ResidentBytes(); }

  /// The storage backend this index was built or loaded with. Estimators
  /// do not read it directly — they resolve through ServingStore, because
  /// a background compaction can retarget serving to a merged store
  /// carried by the published overlay. Still the right store for Save,
  /// backend diagnostics and prefetch hints (compaction preserves the
  /// backend's residency characteristics).
  const WalkStore& store() const { return *store_; }

  /// The store `overlay` is expressed against: its rebased (compacted)
  /// store when a background compaction published one through it
  /// (DeltaOverlay::rebased_store), the load/build-time base store
  /// otherwise. Resolving per overlay snapshot is what lets one RCU
  /// pointer swap hand queries a coherent (store, overlay) pair — readers
  /// never observe a merged store paired with patches expressed against
  /// the old base, or vice versa.
  const WalkStore& ServingStore(const DeltaOverlay* overlay) const {
    return overlay != nullptr && overlay->rebased_store() != nullptr
               ? *overlay->rebased_store()
               : *store_;
  }

 private:
  WalkIndex() = default;

  /// Wires an opened store into a servable index (damping powers, options
  /// mirror).
  static WalkIndex FromStore(std::unique_ptr<const WalkStore> store);

  /// Fills damping_powers_ from options_. Called after Build and Load.
  void PrecomputeDampingPowers();

  /// The mutable overlay slot, boxed on the heap so the index itself stays
  /// movable. The mutex guards only the shared_ptr swap/copy — held for
  /// nanoseconds per query; overlay contents are immutable.
  /// (std::atomic<std::shared_ptr> would make the snapshot wait-free, but
  /// libstdc++'s lock-bit implementation is not ThreadSanitizer-clean on
  /// the toolchains the TSan CI job runs, so the mutex stays until that
  /// is.)
  struct OverlaySlot {
    mutable std::mutex mutex;
    std::shared_ptr<const DeltaOverlay> current;
  };

  std::unique_ptr<const WalkStore> store_;
  std::shared_ptr<OverlaySlot> overlay_slot_;
  /// damping_powers_[t] = pow(damping, t); derived, not serialized. All
  /// estimators read this one table so their results agree bit-for-bit.
  std::vector<double> damping_powers_;
  /// Mirror of the store's persisted meta (num_threads keeps its default;
  /// it is a build-time knob and not serialized).
  WalkIndexOptions options_;
};

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_INDEX_WALK_INDEX_H_
