// Persistent fingerprint index for single-source / top-k SimRank serving.
//
// All-pairs engines (core/) cannot serve point queries on large graphs:
// their O(n²) score matrix does not fit, and recomputation per query is far
// too slow. Following the fingerprint-index line of work (Fogaras & Rácz,
// and more recently SLING / ProbeSim), WalkIndex precomputes, for every
// vertex, `num_fingerprints` coupled reverse random walks of length
// `walk_length`. A pair estimate is then E[C^τ] over the stored walks,
// where τ is the first time the two walks meet — O(R·L) per pair and
// O(R·L·n) per single-source row, independent of the graph's edge count.
//
// The index is built once (in parallel across a thread pool; each
// fingerprint is seeded deterministically, so the result is bit-identical
// for any thread count), serialized to disk in a versioned binary format,
// and memory-mapped-style loaded for serving. The walks are coupled through
// simrank::CoupledWalkHash — the same function the on-the-fly Monte-Carlo
// estimator uses — so both sample identical walk distributions.
#ifndef OIPSIM_SIMRANK_INDEX_WALK_INDEX_H_
#define OIPSIM_SIMRANK_INDEX_WALK_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "simrank/common/status.h"
#include "simrank/core/options.h"
#include "simrank/graph/digraph.h"

namespace simrank {

/// Build- and estimate-time parameters of the walk index.
struct WalkIndexOptions {
  /// Independent walk sets per vertex. Estimator standard error shrinks as
  /// 1/sqrt(num_fingerprints) (Hoeffding).
  uint32_t num_fingerprints = 256;
  /// Walk truncation length; meetings beyond it contribute 0, biasing each
  /// estimate down by at most C^(walk_length+1)/(1-C).
  uint32_t walk_length = 12;
  /// SimRank damping factor C.
  double damping = 0.6;
  /// Root seed; fingerprint r derives all its steps from (seed, r), so the
  /// index content is independent of build parallelism.
  uint64_t seed = 7;
  /// Build-time worker threads; 0 means hardware concurrency. Not part of
  /// the serialized index.
  uint32_t num_threads = 0;

  bool Valid() const {
    return num_fingerprints > 0 && walk_length > 0 && damping > 0.0 &&
           damping < 1.0;
  }

  /// Derives index options from the shared SimRank model options: damping
  /// and the stochastic-path seed carry over, everything else keeps its
  /// default. This is how callers configured for the all-pairs engines
  /// (e.g. the CLI) hand their model parameters to the index.
  static WalkIndexOptions FromSimRank(const SimRankOptions& simrank) {
    WalkIndexOptions options;
    options.damping = simrank.damping;
    options.seed = simrank.seed;
    return options;
  }

  /// Derives index options from a target accuracy instead of raw knobs:
  /// with probability at least 1 - delta, each pair estimate deviates from
  /// the exact score by at most `eps`. The error budget is split evenly —
  /// `num_fingerprints` comes from inverting the Hoeffding bound
  ///   P(|est - E est| >= eps/2) <= 2·exp(-2·R·(eps/2)²) <= delta
  ///     =>  R = ⌈2·ln(2/delta)/eps²⌉,
  /// and `walk_length` is the smallest L whose truncation bias
  /// C^(L+1)/(1-C) is at most eps/2. Damping and seed carry over from
  /// `simrank` exactly as in FromSimRank. Requires eps in (0, 1) and
  /// delta in (0, 1); invalid inputs — and targets that cannot be
  /// provisioned (R beyond uint32, or damping so close to 1 that no
  /// reasonable L meets the bias budget) — yield options with
  /// Valid() == false rather than an index that silently misses the
  /// guarantee.
  static WalkIndexOptions FromAccuracy(double eps, double delta = 0.01,
                                       const SimRankOptions& simrank = {});
};

/// Immutable fingerprint index over one graph. Thread-safe for concurrent
/// reads after construction.
class WalkIndex {
 public:
  /// Sentinel position of a walk that left a vertex with no in-neighbours.
  static constexpr uint32_t kDeadWalk = UINT32_MAX;

  /// Builds the index for `graph`. Deterministic in `options.seed`
  /// regardless of `options.num_threads`.
  static Result<WalkIndex> Build(const DiGraph& graph,
                                 const WalkIndexOptions& options);

  /// Reads an index previously written by Save. Validates magic, version,
  /// declared sizes and the payload checksum.
  static Result<WalkIndex> Load(const std::string& path);

  /// Writes the versioned binary format. Saving the same index twice
  /// produces byte-identical files.
  Status Save(const std::string& path) const;

  /// Verifies the index was built from `graph` (vertex count and structural
  /// fingerprint, see GraphFingerprint).
  Status ValidateGraph(const DiGraph& graph) const;

  /// Estimate of s(a, b); exactly 1 for a == b. Both ids must be < n().
  double EstimatePair(VertexId a, VertexId b) const;

  /// Estimates the full row s(v, ·) in one pass over the stored walks
  /// (O(num_fingerprints · walk_length · n), ~R·L times cheaper than n
  /// pair calls would be on meeting-dense graphs).
  std::vector<double> EstimateSingleSource(VertexId v) const;

  uint32_t n() const { return n_; }
  const WalkIndexOptions& options() const { return options_; }
  uint64_t graph_fingerprint() const { return graph_fingerprint_; }
  /// In-memory payload size of the stored walks.
  uint64_t SizeBytes() const { return walks_.size() * sizeof(uint32_t); }

 private:
  WalkIndex() = default;

  /// Flat walk table: position after `t` steps of fingerprint `r`'s walk
  /// started at `v` lives at walks_[(r·(L+1) + t)·n + v].
  size_t Slot(uint32_t r, uint32_t t) const {
    return (static_cast<size_t>(r) * (options_.walk_length + 1) + t) * n_;
  }

  /// Fills damping_powers_ from options_. Called after Build and Load.
  void PrecomputeDampingPowers();

  std::vector<uint32_t> walks_;
  /// damping_powers_[t] = pow(damping, t); derived, not serialized. Both
  /// estimators read this one table so their results agree bit-for-bit.
  std::vector<double> damping_powers_;
  WalkIndexOptions options_;
  uint32_t n_ = 0;
  uint64_t graph_fingerprint_ = 0;
};

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_INDEX_WALK_INDEX_H_
