#include "simrank/index/segment_reader.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#if defined(__NR_io_uring_setup) && defined(__NR_io_uring_enter)
#define OIPSIM_HAS_IO_URING 1
#endif
#endif
#ifndef OIPSIM_HAS_IO_URING
#define OIPSIM_HAS_IO_URING 0
#endif

namespace simrank {
namespace {

bool UringEnabledDefault() {
  const char* env = std::getenv("SIMRANK_NO_URING");
  if (env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0) {
    return false;
  }
  return true;
}

std::atomic<bool>& UringEnabledFlag() {
  static std::atomic<bool> enabled{UringEnabledDefault()};
  return enabled;
}

constexpr uint32_t kRingEntries = 64;
// Prefetch bounce buffers are bounded: long runs are split into chunks so
// one warm pass over a multi-GB index never holds more than one ring depth
// of chunk-sized buffers.
constexpr uint64_t kPrefetchChunkBytes = 256 * 1024;

}  // namespace

void SegmentReader::SetIoUringEnabled(bool enabled) {
  UringEnabledFlag().store(enabled, std::memory_order_relaxed);
}

bool SegmentReader::IoUringEnabled() {
  return UringEnabledFlag().load(std::memory_order_relaxed);
}

SegmentReader::SegmentReader(std::string path, int fd)
    : path_(std::move(path)), fd_(fd) {}

Result<std::unique_ptr<SegmentReader>> SegmentReader::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("cannot open: " + path);
  std::unique_ptr<SegmentReader> reader(new SegmentReader(path, fd));
  if (IoUringEnabled()) reader->SetUpRing();
  return reader;
}

SegmentReader::~SegmentReader() {
  {
    // In-flight prefetch reads target bounce_ memory; wait them out
    // before the buffers (and the ring) go away.
    std::lock_guard<std::mutex> lock(mutex_);
    DrainPrefetchLocked();
    if (inflight_prefetch_ > 0) {
      // Waiting itself failed. The kernel may still write into these
      // buffers, so leaking them beats freeing memory it owns.
      new std::vector<std::vector<uint8_t>>(std::move(bounce_));
    }
  }
  TearDownRing();
  ::close(fd_);
}

bool SegmentReader::using_io_uring() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_ok_;
}

void SegmentReader::SetUpRing() {
#if OIPSIM_HAS_IO_URING
  struct io_uring_params params;
  std::memset(&params, 0, sizeof(params));
  const long ret = ::syscall(__NR_io_uring_setup, kRingEntries, &params);
  if (ret < 0) return;  // old kernel, seccomp, rlimit — run without a ring
  ring_fd_ = static_cast<int>(ret);
  sq_entries_ = params.sq_entries;
  cq_entries_ = params.cq_entries;
  size_t sq_bytes = params.sq_off.array +
                    static_cast<size_t>(params.sq_entries) * sizeof(uint32_t);
  size_t cq_bytes =
      params.cq_off.cqes +
      static_cast<size_t>(params.cq_entries) * sizeof(struct io_uring_cqe);
  single_mmap_ = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap_) sq_bytes = cq_bytes = std::max(sq_bytes, cq_bytes);
  void* sq = ::mmap(nullptr, sq_bytes, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
  if (sq == MAP_FAILED) {
    TearDownRing();
    return;
  }
  sq_ring_ = sq;
  sq_ring_bytes_ = sq_bytes;
  if (single_mmap_) {
    cq_ring_ = sq;
    cq_ring_bytes_ = 0;
  } else {
    void* cq = ::mmap(nullptr, cq_bytes, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
    if (cq == MAP_FAILED) {
      TearDownRing();
      return;
    }
    cq_ring_ = cq;
    cq_ring_bytes_ = cq_bytes;
  }
  const size_t sqes_bytes =
      static_cast<size_t>(params.sq_entries) * sizeof(struct io_uring_sqe);
  void* sqes = ::mmap(nullptr, sqes_bytes, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
  if (sqes == MAP_FAILED) {
    TearDownRing();
    return;
  }
  sqes_ = sqes;
  sqes_bytes_ = sqes_bytes;
  auto* sqb = static_cast<uint8_t*>(sq_ring_);
  sq_head_ = reinterpret_cast<uint32_t*>(sqb + params.sq_off.head);
  sq_tail_ = reinterpret_cast<uint32_t*>(sqb + params.sq_off.tail);
  sq_mask_ = reinterpret_cast<uint32_t*>(sqb + params.sq_off.ring_mask);
  sq_array_ = reinterpret_cast<uint32_t*>(sqb + params.sq_off.array);
  auto* cqb = static_cast<uint8_t*>(cq_ring_);
  cq_head_ = reinterpret_cast<uint32_t*>(cqb + params.cq_off.head);
  cq_tail_ = reinterpret_cast<uint32_t*>(cqb + params.cq_off.tail);
  cq_mask_ = reinterpret_cast<uint32_t*>(cqb + params.cq_off.ring_mask);
  cqes_ = cqb + params.cq_off.cqes;
  free_slots_.reserve(sq_entries_);
  for (uint32_t i = 0; i < sq_entries_; ++i) free_slots_.push_back(i);
  ring_ok_ = true;
#endif
}

void SegmentReader::TearDownRing() {
#if OIPSIM_HAS_IO_URING
  if (sqes_ != nullptr) ::munmap(sqes_, sqes_bytes_);
  if (cq_ring_ != nullptr && !single_mmap_) ::munmap(cq_ring_, cq_ring_bytes_);
  if (sq_ring_ != nullptr) ::munmap(sq_ring_, sq_ring_bytes_);
#endif
  sqes_ = nullptr;
  cq_ring_ = nullptr;
  sq_ring_ = nullptr;
  if (ring_fd_ >= 0) ::close(ring_fd_);
  ring_fd_ = -1;
  ring_ok_ = false;
}

bool SegmentReader::SubmitWave(std::span<const Range> ranges,
                               uint8_t* const* dests, Status* status) {
#if OIPSIM_HAS_IO_URING
  const uint32_t count = static_cast<uint32_t>(ranges.size());
  auto* sqes = static_cast<struct io_uring_sqe*>(sqes_);
  const uint32_t mask = *sq_mask_;
  uint32_t tail = __atomic_load_n(sq_tail_, __ATOMIC_RELAXED);
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t slot = tail & mask;
    struct io_uring_sqe* sqe = &sqes[slot];
    std::memset(sqe, 0, sizeof(*sqe));
    sqe->opcode = IORING_OP_READ;
    sqe->fd = fd_;
    sqe->addr = reinterpret_cast<uint64_t>(dests[i]);
    sqe->len = static_cast<uint32_t>(ranges[i].length);
    sqe->off = ranges[i].offset;
    sqe->user_data = i;
    sq_array_[slot] = slot;
    ++tail;
  }
  __atomic_store_n(sq_tail_, tail, __ATOMIC_RELEASE);

  uint32_t to_submit = count;
  uint32_t completed = 0;
  bool unsupported = false;
  while (completed < count) {
    const long ret =
        ::syscall(__NR_io_uring_enter, ring_fd_, to_submit, count - completed,
                  IORING_ENTER_GETEVENTS, nullptr, static_cast<size_t>(0));
    if (ret < 0) {
      if (errno == EINTR) continue;
      // The ring itself is unusable; redo the whole batch synchronously.
      ring_ok_ = false;
      return false;
    }
    to_submit -= std::min<uint32_t>(to_submit, static_cast<uint32_t>(ret));

    uint32_t head = __atomic_load_n(cq_head_, __ATOMIC_ACQUIRE);
    const uint32_t ready = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
    const uint32_t cmask = *cq_mask_;
    auto* cqes = static_cast<struct io_uring_cqe*>(cqes_);
    while (head != ready) {
      const struct io_uring_cqe& cqe = cqes[head & cmask];
      const uint32_t idx = static_cast<uint32_t>(cqe.user_data);
      const int32_t res = cqe.res;
      ++head;
      ++completed;
      if (res == -EINVAL || res == -EOPNOTSUPP || res == -ENOSYS) {
        unsupported = true;  // kernel lacks IORING_OP_READ
      } else if (res < 0) {
        if (status->ok()) *status = Status::IoError("read failed: " + path_);
      } else if (static_cast<uint64_t>(res) < ranges[idx].length) {
        // Short completion: finish synchronously so a true EOF surfaces
        // the same "short read" error as the non-uring path.
        const Status tail_status =
            PreadFull(dests[idx] + res, ranges[idx].length - res,
                      ranges[idx].offset + static_cast<uint64_t>(res));
        if (!tail_status.ok() && status->ok()) *status = tail_status;
      }
    }
    __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
  }
  if (unsupported) {
    ring_ok_ = false;
    return false;
  }
  return true;
#else
  (void)ranges, (void)dests, (void)status;
  return false;
#endif
}

Status SegmentReader::ReadBatchUring(std::span<const Range> ranges,
                                     uint8_t* const* dests) {
  Status status;
  for (size_t done = 0; done < ranges.size();) {
    const size_t wave = std::min<size_t>(sq_entries_, ranges.size() - done);
    if (!SubmitWave(ranges.subspan(done, wave), dests + done, &status)) {
      // Ring just went unusable; partial writes are fine to overwrite.
      return ReadBatchPreadv(ranges, dests);
    }
    done += wave;
  }
  return status;
}

Status SegmentReader::ReadBatchPreadv(std::span<const Range> ranges,
                                      uint8_t* const* dests) {
  for (size_t i = 0; i < ranges.size(); ++i) {
    const Status status = PreadFull(dests[i], ranges[i].length,
                                    ranges[i].offset);
    if (!status.ok()) return status;
  }
  return Status::OK();
}

Status SegmentReader::PreadFull(uint8_t* dest, uint64_t length,
                                uint64_t offset) {
  while (length > 0) {
    const ssize_t got =
        ::pread(fd_, dest, static_cast<size_t>(length),
                static_cast<off_t>(offset));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("read failed: " + path_);
    }
    if (got == 0) return Status::IoError("short read: " + path_);
    dest += got;
    offset += static_cast<uint64_t>(got);
    length -= static_cast<uint64_t>(got);
  }
  return Status::OK();
}

Status SegmentReader::ReadInto(std::span<const Range> ranges,
                               uint8_t* const* dests) {
  if (ranges.empty()) return Status::OK();
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_ok_) {
    // SubmitWave counts its own completions; outstanding async prefetch
    // reads would be miscounted as (and mis-write) wave results.
    DrainPrefetchLocked();
  }
  if (ring_ok_) return ReadBatchUring(ranges, dests);
  return ReadBatchPreadv(ranges, dests);
}

void SegmentReader::ReapPrefetchLocked() {
#if OIPSIM_HAS_IO_URING
  if (inflight_prefetch_ == 0) return;
  uint32_t head = __atomic_load_n(cq_head_, __ATOMIC_ACQUIRE);
  const uint32_t ready = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
  const uint32_t cmask = *cq_mask_;
  auto* cqes = static_cast<struct io_uring_cqe*>(cqes_);
  while (head != ready && inflight_prefetch_ > 0) {
    const struct io_uring_cqe& cqe = cqes[head & cmask];
    free_slots_.push_back(static_cast<uint32_t>(cqe.user_data));
    if (cqe.res == -EINVAL || cqe.res == -EOPNOTSUPP || cqe.res == -ENOSYS) {
      ring_ok_ = false;  // kernel lacks the opcode; stop using the ring
    }
    // All other errors and short reads are ignored: prefetch is a hint.
    ++head;
    --inflight_prefetch_;
  }
  __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
#endif
}

void SegmentReader::DrainPrefetchLocked() {
#if OIPSIM_HAS_IO_URING
  while (inflight_prefetch_ > 0) {
    ReapPrefetchLocked();
    if (inflight_prefetch_ == 0) return;
    const long ret =
        ::syscall(__NR_io_uring_enter, ring_fd_, 0, 1,
                  IORING_ENTER_GETEVENTS, nullptr, static_cast<size_t>(0));
    if (ret < 0 && errno != EINTR) {
      ring_ok_ = false;
      return;  // cannot wait; the remaining reads are abandoned
    }
  }
#endif
}

void SegmentReader::Prefetch(std::span<const Range> ranges) {
  if (ranges.empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
#if OIPSIM_HAS_IO_URING
  std::vector<Range> spill;  // everything the ring does not take
  if (ring_ok_) {
    // Small scattered ranges ride the ring: one syscall queues them all,
    // they complete in parallel while the caller serves queries, and the
    // slots recycle as completions drift in. Long sequential runs — and
    // any overflow once every slot is in flight — stay advice instead:
    // kernel readahead already pipelines a sequential run optimally, and
    // queued reads (unlike advice) would make a concurrent query's demand
    // faults wait behind the entire warm. Nothing here ever blocks.
    if (bounce_.size() < sq_entries_) bounce_.resize(sq_entries_);
    auto* sqes = static_cast<struct io_uring_sqe*>(sqes_);
    const uint32_t mask = *sq_mask_;
    uint32_t tail = __atomic_load_n(sq_tail_, __ATOMIC_RELAXED);
    uint32_t filled = 0;
    for (const Range& range : ranges) {
      if (range.length == 0) continue;
      if (range.length > kPrefetchChunkBytes) {
        spill.push_back(range);
        continue;
      }
      if (free_slots_.empty()) ReapPrefetchLocked();
      if (!ring_ok_ || free_slots_.empty()) {
        spill.push_back(range);
        continue;
      }
      const uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      if (bounce_[slot].size() < range.length) {
        bounce_[slot].resize(range.length);
      }
      struct io_uring_sqe* sqe = &sqes[tail & mask];
      std::memset(sqe, 0, sizeof(*sqe));
      sqe->opcode = IORING_OP_READ;
      sqe->fd = fd_;
      sqe->addr = reinterpret_cast<uint64_t>(bounce_[slot].data());
      sqe->len = static_cast<uint32_t>(range.length);
      sqe->off = range.offset;
      sqe->user_data = slot;
      sq_array_[tail & mask] = tail & mask;
      ++tail;
      ++filled;
    }
    if (filled > 0) {
      __atomic_store_n(sq_tail_, tail, __ATOMIC_RELEASE);
      uint32_t to_submit = filled;
      while (to_submit > 0) {
        const long ret =
            ::syscall(__NR_io_uring_enter, ring_fd_, to_submit, 0, 0, nullptr,
                      static_cast<size_t>(0));
        if (ret < 0) {
          if (errno == EINTR) continue;
          ring_ok_ = false;  // unsubmitted SQEs are simply abandoned
          break;
        }
        to_submit -= std::min<uint32_t>(to_submit, static_cast<uint32_t>(ret));
      }
      inflight_prefetch_ += filled - to_submit;
    }
    ranges = spill;
  }
#endif
#if defined(POSIX_FADV_WILLNEED)
  for (const Range& range : ranges) {
    (void)::posix_fadvise(fd_, static_cast<off_t>(range.offset),
                          static_cast<off_t>(range.length),
                          POSIX_FADV_WILLNEED);
  }
#endif
}

}  // namespace simrank
