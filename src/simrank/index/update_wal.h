// Append-only, checksummed write-ahead log of edge-update batches.
//
// The WAL is the durability story of the dynamic-index subsystem: an
// IndexUpdater appends every accepted batch *before* patching the in-memory
// overlay, so a crash at any point loses nothing — reopening the WAL
// replays the recorded batches over the base index and reconstructs the
// exact overlay (and therefore, by the subsystem's bitwise guarantee, the
// exact query answers).
//
// On-disk layout (native-endian, like the index format):
//   header, 64 bytes: magic, version, the base index's model parameters
//     (n, R, L, seed, damping) and its graph fingerprint — so a WAL can
//     never be replayed against an index it does not belong to — then a
//     salted header checksum.
//   records, each: {magic u32, update_count u32, post_graph_fingerprint
//     u64, update_count × {op u32, src u32, dst u32}, record checksum u64}.
//     The post-batch fingerprint lets replay verify each batch lands on
//     the graph it was originally applied to.
//
// Torn writes: a record whose magic, declared length, or checksum does not
// hold is treated as an unfinished tail — Open() drops it (rewriting the
// file to the longest valid prefix) and reports how many bytes were
// discarded. Everything before the tear replays normally, which is exactly
// the write-ahead contract: a batch is durable once its record is fully on
// disk, and invisible otherwise.
#ifndef OIPSIM_SIMRANK_INDEX_UPDATE_WAL_H_
#define OIPSIM_SIMRANK_INDEX_UPDATE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "simrank/common/status.h"
#include "simrank/index/edge_update.h"

namespace simrank {

/// The identity a WAL is bound to: the base index's model parameters and
/// the structural fingerprint of the graph it was built from.
struct WalBaseIdentity {
  uint32_t n = 0;
  uint32_t num_fingerprints = 0;
  uint32_t walk_length = 0;
  uint64_t seed = 0;
  double damping = 0.0;
  uint64_t graph_fingerprint = 0;

  friend bool operator==(const WalBaseIdentity&,
                         const WalBaseIdentity&) = default;
};

/// One durable batch.
struct WalRecord {
  std::vector<EdgeUpdate> updates;
  /// GraphFingerprint of the graph *after* this batch.
  uint64_t post_graph_fingerprint = 0;
};

/// An open WAL file positioned for appends. Move-only; not internally
/// synchronized (the IndexUpdater serializes access under its own mutex).
class UpdateWal {
 public:
  struct Options {
    /// fsync after every append (POSIX; elsewhere a best-effort flush).
    /// The bench turns this off to time the patch path alone.
    bool sync_every_append = true;
  };

  /// What Open() found on disk; defined after the class (it holds an
  /// UpdateWal by value).
  struct Opened;

  /// Opens `path`, creating it with a fresh header when absent. An existing
  /// file must carry exactly `expected` as its base identity — a WAL for a
  /// different index (or a pre-compaction WAL against a compacted index)
  /// is a ParseError, never a silent misapply.
  static Result<Opened> Open(const std::string& path,
                             const WalBaseIdentity& expected,
                             const Options& options);

  UpdateWal(UpdateWal&& other) noexcept;
  UpdateWal& operator=(UpdateWal&& other) noexcept;
  ~UpdateWal();

  /// Appends one record durably (record bytes + checksum, then flush and,
  /// per Options, fsync). On return the batch survives a crash.
  Status Append(const WalRecord& record) { return Append(record, true); }

  /// Appends one record; with `sync` false the fsync is deferred (the
  /// bytes are flushed to the OS but not forced to disk) — the
  /// group-commit path appends every queued record this way and then
  /// issues one Sync() for the whole group.
  Status Append(const WalRecord& record, bool sync);

  /// Forces everything appended so far to disk (fsync, when
  /// Options::sync_every_append holds — otherwise a no-op, matching the
  /// per-append behaviour). The durability point of a group commit.
  Status Sync();

  /// Truncates to a fresh header bound to `identity` — the post-compaction
  /// reset: the compacted index file now embodies every logged batch, so
  /// the log restarts against the compacted fingerprint.
  Status Reset(const WalBaseIdentity& identity);

  uint64_t record_count() const { return record_count_; }
  uint64_t size_bytes() const { return size_bytes_; }
  /// fsyncs issued so far (appends with sync plus explicit Sync calls);
  /// the group-commit test asserts coalescing through this counter.
  uint64_t sync_count() const { return sync_count_; }
  const std::string& path() const { return path_; }

 private:
  UpdateWal() = default;

  std::string path_;
  Options options_;
  /// Kept open in append position between Append calls.
  std::FILE* file_ = nullptr;
  uint64_t record_count_ = 0;
  uint64_t size_bytes_ = 0;
  uint64_t sync_count_ = 0;
};

struct UpdateWal::Opened {
  UpdateWal wal;
  /// Complete records, in append order, to be replayed by the caller.
  std::vector<WalRecord> records;
  /// Bytes of torn tail discarded (0 for a clean file).
  uint64_t truncated_bytes = 0;
};

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_INDEX_UPDATE_WAL_H_
