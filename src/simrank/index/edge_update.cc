#include "simrank/index/edge_update.h"

#include <cctype>
#include <cstdio>
#include <unordered_set>

#include "simrank/common/string_util.h"

namespace simrank {
namespace {

/// One 64-bit key per directed edge; ids are uint32 so the packing is
/// collision-free.
uint64_t EdgeKey(VertexId src, VertexId dst) {
  return (static_cast<uint64_t>(src) << 32) | dst;
}

}  // namespace

// NOTE: IndexUpdater::ApplyBatch enforces the same strict semantics (and
// error wording) over its sorted edge list; keep the two in lockstep.
Result<DiGraph> ApplyEdgeUpdates(const DiGraph& graph,
                                 std::span<const EdgeUpdate> updates) {
  const uint32_t n = graph.n();
  std::unordered_set<uint64_t> edges;
  edges.reserve(graph.m() + updates.size());
  for (VertexId v = 0; v < n; ++v) {
    for (const VertexId u : graph.OutNeighbors(v)) {
      edges.insert(EdgeKey(v, u));
    }
  }
  for (size_t i = 0; i < updates.size(); ++i) {
    const EdgeUpdate& update = updates[i];
    if (update.src >= n || update.dst >= n) {
      return Status::OutOfRange(StrFormat(
          "update %zu: edge (%u, %u) leaves the vertex set [0, %u) the "
          "index was built for (adding vertices requires a rebuild)",
          i, update.src, update.dst, n));
    }
    const uint64_t key = EdgeKey(update.src, update.dst);
    if (update.op == EdgeUpdate::Op::kInsert) {
      if (!edges.insert(key).second) {
        return Status::InvalidArgument(StrFormat(
            "update %zu: edge (%u, %u) already exists; inserts must add a "
            "new edge",
            i, update.src, update.dst));
      }
    } else {
      if (edges.erase(key) == 0) {
        return Status::InvalidArgument(StrFormat(
            "update %zu: edge (%u, %u) does not exist; deletes must remove "
            "an existing edge",
            i, update.src, update.dst));
      }
    }
  }
  DiGraph::Builder builder(n);
  for (const uint64_t key : edges) {
    builder.AddEdge(static_cast<VertexId>(key >> 32),
                    static_cast<VertexId>(key & 0xffffffffu));
  }
  return std::move(builder).Build();
}

Result<std::vector<EdgeUpdate>> ParseEdgeUpdates(std::string_view text) {
  std::vector<EdgeUpdate> updates;
  int line_no = 0;
  for (std::string_view line : StrSplit(text, '\n')) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = StrTrim(line);
    if (line.empty()) continue;
    EdgeUpdate update;
    if (line[0] == '+') {
      update.op = EdgeUpdate::Op::kInsert;
    } else if (line[0] == '-') {
      update.op = EdgeUpdate::Op::kDelete;
    } else {
      return Status::ParseError(StrFormat(
          "line %d: expected '+ SRC DST' or '- SRC DST'", line_no));
    }
    const std::string_view rest = line.substr(1);
    std::vector<std::string_view> tokens;
    size_t at = 0;
    while (at < rest.size()) {
      while (at < rest.size() &&
             std::isspace(static_cast<unsigned char>(rest[at]))) {
        ++at;
      }
      size_t end = at;
      while (end < rest.size() &&
             !std::isspace(static_cast<unsigned char>(rest[end]))) {
        ++end;
      }
      if (end > at) tokens.push_back(rest.substr(at, end - at));
      at = end;
    }
    uint64_t src = 0;
    uint64_t dst = 0;
    if (tokens.size() != 2 || !ParseUint64(tokens[0], &src) ||
        !ParseUint64(tokens[1], &dst) || src > UINT32_MAX ||
        dst > UINT32_MAX) {
      return Status::ParseError(StrFormat(
          "line %d: expected two vertex ids after '%c'", line_no, line[0]));
    }
    update.src = static_cast<VertexId>(src);
    update.dst = static_cast<VertexId>(dst);
    updates.push_back(update);
  }
  return updates;
}

Result<std::vector<EdgeUpdate>> ReadEdgeUpdates(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open update batch: " + path);
  }
  std::string content;
  char chunk[4096];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    content.append(chunk, got);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    // A short read that happens to end on a line boundary would parse
    // cleanly and silently apply a partial batch.
    return Status::IoError("read error in update batch: " + path);
  }
  return ParseEdgeUpdates(content);
}

std::string FormatEdgeUpdates(std::span<const EdgeUpdate> updates) {
  std::string out;
  for (const EdgeUpdate& update : updates) {
    out += StrFormat("%c %u %u\n",
                     update.op == EdgeUpdate::Op::kInsert ? '+' : '-',
                     update.src, update.dst);
  }
  return out;
}

}  // namespace simrank
