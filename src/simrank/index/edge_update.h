// Edge-update batches: the input language of the dynamic-index subsystem.
//
// An update batch is an ordered list of edge insertions and deletions over
// the vertex set the index was built for (the vertex universe is fixed at
// build time; growing it requires a rebuild). Batches are strict: inserting
// an edge that already exists, or deleting one that does not, is an error —
// a lenient mode would make the patched graph depend on state the caller
// did not assert, and the whole subsystem's contract is that a patched
// index is *bitwise identical* to a rebuild on the graph the caller thinks
// it has.
//
// The text format (CLI `--updates=FILE`, `POST /v1/update` bodies) is one
// update per line — `+ SRC DST` inserts, `- SRC DST` deletes — with '#'
// comments and blank lines ignored.
#ifndef OIPSIM_SIMRANK_INDEX_EDGE_UPDATE_H_
#define OIPSIM_SIMRANK_INDEX_EDGE_UPDATE_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "simrank/common/status.h"
#include "simrank/graph/digraph.h"

namespace simrank {

/// One edge insertion or deletion.
struct EdgeUpdate {
  enum class Op : uint8_t { kInsert = 0, kDelete = 1 };

  Op op = Op::kInsert;
  VertexId src = 0;
  VertexId dst = 0;

  friend bool operator==(const EdgeUpdate&, const EdgeUpdate&) = default;
};

/// Applies `updates` in order to `graph` and returns the resulting graph.
/// Strict: every endpoint must be < graph.n(), an insert must add a new
/// edge, a delete must remove an existing one (each judged against the
/// state after the preceding updates in the batch). Self-loops are legal,
/// as in DiGraph::Builder.
Result<DiGraph> ApplyEdgeUpdates(const DiGraph& graph,
                                 std::span<const EdgeUpdate> updates);

/// Parses the `+ SRC DST` / `- SRC DST` text format. Errors name the
/// offending line.
Result<std::vector<EdgeUpdate>> ParseEdgeUpdates(std::string_view text);

/// ParseEdgeUpdates over a file's contents.
Result<std::vector<EdgeUpdate>> ReadEdgeUpdates(const std::string& path);

/// Renders `updates` in the text format ParseEdgeUpdates reads.
std::string FormatEdgeUpdates(std::span<const EdgeUpdate> updates);

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_INDEX_EDGE_UPDATE_H_
