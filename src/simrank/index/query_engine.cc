#include "simrank/index/query_engine.h"

#include "simrank/common/string_util.h"
#include "simrank/obs/trace.h"

namespace simrank {

QueryEngine::QueryEngine(const WalkIndex& index,
                         const QueryEngineOptions& options)
    : index_(index),
      options_(options),
      cache_(options.Valid() ? options.cache_shards : 1,
             options.Valid() ? options.cache_capacity_per_shard : 1),
      pool_(options.num_threads) {
  OIPSIM_CHECK_MSG(options.Valid(),
                   "QueryEngineOptions: shards and capacity must be > 0");
}

Status QueryEngine::CheckVertex(VertexId v) const {
  if (v >= index_.n()) {
    return Status::OutOfRange(
        StrFormat("vertex %u out of range (index has %u vertices)", v,
                  index_.n()));
  }
  return Status::OK();
}

QueryEngine::Row QueryEngine::GetFresh(VertexId v, uint64_t sequence) {
  TraceScope scope(TraceStage::kCacheLookup);
  if (auto hit = cache_.Get(v)) {
    if (hit->sequence == sequence) {
      TraceAdd(TraceCounter::kCacheHits, 1);
      return hit->row;
    }
    // Computed under an older overlay: unservable. Dropping it here keeps
    // the stale row from shadowing the recomputed one until eviction. A
    // *newer* stamp means this reader pinned its snapshot before an
    // update landed — the resident row is the fresh one; leave it for
    // current readers.
    if (hit->sequence < sequence) cache_.Erase(v);
  }
  TraceAdd(TraceCounter::kCacheMisses, 1);
  return nullptr;
}

Result<double> QueryEngine::PairAtSnapshot(
    VertexId a, VertexId b,
    const std::shared_ptr<const DeltaOverlay>& overlay) {
  OIPSIM_RETURN_IF_ERROR(CheckVertex(a));
  OIPSIM_RETURN_IF_ERROR(CheckVertex(b));
  const uint64_t sequence = overlay == nullptr ? 0 : overlay->sequence();
  // A resident (and fresh) row of either endpoint already holds the
  // answer.
  if (Row row = GetFresh(a, sequence)) return (*row)[b];
  if (Row row = GetFresh(b, sequence)) return (*row)[a];
  return index_.EstimatePair(a, b, overlay.get());
}

Result<QueryEngine::Row> QueryEngine::SingleSourceAtSnapshot(
    VertexId v, const std::shared_ptr<const DeltaOverlay>& overlay) {
  OIPSIM_RETURN_IF_ERROR(CheckVertex(v));
  const uint64_t sequence = overlay == nullptr ? 0 : overlay->sequence();
  if (Row row = GetFresh(v, sequence)) return row;
  Row row = std::make_shared<const std::vector<double>>(
      index_.EstimateSingleSource(v, overlay.get()));
  // Stamped with the sequence the row was actually computed under; if an
  // update raced us, the stamp is stale and the row reads as a miss —
  // and in that case skip the insert rather than overwrite a row another
  // reader may have cached under the newer overlay.
  if (index_.overlay_sequence() == sequence) {
    cache_.Put(v, VersionedRow{sequence, row});
  }
  return row;
}

Result<std::vector<ScoredVertex>> QueryEngine::TopKAtSnapshot(
    VertexId v, uint32_t k,
    const std::shared_ptr<const DeltaOverlay>& overlay) {
  Result<Row> row = SingleSourceAtSnapshot(v, overlay);
  if (!row.ok()) return row.status();
  return TopKFromRow(**row, v, k, /*exclude_query=*/true);
}

Result<double> QueryEngine::Pair(VertexId a, VertexId b) {
  // One overlay snapshot serves the whole query: the cached-row check and
  // the fallback estimate must agree on the index version.
  return PairAtSnapshot(a, b, index_.overlay_snapshot());
}

Result<QueryEngine::Row> QueryEngine::SingleSource(VertexId v) {
  return SingleSourceAtSnapshot(v, index_.overlay_snapshot());
}

Result<std::vector<ScoredVertex>> QueryEngine::TopK(VertexId v, uint32_t k) {
  return TopKAtSnapshot(v, k, index_.overlay_snapshot());
}

std::vector<Result<double>> QueryEngine::BatchPair(
    const std::vector<std::pair<VertexId, VertexId>>& queries) {
  // One snapshot for the whole batch: every answer reflects the same
  // index version even if an update lands mid-fanout.
  const auto overlay = index_.overlay_snapshot();
  // Paged backend: one batched readahead of every queried segment before
  // the fan-out, instead of each worker faulting its pages one at a time.
  // A hint — answers are identical with or without it.
  if (index_.store().FlatWalks() == nullptr) {
    std::vector<VertexId> vertices;
    vertices.reserve(queries.size() * 2);
    for (const auto& [a, b] : queries) {
      vertices.push_back(a);
      vertices.push_back(b);
    }
    index_.store().Prefetch(vertices);
  }
  std::vector<Result<double>> answers(queries.size(),
                                      Result<double>(0.0));
  pool_.ParallelFor(0, queries.size(), [&](uint64_t i) {
    answers[i] =
        PairAtSnapshot(queries[i].first, queries[i].second, overlay);
  });
  return answers;
}

std::vector<Result<std::vector<ScoredVertex>>> QueryEngine::BatchTopK(
    const std::vector<VertexId>& queries, uint32_t k) {
  const auto overlay = index_.overlay_snapshot();
  if (index_.store().FlatWalks() == nullptr) {
    index_.store().Prefetch(queries);
  }
  std::vector<Result<std::vector<ScoredVertex>>> answers(
      queries.size(),
      Result<std::vector<ScoredVertex>>(std::vector<ScoredVertex>{}));
  pool_.ParallelFor(0, queries.size(), [&](uint64_t i) {
    answers[i] = TopKAtSnapshot(queries[i], k, overlay);
  });
  return answers;
}

}  // namespace simrank
