#include "simrank/index/query_engine.h"

#include "simrank/common/string_util.h"

namespace simrank {

QueryEngine::QueryEngine(const WalkIndex& index,
                         const QueryEngineOptions& options)
    : index_(index),
      options_(options),
      cache_(options.Valid() ? options.cache_shards : 1,
             options.Valid() ? options.cache_capacity_per_shard : 1),
      pool_(options.num_threads) {
  OIPSIM_CHECK_MSG(options.Valid(),
                   "QueryEngineOptions: shards and capacity must be > 0");
}

Status QueryEngine::CheckVertex(VertexId v) const {
  if (v >= index_.n()) {
    return Status::OutOfRange(
        StrFormat("vertex %u out of range (index has %u vertices)", v,
                  index_.n()));
  }
  return Status::OK();
}

Result<double> QueryEngine::Pair(VertexId a, VertexId b) {
  OIPSIM_RETURN_IF_ERROR(CheckVertex(a));
  OIPSIM_RETURN_IF_ERROR(CheckVertex(b));
  // A resident row of either endpoint already holds the answer.
  if (auto row = cache_.Get(a)) return (**row)[b];
  if (auto row = cache_.Get(b)) return (**row)[a];
  return index_.EstimatePair(a, b);
}

Result<QueryEngine::Row> QueryEngine::SingleSource(VertexId v) {
  OIPSIM_RETURN_IF_ERROR(CheckVertex(v));
  if (auto row = cache_.Get(v)) return *row;
  Row row = std::make_shared<const std::vector<double>>(
      index_.EstimateSingleSource(v));
  cache_.Put(v, row);
  return row;
}

Result<std::vector<ScoredVertex>> QueryEngine::TopK(VertexId v, uint32_t k) {
  Result<Row> row = SingleSource(v);
  if (!row.ok()) return row.status();
  return TopKFromRow(**row, v, k, /*exclude_query=*/true);
}

std::vector<Result<double>> QueryEngine::BatchPair(
    const std::vector<std::pair<VertexId, VertexId>>& queries) {
  std::vector<Result<double>> answers(queries.size(),
                                      Result<double>(0.0));
  pool_.ParallelFor(0, queries.size(), [&](uint64_t i) {
    answers[i] = Pair(queries[i].first, queries[i].second);
  });
  return answers;
}

std::vector<Result<std::vector<ScoredVertex>>> QueryEngine::BatchTopK(
    const std::vector<VertexId>& queries, uint32_t k) {
  std::vector<Result<std::vector<ScoredVertex>>> answers(
      queries.size(),
      Result<std::vector<ScoredVertex>>(std::vector<ScoredVertex>{}));
  pool_.ParallelFor(0, queries.size(), [&](uint64_t i) {
    answers[i] = TopK(queries[i], k);
  });
  return answers;
}

}  // namespace simrank
