#include "simrank/index/walk_store.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "simrank/common/macros.h"
#include "simrank/common/simd.h"
#include "simrank/common/stream_hash.h"
#include "simrank/common/string_util.h"
#include "simrank/common/thread_pool.h"
#include "simrank/common/varint.h"
#include "simrank/index/segment_reader.h"

#if defined(__unix__) || defined(__APPLE__)
#define OIPSIM_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace simrank {
namespace {

// v2 format constants. The magic is shared with v1 (the version field
// distinguishes them, which is what lets Load name the version it found).
constexpr uint32_t kIndexMagic = 0x58444957;  // "WIDX"
constexpr uint32_t kIndexVersion = 2;
constexpr uint64_t kPageSize = 4096;
constexpr size_t kHeaderBytes = 104;
// Domain salts of the three header checksums. Part of the on-disk format.
constexpr uint64_t kHeaderSalt = 0x5349574b32484452ULL;     // "SIWK2HDR"
constexpr uint64_t kDirectorySalt = 0x5349574b32444952ULL;  // "SIWK2DIR"
constexpr uint64_t kPayloadSalt = 0x5349574b32504159ULL;    // "SIWK2PAY"

constexpr uint32_t kFlagCompressedSegments = 1u << 0;

constexpr uint32_t kDead = WalkStore::kDeadWalk;

uint64_t AlignUp(uint64_t value, uint64_t alignment) {
  return (value + alignment - 1) / alignment * alignment;
}

uint64_t DampingBits(double damping) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(damping));
  std::memcpy(&bits, &damping, sizeof(bits));
  return bits;
}

double DampingFromBits(uint64_t bits) {
  double damping = 0;
  std::memcpy(&damping, &bits, sizeof(damping));
  return damping;
}

template <typename T>
T ReadScalar(const uint8_t* bytes) {
  T value;
  std::memcpy(&value, bytes, sizeof(T));
  return value;
}

template <typename T>
void WriteScalar(uint8_t* bytes, T value) {
  std::memcpy(bytes, &value, sizeof(T));
}

void AppendWord(std::vector<uint8_t>* out, uint32_t value) {
  const size_t at = out->size();
  out->resize(at + sizeof(value));
  std::memcpy(out->data() + at, &value, sizeof(value));
}

/// RAII FILE handle so every early return closes the stream.
struct FileCloser {
  explicit FileCloser(std::FILE* f) : file(f) {}
  ~FileCloser() {
    if (file != nullptr) std::fclose(file);
  }
  std::FILE* file;
};

/// Everything the fixed-size header declares, after validation against the
/// real file size.
struct ParsedLayout {
  WalkStoreMeta meta;
  bool compressed = false;
  uint64_t directory_offset = 0;
  uint64_t segments_offset = 0;
  uint64_t inverted_offset = 0;
  uint64_t file_size = 0;
  uint64_t payload_checksum = 0;
  uint64_t directory_checksum = 0;
  uint64_t num_slots = 0;       // R·L
  uint64_t directory_bytes = 0;  // 8·(n+1 + num_slots+1)
};

/// Parses and validates the v2 header. `available` is how many bytes of
/// `bytes` are readable (>= kHeaderBytes for a well-formed file);
/// `file_size` is the real on-disk size, checked against the declared one
/// so truncation is reported with the exact missing range.
Result<ParsedLayout> ParseHeaderBytes(const uint8_t* bytes, size_t available,
                                      uint64_t file_size,
                                      const std::string& path) {
  if (available < 8) {
    return Status::ParseError(
        StrFormat("%s is not a walk index: only %llu bytes, the magic and "
                  "version alone need 8",
                  path.c_str(), static_cast<unsigned long long>(file_size)));
  }
  const uint32_t magic = ReadScalar<uint32_t>(bytes);
  if (magic != kIndexMagic) {
    return Status::ParseError(
        StrFormat("%s is not a walk index file: magic 0x%08x at offset 0, "
                  "expected 0x%08x",
                  path.c_str(), magic, kIndexMagic));
  }
  const uint32_t version = ReadScalar<uint32_t>(bytes + 4);
  if (version != kIndexVersion) {
    return Status::ParseError(StrFormat(
        "walk index version %u found in %s but this build supports only "
        "version %u; rebuild the index with 'simrank_cli build-index' "
        "(v1 flat indexes cannot be served in place)",
        version, path.c_str(), kIndexVersion));
  }
  if (available < kHeaderBytes) {
    return Status::ParseError(StrFormat(
        "truncated walk index header in %s: %llu bytes on disk, the v2 "
        "header is %zu (corruption from offset %llu)",
        path.c_str(), static_cast<unsigned long long>(file_size),
        kHeaderBytes, static_cast<unsigned long long>(file_size)));
  }

  ParsedLayout layout;
  layout.meta.n = ReadScalar<uint32_t>(bytes + 8);
  layout.meta.num_fingerprints = ReadScalar<uint32_t>(bytes + 12);
  layout.meta.walk_length = ReadScalar<uint32_t>(bytes + 16);
  const uint32_t flags = ReadScalar<uint32_t>(bytes + 20);
  layout.meta.seed = ReadScalar<uint64_t>(bytes + 24);
  layout.meta.damping = DampingFromBits(ReadScalar<uint64_t>(bytes + 32));
  layout.meta.graph_fingerprint = ReadScalar<uint64_t>(bytes + 40);
  layout.directory_offset = ReadScalar<uint64_t>(bytes + 48);
  layout.segments_offset = ReadScalar<uint64_t>(bytes + 56);
  layout.inverted_offset = ReadScalar<uint64_t>(bytes + 64);
  layout.file_size = ReadScalar<uint64_t>(bytes + 72);
  layout.payload_checksum = ReadScalar<uint64_t>(bytes + 80);
  layout.directory_checksum = ReadScalar<uint64_t>(bytes + 88);
  const uint64_t stored_header_checksum = ReadScalar<uint64_t>(bytes + 96);

  StreamHasher hasher(kHeaderSalt);
  hasher.AbsorbBytes(bytes, kHeaderBytes - sizeof(uint64_t));
  if (hasher.digest() != stored_header_checksum) {
    return Status::ParseError(
        StrFormat("walk index header checksum mismatch in %s (bytes 0..%zu)",
                  path.c_str(), kHeaderBytes - sizeof(uint64_t)));
  }

  if (flags & ~kFlagCompressedSegments) {
    return Status::ParseError(
        StrFormat("unknown flag bits 0x%08x in walk index %s", flags,
                  path.c_str()));
  }
  layout.compressed = (flags & kFlagCompressedSegments) != 0;

  if (layout.meta.num_fingerprints == 0 || layout.meta.walk_length == 0 ||
      !(layout.meta.damping > 0.0 && layout.meta.damping < 1.0)) {
    return Status::ParseError(
        "invalid options in walk index header: " + path);
  }
  if (layout.meta.walk_length > kMaxWalkLength) {
    return Status::ParseError(StrFormat(
        "walk index %s declares walk_length %u, beyond the format maximum "
        "%u",
        path.c_str(), layout.meta.walk_length, kMaxWalkLength));
  }

  if (layout.file_size != file_size) {
    if (file_size < layout.file_size) {
      return Status::ParseError(StrFormat(
          "walk index %s is truncated: %llu bytes on disk, header declares "
          "%llu — data missing from offset %llu onwards",
          path.c_str(), static_cast<unsigned long long>(file_size),
          static_cast<unsigned long long>(layout.file_size),
          static_cast<unsigned long long>(file_size)));
    }
    return Status::ParseError(StrFormat(
        "walk index %s has %llu trailing bytes beyond the declared size "
        "%llu (corruption from offset %llu)",
        path.c_str(),
        static_cast<unsigned long long>(file_size - layout.file_size),
        static_cast<unsigned long long>(layout.file_size),
        static_cast<unsigned long long>(layout.file_size)));
  }

  layout.num_slots = static_cast<uint64_t>(layout.meta.num_fingerprints) *
                     layout.meta.walk_length;
  // 128-bit so a crafted header can neither wrap the directory size nor
  // slip a huge one past the region checks.
  const auto wide_dir_bytes =
      (static_cast<unsigned __int128>(layout.meta.n) + 1 +
       layout.num_slots + 1) *
      8;
  const bool regions_ok =
      layout.directory_offset == kPageSize &&
      layout.segments_offset % kPageSize == 0 &&
      layout.inverted_offset % kPageSize == 0 &&
      layout.segments_offset >= layout.directory_offset &&
      layout.inverted_offset >= layout.segments_offset &&
      layout.inverted_offset <= layout.file_size &&
      wide_dir_bytes <=
          layout.segments_offset - layout.directory_offset;
  if (!regions_ok) {
    return Status::ParseError(StrFormat(
        "walk index %s declares inconsistent regions: directory at %llu, "
        "segments at %llu, inverted index at %llu, file size %llu",
        path.c_str(),
        static_cast<unsigned long long>(layout.directory_offset),
        static_cast<unsigned long long>(layout.segments_offset),
        static_cast<unsigned long long>(layout.inverted_offset),
        static_cast<unsigned long long>(layout.file_size)));
  }
  layout.directory_bytes = static_cast<uint64_t>(wide_dir_bytes);

  // Geometry sanity beyond the directory: every vertex segment stores at
  // least a walk-length prefix per fingerprint ((compressed ? 1 : 4)
  // bytes), so the segment region must hold n·R·min bytes — a crafted
  // header cannot declare a walk table the file plainly does not back
  // (the v1 loader made the equivalent promise). Dead-walk compression
  // still allows up to 4·(L+1)× decode amplification of real bytes; a
  // pathological-but-consistent file therefore fails with a clean
  // allocation error, never a wrapped size: the decoded extent is
  // computed in 128 bits and capped before any resize.
  const auto wide_min_segment_bytes =
      static_cast<unsigned __int128>(layout.meta.n) *
      layout.meta.num_fingerprints * (layout.compressed ? 1 : 4);
  if (wide_min_segment_bytes >
      layout.inverted_offset - layout.segments_offset) {
    return Status::ParseError(StrFormat(
        "walk index %s: segment region holds %llu bytes, too small for "
        "the declared geometry (n=%u, R=%u need at least %llu)",
        path.c_str(),
        static_cast<unsigned long long>(layout.inverted_offset -
                                        layout.segments_offset),
        layout.meta.n, layout.meta.num_fingerprints,
        static_cast<unsigned long long>(wide_min_segment_bytes)));
  }
  const auto wide_decoded_words =
      static_cast<unsigned __int128>(layout.meta.n) *
      layout.meta.num_fingerprints *
      (static_cast<uint64_t>(layout.meta.walk_length) + 1);
  if (wide_decoded_words > (1ULL << 58)) {
    return Status::ParseError(StrFormat(
        "walk index %s declares a decoded walk table beyond addressable "
        "memory (n=%u, R=%u, L=%u)",
        path.c_str(), layout.meta.n, layout.meta.num_fingerprints,
        layout.meta.walk_length));
  }
  return layout;
}

/// Validates the directory arrays: monotone, within their regions, blob
/// sizes well-formed. Shared by both backends.
Status ValidateDirectory(const ParsedLayout& layout, const uint64_t* seg_rel,
                         const uint64_t* inv_rel, const std::string& path) {
  const uint64_t segments_capacity =
      layout.inverted_offset - layout.segments_offset;
  if (seg_rel[0] != 0 || seg_rel[layout.meta.n] > segments_capacity) {
    return Status::ParseError(StrFormat(
        "walk index %s: segment directory spans [%llu, %llu) but the "
        "segment region holds %llu bytes",
        path.c_str(), static_cast<unsigned long long>(seg_rel[0]),
        static_cast<unsigned long long>(seg_rel[layout.meta.n]),
        static_cast<unsigned long long>(segments_capacity)));
  }
  for (uint32_t v = 0; v < layout.meta.n; ++v) {
    if (seg_rel[v] > seg_rel[v + 1]) {
      return Status::ParseError(StrFormat(
          "walk index %s: segment directory not monotone at vertex %u "
          "(directory byte offset %llu)",
          path.c_str(), v,
          static_cast<unsigned long long>(layout.directory_offset +
                                          static_cast<uint64_t>(v) * 8)));
    }
  }
  const uint64_t inverted_capacity =
      layout.file_size - layout.inverted_offset;
  if (inv_rel[0] != 0 || inv_rel[layout.num_slots] != inverted_capacity) {
    return Status::ParseError(StrFormat(
        "walk index %s: inverted-index directory covers %llu bytes but the "
        "region holds %llu",
        path.c_str(),
        static_cast<unsigned long long>(inv_rel[layout.num_slots]),
        static_cast<unsigned long long>(inverted_capacity)));
  }
  const uint64_t max_blob = static_cast<uint64_t>(layout.meta.n) * 8;
  for (uint64_t s = 0; s < layout.num_slots; ++s) {
    const bool ok = inv_rel[s] <= inv_rel[s + 1] &&
                    (inv_rel[s + 1] - inv_rel[s]) % 8 == 0 &&
                    inv_rel[s + 1] - inv_rel[s] <= max_blob;
    if (!ok) {
      return Status::ParseError(StrFormat(
          "walk index %s: inverted-index directory corrupt at slot %llu "
          "(directory byte offset %llu)",
          path.c_str(), static_cast<unsigned long long>(s),
          static_cast<unsigned long long>(
              layout.directory_offset +
              (static_cast<uint64_t>(layout.meta.n) + 1 + s) * 8)));
    }
  }
  return Status::OK();
}

uint64_t DirectoryChecksum(const uint8_t* directory, uint64_t bytes);

/// Shared open-time directory handling for both backends: verifies the
/// directory checksum (whose extent starts right after the header fields,
/// covering the header page's padding), exposes the two directory arrays
/// as views into `base`, and validates their contents.
Status OpenDirectory(const uint8_t* base, const ParsedLayout& layout,
                     const std::string& path, const uint64_t** seg_rel,
                     const uint64_t** inv_rel) {
  if (DirectoryChecksum(base + kHeaderBytes,
                        layout.segments_offset - kHeaderBytes) !=
      layout.directory_checksum) {
    return Status::ParseError(StrFormat(
        "walk index directory checksum mismatch in %s (bytes %zu..%llu)",
        path.c_str(), kHeaderBytes,
        static_cast<unsigned long long>(layout.segments_offset)));
  }
  *seg_rel =
      reinterpret_cast<const uint64_t*>(base + layout.directory_offset);
  *inv_rel = *seg_rel + layout.meta.n + 1;
  return ValidateDirectory(layout, *seg_rel, *inv_rel, path);
}

uint64_t PayloadChecksum(const uint8_t* segments, uint64_t segment_bytes,
                         const uint8_t* inverted, uint64_t inverted_bytes) {
  StreamHasher hasher(kPayloadSalt);
  hasher.AbsorbBytes(segments, segment_bytes);
  hasher.AbsorbBytes(inverted, inverted_bytes);
  return hasher.digest();
}

uint64_t DirectoryChecksum(const uint8_t* directory, uint64_t bytes) {
  StreamHasher hasher(kDirectorySalt);
  hasher.AbsorbBytes(directory, bytes);
  return hasher.digest();
}

/// Decodes one vertex's segment [begin, end) into `out` (WalkWords()
/// layout). `abs_offset` is begin's absolute file offset, used to report
/// the exact corruption site.
Status DecodeSegment(const WalkStoreMeta& meta, bool compressed, VertexId v,
                     const uint8_t* begin, const uint8_t* end,
                     uint64_t abs_offset, const std::string& path,
                     uint32_t* out) {
  const uint32_t L = meta.walk_length;
  const size_t row = static_cast<size_t>(L) + 1;
  for (uint32_t r = 0; r < meta.num_fingerprints; ++r) {
    out[r * row] = v;
    for (uint32_t t = 1; t <= L; ++t) out[r * row + t] = kDead;
  }
  const uint8_t* cursor = begin;
  auto corrupt = [&](const char* what) {
    return Status::ParseError(StrFormat(
        "walk segment of vertex %u in %s: %s at byte offset %llu", v,
        path.c_str(), what,
        static_cast<unsigned long long>(abs_offset + (cursor - begin))));
  };
  const SimdLevel simd = ActiveSimdLevel();
  for (uint32_t r = 0; r < meta.num_fingerprints; ++r) {
    uint32_t length = 0;
    if (compressed) {
      if (!DecodeVarint32(&cursor, end, &length)) {
        return corrupt("malformed walk-length varint");
      }
    } else {
      if (end - cursor < 4) return corrupt("truncated walk length");
      length = ReadScalar<uint32_t>(cursor);
      cursor += 4;
    }
    if (length > L) return corrupt("walk length exceeds walk_length");
    uint32_t prev = v;
    uint32_t t = 1;
    // Vector fast path: bulk-decode a validated prefix of this walk. The
    // kernels commit only whole in-range chunks and leave the cursor at
    // the first byte they did not consume, so the scalar loop below picks
    // up the tail — and is the only place malformed bytes are diagnosed,
    // at the same offsets as a scalar-only decode.
    if (simd != SimdLevel::kScalar && length > 0) {
      uint32_t* dst = out + r * row;
      const size_t bulk =
          compressed
              ? DecodeDeltaRun(simd, &cursor, end, prev, meta.n, dst + 1,
                               length)
              : CopyCheckedWords(simd, &cursor, end, meta.n, dst + 1,
                                 length);
      if (bulk > 0) {
        t += static_cast<uint32_t>(bulk);
        prev = dst[bulk];
      }
    }
    for (; t <= length; ++t) {
      uint32_t position = 0;
      if (compressed) {
        uint64_t zigzag = 0;
        if (!DecodeVarint64(&cursor, end, &zigzag)) {
          return corrupt("malformed position-delta varint");
        }
        // Legal deltas have magnitude < n, so their zigzag codes are
        // < 2n. Reject larger ones *before* decoding: it keeps the
        // int64 addition below overflow-free (UB) for any input.
        if (zigzag >= 2 * static_cast<uint64_t>(meta.n)) {
          return corrupt("position delta out of range");
        }
        const int64_t value =
            static_cast<int64_t>(prev) + ZigZagDecode64(zigzag);
        if (value < 0 || value >= static_cast<int64_t>(meta.n)) {
          return corrupt("decoded position out of range");
        }
        position = static_cast<uint32_t>(value);
      } else {
        if (end - cursor < 4) return corrupt("truncated position");
        position = ReadScalar<uint32_t>(cursor);
        cursor += 4;
        if (position >= meta.n) return corrupt("position out of range");
      }
      out[r * row + t] = position;
      prev = position;
    }
  }
  if (cursor != end) return corrupt("trailing bytes after the last walk");
  return Status::OK();
}

/// Reads the whole file into `out`. Returns the real size even on short
/// files so callers can report it.
Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open: " + path);
  FileCloser closer(f);
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return Status::IoError("cannot seek: " + path);
  }
  const int64_t size = std::ftell(f);
  if (size < 0 || std::fseek(f, 0, SEEK_SET) != 0) {
    return Status::IoError("cannot seek: " + path);
  }
  out->resize(static_cast<size_t>(size));
  if (size > 0 &&
      std::fread(out->data(), 1, out->size(), f) != out->size()) {
    return Status::IoError("short read: " + path);
  }
  return Status::OK();
}

}  // namespace

std::span<const VertexId> WalkStore::Bucket(uint32_t r, uint32_t t,
                                            uint32_t position) const {
  const SlotView slot = Slot(r, t);
  // Exactly std::equal_range at every dispatch level.
  const EqualRange range =
      EqualRangeU32(ActiveSimdLevel(), slot.positions, slot.count, position);
  return {slot.vertices + range.begin, range.end - range.begin};
}

// ---------------------------------------------------------------- writer

Status SaveWalkStore(const WalkStore& store, const std::string& path,
                     const WalkStoreSaveOptions& options) {
  const WalkStoreMeta& meta = store.meta();
  const uint32_t n = meta.n;
  const uint32_t L = meta.walk_length;
  const size_t row = static_cast<size_t>(L) + 1;
  const uint64_t num_slots =
      static_cast<uint64_t>(meta.num_fingerprints) * L;

  // Directory: seg_rel[n+1] then inv_rel[num_slots+1], filled as the
  // regions are encoded.
  std::vector<uint64_t> directory;
  directory.reserve(n + 1 + num_slots + 1);

  std::vector<uint8_t> segments;
  std::vector<uint32_t> walk(store.WalkWords());
  for (VertexId v = 0; v < n; ++v) {
    directory.push_back(segments.size());
    OIPSIM_RETURN_IF_ERROR(store.DecodeVertex(v, walk.data()));
    for (uint32_t r = 0; r < meta.num_fingerprints; ++r) {
      uint32_t length = 0;
      while (length < L && walk[r * row + length + 1] != kDead) ++length;
      if (options.compress) {
        AppendVarint32(&segments, length);
        uint32_t prev = v;
        for (uint32_t t = 1; t <= length; ++t) {
          const uint32_t position = walk[r * row + t];
          AppendVarint64(&segments,
                         ZigZagEncode64(static_cast<int64_t>(position) -
                                        static_cast<int64_t>(prev)));
          prev = position;
        }
      } else {
        AppendWord(&segments, length);
        for (uint32_t t = 1; t <= length; ++t) {
          AppendWord(&segments, walk[r * row + t]);
        }
      }
    }
  }
  directory.push_back(segments.size());

  std::vector<uint32_t> inverted;
  directory.push_back(0);
  for (uint64_t s = 0; s < num_slots; ++s) {
    const uint32_t r = static_cast<uint32_t>(s / L);
    const uint32_t t = static_cast<uint32_t>(s % L) + 1;
    const WalkStore::SlotView slot = store.Slot(r, t);
    inverted.insert(inverted.end(), slot.positions,
                    slot.positions + slot.count);
    inverted.insert(inverted.end(), slot.vertices,
                    slot.vertices + slot.count);
    directory.push_back(static_cast<uint64_t>(inverted.size()) *
                        sizeof(uint32_t));
  }

  const uint64_t directory_bytes = directory.size() * sizeof(uint64_t);
  const uint64_t segments_offset =
      AlignUp(kPageSize + directory_bytes, kPageSize);
  const uint64_t inverted_offset =
      AlignUp(segments_offset + segments.size(), kPageSize);
  const uint64_t inverted_bytes = inverted.size() * sizeof(uint32_t);
  const uint64_t file_size = inverted_offset + inverted_bytes;

  // Checksums cover the full page-padded region extents (the inverted
  // region ends the file, so it has none): a flipped byte anywhere in the
  // file — even in alignment padding — fails exactly one of the three.
  // The directory checksum's extent starts right after the 104 header
  // bytes so the header page's own padding is covered too.
  std::vector<uint8_t> directory_region(segments_offset - kHeaderBytes, 0);
  std::memcpy(directory_region.data() + (kPageSize - kHeaderBytes),
              directory.data(), directory_bytes);
  segments.resize(inverted_offset - segments_offset, 0);
  const auto* inverted_bytes_ptr =
      reinterpret_cast<const uint8_t*>(inverted.data());
  const uint64_t payload_checksum =
      PayloadChecksum(segments.data(), segments.size(), inverted_bytes_ptr,
                      inverted_bytes);
  const uint64_t directory_checksum =
      DirectoryChecksum(directory_region.data(), directory_region.size());

  uint8_t header[kHeaderBytes] = {};
  WriteScalar<uint32_t>(header + 0, kIndexMagic);
  WriteScalar<uint32_t>(header + 4, kIndexVersion);
  WriteScalar<uint32_t>(header + 8, n);
  WriteScalar<uint32_t>(header + 12, meta.num_fingerprints);
  WriteScalar<uint32_t>(header + 16, L);
  WriteScalar<uint32_t>(header + 20,
                        options.compress ? kFlagCompressedSegments : 0u);
  WriteScalar<uint64_t>(header + 24, meta.seed);
  WriteScalar<uint64_t>(header + 32, DampingBits(meta.damping));
  WriteScalar<uint64_t>(header + 40, meta.graph_fingerprint);
  WriteScalar<uint64_t>(header + 48, kPageSize);  // directory offset
  WriteScalar<uint64_t>(header + 56, segments_offset);
  WriteScalar<uint64_t>(header + 64, inverted_offset);
  WriteScalar<uint64_t>(header + 72, file_size);
  WriteScalar<uint64_t>(header + 80, payload_checksum);
  WriteScalar<uint64_t>(header + 88, directory_checksum);
  StreamHasher header_hasher(kHeaderSalt);
  header_hasher.AbsorbBytes(header, kHeaderBytes - sizeof(uint64_t));
  WriteScalar<uint64_t>(header + 96, header_hasher.digest());

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open for writing: " + path);
  FileCloser closer(f);
  // directory_region already carries the header page's padding.
  bool ok = std::fwrite(header, 1, kHeaderBytes, f) == kHeaderBytes &&
            std::fwrite(directory_region.data(), 1,
                        directory_region.size(),
                        f) == directory_region.size();
  if (ok && !segments.empty()) {
    ok = std::fwrite(segments.data(), 1, segments.size(), f) ==
         segments.size();
  }
  if (ok && !inverted.empty()) {
    ok = std::fwrite(inverted_bytes_ptr, 1, inverted_bytes, f) ==
         inverted_bytes;
  }
  ok = ok && std::fflush(f) == 0;
  if (!ok) return Status::IoError("short write: " + path);
  return Status::OK();
}

// ------------------------------------------------------ in-memory backend

InMemoryWalkStore::InMemoryWalkStore(const WalkStoreMeta& meta,
                                     std::vector<uint32_t> walks,
                                     uint32_t num_threads)
    : walks_(std::move(walks)) {
  meta_ = meta;
  OIPSIM_CHECK_EQ(walks_.size(), WalkWords() * meta_.n);
  BuildInverted(num_threads);
}

void InMemoryWalkStore::BuildInverted(uint32_t num_threads) {
  const uint32_t n = meta_.n;
  const uint32_t L = meta_.walk_length;
  const uint64_t num_slots =
      static_cast<uint64_t>(meta_.num_fingerprints) * L;
  slot_offsets_.assign(num_slots + 1, 0);

  // Two passes, both parallel over fingerprints (slots of different r are
  // disjoint, so the result is identical for any thread count): count the
  // alive walks per slot, then counting-sort each slot by position. Filling
  // vertices in ascending order keeps every bucket ascending — the
  // invariant the bitwise-deterministic single-source path relies on.
  ThreadPool pool(num_threads);
  pool.ParallelFor(0, meta_.num_fingerprints, [&](uint64_t r) {
    for (uint32_t t = 1; t <= L; ++t) {
      const uint64_t s = r * L + (t - 1);
      const uint32_t* column =
          walks_.data() + FlatSlot(static_cast<uint32_t>(r), t);
      uint64_t alive = 0;
      for (uint32_t v = 0; v < n; ++v) alive += column[v] != kDead;
      slot_offsets_[s + 1] = alive;
    }
  });
  for (uint64_t s = 0; s < num_slots; ++s) {
    slot_offsets_[s + 1] += slot_offsets_[s];
  }
  inverted_positions_.resize(slot_offsets_[num_slots]);
  inverted_vertices_.resize(slot_offsets_[num_slots]);
  pool.ParallelFor(0, meta_.num_fingerprints, [&](uint64_t r) {
    std::vector<uint32_t> start(n);
    for (uint32_t t = 1; t <= L; ++t) {
      const uint64_t s = r * L + (t - 1);
      const uint32_t* column =
          walks_.data() + FlatSlot(static_cast<uint32_t>(r), t);
      std::fill(start.begin(), start.end(), 0);
      for (uint32_t v = 0; v < n; ++v) {
        if (column[v] != kDead) ++start[column[v]];
      }
      uint32_t running = 0;
      for (uint32_t p = 0; p < n; ++p) {
        const uint32_t count = start[p];
        start[p] = running;
        running += count;
      }
      const uint64_t base = slot_offsets_[s];
      for (uint32_t v = 0; v < n; ++v) {
        const uint32_t position = column[v];
        if (position == kDead) continue;
        const uint64_t at = base + start[position]++;
        inverted_positions_[at] = position;
        inverted_vertices_[at] = v;
      }
    }
  });
}

Status InMemoryWalkStore::DecodeVertex(VertexId v, uint32_t* out) const {
  OIPSIM_DCHECK(v < meta_.n);
  const size_t row = static_cast<size_t>(meta_.walk_length) + 1;
  for (uint32_t r = 0; r < meta_.num_fingerprints; ++r) {
    for (uint32_t t = 0; t < row; ++t) {
      out[r * row + t] = walks_[FlatSlot(r, static_cast<uint32_t>(t)) + v];
    }
  }
  return Status::OK();
}

WalkStore::SlotView InMemoryWalkStore::Slot(uint32_t r, uint32_t t) const {
  OIPSIM_DCHECK(r < meta_.num_fingerprints);
  OIPSIM_DCHECK(t >= 1 && t <= meta_.walk_length);
  const uint64_t s =
      static_cast<uint64_t>(r) * meta_.walk_length + (t - 1);
  const uint64_t begin = slot_offsets_[s];
  return {inverted_positions_.data() + begin,
          inverted_vertices_.data() + begin, slot_offsets_[s + 1] - begin};
}

uint64_t InMemoryWalkStore::ResidentBytes() const {
  return walks_.size() * sizeof(uint32_t) +
         slot_offsets_.size() * sizeof(uint64_t) +
         inverted_positions_.size() * sizeof(uint32_t) +
         inverted_vertices_.size() * sizeof(uint32_t);
}

Result<std::unique_ptr<InMemoryWalkStore>> InMemoryWalkStore::Open(
    const std::string& path, uint32_t num_threads) {
  std::vector<uint8_t> bytes;
  OIPSIM_RETURN_IF_ERROR(ReadFileBytes(path, &bytes));
  auto layout_or =
      ParseHeaderBytes(bytes.data(), bytes.size(), bytes.size(), path);
  if (!layout_or.ok()) return layout_or.status();
  const ParsedLayout& layout = *layout_or;

  const uint64_t* seg_rel = nullptr;
  const uint64_t* inv_rel = nullptr;
  OIPSIM_RETURN_IF_ERROR(
      OpenDirectory(bytes.data(), layout, path, &seg_rel, &inv_rel));

  const uint8_t* segments_base = bytes.data() + layout.segments_offset;
  const uint8_t* inverted_base = bytes.data() + layout.inverted_offset;
  if (PayloadChecksum(segments_base,
                      layout.inverted_offset - layout.segments_offset,
                      inverted_base,
                      layout.file_size - layout.inverted_offset) !=
      layout.payload_checksum) {
    return Status::ParseError(StrFormat(
        "walk index payload checksum mismatch in %s (segments at %llu, "
        "inverted index at %llu)",
        path.c_str(),
        static_cast<unsigned long long>(layout.segments_offset),
        static_cast<unsigned long long>(layout.inverted_offset)));
  }

  std::unique_ptr<InMemoryWalkStore> store(new InMemoryWalkStore());
  store->meta_ = layout.meta;
  const uint32_t n = layout.meta.n;
  // v1 bounded its load allocation by the file size outright (its flat
  // format stored every decoded word). Dead-walk-compressed v2 segments
  // legitimately decode somewhat larger, but a crafted checksum-valid
  // file must not turn a few MB on disk into a tens-of-GB table, so the
  // materialization is capped at a fixed multiple of the file (with a
  // floor so tiny indexes always load). Oversized-but-consistent indexes
  // remain servable through MmapWalkStore, which never materializes the
  // flat table.
  constexpr uint64_t kMaxInMemoryAmplification = 64;
  constexpr uint64_t kMinInMemoryBudgetBytes = 64ull << 20;
  const auto wide_decoded_bytes =
      static_cast<unsigned __int128>(store->WalkWords()) * n *
      sizeof(uint32_t);
  const auto wide_budget_bytes = std::max(
      static_cast<unsigned __int128>(kMinInMemoryBudgetBytes),
      static_cast<unsigned __int128>(bytes.size()) *
          kMaxInMemoryAmplification);
  if (wide_decoded_bytes > wide_budget_bytes) {
    return Status::ParseError(StrFormat(
        "walk index %s decodes to %llu MiB, over %llux its %llu MiB file "
        "— refusing the in-memory load; serve it with mmap instead",
        path.c_str(),
        static_cast<unsigned long long>(
            static_cast<uint64_t>(wide_decoded_bytes >> 20)),
        static_cast<unsigned long long>(kMaxInMemoryAmplification),
        static_cast<unsigned long long>(bytes.size() >> 20)));
  }
  store->walks_.resize(store->WalkWords() * n);
  // Per-vertex decode with a transposing scatter into the (r,t)-major
  // table; this dominates the in-memory cold-open cost (~100 ms for the
  // 62 MB bench index), so it runs in parallel over disjoint contiguous
  // vertex ranges. Vertex v only writes column v of the flat table, so
  // the result is bitwise identical for any thread count; blocks are
  // ordered by vertex range, so reporting the first failed block's error
  // reproduces the serial pass's first-corrupt-vertex diagnostics exactly.
  const uint32_t decode_threads = ThreadPool::ResolveThreadCount(num_threads);
  auto decode_range = [&](VertexId lo, VertexId hi, uint32_t* scratch) {
    for (VertexId v = lo; v < hi; ++v) {
      OIPSIM_RETURN_IF_ERROR(DecodeSegment(
          layout.meta, layout.compressed, v, segments_base + seg_rel[v],
          segments_base + seg_rel[v + 1],
          layout.segments_offset + seg_rel[v], path, scratch));
      for (size_t word = 0; word < store->WalkWords(); ++word) {
        store->walks_[word * n + v] = scratch[word];
      }
    }
    return Status::OK();
  };
  if (decode_threads <= 1 || n < 2 * decode_threads) {
    std::vector<uint32_t> scratch(store->WalkWords());
    OIPSIM_RETURN_IF_ERROR(decode_range(0, n, scratch.data()));
  } else {
    // A few blocks per worker smooth over skewed segment sizes (hub
    // vertices compress worse than leaves).
    const uint64_t num_blocks =
        std::min<uint64_t>(n, static_cast<uint64_t>(decode_threads) * 4);
    std::vector<Status> block_status(num_blocks);
    ThreadPool pool(decode_threads);
    pool.ParallelFor(0, num_blocks, [&](uint64_t block) {
      const auto lo =
          static_cast<VertexId>(static_cast<uint64_t>(n) * block /
                                num_blocks);
      const auto hi =
          static_cast<VertexId>(static_cast<uint64_t>(n) * (block + 1) /
                                num_blocks);
      std::vector<uint32_t> scratch(store->WalkWords());
      block_status[block] = decode_range(lo, hi, scratch.data());
    });
    for (const Status& status : block_status) {
      OIPSIM_RETURN_IF_ERROR(status);
    }
  }

  store->slot_offsets_.resize(layout.num_slots + 1);
  for (uint64_t s = 0; s <= layout.num_slots; ++s) {
    store->slot_offsets_[s] = inv_rel[s] / 8;
  }
  const uint64_t total_entries = store->slot_offsets_[layout.num_slots];
  store->inverted_positions_.resize(total_entries);
  store->inverted_vertices_.resize(total_entries);
  for (uint64_t s = 0; s < layout.num_slots; ++s) {
    const uint64_t begin = store->slot_offsets_[s];
    const uint64_t count = store->slot_offsets_[s + 1] - begin;
    const uint8_t* blob = inverted_base + inv_rel[s];
    std::memcpy(store->inverted_positions_.data() + begin, blob,
                count * sizeof(uint32_t));
    std::memcpy(store->inverted_vertices_.data() + begin,
                blob + count * sizeof(uint32_t), count * sizeof(uint32_t));
  }
  return store;
}

// ----------------------------------------------------------- mmap backend

MmapWalkStore::MmapWalkStore() = default;

MmapWalkStore::~MmapWalkStore() {
#if OIPSIM_HAVE_MMAP
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
#endif
}

Result<std::unique_ptr<MmapWalkStore>> MmapWalkStore::Open(
    const std::string& path) {
#if OIPSIM_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("cannot open: " + path);
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("cannot stat: " + path);
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return Status::ParseError(path + " is empty, not a walk index");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) return Status::IoError("mmap failed: " + path);

  // From here on the mapping is owned by the store, so every error path
  // unmaps through the destructor.
  std::unique_ptr<MmapWalkStore> store(new MmapWalkStore());
  store->path_ = path;
  store->data_ = static_cast<const uint8_t*>(map);
  store->size_ = size;

  // Header + directory are the only pages read at open; the payload
  // regions stay untouched until a query faults them in.
  const size_t header_available =
      size < kHeaderBytes ? static_cast<size_t>(size) : kHeaderBytes;
  auto layout_or =
      ParseHeaderBytes(store->data_, header_available, size, path);
  if (!layout_or.ok()) return layout_or.status();
  const ParsedLayout& layout = *layout_or;

  const uint64_t* seg_rel = nullptr;
  const uint64_t* inv_rel = nullptr;
  OIPSIM_RETURN_IF_ERROR(
      OpenDirectory(store->data_, layout, path, &seg_rel, &inv_rel));

  store->meta_ = layout.meta;
  store->compressed_ = layout.compressed;
  store->payload_checksum_ = layout.payload_checksum;
  store->seg_rel_ = seg_rel;
  store->inv_rel_ = inv_rel;
  store->segments_base_ = store->data_ + layout.segments_offset;
  store->inverted_base_ = store->data_ + layout.inverted_offset;
  // Checksum extents are the padded regions (the inverted region has no
  // padding: its directory end is validated against the file end).
  store->segments_bytes_ = layout.inverted_offset - layout.segments_offset;
  store->inverted_bytes_ = layout.file_size - layout.inverted_offset;
  store->directory_bytes_ = layout.directory_bytes;
  // The header and directory pages were just read and stay hot for the
  // lifetime of the store (every query walks the directory); telling the
  // kernel keeps them ahead of cold payload pages under memory pressure.
  ::madvise(const_cast<uint8_t*>(store->data_), layout.segments_offset,
            MADV_WILLNEED);
  // Batched cold-read accelerator on its own descriptor (the mapping's fd
  // was just closed). Failure to reopen is tolerated: prefetch simply
  // falls back to per-run madvise.
  auto reader_or = SegmentReader::Open(path);
  if (reader_or.ok()) store->reader_ = std::move(reader_or).value();
  return store;
#else
  (void)path;
  return Status::Unimplemented(
      "MmapWalkStore requires POSIX mmap; use the in-memory backend");
#endif
}

Status MmapWalkStore::DecodeVertex(VertexId v, uint32_t* out) const {
  OIPSIM_DCHECK(v < meta_.n);
  const uint64_t begin = seg_rel_[v];
  const uint64_t end = seg_rel_[v + 1];
  return DecodeSegment(meta_, compressed_, v, segments_base_ + begin,
                       segments_base_ + end,
                       static_cast<uint64_t>(segments_base_ - data_) + begin,
                       path_, out);
}

WalkStore::SlotView MmapWalkStore::Slot(uint32_t r, uint32_t t) const {
  OIPSIM_DCHECK(r < meta_.num_fingerprints);
  OIPSIM_DCHECK(t >= 1 && t <= meta_.walk_length);
  const uint64_t s =
      static_cast<uint64_t>(r) * meta_.walk_length + (t - 1);
  const uint64_t count = (inv_rel_[s + 1] - inv_rel_[s]) / 8;
  // Blob offsets are multiples of 8 from a page-aligned base, so the casts
  // land on naturally-aligned uint32 arrays.
  const auto* positions =
      reinterpret_cast<const uint32_t*>(inverted_base_ + inv_rel_[s]);
  return {positions, positions + count, count};
}

uint64_t MmapWalkStore::ResidentBytes() const {
  // Heap footprint is negligible; the header and directory pages are the
  // only part of the mapping open() forces resident.
  return kPageSize + directory_bytes_;
}

void MmapWalkStore::Prefetch(std::span<const VertexId> vertices) const {
#if OIPSIM_HAVE_MMAP
  // Sorting first makes the page ranges monotone, so overlapping and
  // adjacent segments coalesce into one run per contiguous stretch — a
  // clustered warm list costs few submissions regardless of input order.
  // Out-of-range ids are skipped (a hint API must not turn a stale warm
  // list into a crash). With a live segment reader the coalesced runs go
  // out as one batched ring submission; otherwise one madvise per run.
  std::vector<VertexId> sorted(vertices.begin(), vertices.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<SegmentReader::Range> runs;
  uint64_t run_begin = 0;
  uint64_t run_end = 0;
  auto flush = [&] {
    if (run_end > run_begin) {
      runs.push_back(SegmentReader::Range{run_begin, run_end - run_begin});
    }
  };
  const uint64_t segments_abs =
      static_cast<uint64_t>(segments_base_ - data_);
  for (const VertexId v : sorted) {
    if (v >= meta_.n) continue;
    const uint64_t begin =
        (segments_abs + seg_rel_[v]) / kPageSize * kPageSize;
    const uint64_t end =
        AlignUp(segments_abs + seg_rel_[v + 1], kPageSize);
    if (begin <= run_end && run_end > run_begin) {
      run_end = std::max(run_end, end);
    } else {
      flush();
      run_begin = begin;
      run_end = end;
    }
  }
  flush();
  if (runs.empty()) return;
  // Runs can extend past EOF (the last segment's page-aligned end); clamp
  // for the reader, which reads real bytes rather than advising pages.
  if (reader_ != nullptr) {
    for (SegmentReader::Range& run : runs) {
      if (run.offset >= size_) {
        run.length = 0;
      } else {
        run.length = std::min<uint64_t>(run.length, size_ - run.offset);
      }
    }
    reader_->Prefetch(runs);
    return;
  }
  for (const SegmentReader::Range& run : runs) {
    ::madvise(const_cast<uint8_t*>(data_) + run.offset, run.length,
              MADV_WILLNEED);
  }
#else
  (void)vertices;
#endif
}

void MmapWalkStore::PrefetchSlots() const {
#if OIPSIM_HAVE_MMAP
  // Once per store: a cold single-source query walks R·L bucket lookups
  // scattered across the whole inverted region, the worst case for
  // one-page-at-a-time faulting.
  if (slots_prefetched_.exchange(true, std::memory_order_relaxed)) return;
  const uint64_t inverted_abs =
      static_cast<uint64_t>(inverted_base_ - data_);
  if (reader_ != nullptr) {
    const uint64_t length =
        std::min<uint64_t>(inverted_bytes_, size_ - inverted_abs);
    const SegmentReader::Range run{inverted_abs, length};
    reader_->Prefetch(std::span<const SegmentReader::Range>(&run, 1));
    return;
  }
  ::madvise(const_cast<uint8_t*>(data_) + inverted_abs, inverted_bytes_,
            MADV_WILLNEED);
#endif
}

bool MmapWalkStore::UsesIoUring() const {
  return reader_ != nullptr && reader_->using_io_uring();
}

Status MmapWalkStore::VerifyPayload() const {
  if (PayloadChecksum(segments_base_, segments_bytes_, inverted_base_,
                      inverted_bytes_) != payload_checksum_) {
    return Status::ParseError(
        "walk index payload checksum mismatch in " + path_);
  }
  return Status::OK();
}

// ------------------------------------------------------------- index-info

Result<WalkIndexInfo> ReadWalkIndexInfo(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open: " + path);
  FileCloser closer(f);
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return Status::IoError("cannot seek: " + path);
  }
  const int64_t file_size = std::ftell(f);
  if (file_size < 0 || std::fseek(f, 0, SEEK_SET) != 0) {
    return Status::IoError("cannot seek: " + path);
  }
  uint8_t header[kHeaderBytes] = {};
  const size_t available = std::fread(header, 1, kHeaderBytes, f);
  auto layout_or = ParseHeaderBytes(
      header, available, static_cast<uint64_t>(file_size), path);
  if (!layout_or.ok()) return layout_or.status();
  const ParsedLayout& layout = *layout_or;

  WalkIndexInfo info;
  info.version = kIndexVersion;
  info.compressed = layout.compressed;
  info.meta = layout.meta;
  info.file_bytes = layout.file_size;
  info.directory_bytes = layout.directory_bytes;
  // Region extents from the header alone (includes up to a page of
  // alignment padding); exact byte counts live in the directory, which
  // index-info deliberately does not need to read.
  info.segment_bytes = layout.inverted_offset - layout.segments_offset;
  info.inverted_bytes = layout.file_size - layout.inverted_offset;
  info.raw_walk_bytes = static_cast<uint64_t>(layout.meta.n) *
                        (static_cast<uint64_t>(layout.meta.walk_length) + 1) *
                        layout.meta.num_fingerprints * sizeof(uint32_t);
  return info;
}

}  // namespace simrank
