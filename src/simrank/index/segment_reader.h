// Batched byte-range reads against one index file, for the cold serve path.
//
// The mmap backend faults pages in one at a time: a cold top-k that touches
// fifty per-vertex segments pays fifty synchronous disk round-trips. A
// SegmentReader owns its own O_RDONLY descriptor on the index file and
// turns a whole batch of byte ranges into a single io_uring submission —
// one syscall queues every read, the kernel services them in parallel, and
// one wait drains the completions. Two consumers:
//
//   * ReadInto: fetch each range into a caller buffer (router row
//     exchange, benchmarks, anything that wants the bytes directly).
//   * Prefetch: fire the same batched reads into internal bounce buffers
//     purely to populate the page cache ahead of mmap access — this is
//     what `serve --warm` and the batch-query readahead ride on.
//
// io_uring is strictly an accelerator. When the build lacks the headers,
// the kernel rejects the setup syscall, the ring later reports an
// unsupported opcode, or the user passes `--no-uring` (or sets
// SIMRANK_NO_URING=1), every batch falls back to plain preadv / -
// posix_fadvise(WILLNEED) loops with identical bytes and identical error
// text. Nothing above this class can observe which path ran except through
// using_io_uring().
#ifndef OIPSIM_SIMRANK_INDEX_SEGMENT_READER_H_
#define OIPSIM_SIMRANK_INDEX_SEGMENT_READER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "simrank/common/status.h"

namespace simrank {

class SegmentReader {
 public:
  /// One byte range of the underlying file.
  struct Range {
    uint64_t offset = 0;
    uint64_t length = 0;
  };

  /// Opens `path` read-only and, when enabled and supported, sets up an
  /// io_uring. Ring setup failure is not an error — the reader silently
  /// runs in preadv/fadvise mode (check using_io_uring()).
  static Result<std::unique_ptr<SegmentReader>> Open(const std::string& path);

  ~SegmentReader();

  SegmentReader(const SegmentReader&) = delete;
  SegmentReader& operator=(const SegmentReader&) = delete;

  /// True when batches are currently serviced through io_uring. Can flip
  /// to false for the remainder of the reader's life if the kernel turns
  /// out not to support the read opcode.
  bool using_io_uring() const;

  /// Reads ranges[i] into dests[i] (which must hold ranges[i].length
  /// bytes). Ranges may be unsorted, duplicated, or overlapping. A read
  /// past end-of-file is an error ("short read: <path>"), exactly like the
  /// buffered reader. Thread-safe.
  Status ReadInto(std::span<const Range> ranges, uint8_t* const* dests);

  /// Pulls the given ranges into the OS page cache. Purely a hint:
  /// failures of any kind are swallowed, contents are discarded, and the
  /// call never waits for IO. Small scattered ranges are queued on the
  /// ring *asynchronously* — one syscall submits them all and they
  /// complete in parallel while the caller serves queries. Long sequential
  /// runs (and any overflow once every ring slot is in flight) degrade to
  /// posix_fadvise(WILLNEED): kernel readahead already pipelines those
  /// optimally, and keeping them as advice rather than queued reads lets a
  /// concurrent query's demand faults jump ahead of the warm instead of
  /// waiting behind it. Thread-safe.
  void Prefetch(std::span<const Range> ranges);

  /// Process-wide switch consulted at Open time (`--no-uring`). Also
  /// initialized from the SIMRANK_NO_URING environment variable (any
  /// non-empty value other than "0" disables the ring).
  static void SetIoUringEnabled(bool enabled);
  static bool IoUringEnabled();

  /// True when this binary was compiled with io_uring support (Linux with
  /// <linux/io_uring.h> present). Runtime support can still be absent.
  static constexpr bool BuildSupportsIoUring();

 private:
  SegmentReader(std::string path, int fd);

  void SetUpRing();
  void TearDownRing();
  // Services one wave of at most ring-depth reads through the ring. On any
  // "kernel doesn't support this" completion, marks the ring broken and
  // returns false so the caller re-runs the whole batch via preadv.
  bool SubmitWave(std::span<const Range> ranges, uint8_t* const* dests,
                  Status* status);
  Status ReadBatchUring(std::span<const Range> ranges, uint8_t* const* dests);
  Status ReadBatchPreadv(std::span<const Range> ranges, uint8_t* const* dests);
  Status PreadFull(uint8_t* dest, uint64_t length, uint64_t offset);
  // Collects already-posted completions of in-flight async prefetch
  // reads, returning their bounce slots to the free list. Never waits —
  // the kernel publishes CQEs without a syscall. Caller holds mutex_.
  void ReapPrefetchLocked();
  // Waits for every in-flight prefetch read. Must run before any blocking
  // SubmitWave (completion accounting would mix) and before teardown (the
  // kernel writes into bounce_ until the ops finish). Caller holds mutex_.
  void DrainPrefetchLocked();

  const std::string path_;
  const int fd_;

  mutable std::mutex mutex_;  // serializes ring submission/completion
  bool ring_ok_ = false;
  int ring_fd_ = -1;
  // Raw-syscall ring state (opaque outside segment_reader.cc).
  void* sq_ring_ = nullptr;
  size_t sq_ring_bytes_ = 0;
  void* cq_ring_ = nullptr;
  size_t cq_ring_bytes_ = 0;
  void* sqes_ = nullptr;
  size_t sqes_bytes_ = 0;
  bool single_mmap_ = false;
  uint32_t sq_entries_ = 0;
  uint32_t cq_entries_ = 0;
  uint32_t* sq_head_ = nullptr;
  uint32_t* sq_tail_ = nullptr;
  uint32_t* sq_mask_ = nullptr;
  uint32_t* sq_array_ = nullptr;
  uint32_t* cq_head_ = nullptr;
  uint32_t* cq_tail_ = nullptr;
  uint32_t* cq_mask_ = nullptr;
  void* cqes_ = nullptr;

  std::vector<std::vector<uint8_t>> bounce_;  // Prefetch scratch, lazy
  // Async-prefetch bookkeeping: how many reads the kernel still owns, and
  // which bounce slots are free to carry a new one (slot = sqe user_data).
  uint32_t inflight_prefetch_ = 0;
  std::vector<uint32_t> free_slots_;
};

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
constexpr bool SegmentReader::BuildSupportsIoUring() { return true; }
#else
constexpr bool SegmentReader::BuildSupportsIoUring() { return false; }
#endif

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_INDEX_SEGMENT_READER_H_
