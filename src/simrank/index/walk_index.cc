#include "simrank/index/walk_index.h"

#include <cmath>
#include <cstdint>
#include <utility>

#include "simrank/common/coupled_hash.h"
#include "simrank/common/string_util.h"
#include "simrank/common/thread_pool.h"
#include "simrank/graph/graph_io.h"

namespace simrank {

WalkIndexOptions WalkIndexOptions::FromAccuracy(double eps, double delta,
                                                const SimRankOptions& simrank) {
  WalkIndexOptions options = FromSimRank(simrank);
  if (!(eps > 0.0 && eps < 1.0) || !(delta > 0.0 && delta < 1.0)) {
    // Poison the result so Build() rejects it with a clear status instead
    // of silently serving a meaningless accuracy target.
    options.num_fingerprints = 0;
    return options;
  }
  // Inverse Hoeffding with half the error budget: R >= 2·ln(2/delta)/eps².
  // Derived in double first: for extreme targets R can exceed uint32, and
  // a narrowing cast would silently under-provision the index.
  const double fingerprints =
      std::ceil(2.0 * std::log(2.0 / delta) / (eps * eps));
  if (fingerprints > static_cast<double>(UINT32_MAX)) {
    options.num_fingerprints = 0;
    return options;
  }
  options.num_fingerprints = static_cast<uint32_t>(fingerprints);
  // Smallest L with truncation bias C^(L+1)/(1-C) <= eps/2; the geometric
  // tail shrinks by C per step, so a direct scan is cheap and exact. The
  // cap only exists for damping -> 1 pathologies; if it is hit the budget
  // cannot be met, so the target is rejected rather than silently missed.
  const double c = options.damping;
  uint32_t length = 1;
  double bias = c * c / (1.0 - c);  // L = 1
  while (bias > eps / 2.0 && length < kMaxWalkLength) {
    bias *= c;
    ++length;
  }
  if (bias > eps / 2.0) {
    options.num_fingerprints = 0;
    return options;
  }
  options.walk_length = length;
  return options;
}

WalkIndex WalkIndex::FromStore(std::unique_ptr<const WalkStore> store) {
  WalkIndex index;
  const WalkStoreMeta& meta = store->meta();
  index.options_.num_fingerprints = meta.num_fingerprints;
  index.options_.walk_length = meta.walk_length;
  index.options_.damping = meta.damping;
  index.options_.seed = meta.seed;
  index.store_ = std::move(store);
  index.PrecomputeDampingPowers();
  return index;
}

Result<WalkIndex> WalkIndex::Build(const DiGraph& graph,
                                   const WalkIndexOptions& options) {
  if (!options.Valid()) {
    return Status::InvalidArgument(StrFormat(
        "walk index options invalid: need num_fingerprints > 0, "
        "walk_length in [1, %u], damping in (0, 1)", kMaxWalkLength));
  }
  const uint32_t n = graph.n();
  const uint32_t L = options.walk_length;
  std::vector<uint32_t> walks(
      static_cast<size_t>(options.num_fingerprints) * (L + 1) * n,
      kDeadWalk);

  // One task per fingerprint: every step depends only on (seed, r, t,
  // vertex), so the filled slices are identical for any thread count.
  ThreadPool pool(options.num_threads);
  uint32_t* data = walks.data();
  pool.ParallelFor(0, options.num_fingerprints, [&](uint64_t r) {
    const size_t base =
        static_cast<size_t>(r) * (static_cast<size_t>(L) + 1) * n;
    uint32_t* walk = data + base;
    for (uint32_t v = 0; v < n; ++v) walk[v] = v;
    for (uint32_t t = 1; t <= L; ++t) {
      const size_t prev = static_cast<size_t>(t - 1) * n;
      const size_t cur = static_cast<size_t>(t) * n;
      for (uint32_t v = 0; v < n; ++v) {
        const uint32_t at = walk[prev + v];
        if (at == kDeadWalk) continue;
        auto in = graph.InNeighbors(at);
        if (in.empty()) continue;  // walk dies at a source vertex
        walk[cur + v] =
            in[CoupledWalkHash(options.seed, static_cast<uint32_t>(r), t, at) %
               in.size()];
      }
    }
  });

  WalkStoreMeta meta;
  meta.n = n;
  meta.num_fingerprints = options.num_fingerprints;
  meta.walk_length = L;
  meta.damping = options.damping;
  meta.seed = options.seed;
  meta.graph_fingerprint = GraphFingerprint(graph);
  WalkIndex index = FromStore(std::make_unique<InMemoryWalkStore>(
      meta, std::move(walks), options.num_threads));
  index.options_.num_threads = options.num_threads;
  return index;
}

Result<WalkIndex> WalkIndex::Load(const std::string& path,
                                  const LoadOptions& load) {
  if (load.use_mmap) {
    auto store = MmapWalkStore::Open(path);
    if (!store.ok()) return store.status();
    return FromStore(std::move(*store));
  }
  auto store = InMemoryWalkStore::Open(path, load.num_threads);
  if (!store.ok()) return store.status();
  return FromStore(std::move(*store));
}

Status WalkIndex::Save(const std::string& path,
                       const SaveOptions& save) const {
  WalkStoreSaveOptions store_options;
  store_options.compress = save.compress;
  return SaveWalkStore(*store_, path, store_options);
}

void WalkIndex::PrecomputeDampingPowers() {
  damping_powers_.resize(options_.walk_length + 1);
  for (uint32_t t = 0; t <= options_.walk_length; ++t) {
    damping_powers_[t] = std::pow(options_.damping, static_cast<double>(t));
  }
}

double WalkIndex::EstimatePair(VertexId a, VertexId b) const {
  const uint32_t n = store_->meta().n;
  OIPSIM_CHECK(a < n && b < n);
  if (a == b) return 1.0;
  const uint32_t R = options_.num_fingerprints;
  const uint32_t L = options_.walk_length;
  double sum = 0.0;
  if (const uint32_t* walks = store_->FlatWalks()) {
    // Resident flat table: direct (r,t)-major indexing, v1's hot path.
    for (uint32_t r = 0; r < R; ++r) {
      for (uint32_t t = 1; t <= L; ++t) {
        const size_t slot = store_->FlatSlot(r, t);
        const uint32_t pa = walks[slot + a];
        const uint32_t pb = walks[slot + b];
        if (pa == kDeadWalk || pb == kDeadWalk) break;  // a walk died
        if (pa == pb) {
          sum += damping_powers_[t];
          break;  // first meeting only
        }
      }
    }
  } else {
    // Paged backend: two contiguous segment decodes, then the identical
    // comparison over identical positions — bitwise-equal results.
    const size_t row = static_cast<size_t>(L) + 1;
    std::vector<uint32_t> wa(store_->WalkWords());
    std::vector<uint32_t> wb(store_->WalkWords());
    Status status = store_->DecodeVertex(a, wa.data());
    if (status.ok()) status = store_->DecodeVertex(b, wb.data());
    OIPSIM_CHECK_MSG(status.ok(), "corrupt walk segment while serving: %s",
                     status.ToString().c_str());
    for (uint32_t r = 0; r < R; ++r) {
      for (uint32_t t = 1; t <= L; ++t) {
        const uint32_t pa = wa[r * row + t];
        const uint32_t pb = wb[r * row + t];
        if (pa == kDeadWalk || pb == kDeadWalk) break;
        if (pa == pb) {
          sum += damping_powers_[t];
          break;
        }
      }
    }
  }
  return sum / static_cast<double>(options_.num_fingerprints);
}

std::vector<double> WalkIndex::EstimateSingleSource(VertexId v) const {
  const uint32_t n = store_->meta().n;
  OIPSIM_CHECK(v < n);
  const uint32_t R = options_.num_fingerprints;
  const uint32_t L = options_.walk_length;
  const size_t row = static_cast<size_t>(L) + 1;

  // The query vertex's own walks: direct reads from a resident table,
  // otherwise one contiguous segment decode.
  const uint32_t* flat = store_->FlatWalks();
  std::vector<uint32_t> decoded;
  if (flat == nullptr) {
    decoded.resize(store_->WalkWords());
    const Status status = store_->DecodeVertex(v, decoded.data());
    OIPSIM_CHECK_MSG(status.ok(), "corrupt walk segment while serving: %s",
                     status.ToString().c_str());
  }

  std::vector<double> result(n, 0.0);
  // met_round[b] == r+1 marks that b's walk already met v's walk within
  // fingerprint r (first-meeting semantics) — an epoch stamp, so the array
  // is never re-cleared.
  std::vector<uint32_t> met_round(n, 0);
  for (uint32_t r = 0; r < R; ++r) {
    const uint32_t round = r + 1;
    met_round[v] = round;
    for (uint32_t t = 1; t <= L; ++t) {
      const uint32_t pv = flat != nullptr
                              ? flat[store_->FlatSlot(r, t) + v]
                              : decoded[r * row + t];
      if (pv == kDeadWalk) break;  // v's walk died: no further meetings
      const double weight = damping_powers_[t];
      // Only the vertices actually parked at pv in this slot — the
      // output-sensitive core. Buckets are ascending by vertex id, the
      // same per-b accumulation order as the scan, so each result entry
      // is the identical left-to-right sum. Every id is bounds-checked
      // before use (corruption can break the ascending invariant too, so
      // checking only the last element would not do): an out-of-range id
      // is payload corruption the (deliberately payload-blind) mmap open
      // could not have seen, and it must not become an out-of-bounds
      // write below.
      for (const uint32_t b : store_->Bucket(r, t, pv)) {
        OIPSIM_CHECK_MSG(b < n,
                         "corrupt inverted index while serving: vertex id "
                         "%u >= n=%u (run VerifyPayload on this file)",
                         b, n);
        if (met_round[b] == round) continue;
        result[b] += weight;
        met_round[b] = round;
      }
    }
  }
  // Divide (not multiply by a reciprocal) so every entry is bit-identical
  // to the corresponding EstimatePair result for any fingerprint count.
  const double fingerprints =
      static_cast<double>(options_.num_fingerprints);
  for (double& score : result) score /= fingerprints;
  result[v] = 1.0;
  return result;
}

std::vector<double> WalkIndex::EstimateSingleSourceScan(VertexId v) const {
  const uint32_t n = store_->meta().n;
  OIPSIM_CHECK(v < n);
  const uint32_t* walks = store_->FlatWalks();
  OIPSIM_CHECK_MSG(walks != nullptr,
                   "EstimateSingleSourceScan needs resident walks; the %s "
                   "backend serves single-source via the inverted index",
                   store_->backend_name());
  const uint32_t L = options_.walk_length;
  std::vector<double> result(n, 0.0);
  std::vector<uint32_t> met_round(n, 0);
  for (uint32_t r = 0; r < options_.num_fingerprints; ++r) {
    const uint32_t round = r + 1;
    met_round[v] = round;
    for (uint32_t t = 1; t <= L; ++t) {
      const size_t slot = store_->FlatSlot(r, t);
      const uint32_t pv = walks[slot + v];
      if (pv == kDeadWalk) break;
      const double weight = damping_powers_[t];
      for (uint32_t b = 0; b < n; ++b) {
        if (met_round[b] == round || walks[slot + b] != pv) continue;
        result[b] += weight;
        met_round[b] = round;
      }
    }
  }
  const double fingerprints =
      static_cast<double>(options_.num_fingerprints);
  for (double& score : result) score /= fingerprints;
  result[v] = 1.0;
  return result;
}

Status WalkIndex::ValidateGraph(const DiGraph& graph) const {
  if (graph.n() != n()) {
    return Status::InvalidArgument(
        StrFormat("index built for %u vertices, graph has %u", n(),
                  graph.n()));
  }
  const uint64_t graph_print = GraphFingerprint(graph);
  if (graph_print != graph_fingerprint()) {
    return Status::InvalidArgument(StrFormat(
        "graph fingerprint mismatch: index was built from a different "
        "graph (index %s, graph %s)",
        FormatFingerprint(graph_fingerprint()).c_str(),
        FormatFingerprint(graph_print).c_str()));
  }
  return Status::OK();
}

}  // namespace simrank
