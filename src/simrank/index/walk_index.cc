#include "simrank/index/walk_index.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>

#include "simrank/common/coupled_hash.h"
#include "simrank/common/stream_hash.h"
#include "simrank/common/string_util.h"
#include "simrank/common/thread_pool.h"
#include "simrank/graph/graph_io.h"

namespace simrank {

WalkIndexOptions WalkIndexOptions::FromAccuracy(double eps, double delta,
                                                const SimRankOptions& simrank) {
  WalkIndexOptions options = FromSimRank(simrank);
  if (!(eps > 0.0 && eps < 1.0) || !(delta > 0.0 && delta < 1.0)) {
    // Poison the result so Build() rejects it with a clear status instead
    // of silently serving a meaningless accuracy target.
    options.num_fingerprints = 0;
    return options;
  }
  // Inverse Hoeffding with half the error budget: R >= 2·ln(2/delta)/eps².
  // Derived in double first: for extreme targets R can exceed uint32, and
  // a narrowing cast would silently under-provision the index.
  const double fingerprints =
      std::ceil(2.0 * std::log(2.0 / delta) / (eps * eps));
  if (fingerprints > static_cast<double>(UINT32_MAX)) {
    options.num_fingerprints = 0;
    return options;
  }
  options.num_fingerprints = static_cast<uint32_t>(fingerprints);
  // Smallest L with truncation bias C^(L+1)/(1-C) <= eps/2; the geometric
  // tail shrinks by C per step, so a direct scan is cheap and exact. The
  // cap only exists for damping -> 1 pathologies; if it is hit the budget
  // cannot be met, so the target is rejected rather than silently missed.
  const double c = options.damping;
  uint32_t length = 1;
  double bias = c * c / (1.0 - c);  // L = 1
  while (bias > eps / 2.0 && length < 10000) {
    bias *= c;
    ++length;
  }
  if (bias > eps / 2.0) {
    options.num_fingerprints = 0;
    return options;
  }
  options.walk_length = length;
  return options;
}

namespace {

// On-disk layout (native-endian words, like graph_io's binary format —
// index files are portable between hosts of equal endianness; version 1):
//   uint32 magic 'WIDX'   uint32 version
//   uint32 n              uint32 num_fingerprints
//   uint32 walk_length    uint32 reserved (0)
//   uint64 seed           uint64 damping (IEEE-754 bits)
//   uint64 graph_fingerprint
//   uint64 payload_words
//   uint32 payload[payload_words]
//   uint64 checksum (header fields + payload)
constexpr uint32_t kIndexMagic = 0x58444957;  // "WIDX"
constexpr uint32_t kIndexVersion = 1;
/// Domain salt of the file checksum (distinct from the graph-fingerprint
/// domain). Part of the on-disk format.
constexpr uint64_t kChecksumSalt = 0x5349574b31584449ULL;

uint64_t DampingBits(double damping) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(damping));
  std::memcpy(&bits, &damping, sizeof(bits));
  return bits;
}

double DampingFromBits(uint64_t bits) {
  double damping = 0;
  std::memcpy(&damping, &bits, sizeof(damping));
  return damping;
}

uint64_t FileChecksum(uint32_t n, const WalkIndexOptions& options,
                      uint64_t graph_fingerprint,
                      const std::vector<uint32_t>& walks) {
  StreamHasher hasher(kChecksumSalt);
  hasher.Absorb(n);
  hasher.Absorb(options.num_fingerprints);
  hasher.Absorb(options.walk_length);
  hasher.Absorb(options.seed);
  hasher.Absorb(DampingBits(options.damping));
  hasher.Absorb(graph_fingerprint);
  hasher.AbsorbWords(walks.data(), walks.size());
  return hasher.digest();
}

/// RAII FILE handle so every early return closes the stream.
struct FileCloser {
  explicit FileCloser(std::FILE* f) : file(f) {}
  ~FileCloser() {
    if (file != nullptr) std::fclose(file);
  }
  std::FILE* file;
};

}  // namespace

Result<WalkIndex> WalkIndex::Build(const DiGraph& graph,
                                   const WalkIndexOptions& options) {
  if (!options.Valid()) {
    return Status::InvalidArgument(
        "walk index options invalid: need num_fingerprints > 0, "
        "walk_length > 0, damping in (0, 1)");
  }
  WalkIndex index;
  index.options_ = options;
  index.n_ = graph.n();
  index.graph_fingerprint_ = GraphFingerprint(graph);

  const uint32_t n = graph.n();
  const uint32_t L = options.walk_length;
  index.walks_.assign(
      static_cast<size_t>(options.num_fingerprints) * (L + 1) * n, kDeadWalk);

  // One task per fingerprint: every step depends only on (seed, r, t,
  // vertex), so the filled slices are identical for any thread count.
  ThreadPool pool(options.num_threads);
  uint32_t* walks = index.walks_.data();
  pool.ParallelFor(0, options.num_fingerprints, [&](uint64_t r) {
    const size_t base =
        static_cast<size_t>(r) * (static_cast<size_t>(L) + 1) * n;
    uint32_t* walk = walks + base;
    for (uint32_t v = 0; v < n; ++v) walk[v] = v;
    for (uint32_t t = 1; t <= L; ++t) {
      const size_t prev = static_cast<size_t>(t - 1) * n;
      const size_t cur = static_cast<size_t>(t) * n;
      for (uint32_t v = 0; v < n; ++v) {
        const uint32_t at = walk[prev + v];
        if (at == kDeadWalk) continue;
        auto in = graph.InNeighbors(at);
        if (in.empty()) continue;  // walk dies at a source vertex
        walk[cur + v] =
            in[CoupledWalkHash(options.seed, static_cast<uint32_t>(r), t, at) %
               in.size()];
      }
    }
  });
  index.PrecomputeDampingPowers();
  return index;
}

void WalkIndex::PrecomputeDampingPowers() {
  damping_powers_.resize(options_.walk_length + 1);
  for (uint32_t t = 0; t <= options_.walk_length; ++t) {
    damping_powers_[t] = std::pow(options_.damping, static_cast<double>(t));
  }
}

double WalkIndex::EstimatePair(VertexId a, VertexId b) const {
  OIPSIM_CHECK(a < n_ && b < n_);
  if (a == b) return 1.0;
  double sum = 0.0;
  for (uint32_t r = 0; r < options_.num_fingerprints; ++r) {
    for (uint32_t t = 1; t <= options_.walk_length; ++t) {
      const size_t slot = Slot(r, t);
      const uint32_t pa = walks_[slot + a];
      const uint32_t pb = walks_[slot + b];
      if (pa == kDeadWalk || pb == kDeadWalk) break;  // a walk died
      if (pa == pb) {
        sum += damping_powers_[t];
        break;  // first meeting only
      }
    }
  }
  return sum / static_cast<double>(options_.num_fingerprints);
}

std::vector<double> WalkIndex::EstimateSingleSource(VertexId v) const {
  OIPSIM_CHECK(v < n_);
  std::vector<double> row(n_, 0.0);
  // met_round[b] == r+1 marks that b's walk already met v's walk within
  // fingerprint r (first-meeting semantics) — an epoch stamp, so the array
  // is never re-cleared.
  std::vector<uint32_t> met_round(n_, 0);
  for (uint32_t r = 0; r < options_.num_fingerprints; ++r) {
    const uint32_t round = r + 1;
    met_round[v] = round;
    for (uint32_t t = 1; t <= options_.walk_length; ++t) {
      const size_t slot = Slot(r, t);
      const uint32_t pv = walks_[slot + v];
      if (pv == kDeadWalk) break;  // v's walk died: no further meetings
      const double weight = damping_powers_[t];
      for (uint32_t b = 0; b < n_; ++b) {
        if (met_round[b] == round || walks_[slot + b] != pv) continue;
        row[b] += weight;
        met_round[b] = round;
      }
    }
  }
  // Divide (not multiply by a reciprocal) so every entry is bit-identical
  // to the corresponding EstimatePair result for any fingerprint count.
  const double fingerprints =
      static_cast<double>(options_.num_fingerprints);
  for (double& score : row) score /= fingerprints;
  row[v] = 1.0;
  return row;
}

Status WalkIndex::ValidateGraph(const DiGraph& graph) const {
  if (graph.n() != n_) {
    return Status::InvalidArgument(
        StrFormat("index built for %u vertices, graph has %u", n_,
                  graph.n()));
  }
  if (GraphFingerprint(graph) != graph_fingerprint_) {
    return Status::InvalidArgument(
        "graph fingerprint mismatch: index was built from a different "
        "graph");
  }
  return Status::OK();
}

Status WalkIndex::Save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open for writing: " + path);
  FileCloser closer(f);

  const uint32_t header32[6] = {kIndexMagic,
                                kIndexVersion,
                                n_,
                                options_.num_fingerprints,
                                options_.walk_length,
                                0};
  const uint64_t header64[4] = {options_.seed, DampingBits(options_.damping),
                                graph_fingerprint_,
                                static_cast<uint64_t>(walks_.size())};
  const uint64_t checksum =
      FileChecksum(n_, options_, graph_fingerprint_, walks_);
  bool ok = std::fwrite(header32, sizeof(header32), 1, f) == 1 &&
            std::fwrite(header64, sizeof(header64), 1, f) == 1;
  if (ok && !walks_.empty()) {
    ok = std::fwrite(walks_.data(), sizeof(uint32_t), walks_.size(), f) ==
         walks_.size();
  }
  ok = ok && std::fwrite(&checksum, sizeof(checksum), 1, f) == 1;
  ok = ok && std::fflush(f) == 0;
  if (!ok) return Status::IoError("short write: " + path);
  return Status::OK();
}

Result<WalkIndex> WalkIndex::Load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open: " + path);
  FileCloser closer(f);

  // Actual file size, checked against the declared payload before any
  // allocation: a corrupt or crafted header must not trigger a multi-GiB
  // resize (std::bad_alloc has nowhere to go in this exception-free
  // library) when the bytes plainly are not there.
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return Status::IoError("cannot seek: " + path);
  }
  const int64_t file_size = std::ftell(f);
  if (file_size < 0 || std::fseek(f, 0, SEEK_SET) != 0) {
    return Status::IoError("cannot seek: " + path);
  }

  uint32_t header32[6] = {};
  uint64_t header64[4] = {};
  if (std::fread(header32, sizeof(header32), 1, f) != 1 ||
      std::fread(header64, sizeof(header64), 1, f) != 1) {
    return Status::ParseError("truncated walk index header: " + path);
  }
  if (header32[0] != kIndexMagic) {
    return Status::ParseError("bad magic in walk index: " + path);
  }
  if (header32[1] != kIndexVersion) {
    return Status::ParseError(
        StrFormat("unsupported walk index version %u in %s", header32[1],
                  path.c_str()));
  }

  WalkIndex index;
  index.n_ = header32[2];
  index.options_.num_fingerprints = header32[3];
  index.options_.walk_length = header32[4];
  index.options_.seed = header64[0];
  index.options_.damping = DampingFromBits(header64[1]);
  index.graph_fingerprint_ = header64[2];
  const uint64_t payload_words = header64[3];
  if (!index.options_.Valid()) {
    return Status::ParseError("invalid options in walk index: " + path);
  }
  // Overflow-checked num_fingerprints · (walk_length + 1) · n, compared
  // against the real file size while still in 128-bit: a crafted header
  // must neither wrap to a small (or zero) payload size nor slip past the
  // size check into a huge allocation.
  const auto wide_words =
      static_cast<unsigned __int128>(index.options_.num_fingerprints) *
      (static_cast<uint64_t>(index.options_.walk_length) + 1) * index.n_;
  if (wide_words > static_cast<uint64_t>(file_size) / sizeof(uint32_t)) {
    return Status::ParseError(
        StrFormat("walk index dimensions exceed the file in %s: %lld "
                  "bytes on disk",
                  path.c_str(), static_cast<long long>(file_size)));
  }
  const auto expected_words = static_cast<uint64_t>(wide_words);
  // No overflow: expected_words <= file_size/4 < 2^61.
  const uint64_t expected_file_size = sizeof(header32) + sizeof(header64) +
                                      expected_words * sizeof(uint32_t) +
                                      sizeof(uint64_t) /* checksum */;
  if (static_cast<uint64_t>(file_size) != expected_file_size) {
    return Status::ParseError(
        StrFormat("walk index file size mismatch in %s: %lld bytes on "
                  "disk, header implies %llu",
                  path.c_str(), static_cast<long long>(file_size),
                  static_cast<unsigned long long>(expected_file_size)));
  }
  if (payload_words != expected_words) {
    return Status::ParseError(
        StrFormat("walk index payload size mismatch in %s: header says "
                  "%llu words, dimensions imply %llu",
                  path.c_str(),
                  static_cast<unsigned long long>(payload_words),
                  static_cast<unsigned long long>(expected_words)));
  }

  index.walks_.resize(payload_words);
  if (payload_words > 0 &&
      std::fread(index.walks_.data(), sizeof(uint32_t), payload_words, f) !=
          payload_words) {
    return Status::ParseError("truncated walk index payload: " + path);
  }
  uint64_t stored_checksum = 0;
  if (std::fread(&stored_checksum, sizeof(stored_checksum), 1, f) != 1) {
    return Status::ParseError("missing walk index checksum: " + path);
  }
  const uint64_t computed = FileChecksum(index.n_, index.options_,
                                         index.graph_fingerprint_,
                                         index.walks_);
  if (stored_checksum != computed) {
    return Status::ParseError("walk index checksum mismatch: " + path);
  }
  index.PrecomputeDampingPowers();
  return index;
}

}  // namespace simrank
