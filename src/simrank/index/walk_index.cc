#include "simrank/index/walk_index.h"

#include <cmath>
#include <cstdint>
#include <utility>

#include "simrank/common/coupled_hash.h"
#include "simrank/common/simd.h"
#include "simrank/common/string_util.h"
#include "simrank/common/thread_pool.h"
#include "simrank/graph/graph_io.h"
#include "simrank/obs/trace.h"

namespace simrank {

WalkIndexOptions WalkIndexOptions::FromAccuracy(double eps, double delta,
                                                const SimRankOptions& simrank) {
  WalkIndexOptions options = FromSimRank(simrank);
  if (!(eps > 0.0 && eps < 1.0) || !(delta > 0.0 && delta < 1.0)) {
    // Poison the result so Build() rejects it with a clear status instead
    // of silently serving a meaningless accuracy target.
    options.num_fingerprints = 0;
    return options;
  }
  // Inverse Hoeffding with half the error budget: R >= 2·ln(2/delta)/eps².
  // Derived in double first: for extreme targets R can exceed uint32, and
  // a narrowing cast would silently under-provision the index.
  const double fingerprints =
      std::ceil(2.0 * std::log(2.0 / delta) / (eps * eps));
  if (fingerprints > static_cast<double>(UINT32_MAX)) {
    options.num_fingerprints = 0;
    return options;
  }
  options.num_fingerprints = static_cast<uint32_t>(fingerprints);
  // Smallest L with truncation bias C^(L+1)/(1-C) <= eps/2; the geometric
  // tail shrinks by C per step, so a direct scan is cheap and exact. The
  // cap only exists for damping -> 1 pathologies; if it is hit the budget
  // cannot be met, so the target is rejected rather than silently missed.
  const double c = options.damping;
  uint32_t length = 1;
  double bias = c * c / (1.0 - c);  // L = 1
  while (bias > eps / 2.0 && length < kMaxWalkLength) {
    bias *= c;
    ++length;
  }
  if (bias > eps / 2.0) {
    options.num_fingerprints = 0;
    return options;
  }
  options.walk_length = length;
  return options;
}

WalkIndex WalkIndex::FromStore(std::unique_ptr<const WalkStore> store) {
  WalkIndex index;
  const WalkStoreMeta& meta = store->meta();
  index.options_.num_fingerprints = meta.num_fingerprints;
  index.options_.walk_length = meta.walk_length;
  index.options_.damping = meta.damping;
  index.options_.seed = meta.seed;
  index.store_ = std::move(store);
  index.overlay_slot_ = std::make_shared<OverlaySlot>();
  index.PrecomputeDampingPowers();
  return index;
}

void WalkIndex::PublishOverlay(std::shared_ptr<const DeltaOverlay> overlay) {
  OIPSIM_CHECK(overlay_slot_ != nullptr);
  std::lock_guard<std::mutex> lock(overlay_slot_->mutex);
  overlay_slot_->current = std::move(overlay);
}

std::shared_ptr<const DeltaOverlay> WalkIndex::overlay_snapshot() const {
  if (overlay_slot_ == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(overlay_slot_->mutex);
  return overlay_slot_->current;
}

Result<WalkIndex> WalkIndex::Build(const DiGraph& graph,
                                   const WalkIndexOptions& options) {
  if (!options.Valid()) {
    return Status::InvalidArgument(StrFormat(
        "walk index options invalid: need num_fingerprints > 0, "
        "walk_length in [1, %u], damping in (0, 1)", kMaxWalkLength));
  }
  const uint32_t n = graph.n();
  const uint32_t L = options.walk_length;
  std::vector<uint32_t> walks(
      static_cast<size_t>(options.num_fingerprints) * (L + 1) * n,
      kDeadWalk);

  // One task per fingerprint: every step depends only on (seed, r, t,
  // vertex), so the filled slices are identical for any thread count.
  ThreadPool pool(options.num_threads);
  uint32_t* data = walks.data();
  pool.ParallelFor(0, options.num_fingerprints, [&](uint64_t r) {
    const size_t base =
        static_cast<size_t>(r) * (static_cast<size_t>(L) + 1) * n;
    uint32_t* walk = data + base;
    for (uint32_t v = 0; v < n; ++v) walk[v] = v;
    for (uint32_t t = 1; t <= L; ++t) {
      const size_t prev = static_cast<size_t>(t - 1) * n;
      const size_t cur = static_cast<size_t>(t) * n;
      for (uint32_t v = 0; v < n; ++v) {
        const uint32_t at = walk[prev + v];
        if (at == kDeadWalk) continue;
        auto in = graph.InNeighbors(at);
        if (in.empty()) continue;  // walk dies at a source vertex
        walk[cur + v] =
            in[CoupledWalkHash(options.seed, static_cast<uint32_t>(r), t, at) %
               in.size()];
      }
    }
  });

  WalkStoreMeta meta;
  meta.n = n;
  meta.num_fingerprints = options.num_fingerprints;
  meta.walk_length = L;
  meta.damping = options.damping;
  meta.seed = options.seed;
  meta.graph_fingerprint = GraphFingerprint(graph);
  WalkIndex index = FromStore(std::make_unique<InMemoryWalkStore>(
      meta, std::move(walks), options.num_threads));
  index.options_.num_threads = options.num_threads;
  return index;
}

Result<WalkIndex> WalkIndex::Load(const std::string& path,
                                  const LoadOptions& load) {
  if (load.use_mmap) {
    auto store = MmapWalkStore::Open(path);
    if (!store.ok()) return store.status();
    return FromStore(std::move(*store));
  }
  auto store = InMemoryWalkStore::Open(path, load.num_threads);
  if (!store.ok()) return store.status();
  return FromStore(std::move(*store));
}

Status WalkIndex::Save(const std::string& path,
                       const SaveOptions& save) const {
  WalkStoreSaveOptions store_options;
  store_options.compress = save.compress;
  return SaveWalkStore(*store_, path, store_options);
}

void WalkIndex::PrecomputeDampingPowers() {
  damping_powers_.resize(options_.walk_length + 1);
  for (uint32_t t = 0; t <= options_.walk_length; ++t) {
    damping_powers_[t] = std::pow(options_.damping, static_cast<double>(t));
  }
}

namespace {

/// Decodes vertex `v`'s base-store row into `scratch`, returning the
/// pointer; corruption while serving is fatal (checked).
const uint32_t* DecodeBaseRow(const WalkStore& store, VertexId v,
                              std::vector<uint32_t>* scratch) {
  TraceScope scope(TraceStage::kDecode);
  scratch->resize(store.WalkWords());
  const Status status = store.DecodeVertex(v, scratch->data());
  OIPSIM_CHECK_MSG(status.ok(), "corrupt walk segment while serving: %s",
                   status.ToString().c_str());
  if (TraceRecorder* recorder = CurrentTraceRecorder()) {
    recorder->Add(TraceCounter::kRowsDecoded, 1);
    recorder->Add(TraceCounter::kBytesRead,
                  scratch->size() * sizeof(uint32_t));
  }
  return scratch->data();
}

/// First-meeting accumulation over one bucket under base+overlay. The
/// scalar path is the checked ForEachBucketVertex walk — the reference
/// semantics, including the fatal diagnostic on out-of-range ids. With a
/// vector tier active, the bucket is first guarded (all ids < n, strictly
/// ascending — the invariant every valid file satisfies); only then does
/// the vector kernel take over, performing the identical set of updates in
/// the identical ascending order. A guard failure falls through to the
/// scalar walk untouched, so corruption behaves exactly as before.
void AccumulateBucketVertices(const WalkStore& store,
                              const DeltaOverlay* overlay, uint32_t r,
                              uint32_t t, uint32_t pv, uint32_t round,
                              double weight, uint32_t n,
                              std::vector<uint32_t>* merged_scratch,
                              std::vector<uint32_t>* met_round,
                              std::vector<double>* result) {
  TraceRecorder* const recorder = CurrentTraceRecorder();
  if (recorder != nullptr) {
    recorder->Add(TraceCounter::kSlotsProbed, 1);
    if (overlay != nullptr && overlay->Delta(r, t) != nullptr) {
      recorder->Add(TraceCounter::kOverlayRowsMerged, 1);
    }
  }
  const SimdLevel simd = ActiveSimdLevel();
  if (simd != SimdLevel::kScalar) {
    const uint32_t* vertices = nullptr;
    size_t count = 0;
    const DeltaOverlay::SlotDelta* delta =
        overlay == nullptr ? nullptr : overlay->Delta(r, t);
    if (delta == nullptr) {
      const std::span<const VertexId> base = store.Bucket(r, t, pv);
      vertices = base.data();
      count = base.size();
    } else {
      TraceScope merge_scope(TraceStage::kOverlayMerge);
      CollectBucketVertices(store, overlay, r, t, pv, merged_scratch);
      vertices = merged_scratch->data();
      count = merged_scratch->size();
    }
    if (FindFirstInvalidVertex(simd, vertices, count, n) == count) {
      if (recorder != nullptr) {
        recorder->Add(TraceCounter::kBucketEntries, count);
      }
      AccumulateBucket(simd, vertices, count, round, weight,
                       met_round->data(), result->data());
      return;
    }
  }
  size_t scanned = 0;
  ForEachBucketVertex(store, overlay, r, t, pv, [&](const uint32_t b) {
    OIPSIM_CHECK_MSG(b < n,
                     "corrupt inverted index while serving: vertex id "
                     "%u >= n=%u (run VerifyPayload on this file)",
                     b, n);
    ++scanned;
    if ((*met_round)[b] == round) return;
    (*result)[b] += weight;
    (*met_round)[b] = round;
  });
  if (recorder != nullptr) {
    recorder->Add(TraceCounter::kBucketEntries, scanned);
  }
}

}  // namespace

double WalkIndex::EstimatePair(VertexId a, VertexId b,
                               const DeltaOverlay* overlay) const {
  const WalkStore& store = ServingStore(overlay);
  const uint32_t n = store.meta().n;
  OIPSIM_CHECK(a < n && b < n);
  if (a == b) return 1.0;
  const uint32_t R = options_.num_fingerprints;
  const uint32_t L = options_.walk_length;
  const bool pa_patched = overlay != nullptr && overlay->IsPatched(a);
  const bool pb_patched = overlay != nullptr && overlay->IsPatched(b);
  double sum = 0.0;
  const uint32_t* walks = store.FlatWalks();
  if (walks != nullptr && !pa_patched && !pb_patched) {
    // Resident flat table: direct (r,t)-major indexing, v1's hot path.
    for (uint32_t r = 0; r < R; ++r) {
      for (uint32_t t = 1; t <= L; ++t) {
        const size_t slot = store.FlatSlot(r, t);
        const uint32_t pa = walks[slot + a];
        const uint32_t pb = walks[slot + b];
        if (pa == kDeadWalk || pb == kDeadWalk) break;  // a walk died
        if (pa == pb) {
          sum += damping_powers_[t];
          break;  // first meeting only
        }
      }
    }
  } else {
    // Paged backend or a patched endpoint: base positions from the flat
    // table (or one contiguous segment decode per endpoint), patched
    // suffixes overriding per (fingerprint, step) — then the identical
    // comparison over identical positions, so results stay bitwise equal
    // to a rebuilt index's.
    const size_t row = static_cast<size_t>(L) + 1;
    std::vector<uint32_t> scratch_a;
    std::vector<uint32_t> scratch_b;
    const uint32_t* wa =
        walks != nullptr ? nullptr : DecodeBaseRow(store, a, &scratch_a);
    const uint32_t* wb =
        walks != nullptr ? nullptr : DecodeBaseRow(store, b, &scratch_b);
    for (uint32_t r = 0; r < R; ++r) {
      const DeltaOverlay::WalkPatch* qa =
          pa_patched ? overlay->FindPatch(a, r) : nullptr;
      const DeltaOverlay::WalkPatch* qb =
          pb_patched ? overlay->FindPatch(b, r) : nullptr;
      for (uint32_t t = 1; t <= L; ++t) {
        const uint32_t pa =
            qa != nullptr && qa->Covers(t)
                ? qa->Position(t)
                : (walks != nullptr ? walks[store.FlatSlot(r, t) + a]
                                    : wa[r * row + t]);
        const uint32_t pb =
            qb != nullptr && qb->Covers(t)
                ? qb->Position(t)
                : (walks != nullptr ? walks[store.FlatSlot(r, t) + b]
                                    : wb[r * row + t]);
        if (pa == kDeadWalk || pb == kDeadWalk) break;
        if (pa == pb) {
          sum += damping_powers_[t];
          break;
        }
      }
    }
  }
  return sum / static_cast<double>(options_.num_fingerprints);
}

std::vector<double> WalkIndex::EstimateSingleSource(
    VertexId v, const DeltaOverlay* overlay) const {
  const WalkStore& store = ServingStore(overlay);
  const uint32_t n = store.meta().n;
  OIPSIM_CHECK(v < n);
  const uint32_t R = options_.num_fingerprints;
  const uint32_t L = options_.walk_length;
  const size_t row = static_cast<size_t>(L) + 1;

  // The query vertex's own walks: direct reads from a resident table (or
  // one contiguous segment decode), with its patched suffixes overriding
  // per (fingerprint, step).
  const bool v_patched = overlay != nullptr && overlay->IsPatched(v);
  const uint32_t* flat = store.FlatWalks();
  std::vector<uint32_t> decoded;
  const uint32_t* base_row =
      flat != nullptr ? nullptr : DecodeBaseRow(store, v, &decoded);
  // Paged backend: the R·L bucket lookups below touch pages scattered
  // across the whole inverted region — start the readahead (a one-time
  // batched submission) before the first lookup faults.
  if (flat == nullptr) {
    TraceScope prefetch_scope(TraceStage::kColdRead);
    store.PrefetchSlots();
  }

  std::vector<double> result(n, 0.0);
  // met_round[b] == r+1 marks that b's walk already met v's walk within
  // fingerprint r (first-meeting semantics) — an epoch stamp, so the array
  // is never re-cleared.
  std::vector<uint32_t> met_round(n, 0);
  std::vector<uint32_t> merged_scratch;
  TraceScope probe_scope(TraceStage::kIndexProbe);
  for (uint32_t r = 0; r < R; ++r) {
    const uint32_t round = r + 1;
    met_round[v] = round;
    const DeltaOverlay::WalkPatch* patch =
        v_patched ? overlay->FindPatch(v, r) : nullptr;
    for (uint32_t t = 1; t <= L; ++t) {
      const uint32_t pv =
          patch != nullptr && patch->Covers(t)
              ? patch->Position(t)
              : (flat != nullptr ? flat[store.FlatSlot(r, t) + v]
                                 : base_row[r * row + t]);
      if (pv == kDeadWalk) break;  // v's walk died: no further meetings
      const double weight = damping_powers_[t];
      // Only the vertices actually parked at pv in this slot — the
      // output-sensitive core. Buckets (merged with the overlay's slot
      // diff when one is active) are ascending by vertex id, the same
      // per-b accumulation order as the scan, so each result entry is the
      // identical left-to-right sum. Every id is bounds-checked before
      // use (corruption can break the ascending invariant too, so
      // checking only the last element would not do): an out-of-range id
      // is payload corruption the (deliberately payload-blind) mmap open
      // could not have seen, and it must not become an out-of-bounds
      // write — AccumulateBucketVertices guards before any vector fast
      // path and falls back to the checked scalar walk.
      AccumulateBucketVertices(store, overlay, r, t, pv, round, weight, n,
                               &merged_scratch, &met_round, &result);
    }
  }
  // Divide (not multiply by a reciprocal) so every entry is bit-identical
  // to the corresponding EstimatePair result for any fingerprint count.
  const double fingerprints =
      static_cast<double>(options_.num_fingerprints);
  for (double& score : result) score /= fingerprints;
  result[v] = 1.0;
  return result;
}

double WalkIndex::EstimatePairWithRow(std::span<const uint32_t> row_a,
                                      VertexId b,
                                      const DeltaOverlay* overlay) const {
  const WalkStore& store = ServingStore(overlay);
  const uint32_t n = store.meta().n;
  OIPSIM_CHECK(b < n);
  const uint32_t R = options_.num_fingerprints;
  const uint32_t L = options_.walk_length;
  const size_t row = static_cast<size_t>(L) + 1;
  OIPSIM_CHECK(row_a.size() == static_cast<size_t>(R) * row);
  const bool pb_patched = overlay != nullptr && overlay->IsPatched(b);
  const uint32_t* flat = store.FlatWalks();
  std::vector<uint32_t> scratch_b;
  const uint32_t* wb =
      flat != nullptr ? nullptr : DecodeBaseRow(store, b, &scratch_b);
  // Same (r, t) loop, same first-meeting comparison and same damping-power
  // accumulation order as EstimatePair — the sum is bit-identical when the
  // supplied row equals a's materialized row.
  double sum = 0.0;
  for (uint32_t r = 0; r < R; ++r) {
    const DeltaOverlay::WalkPatch* qb =
        pb_patched ? overlay->FindPatch(b, r) : nullptr;
    for (uint32_t t = 1; t <= L; ++t) {
      const uint32_t pa = row_a[r * row + t];
      const uint32_t pb =
          qb != nullptr && qb->Covers(t)
              ? qb->Position(t)
              : (flat != nullptr ? flat[store.FlatSlot(r, t) + b]
                                 : wb[r * row + t]);
      if (pa == kDeadWalk || pb == kDeadWalk) break;
      if (pa == pb) {
        sum += damping_powers_[t];
        break;
      }
    }
  }
  return sum / static_cast<double>(options_.num_fingerprints);
}

std::vector<double> WalkIndex::EstimateSingleSourceWithRow(
    VertexId v, std::span<const uint32_t> row_v,
    const DeltaOverlay* overlay) const {
  const WalkStore& store = ServingStore(overlay);
  const uint32_t n = store.meta().n;
  OIPSIM_CHECK(v < n);
  const uint32_t R = options_.num_fingerprints;
  const uint32_t L = options_.walk_length;
  const size_t row = static_cast<size_t>(L) + 1;
  OIPSIM_CHECK(row_v.size() == static_cast<size_t>(R) * row);

  if (store.FlatWalks() == nullptr) {
    TraceScope prefetch_scope(TraceStage::kColdRead);
    store.PrefetchSlots();
  }
  std::vector<double> result(n, 0.0);
  std::vector<uint32_t> met_round(n, 0);
  std::vector<uint32_t> merged_scratch;
  // Mirrors EstimateSingleSource exactly, with pv read from the supplied
  // row: the bucket walk order and the per-b accumulation order are
  // unchanged, so each entry this index's rows cover is the identical
  // left-to-right sum.
  TraceScope probe_scope(TraceStage::kIndexProbe);
  for (uint32_t r = 0; r < R; ++r) {
    const uint32_t round = r + 1;
    met_round[v] = round;
    for (uint32_t t = 1; t <= L; ++t) {
      const uint32_t pv = row_v[r * row + t];
      if (pv == kDeadWalk) break;
      const double weight = damping_powers_[t];
      AccumulateBucketVertices(store, overlay, r, t, pv, round, weight, n,
                               &merged_scratch, &met_round, &result);
    }
  }
  const double fingerprints =
      static_cast<double>(options_.num_fingerprints);
  for (double& score : result) score /= fingerprints;
  result[v] = 1.0;
  return result;
}

std::vector<uint32_t> WalkIndex::MaterializeRow(
    VertexId v, const DeltaOverlay* overlay) const {
  const WalkStore& store = ServingStore(overlay);
  const uint32_t n = store.meta().n;
  OIPSIM_CHECK(v < n);
  const uint32_t R = options_.num_fingerprints;
  const uint32_t L = options_.walk_length;
  const size_t row = static_cast<size_t>(L) + 1;
  std::vector<uint32_t> out(static_cast<size_t>(R) * row);
  const uint32_t* flat = store.FlatWalks();
  std::vector<uint32_t> decoded;
  const uint32_t* base =
      flat != nullptr ? nullptr : DecodeBaseRow(store, v, &decoded);
  const bool patched = overlay != nullptr && overlay->IsPatched(v);
  for (uint32_t r = 0; r < R; ++r) {
    const DeltaOverlay::WalkPatch* patch =
        patched ? overlay->FindPatch(v, r) : nullptr;
    out[r * row] = v;
    for (uint32_t t = 1; t <= L; ++t) {
      out[r * row + t] =
          patch != nullptr && patch->Covers(t)
              ? patch->Position(t)
              : (flat != nullptr ? flat[store.FlatSlot(r, t) + v]
                                 : base[r * row + t]);
    }
  }
  return out;
}

std::vector<double> WalkIndex::EstimateSingleSourceScan(
    VertexId v, const DeltaOverlay* overlay) const {
  const WalkStore& store = ServingStore(overlay);
  const uint32_t n = store.meta().n;
  OIPSIM_CHECK(v < n);
  const uint32_t* walks = store.FlatWalks();
  OIPSIM_CHECK_MSG(walks != nullptr,
                   "EstimateSingleSourceScan needs resident walks; the %s "
                   "backend serves single-source via the inverted index",
                   store.backend_name());
  const uint32_t L = options_.walk_length;
  const size_t row = static_cast<size_t>(L) + 1;
  // Materialize full rows for the patched vertices up front (null =
  // unpatched) so the O(R·L·n) scan pays an array read per position, not a
  // hash lookup.
  std::vector<const uint32_t*> patched;
  std::vector<std::vector<uint32_t>> patched_rows;
  if (overlay != nullptr && overlay->patched_vertex_count() > 0) {
    patched.assign(n, nullptr);
    patched_rows.reserve(overlay->patched_vertices().size());
    for (const auto& [pv, count] : overlay->patched_vertices()) {
      (void)count;
      patched_rows.emplace_back(store.WalkWords());
      const Status status = simrank::MaterializeRow(
          store, overlay, pv, patched_rows.back().data());
      OIPSIM_CHECK_MSG(status.ok(), "corrupt walk segment while serving: %s",
                       status.ToString().c_str());
      patched[pv] = patched_rows.back().data();
    }
  }
  auto position = [&](uint32_t r, uint32_t t, size_t slot, VertexId b) {
    if (!patched.empty() && patched[b] != nullptr) {
      return patched[b][r * row + t];
    }
    return walks[slot + b];
  };
  std::vector<double> result(n, 0.0);
  std::vector<uint32_t> met_round(n, 0);
  for (uint32_t r = 0; r < options_.num_fingerprints; ++r) {
    const uint32_t round = r + 1;
    met_round[v] = round;
    for (uint32_t t = 1; t <= L; ++t) {
      const size_t slot = store.FlatSlot(r, t);
      const uint32_t pv = position(r, t, slot, v);
      if (pv == kDeadWalk) break;
      const double weight = damping_powers_[t];
      for (uint32_t b = 0; b < n; ++b) {
        if (met_round[b] == round || position(r, t, slot, b) != pv) {
          continue;
        }
        result[b] += weight;
        met_round[b] = round;
      }
    }
  }
  const double fingerprints =
      static_cast<double>(options_.num_fingerprints);
  for (double& score : result) score /= fingerprints;
  result[v] = 1.0;
  return result;
}

Status WalkIndex::ValidateGraph(const DiGraph& graph) const {
  if (graph.n() != n()) {
    return Status::InvalidArgument(
        StrFormat("index built for %u vertices, graph has %u", n(),
                  graph.n()));
  }
  const uint64_t graph_print = GraphFingerprint(graph);
  if (graph_print != graph_fingerprint()) {
    return Status::InvalidArgument(StrFormat(
        "graph fingerprint mismatch: index was built from a different "
        "graph (index %s, graph %s)",
        FormatFingerprint(graph_fingerprint()).c_str(),
        FormatFingerprint(graph_print).c_str()));
  }
  return Status::OK();
}

}  // namespace simrank
