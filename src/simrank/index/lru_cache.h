// Sharded LRU cache for query serving.
//
// Sharding splits the key space across independently-locked LRU maps so
// concurrent readers (the QueryEngine's batch API) rarely contend on one
// mutex. Values are expected to be cheap to copy — the QueryEngine stores
// shared_ptr rows, so a hit hands out a reference without copying the row.
#ifndef OIPSIM_SIMRANK_INDEX_LRU_CACHE_H_
#define OIPSIM_SIMRANK_INDEX_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "simrank/common/macros.h"

namespace simrank {

/// Aggregated cache counters, shared across all ShardedLruCache
/// instantiations (so code holding stats does not depend on the cached
/// value type).
struct LruCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

/// Fixed-capacity LRU map sharded by key hash. Thread-safe.
template <typename Key, typename Value>
class ShardedLruCache {
 public:
  using Stats = LruCacheStats;

  /// `num_shards` independent LRU lists of `capacity_per_shard` entries
  /// each. Both must be positive.
  ShardedLruCache(uint32_t num_shards, uint32_t capacity_per_shard)
      : capacity_per_shard_(capacity_per_shard) {
    OIPSIM_CHECK_GT(num_shards, 0u);
    OIPSIM_CHECK_GT(capacity_per_shard, 0u);
    shards_.reserve(num_shards);
    for (uint32_t i = 0; i < num_shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  /// Returns the cached value and refreshes its recency, or nullopt.
  std::optional<Value> Get(const Key& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      ++shard.stats.misses;
      return std::nullopt;
    }
    ++shard.stats.hits;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->second;
  }

  /// Inserts (or refreshes) `key`, evicting the shard's least-recently-used
  /// entry when full.
  void Put(const Key& key, Value value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      it->second->second = std::move(value);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    if (shard.lru.size() >= capacity_per_shard_) {
      shard.map.erase(shard.lru.back().first);
      shard.lru.pop_back();
      ++shard.stats.evictions;
    }
    shard.lru.emplace_front(key, std::move(value));
    shard.map.emplace(key, shard.lru.begin());
  }

  /// Removes `key`; returns true when it was resident. Counted neither as
  /// a hit nor a miss (invalidation is not a lookup).
  bool Erase(const Key& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) return false;
    shard.lru.erase(it->second);
    shard.map.erase(it);
    return true;
  }

  /// Drops every entry in every shard (an index update made all cached
  /// rows stale). Counters keep accumulating across the clear.
  void Clear() {
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      shard->lru.clear();
      shard->map.clear();
    }
  }

  /// Number of resident entries across all shards.
  size_t size() const {
    size_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      total += shard->lru.size();
    }
    return total;
  }

  /// Aggregated hit/miss/eviction counters across all shards.
  Stats stats() const {
    Stats total;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      total.hits += shard->stats.hits;
      total.misses += shard->stats.misses;
      total.evictions += shard->stats.evictions;
    }
    return total;
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    /// Front = most recently used.
    std::list<std::pair<Key, Value>> lru;
    std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator>
        map;
    Stats stats;
  };

  Shard& ShardFor(const Key& key) {
    // Mix the hash so sequential integer keys spread across shards.
    uint64_t h = std::hash<Key>{}(key);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return *shards_[h % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  uint32_t capacity_per_shard_;
};

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_INDEX_LRU_CACHE_H_
