// Minimal leveled logger for library diagnostics.
//
// Logging is stderr-only and globally gated by a severity threshold so that
// benchmark output on stdout stays machine-parseable. Each line is prefixed
// with a UTC wall-clock timestamp, severity, thread id and source location:
//   [2024-05-01T12:34:56.789012Z INFO 4242 walk_index.cc:118] ...
// The threshold defaults to kWarning and can be set without a rebuild via
// the SIMRANK_LOG_LEVEL environment variable (debug|info|warn|error|off);
// SetLogLevel() overrides it at runtime.
#ifndef OIPSIM_SIMRANK_COMMON_LOGGING_H_
#define OIPSIM_SIMRANK_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace simrank {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Returns the current global logging threshold (default: kWarning).
LogLevel GetLogLevel();

/// Sets the global logging threshold. Messages below `level` are dropped.
void SetLogLevel(LogLevel level);

/// Returns a short name for `level` ("DEBUG", "INFO", ...).
const char* LogLevelName(LogLevel level);

namespace internal {

/// Stream-style log sink; emits on destruction. Not for direct use — use the
/// OIPSIM_LOG macro below.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace simrank

/// Usage: OIPSIM_LOG(kInfo) << "built MST with " << edges << " edges";
#define OIPSIM_LOG(severity)                                          \
  ::simrank::internal::LogMessage(::simrank::LogLevel::severity,      \
                                  __FILE__, __LINE__)

#endif  // OIPSIM_SIMRANK_COMMON_LOGGING_H_
