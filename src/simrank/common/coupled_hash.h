// Deterministic hash shared by the coupled random-walk estimators.
//
// Both the on-the-fly Monte-Carlo estimator (extra/montecarlo) and the
// persistent walk index (index/walk_index) couple their reverse walks
// through this function: at fingerprint r and step t, every walk sitting at
// vertex v takes the same pseudo-random step. Keeping the definition in one
// place guarantees the two estimators sample identical walk distributions
// for equal seeds, and that indexes built by different builds/thread counts
// are bit-identical.
#ifndef OIPSIM_SIMRANK_COMMON_COUPLED_HASH_H_
#define OIPSIM_SIMRANK_COMMON_COUPLED_HASH_H_

#include <cstdint>

namespace simrank {

namespace internal {

/// murmur3 64-bit finaliser.
inline uint64_t MixBits(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

}  // namespace internal

/// Mixes (seed, fingerprint, step, vertex) into a well-distributed 64-bit
/// value. Two finaliser rounds over disjoint field packings — (fingerprint,
/// step) fill one 64-bit word, the vertex the next — so no two distinct
/// inputs alias for any graph size (a single shifted-XOR packing would
/// collide once vertex ids overflow into the step/fingerprint bit ranges,
/// i.e. beyond 2^20 vertices).
inline uint64_t CoupledWalkHash(uint64_t seed, uint32_t fingerprint,
                                uint32_t step, uint32_t vertex) {
  const uint64_t h = internal::MixBits(
      seed ^ ((static_cast<uint64_t>(fingerprint) << 32) | step));
  return internal::MixBits(h ^ vertex);
}

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_COMMON_COUPLED_HASH_H_
