#include "simrank/common/timer.h"

#include <cstdio>

namespace simrank {

void WallTimer::Start() {
  if (!running_) {
    start_ = Clock::now();
    running_ = true;
  }
}

void WallTimer::Stop() {
  if (running_) {
    accumulated_ns_ += std::chrono::duration_cast<std::chrono::nanoseconds>(
                           Clock::now() - start_)
                           .count();
    running_ = false;
  }
}

void WallTimer::Reset() {
  running_ = false;
  accumulated_ns_ = 0;
}

int64_t WallTimer::ElapsedNanos() const {
  int64_t total = accumulated_ns_;
  if (running_) {
    total += std::chrono::duration_cast<std::chrono::nanoseconds>(
                 Clock::now() - start_)
                 .count();
  }
  return total;
}

std::string FormatDuration(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  } else if (seconds >= 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f ns", seconds * 1e9);
  }
  return buf;
}

}  // namespace simrank
