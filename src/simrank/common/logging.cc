#include "simrank/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace simrank {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};
}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel() && level != LogLevel::kOff),
      level_(level) {
  if (enabled_) {
    // Keep only the basename to avoid long absolute paths in logs.
    const char* base = std::strrchr(file, '/');
    stream_ << "[" << LogLevelName(level_) << " " << (base ? base + 1 : file)
            << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal
}  // namespace simrank
