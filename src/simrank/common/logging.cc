#include "simrank/common/logging.h"

#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#ifdef __linux__
#include <sys/syscall.h>
#endif

namespace simrank {

namespace {

/// Parses a SIMRANK_LOG_LEVEL value; returns false on unknown names.
bool ParseLogLevel(const char* text, LogLevel* out) {
  if (text == nullptr) return false;
  if (std::strcmp(text, "debug") == 0 || std::strcmp(text, "DEBUG") == 0) {
    *out = LogLevel::kDebug;
  } else if (std::strcmp(text, "info") == 0 ||
             std::strcmp(text, "INFO") == 0) {
    *out = LogLevel::kInfo;
  } else if (std::strcmp(text, "warn") == 0 ||
             std::strcmp(text, "WARN") == 0 ||
             std::strcmp(text, "warning") == 0 ||
             std::strcmp(text, "WARNING") == 0) {
    *out = LogLevel::kWarning;
  } else if (std::strcmp(text, "error") == 0 ||
             std::strcmp(text, "ERROR") == 0) {
    *out = LogLevel::kError;
  } else if (std::strcmp(text, "off") == 0 || std::strcmp(text, "OFF") == 0) {
    *out = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

/// Threshold seeded from SIMRANK_LOG_LEVEL once, so deployments can turn
/// on debug logs without a rebuild. SetLogLevel still overrides at
/// runtime.
int InitialLogLevel() {
  LogLevel level = LogLevel::kWarning;
  if (const char* env = std::getenv("SIMRANK_LOG_LEVEL")) {
    if (!ParseLogLevel(env, &level)) {
      std::fprintf(stderr,
                   "[WARN logging.cc] unrecognized SIMRANK_LOG_LEVEL '%s' "
                   "(want debug|info|warn|error|off)\n",
                   env);
      level = LogLevel::kWarning;
    }
  }
  return static_cast<int>(level);
}

std::atomic<int> g_log_level{InitialLogLevel()};

/// Kernel thread id; cached per thread (gettid is a syscall).
long CurrentThreadId() {
#ifdef __linux__
  static thread_local const long tid =
      static_cast<long>(::syscall(SYS_gettid));
#else
  static thread_local const long tid = static_cast<long>(::getpid());
#endif
  return tid;
}

}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel() && level != LogLevel::kOff),
      level_(level) {
  if (enabled_) {
    // Wall-clock timestamp with microseconds, UTC, plus the thread id —
    // the minimum needed to correlate server logs across threads and
    // with access/trace logs.
    struct timeval tv;
    gettimeofday(&tv, nullptr);
    struct tm tm_utc;
    const time_t seconds = tv.tv_sec;
    gmtime_r(&seconds, &tm_utc);
    char stamp[40];
    std::snprintf(stamp, sizeof(stamp),
                  "%04d-%02d-%02dT%02d:%02d:%02d.%06ldZ",
                  tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                  tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec,
                  static_cast<long>(tv.tv_usec));
    // Keep only the basename to avoid long absolute paths in logs.
    const char* base = std::strrchr(file, '/');
    stream_ << "[" << stamp << " " << LogLevelName(level_) << " "
            << CurrentThreadId() << " " << (base ? base + 1 : file) << ":"
            << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal
}  // namespace simrank
