// Machine-independent cost instrumentation.
//
// The ICDE'13 paper's central claim is about the *number of additions*
// performed while accumulating partial sums (O(K·d·n²) for psum-SR versus
// O(K·d'·n²) for OIP-SR). Wall-clock time depends on the machine; addition
// counts do not. Every SimRank kernel in this library reports its work
// through OpCounter so benchmarks can print both measures side by side.
#ifndef OIPSIM_SIMRANK_COMMON_OP_COUNTER_H_
#define OIPSIM_SIMRANK_COMMON_OP_COUNTER_H_

#include <cstdint>

namespace simrank {

/// Tallies of the arithmetic work performed by a SimRank kernel.
struct OpCounts {
  /// Floating-point additions/subtractions spent accumulating partial sums
  /// (inner sums over I(a)).
  uint64_t partial_sum_adds = 0;
  /// Additions/subtractions spent on outer partial sums (sums over I(b)).
  uint64_t outer_sum_adds = 0;
  /// Multiplications (damping factors, normalisations).
  uint64_t multiplies = 0;
  /// Set operations (symmetric-difference element visits) during MST build.
  uint64_t set_ops = 0;

  uint64_t total_adds() const { return partial_sum_adds + outer_sum_adds; }
  uint64_t total() const {
    return partial_sum_adds + outer_sum_adds + multiplies + set_ops;
  }

  OpCounts& operator+=(const OpCounts& other) {
    partial_sum_adds += other.partial_sum_adds;
    outer_sum_adds += other.outer_sum_adds;
    multiplies += other.multiplies;
    set_ops += other.set_ops;
    return *this;
  }
};

/// Accumulator passed by pointer into kernels. A null OpCounter is allowed
/// everywhere and makes the instrumentation free.
class OpCounter {
 public:
  OpCounter() = default;

  void AddPartialSumAdds(uint64_t n) { counts_.partial_sum_adds += n; }
  void AddOuterSumAdds(uint64_t n) { counts_.outer_sum_adds += n; }
  void AddMultiplies(uint64_t n) { counts_.multiplies += n; }
  void AddSetOps(uint64_t n) { counts_.set_ops += n; }

  /// Folds another counter's tallies into this one. Used to aggregate
  /// per-block counters after a parallel propagation; merging in block
  /// order keeps the totals identical for every thread count.
  void Merge(const OpCounts& other) { counts_ += other; }

  const OpCounts& counts() const { return counts_; }
  void Reset() { counts_ = OpCounts{}; }

 private:
  OpCounts counts_;
};

/// Null-safe helpers so kernels can write CountPartialAdds(ops, n) without
/// branching at each call site.
inline void CountPartialAdds(OpCounter* ops, uint64_t n) {
  if (ops != nullptr) ops->AddPartialSumAdds(n);
}
inline void CountOuterAdds(OpCounter* ops, uint64_t n) {
  if (ops != nullptr) ops->AddOuterSumAdds(n);
}
inline void CountMultiplies(OpCounter* ops, uint64_t n) {
  if (ops != nullptr) ops->AddMultiplies(n);
}
inline void CountSetOps(OpCounter* ops, uint64_t n) {
  if (ops != nullptr) ops->AddSetOps(n);
}

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_COMMON_OP_COUNTER_H_
