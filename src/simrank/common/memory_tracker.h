// Auxiliary-memory accounting for SimRank kernels.
//
// Fig. 6d of the paper reports the *intermediate* memory of each algorithm
// (partial-sum caches, MST, outer caches, the auxiliary Tk of OIP-DSR) —
// not the O(n²) similarity output. MemoryTracker implements explicit,
// deterministic accounting: kernels register allocations/releases of their
// scratch structures and the tracker records the running and peak totals.
#ifndef OIPSIM_SIMRANK_COMMON_MEMORY_TRACKER_H_
#define OIPSIM_SIMRANK_COMMON_MEMORY_TRACKER_H_

#include <cstddef>
#include <cstdint>

#include "simrank/common/macros.h"

namespace simrank {

/// Tracks current and peak auxiliary bytes. Null-safe free functions below
/// mirror the OpCounter pattern.
class MemoryTracker {
 public:
  MemoryTracker() = default;

  /// Registers an allocation of `bytes` scratch memory.
  void Allocate(uint64_t bytes) {
    current_ += bytes;
    if (current_ > peak_) peak_ = current_;
  }

  /// Registers a release; must not release more than currently registered.
  void Release(uint64_t bytes) {
    OIPSIM_CHECK_LE(bytes, current_);
    current_ -= bytes;
  }

  uint64_t current_bytes() const { return current_; }
  uint64_t peak_bytes() const { return peak_; }

  void Reset() {
    current_ = 0;
    peak_ = 0;
  }

 private:
  uint64_t current_ = 0;
  uint64_t peak_ = 0;
};

inline void TrackAlloc(MemoryTracker* mem, uint64_t bytes) {
  if (mem != nullptr) mem->Allocate(bytes);
}
inline void TrackRelease(MemoryTracker* mem, uint64_t bytes) {
  if (mem != nullptr) mem->Release(bytes);
}

/// Process-wide memory as the kernel sees it, complementing the explicit
/// scratch accounting above: resident/virtual set from /proc/self/statm,
/// peak RSS and data segment from /proc/self/status. All zero on platforms
/// without procfs.
struct ProcessMemoryStats {
  uint64_t resident_bytes = 0;       // VmRSS
  uint64_t virtual_bytes = 0;        // VmSize
  uint64_t peak_resident_bytes = 0;  // VmHWM
  uint64_t data_bytes = 0;           // VmData (heap + writable mappings)
};

/// Samples /proc/self/{statm,status}. Returns false (zeroed stats) when
/// procfs is unavailable. Cheap enough to poll at 1 Hz.
bool ReadProcessMemoryStats(ProcessMemoryStats* out);

/// RAII registration of a scratch buffer's size.
class ScopedTrackedBytes {
 public:
  ScopedTrackedBytes(MemoryTracker* mem, uint64_t bytes)
      : mem_(mem), bytes_(bytes) {
    TrackAlloc(mem_, bytes_);
  }
  ~ScopedTrackedBytes() { TrackRelease(mem_, bytes_); }

  ScopedTrackedBytes(const ScopedTrackedBytes&) = delete;
  ScopedTrackedBytes& operator=(const ScopedTrackedBytes&) = delete;

 private:
  MemoryTracker* mem_;
  uint64_t bytes_;
};

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_COMMON_MEMORY_TRACKER_H_
