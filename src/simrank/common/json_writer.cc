#include "simrank/common/json_writer.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "simrank/common/macros.h"

namespace simrank {

void JsonEscape(std::string_view value, std::string* out) {
  for (const char c : value) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

std::string JsonDouble(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  // 15 digits suffice for most values; escalate until the text parses back
  // to the identical bit pattern (17 always does).
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  stack_.push_back(Frame::kObject);
  has_members_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  OIPSIM_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kObject,
                   "JsonWriter::EndObject outside an object");
  OIPSIM_CHECK_MSG(!pending_key_,
                   "JsonWriter::EndObject after a Key with no value");
  out_.push_back('}');
  stack_.pop_back();
  has_members_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  stack_.push_back(Frame::kArray);
  has_members_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  OIPSIM_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kArray,
                   "JsonWriter::EndArray outside an array");
  out_.push_back(']');
  stack_.pop_back();
  has_members_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  OIPSIM_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kObject,
                   "JsonWriter::Key outside an object");
  OIPSIM_CHECK_MSG(!pending_key_, "JsonWriter::Key after an unconsumed Key");
  if (has_members_.back()) out_.push_back(',');
  has_members_.back() = true;
  out_.push_back('"');
  JsonEscape(key, &out_);
  out_.append("\":");
  pending_key_ = true;
  return *this;
}

void JsonWriter::BeforeValue() {
  if (stack_.empty()) {
    OIPSIM_CHECK_MSG(!root_emitted_,
                     "JsonWriter: a document has exactly one root value");
    root_emitted_ = true;
    return;
  }
  if (stack_.back() == Frame::kObject) {
    OIPSIM_CHECK_MSG(pending_key_,
                     "JsonWriter: object values must follow a Key");
    pending_key_ = false;
    return;
  }
  if (has_members_.back()) out_.push_back(',');
  has_members_.back() = true;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_.push_back('"');
  JsonEscape(value, &out_);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  out_.append(buf);
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out_.append(buf);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  out_.append(JsonDouble(value));
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_.append(value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_.append("null");
  return *this;
}

const std::string& JsonWriter::str() const {
  OIPSIM_CHECK_MSG(stack_.empty(),
                   "JsonWriter::str with %zu unclosed containers",
                   stack_.size());
  return out_;
}

}  // namespace simrank
