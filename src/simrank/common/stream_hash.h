// Incremental 64-bit stream hash (splitmix64-style mixing).
//
// One definition shared by every persisted artefact: the structural graph
// fingerprint (graph/graph_io) and the walk-index file checksum
// (index/walk_index) both absorb through this class. The two must never
// diverge independently — saved indexes embed both digests, so changing
// the mix invalidates every index on disk (bump the index format version
// if that is ever intended).
#ifndef OIPSIM_SIMRANK_COMMON_STREAM_HASH_H_
#define OIPSIM_SIMRANK_COMMON_STREAM_HASH_H_

#include <cstddef>
#include <cstdint>

namespace simrank {

/// Accumulates 64-bit words into a digest; not cryptographic.
class StreamHasher {
 public:
  /// `salt` separates hash domains (graph fingerprint vs file checksum).
  explicit StreamHasher(uint64_t salt = 0x9e3779b97f4a7c15ULL) : h_(salt) {}

  void Absorb(uint64_t x) {
    h_ ^= x + 0x9e3779b97f4a7c15ULL + (h_ << 6) + (h_ >> 2);
    uint64_t z = h_;
    z ^= z >> 30;
    z *= 0xbf58476d1ce4e5b9ULL;
    z ^= z >> 27;
    z *= 0x94d049bb133111ebULL;
    z ^= z >> 31;
    h_ = z;
  }

  void AbsorbWords(const uint32_t* words, size_t count) {
    for (size_t i = 0; i < count; ++i) Absorb(words[i]);
  }

  /// Absorbs an arbitrary byte range: full little-endian 8-byte words, then
  /// a zero-padded tail word, then the length (so "ab" + "c" and "abc"
  /// digest differently). Used for byte-granular regions such as the
  /// varint-compressed walk segments of the v2 index format.
  void AbsorbBytes(const uint8_t* bytes, size_t count) {
    size_t i = 0;
    for (; i + 8 <= count; i += 8) {
      uint64_t word = 0;
      for (size_t j = 0; j < 8; ++j) {
        word |= static_cast<uint64_t>(bytes[i + j]) << (8 * j);
      }
      Absorb(word);
    }
    if (i < count) {
      uint64_t word = 0;
      for (size_t j = 0; i + j < count; ++j) {
        word |= static_cast<uint64_t>(bytes[i + j]) << (8 * j);
      }
      Absorb(word);
    }
    Absorb(count);
  }

  uint64_t digest() const { return h_; }

 private:
  uint64_t h_;
};

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_COMMON_STREAM_HASH_H_
