// LEB128 varint and zigzag codecs for the compressed on-disk formats.
//
// The walk-index v2 segment encoding (index/walk_store) stores per-vertex
// walk positions as zigzag deltas between consecutive steps, varint-packed;
// graph_io's binary format is expected to adopt the same codec. Encoders
// append to a byte buffer; decoders consume from a bounded [cursor, end)
// range and reject truncation, encodings longer than the maximum byte
// count, and values that overflow the target width, so a corrupted or
// crafted file surfaces as a decode error instead of garbage positions.
// Non-canonical zero-padded encodings within those limits (e.g.
// {0x80, 0x00} for 0) do decode; consumers needing byte-canonical input
// (walk_store's re-save determinism) get it from the encoder side, which
// only ever emits minimal encodings.
#ifndef OIPSIM_SIMRANK_COMMON_VARINT_H_
#define OIPSIM_SIMRANK_COMMON_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace simrank {

/// Longest LEB128 encodings of the two supported widths.
inline constexpr size_t kMaxVarint32Bytes = 5;
inline constexpr size_t kMaxVarint64Bytes = 10;

/// Appends the LEB128 encoding of `value` (1..10 bytes) to `out`.
inline void AppendVarint64(std::vector<uint8_t>* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

/// Appends the LEB128 encoding of `value` (1..5 bytes) to `out`.
inline void AppendVarint32(std::vector<uint8_t>* out, uint32_t value) {
  AppendVarint64(out, value);
}

/// Decodes one varint from [*cursor, end). On success advances *cursor past
/// the encoding and returns true. Returns false — leaving *cursor
/// unspecified — when the buffer ends mid-value, the encoding runs past 10
/// bytes, or the final byte carries bits beyond the 64-bit range.
inline bool DecodeVarint64(const uint8_t** cursor, const uint8_t* end,
                           uint64_t* value) {
  const uint8_t* p = *cursor;
  uint64_t result = 0;
  for (size_t i = 0; i < kMaxVarint64Bytes; ++i) {
    if (p == end) return false;  // truncated mid-value
    const uint8_t byte = *p++;
    // Byte 10 may only contribute the single remaining bit (64 = 9·7 + 1).
    if (i == kMaxVarint64Bytes - 1 && (byte & 0xFE) != 0) return false;
    result |= static_cast<uint64_t>(byte & 0x7F) << (7 * i);
    if ((byte & 0x80) == 0) {
      *cursor = p;
      *value = result;
      return true;
    }
  }
  return false;  // continuation bit still set after the maximum length
}

/// 32-bit DecodeVarint64 with the tighter 5-byte / 32-bit overflow checks.
inline bool DecodeVarint32(const uint8_t** cursor, const uint8_t* end,
                           uint32_t* value) {
  const uint8_t* p = *cursor;
  uint32_t result = 0;
  for (size_t i = 0; i < kMaxVarint32Bytes; ++i) {
    if (p == end) return false;  // truncated mid-value
    const uint8_t byte = *p++;
    // Byte 5 may only contribute the low 4 bits (32 = 4·7 + 4).
    if (i == kMaxVarint32Bytes - 1 && (byte & 0xF0) != 0) return false;
    result |= static_cast<uint32_t>(byte & 0x7F) << (7 * i);
    if ((byte & 0x80) == 0) {
      *cursor = p;
      *value = result;
      return true;
    }
  }
  return false;  // continuation bit still set after the maximum length
}

/// Zigzag maps signed values to unsigned so small-magnitude deltas of
/// either sign get short varints: 0,-1,1,-2,... -> 0,1,2,3,...
inline uint64_t ZigZagEncode64(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

inline int64_t ZigZagDecode64(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^ -static_cast<int64_t>(value & 1);
}

inline uint32_t ZigZagEncode32(int32_t value) {
  return (static_cast<uint32_t>(value) << 1) ^
         static_cast<uint32_t>(value >> 31);
}

inline int32_t ZigZagDecode32(uint32_t value) {
  return static_cast<int32_t>(value >> 1) ^ -static_cast<int32_t>(value & 1);
}

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_COMMON_VARINT_H_
