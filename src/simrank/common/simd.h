// Runtime-dispatched vector kernels for the serve path.
//
// Three hot loops dominate a walk-index query once the page cache is warm:
// the LEB128 delta+varint segment decode (walk_store.cc), the
// sorted-positions equal-range lookup behind WalkStore::Bucket, and the
// per-bucket score accumulation of EstimateSingleSource. Each gets an AVX2
// kernel with SSE4 and scalar fallbacks, selected once per process by
// CPUID (clamped by the SIMRANK_SIMD_LEVEL environment variable) and
// consulted per call, so one process can exercise every tier.
//
// The contract that keeps the repo's bitwise-equality discipline intact:
// a vector kernel never *replaces* the scalar path, it commits a prefix of
// the scalar path's work. Decode kernels validate a whole chunk in
// registers and either write it out and advance the cursor, or leave both
// untouched and return early — the caller's scalar loop then handles the
// tail, including every malformed-input case, at the exact byte offset the
// scalar-only build would report. The accumulation kernel only runs after
// a guard pass proved the bucket holds strictly-ascending in-range ids
// (the invariant valid files always satisfy); anything else replays the
// scalar walk so corruption diagnostics fire identically.
#ifndef OIPSIM_SIMRANK_COMMON_SIMD_H_
#define OIPSIM_SIMRANK_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace simrank {

/// Kernel tiers, ordered so a numeric comparison is "at most this wide".
enum class SimdLevel : uint8_t {
  kScalar = 0,
  kSse4 = 1,
  kAvx2 = 2,
};

/// "scalar", "sse4" or "avx2".
const char* SimdLevelName(SimdLevel level);

/// The widest tier this CPU supports (CPUID probe, cached). kScalar on
/// non-x86 builds.
SimdLevel MaxSupportedSimdLevel();

/// The tier the serve path uses: MaxSupportedSimdLevel() clamped by the
/// SIMRANK_SIMD_LEVEL environment variable ("scalar", "sse4" or "avx2";
/// unset or unrecognized values mean no clamp). Cached after the first
/// call; a relaxed atomic load afterwards.
SimdLevel ActiveSimdLevel();

/// Re-reads SIMRANK_SIMD_LEVEL and republishes the active level. Lets the
/// dispatch-correctness tests drive every tier from one process; callers
/// must not race it against in-flight queries.
void ReloadSimdLevelFromEnv();

/// Bulk-decodes a prefix of a run of `count` zigzag position-delta varints
/// from [*cursor, end) into out[0..), starting from previous position
/// `prev`, with every decoded position validated to lie in [0, n).
///
/// Partial-commit semantics: only whole chunks (8 values on AVX2, 4 on
/// SSE4) of single-byte varint codes that pass every validation are
/// written and consumed; the first multi-byte code, truncated chunk, or
/// out-of-range value stops the kernel *before* the offending chunk.
/// Returns the number of values decoded (cursor advanced past exactly
/// their bytes); the caller's scalar loop continues from there and is the
/// only place malformed input is diagnosed. kScalar always returns 0.
size_t DecodeDeltaRun(SimdLevel level, const uint8_t** cursor,
                      const uint8_t* end, uint32_t prev, uint32_t n,
                      uint32_t* out, size_t count);

/// Uncompressed-segment analog: copies a prefix of `count` little-endian
/// uint32 position words from [*cursor, end) into out[0..), committing
/// only whole chunks in which every word is < n. Returns the number of
/// words copied; the scalar loop owns the tail and every error. kScalar
/// always returns 0.
size_t CopyCheckedWords(SimdLevel level, const uint8_t** cursor,
                        const uint8_t* end, uint32_t n, uint32_t* out,
                        size_t count);

/// Half-open index range [begin, end) of `key` within the ascending array
/// `values` — exactly std::equal_range, at every level.
struct EqualRange {
  size_t begin = 0;
  size_t end = 0;
};
EqualRange EqualRangeU32(SimdLevel level, const uint32_t* values,
                         size_t count, uint32_t key);

/// Index of the first element violating the valid-bucket invariant
/// (vertices[i] < n and strictly ascending), or `count` when the whole
/// array satisfies it. The guard in front of AccumulateBucket.
size_t FindFirstInvalidVertex(SimdLevel level, const uint32_t* vertices,
                              size_t count, uint32_t n);

/// First-meeting accumulation over one valid bucket: for every b in
/// `vertices` with met_round[b] != round, adds `weight` to result[b] and
/// stamps met_round[b] = round. Caller guarantees the valid-bucket
/// invariant (all ids < the result extent, strictly ascending), under
/// which every level — including the gathered AVX2 path — performs the
/// identical set of updates as the scalar loop.
void AccumulateBucket(SimdLevel level, const uint32_t* vertices,
                      size_t count, uint32_t round, double weight,
                      uint32_t* met_round, double* result);

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_COMMON_SIMD_H_
