#include "simrank/common/table_printer.h"

#include "simrank/common/macros.h"

namespace simrank {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  OIPSIM_CHECK(!headers_.empty());
  alignment_.assign(headers_.size(), Align::kRight);
  alignment_[0] = Align::kLeft;
}

void TablePrinter::SetAlignment(std::vector<Align> alignment) {
  OIPSIM_CHECK_EQ(alignment.size(), headers_.size());
  alignment_ = std::move(alignment);
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  OIPSIM_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(Row{false, std::move(cells)});
}

void TablePrinter::AddSeparator() { rows_.push_back(Row{true, {}}); }

size_t TablePrinter::num_rows() const {
  size_t n = 0;
  for (const auto& row : rows_) {
    if (!row.separator) ++n;
  }
  return n;
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto render_line = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) line += "  ";
      const std::string& cell = cells[c];
      size_t pad = widths[c] - cell.size();
      if (alignment_[c] == Align::kRight) {
        line += std::string(pad, ' ') + cell;
      } else {
        line += cell + std::string(pad, ' ');
      }
    }
    // Trim trailing spaces from left-aligned last columns.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  auto separator_line = [&]() {
    std::string line;
    for (size_t c = 0; c < widths.size(); ++c) {
      if (c > 0) line += "  ";
      line += std::string(widths[c], '-');
    }
    return line + "\n";
  };

  std::string out = render_line(headers_);
  out += separator_line();
  for (const auto& row : rows_) {
    out += row.separator ? separator_line() : render_line(row.cells);
  }
  return out;
}

void TablePrinter::Print(std::FILE* out) const {
  std::string rendered = Render();
  std::fwrite(rendered.data(), 1, rendered.size(), out);
  std::fflush(out);
}

void PrintSection(const std::string& title, std::FILE* out) {
  std::fprintf(out, "\n=== %s ===\n", title.c_str());
  std::fflush(out);
}

}  // namespace simrank
