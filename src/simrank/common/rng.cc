#include "simrank/common/rng.h"

#include <cmath>
#include <numbers>
#include <unordered_set>

namespace simrank {

namespace {

inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
  // A defensively non-zero state: xoshiro must not start all-zero.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::operator()() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  OIPSIM_CHECK_GT(bound, 0u);
  // Lemire's multiply-shift with rejection for exact uniformity.
  uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  OIPSIM_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextGaussian() {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

uint64_t Rng::NextPowerLaw(double alpha, uint64_t max_value) {
  OIPSIM_CHECK_GT(alpha, 1.0);
  OIPSIM_CHECK_GE(max_value, 1u);
  // Inverse CDF of a continuous Pareto truncated to [1, max_value + 1).
  const double one_minus_alpha = 1.0 - alpha;
  const double hi = std::pow(static_cast<double>(max_value) + 1.0,
                             one_minus_alpha);
  const double u = NextDouble();
  const double x = std::pow(1.0 + u * (hi - 1.0), 1.0 / one_minus_alpha);
  uint64_t v = static_cast<uint64_t>(x);
  if (v < 1) v = 1;
  if (v > max_value) v = max_value;
  return v;
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t k) {
  OIPSIM_CHECK_LE(k, n);
  std::vector<uint32_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k * 3ULL >= n) {
    std::vector<uint32_t> all(n);
    for (uint32_t i = 0; i < n; ++i) all[i] = i;
    Shuffle(&all);
    all.resize(k);
    return all;
  }
  // Floyd's algorithm: k draws, each accepted exactly once.
  std::unordered_set<uint32_t> seen;
  seen.reserve(k * 2);
  for (uint32_t j = n - k; j < n; ++j) {
    uint32_t t = static_cast<uint32_t>(NextUint64(j + 1));
    if (!seen.insert(t).second) {
      seen.insert(j);
      out.push_back(j);
    } else {
      out.push_back(t);
    }
  }
  return out;
}

}  // namespace simrank
