// Core assertion and utility macros used across the oipsim codebase.
//
// The library is built without exceptions (Google C++ style); programming
// errors abort via OIPSIM_CHECK, while recoverable errors flow through
// simrank::Status / simrank::Result<T> (see status.h).
#ifndef OIPSIM_SIMRANK_COMMON_MACROS_H_
#define OIPSIM_SIMRANK_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// Aborts the process with a diagnostic when `condition` is false.
/// Use for invariants and programming errors, never for user input.
#define OIPSIM_CHECK(condition)                                              \
  do {                                                                       \
    if (!(condition)) {                                                      \
      std::fprintf(stderr, "OIPSIM_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #condition);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

/// OIPSIM_CHECK with a printf-style message appended to the diagnostic.
#define OIPSIM_CHECK_MSG(condition, ...)                                     \
  do {                                                                       \
    if (!(condition)) {                                                      \
      std::fprintf(stderr, "OIPSIM_CHECK failed at %s:%d: %s: ", __FILE__,   \
                   __LINE__, #condition);                                    \
      std::fprintf(stderr, __VA_ARGS__);                                     \
      std::fprintf(stderr, "\n");                                            \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define OIPSIM_CHECK_EQ(a, b) OIPSIM_CHECK((a) == (b))
#define OIPSIM_CHECK_NE(a, b) OIPSIM_CHECK((a) != (b))
#define OIPSIM_CHECK_LT(a, b) OIPSIM_CHECK((a) < (b))
#define OIPSIM_CHECK_LE(a, b) OIPSIM_CHECK((a) <= (b))
#define OIPSIM_CHECK_GT(a, b) OIPSIM_CHECK((a) > (b))
#define OIPSIM_CHECK_GE(a, b) OIPSIM_CHECK((a) >= (b))

/// Debug-only check; compiled out in release builds.
#ifndef NDEBUG
#define OIPSIM_DCHECK(condition) OIPSIM_CHECK(condition)
#else
#define OIPSIM_DCHECK(condition) \
  do {                           \
  } while (0)
#endif

/// Propagates a non-OK Status from an expression returning Status.
#define OIPSIM_RETURN_IF_ERROR(expr)             \
  do {                                           \
    ::simrank::Status _oipsim_status = (expr);   \
    if (!_oipsim_status.ok()) {                  \
      return _oipsim_status;                     \
    }                                            \
  } while (0)

/// Marks a class as neither copyable nor movable.
#define OIPSIM_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;             \
  TypeName& operator=(const TypeName&) = delete

#endif  // OIPSIM_SIMRANK_COMMON_MACROS_H_
