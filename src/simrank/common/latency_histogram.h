// Lock-free fixed-bucket latency histogram for serving metrics.
//
// Buckets are log-spaced powers of two in microseconds — bucket i counts
// samples <= 2^i µs, the last bucket is +Inf — the classic Prometheus
// histogram shape: cheap to record (one relaxed fetch_add on the hot
// path), mergeable, and good enough for p50/p99 estimates across six
// orders of magnitude of latency. Recording and snapshotting are wait-free
// and thread-safe; a snapshot taken concurrently with recording may be off
// by in-flight increments, which is the usual (and harmless) monitoring
// semantics.
#ifndef OIPSIM_SIMRANK_COMMON_LATENCY_HISTOGRAM_H_
#define OIPSIM_SIMRANK_COMMON_LATENCY_HISTOGRAM_H_

#include <atomic>
#include <cstdint>

namespace simrank {

class LatencyHistogram {
 public:
  /// Finite upper bounds 1 µs .. 2^20 µs (~1.05 s), then +Inf.
  static constexpr uint32_t kNumFiniteBuckets = 21;
  static constexpr uint32_t kNumBuckets = kNumFiniteBuckets + 1;

  /// Upper bound of bucket `i` in microseconds; UINT64_MAX for the +Inf
  /// bucket.
  static constexpr uint64_t BucketUpperMicros(uint32_t i) {
    return i < kNumFiniteBuckets ? (1ull << i) : UINT64_MAX;
  }

  /// Records one sample. Wait-free; callable from any thread.
  void Record(uint64_t micros) {
    uint32_t bucket = 0;
    while (bucket < kNumFiniteBuckets && micros > BucketUpperMicros(bucket)) {
      ++bucket;
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_micros_.fetch_add(micros, std::memory_order_relaxed);
  }

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum_micros = 0;
    /// Per-bucket counts (not cumulative).
    uint64_t buckets[kNumBuckets] = {};

    /// Adds `other`'s counts into this snapshot. All histograms share the
    /// same fixed bucket bounds, so merging is associative and commutative
    /// — shard or per-thread snapshots fold in any order.
    void Merge(const Snapshot& other) {
      count += other.count;
      sum_micros += other.sum_micros;
      for (uint32_t i = 0; i < kNumBuckets; ++i) {
        buckets[i] += other.buckets[i];
      }
    }

    /// Upper bound (µs) of the bucket where the cumulative count crosses
    /// `quantile` of the total — a conservative estimate within one
    /// bucket's resolution. 0 when empty.
    uint64_t QuantileUpperMicros(double quantile) const {
      if (count == 0) return 0;
      const double target = quantile * static_cast<double>(count);
      uint64_t cumulative = 0;
      for (uint32_t i = 0; i < kNumBuckets; ++i) {
        cumulative += buckets[i];
        if (static_cast<double>(cumulative) >= target) {
          return BucketUpperMicros(i);
        }
      }
      return BucketUpperMicros(kNumBuckets - 1);
    }
  };

  Snapshot snapshot() const {
    Snapshot out;
    out.count = count_.load(std::memory_order_relaxed);
    out.sum_micros = sum_micros_.load(std::memory_order_relaxed);
    for (uint32_t i = 0; i < kNumBuckets; ++i) {
      out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_micros_{0};
};

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_COMMON_LATENCY_HISTOGRAM_H_
