// Small string helpers shared by IO, logging and the benchmark reporters.
#ifndef OIPSIM_SIMRANK_COMMON_STRING_UTIL_H_
#define OIPSIM_SIMRANK_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace simrank {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits `text` on `delim`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view text, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view StrTrim(std::string_view text);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Parses a non-negative integer; returns false on any malformed input
/// (empty, overflow, trailing garbage).
bool ParseUint64(std::string_view text, uint64_t* out);

/// Parses a double; returns false on malformed input.
bool ParseDouble(std::string_view text, double* out);

/// Formats a byte count as a compact human string ("1.5 MB", "312 KB").
std::string FormatBytes(uint64_t bytes);

/// Formats a count with thousands separators ("12,345,678").
std::string FormatCount(uint64_t count);

/// Formats a double with `digits` significant decimal places, trimming
/// trailing zeros ("0.83", "1.5").
std::string FormatDouble(double value, int digits);

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_COMMON_STRING_UTIL_H_
