// Wall-clock timing utilities used by the benchmark harness and the
// per-phase metrics of the SimRank engines.
#ifndef OIPSIM_SIMRANK_COMMON_TIMER_H_
#define OIPSIM_SIMRANK_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>
#include <string>

namespace simrank {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  /// Constructs a stopped timer with zero accumulated time.
  WallTimer() = default;

  /// Starts (or restarts after Stop) accumulating time.
  void Start();

  /// Stops accumulating; Elapsed* keeps the accumulated total.
  void Stop();

  /// Resets the accumulated time to zero and stops the timer.
  void Reset();

  /// True while the timer is running.
  bool running() const { return running_; }

  /// Accumulated time in nanoseconds (includes the live segment if running).
  int64_t ElapsedNanos() const;

  double ElapsedMicros() const { return ElapsedNanos() / 1e3; }
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }
  double ElapsedSeconds() const { return ElapsedNanos() / 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  bool running_ = false;
  Clock::time_point start_{};
  int64_t accumulated_ns_ = 0;
};

/// Adds the scope's wall time into `*sink_seconds` on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink_seconds) : sink_(sink_seconds) {
    timer_.Start();
  }
  ~ScopedTimer() {
    timer_.Stop();
    if (sink_ != nullptr) *sink_ += timer_.ElapsedSeconds();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* sink_;
  WallTimer timer_;
};

/// Formats a duration in seconds as a compact human string, e.g. "1.24 s",
/// "83.1 ms", "12.5 us".
std::string FormatDuration(double seconds);

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_COMMON_TIMER_H_
