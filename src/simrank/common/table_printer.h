// Aligned console tables for the benchmark harness.
//
// Every bench binary prints the same rows/series the paper's figures report;
// TablePrinter renders them with aligned columns so the output is readable
// both by humans and by simple column-oriented tooling.
#ifndef OIPSIM_SIMRANK_COMMON_TABLE_PRINTER_H_
#define OIPSIM_SIMRANK_COMMON_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace simrank {

/// Column alignment within a rendered table.
enum class Align { kLeft, kRight };

/// Collects rows of string cells and renders an aligned ASCII table.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Sets per-column alignment (default: first column left, rest right).
  void SetAlignment(std::vector<Align> alignment);

  /// Appends a data row; must have exactly as many cells as headers.
  void AddRow(std::vector<std::string> cells);

  /// Inserts a horizontal separator line before the next row.
  void AddSeparator();

  /// Renders the full table (headers, separator, rows) as a string.
  std::string Render() const;

  /// Renders and writes to `out` (defaults to stdout).
  void Print(std::FILE* out = stdout) const;

  size_t num_rows() const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> headers_;
  std::vector<Align> alignment_;
  std::vector<Row> rows_;
};

/// Prints a section banner used between experiments in bench output, e.g.
/// "=== Fig 6a: DBLP panel ===".
void PrintSection(const std::string& title, std::FILE* out = stdout);

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_COMMON_TABLE_PRINTER_H_
