// Fixed-size worker pool for CPU-bound parallel construction.
//
// The pool is deliberately minimal: submit void() tasks, wait for the whole
// batch to drain. Determinism is the caller's job — oipsim parallelises
// only over independently-seeded work items (e.g. one fingerprint of a walk
// index per task), so results never depend on scheduling order.
#ifndef OIPSIM_SIMRANK_COMMON_THREAD_POOL_H_
#define OIPSIM_SIMRANK_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "simrank/common/macros.h"

namespace simrank {

/// A fixed pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// Starts `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(uint32_t num_threads = 0);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  OIPSIM_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  /// Enqueues a task. Tasks must not throw (the library is exception-free).
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  uint32_t num_threads() const {
    return static_cast<uint32_t>(workers_.size());
  }

  /// Number of tasks submitted but not yet picked up by a worker. A point
  /// sample for monitoring; stale by the time the caller looks at it.
  uint64_t queue_depth() {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  /// Queued plus currently executing tasks.
  uint64_t in_flight() {
    std::lock_guard<std::mutex> lock(mutex_);
    return in_flight_;
  }

  /// Resolves a user-facing thread-count option: 0 -> hardware concurrency,
  /// clamped to at least 1.
  static uint32_t ResolveThreadCount(uint32_t requested);

  /// Runs fn(i) for every i in [begin, end), split into contiguous chunks
  /// across the pool, and waits for completion. Runs inline when the pool
  /// has a single worker or the range is small.
  void ParallelFor(uint64_t begin, uint64_t end,
                   const std::function<void(uint64_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  uint64_t in_flight_ = 0;  // queued + currently executing
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_COMMON_THREAD_POOL_H_
