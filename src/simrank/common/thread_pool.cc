#include "simrank/common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "simrank/obs/profiler.h"

namespace simrank {

uint32_t ThreadPool::ResolveThreadCount(uint32_t requested) {
  if (requested > 0) return requested;
  const uint32_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(uint32_t num_threads) {
  const uint32_t n = ResolveThreadCount(num_threads);
  workers_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  OIPSIM_CHECK(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    OIPSIM_CHECK(!shutdown_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  // Workers announce themselves to the sampling profiler so query
  // execution shows up attributed per worker thread; a no-op (one TLS
  // store) unless a profiling session arms this thread.
  ScopedProfiledThread profiled("pool-worker");
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(uint64_t begin, uint64_t end,
                             const std::function<void(uint64_t)>& fn) {
  if (begin >= end) return;
  const uint64_t count = end - begin;
  const uint64_t num_chunks =
      std::min<uint64_t>(num_threads(), count);
  if (num_chunks <= 1) {
    for (uint64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // Per-invocation completion latch, deliberately NOT the pool-wide Wait():
  // concurrent ParallelFor calls sharing one pool (the QueryEngine batch
  // APIs) must each return as soon as their own chunks finish, not when
  // every other caller's work drains too.
  const uint64_t chunk = (count + num_chunks - 1) / num_chunks;
  // Ceil-divided chunks may need fewer than num_chunks slots (e.g. 5 items
  // in 4 chunks of 2 fill only 3); size the latch by the real chunk count.
  const uint64_t submitted = (count + chunk - 1) / chunk;
  std::mutex done_mutex;
  std::condition_variable done_cv;
  uint64_t remaining = submitted;
  for (uint64_t c = 0; c < submitted; ++c) {
    const uint64_t lo = begin + c * chunk;
    const uint64_t hi = std::min(end, lo + chunk);
    Submit([&fn, &done_mutex, &done_cv, &remaining, lo, hi] {
      for (uint64_t i = lo; i < hi; ++i) fn(i);
      std::lock_guard<std::mutex> lock(done_mutex);
      if (--remaining == 0) done_cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&remaining] { return remaining == 0; });
}

}  // namespace simrank
