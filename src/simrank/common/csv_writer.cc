#include "simrank/common/csv_writer.h"

#include <cstdio>

#include "simrank/common/macros.h"

namespace simrank {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  OIPSIM_CHECK(!header_.empty());
}

void CsvWriter::AddRow(std::vector<std::string> cells) {
  OIPSIM_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::EscapeField(const std::string& field) {
  bool needs_quoting = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

std::string CsvWriter::Render() const {
  std::string out;
  auto append_row = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += EscapeField(row[i]);
    }
    out.push_back('\n');
  };
  append_row(header_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

Status CsvWriter::WriteToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  std::string rendered = Render();
  size_t written = std::fwrite(rendered.data(), 1, rendered.size(), f);
  int close_rc = std::fclose(f);
  if (written != rendered.size() || close_rc != 0) {
    return Status::IoError("short write to: " + path);
  }
  return Status::OK();
}

}  // namespace simrank
