// Deterministic pseudo-random number generation.
//
// All generators in oipsim are seeded explicitly so every dataset, test and
// benchmark is reproducible bit-for-bit across runs. The engine is
// xoshiro256**, seeded through SplitMix64 (the reference recommendation).
#ifndef OIPSIM_SIMRANK_COMMON_RNG_H_
#define OIPSIM_SIMRANK_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "simrank/common/macros.h"

namespace simrank {

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator so it can be used
/// with <random> distributions, though the member helpers below avoid the
/// libstdc++ distribution objects for cross-platform determinism.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the generator; equal seeds produce equal streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Next raw 64-bit draw.
  uint64_t operator()();

  /// Uniform integer in [0, bound) using Lemire's rejection method.
  /// `bound` must be positive.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Bernoulli draw with probability `p` of true.
  bool NextBool(double p);

  /// Standard normal draw (Box-Muller; consumes two uniforms).
  double NextGaussian();

  /// Geometric-like draw from an (approximate) power-law distribution on
  /// [1, max_value] with exponent `alpha` > 1 (inverse-CDF method).
  uint64_t NextPowerLaw(double alpha, uint64_t max_value);

  /// Fisher-Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    OIPSIM_CHECK(values != nullptr);
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextUint64(i));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  /// Samples `k` distinct indices uniformly from [0, n) (Floyd's algorithm
  /// for small k, shuffle prefix otherwise). Requires k <= n.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

 private:
  uint64_t s_[4];
};

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_COMMON_RNG_H_
