#include "simrank/common/simd.h"

#include <algorithm>
#include <atomic>
#include <climits>
#include <cstdlib>
#include <cstring>

#if defined(__GNUC__) && defined(__x86_64__)
#define OIPSIM_SIMD_X86 1
#include <immintrin.h>
#else
#define OIPSIM_SIMD_X86 0
#endif

namespace simrank {
namespace {

SimdLevel DetectMaxLevel() {
#if OIPSIM_SIMD_X86
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse4.1")) return SimdLevel::kSse4;
#endif
  return SimdLevel::kScalar;
}

SimdLevel ClampFromEnv(SimdLevel max_level) {
  const char* env = std::getenv("SIMRANK_SIMD_LEVEL");
  if (env == nullptr) return max_level;
  SimdLevel requested = max_level;
  if (std::strcmp(env, "scalar") == 0) {
    requested = SimdLevel::kScalar;
  } else if (std::strcmp(env, "sse4") == 0) {
    requested = SimdLevel::kSse4;
  } else if (std::strcmp(env, "avx2") == 0) {
    requested = SimdLevel::kAvx2;
  }
  return static_cast<uint8_t>(requested) < static_cast<uint8_t>(max_level)
             ? requested
             : max_level;
}

std::atomic<SimdLevel>& ActiveLevelSlot() {
  static std::atomic<SimdLevel> level{ClampFromEnv(DetectMaxLevel())};
  return level;
}

#if OIPSIM_SIMD_X86

// ------------------------------------------------------ delta-run decode
//
// The fast path only handles chunks made entirely of single-byte varint
// codes (continuation bit clear), so deltas are in [-64, 63]. That makes
// the scalar loop's `zigzag >= 2n` pre-check vacuous for n >= 64, and it
// bounds every intermediate prefix value by prev ± 512 — exact in int32
// arithmetic as long as n + 512 fits. Outside those regimes the kernel
// declines the whole run (returns 0) and the scalar loop does the work.

__attribute__((target("avx2"))) size_t DecodeDeltaRunAvx2(
    const uint8_t** cursor, const uint8_t* end, uint32_t prev, uint32_t n,
    uint32_t* out, size_t count) {
  if (n < 64 || n > static_cast<uint32_t>(INT_MAX) - 512) return 0;
  const uint8_t* p = *cursor;
  size_t done = 0;
  const __m256i zero = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i vn = _mm256_set1_epi32(static_cast<int32_t>(n));
  const __m256i minus_one = _mm256_set1_epi32(-1);
  while (count - done >= 8 && end - p >= 8) {
    uint64_t chunk = 0;
    std::memcpy(&chunk, p, 8);
    if ((chunk & 0x8080808080808080ull) != 0) break;  // multi-byte code
    const __m128i bytes = _mm_cvtsi64_si128(static_cast<long long>(chunk));
    const __m256i z = _mm256_cvtepu8_epi32(bytes);
    // Zigzag decode: (z >> 1) ^ -(z & 1).
    const __m256i delta =
        _mm256_xor_si256(_mm256_srli_epi32(z, 1),
                         _mm256_sub_epi32(zero, _mm256_and_si256(z, one)));
    // Inclusive prefix sum: within each 128-bit lane, then carry the low
    // lane's total into the high lane, then rebase on prev.
    __m256i x = _mm256_add_epi32(delta, _mm256_slli_si256(delta, 4));
    x = _mm256_add_epi32(x, _mm256_slli_si256(x, 8));
    __m256i carry = _mm256_permutevar8x32_epi32(x, _mm256_set1_epi32(3));
    carry = _mm256_blend_epi32(zero, carry, 0xF0);
    x = _mm256_add_epi32(x, carry);
    x = _mm256_add_epi32(x, _mm256_set1_epi32(static_cast<int32_t>(prev)));
    // Commit only when every position lands in [0, n); otherwise the
    // scalar loop re-decodes the chunk and owns the error message.
    const __m256i in_range = _mm256_and_si256(
        _mm256_cmpgt_epi32(x, minus_one), _mm256_cmpgt_epi32(vn, x));
    if (_mm256_movemask_ps(_mm256_castsi256_ps(in_range)) != 0xFF) break;
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + done), x);
    prev = out[done + 7];
    p += 8;
    done += 8;
  }
  *cursor = p;
  return done;
}

__attribute__((target("sse4.1"))) size_t DecodeDeltaRunSse4(
    const uint8_t** cursor, const uint8_t* end, uint32_t prev, uint32_t n,
    uint32_t* out, size_t count) {
  if (n < 64 || n > static_cast<uint32_t>(INT_MAX) - 512) return 0;
  const uint8_t* p = *cursor;
  size_t done = 0;
  const __m128i zero = _mm_setzero_si128();
  const __m128i one = _mm_set1_epi32(1);
  const __m128i vn = _mm_set1_epi32(static_cast<int32_t>(n));
  const __m128i minus_one = _mm_set1_epi32(-1);
  while (count - done >= 4 && end - p >= 4) {
    uint32_t chunk = 0;
    std::memcpy(&chunk, p, 4);
    if ((chunk & 0x80808080u) != 0) break;
    const __m128i z =
        _mm_cvtepu8_epi32(_mm_cvtsi32_si128(static_cast<int>(chunk)));
    const __m128i delta = _mm_xor_si128(
        _mm_srli_epi32(z, 1), _mm_sub_epi32(zero, _mm_and_si128(z, one)));
    __m128i x = _mm_add_epi32(delta, _mm_slli_si128(delta, 4));
    x = _mm_add_epi32(x, _mm_slli_si128(x, 8));
    x = _mm_add_epi32(x, _mm_set1_epi32(static_cast<int32_t>(prev)));
    const __m128i in_range =
        _mm_and_si128(_mm_cmpgt_epi32(x, minus_one), _mm_cmplt_epi32(x, vn));
    if (_mm_movemask_ps(_mm_castsi128_ps(in_range)) != 0xF) break;
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + done), x);
    prev = out[done + 3];
    p += 4;
    done += 4;
  }
  *cursor = p;
  return done;
}

// ------------------------------------------------- checked uint32 copies

__attribute__((target("avx2"))) size_t CopyCheckedWordsAvx2(
    const uint8_t** cursor, const uint8_t* end, uint32_t n, uint32_t* out,
    size_t count) {
  const uint8_t* p = *cursor;
  size_t done = 0;
  // Unsigned v < n via the sign-flip trick (epi32 compares are signed).
  const __m256i bias = _mm256_set1_epi32(INT_MIN);
  const __m256i limit =
      _mm256_set1_epi32(static_cast<int32_t>(n ^ 0x80000000u));
  while (count - done >= 8 && end - p >= 32) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    const __m256i less = _mm256_cmpgt_epi32(limit, _mm256_xor_si256(v, bias));
    if (_mm256_movemask_ps(_mm256_castsi256_ps(less)) != 0xFF) break;
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + done), v);
    p += 32;
    done += 8;
  }
  *cursor = p;
  return done;
}

size_t CopyCheckedWordsSse4(const uint8_t** cursor, const uint8_t* end,
                            uint32_t n, uint32_t* out, size_t count) {
  const uint8_t* p = *cursor;
  size_t done = 0;
  const __m128i bias = _mm_set1_epi32(INT_MIN);
  const __m128i limit = _mm_set1_epi32(static_cast<int32_t>(n ^ 0x80000000u));
  while (count - done >= 4 && end - p >= 16) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    const __m128i less = _mm_cmpgt_epi32(limit, _mm_xor_si128(v, bias));
    if (_mm_movemask_ps(_mm_castsi128_ps(less)) != 0xF) break;
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + done), v);
    p += 16;
    done += 4;
  }
  *cursor = p;
  return done;
}

// ------------------------------------------------------ equal-range scan

__attribute__((target("avx2"))) size_t ScanFirstGeAvx2(
    const uint32_t* values, size_t begin, size_t end, uint32_t key) {
  const __m256i bias = _mm256_set1_epi32(INT_MIN);
  const __m256i k = _mm256_set1_epi32(static_cast<int32_t>(key ^ 0x80000000u));
  size_t i = begin;
  for (; i + 8 <= end; i += 8) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i)),
        bias);
    const unsigned less = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(k, v))));
    if (less != 0xFF) {
      return i + static_cast<size_t>(__builtin_ctz(~less & 0xFF));
    }
  }
  for (; i < end; ++i) {
    if (values[i] >= key) return i;
  }
  return end;
}

__attribute__((target("avx2"))) size_t ScanFirstGtAvx2(
    const uint32_t* values, size_t begin, size_t end, uint32_t key) {
  const __m256i bias = _mm256_set1_epi32(INT_MIN);
  const __m256i k = _mm256_set1_epi32(static_cast<int32_t>(key ^ 0x80000000u));
  size_t i = begin;
  for (; i + 8 <= end; i += 8) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i)),
        bias);
    const unsigned greater = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(v, k))));
    if (greater != 0) {
      return i + static_cast<size_t>(__builtin_ctz(greater));
    }
  }
  for (; i < end; ++i) {
    if (values[i] > key) return i;
  }
  return end;
}

size_t ScanFirstGeSse4(const uint32_t* values, size_t begin, size_t end,
                       uint32_t key) {
  const __m128i bias = _mm_set1_epi32(INT_MIN);
  const __m128i k = _mm_set1_epi32(static_cast<int32_t>(key ^ 0x80000000u));
  size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m128i v = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(values + i)), bias);
    const unsigned less = static_cast<unsigned>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpgt_epi32(k, v))));
    if (less != 0xF) {
      return i + static_cast<size_t>(__builtin_ctz(~less & 0xF));
    }
  }
  for (; i < end; ++i) {
    if (values[i] >= key) return i;
  }
  return end;
}

size_t ScanFirstGtSse4(const uint32_t* values, size_t begin, size_t end,
                       uint32_t key) {
  const __m128i bias = _mm_set1_epi32(INT_MIN);
  const __m128i k = _mm_set1_epi32(static_cast<int32_t>(key ^ 0x80000000u));
  size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m128i v = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(values + i)), bias);
    const unsigned greater = static_cast<unsigned>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpgt_epi32(v, k))));
    if (greater != 0) {
      return i + static_cast<size_t>(__builtin_ctz(greater));
    }
  }
  for (; i < end; ++i) {
    if (values[i] > key) return i;
  }
  return end;
}

// --------------------------------------------------------- bucket guard

__attribute__((target("avx2"))) size_t FindFirstInvalidVertexAvx2(
    const uint32_t* vertices, size_t count, uint32_t n) {
  if (count == 0) return 0;
  if (vertices[0] >= n) return 0;
  const __m256i bias = _mm256_set1_epi32(INT_MIN);
  const __m256i limit =
      _mm256_set1_epi32(static_cast<int32_t>(n ^ 0x80000000u));
  size_t i = 1;
  for (; i + 8 <= count; i += 8) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vertices + i)),
        bias);
    const __m256i before = _mm256_xor_si256(
        _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(vertices + i - 1)),
        bias);
    const __m256i ok = _mm256_and_si256(_mm256_cmpgt_epi32(limit, v),
                                        _mm256_cmpgt_epi32(v, before));
    const unsigned mask = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(ok)));
    if (mask != 0xFF) {
      return i + static_cast<size_t>(__builtin_ctz(~mask & 0xFF));
    }
  }
  for (; i < count; ++i) {
    if (vertices[i] >= n || vertices[i] <= vertices[i - 1]) return i;
  }
  return count;
}

size_t FindFirstInvalidVertexSse4(const uint32_t* vertices, size_t count,
                                  uint32_t n) {
  if (count == 0) return 0;
  if (vertices[0] >= n) return 0;
  const __m128i bias = _mm_set1_epi32(INT_MIN);
  const __m128i limit = _mm_set1_epi32(static_cast<int32_t>(n ^ 0x80000000u));
  size_t i = 1;
  for (; i + 4 <= count; i += 4) {
    const __m128i v = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(vertices + i)),
        bias);
    const __m128i before = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(vertices + i - 1)),
        bias);
    const __m128i ok =
        _mm_and_si128(_mm_cmpgt_epi32(limit, v), _mm_cmpgt_epi32(v, before));
    const unsigned mask =
        static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(ok)));
    if (mask != 0xF) {
      return i + static_cast<size_t>(__builtin_ctz(~mask & 0xF));
    }
  }
  for (; i < count; ++i) {
    if (vertices[i] >= n || vertices[i] <= vertices[i - 1]) return i;
  }
  return count;
}

// --------------------------------------------------------- accumulation

__attribute__((target("avx2"))) void AccumulateBucketAvx2(
    const uint32_t* vertices, size_t count, uint32_t round, double weight,
    uint32_t* met_round, double* result) {
  const __m256i vround = _mm256_set1_epi32(static_cast<int32_t>(round));
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i b = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(vertices + i));
    // The guard proved all ids are in-range and distinct, so the gather
    // is safe and no lane's stamp depends on a sibling lane's update.
    const __m256i met = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(met_round), b, 4);
    unsigned fresh =
        ~static_cast<unsigned>(_mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpeq_epi32(met, vround)))) &
        0xFF;
    while (fresh != 0) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(fresh));
      fresh &= fresh - 1;
      const uint32_t v = vertices[i + lane];
      result[v] += weight;
      met_round[v] = round;
    }
  }
  for (; i < count; ++i) {
    const uint32_t v = vertices[i];
    if (met_round[v] == round) continue;
    result[v] += weight;
    met_round[v] = round;
  }
}

#endif  // OIPSIM_SIMD_X86

void AccumulateBucketScalar(const uint32_t* vertices, size_t count,
                            uint32_t round, double weight,
                            uint32_t* met_round, double* result) {
  for (size_t i = 0; i < count; ++i) {
    const uint32_t v = vertices[i];
    if (met_round[v] == round) continue;
    result[v] += weight;
    met_round[v] = round;
  }
}

/// Branchless binary search narrowing the candidate window of the first
/// element >= key to at most `window` entries. Returns {lo, len}: every
/// index < lo holds a value < key, every index >= lo + len a value >= key.
std::pair<size_t, size_t> LowerBoundWindow(const uint32_t* values,
                                           size_t count, uint32_t key,
                                           size_t window) {
  size_t lo = 0;
  size_t len = count;
  while (len > window) {
    const size_t half = len / 2;
    if (values[lo + half] < key) {
      lo += half + 1;
      len -= half + 1;
    } else {
      len = half;
    }
  }
  return {lo, len};
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse4:
      return "sse4";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdLevel MaxSupportedSimdLevel() {
  static const SimdLevel level = DetectMaxLevel();
  return level;
}

SimdLevel ActiveSimdLevel() {
  return ActiveLevelSlot().load(std::memory_order_relaxed);
}

void ReloadSimdLevelFromEnv() {
  ActiveLevelSlot().store(ClampFromEnv(MaxSupportedSimdLevel()),
                          std::memory_order_relaxed);
}

size_t DecodeDeltaRun(SimdLevel level, const uint8_t** cursor,
                      const uint8_t* end, uint32_t prev, uint32_t n,
                      uint32_t* out, size_t count) {
#if OIPSIM_SIMD_X86
  switch (level) {
    case SimdLevel::kAvx2:
      return DecodeDeltaRunAvx2(cursor, end, prev, n, out, count);
    case SimdLevel::kSse4:
      return DecodeDeltaRunSse4(cursor, end, prev, n, out, count);
    case SimdLevel::kScalar:
      break;
  }
#else
  (void)level;
#endif
  (void)cursor, (void)end, (void)prev, (void)n, (void)out, (void)count;
  return 0;
}

size_t CopyCheckedWords(SimdLevel level, const uint8_t** cursor,
                        const uint8_t* end, uint32_t n, uint32_t* out,
                        size_t count) {
#if OIPSIM_SIMD_X86
  switch (level) {
    case SimdLevel::kAvx2:
      return CopyCheckedWordsAvx2(cursor, end, n, out, count);
    case SimdLevel::kSse4:
      return CopyCheckedWordsSse4(cursor, end, n, out, count);
    case SimdLevel::kScalar:
      break;
  }
#else
  (void)level;
#endif
  (void)cursor, (void)end, (void)n, (void)out, (void)count;
  return 0;
}

EqualRange EqualRangeU32(SimdLevel level, const uint32_t* values,
                         size_t count, uint32_t key) {
#if OIPSIM_SIMD_X86
  if (level != SimdLevel::kScalar) {
    constexpr size_t kWindow = 32;
    const auto [lo, len] = LowerBoundWindow(values, count, key, kWindow);
    size_t first;
    size_t last;
    if (level == SimdLevel::kAvx2) {
      first = ScanFirstGeAvx2(values, lo, lo + len, key);
      last = ScanFirstGtAvx2(values, first, count, key);
    } else {
      first = ScanFirstGeSse4(values, lo, lo + len, key);
      last = ScanFirstGtSse4(values, first, count, key);
    }
    return {first, last};
  }
#else
  (void)level;
  (void)LowerBoundWindow;
#endif
  const uint32_t* begin = values;
  const uint32_t* end = values + count;
  const uint32_t* lo = std::lower_bound(begin, end, key);
  const uint32_t* hi = std::upper_bound(lo, end, key);
  return {static_cast<size_t>(lo - begin), static_cast<size_t>(hi - begin)};
}

size_t FindFirstInvalidVertex(SimdLevel level, const uint32_t* vertices,
                              size_t count, uint32_t n) {
#if OIPSIM_SIMD_X86
  switch (level) {
    case SimdLevel::kAvx2:
      return FindFirstInvalidVertexAvx2(vertices, count, n);
    case SimdLevel::kSse4:
      return FindFirstInvalidVertexSse4(vertices, count, n);
    case SimdLevel::kScalar:
      break;
  }
#else
  (void)level;
#endif
  if (count == 0) return 0;
  if (vertices[0] >= n) return 0;
  for (size_t i = 1; i < count; ++i) {
    if (vertices[i] >= n || vertices[i] <= vertices[i - 1]) return i;
  }
  return count;
}

void AccumulateBucket(SimdLevel level, const uint32_t* vertices,
                      size_t count, uint32_t round, double weight,
                      uint32_t* met_round, double* result) {
#if OIPSIM_SIMD_X86
  if (level == SimdLevel::kAvx2) {
    AccumulateBucketAvx2(vertices, count, round, weight, met_round, result);
    return;
  }
#else
  (void)level;
#endif
  // The SSE tier has no 32-bit gather; its accumulate is the scalar loop.
  AccumulateBucketScalar(vertices, count, round, weight, met_round, result);
}

}  // namespace simrank
