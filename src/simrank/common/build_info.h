// Build identity and process uptime for the /v1/stats build_info block.
//
// Everything here is decided at compile/configure time except uptime; the
// runtime-dependent facts (active SIMD tier, io_uring availability) are
// appended by the server/router stats builders, which own those probes.
#ifndef OIPSIM_SIMRANK_COMMON_BUILD_INFO_H_
#define OIPSIM_SIMRANK_COMMON_BUILD_INFO_H_

#include <cstdint>

namespace simrank {

struct BuildInfo {
  const char* git_describe;  // `git describe --always --dirty` at configure
  const char* compiler;      // e.g. "gcc 12.2.0"
  const char* build_type;    // "release" (NDEBUG) or "debug"
  const char* cxx_standard;  // e.g. "c++20"
};

/// Static build identity; all fields non-null.
const BuildInfo& GetBuildInfo();

/// Wall-clock time when this process loaded, in microseconds since the
/// Unix epoch.
uint64_t ProcessStartUnixMicros();

/// Seconds since process load, monotonic.
double UptimeSeconds();

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_COMMON_BUILD_INFO_H_
