#include "simrank/common/build_info.h"

#include <chrono>

#include "simrank/common/string_util.h"

namespace simrank {
namespace {

#ifndef OIPSIM_GIT_DESCRIBE
#define OIPSIM_GIT_DESCRIBE "unknown"
#endif

const char* CompilerString() {
#if defined(__clang__)
  static const std::string value =
      StrFormat("clang %d.%d.%d", __clang_major__, __clang_minor__,
                __clang_patchlevel__);
#elif defined(__GNUC__)
  static const std::string value = StrFormat(
      "gcc %d.%d.%d", __GNUC__, __GNUC_MINOR__, __GNUC_PATCHLEVEL__);
#else
  static const std::string value = "unknown";
#endif
  return value.c_str();
}

const char* CxxStandardString() {
#if __cplusplus > 202002L
  return "c++23";
#elif __cplusplus >= 202002L
  return "c++20";
#else
  return "pre-c++20";
#endif
}

// Captured at shared-object/executable load so UptimeSeconds() measures
// the whole process, not the time since the first stats request.
struct ProcessClock {
  ProcessClock()
      : start_steady(std::chrono::steady_clock::now()),
        start_unix_micros(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::system_clock::now().time_since_epoch())
                .count())) {}
  std::chrono::steady_clock::time_point start_steady;
  uint64_t start_unix_micros;
};

const ProcessClock g_process_clock;

}  // namespace

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info = {
      OIPSIM_GIT_DESCRIBE,
      CompilerString(),
#ifdef NDEBUG
      "release",
#else
      "debug",
#endif
      CxxStandardString(),
  };
  return info;
}

uint64_t ProcessStartUnixMicros() { return g_process_clock.start_unix_micros; }

double UptimeSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       g_process_clock.start_steady)
      .count();
}

}  // namespace simrank
