#include "simrank/common/memory_tracker.h"

#include <cstdio>
#include <cstring>

#if defined(__linux__)
#include <unistd.h>
#endif

namespace simrank {

#if defined(__linux__)

namespace {

// Parses a "VmXXX:   12345 kB" line from /proc/self/status into bytes.
bool ParseStatusLine(const char* line, const char* key, uint64_t* out) {
  const size_t key_len = std::strlen(key);
  if (std::strncmp(line, key, key_len) != 0) return false;
  unsigned long long kb = 0;
  if (std::sscanf(line + key_len, " %llu", &kb) != 1) return false;
  *out = static_cast<uint64_t>(kb) * 1024;
  return true;
}

}  // namespace

bool ReadProcessMemoryStats(ProcessMemoryStats* out) {
  *out = ProcessMemoryStats{};
  const uint64_t page = static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));

  // statm gives size and resident in pages with a single cheap read.
  if (std::FILE* statm = std::fopen("/proc/self/statm", "r")) {
    unsigned long long size_pages = 0, resident_pages = 0;
    if (std::fscanf(statm, "%llu %llu", &size_pages, &resident_pages) == 2) {
      out->virtual_bytes = size_pages * page;
      out->resident_bytes = resident_pages * page;
    }
    std::fclose(statm);
  } else {
    return false;
  }

  // status carries the high-water mark and the data segment size.
  if (std::FILE* status = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof(line), status) != nullptr) {
      ParseStatusLine(line, "VmHWM:", &out->peak_resident_bytes) ||
          ParseStatusLine(line, "VmData:", &out->data_bytes);
    }
    std::fclose(status);
  }
  return out->resident_bytes != 0;
}

#else  // !__linux__

bool ReadProcessMemoryStats(ProcessMemoryStats* out) {
  *out = ProcessMemoryStats{};
  return false;
}

#endif  // __linux__

}  // namespace simrank
