// Error propagation without exceptions: Status and Result<T>.
//
// Mirrors the Status idiom used by Arrow/RocksDB/absl: a Status carries an
// error code plus message, Result<T> carries either a value or a Status.
#ifndef OIPSIM_SIMRANK_COMMON_STATUS_H_
#define OIPSIM_SIMRANK_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "simrank/common/macros.h"

namespace simrank {

/// Error category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kIoError,
  kParseError,
  kUnimplemented,
  kInternal,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Lightweight success-or-error value. Cheap to copy on the OK path.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "Code: message" (or "OK").
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a T or a non-OK Status. Access to the value on an error Result is
/// a checked programming error.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. `status` must not be OK.
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    OIPSIM_CHECK(!std::get<Status>(payload_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Returns the error status (OK when the Result holds a value).
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// Value accessors. The Result must be OK.
  const T& value() const& {
    OIPSIM_CHECK_MSG(ok(), "Result::value() on error: %s",
                     std::get<Status>(payload_).ToString().c_str());
    return std::get<T>(payload_);
  }
  T& value() & {
    OIPSIM_CHECK_MSG(ok(), "Result::value() on error: %s",
                     std::get<Status>(payload_).ToString().c_str());
    return std::get<T>(payload_);
  }
  T&& value() && {
    OIPSIM_CHECK_MSG(ok(), "Result::value() on error: %s",
                     std::get<Status>(payload_).ToString().c_str());
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(payload_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_COMMON_STATUS_H_
