// CSV emission for benchmark series so results can be re-plotted offline.
#ifndef OIPSIM_SIMRANK_COMMON_CSV_WRITER_H_
#define OIPSIM_SIMRANK_COMMON_CSV_WRITER_H_

#include <string>
#include <vector>

#include "simrank/common/status.h"

namespace simrank {

/// Buffers CSV rows and writes them to a file on demand. Fields containing
/// commas, quotes or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Creates a writer with the given header row.
  explicit CsvWriter(std::vector<std::string> header);

  /// Appends a data row; must match the header width.
  void AddRow(std::vector<std::string> cells);

  /// Serialises header plus all rows.
  std::string Render() const;

  /// Writes the rendered CSV to `path`, overwriting any existing file.
  Status WriteToFile(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  static std::string EscapeField(const std::string& field);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_COMMON_CSV_WRITER_H_
