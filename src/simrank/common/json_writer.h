// Minimal streaming JSON writer for the serving layer.
//
// The server's responses (scores, stats) are built incrementally into one
// compact JSON document; no DOM, no allocation beyond the output string.
// The writer enforces well-formedness structurally — values in objects
// must follow a Key(), containers must be closed in order, exactly one
// root value — via OIPSIM_CHECK, so a malformed emission sequence is a
// programming error caught in tests, never invalid JSON on the wire.
// Doubles render with the shortest decimal form that round-trips the exact
// bit pattern, which is what lets clients (and the serving tests) compare
// served scores bitwise against direct QueryEngine results.
#ifndef OIPSIM_SIMRANK_COMMON_JSON_WRITER_H_
#define OIPSIM_SIMRANK_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace simrank {

/// Appends one JSON document to an internal buffer. Not thread-safe.
class JsonWriter {
 public:
  JsonWriter() = default;

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits the key of the next object member. Must be directly inside an
  /// object, and must be followed by exactly one value or container.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Uint(uint64_t value);
  /// Shortest round-trip form; non-finite values (no JSON spelling) render
  /// as null.
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// The finished document. All containers must be closed.
  const std::string& str() const;

 private:
  /// Comma/colon bookkeeping before a value is appended.
  void BeforeValue();

  enum class Frame : uint8_t { kObject, kArray };

  std::string out_;
  std::vector<Frame> stack_;
  /// Members already emitted in each open container (parallel to stack_).
  std::vector<bool> has_members_;
  bool pending_key_ = false;
  bool root_emitted_ = false;
};

/// Appends `value` to `out` with JSON string escaping (quotes, backslash,
/// control characters), without the surrounding quotes.
void JsonEscape(std::string_view value, std::string* out);

/// Formats `value` as the shortest decimal string that parses back to the
/// same double ("0.6", not "0.59999999999999998"); non-finite values yield
/// "null".
std::string JsonDouble(double value);

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_COMMON_JSON_WRITER_H_
