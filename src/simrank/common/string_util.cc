#include "simrank/common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace simrank {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(std::string_view text, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view StrTrim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ParseUint64(std::string_view text, uint64_t* out) {
  if (text.empty() || out == nullptr) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // overflow
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool ParseDouble(std::string_view text, double* out) {
  if (text.empty() || out == nullptr) return false;
  // strtod needs a NUL-terminated buffer.
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = value;
  return true;
}

std::string FormatBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StrFormat("%llu B", static_cast<unsigned long long>(bytes));
  return StrFormat("%.1f %s", value, units[unit]);
}

std::string FormatCount(uint64_t count) {
  std::string digits = StrFormat("%llu", static_cast<unsigned long long>(count));
  std::string out;
  int since_sep = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (since_sep == 3) {
      out.push_back(',');
      since_sep = 0;
    }
    out.push_back(*it);
    ++since_sep;
  }
  return std::string(out.rbegin(), out.rend());
}

std::string FormatDouble(double value, int digits) {
  std::string out = StrFormat("%.*f", digits, value);
  if (out.find('.') != std::string::npos) {
    size_t last = out.find_last_not_of('0');
    if (out[last] == '.') --last;
    out.erase(last + 1);
  }
  return out;
}

}  // namespace simrank
