// Structural transformations on digraphs.
#ifndef OIPSIM_SIMRANK_GRAPH_GRAPH_OPS_H_
#define OIPSIM_SIMRANK_GRAPH_GRAPH_OPS_H_

#include <vector>

#include "simrank/common/status.h"
#include "simrank/graph/digraph.h"

namespace simrank {

/// Returns the reverse graph (every edge flipped).
DiGraph Transpose(const DiGraph& graph);

/// Returns the subgraph induced by `vertices` (deduplicated); vertices are
/// relabelled densely in the order given.
DiGraph InducedSubgraph(const DiGraph& graph,
                        const std::vector<VertexId>& vertices);

/// Relabels vertices: new id of v is perm[v]. `perm` must be a permutation
/// of [0, n).
Result<DiGraph> RelabelVertices(const DiGraph& graph,
                                const std::vector<VertexId>& perm);

/// Returns a copy with self-loops removed.
DiGraph RemoveSelfLoops(const DiGraph& graph);

/// Returns a copy with every edge also present in the reverse direction
/// (the "symmetrised" graph; co-authorship graphs are built this way).
DiGraph Symmetrize(const DiGraph& graph);

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_GRAPH_GRAPH_OPS_H_
