#include "simrank/graph/graph_io.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "simrank/common/stream_hash.h"
#include "simrank/common/string_util.h"

namespace simrank {

namespace {

constexpr uint32_t kBinaryMagic = 0x4F495053;  // "OIPS"

struct ParsedEdges {
  uint32_t n = 0;
  std::vector<Edge> edges;
};

Result<ParsedEdges> ParseEdgeLines(std::istream& in, bool compact_ids) {
  ParsedEdges parsed;
  std::unordered_map<uint64_t, VertexId> relabel;
  uint64_t max_id = 0;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = StrTrim(line);
    if (trimmed.empty() || trimmed[0] == '#' || trimmed[0] == '%') continue;

    // Split on arbitrary whitespace.
    std::istringstream fields{std::string(trimmed)};
    std::string src_str, dst_str, extra;
    fields >> src_str >> dst_str;
    if (dst_str.empty()) {
      return Status::ParseError(
          StrFormat("line %d: expected 'src dst'", line_no));
    }
    if (fields >> extra) {
      return Status::ParseError(
          StrFormat("line %d: trailing field '%s'", line_no, extra.c_str()));
    }
    uint64_t src_raw = 0, dst_raw = 0;
    if (!ParseUint64(src_str, &src_raw) || !ParseUint64(dst_str, &dst_raw)) {
      return Status::ParseError(
          StrFormat("line %d: malformed vertex id", line_no));
    }
    VertexId src, dst;
    if (compact_ids) {
      auto intern = [&relabel](uint64_t raw) {
        auto [it, inserted] =
            relabel.emplace(raw, static_cast<VertexId>(relabel.size()));
        (void)inserted;
        return it->second;
      };
      src = intern(src_raw);
      dst = intern(dst_raw);
    } else {
      if (src_raw > UINT32_MAX - 1 || dst_raw > UINT32_MAX - 1) {
        return Status::ParseError(
            StrFormat("line %d: vertex id exceeds uint32 range", line_no));
      }
      src = static_cast<VertexId>(src_raw);
      dst = static_cast<VertexId>(dst_raw);
      max_id = std::max({max_id, src_raw, dst_raw});
    }
    parsed.edges.push_back(Edge{src, dst});
  }
  parsed.n = compact_ids
                 ? static_cast<uint32_t>(relabel.size())
                 : (parsed.edges.empty() ? 0
                                         : static_cast<uint32_t>(max_id + 1));
  return parsed;
}

}  // namespace

Result<DiGraph> ParseEdgeList(const std::string& text, bool compact_ids) {
  std::istringstream in(text);
  Result<ParsedEdges> parsed = ParseEdgeLines(in, compact_ids);
  if (!parsed.ok()) return parsed.status();
  DiGraph::Builder builder(parsed->n);
  builder.AddEdges(parsed->edges);
  return std::move(builder).Build();
}

Result<DiGraph> ReadEdgeList(const std::string& path, bool compact_ids) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);
  Result<ParsedEdges> parsed = ParseEdgeLines(in, compact_ids);
  if (!parsed.ok()) return parsed.status();
  DiGraph::Builder builder(parsed->n);
  builder.AddEdges(parsed->edges);
  return std::move(builder).Build();
}

Status WriteEdgeList(const DiGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << "# oipsim edge list: n=" << graph.n() << " m=" << graph.m() << "\n";
  for (VertexId v = 0; v < graph.n(); ++v) {
    for (VertexId u : graph.OutNeighbors(v)) {
      out << v << ' ' << u << '\n';
    }
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status WriteBinary(const DiGraph& graph, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open for writing: " + path);
  uint32_t n = graph.n();
  uint64_t m = graph.m();
  bool ok = std::fwrite(&kBinaryMagic, sizeof(kBinaryMagic), 1, f) == 1 &&
            std::fwrite(&n, sizeof(n), 1, f) == 1 &&
            std::fwrite(&m, sizeof(m), 1, f) == 1;
  for (VertexId v = 0; ok && v < n; ++v) {
    for (VertexId u : graph.OutNeighbors(v)) {
      uint32_t pair[2] = {v, u};
      ok = std::fwrite(pair, sizeof(pair), 1, f) == 1;
    }
  }
  int close_rc = std::fclose(f);
  if (!ok || close_rc != 0) return Status::IoError("short write: " + path);
  return Status::OK();
}

uint64_t EdgeFingerprint(VertexId src, VertexId dst) {
  // splitmix64 finalizer over the packed pair: every output bit depends
  // on every input bit, which is what makes the commutative (sum, xor)
  // accumulation collision-resistant in practice.
  uint64_t z = (static_cast<uint64_t>(src) << 32) | dst;
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t ComposeGraphFingerprint(uint32_t n, uint64_t m, uint64_t edge_sum,
                                 uint64_t edge_xor) {
  StreamHasher hasher;
  hasher.Absorb(n);
  hasher.Absorb(m);
  hasher.Absorb(edge_sum);
  hasher.Absorb(edge_xor);
  return hasher.digest();
}

uint64_t GraphFingerprint(const DiGraph& graph) {
  uint64_t edge_sum = 0;
  uint64_t edge_xor = 0;
  for (VertexId v = 0; v < graph.n(); ++v) {
    for (VertexId u : graph.OutNeighbors(v)) {
      const uint64_t h = EdgeFingerprint(v, u);
      edge_sum += h;
      edge_xor ^= h;
    }
  }
  return ComposeGraphFingerprint(graph.n(), graph.m(), edge_sum, edge_xor);
}

Result<DiGraph> ReadBinary(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open: " + path);
  uint32_t magic = 0, n = 0;
  uint64_t m = 0;
  bool ok = std::fread(&magic, sizeof(magic), 1, f) == 1 &&
            std::fread(&n, sizeof(n), 1, f) == 1 &&
            std::fread(&m, sizeof(m), 1, f) == 1;
  if (!ok || magic != kBinaryMagic) {
    std::fclose(f);
    return Status::ParseError("bad header in binary graph: " + path);
  }
  DiGraph::Builder builder(n);
  for (uint64_t i = 0; i < m; ++i) {
    uint32_t pair[2];
    if (std::fread(pair, sizeof(pair), 1, f) != 1) {
      std::fclose(f);
      return Status::ParseError("truncated binary graph: " + path);
    }
    if (pair[0] >= n || pair[1] >= n) {
      std::fclose(f);
      return Status::ParseError("vertex id out of range in: " + path);
    }
    builder.AddEdge(pair[0], pair[1]);
  }
  std::fclose(f);
  return std::move(builder).Build();
}

Result<DiGraph> ReadGraphAuto(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open: " + path);
  uint32_t magic = 0;
  const bool has_magic = std::fread(&magic, sizeof(magic), 1, f) == 1;
  std::fclose(f);
  if (has_magic && magic == kBinaryMagic) return ReadBinary(path);
  return ReadEdgeList(path);
}

std::string FormatFingerprint(uint64_t fingerprint) {
  return StrFormat("%016llx",
                   static_cast<unsigned long long>(fingerprint));
}

}  // namespace simrank
