// Immutable directed graph in compressed sparse row (CSR) form.
//
// SimRank is defined over *in*-neighbour sets, so DiGraph stores both the
// forward (out) and reverse (in) adjacency in CSR. In-neighbour lists are
// sorted ascending, which the OIP machinery relies on for linear-time
// symmetric differences between in-neighbour sets.
#ifndef OIPSIM_SIMRANK_GRAPH_DIGRAPH_H_
#define OIPSIM_SIMRANK_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "simrank/common/macros.h"

namespace simrank {

/// Vertex identifier. Vertices are dense integers [0, n).
using VertexId = uint32_t;

/// A directed edge (source -> target).
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Immutable CSR digraph with both adjacency directions.
///
/// Construction goes through DiGraph::Builder:
///
///   DiGraph::Builder b(4);
///   b.AddEdge(0, 1);
///   b.AddEdge(2, 1);
///   DiGraph g = std::move(b).Build();
///
/// All neighbour lists are sorted ascending and free of duplicates
/// (parallel edges are collapsed unless the builder is told otherwise).
class DiGraph {
 public:
  class Builder;

  /// Constructs an empty graph (0 vertices, 0 edges).
  DiGraph() = default;

  /// Number of vertices.
  uint32_t n() const { return n_; }
  /// Number of (deduplicated) directed edges.
  uint64_t m() const { return static_cast<uint64_t>(out_targets_.size()); }

  /// Sorted out-neighbours of `v`: all u with edge (v -> u).
  std::span<const VertexId> OutNeighbors(VertexId v) const {
    OIPSIM_DCHECK(v < n_);
    return {out_targets_.data() + out_offsets_[v],
            out_targets_.data() + out_offsets_[v + 1]};
  }

  /// Sorted in-neighbours of `v`: all u with edge (u -> v). This is the set
  /// I(v) of the SimRank recurrence.
  std::span<const VertexId> InNeighbors(VertexId v) const {
    OIPSIM_DCHECK(v < n_);
    return {in_sources_.data() + in_offsets_[v],
            in_sources_.data() + in_offsets_[v + 1]};
  }

  uint32_t OutDegree(VertexId v) const {
    OIPSIM_DCHECK(v < n_);
    return static_cast<uint32_t>(out_offsets_[v + 1] - out_offsets_[v]);
  }
  uint32_t InDegree(VertexId v) const {
    OIPSIM_DCHECK(v < n_);
    return static_cast<uint32_t>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  /// Mean in-degree m/n (the paper's d). Zero for the empty graph.
  double AverageInDegree() const {
    return n_ == 0 ? 0.0 : static_cast<double>(m()) / n_;
  }

  /// True if the edge (src -> dst) exists (binary search, O(log deg)).
  bool HasEdge(VertexId src, VertexId dst) const;

  /// Materialises the edge list in (src, dst) lexicographic order.
  std::vector<Edge> Edges() const;

  friend bool operator==(const DiGraph& a, const DiGraph& b) = default;

 private:
  uint32_t n_ = 0;
  // CSR out-adjacency: out_targets_[out_offsets_[v] .. out_offsets_[v+1])
  std::vector<uint64_t> out_offsets_{0};
  std::vector<VertexId> out_targets_;
  // CSR in-adjacency (the reverse graph).
  std::vector<uint64_t> in_offsets_{0};
  std::vector<VertexId> in_sources_;
};

/// Accumulates edges and produces an immutable DiGraph.
class DiGraph::Builder {
 public:
  /// Creates a builder for a graph with `num_vertices` vertices.
  explicit Builder(uint32_t num_vertices) : n_(num_vertices) {}

  /// Adds a directed edge; both endpoints must be < num_vertices.
  /// Self-loops are permitted (SimRank treats them as ordinary edges).
  void AddEdge(VertexId src, VertexId dst) {
    OIPSIM_CHECK_LT(src, n_);
    OIPSIM_CHECK_LT(dst, n_);
    edges_.push_back(Edge{src, dst});
  }

  /// Bulk-adds edges.
  void AddEdges(const std::vector<Edge>& edges) {
    for (const Edge& e : edges) AddEdge(e.src, e.dst);
  }

  /// If set (default), parallel edges collapse to one. SimRank's |I(a)|
  /// counts distinct in-neighbours, so deduplication is the faithful model.
  void set_dedupe_parallel_edges(bool dedupe) { dedupe_ = dedupe; }

  /// Number of edges added so far (pre-deduplication).
  uint64_t num_pending_edges() const { return edges_.size(); }

  /// Finalises into an immutable DiGraph. The builder is consumed.
  DiGraph Build() &&;

 private:
  uint32_t n_;
  bool dedupe_ = true;
  std::vector<Edge> edges_;
};

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_GRAPH_DIGRAPH_H_
