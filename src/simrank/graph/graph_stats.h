// Summary statistics over graphs: degree distributions and in-neighbour
// overlap measures. The overlap measures quantify how much partial-sums
// sharing a graph offers (the d' / d⊖ of the paper's complexity results).
#ifndef OIPSIM_SIMRANK_GRAPH_GRAPH_STATS_H_
#define OIPSIM_SIMRANK_GRAPH_GRAPH_STATS_H_

#include <cstdint>
#include <string>

#include "simrank/common/rng.h"
#include "simrank/graph/digraph.h"

namespace simrank {

/// Degree summary of a digraph.
struct DegreeStats {
  uint32_t n = 0;
  uint64_t m = 0;
  double avg_in_degree = 0.0;
  uint32_t max_in_degree = 0;
  uint32_t max_out_degree = 0;
  /// Vertices with no in-neighbours (their SimRank rows are zero except
  /// the diagonal).
  uint32_t num_sources = 0;
  /// Vertices with no out-neighbours.
  uint32_t num_sinks = 0;

  std::string ToString() const;
};

/// Computes degree statistics in one pass.
DegreeStats ComputeDegreeStats(const DiGraph& graph);

/// Overlap statistics between in-neighbour sets, estimated on
/// `num_samples` random vertex pairs with non-empty in-neighbour sets.
struct OverlapStats {
  /// Mean |I(a) ∩ I(b)| over sampled pairs.
  double avg_intersection = 0.0;
  /// Mean |I(a) ⊖ I(b)| over sampled pairs.
  double avg_symmetric_difference = 0.0;
  /// Mean Jaccard similarity |∩| / |∪| over sampled pairs.
  double avg_jaccard = 0.0;
  uint32_t pairs_sampled = 0;
};

/// Estimates OverlapStats on random pairs (deterministic given `seed`).
OverlapStats EstimateOverlap(const DiGraph& graph, uint32_t num_samples,
                             uint64_t seed);

/// Number of *distinct* non-empty in-neighbour sets. The vertices of the
/// transition graph G* in Section III-A are exactly these sets.
uint32_t CountDistinctInNeighborSets(const DiGraph& graph);

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_GRAPH_GRAPH_STATS_H_
