#include "simrank/graph/graph_stats.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "simrank/common/string_util.h"
#include "simrank/graph/set_ops.h"

namespace simrank {

std::string DegreeStats::ToString() const {
  return StrFormat(
      "n=%u m=%llu avg_in_deg=%.2f max_in=%u max_out=%u sources=%u sinks=%u",
      n, static_cast<unsigned long long>(m), avg_in_degree, max_in_degree,
      max_out_degree, num_sources, num_sinks);
}

DegreeStats ComputeDegreeStats(const DiGraph& graph) {
  DegreeStats stats;
  stats.n = graph.n();
  stats.m = graph.m();
  stats.avg_in_degree = graph.AverageInDegree();
  for (VertexId v = 0; v < graph.n(); ++v) {
    uint32_t in = graph.InDegree(v);
    uint32_t out = graph.OutDegree(v);
    stats.max_in_degree = std::max(stats.max_in_degree, in);
    stats.max_out_degree = std::max(stats.max_out_degree, out);
    if (in == 0) ++stats.num_sources;
    if (out == 0) ++stats.num_sinks;
  }
  return stats;
}

OverlapStats EstimateOverlap(const DiGraph& graph, uint32_t num_samples,
                             uint64_t seed) {
  OverlapStats stats;
  std::vector<VertexId> candidates;
  candidates.reserve(graph.n());
  for (VertexId v = 0; v < graph.n(); ++v) {
    if (graph.InDegree(v) > 0) candidates.push_back(v);
  }
  if (candidates.size() < 2) return stats;

  Rng rng(seed);
  double sum_inter = 0, sum_symdiff = 0, sum_jaccard = 0;
  for (uint32_t s = 0; s < num_samples; ++s) {
    VertexId a = candidates[rng.NextUint64(candidates.size())];
    VertexId b = candidates[rng.NextUint64(candidates.size())];
    if (a == b) continue;
    auto ia = graph.InNeighbors(a);
    auto ib = graph.InNeighbors(b);
    uint64_t inter = IntersectionSize(ia, ib);
    uint64_t uni = ia.size() + ib.size() - inter;
    sum_inter += static_cast<double>(inter);
    sum_symdiff += static_cast<double>(ia.size() + ib.size() - 2 * inter);
    sum_jaccard += uni == 0 ? 0.0 : static_cast<double>(inter) / uni;
    ++stats.pairs_sampled;
  }
  if (stats.pairs_sampled > 0) {
    stats.avg_intersection = sum_inter / stats.pairs_sampled;
    stats.avg_symmetric_difference = sum_symdiff / stats.pairs_sampled;
    stats.avg_jaccard = sum_jaccard / stats.pairs_sampled;
  }
  return stats;
}

uint32_t CountDistinctInNeighborSets(const DiGraph& graph) {
  // Hash each sorted in-neighbour list (FNV-1a over the elements) and use
  // full comparison within buckets to resolve collisions exactly.
  struct SetRef {
    const DiGraph* graph;
    VertexId v;
  };
  struct Hash {
    size_t operator()(const SetRef& ref) const {
      uint64_t h = 1469598103934665603ULL;
      for (VertexId u : ref.graph->InNeighbors(ref.v)) {
        h ^= u;
        h *= 1099511628211ULL;
      }
      return static_cast<size_t>(h);
    }
  };
  struct Eq {
    bool operator()(const SetRef& a, const SetRef& b) const {
      return SetsEqual(a.graph->InNeighbors(a.v), b.graph->InNeighbors(b.v));
    }
  };
  std::unordered_set<SetRef, Hash, Eq> distinct;
  for (VertexId v = 0; v < graph.n(); ++v) {
    if (graph.InDegree(v) > 0) distinct.insert(SetRef{&graph, v});
  }
  return static_cast<uint32_t>(distinct.size());
}

}  // namespace simrank
