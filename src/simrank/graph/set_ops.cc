#include "simrank/graph/set_ops.h"

namespace simrank {

uint64_t IntersectionSize(std::span<const VertexId> a,
                          std::span<const VertexId> b) {
  uint64_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

uint64_t SymmetricDifferenceSize(std::span<const VertexId> a,
                                 std::span<const VertexId> b) {
  // |A| + |B| - 2|A ∩ B|
  return a.size() + b.size() - 2 * IntersectionSize(a, b);
}

uint64_t SymmetricDifferenceSizeCapped(std::span<const VertexId> a,
                                       std::span<const VertexId> b,
                                       uint64_t cap) {
  uint64_t diff = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
      ++diff;
    } else if (a[i] > b[j]) {
      ++j;
      ++diff;
    } else {
      ++i;
      ++j;
    }
    if (diff >= cap) return diff;
  }
  diff += (a.size() - i) + (b.size() - j);
  return diff;
}

void SetDifferences(std::span<const VertexId> a, std::span<const VertexId> b,
                    std::vector<VertexId>* a_minus_b,
                    std::vector<VertexId>* b_minus_a) {
  OIPSIM_CHECK(a_minus_b != nullptr && b_minus_a != nullptr);
  a_minus_b->clear();
  b_minus_a->clear();
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      a_minus_b->push_back(a[i++]);
    } else if (a[i] > b[j]) {
      b_minus_a->push_back(b[j++]);
    } else {
      ++i;
      ++j;
    }
  }
  for (; i < a.size(); ++i) a_minus_b->push_back(a[i]);
  for (; j < b.size(); ++j) b_minus_a->push_back(b[j]);
}

std::vector<VertexId> Intersection(std::span<const VertexId> a,
                                   std::span<const VertexId> b) {
  std::vector<VertexId> out;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
  return out;
}

}  // namespace simrank
