// Graph serialisation: SNAP-style edge-list text files and a compact
// binary format for generated benchmark datasets.
#ifndef OIPSIM_SIMRANK_GRAPH_GRAPH_IO_H_
#define OIPSIM_SIMRANK_GRAPH_GRAPH_IO_H_

#include <string>

#include "simrank/common/status.h"
#include "simrank/graph/digraph.h"

namespace simrank {

/// Reads a whitespace-separated edge list ("src dst" per line). Lines that
/// are empty or start with '#' or '%' are skipped (SNAP/Matrix-Market
/// comment conventions). Vertex ids may be arbitrary non-negative integers;
/// when `compact_ids` is true they are relabelled densely in first-seen
/// order, otherwise the max id defines n and ids are used as-is.
Result<DiGraph> ReadEdgeList(const std::string& path,
                             bool compact_ids = true);

/// Parses an edge list from an in-memory string (same format as
/// ReadEdgeList). Useful for tests and fixtures.
Result<DiGraph> ParseEdgeList(const std::string& text,
                              bool compact_ids = true);

/// Writes "src dst" lines, one directed edge per line, with a header
/// comment carrying n and m.
Status WriteEdgeList(const DiGraph& graph, const std::string& path);

/// Writes the compact binary format: magic, n, m, then m (src,dst) pairs of
/// uint32. Reading validates magic and bounds.
Status WriteBinary(const DiGraph& graph, const std::string& path);

/// Reads the compact binary format written by WriteBinary.
Result<DiGraph> ReadBinary(const std::string& path);

/// Reads either graph format, sniffing the binary magic: WriteBinary
/// output round-trips exactly (ids and isolated vertices preserved —
/// what the dynamic-update tooling needs for bitwise-reproducible
/// rebuilds), anything else parses as an edge list with ReadEdgeList's
/// defaults.
Result<DiGraph> ReadGraphAuto(const std::string& path);

/// Deterministic 64-bit structural hash over n and the edge *set*. Equal
/// graphs hash equal across runs and platforms of equal endianness. Used
/// by derived on-disk artefacts (e.g. the walk index of
/// index/walk_index.h) to verify they were built from the graph they are
/// being served against.
///
/// The hash is commutative in the edges: it combines per-edge mixes
/// (EdgeFingerprint) through order-independent accumulators, so a dynamic
/// maintainer can keep it current in O(1) per edge insertion or deletion
/// (IndexUpdater does) instead of re-hashing the whole edge list per
/// batch. GraphFingerprint(g) == ComposeGraphFingerprint over g's edges,
/// always.
uint64_t GraphFingerprint(const DiGraph& graph);

/// Strong 64-bit mix of one directed edge — the unit the commutative
/// fingerprint accumulates. Full splitmix64-style finalization: edge sets
/// that differ in one edge differ in the (sum, xor) accumulator pair
/// except with negligible probability.
uint64_t EdgeFingerprint(VertexId src, VertexId dst);

/// Folds the order-independent accumulators into the canonical
/// fingerprint: `edge_sum` is the wrapping sum and `edge_xor` the xor of
/// EdgeFingerprint over all m edges. Incremental maintenance is
/// sum += / -= and xor ^= per edge, then one Compose call.
uint64_t ComposeGraphFingerprint(uint32_t n, uint64_t m, uint64_t edge_sum,
                                 uint64_t edge_xor);

/// Canonical rendering of a structural fingerprint — 16 zero-padded hex
/// digits — shared by mismatch diagnostics and `simrank_cli index-info` so
/// a fingerprint printed by one tool can be grepped in another's output.
std::string FormatFingerprint(uint64_t fingerprint);

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_GRAPH_GRAPH_IO_H_
