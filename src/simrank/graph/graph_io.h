// Graph serialisation: SNAP-style edge-list text files and a compact
// binary format for generated benchmark datasets.
#ifndef OIPSIM_SIMRANK_GRAPH_GRAPH_IO_H_
#define OIPSIM_SIMRANK_GRAPH_GRAPH_IO_H_

#include <string>

#include "simrank/common/status.h"
#include "simrank/graph/digraph.h"

namespace simrank {

/// Reads a whitespace-separated edge list ("src dst" per line). Lines that
/// are empty or start with '#' or '%' are skipped (SNAP/Matrix-Market
/// comment conventions). Vertex ids may be arbitrary non-negative integers;
/// when `compact_ids` is true they are relabelled densely in first-seen
/// order, otherwise the max id defines n and ids are used as-is.
Result<DiGraph> ReadEdgeList(const std::string& path,
                             bool compact_ids = true);

/// Parses an edge list from an in-memory string (same format as
/// ReadEdgeList). Useful for tests and fixtures.
Result<DiGraph> ParseEdgeList(const std::string& text,
                              bool compact_ids = true);

/// Writes "src dst" lines, one directed edge per line, with a header
/// comment carrying n and m.
Status WriteEdgeList(const DiGraph& graph, const std::string& path);

/// Writes the compact binary format: magic, n, m, then m (src,dst) pairs of
/// uint32. Reading validates magic and bounds.
Status WriteBinary(const DiGraph& graph, const std::string& path);

/// Reads the compact binary format written by WriteBinary.
Result<DiGraph> ReadBinary(const std::string& path);

/// Reads either graph format, sniffing the binary magic: WriteBinary
/// output round-trips exactly (ids and isolated vertices preserved —
/// what the dynamic-update tooling needs for bitwise-reproducible
/// rebuilds), anything else parses as an edge list with ReadEdgeList's
/// defaults.
Result<DiGraph> ReadGraphAuto(const std::string& path);

/// Deterministic 64-bit structural hash over n and the full (sorted) CSR
/// adjacency. Equal graphs hash equal across runs and platforms of equal
/// endianness. Used by derived on-disk artefacts (e.g. the walk index of
/// index/walk_index.h) to verify they were built from the graph they are
/// being served against.
uint64_t GraphFingerprint(const DiGraph& graph);

/// Canonical rendering of a structural fingerprint — 16 zero-padded hex
/// digits — shared by mismatch diagnostics and `simrank_cli index-info` so
/// a fingerprint printed by one tool can be grepped in another's output.
std::string FormatFingerprint(uint64_t fingerprint);

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_GRAPH_GRAPH_IO_H_
