#include "simrank/graph/digraph.h"

#include <algorithm>

namespace simrank {

bool DiGraph::HasEdge(VertexId src, VertexId dst) const {
  auto out = OutNeighbors(src);
  return std::binary_search(out.begin(), out.end(), dst);
}

std::vector<Edge> DiGraph::Edges() const {
  std::vector<Edge> edges;
  edges.reserve(m());
  for (VertexId v = 0; v < n_; ++v) {
    for (VertexId u : OutNeighbors(v)) {
      edges.push_back(Edge{v, u});
    }
  }
  return edges;
}

DiGraph DiGraph::Builder::Build() && {
  if (dedupe_) {
    std::sort(edges_.begin(), edges_.end(),
              [](const Edge& a, const Edge& b) {
                return a.src != b.src ? a.src < b.src : a.dst < b.dst;
              });
    edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  }

  DiGraph g;
  g.n_ = n_;
  const uint64_t m = edges_.size();

  // Counting-sort CSR construction for both directions.
  g.out_offsets_.assign(n_ + 1, 0);
  g.in_offsets_.assign(n_ + 1, 0);
  for (const Edge& e : edges_) {
    ++g.out_offsets_[e.src + 1];
    ++g.in_offsets_[e.dst + 1];
  }
  for (uint32_t v = 0; v < n_; ++v) {
    g.out_offsets_[v + 1] += g.out_offsets_[v];
    g.in_offsets_[v + 1] += g.in_offsets_[v];
  }

  g.out_targets_.resize(m);
  g.in_sources_.resize(m);
  std::vector<uint64_t> out_cursor(g.out_offsets_.begin(),
                                   g.out_offsets_.end() - 1);
  std::vector<uint64_t> in_cursor(g.in_offsets_.begin(),
                                  g.in_offsets_.end() - 1);
  for (const Edge& e : edges_) {
    g.out_targets_[out_cursor[e.src]++] = e.dst;
    g.in_sources_[in_cursor[e.dst]++] = e.src;
  }

  // Neighbour lists must be sorted ascending: the out lists already are
  // when the input was sorted for deduplication; the in lists need a sort
  // per vertex either way (stable insertion order is by src only when the
  // edges were sorted, which happens to be ascending — but we do not rely
  // on that when dedupe_ is off).
  for (uint32_t v = 0; v < n_; ++v) {
    std::sort(g.out_targets_.begin() + static_cast<int64_t>(g.out_offsets_[v]),
              g.out_targets_.begin() +
                  static_cast<int64_t>(g.out_offsets_[v + 1]));
    std::sort(g.in_sources_.begin() + static_cast<int64_t>(g.in_offsets_[v]),
              g.in_sources_.begin() +
                  static_cast<int64_t>(g.in_offsets_[v + 1]));
  }
  return g;
}

}  // namespace simrank
