#include "simrank/graph/graph_ops.h"

#include <algorithm>
#include <unordered_map>

namespace simrank {

DiGraph Transpose(const DiGraph& graph) {
  DiGraph::Builder builder(graph.n());
  for (VertexId v = 0; v < graph.n(); ++v) {
    for (VertexId u : graph.OutNeighbors(v)) builder.AddEdge(u, v);
  }
  return std::move(builder).Build();
}

DiGraph InducedSubgraph(const DiGraph& graph,
                        const std::vector<VertexId>& vertices) {
  std::unordered_map<VertexId, VertexId> relabel;
  relabel.reserve(vertices.size());
  for (VertexId v : vertices) {
    OIPSIM_CHECK_LT(v, graph.n());
    relabel.emplace(v, static_cast<VertexId>(relabel.size()));
  }
  DiGraph::Builder builder(static_cast<uint32_t>(relabel.size()));
  for (const auto& [old_id, new_id] : relabel) {
    for (VertexId u : graph.OutNeighbors(old_id)) {
      auto it = relabel.find(u);
      if (it != relabel.end()) builder.AddEdge(new_id, it->second);
    }
  }
  return std::move(builder).Build();
}

Result<DiGraph> RelabelVertices(const DiGraph& graph,
                                const std::vector<VertexId>& perm) {
  if (perm.size() != graph.n()) {
    return Status::InvalidArgument("perm size does not match vertex count");
  }
  std::vector<bool> seen(graph.n(), false);
  for (VertexId p : perm) {
    if (p >= graph.n() || seen[p]) {
      return Status::InvalidArgument("perm is not a permutation of [0, n)");
    }
    seen[p] = true;
  }
  DiGraph::Builder builder(graph.n());
  for (VertexId v = 0; v < graph.n(); ++v) {
    for (VertexId u : graph.OutNeighbors(v)) {
      builder.AddEdge(perm[v], perm[u]);
    }
  }
  return std::move(builder).Build();
}

DiGraph RemoveSelfLoops(const DiGraph& graph) {
  DiGraph::Builder builder(graph.n());
  for (VertexId v = 0; v < graph.n(); ++v) {
    for (VertexId u : graph.OutNeighbors(v)) {
      if (u != v) builder.AddEdge(v, u);
    }
  }
  return std::move(builder).Build();
}

DiGraph Symmetrize(const DiGraph& graph) {
  DiGraph::Builder builder(graph.n());
  for (VertexId v = 0; v < graph.n(); ++v) {
    for (VertexId u : graph.OutNeighbors(v)) {
      builder.AddEdge(v, u);
      builder.AddEdge(u, v);
    }
  }
  return std::move(builder).Build();
}

}  // namespace simrank
