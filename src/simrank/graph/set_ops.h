// Linear-time operations on sorted vertex sets (in-neighbour lists).
//
// These are the primitives behind Eq. (7) of the paper — the transition
// cost TC(I(a) -> I(b)) = min{|I(a) ⊖ I(b)|, |I(b)| - 1} — and behind the
// Eq. (9) diff updates that turn one partial sum into another.
#ifndef OIPSIM_SIMRANK_GRAPH_SET_OPS_H_
#define OIPSIM_SIMRANK_GRAPH_SET_OPS_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "simrank/graph/digraph.h"

namespace simrank {

/// |A ∩ B| for ascending-sorted ranges (linear merge).
uint64_t IntersectionSize(std::span<const VertexId> a,
                          std::span<const VertexId> b);

/// |A ⊖ B| = |A\B| + |B\A| for ascending-sorted ranges (linear merge).
uint64_t SymmetricDifferenceSize(std::span<const VertexId> a,
                                 std::span<const VertexId> b);

/// Early-exit variant: returns |A ⊖ B| if it is < `cap`, otherwise any
/// value >= cap. Used during MST construction where costs above |I(b)|-1
/// never matter (Eq. 7 caps them).
uint64_t SymmetricDifferenceSizeCapped(std::span<const VertexId> a,
                                       std::span<const VertexId> b,
                                       uint64_t cap);

/// Computes A\B and B\A in one merge pass. Outputs are ascending.
void SetDifferences(std::span<const VertexId> a, std::span<const VertexId> b,
                    std::vector<VertexId>* a_minus_b,
                    std::vector<VertexId>* b_minus_a);

/// A ∩ B, ascending.
std::vector<VertexId> Intersection(std::span<const VertexId> a,
                                   std::span<const VertexId> b);

/// True if sorted ranges are equal element-wise.
inline bool SetsEqual(std::span<const VertexId> a,
                      std::span<const VertexId> b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_GRAPH_SET_OPS_H_
