// Truncated singular value decomposition.
//
// mtx-SR (Li et al., EDBT'10 — the paper's matrix baseline) approximates
// SimRank on a low-rank factorisation of the transition matrix. We provide
// a randomized range-finder SVD (Halko, Martinsson & Tropp, 2011):
//   Y = (A·Aᵀ)^q · A · Ω,  Qb = orth(Y),  B = Qbᵀ·A,
//   eigendecompose B·Bᵀ (small, via cyclic Jacobi) to recover U, σ, V.
#ifndef OIPSIM_SIMRANK_LINALG_SVD_H_
#define OIPSIM_SIMRANK_LINALG_SVD_H_

#include <cstdint>
#include <vector>

#include "simrank/common/status.h"
#include "simrank/linalg/dense_matrix.h"
#include "simrank/linalg/sparse_matrix.h"

namespace simrank {

/// Rank-r factorisation A ≈ U · diag(sigma) · Vᵀ.
struct SvdResult {
  DenseMatrix u;              ///< n x r, orthonormal columns.
  std::vector<double> sigma;  ///< r singular values, descending.
  DenseMatrix v;              ///< n x r, orthonormal columns.
};

/// Options for the randomized SVD.
struct SvdOptions {
  uint32_t rank = 32;
  uint32_t oversample = 8;      ///< extra columns for the range finder.
  uint32_t power_iterations = 2;
  uint64_t seed = 42;
};

/// Computes a randomized truncated SVD of a sparse matrix.
/// Fails if rank + oversample exceeds the matrix dimension.
Result<SvdResult> RandomizedSvd(const SparseMatrix& a,
                                const SvdOptions& options);

/// Orthonormalises the columns of `m` in place via modified Gram-Schmidt.
/// Columns that become (numerically) zero are dropped; returns the number
/// of columns kept.
uint32_t OrthonormalizeColumns(DenseMatrix* m);

/// Cyclic Jacobi eigendecomposition of a small symmetric matrix.
/// Returns eigenvalues (descending) and the matching eigenvectors as
/// columns of `eigvecs`.
void SymmetricEigen(const DenseMatrix& sym, std::vector<double>* eigvals,
                    DenseMatrix* eigvecs);

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_LINALG_SVD_H_
