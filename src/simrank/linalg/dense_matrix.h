// Row-major dense double matrix with the operations needed by the
// matrix-form SimRank oracle and the SVD-based mtx-SR baseline.
#ifndef OIPSIM_SIMRANK_LINALG_DENSE_MATRIX_H_
#define OIPSIM_SIMRANK_LINALG_DENSE_MATRIX_H_

#include <cstdint>
#include <vector>

#include "simrank/common/macros.h"

namespace simrank {

/// Dense row-major matrix of doubles.
class DenseMatrix {
 public:
  /// Constructs an empty 0x0 matrix.
  DenseMatrix() = default;

  /// Constructs a rows x cols matrix, zero-initialised.
  DenseMatrix(uint32_t rows, uint32_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, 0.0) {}

  /// Identity matrix of size n.
  static DenseMatrix Identity(uint32_t n);

  /// Matrix filled with a constant.
  static DenseMatrix Constant(uint32_t rows, uint32_t cols, double value);

  uint32_t rows() const { return rows_; }
  uint32_t cols() const { return cols_; }

  double& operator()(uint32_t i, uint32_t j) {
    OIPSIM_DCHECK(i < rows_ && j < cols_);
    return data_[static_cast<size_t>(i) * cols_ + j];
  }
  double operator()(uint32_t i, uint32_t j) const {
    OIPSIM_DCHECK(i < rows_ && j < cols_);
    return data_[static_cast<size_t>(i) * cols_ + j];
  }

  /// Raw row pointer (row-major layout).
  double* Row(uint32_t i) { return data_.data() + static_cast<size_t>(i) * cols_; }
  const double* Row(uint32_t i) const {
    return data_.data() + static_cast<size_t>(i) * cols_;
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& mutable_data() { return data_; }

  /// Sets every entry to `value`.
  void Fill(double value);

  /// this += other (same shape required).
  void Add(const DenseMatrix& other);

  /// this += scale * other (same shape required).
  void AddScaled(const DenseMatrix& other, double scale);

  /// this *= scale.
  void Scale(double scale);

  /// Returns the transpose.
  DenseMatrix Transposed() const;

  /// Returns this * other.
  DenseMatrix Multiply(const DenseMatrix& other) const;

  /// Returns this * otherᵀ.
  DenseMatrix MultiplyTransposed(const DenseMatrix& other) const;

  /// max_{i,j} |a_ij - b_ij|; shapes must match.
  static double MaxAbsDiff(const DenseMatrix& a, const DenseMatrix& b);

  /// max_{i,j} |a_ij| (the paper's ||·||_max norm).
  double MaxNorm() const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  friend bool operator==(const DenseMatrix&, const DenseMatrix&) = default;

 private:
  uint32_t rows_ = 0;
  uint32_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_LINALG_DENSE_MATRIX_H_
