#include "simrank/linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "simrank/common/rng.h"

namespace simrank {

uint32_t OrthonormalizeColumns(DenseMatrix* m) {
  OIPSIM_CHECK(m != nullptr);
  const uint32_t rows = m->rows();
  const uint32_t cols = m->cols();
  uint32_t kept = 0;
  for (uint32_t j = 0; j < cols; ++j) {
    // Project out previously-kept columns (modified Gram-Schmidt, two
    // passes for numerical robustness).
    for (int pass = 0; pass < 2; ++pass) {
      for (uint32_t p = 0; p < kept; ++p) {
        double dot = 0.0;
        for (uint32_t i = 0; i < rows; ++i) dot += (*m)(i, p) * (*m)(i, j);
        for (uint32_t i = 0; i < rows; ++i) (*m)(i, j) -= dot * (*m)(i, p);
      }
    }
    double norm = 0.0;
    for (uint32_t i = 0; i < rows; ++i) norm += (*m)(i, j) * (*m)(i, j);
    norm = std::sqrt(norm);
    if (norm < 1e-12) continue;  // dependent column, drop it
    for (uint32_t i = 0; i < rows; ++i) {
      (*m)(i, kept) = (*m)(i, j) / norm;
    }
    ++kept;
  }
  // Shrink to the kept columns.
  if (kept < cols) {
    DenseMatrix shrunk(rows, kept);
    for (uint32_t i = 0; i < rows; ++i) {
      for (uint32_t j = 0; j < kept; ++j) shrunk(i, j) = (*m)(i, j);
    }
    *m = std::move(shrunk);
  }
  return kept;
}

void SymmetricEigen(const DenseMatrix& sym, std::vector<double>* eigvals,
                    DenseMatrix* eigvecs) {
  OIPSIM_CHECK(eigvals != nullptr && eigvecs != nullptr);
  OIPSIM_CHECK_EQ(sym.rows(), sym.cols());
  const uint32_t n = sym.rows();
  DenseMatrix a = sym;
  DenseMatrix v = DenseMatrix::Identity(n);

  // Cyclic Jacobi sweeps until off-diagonal mass is negligible.
  const int kMaxSweeps = 64;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (uint32_t p = 0; p < n; ++p) {
      for (uint32_t q = p + 1; q < n; ++q) off += a(p, q) * a(p, q);
    }
    if (off < 1e-24) break;
    for (uint32_t p = 0; p < n; ++p) {
      for (uint32_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) < 1e-18) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply the rotation to A from both sides and accumulate in V.
        for (uint32_t i = 0; i < n; ++i) {
          const double aip = a(i, p);
          const double aiq = a(i, q);
          a(i, p) = c * aip - s * aiq;
          a(i, q) = s * aip + c * aiq;
        }
        for (uint32_t i = 0; i < n; ++i) {
          const double api = a(p, i);
          const double aqi = a(q, i);
          a(p, i) = c * api - s * aqi;
          a(q, i) = s * api + c * aqi;
        }
        for (uint32_t i = 0; i < n; ++i) {
          const double vip = v(i, p);
          const double viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&a](uint32_t x, uint32_t y) { return a(x, x) > a(y, y); });
  eigvals->resize(n);
  *eigvecs = DenseMatrix(n, n);
  for (uint32_t j = 0; j < n; ++j) {
    (*eigvals)[j] = a(order[j], order[j]);
    for (uint32_t i = 0; i < n; ++i) (*eigvecs)(i, j) = v(i, order[j]);
  }
}

Result<SvdResult> RandomizedSvd(const SparseMatrix& a,
                                const SvdOptions& options) {
  if (options.rank == 0) {
    return Status::InvalidArgument("SVD rank must be positive");
  }
  const uint32_t n_rows = a.rows();
  const uint32_t n_cols = a.cols();
  const uint32_t l = options.rank + options.oversample;
  if (l > std::min(n_rows, n_cols)) {
    return Status::InvalidArgument(
        "rank + oversample exceeds matrix dimension");
  }

  Rng rng(options.seed);
  SparseMatrix at = a.Transposed();

  // Range finder: Y = A * Omega with power iterations.
  DenseMatrix omega(n_cols, l);
  for (uint32_t i = 0; i < n_cols; ++i) {
    for (uint32_t j = 0; j < l; ++j) omega(i, j) = rng.NextGaussian();
  }
  DenseMatrix y = a.MultiplyDense(omega);
  for (uint32_t q = 0; q < options.power_iterations; ++q) {
    OrthonormalizeColumns(&y);  // re-orthonormalise to avoid blow-up
    DenseMatrix z = at.MultiplyDense(y);
    OrthonormalizeColumns(&z);
    y = a.MultiplyDense(z);
  }
  uint32_t kept = OrthonormalizeColumns(&y);
  if (kept == 0) {
    return Status::Internal("matrix has numerically zero range");
  }

  // B = Qbᵀ A computed as (Aᵀ Qb)ᵀ: small l x n matrix.
  DenseMatrix bt = at.MultiplyDense(y);  // n_cols x kept
  // BBᵀ (kept x kept) = Btᵀ Bt.
  DenseMatrix bbt(kept, kept);
  for (uint32_t i = 0; i < kept; ++i) {
    for (uint32_t j = i; j < kept; ++j) {
      double sum = 0.0;
      for (uint32_t r = 0; r < n_cols; ++r) sum += bt(r, i) * bt(r, j);
      bbt(i, j) = sum;
      bbt(j, i) = sum;
    }
  }

  std::vector<double> eigvals;
  DenseMatrix w;
  SymmetricEigen(bbt, &eigvals, &w);

  const uint32_t r = std::min(options.rank, kept);
  SvdResult result;
  result.sigma.resize(r);
  result.u = DenseMatrix(n_rows, r);
  result.v = DenseMatrix(n_cols, r);
  for (uint32_t j = 0; j < r; ++j) {
    const double sigma = std::sqrt(std::max(0.0, eigvals[j]));
    result.sigma[j] = sigma;
    // U column j = Qb * w_j.
    for (uint32_t i = 0; i < n_rows; ++i) {
      double sum = 0.0;
      for (uint32_t k = 0; k < kept; ++k) sum += y(i, k) * w(k, j);
      result.u(i, j) = sum;
    }
    // V column j = Bᵀ w_j / sigma.
    if (sigma > 1e-12) {
      for (uint32_t i = 0; i < n_cols; ++i) {
        double sum = 0.0;
        for (uint32_t k = 0; k < kept; ++k) sum += bt(i, k) * w(k, j);
        result.v(i, j) = sum / sigma;
      }
    }
  }
  return result;
}

}  // namespace simrank
