#include "simrank/linalg/dense_matrix.h"

#include <algorithm>
#include <cmath>

namespace simrank {

DenseMatrix DenseMatrix::Identity(uint32_t n) {
  DenseMatrix m(n, n);
  for (uint32_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

DenseMatrix DenseMatrix::Constant(uint32_t rows, uint32_t cols,
                                  double value) {
  DenseMatrix m(rows, cols);
  std::fill(m.data_.begin(), m.data_.end(), value);
  return m;
}

void DenseMatrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void DenseMatrix::Add(const DenseMatrix& other) {
  OIPSIM_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void DenseMatrix::AddScaled(const DenseMatrix& other, double scale) {
  OIPSIM_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

void DenseMatrix::Scale(double scale) {
  for (double& v : data_) v *= scale;
}

DenseMatrix DenseMatrix::Transposed() const {
  DenseMatrix t(cols_, rows_);
  for (uint32_t i = 0; i < rows_; ++i) {
    const double* row = Row(i);
    for (uint32_t j = 0; j < cols_; ++j) t(j, i) = row[j];
  }
  return t;
}

DenseMatrix DenseMatrix::Multiply(const DenseMatrix& other) const {
  OIPSIM_CHECK_EQ(cols_, other.rows_);
  DenseMatrix out(rows_, other.cols_);
  // i-k-j loop order for row-major cache friendliness.
  for (uint32_t i = 0; i < rows_; ++i) {
    const double* a_row = Row(i);
    double* out_row = out.Row(i);
    for (uint32_t k = 0; k < cols_; ++k) {
      double a = a_row[k];
      if (a == 0.0) continue;
      const double* b_row = other.Row(k);
      for (uint32_t j = 0; j < other.cols_; ++j) {
        out_row[j] += a * b_row[j];
      }
    }
  }
  return out;
}

DenseMatrix DenseMatrix::MultiplyTransposed(const DenseMatrix& other) const {
  OIPSIM_CHECK_EQ(cols_, other.cols_);
  DenseMatrix out(rows_, other.rows_);
  for (uint32_t i = 0; i < rows_; ++i) {
    const double* a_row = Row(i);
    double* out_row = out.Row(i);
    for (uint32_t j = 0; j < other.rows_; ++j) {
      const double* b_row = other.Row(j);
      double sum = 0.0;
      for (uint32_t k = 0; k < cols_; ++k) sum += a_row[k] * b_row[k];
      out_row[j] = sum;
    }
  }
  return out;
}

double DenseMatrix::MaxAbsDiff(const DenseMatrix& a, const DenseMatrix& b) {
  OIPSIM_CHECK(a.rows_ == b.rows_ && a.cols_ == b.cols_);
  double max_diff = 0.0;
  for (size_t i = 0; i < a.data_.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(a.data_[i] - b.data_[i]));
  }
  return max_diff;
}

double DenseMatrix::MaxNorm() const {
  double max_abs = 0.0;
  for (double v : data_) max_abs = std::max(max_abs, std::abs(v));
  return max_abs;
}

double DenseMatrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

}  // namespace simrank
