// CSR sparse double matrix.
//
// The matrix-form SimRank oracle (S = C·Q·S·Qᵀ + (1-C)·I, Eq. 3) and the
// differential model's Tk iteration both need sparse-times-dense products
// with the backward transition matrix Q, where [Q]_{i,j} = 1/|I(i)| iff
// edge (j -> i) exists.
#ifndef OIPSIM_SIMRANK_LINALG_SPARSE_MATRIX_H_
#define OIPSIM_SIMRANK_LINALG_SPARSE_MATRIX_H_

#include <cstdint>
#include <vector>

#include "simrank/graph/digraph.h"
#include "simrank/linalg/dense_matrix.h"

namespace simrank {

/// One non-zero entry for triplet construction.
struct Triplet {
  uint32_t row = 0;
  uint32_t col = 0;
  double value = 0.0;
};

/// Immutable CSR sparse matrix.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Builds from triplets. Duplicate (row, col) entries are summed.
  static SparseMatrix FromTriplets(uint32_t rows, uint32_t cols,
                                   std::vector<Triplet> triplets);

  /// Builds the backward transition matrix Q of `graph`:
  /// [Q]_{i,j} = 1/|I(i)| if edge (j -> i), else 0. Rows of vertices with
  /// no in-neighbours are all-zero (sub-stochastic, as the paper notes).
  static SparseMatrix BackwardTransition(const DiGraph& graph);

  uint32_t rows() const { return rows_; }
  uint32_t cols() const { return cols_; }
  uint64_t nnz() const { return static_cast<uint64_t>(values_.size()); }

  /// y = this * x (sizes must match).
  void MultiplyVector(const std::vector<double>& x,
                      std::vector<double>* y) const;

  /// Returns this * dense.
  DenseMatrix MultiplyDense(const DenseMatrix& dense) const;

  /// Returns this * dense * thisᵀ — the Q·S·Qᵀ kernel of Eq. (3) —
  /// without materialising the transpose.
  DenseMatrix SandwichDense(const DenseMatrix& dense) const;

  /// Returns the transpose as a new CSR matrix.
  SparseMatrix Transposed() const;

  /// Densifies (for tests on small matrices).
  DenseMatrix ToDense() const;

  /// Max row sum of absolute values (the infinity norm).
  double InfinityNorm() const;

  /// CSR internals (exposed for kernels and tests).
  const std::vector<uint64_t>& row_offsets() const { return row_offsets_; }
  const std::vector<uint32_t>& col_indices() const { return col_indices_; }
  const std::vector<double>& values() const { return values_; }

 private:
  uint32_t rows_ = 0;
  uint32_t cols_ = 0;
  std::vector<uint64_t> row_offsets_{0};
  std::vector<uint32_t> col_indices_;
  std::vector<double> values_;
};

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_LINALG_SPARSE_MATRIX_H_
