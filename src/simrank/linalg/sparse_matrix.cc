#include "simrank/linalg/sparse_matrix.h"

#include <algorithm>
#include <cmath>

namespace simrank {

SparseMatrix SparseMatrix::FromTriplets(uint32_t rows, uint32_t cols,
                                        std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    OIPSIM_CHECK_LT(t.row, rows);
    OIPSIM_CHECK_LT(t.col, cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_offsets_.assign(rows + 1, 0);
  for (size_t i = 0; i < triplets.size();) {
    size_t j = i;
    double sum = 0.0;
    while (j < triplets.size() && triplets[j].row == triplets[i].row &&
           triplets[j].col == triplets[i].col) {
      sum += triplets[j].value;
      ++j;
    }
    m.col_indices_.push_back(triplets[i].col);
    m.values_.push_back(sum);
    ++m.row_offsets_[triplets[i].row + 1];
    i = j;
  }
  for (uint32_t r = 0; r < rows; ++r) {
    m.row_offsets_[r + 1] += m.row_offsets_[r];
  }
  return m;
}

SparseMatrix SparseMatrix::BackwardTransition(const DiGraph& graph) {
  SparseMatrix m;
  const uint32_t n = graph.n();
  m.rows_ = n;
  m.cols_ = n;
  m.row_offsets_.assign(n + 1, 0);
  m.col_indices_.reserve(graph.m());
  m.values_.reserve(graph.m());
  for (VertexId v = 0; v < n; ++v) {
    auto in = graph.InNeighbors(v);
    const double weight = in.empty() ? 0.0 : 1.0 / static_cast<double>(in.size());
    for (VertexId u : in) {
      m.col_indices_.push_back(u);
      m.values_.push_back(weight);
    }
    m.row_offsets_[v + 1] = m.row_offsets_[v] + in.size();
  }
  return m;
}

void SparseMatrix::MultiplyVector(const std::vector<double>& x,
                                  std::vector<double>* y) const {
  OIPSIM_CHECK_EQ(x.size(), static_cast<size_t>(cols_));
  OIPSIM_CHECK(y != nullptr);
  y->assign(rows_, 0.0);
  for (uint32_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (uint64_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      sum += values_[k] * x[col_indices_[k]];
    }
    (*y)[r] = sum;
  }
}

DenseMatrix SparseMatrix::MultiplyDense(const DenseMatrix& dense) const {
  OIPSIM_CHECK_EQ(cols_, dense.rows());
  DenseMatrix out(rows_, dense.cols());
  for (uint32_t r = 0; r < rows_; ++r) {
    double* out_row = out.Row(r);
    for (uint64_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      const double a = values_[k];
      const double* dense_row = dense.Row(col_indices_[k]);
      for (uint32_t j = 0; j < dense.cols(); ++j) {
        out_row[j] += a * dense_row[j];
      }
    }
  }
  return out;
}

DenseMatrix SparseMatrix::SandwichDense(const DenseMatrix& dense) const {
  OIPSIM_CHECK_EQ(cols_, dense.rows());
  OIPSIM_CHECK_EQ(dense.rows(), dense.cols());
  // T = Q * S, then out = T * Qᵀ computed as out(i, j) = <T row i, Q row j>.
  DenseMatrix t = MultiplyDense(dense);
  DenseMatrix out(rows_, rows_);
  for (uint32_t i = 0; i < rows_; ++i) {
    const double* t_row = t.Row(i);
    double* out_row = out.Row(i);
    for (uint32_t j = 0; j < rows_; ++j) {
      double sum = 0.0;
      for (uint64_t k = row_offsets_[j]; k < row_offsets_[j + 1]; ++k) {
        sum += values_[k] * t_row[col_indices_[k]];
      }
      out_row[j] = sum;
    }
  }
  return out;
}

SparseMatrix SparseMatrix::Transposed() const {
  std::vector<Triplet> triplets;
  triplets.reserve(values_.size());
  for (uint32_t r = 0; r < rows_; ++r) {
    for (uint64_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      triplets.push_back(Triplet{col_indices_[k], r, values_[k]});
    }
  }
  return FromTriplets(cols_, rows_, std::move(triplets));
}

DenseMatrix SparseMatrix::ToDense() const {
  DenseMatrix out(rows_, cols_);
  for (uint32_t r = 0; r < rows_; ++r) {
    for (uint64_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      out(r, col_indices_[k]) += values_[k];
    }
  }
  return out;
}

double SparseMatrix::InfinityNorm() const {
  double max_sum = 0.0;
  for (uint32_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (uint64_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      sum += std::abs(values_[k]);
    }
    max_sum = std::max(max_sum, sum);
  }
  return max_sum;
}

}  // namespace simrank
