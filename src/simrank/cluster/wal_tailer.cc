#include "simrank/cluster/wal_tailer.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <vector>

#include "simrank/common/string_util.h"
#include "simrank/index/edge_update.h"
#include "simrank/server/http_client.h"

namespace simrank {
namespace {

bool ParseHexFingerprint(std::string_view text, uint64_t* out) {
  if (text.empty() || text.size() > 16) return false;
  const std::string copy(text);
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(copy.c_str(), &end, 16);
  if (errno != 0 || end != copy.c_str() + copy.size()) return false;
  *out = static_cast<uint64_t>(value);
  return true;
}

}  // namespace

Status WalTailer::Start() {
  if (options_.source_port == 0) {
    return Status::InvalidArgument("WalTailer needs a source port");
  }
  bool expected = true;
  if (!stop_.compare_exchange_strong(expected, false)) {
    return Status::InvalidArgument("WalTailer is already running");
  }
  thread_ = std::thread([this] { PollLoop(); });
  return Status::OK();
}

void WalTailer::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
}

WalTailerStats WalTailer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

Result<uint64_t> WalTailer::ApplyStream(std::string_view body) {
  const std::vector<std::string> lines = StrSplit(body, '\n');
  size_t cursor = 0;
  auto next_line = [&]() -> std::string_view {
    while (cursor < lines.size()) {
      const std::string_view line = StrTrim(lines[cursor++]);
      if (!line.empty()) return line;
    }
    return std::string_view();
  };

  std::string_view header = next_line();
  if (header.substr(0, 4) != "wal ") {
    return Status::ParseError("WAL stream does not start with 'wal'");
  }
  uint64_t announced = 0;
  {
    const std::string_view rest = header.substr(4);
    const size_t space = rest.find(' ');
    if (space == std::string_view::npos ||
        !ParseUint64(rest.substr(0, space), &announced)) {
      return Status::ParseError("malformed 'wal' header line");
    }
  }

  uint64_t applied = 0;
  for (uint64_t i = 0; i < announced; ++i) {
    const std::string_view record_line = next_line();
    if (record_line.substr(0, 7) != "record ") {
      return Status::ParseError("expected a 'record' line in WAL stream");
    }
    const std::vector<std::string> fields =
        StrSplit(std::string(record_line.substr(7)), ' ');
    uint64_t index = 0;
    uint64_t post_fingerprint = 0;
    uint64_t num_updates = 0;
    if (fields.size() != 3 || !ParseUint64(fields[0], &index) ||
        !ParseHexFingerprint(fields[1], &post_fingerprint) ||
        !ParseUint64(fields[2], &num_updates) || num_updates == 0) {
      return Status::ParseError("malformed 'record' line in WAL stream");
    }
    std::string batch_text;
    for (uint64_t u = 0; u < num_updates; ++u) {
      const std::string_view update_line = next_line();
      if (update_line.empty()) {
        return Status::ParseError("WAL record truncated mid-batch");
      }
      batch_text.append(update_line);
      batch_text.push_back('\n');
    }
    const uint64_t local = updater_.stats().wal_records;
    if (index < local) continue;  // already applied (restart overlap)
    if (index > local) {
      // The primary's stream skipped ahead of this replica — e.g. a
      // compaction reset the primary's WAL. Re-seed the replica from the
      // compacted index instead of guessing.
      return Status::InvalidArgument(
          StrFormat("WAL stream gap: primary shipped record %llu but this "
                    "replica has only %llu",
                    static_cast<unsigned long long>(index),
                    static_cast<unsigned long long>(local)));
    }
    auto updates = ParseEdgeUpdates(batch_text);
    if (!updates.ok()) return updates.status();
    OIPSIM_RETURN_IF_ERROR(
        updater_.ApplyReplicated(*updates, post_fingerprint));
    ++applied;
  }
  const std::string_view trailer = next_line();
  if (trailer != "end") {
    return Status::ParseError("WAL stream not terminated by 'end'");
  }
  if (applied > 0) engine_.InvalidateCache();
  return applied;
}

void WalTailer::PollLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    const uint64_t from = updater_.stats().wal_records;
    auto client =
        LoopbackHttpClient::Connect(options_.source_port, options_.timeout_ms);
    Result<HttpClientResponse> response =
        client.ok() ? client->Get(StrFormat(
                          "/v1/wal?from=%llu",
                          static_cast<unsigned long long>(from)))
                    : Result<HttpClientResponse>(client.status());
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.polls;
      if (!response.ok() || response->status != 200) ++stats_.poll_errors;
    }
    if (response.ok() && response->status == 200) {
      auto applied = ApplyStream(response->body);
      std::lock_guard<std::mutex> lock(stats_mutex_);
      if (applied.ok()) {
        stats_.records_applied += *applied;
      } else {
        // Divergence or a stream gap is permanent: halt instead of
        // retrying into the same wall, and keep the reason visible.
        stats_.halted = true;
        stats_.last_error = applied.status().ToString();
        break;
      }
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.poll_interval_ms));
  }
}

}  // namespace simrank
