#include "simrank/cluster/router.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <utility>

#include "simrank/common/build_info.h"
#include "simrank/common/json_writer.h"
#include "simrank/common/memory_tracker.h"
#include "simrank/common/simd.h"
#include "simrank/common/string_util.h"
#include "simrank/graph/graph_io.h"
#include "simrank/index/segment_reader.h"
#include "simrank/server/server.h"

#if defined(__unix__) || defined(__APPLE__)
#define OIPSIM_ROUTER_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>
#endif

namespace simrank {
namespace {

std::string ErrorBody(std::string_view code, std::string_view message) {
  JsonWriter json;
  json.BeginObject()
      .Key("error")
      .BeginObject()
      .Key("code")
      .String(code)
      .Key("message")
      .String(message)
      .EndObject()
      .EndObject();
  return json.str();
}

bool ParseVertexParam(const HttpRequest& request, std::string_view name,
                      uint32_t n, VertexId* out, std::string* error) {
  const std::string* value = request.FindParam(name);
  uint64_t parsed = 0;
  if (value == nullptr || !ParseUint64(*value, &parsed)) {
    *error = StrFormat("missing or malformed ?%.*s= parameter",
                       static_cast<int>(name.size()), name.data());
    return false;
  }
  if (parsed >= n) {
    *error = StrFormat("vertex %llu out of range (plan covers %u vertices)",
                       static_cast<unsigned long long>(parsed), n);
    return false;
  }
  *out = static_cast<VertexId>(parsed);
  return true;
}

/// Parses a 16-hex-digit fingerprint header value.
bool ParseHexFingerprint(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 16);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = static_cast<uint64_t>(value);
  return true;
}

/// Prefixes a Prometheus label block with shard/role labels, e.g.
/// `{endpoint="pair"}` + shard 1 primary ->
/// `{shard="1",role="primary",endpoint="pair"}`.
std::string InjectShardLabels(const std::string& labels, uint32_t shard_id,
                              const char* role) {
  const std::string injected =
      StrFormat("shard=\"%u\",role=\"%s\"", shard_id, role);
  if (labels.empty()) return "{" + injected + "}";
  return "{" + injected + "," + labels.substr(1);
}

#if OIPSIM_ROUTER_HAVE_SOCKETS
bool SendAll(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}
#endif

}  // namespace

Status RouterOptions::Validate() const {
  if (bind_address.empty()) {
    return Status::InvalidArgument("router bind address must not be empty");
  }
  OIPSIM_RETURN_IF_ERROR(plan.Validate());
  if (shards.size() != plan.shards.size()) {
    return Status::InvalidArgument(
        StrFormat("plan has %zu shards but %zu shard endpoints were given",
                  plan.shards.size(), shards.size()));
  }
  for (size_t i = 0; i < shards.size(); ++i) {
    if (shards[i].shard_id != i) {
      return Status::InvalidArgument(
          StrFormat("shard endpoints must be declared in id order; "
                    "position %zu declares shard %u",
                    i, shards[i].shard_id));
    }
    if (shards[i].primary_port == 0) {
      return Status::InvalidArgument(
          StrFormat("shard %zu has no primary port", i));
    }
  }
  if (timeout_ms == 0) {
    return Status::InvalidArgument("--timeout-ms must be positive");
  }
  if (scrape_interval_ms > 0 && scrape_timeout_ms == 0) {
    return Status::InvalidArgument(
        "--scrape-timeout-ms must be positive when fleet scraping is on");
  }
  if (metrics_history_window_s > 0 && metrics_history_interval_ms == 0) {
    return Status::InvalidArgument(
        "--metrics-history-interval-ms must be positive");
  }
  if (!profile_log_path.empty()) {
    if (profile_log_hz == 0 || profile_log_hz > CpuProfiler::kMaxHz) {
      return Status::InvalidArgument(
          StrFormat("--profile-log-hz=%u is not in [1, %u]", profile_log_hz,
                    CpuProfiler::kMaxHz));
    }
    if (profile_log_period_s == 0) {
      return Status::InvalidArgument(
          "--profile-log-period must be positive");
    }
  }
  return Status::OK();
}

std::vector<ScoredVertex> MergeTopK(
    const std::vector<std::vector<ScoredVertex>>& parts, uint32_t k) {
  std::vector<ScoredVertex> merged;
  size_t total = 0;
  for (const auto& part : parts) total += part.size();
  merged.reserve(total);
  for (const auto& part : parts) {
    merged.insert(merged.end(), part.begin(), part.end());
  }
  std::sort(merged.begin(), merged.end(), ScoredVertexBefore);
  if (merged.size() > k) merged.resize(k);
  return merged;
}

/// A mutex-guarded stack of keep-alive connections to one port. Acquire
/// pops an idle connection or dials a new one; Release returns it after a
/// clean exchange. Connections that saw a transport error are simply not
/// returned — the next Acquire dials fresh.
class SimRankRouter::ClientPool {
 public:
  ClientPool(uint16_t port, uint32_t timeout_ms)
      : port_(port), timeout_ms_(timeout_ms) {}

  uint16_t port() const { return port_; }

  Result<LoopbackHttpClient> Acquire() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!idle_.empty()) {
        LoopbackHttpClient client = std::move(idle_.back());
        idle_.pop_back();
        return client;
      }
    }
    return LoopbackHttpClient::Connect(port_, timeout_ms_);
  }

  void Release(LoopbackHttpClient client) {
    std::lock_guard<std::mutex> lock(mutex_);
    idle_.push_back(std::move(client));
  }

 private:
  const uint16_t port_;
  const uint32_t timeout_ms_;
  std::mutex mutex_;
  std::vector<LoopbackHttpClient> idle_;
};

SimRankRouter::SimRankRouter(RouterOptions options)
    : options_(std::move(options)) {}

SimRankRouter::~SimRankRouter() { Shutdown(); }

RouterStats SimRankRouter::stats() const {
  RouterStats stats;
  stats.requests_total = stat_requests_total_.load(std::memory_order_relaxed);
  stats.requests_pair = stat_requests_pair_.load(std::memory_order_relaxed);
  stats.requests_single_source =
      stat_requests_single_source_.load(std::memory_order_relaxed);
  stats.requests_topk = stat_requests_topk_.load(std::memory_order_relaxed);
  stats.requests_batch_pair =
      stat_requests_batch_pair_.load(std::memory_order_relaxed);
  stats.requests_update =
      stat_requests_update_.load(std::memory_order_relaxed);
  stats.requests_stats = stat_requests_stats_.load(std::memory_order_relaxed);
  stats.requests_healthz =
      stat_requests_healthz_.load(std::memory_order_relaxed);
  stats.requests_metrics =
      stat_requests_metrics_.load(std::memory_order_relaxed);
  stats.responses_2xx = stat_responses_2xx_.load(std::memory_order_relaxed);
  stats.responses_4xx = stat_responses_4xx_.load(std::memory_order_relaxed);
  stats.responses_5xx = stat_responses_5xx_.load(std::memory_order_relaxed);
  stats.failovers = stat_failovers_.load(std::memory_order_relaxed);
  stats.conflicts_retried =
      stat_conflicts_retried_.load(std::memory_order_relaxed);
  stats.shard_errors = stat_shard_errors_.load(std::memory_order_relaxed);
  stats.traced_requests =
      stat_traced_requests_.load(std::memory_order_relaxed);
  stats.requests_cluster_health =
      stat_requests_cluster_health_.load(std::memory_order_relaxed);
  stats.requests_debug_profile =
      stat_requests_debug_profile_.load(std::memory_order_relaxed);
  stats.requests_debug_timeseries =
      stat_requests_debug_timeseries_.load(std::memory_order_relaxed);
  stats.scrape_rounds = stat_scrape_rounds_.load(std::memory_order_relaxed);
  stats.scrape_failures =
      stat_scrape_failures_.load(std::memory_order_relaxed);
  return stats;
}

void SimRankRouter::CountResponse(int status) {
  if (status >= 200 && status < 300) {
    stat_responses_2xx_.fetch_add(1, std::memory_order_relaxed);
  } else if (status >= 400 && status < 500) {
    stat_responses_4xx_.fetch_add(1, std::memory_order_relaxed);
  } else if (status >= 500) {
    stat_responses_5xx_.fetch_add(1, std::memory_order_relaxed);
  }
}

#if OIPSIM_ROUTER_HAVE_SOCKETS

Status SimRankRouter::Bind() {
  OIPSIM_RETURN_IF_ERROR(options_.Validate());
  {
    std::lock_guard<std::mutex> lock(pools_mutex_);
    pools_.clear();
    for (const RouterShard& shard : options_.shards) {
      pools_.push_back(std::make_unique<ClientPool>(shard.primary_port,
                                                    options_.timeout_ms));
      if (shard.replica_port != 0) {
        pools_.push_back(std::make_unique<ClientPool>(shard.replica_port,
                                                      options_.timeout_ms));
      }
    }
  }
  {
    // One scrape target per fleet process; the vector never resizes after
    // Bind, so the scrape thread updates entries in place.
    std::lock_guard<std::mutex> lock(targets_mutex_);
    targets_.clear();
    for (const RouterShard& shard : options_.shards) {
      TargetState primary;
      primary.shard_id = shard.shard_id;
      primary.port = shard.primary_port;
      targets_.push_back(std::move(primary));
      if (shard.replica_port != 0) {
        TargetState replica;
        replica.shard_id = shard.shard_id;
        replica.replica = true;
        replica.port = shard.replica_port;
        targets_.push_back(std::move(replica));
      }
    }
  }
  if (options_.metrics_history_window_s > 0 && metrics_history_ == nullptr) {
    MetricsHistory::Options history_options;
    history_options.window_seconds = options_.metrics_history_window_s;
    history_options.interval_ms = options_.metrics_history_interval_ms;
    metrics_history_ = std::make_unique<MetricsHistory>(history_options);
  }
  if (!options_.profile_log_path.empty() && profile_logger_ == nullptr) {
    ProfileLogger::Options logger_options;
    logger_options.path = options_.profile_log_path;
    logger_options.frequency_hz = options_.profile_log_hz;
    logger_options.period_seconds = options_.profile_log_period_s;
    // A slice of each period, matching the server: full duty would hold
    // the singleton profiler and starve on-demand sessions.
    logger_options.duty_cycle = 0.1;
    auto logger = ProfileLogger::Start(logger_options);
    if (!logger.ok()) return logger.status();
    profile_logger_ = std::move(*logger);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument(
        StrFormat("cannot parse bind address '%s'",
                  options_.bind_address.c_str()));
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string message = StrFormat(
        "cannot bind %s:%u: %s", options_.bind_address.c_str(),
        options_.port, std::strerror(errno));
    ::close(fd);
    return Status::IoError(message);
  }
  if (::listen(fd, 128) != 0) {
    ::close(fd);
    return Status::IoError("listen() failed");
  }
  sockaddr_in bound = {};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    ::close(fd);
    return Status::IoError("getsockname() failed");
  }
  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);
  return Status::OK();
}

Status SimRankRouter::Start() {
  if (listen_fd_ < 0) {
    return Status::InvalidArgument("Start() requires a successful Bind()");
  }
  stop_.store(false, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  StartDiagnostics();
  return Status::OK();
}

void SimRankRouter::RequestStop() {
  stop_.store(true, std::memory_order_relaxed);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

void SimRankRouter::Shutdown() {
  StopDiagnostics();
  stop_.store(true, std::memory_order_relaxed);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    threads.swap(connection_threads_);
  }
  for (std::thread& thread : threads) {
    if (thread.joinable()) thread.join();
  }
}

void SimRankRouter::AcceptLoop() {
  ScopedProfiledThread profiled("router-accept");
  while (!stop_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by Shutdown, or a fatal error
    }
    const int enable = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    // A short receive timeout keeps idle keep-alive handlers polling the
    // stop flag instead of blocking in recv forever.
    timeval tv = {};
    tv.tv_usec = 200 * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    std::lock_guard<std::mutex> lock(threads_mutex_);
    connection_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void SimRankRouter::HandleConnection(int fd) {
  ScopedProfiledThread profiled("router-conn");
  std::string buffer;
  while (true) {
    HttpRequest request;
    const HttpParseStatus parsed =
        ParseHttpRequest(buffer, options_.http, &request);
    if (parsed.outcome == HttpParseStatus::kComplete) {
      stat_requests_total_.fetch_add(1, std::memory_order_relaxed);
      // Trace activation mirrors the single-node server: ?trace=1 splices
      // the merged trace into the JSON envelope, an X-Simrank-Trace header
      // returns it out-of-band in X-Simrank-Trace-Json (bodies stay
      // byte-identical). Either way the recorder is bound to this
      // connection thread for the whole routed request, and every shard
      // exchange carries the trace id so shard sub-traces come back as
      // children of the router trace.
      const std::string* trace_param = request.FindParam("trace");
      const bool trace_inline =
          trace_param != nullptr && *trace_param == "1";
      uint64_t trace_id = 0;
      bool trace_header = false;
      if (const std::string* header = request.FindHeader("x-simrank-trace");
          header != nullptr) {
        trace_header = ParseTraceId(*header, &trace_id);
      }
      const bool traced = trace_inline || trace_header;
      std::optional<TraceRecorder> recorder;
      if (traced) recorder.emplace(trace_id);
      RouterResponse response;
      {
        TraceBinding binding(traced ? &*recorder : nullptr);
        TraceScope root(TraceStage::kRequest, request.path);
        response = Route(request);
      }
      if (traced) {
        stat_traced_requests_.fetch_add(1, std::memory_order_relaxed);
        if (trace_inline && response.body.size() > 2 &&
            response.body.front() == '{' && response.body.back() == '}') {
          response.body.insert(response.body.size() - 1,
                               ",\"trace\":" + recorder->ToJson());
        }
        if (trace_header) {
          response.headers.emplace_back("X-Simrank-Trace-Json",
                                        recorder->ToJson());
        }
      }
      CountResponse(response.status);
      HttpResponseOptions response_options;
      response_options.keep_alive = request.keep_alive;
      response_options.content_type = response.content_type;
      response_options.extra_headers = std::move(response.headers);
      if (!SendAll(fd, BuildHttpResponse(response.status, response.body,
                                         response_options))) {
        break;
      }
      buffer.erase(0, parsed.consumed);
      if (!request.keep_alive) break;
      continue;
    }
    if (parsed.outcome == HttpParseStatus::kError) {
      HttpResponseOptions response_options;
      response_options.keep_alive = false;
      SendAll(fd, BuildHttpResponse(
                      parsed.error_status,
                      ErrorBody("BadRequest", parsed.error_message),
                      response_options));
      break;
    }
    if (stop_.load(std::memory_order_relaxed)) break;
    char chunk[4096];
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got > 0) {
      buffer.append(chunk, static_cast<size_t>(got));
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;  // receive timeout: re-check the stop flag
    }
    break;  // peer closed or hard error
  }
  ::close(fd);
}

Result<SimRankRouter::ShardReply> SimRankRouter::SendToPort(
    uint16_t port, bool post, const std::string& target,
    std::string_view body, uint64_t trace_id) {
  // The connection thread carries its recorder in TLS; fan-out threads
  // have none and pass the id explicitly instead.
  TraceRecorder* const recorder = CurrentTraceRecorder();
  uint64_t effective_trace = trace_id;
  if (effective_trace == 0 && recorder != nullptr) {
    effective_trace = recorder->trace_id();
  }
  std::vector<std::pair<std::string, std::string>> extra_headers;
  if (effective_trace != 0) {
    extra_headers.emplace_back("X-Simrank-Trace",
                               TraceIdToHex(effective_trace));
  }
  ClientPool* pool = nullptr;
  {
    std::lock_guard<std::mutex> lock(pools_mutex_);
    for (const auto& candidate : pools_) {
      if (candidate->port() == port) {
        pool = candidate.get();
        break;
      }
    }
  }
  if (pool == nullptr) {
    return Status::InvalidArgument(
        StrFormat("port %u is not a configured shard endpoint", port));
  }
  auto client = pool->Acquire();
  if (!client.ok()) {
    stat_shard_errors_.fetch_add(1, std::memory_order_relaxed);
    return client.status();
  }
  auto response =
      post ? client->Post(target, body, "application/octet-stream",
                          extra_headers)
           : client->Get(target, extra_headers);
  if (!response.ok()) {
    stat_shard_errors_.fetch_add(1, std::memory_order_relaxed);
    return response.status();  // the dead connection is dropped here
  }
  pool->Release(std::move(*client));
  ShardReply reply;
  reply.status = response->status;
  reply.body = std::move(response->body);
  const std::string* fingerprint =
      response->FindHeader("x-graph-fingerprint");
  const std::string* sequence = response->FindHeader("x-overlay-sequence");
  const std::string* epoch = response->FindHeader("x-plan-epoch");
  if (fingerprint != nullptr && sequence != nullptr && epoch != nullptr &&
      ParseHexFingerprint(*fingerprint, &reply.fingerprint) &&
      ParseUint64(*sequence, &reply.sequence) &&
      ParseUint64(*epoch, &reply.epoch)) {
    reply.have_versions = true;
  }
  if (effective_trace != 0) {
    if (const std::string* child =
            response->FindHeader("x-simrank-trace-json");
        child != nullptr) {
      reply.trace_json = *child;
    }
    if (recorder != nullptr) {
      recorder->Add(TraceCounter::kShardsContacted, 1);
      if (!reply.trace_json.empty()) {
        recorder->AddChildTrace(std::move(reply.trace_json));
        reply.trace_json.clear();
      }
    }
  }
  return reply;
}

Result<SimRankRouter::ShardReply> SimRankRouter::ReadFromShard(
    uint32_t shard_id, bool post, const std::string& target,
    std::string_view body, uint64_t trace_id) {
  const RouterShard& shard = options_.shards[shard_id];
  auto reply = SendToPort(shard.primary_port, post, target, body, trace_id);
  if (reply.ok() || shard.replica_port == 0) return reply;
  stat_failovers_.fetch_add(1, std::memory_order_relaxed);
  return SendToPort(shard.replica_port, post, target, body, trace_id);
}

Result<SimRankRouter::ShardReply> SimRankRouter::FetchRow(VertexId v) {
  const uint32_t owner = options_.plan.OwnerOf(v);
  TraceScope scope(TraceStage::kRowFetch, StrFormat("shard=%u", owner));
  return ReadFromShard(owner, /*post=*/false,
                       StrFormat("/internal/walks?v=%u", v),
                       std::string_view());
}

SimRankRouter::RouterResponse SimRankRouter::Unavailable(
    const std::string& message) {
  RouterResponse response;
  response.status = 503;
  response.body = ErrorBody("Unavailable", message);
  response.headers.emplace_back(
      "Retry-After", StrFormat("%u", options_.retry_after_seconds));
  return response;
}

bool SimRankRouter::ScorePair(VertexId a, VertexId b, double* score,
                              RouterResponse* error) {
  const uint32_t owner_a = options_.plan.OwnerOf(a);
  const uint32_t owner_b = options_.plan.OwnerOf(b);
  if (owner_a == owner_b) {
    TraceScope exchange(TraceStage::kShardExchange,
                        StrFormat("shard=%u", owner_a));
    auto reply = ReadFromShard(owner_a, /*post=*/false,
                               StrFormat("/v1/pair?a=%u&b=%u", a, b),
                               std::string_view());
    if (!reply.ok()) {
      *error = Unavailable(StrFormat("shard %u unreachable: %s", owner_a,
                                     reply.status().message().c_str()));
      return false;
    }
    if (reply->status != 200) {
      error->status = reply->status;
      error->body = std::move(reply->body);
      return false;
    }
    // The shard emits shortest-round-trip doubles; this parse is
    // bit-exact, so re-serializing reproduces the shard's text.
    *score = FindJsonNumber(reply->body, "score");
    return true;
  }

  for (uint32_t attempt = 0; attempt <= options_.retries; ++attempt) {
    auto row = FetchRow(a);
    if (!row.ok()) {
      *error = Unavailable(StrFormat("shard %u unreachable: %s", owner_a,
                                     row.status().message().c_str()));
      return false;
    }
    if (row->status != 200) {
      error->status = row->status;
      error->body = std::move(row->body);
      return false;
    }
    if (!row->have_versions || row->epoch != options_.plan.epoch) {
      error->status = 500;
      error->body = ErrorBody(
          "Internal",
          StrFormat("shard %u is serving plan epoch %llu, router has %llu",
                    owner_a, static_cast<unsigned long long>(row->epoch),
                    static_cast<unsigned long long>(options_.plan.epoch)));
      return false;
    }
    Result<ShardReply> reply = Status::IoError("not attempted");
    {
      TraceScope exchange(TraceStage::kShardExchange,
                          StrFormat("shard=%u", owner_b));
      reply = ReadFromShard(
          owner_b, /*post=*/true,
          StrFormat("/internal/pair?b=%u&seq=%llu", b,
                    static_cast<unsigned long long>(row->sequence)),
          row->body);
    }
    if (!reply.ok()) {
      *error = Unavailable(StrFormat("shard %u unreachable: %s", owner_b,
                                     reply.status().message().c_str()));
      return false;
    }
    if (reply->status == 409) {
      stat_conflicts_retried_.fetch_add(1, std::memory_order_relaxed);
      TraceAdd(TraceCounter::kConflictRetries, 1);
      continue;  // an update landed between row fetch and scoring
    }
    if (reply->status != 200) {
      error->status = reply->status;
      error->body = std::move(reply->body);
      return false;
    }
    if (reply->body.size() != sizeof(double)) {
      error->status = 500;
      error->body = ErrorBody(
          "Internal", StrFormat("shard %u returned a %zu-byte pair score",
                                owner_b, reply->body.size()));
      return false;
    }
    std::memcpy(score, reply->body.data(), sizeof(double));
    return true;
  }
  *error = Unavailable(
      "overlay sequence kept moving during the cross-shard exchange; "
      "retry after the update burst settles");
  return false;
}

SimRankRouter::RouterResponse SimRankRouter::HandlePair(
    const HttpRequest& request) {
  RouterResponse response;
  VertexId a = 0;
  VertexId b = 0;
  std::string error;
  if (!ParseVertexParam(request, "a", options_.plan.n, &a, &error) ||
      !ParseVertexParam(request, "b", options_.plan.n, &b, &error)) {
    response.status = 400;
    response.body = ErrorBody("InvalidArgument", error);
    return response;
  }
  double score = 0.0;
  if (!ScorePair(a, b, &score, &response)) return response;
  JsonWriter json;
  json.BeginObject()
      .Key("a")
      .Uint(a)
      .Key("b")
      .Uint(b)
      .Key("score")
      .Double(score)
      .EndObject();
  response.status = 200;
  response.body = json.str();
  return response;
}

SimRankRouter::RouterResponse SimRankRouter::HandleSingleSource(
    const HttpRequest& request) {
  RouterResponse response;
  VertexId v = 0;
  std::string error;
  if (!ParseVertexParam(request, "v", options_.plan.n, &v, &error)) {
    response.status = 400;
    response.body = ErrorBody("InvalidArgument", error);
    return response;
  }
  const size_t num_shards = options_.shards.size();
  for (uint32_t attempt = 0; attempt <= options_.retries; ++attempt) {
    auto row = FetchRow(v);
    if (!row.ok()) {
      return Unavailable(StrFormat("row owner unreachable: %s",
                                   row.status().message().c_str()));
    }
    if (row->status != 200) {
      response.status = row->status;
      response.body = std::move(row->body);
      return response;
    }
    if (!row->have_versions || row->epoch != options_.plan.epoch) {
      response.status = 500;
      response.body =
          ErrorBody("Internal", "row owner is serving a different plan "
                                "epoch than this router");
      return response;
    }
    const std::string target =
        StrFormat("/internal/partial?v=%u&seq=%llu", v,
                  static_cast<unsigned long long>(row->sequence));
    std::vector<Result<ShardReply>> replies;
    replies.reserve(num_shards);
    for (size_t i = 0; i < num_shards; ++i) {
      replies.emplace_back(Status::IoError("not attempted"));
    }
    TraceRecorder* const recorder = CurrentTraceRecorder();
    const uint64_t fan_trace_id =
        recorder != nullptr ? recorder->trace_id() : 0;
    std::vector<uint64_t> fan_start(num_shards, 0);
    std::vector<uint64_t> fan_duration(num_shards, 0);
    {
      std::vector<std::thread> fan;
      fan.reserve(num_shards);
      for (size_t i = 0; i < num_shards; ++i) {
        fan.emplace_back([this, i, &target, &row, &replies, fan_trace_id,
                          &fan_start, &fan_duration] {
          // Fan-out threads have no thread-local recorder (recorders are
          // single-owner); they time the exchange locally and the
          // connection thread folds the spans in after the join.
          const uint64_t start = fan_trace_id != 0 ? TraceNowNanos() : 0;
          replies[i] = ReadFromShard(static_cast<uint32_t>(i), /*post=*/true,
                                     target, row->body, fan_trace_id);
          if (fan_trace_id != 0) {
            fan_start[i] = start;
            fan_duration[i] = TraceNowNanos() - start;
          }
        });
      }
      for (std::thread& thread : fan) thread.join();
    }
    if (recorder != nullptr) {
      for (size_t i = 0; i < num_shards; ++i) {
        recorder->AddCompletedSpan(TraceStage::kShardExchange, fan_start[i],
                                   fan_duration[i],
                                   StrFormat("shard=%zu", i));
        recorder->Add(TraceCounter::kShardsContacted, 1);
        if (replies[i].ok() && !(*replies[i]).trace_json.empty()) {
          recorder->AddChildTrace(std::move((*replies[i]).trace_json));
        }
      }
    }
    bool conflicted = false;
    uint64_t fingerprint = 0;
    bool have_fingerprint = false;
    std::string scores;
    for (size_t i = 0; i < num_shards; ++i) {
      if (!replies[i].ok()) {
        return Unavailable(StrFormat("shard %zu unreachable: %s", i,
                                     replies[i].status().message().c_str()));
      }
      ShardReply& reply = *replies[i];
      if (reply.status == 409) {
        conflicted = true;
        break;
      }
      if (reply.status != 200) {
        response.status = reply.status;
        response.body = std::move(reply.body);
        return response;
      }
      if (!reply.have_versions || reply.epoch != options_.plan.epoch) {
        response.status = 500;
        response.body = ErrorBody(
            "Internal", StrFormat("shard %zu is serving a different plan "
                                  "epoch than this router",
                                  i));
        return response;
      }
      if (have_fingerprint && reply.fingerprint != fingerprint) {
        response.status = 500;
        response.body = ErrorBody(
            "Internal",
            "shards report different graph fingerprints at the same "
            "overlay sequence; the cluster has diverged");
        return response;
      }
      fingerprint = reply.fingerprint;
      have_fingerprint = true;
      const ShardRange& range = options_.plan.shards[i];
      const size_t expected =
          static_cast<size_t>(range.end - range.begin) * sizeof(double);
      if (reply.body.size() != expected) {
        response.status = 500;
        response.body = ErrorBody(
            "Internal",
            StrFormat("shard %zu returned %zu score bytes, expected %zu", i,
                      reply.body.size(), expected));
        return response;
      }
      scores += reply.body;
    }
    if (conflicted) {
      stat_conflicts_retried_.fetch_add(1, std::memory_order_relaxed);
      TraceAdd(TraceCounter::kConflictRetries, 1);
      continue;
    }
    // The shard ranges partition [0, n) in order, so the concatenated
    // slices are the full single-node score row, bit for bit.
    TraceScope merge(TraceStage::kMerge);
    JsonWriter json;
    json.BeginObject().Key("v").Uint(v).Key("scores").BeginArray();
    const double* values = reinterpret_cast<const double*>(scores.data());
    const size_t count = scores.size() / sizeof(double);
    for (size_t i = 0; i < count; ++i) json.Double(values[i]);
    json.EndArray().EndObject();
    response.status = 200;
    response.body = json.str();
    return response;
  }
  return Unavailable(
      "overlay sequence kept moving during the fan-out; retry after the "
      "update burst settles");
}

SimRankRouter::RouterResponse SimRankRouter::HandleTopK(
    const HttpRequest& request) {
  RouterResponse response;
  VertexId v = 0;
  std::string error;
  if (!ParseVertexParam(request, "v", options_.plan.n, &v, &error)) {
    response.status = 400;
    response.body = ErrorBody("InvalidArgument", error);
    return response;
  }
  uint64_t k = 10;
  if (const std::string* value = request.FindParam("k");
      value != nullptr && (!ParseUint64(*value, &k) || k == 0)) {
    response.status = 400;
    response.body =
        ErrorBody("InvalidArgument", "?k= must be a positive integer");
    return response;
  }
  const size_t num_shards = options_.shards.size();
  for (uint32_t attempt = 0; attempt <= options_.retries; ++attempt) {
    auto row = FetchRow(v);
    if (!row.ok()) {
      return Unavailable(StrFormat("row owner unreachable: %s",
                                   row.status().message().c_str()));
    }
    if (row->status != 200) {
      response.status = row->status;
      response.body = std::move(row->body);
      return response;
    }
    if (!row->have_versions || row->epoch != options_.plan.epoch) {
      response.status = 500;
      response.body =
          ErrorBody("Internal", "row owner is serving a different plan "
                                "epoch than this router");
      return response;
    }
    const std::string target = StrFormat(
        "/internal/topk?v=%u&k=%llu&seq=%llu", v,
        static_cast<unsigned long long>(k),
        static_cast<unsigned long long>(row->sequence));
    std::vector<Result<ShardReply>> replies;
    replies.reserve(num_shards);
    for (size_t i = 0; i < num_shards; ++i) {
      replies.emplace_back(Status::IoError("not attempted"));
    }
    TraceRecorder* const recorder = CurrentTraceRecorder();
    const uint64_t fan_trace_id =
        recorder != nullptr ? recorder->trace_id() : 0;
    std::vector<uint64_t> fan_start(num_shards, 0);
    std::vector<uint64_t> fan_duration(num_shards, 0);
    {
      std::vector<std::thread> fan;
      fan.reserve(num_shards);
      for (size_t i = 0; i < num_shards; ++i) {
        fan.emplace_back([this, i, &target, &row, &replies, fan_trace_id,
                          &fan_start, &fan_duration] {
          // Fan-out threads have no thread-local recorder (recorders are
          // single-owner); they time the exchange locally and the
          // connection thread folds the spans in after the join.
          const uint64_t start = fan_trace_id != 0 ? TraceNowNanos() : 0;
          replies[i] = ReadFromShard(static_cast<uint32_t>(i), /*post=*/true,
                                     target, row->body, fan_trace_id);
          if (fan_trace_id != 0) {
            fan_start[i] = start;
            fan_duration[i] = TraceNowNanos() - start;
          }
        });
      }
      for (std::thread& thread : fan) thread.join();
    }
    if (recorder != nullptr) {
      for (size_t i = 0; i < num_shards; ++i) {
        recorder->AddCompletedSpan(TraceStage::kShardExchange, fan_start[i],
                                   fan_duration[i],
                                   StrFormat("shard=%zu", i));
        recorder->Add(TraceCounter::kShardsContacted, 1);
        if (replies[i].ok() && !(*replies[i]).trace_json.empty()) {
          recorder->AddChildTrace(std::move((*replies[i]).trace_json));
        }
      }
    }
    bool conflicted = false;
    std::vector<std::vector<ScoredVertex>> parts(num_shards);
    for (size_t i = 0; i < num_shards; ++i) {
      if (!replies[i].ok()) {
        return Unavailable(StrFormat("shard %zu unreachable: %s", i,
                                     replies[i].status().message().c_str()));
      }
      ShardReply& reply = *replies[i];
      if (reply.status == 409) {
        conflicted = true;
        break;
      }
      if (reply.status != 200) {
        response.status = reply.status;
        response.body = std::move(reply.body);
        return response;
      }
      if (!reply.have_versions || reply.epoch != options_.plan.epoch) {
        response.status = 500;
        response.body = ErrorBody(
            "Internal", StrFormat("shard %zu is serving a different plan "
                                  "epoch than this router",
                                  i));
        return response;
      }
      if (reply.body.size() % 12 != 0) {
        response.status = 500;
        response.body = ErrorBody(
            "Internal",
            StrFormat("shard %zu returned a %zu-byte top-k body (not a "
                      "multiple of 12)",
                      i, reply.body.size()));
        return response;
      }
      const size_t records = reply.body.size() / 12;
      parts[i].resize(records);
      for (size_t r = 0; r < records; ++r) {
        std::memcpy(&parts[i][r].vertex, reply.body.data() + r * 12,
                    sizeof(uint32_t));
        std::memcpy(&parts[i][r].score, reply.body.data() + r * 12 + 4,
                    sizeof(double));
      }
    }
    if (conflicted) {
      stat_conflicts_retried_.fetch_add(1, std::memory_order_relaxed);
      TraceAdd(TraceCounter::kConflictRetries, 1);
      continue;
    }
    TraceScope merge(TraceStage::kMerge);
    const std::vector<ScoredVertex> top =
        MergeTopK(parts, static_cast<uint32_t>(k));
    JsonWriter json;
    json.BeginObject()
        .Key("v")
        .Uint(v)
        .Key("k")
        .Uint(k)
        .Key("results")
        .BeginArray();
    for (const ScoredVertex& scored : top) {
      json.BeginObject()
          .Key("vertex")
          .Uint(scored.vertex)
          .Key("score")
          .Double(scored.score)
          .EndObject();
    }
    json.EndArray().EndObject();
    response.status = 200;
    response.body = json.str();
    return response;
  }
  return Unavailable(
      "overlay sequence kept moving during the fan-out; retry after the "
      "update burst settles");
}

SimRankRouter::RouterResponse SimRankRouter::HandleBatchPair(
    const HttpRequest& request) {
  RouterResponse response;
  auto pairs = ParsePairBatch(request.body, options_.max_batch_pairs);
  if (!pairs.ok()) {
    response.status = 400;
    response.body =
        ErrorBody("InvalidArgument", pairs.status().message());
    return response;
  }
  for (const auto& [a, b] : *pairs) {
    if (a >= options_.plan.n || b >= options_.plan.n) {
      response.status = 400;
      response.body = ErrorBody(
          "OutOfRange",
          StrFormat("pair (%u, %u) exceeds the plan's %u vertices", a, b,
                    options_.plan.n));
      return response;
    }
  }
  std::vector<double> scores;
  scores.reserve(pairs->size());
  for (const auto& [a, b] : *pairs) {
    double score = 0.0;
    if (!ScorePair(a, b, &score, &response)) return response;
    scores.push_back(score);
  }
  JsonWriter json;
  json.BeginObject()
      .Key("count")
      .Uint(scores.size())
      .Key("scores")
      .BeginArray();
  for (const double score : scores) json.Double(score);
  json.EndArray().EndObject();
  response.status = 200;
  response.body = json.str();
  return response;
}

SimRankRouter::RouterResponse SimRankRouter::HandleUpdate(
    const HttpRequest& request) {
  RouterResponse response;
  // Broadcast in shard order. Every shard appends the batch to its own WAL
  // before answering, so a 200 here means the update is durable everywhere.
  // A shard failing *after* an earlier one applied leaves the cluster
  // mid-batch — that is a loud 500, not a silent retry, because blind
  // re-submission would double-apply on the shards that already took it.
  struct ShardResult {
    double applied = 0;
    double sequence = 0;
    double patched_vertices = 0;
    double changed_slots = 0;
    double wal_records = 0;
    std::string fingerprint;
  };
  std::vector<ShardResult> results;
  for (size_t i = 0; i < options_.shards.size(); ++i) {
    auto reply = SendToPort(options_.shards[i].primary_port, /*post=*/true,
                            "/v1/update", request.body);
    if (!reply.ok()) {
      if (i == 0) {
        return Unavailable(
            StrFormat("shard 0 primary unreachable, nothing applied: %s",
                      reply.status().message().c_str()));
      }
      response.status = 500;
      response.body = ErrorBody(
          "Internal",
          StrFormat("shard %zu primary unreachable after %zu shard(s) "
                    "already applied the batch; the cluster needs "
                    "reconciliation before further updates",
                    i, i));
      return response;
    }
    if (reply->status != 200) {
      if (i == 0) {
        // Nothing has been applied anywhere; the first shard's verdict
        // (bad batch, overloaded, ...) is the client's answer.
        response.status = reply->status;
        response.body = std::move(reply->body);
        return response;
      }
      response.status = 500;
      response.body = ErrorBody(
          "Internal",
          StrFormat("shard %zu rejected the batch (HTTP %d) after %zu "
                    "shard(s) already applied it; the cluster needs "
                    "reconciliation before further updates",
                    i, reply->status, i));
      return response;
    }
    ShardResult result;
    result.applied = FindJsonNumber(reply->body, "applied");
    result.sequence = FindJsonNumber(reply->body, "sequence");
    result.patched_vertices =
        FindJsonNumber(reply->body, "patched_vertices");
    result.changed_slots = FindJsonNumber(reply->body, "changed_slots");
    result.wal_records = FindJsonNumber(reply->body, "wal_records");
    const std::string needle = "\"graph_fingerprint\":\"";
    const size_t at = reply->body.find(needle);
    if (at != std::string::npos) {
      result.fingerprint = reply->body.substr(at + needle.size(), 16);
    }
    results.push_back(std::move(result));
  }
  for (size_t i = 1; i < results.size(); ++i) {
    if (results[i].applied != results[0].applied ||
        results[i].sequence != results[0].sequence ||
        results[i].wal_records != results[0].wal_records ||
        results[i].fingerprint != results[0].fingerprint) {
      response.status = 500;
      response.body = ErrorBody(
          "Internal",
          StrFormat("shard %zu applied the batch but reports a different "
                    "sequence/fingerprint than shard 0; the cluster has "
                    "diverged",
                    i));
      return response;
    }
  }
  // patched_vertices / changed_slots are per-shard work and sum across the
  // cluster; applied / sequence / fingerprint / wal_records must agree.
  double patched_vertices = 0;
  double changed_slots = 0;
  for (const ShardResult& result : results) {
    patched_vertices += result.patched_vertices;
    changed_slots += result.changed_slots;
  }
  JsonWriter json;
  json.BeginObject()
      .Key("applied")
      .Uint(static_cast<uint64_t>(results[0].applied))
      .Key("sequence")
      .Uint(static_cast<uint64_t>(results[0].sequence))
      .Key("patched_vertices")
      .Uint(static_cast<uint64_t>(patched_vertices))
      .Key("changed_slots")
      .Uint(static_cast<uint64_t>(changed_slots))
      .Key("graph_fingerprint")
      .String(results[0].fingerprint)
      .Key("wal_records")
      .Uint(static_cast<uint64_t>(results[0].wal_records))
      .EndObject();
  response.status = 200;
  response.body = json.str();
  return response;
}

SimRankRouter::RouterResponse SimRankRouter::BuildStats() {
  const RouterStats stats = this->stats();
  JsonWriter json;
  json.BeginObject();
  json.Key("role").String("router");
  json.Key("plan_epoch").Uint(options_.plan.epoch);
  json.Key("plan_shards").Uint(options_.plan.shards.size());
  json.Key("n").Uint(options_.plan.n);
  json.Key("graph_fingerprint")
      .String(FormatFingerprint(options_.plan.graph_fingerprint));
  json.Key("uptime_seconds").Double(UptimeSeconds());
  const BuildInfo& build = GetBuildInfo();
  json.Key("build_info").BeginObject();
  json.Key("version").String(build.git_describe);
  json.Key("compiler").String(build.compiler);
  json.Key("build_type").String(build.build_type);
  json.Key("cxx_standard").String(build.cxx_standard);
  json.Key("simd").String(SimdLevelName(ActiveSimdLevel()));
  json.Key("io_uring_compiled").Bool(SegmentReader::BuildSupportsIoUring());
  json.Key("io_uring_enabled").Bool(SegmentReader::IoUringEnabled());
  json.EndObject();
  json.Key("requests").BeginObject();
  json.Key("total").Uint(stats.requests_total);
  json.Key("pair").Uint(stats.requests_pair);
  json.Key("single_source").Uint(stats.requests_single_source);
  json.Key("topk").Uint(stats.requests_topk);
  json.Key("batch_pair").Uint(stats.requests_batch_pair);
  json.Key("update").Uint(stats.requests_update);
  json.Key("stats").Uint(stats.requests_stats);
  json.Key("healthz").Uint(stats.requests_healthz);
  json.Key("metrics").Uint(stats.requests_metrics);
  json.Key("cluster_health").Uint(stats.requests_cluster_health);
  json.Key("debug_profile").Uint(stats.requests_debug_profile);
  json.Key("debug_timeseries").Uint(stats.requests_debug_timeseries);
  json.EndObject();
  json.Key("responses").BeginObject();
  json.Key("2xx").Uint(stats.responses_2xx);
  json.Key("4xx").Uint(stats.responses_4xx);
  json.Key("5xx").Uint(stats.responses_5xx);
  json.EndObject();
  json.Key("cluster").BeginObject();
  json.Key("failovers").Uint(stats.failovers);
  json.Key("conflicts_retried").Uint(stats.conflicts_retried);
  json.Key("shard_errors").Uint(stats.shard_errors);
  json.Key("scrape_rounds").Uint(stats.scrape_rounds);
  json.Key("scrape_failures").Uint(stats.scrape_failures);
  json.EndObject();
  json.Key("trace").BeginObject();
  json.Key("traced_requests").Uint(stats.traced_requests);
  json.EndObject();
  json.EndObject();
  RouterResponse response;
  response.status = 200;
  response.body = json.str();
  return response;
}

SimRankRouter::RouterResponse SimRankRouter::BuildMetrics() {
  const RouterStats stats = this->stats();
  std::string out;
  auto type = [&out](const char* name, const char* kind) {
    out += StrFormat("# TYPE %s %s\n", name, kind);
  };
  auto counter = [&out](const char* name, const char* labels,
                        uint64_t value) {
    out += StrFormat("%s%s %llu\n", name, labels,
                     static_cast<unsigned long long>(value));
  };
  type("simrank_router_requests_total", "counter");
  counter("simrank_router_requests_total", "{endpoint=\"pair\"}",
          stats.requests_pair);
  counter("simrank_router_requests_total", "{endpoint=\"single_source\"}",
          stats.requests_single_source);
  counter("simrank_router_requests_total", "{endpoint=\"topk\"}",
          stats.requests_topk);
  counter("simrank_router_requests_total", "{endpoint=\"batch_pair\"}",
          stats.requests_batch_pair);
  counter("simrank_router_requests_total", "{endpoint=\"update\"}",
          stats.requests_update);
  counter("simrank_router_requests_total", "{endpoint=\"stats\"}",
          stats.requests_stats);
  counter("simrank_router_requests_total", "{endpoint=\"healthz\"}",
          stats.requests_healthz);
  counter("simrank_router_requests_total", "{endpoint=\"metrics\"}",
          stats.requests_metrics);
  type("simrank_router_responses_total", "counter");
  counter("simrank_router_responses_total", "{class=\"2xx\"}",
          stats.responses_2xx);
  counter("simrank_router_responses_total", "{class=\"4xx\"}",
          stats.responses_4xx);
  counter("simrank_router_responses_total", "{class=\"5xx\"}",
          stats.responses_5xx);
  type("simrank_router_failovers_total", "counter");
  counter("simrank_router_failovers_total", "", stats.failovers);
  type("simrank_router_conflicts_total", "counter");
  counter("simrank_router_conflicts_total", "", stats.conflicts_retried);
  type("simrank_router_shard_errors_total", "counter");
  counter("simrank_router_shard_errors_total", "", stats.shard_errors);
  type("simrank_router_traced_requests_total", "counter");
  counter("simrank_router_traced_requests_total", "",
          stats.traced_requests);
  type("simrank_router_plan_epoch", "gauge");
  counter("simrank_router_plan_epoch", "", options_.plan.epoch);
  type("simrank_router_shards", "gauge");
  counter("simrank_router_shards", "", options_.plan.shards.size());

  const BuildInfo& build = GetBuildInfo();
  type("simrank_build_info", "gauge");
  out += StrFormat(
      "simrank_build_info{version=\"%s\",compiler=\"%s\",build_type=\"%s\","
      "simd=\"%s\",io_uring=\"%s\",role=\"router\"} 1\n",
      build.git_describe, build.compiler, build.build_type,
      SimdLevelName(ActiveSimdLevel()),
      SegmentReader::IoUringEnabled() ? "true" : "false");
  type("simrank_router_uptime_seconds", "gauge");
  out += StrFormat("simrank_router_uptime_seconds %g\n", UptimeSeconds());
  {
    ProcessMemoryStats memory;
    if (ReadProcessMemoryStats(&memory)) {
      type("simrank_router_resident_bytes", "gauge");
      counter("simrank_router_resident_bytes", "", memory.resident_bytes);
    }
  }

  if (options_.scrape_interval_ms > 0) {
    const RouterStats stats_now = this->stats();
    type("simrank_fleet_scrape_rounds_total", "counter");
    counter("simrank_fleet_scrape_rounds_total", "",
            stats_now.scrape_rounds);
    type("simrank_fleet_scrape_failures_total", "counter");
    counter("simrank_fleet_scrape_failures_total", "",
            stats_now.scrape_failures);

    const std::vector<TargetState> targets = SnapshotTargets();
    const uint64_t now_s = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    type("simrank_fleet_target_healthy", "gauge");
    for (const TargetState& target : targets) {
      out += StrFormat(
          "simrank_fleet_target_healthy{shard=\"%u\",role=\"%s\"} %d\n",
          target.shard_id, target.replica ? "replica" : "primary",
          target.healthy ? 1 : 0);
    }
    type("simrank_fleet_scrape_age_seconds", "gauge");
    for (const TargetState& target : targets) {
      const uint64_t age = target.last_success_unix_s == 0
                               ? 0
                               : (now_s >= target.last_success_unix_s
                                      ? now_s - target.last_success_unix_s
                                      : 0);
      out += StrFormat(
          "simrank_fleet_scrape_age_seconds{shard=\"%u\",role=\"%s\"} "
          "%llu\n",
          target.shard_id, target.replica ? "replica" : "primary",
          static_cast<unsigned long long>(age));
    }

    // Fleet aggregation: every family each target exports, re-emitted
    // verbatim with shard/role labels injected so one scrape of the
    // router sees the whole cluster. TYPE lines are merged per family
    // (a family may appear on many targets but is declared once).
    std::map<std::string, std::pair<std::string, std::string>> merged;
    for (const TargetState& target : targets) {
      if (target.metrics_text.empty()) continue;
      const char* role = target.replica ? "replica" : "primary";
      for (const PromFamily& family :
           ParsePrometheusText(target.metrics_text)) {
        auto& slot = merged[family.name];
        if (slot.first.empty()) slot.first = family.type;
        for (const PromSample& sample : family.samples) {
          slot.second += StrFormat(
              "%s%s %.17g\n", sample.name.c_str(),
              InjectShardLabels(sample.labels, target.shard_id, role)
                  .c_str(),
              sample.value);
        }
      }
    }
    for (const auto& [name, family] : merged) {
      out += StrFormat("# TYPE %s %s\n", name.c_str(),
                       family.first.c_str());
      out += family.second;
    }
  }

  RouterResponse response;
  response.status = 200;
  response.content_type = "text/plain; version=0.0.4";
  response.body = std::move(out);
  return response;
}

std::vector<SimRankRouter::TargetState> SimRankRouter::SnapshotTargets()
    const {
  std::lock_guard<std::mutex> lock(targets_mutex_);
  return targets_;
}

void SimRankRouter::ScrapeOnce() {
  const uint64_t now_s = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  size_t count = 0;
  {
    std::lock_guard<std::mutex> lock(targets_mutex_);
    count = targets_.size();
  }
  for (size_t i = 0; i < count; ++i) {
    uint16_t port = 0;
    {
      std::lock_guard<std::mutex> lock(targets_mutex_);
      port = targets_[i].port;
    }
    // Dedicated short-timeout connections, never the query pools: a dead
    // shard must cost the scraper one scrape_timeout_ms, not poison a
    // pooled keep-alive connection a query would pick up next.
    std::string text;
    std::string error;
    auto client =
        LoopbackHttpClient::Connect(port, options_.scrape_timeout_ms);
    if (!client.ok()) {
      error = client.status().message();
    } else {
      auto response = client->Get("/metrics");
      if (!response.ok()) {
        error = response.status().message();
      } else if (response->status != 200) {
        error = StrFormat("/metrics answered HTTP %d", response->status);
      } else {
        text = std::move(response->body);
      }
    }
    double overlay_sequence = 0;
    double wal_records = 0;
    double loop_lag_seconds = 0;
    double uptime_seconds = 0;
    double resident_bytes = 0;
    if (error.empty()) {
      for (const PromFamily& family : ParsePrometheusText(text)) {
        for (const PromSample& sample : family.samples) {
          if (sample.name == "simrank_overlay_sequence_current") {
            overlay_sequence = sample.value;
          } else if (sample.name == "simrank_wal_records") {
            wal_records = sample.value;
          } else if (sample.name == "simrank_loop_lag_seconds") {
            loop_lag_seconds = sample.value;
          } else if (sample.name == "simrank_uptime_seconds") {
            uptime_seconds = sample.value;
          } else if (sample.name == "simrank_resident_bytes") {
            resident_bytes = sample.value;
          }
        }
      }
    } else {
      stat_scrape_failures_.fetch_add(1, std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> lock(targets_mutex_);
    TargetState& target = targets_[i];
    target.last_attempt_unix_s = now_s;
    if (error.empty()) {
      target.healthy = true;
      target.consecutive_failures = 0;
      target.error.clear();
      target.last_success_unix_s = now_s;
      target.overlay_sequence = overlay_sequence;
      target.wal_records = wal_records;
      target.loop_lag_seconds = loop_lag_seconds;
      target.uptime_seconds = uptime_seconds;
      target.resident_bytes = resident_bytes;
      target.metrics_text = std::move(text);
    } else {
      // Unhealthy from the very first failed scrape: a killed shard is
      // reflected within one scrape interval.
      target.healthy = false;
      ++target.consecutive_failures;
      target.error = std::move(error);
      target.metrics_text.clear();
    }
  }
}

void SimRankRouter::ScrapeLoop() {
  ScopedProfiledThread profiled("fleet-scrape");
  const auto interval =
      std::chrono::milliseconds(options_.scrape_interval_ms);
  while (!scrape_stop_.load(std::memory_order_acquire)) {
    ScrapeOnce();
    stat_scrape_rounds_.fetch_add(1, std::memory_order_relaxed);
    const auto next = std::chrono::steady_clock::now() + interval;
    // Short slices keep Shutdown prompt at long scrape intervals.
    while (!scrape_stop_.load(std::memory_order_acquire) &&
           std::chrono::steady_clock::now() < next) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
}

void SimRankRouter::StartDiagnostics() {
  if (options_.scrape_interval_ms > 0 &&
      scrape_stop_.load(std::memory_order_acquire)) {
    scrape_stop_.store(false, std::memory_order_release);
    scrape_thread_ = std::thread([this] { ScrapeLoop(); });
  }
  if (metrics_history_ != nullptr && metrics_sampler_ == nullptr) {
    metrics_sampler_ = std::make_unique<MetricsSampler>(
        metrics_history_.get(), [this] { return BuildMetrics().body; });
  }
  if (metrics_sampler_ != nullptr) metrics_sampler_->Start();
}

void SimRankRouter::StopDiagnostics() {
  scrape_stop_.store(true, std::memory_order_release);
  if (scrape_thread_.joinable()) scrape_thread_.join();
  if (metrics_sampler_ != nullptr) metrics_sampler_->Stop();
  if (profile_logger_ != nullptr) profile_logger_->Stop();
}

SimRankRouter::RouterResponse SimRankRouter::BuildClusterHealth() {
  const std::vector<TargetState> targets = SnapshotTargets();
  const uint64_t now_s = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  JsonWriter json;
  json.BeginObject();
  json.Key("plan_epoch").Uint(options_.plan.epoch);
  json.Key("plan_shards").Uint(options_.plan.shards.size());
  json.Key("scraping").Bool(options_.scrape_interval_ms > 0);
  json.Key("scrape_interval_ms").Uint(options_.scrape_interval_ms);
  json.Key("scrape_rounds")
      .Uint(stat_scrape_rounds_.load(std::memory_order_relaxed));
  bool all_healthy = options_.scrape_interval_ms > 0;
  auto emit_target = [&](const TargetState& target, const char* key,
                         bool have_lag, double wal_lag) {
    json.Key(key).BeginObject();
    json.Key("port").Uint(target.port);
    json.Key("role").String(target.replica ? "replica" : "primary");
    json.Key("healthy").Bool(target.healthy);
    json.Key("consecutive_failures").Uint(target.consecutive_failures);
    if (!target.error.empty()) json.Key("error").String(target.error);
    if (target.last_success_unix_s > 0) {
      json.Key("last_scrape_age_seconds")
          .Uint(now_s >= target.last_success_unix_s
                    ? now_s - target.last_success_unix_s
                    : 0);
    }
    json.Key("overlay_sequence")
        .Uint(static_cast<uint64_t>(target.overlay_sequence));
    json.Key("wal_records").Uint(static_cast<uint64_t>(target.wal_records));
    if (have_lag) json.Key("wal_lag_records").Double(wal_lag);
    json.Key("loop_lag_seconds").Double(target.loop_lag_seconds);
    json.Key("uptime_seconds").Double(target.uptime_seconds);
    json.Key("resident_bytes")
        .Uint(static_cast<uint64_t>(target.resident_bytes));
    json.EndObject();
  };
  json.Key("shards").BeginArray();
  for (const RouterShard& shard : options_.shards) {
    const TargetState* primary = nullptr;
    const TargetState* replica = nullptr;
    for (const TargetState& target : targets) {
      if (target.shard_id != shard.shard_id) continue;
      (target.replica ? replica : primary) = &target;
    }
    json.BeginObject();
    json.Key("shard_id").Uint(shard.shard_id);
    const ShardRange& range = options_.plan.shards[shard.shard_id];
    json.Key("vertex_begin").Uint(range.begin);
    json.Key("vertex_end").Uint(range.end);
    if (primary != nullptr) {
      emit_target(*primary, "primary", /*have_lag=*/false, 0);
      if (!primary->healthy) all_healthy = false;
    }
    if (replica != nullptr) {
      // WAL shipping lag: records the primary has durably appended that
      // the replica has not yet applied. Meaningful only when both
      // scrapes are fresh.
      const bool have_lag = primary != nullptr && primary->healthy &&
                            replica->healthy;
      const double lag =
          have_lag ? primary->wal_records - replica->wal_records : 0;
      emit_target(*replica, "replica", have_lag, lag < 0 ? 0 : lag);
      if (!replica->healthy) all_healthy = false;
    }
    json.EndObject();
  }
  json.EndArray();
  json.Key("healthy").Bool(all_healthy);
  json.EndObject();
  RouterResponse response;
  response.status = 200;
  response.body = json.str();
  return response;
}

SimRankRouter::RouterResponse SimRankRouter::HandleProfile(
    const HttpRequest& request) {
  RouterResponse response;
  double seconds = 2.0;
  if (const std::string* raw = request.FindParam("seconds")) {
    if (!ParseDouble(*raw, &seconds) || !(seconds > 0.0) ||
        seconds > CpuProfiler::kMaxSeconds) {
      response.status = 400;
      response.body = ErrorBody(
          "InvalidArgument",
          StrFormat("parameter 'seconds' must be in (0, %g]",
                    CpuProfiler::kMaxSeconds));
      return response;
    }
  }
  uint64_t hz = CpuProfiler::kDefaultHz;
  if (const std::string* raw = request.FindParam("hz")) {
    if (!ParseUint64(*raw, &hz) || hz == 0 || hz > CpuProfiler::kMaxHz) {
      response.status = 400;
      response.body =
          ErrorBody("InvalidArgument",
                    StrFormat("parameter 'hz' must be in [1, %u]",
                              CpuProfiler::kMaxHz));
      return response;
    }
  }
  bool expected = false;
  if (!profile_busy_.compare_exchange_strong(expected, true)) {
    response.status = 409;
    response.body = ErrorBody(
        "Busy", "a profiling session is already running; retry shortly");
    return response;
  }
  // Blocking is fine here: each router connection has its own thread, so
  // the sleep stalls only this client.
  auto profiled =
      CpuProfiler::Instance().ProfileFor(seconds, static_cast<uint32_t>(hz));
  profile_busy_.store(false, std::memory_order_release);
  if (!profiled.ok()) {
    response.status = 409;
    response.body = ErrorBody("Busy", profiled.status().message());
    return response;
  }
  const ProfileReport& report = *profiled;
  response.status = 200;
  response.content_type = "text/plain";
  response.body = StrFormat(
      "# profile duration_seconds=%.3f frequency_hz=%u samples=%llu "
      "dropped=%llu threads=%u\n",
      report.duration_seconds, report.frequency_hz,
      static_cast<unsigned long long>(report.total_samples),
      static_cast<unsigned long long>(report.dropped_samples),
      report.armed_threads);
  response.body += report.collapsed;
  return response;
}

SimRankRouter::RouterResponse SimRankRouter::HandleTimeseries(
    const HttpRequest& request) {
  RouterResponse response;
  if (metrics_history_ == nullptr) {
    response.status = 503;
    response.body = ErrorBody(
        "Unavailable", "metrics history is disabled (--metrics-history=0)");
    return response;
  }
  const std::string* metric = request.FindParam("metric");
  if (metric == nullptr) {
    response.status = 200;
    response.body = metrics_history_->ListJson();
    return response;
  }
  uint64_t window = 0;  // 0 = the full configured window
  const std::string* raw_window = request.FindParam("window");
  if (raw_window != nullptr && !ParseUint64(*raw_window, &window)) {
    response.status = 400;
    response.body = ErrorBody("InvalidArgument",
                              "parameter 'window' must be a span in seconds");
    return response;
  }
  response.status = 200;
  response.body = metrics_history_->QueryJson(*metric, window);
  return response;
}

SimRankRouter::RouterResponse SimRankRouter::Route(
    const HttpRequest& request) {
  RouterResponse response;
  const bool is_get = request.method == "GET";
  const bool is_post = request.method == "POST";
  if (request.path == "/healthz") {
    stat_requests_healthz_.fetch_add(1, std::memory_order_relaxed);
    response.status = 200;
    response.body = "{\"status\":\"ok\"}";
    return response;
  }
  if (request.path == "/v1/stats") {
    stat_requests_stats_.fetch_add(1, std::memory_order_relaxed);
    return BuildStats();
  }
  if (request.path == "/metrics") {
    stat_requests_metrics_.fetch_add(1, std::memory_order_relaxed);
    return BuildMetrics();
  }
  if (request.path == "/v1/cluster/health") {
    stat_requests_cluster_health_.fetch_add(1, std::memory_order_relaxed);
    if (!is_get) {
      response.status = 405;
      response.body = ErrorBody("MethodNotAllowed", "use GET");
      return response;
    }
    return BuildClusterHealth();
  }
  if (request.path == "/v1/debug/profile") {
    stat_requests_debug_profile_.fetch_add(1, std::memory_order_relaxed);
    if (!is_get) {
      response.status = 405;
      response.body = ErrorBody("MethodNotAllowed", "use GET");
      return response;
    }
    return HandleProfile(request);
  }
  if (request.path == "/v1/debug/timeseries") {
    stat_requests_debug_timeseries_.fetch_add(1, std::memory_order_relaxed);
    if (!is_get) {
      response.status = 405;
      response.body = ErrorBody("MethodNotAllowed", "use GET");
      return response;
    }
    return HandleTimeseries(request);
  }
  if (request.path == "/v1/pair" || request.path == "/v1/single_source" ||
      request.path == "/v1/topk") {
    if (!is_get) {
      response.status = 405;
      response.body = ErrorBody("MethodNotAllowed", "use GET");
      return response;
    }
    if (request.path == "/v1/pair") {
      stat_requests_pair_.fetch_add(1, std::memory_order_relaxed);
      return HandlePair(request);
    }
    if (request.path == "/v1/single_source") {
      stat_requests_single_source_.fetch_add(1, std::memory_order_relaxed);
      return HandleSingleSource(request);
    }
    stat_requests_topk_.fetch_add(1, std::memory_order_relaxed);
    return HandleTopK(request);
  }
  if (request.path == "/v1/batch_pair" || request.path == "/v1/update") {
    if (!is_post) {
      response.status = 405;
      response.body = ErrorBody("MethodNotAllowed", "use POST");
      return response;
    }
    if (request.path == "/v1/batch_pair") {
      stat_requests_batch_pair_.fetch_add(1, std::memory_order_relaxed);
      return HandleBatchPair(request);
    }
    stat_requests_update_.fetch_add(1, std::memory_order_relaxed);
    return HandleUpdate(request);
  }
  response.status = 404;
  response.body = ErrorBody(
      "NotFound", StrFormat("no route for %s", request.path.c_str()));
  return response;
}

#else  // !OIPSIM_ROUTER_HAVE_SOCKETS

Status SimRankRouter::Bind() {
  return Status::Unimplemented("SimRankRouter requires POSIX sockets");
}
Status SimRankRouter::Start() {
  return Status::Unimplemented("SimRankRouter requires POSIX sockets");
}
void SimRankRouter::RequestStop() {}
void SimRankRouter::Shutdown() {}
void SimRankRouter::AcceptLoop() {}
void SimRankRouter::HandleConnection(int) {}

#endif  // OIPSIM_ROUTER_HAVE_SOCKETS

}  // namespace simrank
