// Versioned vertex-range partition of one served graph: the shard plan.
//
// A plan assigns every vertex of [0, n) to exactly one shard by contiguous
// id range. It is bound to the graph it partitions through the structural
// fingerprint — a shard or router started against a plan for a different
// graph fails loudly instead of silently cross-wiring answers — and
// carries an epoch so a repartition is distinguishable from the plan it
// replaces (shards expose their epoch; the router cross-checks it on every
// internal response).
//
// The file format is line-oriented text, one declaration per line,
// '#' comments allowed:
//
//   simrank-shard-plan v1
//   epoch 1
//   graph_fingerprint 00c5a2f19e30bd74
//   n 10000
//   shards 2
//   shard 0 0 5000
//   shard 1 5000 10000
//
// `shard ID BEGIN END` covers [BEGIN, END). Shards must be declared in
// id order (0, 1, ...), non-empty, contiguous and covering [0, n)
// exactly; Parse and Validate reject anything else.
#ifndef OIPSIM_SIMRANK_CLUSTER_SHARD_PLAN_H_
#define OIPSIM_SIMRANK_CLUSTER_SHARD_PLAN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "simrank/common/status.h"
#include "simrank/graph/digraph.h"

namespace simrank {

/// One shard's contiguous vertex range [begin, end).
struct ShardRange {
  uint32_t shard_id = 0;
  VertexId begin = 0;
  VertexId end = 0;

  bool Contains(VertexId v) const { return v >= begin && v < end; }

  friend bool operator==(const ShardRange&, const ShardRange&) = default;
};

/// A complete, validated partition of [0, n).
struct ShardPlan {
  /// Monotone repartition counter; two plans for the same graph with
  /// different ranges must differ in epoch.
  uint64_t epoch = 1;
  /// GraphFingerprint of the graph this plan partitions.
  uint64_t graph_fingerprint = 0;
  uint32_t n = 0;
  /// In shard-id order (== range order; Validate enforces both).
  std::vector<ShardRange> shards;

  /// Structural check: ids 0..k-1 in order, ranges non-empty, contiguous,
  /// covering [0, n) exactly, and n > 0.
  Status Validate() const;

  /// The shard owning `v`. The plan must be Validate()-clean and v < n;
  /// binary search over the contiguous ranges.
  uint32_t OwnerOf(VertexId v) const;

  /// Renders the canonical file text (byte-deterministic).
  std::string Format() const;

  /// Parses and validates plan text / a plan file.
  static Result<ShardPlan> Parse(std::string_view text);
  static Result<ShardPlan> LoadFile(const std::string& path);

  /// Writes Format() to `path` (truncating).
  Status SaveFile(const std::string& path) const;

  /// An even contiguous split of [0, n) into `num_shards` ranges: the
  /// first n % num_shards shards get one extra vertex. Requires
  /// 0 < num_shards <= n.
  static Result<ShardPlan> EvenSplit(uint32_t n, uint64_t graph_fingerprint,
                                     uint32_t num_shards, uint64_t epoch = 1);

  friend bool operator==(const ShardPlan&, const ShardPlan&) = default;
};

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_CLUSTER_SHARD_PLAN_H_
