// Scatter-gather query router for a sharded SimRank cluster.
//
// The router owns the shard plan and is the only process clients talk to.
// It speaks the same public /v1/* dialect as a single-node simrank_server
// and answers bitwise-identically to one — the merge is exact, not
// approximate:
//
//   - pair(a, b) with both endpoints on one shard is forwarded verbatim;
//     a cross-shard pair fetches a's walk row from its owner
//     (/internal/walks) and has b's owner score it (/internal/pair), the
//     double crossing the wire in native binary.
//   - single_source(v) fetches v's row once, fans it to every shard
//     (/internal/partial), and concatenates the returned per-range score
//     slices in shard order — the shard slices are disjoint and
//     reproduce the single-node row exactly.
//   - topk(v, k) fans the row the same way (/internal/topk), then merges
//     the per-shard top-k candidate lists under ScoredVertexBefore — the
//     identical (score desc, vertex asc) total order the single-node
//     engine sorts with, so cross-shard ties break the same way.
//   - batch_pair routes each pair as above and re-emits the scores; the
//     shortest-round-trip double text a shard emitted parses back
//     bit-exact, so even the forwarded path re-serializes identically.
//   - update is broadcast to every primary in shard order; each shard
//     appends the batch to its own WAL before answering, so an acked
//     update is durable on all shards. Divergent per-shard results
//     (sequence, fingerprint) fail the request loudly.
//
// Consistency across the fan-out is pinned by overlay sequence: the row
// fetch reports the owner's sequence, every fanned request carries it,
// and a shard whose sequence has moved answers 409 — the router re-fetches
// and retries, then degrades to 503 + Retry-After. A plan-epoch mismatch
// in any shard response is a deployment error and fails loudly with 500.
//
// Reads fail over: when a shard's primary is unreachable (connect error or
// timeout), the router retries the same read against the shard's replica,
// counting the failover in /v1/stats and /metrics. Writes never fail over
// (replicas reject them with 403; they catch up by tailing the primary's
// WAL stream).
#ifndef OIPSIM_SIMRANK_CLUSTER_ROUTER_H_
#define OIPSIM_SIMRANK_CLUSTER_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "simrank/cluster/shard_plan.h"
#include "simrank/common/macros.h"
#include "simrank/common/status.h"
#include "simrank/extra/topk.h"
#include "simrank/obs/metrics_history.h"
#include "simrank/obs/profiler.h"
#include "simrank/obs/trace.h"
#include "simrank/server/http.h"
#include "simrank/server/http_client.h"

namespace simrank {

/// Where one shard of the plan is served: a primary and an optional
/// replica (0 = none), both on loopback.
struct RouterShard {
  uint32_t shard_id = 0;
  uint16_t primary_port = 0;
  uint16_t replica_port = 0;
};

struct RouterOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port (see SimRankRouter::port()).
  uint16_t port = 0;
  /// The plan this router serves; every response's X-Plan-Epoch is checked
  /// against plan.epoch.
  ShardPlan plan;
  /// One entry per plan shard, in shard-id order.
  std::vector<RouterShard> shards;
  /// Per-operation socket timeout on shard connections; bounds the damage
  /// of a dead shard to one timeout per attempt.
  uint32_t timeout_ms = 2000;
  /// Extra attempts after an overlay-sequence conflict (409) before the
  /// router degrades to 503.
  uint32_t retries = 1;
  /// Retry-After value on 503 responses.
  uint32_t retry_after_seconds = 1;
  uint32_t max_batch_pairs = 4096;
  HttpLimits http;

  /// Fleet scraping: every interval the router GETs each shard's (and
  /// replica's) /metrics with its own short timeout, feeding
  /// /v1/cluster/health and the fleet-aggregated section of the router's
  /// /metrics. 0 disables the scrape thread.
  uint32_t scrape_interval_ms = 1000;
  uint32_t scrape_timeout_ms = 500;

  /// In-process history of the router's own (aggregated) metrics, served
  /// at /v1/debug/timeseries. 0 disables it.
  uint32_t metrics_history_window_s = 900;
  uint32_t metrics_history_interval_ms = 1000;

  /// Continuous background profiling (JSONL flight recorder), same
  /// semantics as the server's --profile-log.
  std::string profile_log_path;
  uint32_t profile_log_hz = 19;
  uint32_t profile_log_period_s = 60;

  Status Validate() const;
};

/// Router-side counters, readable concurrently with serving.
struct RouterStats {
  uint64_t requests_total = 0;
  uint64_t requests_pair = 0;
  uint64_t requests_single_source = 0;
  uint64_t requests_topk = 0;
  uint64_t requests_batch_pair = 0;
  uint64_t requests_update = 0;
  uint64_t requests_stats = 0;
  uint64_t requests_healthz = 0;
  uint64_t requests_metrics = 0;
  uint64_t responses_2xx = 0;
  uint64_t responses_4xx = 0;
  uint64_t responses_5xx = 0;
  /// Reads answered by a replica after the primary failed.
  uint64_t failovers = 0;
  /// Fan-out rounds re-run after a 409 overlay-sequence conflict.
  uint64_t conflicts_retried = 0;
  /// Transport errors talking to shards (before any failover).
  uint64_t shard_errors = 0;
  /// Requests served with a live trace recorder (?trace=1 or an
  /// X-Simrank-Trace header).
  uint64_t traced_requests = 0;
  uint64_t requests_cluster_health = 0;
  uint64_t requests_debug_profile = 0;
  uint64_t requests_debug_timeseries = 0;
  /// Fleet scrape rounds completed / individual target scrapes that
  /// failed (connect error, timeout, non-200).
  uint64_t scrape_rounds = 0;
  uint64_t scrape_failures = 0;
};

/// Merges per-shard top-k candidate lists into the global top-k under
/// ScoredVertexBefore — the exact comparator (score desc, vertex asc)
/// TopKFromRow sorts with, so the merged ranking equals the single-node
/// ranking whenever each part contains its range's top-min(k, range) and
/// the parts' vertex sets are disjoint.
std::vector<ScoredVertex> MergeTopK(
    const std::vector<std::vector<ScoredVertex>>& parts, uint32_t k);

/// The router process: a blocking thread-per-connection HTTP frontend over
/// a keep-alive client pool to the shards. Bind() then Start(); Shutdown()
/// stops accepting, joins every connection thread and closes the pools.
class SimRankRouter {
 public:
  explicit SimRankRouter(RouterOptions options);
  ~SimRankRouter();

  OIPSIM_DISALLOW_COPY_AND_ASSIGN(SimRankRouter);

  /// Validates options and binds + listens on bind_address:port.
  Status Bind();

  /// Spawns the accept loop. Requires a successful Bind().
  Status Start();

  /// Async-signal-safe stop request: sets the stop flag and shuts the
  /// listener down so the accept loop wakes. Follow with Shutdown() from
  /// ordinary thread context to join.
  void RequestStop();

  /// Stops accepting, wakes and joins all threads. Idempotent.
  void Shutdown();

  /// The bound port (resolves port 0 after Bind()).
  uint16_t port() const { return port_; }

  const RouterOptions& options() const { return options_; }

  RouterStats stats() const;

 private:
  /// One routed response: status, body, plus any extra headers
  /// (Retry-After on 503). Bodies are JSON unless content_type says
  /// otherwise (/metrics, /v1/debug/profile).
  struct RouterResponse {
    int status = 500;
    std::string body;
    std::vector<std::pair<std::string, std::string>> headers;
    std::string content_type = "application/json";
  };

  /// One shard reply with its parsed version headers.
  struct ShardReply {
    int status = 0;
    std::string body;
    uint64_t sequence = 0;
    uint64_t fingerprint = 0;
    uint64_t epoch = 0;
    bool have_versions = false;
    /// The shard's X-Simrank-Trace-Json sub-trace, when the exchange was
    /// issued with a trace id from a fan-out thread (the connection
    /// thread's own exchanges attach it to the recorder directly).
    std::string trace_json;
  };

  /// A keep-alive connection pool per target port.
  class ClientPool;

  void AcceptLoop();
  void HandleConnection(int fd);
  RouterResponse Route(const HttpRequest& request);
  void CountResponse(int status);

  /// One request against a fixed port through the pool. Transport errors
  /// return a non-ok status (the connection is dropped, not pooled).
  /// When a trace is active — `trace_id` non-zero (fan-out threads, which
  /// have no thread-local recorder) or a recorder bound to the calling
  /// thread — the request carries X-Simrank-Trace and the shard's
  /// X-Simrank-Trace-Json reply is attached to the recorder (connection
  /// thread) or returned in ShardReply::trace_json (fan-out thread).
  Result<ShardReply> SendToPort(uint16_t port, bool post,
                                const std::string& target,
                                std::string_view body,
                                uint64_t trace_id = 0);

  /// A read against shard `shard_id`: primary first, replica on transport
  /// failure (counted as a failover).
  Result<ShardReply> ReadFromShard(uint32_t shard_id, bool post,
                                   const std::string& target,
                                   std::string_view body,
                                   uint64_t trace_id = 0);

  RouterResponse HandlePair(const HttpRequest& request);
  RouterResponse HandleSingleSource(const HttpRequest& request);
  RouterResponse HandleTopK(const HttpRequest& request);
  RouterResponse HandleBatchPair(const HttpRequest& request);
  RouterResponse HandleUpdate(const HttpRequest& request);
  RouterResponse BuildStats();
  RouterResponse BuildMetrics();
  RouterResponse BuildClusterHealth();
  RouterResponse HandleProfile(const HttpRequest& request);
  RouterResponse HandleTimeseries(const HttpRequest& request);

  /// The latest scrape of one fleet target (a shard primary or replica).
  struct TargetState {
    uint32_t shard_id = 0;
    bool replica = false;
    uint16_t port = 0;
    /// False until the first successful scrape, and again from the first
    /// failed one — a killed shard shows unhealthy within one interval.
    bool healthy = false;
    uint64_t last_attempt_unix_s = 0;
    uint64_t last_success_unix_s = 0;
    uint64_t consecutive_failures = 0;
    std::string error;  // last failure, "" while healthy
    /// Gauges lifted from the scraped exposition for the health summary.
    double overlay_sequence = 0;
    double wal_records = 0;
    double loop_lag_seconds = 0;
    double uptime_seconds = 0;
    double resident_bytes = 0;
    /// The raw scraped text, re-emitted (with shard/role labels injected)
    /// in the fleet-aggregated section of the router's /metrics.
    std::string metrics_text;
  };

  void ScrapeLoop();
  void ScrapeOnce();
  /// Copies the current per-target states (scrape-thread writes them
  /// under targets_mutex_).
  std::vector<TargetState> SnapshotTargets() const;
  void StartDiagnostics();
  void StopDiagnostics();

  /// Fetches v's walk row from its owner (with failover): 200 body is the
  /// binary row, and the reply's sequence pins the fan-out.
  Result<ShardReply> FetchRow(VertexId v);

  /// Scores one pair, cross-shard if needed. Returns the score through
  /// `*score`; a non-200 RouterResponse otherwise.
  bool ScorePair(VertexId a, VertexId b, double* score,
                 RouterResponse* error);

  RouterResponse Unavailable(const std::string& message);

  RouterOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  std::mutex threads_mutex_;
  std::vector<std::thread> connection_threads_;
  std::vector<std::unique_ptr<ClientPool>> pools_;  // indexed by port lookup
  std::mutex pools_mutex_;

  std::atomic<uint64_t> stat_requests_total_{0};
  std::atomic<uint64_t> stat_requests_pair_{0};
  std::atomic<uint64_t> stat_requests_single_source_{0};
  std::atomic<uint64_t> stat_requests_topk_{0};
  std::atomic<uint64_t> stat_requests_batch_pair_{0};
  std::atomic<uint64_t> stat_requests_update_{0};
  std::atomic<uint64_t> stat_requests_stats_{0};
  std::atomic<uint64_t> stat_requests_healthz_{0};
  std::atomic<uint64_t> stat_requests_metrics_{0};
  std::atomic<uint64_t> stat_responses_2xx_{0};
  std::atomic<uint64_t> stat_responses_4xx_{0};
  std::atomic<uint64_t> stat_responses_5xx_{0};
  std::atomic<uint64_t> stat_failovers_{0};
  std::atomic<uint64_t> stat_conflicts_retried_{0};
  std::atomic<uint64_t> stat_shard_errors_{0};
  std::atomic<uint64_t> stat_traced_requests_{0};
  std::atomic<uint64_t> stat_requests_cluster_health_{0};
  std::atomic<uint64_t> stat_requests_debug_profile_{0};
  std::atomic<uint64_t> stat_requests_debug_timeseries_{0};
  std::atomic<uint64_t> stat_scrape_rounds_{0};
  std::atomic<uint64_t> stat_scrape_failures_{0};

  mutable std::mutex targets_mutex_;
  std::vector<TargetState> targets_;
  std::atomic<bool> scrape_stop_{true};
  std::thread scrape_thread_;
  std::unique_ptr<MetricsHistory> metrics_history_;
  std::unique_ptr<MetricsSampler> metrics_sampler_;
  std::unique_ptr<ProfileLogger> profile_logger_;
  std::atomic<bool> profile_busy_{false};
};

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_CLUSTER_ROUTER_H_
