// Byte-deterministic extraction of per-shard index files from a full v2
// walk index.
//
// A shard index is a standard v2 file with the *global* vertex count and
// graph fingerprint; what makes it a shard is its walk rows: vertices
// inside the shard's range keep their full walk rows, vertices outside it
// are represented exactly like vertices whose walks die immediately (step
// 0 = the vertex itself, every later step dead). Three things follow:
//   - the shard's inverted index lists only in-range vertices, so a
//     single-source accumulation on the shard produces exactly the
//     in-range slice of the single-node row (bitwise — same buckets, same
//     ascending-vertex order, same arithmetic);
//   - the per-shard slices are disjoint, so a scatter-gather router can
//     concatenate/merge them without double counting;
//   - the shard index opens with every existing tool (same format, same
//     meta), and a WAL bound to the full index binds to every shard too.
// Splitting is pure decoding and re-encoding of integer tables, so the
// output bytes depend only on (input file, range, compression flag).
#ifndef OIPSIM_SIMRANK_CLUSTER_SHARD_SPLIT_H_
#define OIPSIM_SIMRANK_CLUSTER_SHARD_SPLIT_H_

#include <string>

#include "simrank/cluster/shard_plan.h"
#include "simrank/common/status.h"
#include "simrank/index/walk_store.h"

namespace simrank {

/// Writes the shard index for `range` of `store` to `out_path` (v2 format;
/// `compress` selects segment compression — match the source file's to
/// keep encodings uniform across the cluster). The store must cover
/// [0, n) with range a subrange of it.
Status WriteShardIndex(const WalkStore& store, const ShardRange& range,
                       const std::string& out_path, bool compress);

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_CLUSTER_SHARD_SPLIT_H_
