#include "simrank/cluster/shard_split.h"

#include <utility>
#include <vector>

#include "simrank/common/string_util.h"

namespace simrank {

Status WriteShardIndex(const WalkStore& store, const ShardRange& range,
                       const std::string& out_path, bool compress) {
  const WalkStoreMeta& meta = store.meta();
  const uint32_t n = meta.n;
  const uint32_t L = meta.walk_length;
  const uint32_t R = meta.num_fingerprints;
  if (range.end > n || range.begin >= range.end) {
    return Status::InvalidArgument(StrFormat(
        "shard range [%u, %u) is not a non-empty subrange of [0, %u)",
        range.begin, range.end, n));
  }

  // Flat (r, t)-major table of the shard: in-range vertices scatter their
  // decoded rows, everything else gets the dead-from-step-1 row that a
  // from-scratch build produces for a vertex with no in-neighbours.
  const size_t words = store.WalkWords();
  std::vector<uint32_t> walks(words * n, WalkStore::kDeadWalk);
  for (uint32_t r = 0; r < R; ++r) {
    const size_t step0 = static_cast<size_t>(r) * (L + 1) * n;
    for (VertexId v = 0; v < n; ++v) walks[step0 + v] = v;
  }
  std::vector<uint32_t> row(words);
  for (VertexId v = range.begin; v < range.end; ++v) {
    OIPSIM_RETURN_IF_ERROR(store.DecodeVertex(v, row.data()));
    for (size_t word = 0; word < words; ++word) {
      walks[word * n + v] = row[word];
    }
  }

  // Same meta (global n, global graph fingerprint): the shard stays
  // recognizably part of the one served graph, and the full index's WAL
  // identity binds to it unchanged.
  InMemoryWalkStore shard(meta, std::move(walks), /*num_threads=*/1);
  WalkStoreSaveOptions save;
  save.compress = compress;
  return SaveWalkStore(shard, out_path, save);
}

}  // namespace simrank
