// WAL-shipping replication: the replica side.
//
// A replica is an ordinary shard server started from the same shard index
// file as its primary, with updates disabled at the public surface (it
// answers 403 on /v1/update). The tailer is what keeps it current: a
// background thread that polls the primary's `GET /v1/wal?from=` stream —
// `from` is the replica's own WAL record count, so the poll position
// survives a replica restart for free — and applies each shipped record
// through IndexUpdater::ApplyReplicated.
//
// Safety comes from the fingerprint chain, not from the transport: every
// WAL record carries the post-batch graph fingerprint, and ApplyReplicated
// refuses a batch whose locally computed post-fingerprint differs. A
// replica that was started from the wrong index, or a primary whose WAL
// was reset under divergent state, stops replicating with a loud error
// instead of serving silently wrong walks. Records are also applied
// strictly in index order — a gap in the stream (e.g. the primary
// compacted and reset its WAL) halts the tailer rather than skipping.
#ifndef OIPSIM_SIMRANK_CLUSTER_WAL_TAILER_H_
#define OIPSIM_SIMRANK_CLUSTER_WAL_TAILER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "simrank/common/macros.h"
#include "simrank/common/status.h"
#include "simrank/index/index_updater.h"
#include "simrank/index/query_engine.h"

namespace simrank {

struct WalTailerOptions {
  /// Loopback port of the primary to tail.
  uint16_t source_port = 0;
  /// Poll interval between /v1/wal requests.
  uint32_t poll_interval_ms = 50;
  /// Per-operation socket timeout on the poll connection.
  uint32_t timeout_ms = 2000;
};

struct WalTailerStats {
  uint64_t polls = 0;
  /// Records fetched and applied through ApplyReplicated.
  uint64_t records_applied = 0;
  /// Failed polls (primary down) — transient; the tailer keeps polling.
  uint64_t poll_errors = 0;
  /// True once a non-transient error (fingerprint divergence, stream gap)
  /// has halted replication; last_error describes it.
  bool halted = false;
  std::string last_error;
};

/// Tails one primary's WAL into one replica's updater. Start() spawns the
/// poll thread; Stop() joins it. The engine and updater must outlive the
/// tailer.
class WalTailer {
 public:
  WalTailer(QueryEngine& engine, IndexUpdater& updater,
            const WalTailerOptions& options)
      : engine_(engine), updater_(updater), options_(options) {}

  ~WalTailer() { Stop(); }

  OIPSIM_DISALLOW_COPY_AND_ASSIGN(WalTailer);

  Status Start();

  /// Stops polling and joins. Idempotent.
  void Stop();

  WalTailerStats stats() const;

  /// Applies one fetched /v1/wal body (exposed for tests; Start()'s poll
  /// loop calls this). Returns the number of records applied, or the
  /// first non-transient error.
  Result<uint64_t> ApplyStream(std::string_view body);

 private:
  void PollLoop();

  QueryEngine& engine_;
  IndexUpdater& updater_;
  const WalTailerOptions options_;
  std::atomic<bool> stop_{true};
  std::thread thread_;

  mutable std::mutex stats_mutex_;
  WalTailerStats stats_;
};

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_CLUSTER_WAL_TAILER_H_
