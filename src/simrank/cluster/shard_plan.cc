#include "simrank/cluster/shard_plan.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "simrank/common/string_util.h"
#include "simrank/graph/graph_io.h"

namespace simrank {
namespace {

constexpr std::string_view kPlanMagicLine = "simrank-shard-plan v1";

/// Parses exactly 16 lower-case hex digits (FormatFingerprint's output).
bool ParseFingerprint(std::string_view text, uint64_t* out) {
  if (text.size() != 16) return false;
  uint64_t value = 0;
  for (const char c : text) {
    uint32_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint32_t>(c - 'a') + 10;
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  *out = value;
  return true;
}

}  // namespace

Status ShardPlan::Validate() const {
  if (n == 0) {
    return Status::InvalidArgument("shard plan covers an empty graph");
  }
  if (shards.empty()) {
    return Status::InvalidArgument("shard plan declares no shards");
  }
  VertexId expected_begin = 0;
  for (size_t i = 0; i < shards.size(); ++i) {
    const ShardRange& range = shards[i];
    if (range.shard_id != i) {
      return Status::InvalidArgument(StrFormat(
          "shard plan ids must be 0..%zu in order; declaration %zu has id "
          "%u",
          shards.size() - 1, i, range.shard_id));
    }
    if (range.begin != expected_begin) {
      return Status::InvalidArgument(StrFormat(
          "shard %u starts at %u, expected %u: ranges must be contiguous "
          "from 0",
          range.shard_id, range.begin, expected_begin));
    }
    if (range.end <= range.begin) {
      return Status::InvalidArgument(
          StrFormat("shard %u range [%u, %u) is empty", range.shard_id,
                    range.begin, range.end));
    }
    expected_begin = range.end;
  }
  if (expected_begin != n) {
    return Status::InvalidArgument(StrFormat(
        "shard ranges cover [0, %u) but the plan declares n=%u",
        expected_begin, n));
  }
  return Status::OK();
}

uint32_t ShardPlan::OwnerOf(VertexId v) const {
  OIPSIM_CHECK_MSG(v < n, "OwnerOf(%u) beyond the plan's n=%u", v, n);
  const auto it = std::upper_bound(
      shards.begin(), shards.end(), v,
      [](VertexId value, const ShardRange& range) {
        return value < range.end;
      });
  OIPSIM_CHECK(it != shards.end() && it->Contains(v));
  return it->shard_id;
}

std::string ShardPlan::Format() const {
  std::string out(kPlanMagicLine);
  out += '\n';
  out += StrFormat("epoch %llu\n", static_cast<unsigned long long>(epoch));
  out += StrFormat("graph_fingerprint %s\n",
                   FormatFingerprint(graph_fingerprint).c_str());
  out += StrFormat("n %u\n", n);
  out += StrFormat("shards %zu\n", shards.size());
  for (const ShardRange& range : shards) {
    out += StrFormat("shard %u %u %u\n", range.shard_id, range.begin,
                     range.end);
  }
  return out;
}

Result<ShardPlan> ShardPlan::Parse(std::string_view text) {
  ShardPlan plan;
  plan.epoch = 0;
  bool saw_magic = false;
  bool saw_epoch = false;
  bool saw_fingerprint = false;
  bool saw_n = false;
  uint64_t declared_shards = 0;
  bool saw_shards = false;
  size_t line_number = 0;
  for (const std::string& raw : StrSplit(text, '\n')) {
    ++line_number;
    const std::string_view line = StrTrim(raw);
    if (line.empty() || line[0] == '#') continue;
    auto malformed = [&](const char* what) {
      return Status::ParseError(StrFormat(
          "shard plan line %zu: %s: '%.*s'", line_number, what,
          static_cast<int>(line.size()), line.data()));
    };
    if (!saw_magic) {
      if (line != kPlanMagicLine) {
        return Status::ParseError(StrFormat(
            "not a shard plan: first line must be '%.*s'",
            static_cast<int>(kPlanMagicLine.size()), kPlanMagicLine.data()));
      }
      saw_magic = true;
      continue;
    }
    const std::vector<std::string> fields =
        StrSplit(std::string(line), ' ');
    if (fields[0] == "epoch" && fields.size() == 2) {
      if (!ParseUint64(fields[1], &plan.epoch) || plan.epoch == 0) {
        return malformed("epoch must be a positive integer");
      }
      saw_epoch = true;
    } else if (fields[0] == "graph_fingerprint" && fields.size() == 2) {
      if (!ParseFingerprint(fields[1], &plan.graph_fingerprint)) {
        return malformed("fingerprint must be 16 lower-case hex digits");
      }
      saw_fingerprint = true;
    } else if (fields[0] == "n" && fields.size() == 2) {
      uint64_t value = 0;
      if (!ParseUint64(fields[1], &value) || value == 0 ||
          value > UINT32_MAX) {
        return malformed("n must be a positive 32-bit integer");
      }
      plan.n = static_cast<uint32_t>(value);
      saw_n = true;
    } else if (fields[0] == "shards" && fields.size() == 2) {
      if (!ParseUint64(fields[1], &declared_shards)) {
        return malformed("shards must be an integer count");
      }
      saw_shards = true;
    } else if (fields[0] == "shard" && fields.size() == 4) {
      uint64_t id = 0, begin = 0, end = 0;
      if (!ParseUint64(fields[1], &id) || !ParseUint64(fields[2], &begin) ||
          !ParseUint64(fields[3], &end) || id > UINT32_MAX ||
          begin > UINT32_MAX || end > UINT32_MAX) {
        return malformed("expected 'shard ID BEGIN END'");
      }
      plan.shards.push_back(ShardRange{static_cast<uint32_t>(id),
                                       static_cast<VertexId>(begin),
                                       static_cast<VertexId>(end)});
    } else {
      return malformed("unknown declaration");
    }
  }
  if (!saw_magic) {
    return Status::ParseError("empty shard plan (missing magic line)");
  }
  if (!saw_epoch || !saw_fingerprint || !saw_n || !saw_shards) {
    return Status::ParseError(
        "shard plan must declare epoch, graph_fingerprint, n and shards");
  }
  if (declared_shards != plan.shards.size()) {
    return Status::ParseError(StrFormat(
        "shard plan declares %llu shards but lists %zu",
        static_cast<unsigned long long>(declared_shards),
        plan.shards.size()));
  }
  OIPSIM_RETURN_IF_ERROR(plan.Validate());
  return plan;
}

Result<ShardPlan> ShardPlan::LoadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open shard plan: " + path);
  }
  std::string text;
  char chunk[4096];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    text.append(chunk, got);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    return Status::IoError("read error on shard plan: " + path);
  }
  auto plan = Parse(text);
  if (!plan.ok()) {
    return Status(plan.status().code(),
                  path + ": " + plan.status().message());
  }
  return plan;
}

Status ShardPlan::SaveFile(const std::string& path) const {
  OIPSIM_RETURN_IF_ERROR(Validate());
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot write shard plan: " + path);
  }
  const std::string text = Format();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) {
    return Status::IoError("short write on shard plan: " + path);
  }
  return Status::OK();
}

Result<ShardPlan> ShardPlan::EvenSplit(uint32_t n,
                                       uint64_t graph_fingerprint,
                                       uint32_t num_shards, uint64_t epoch) {
  if (num_shards == 0 || num_shards > n) {
    return Status::InvalidArgument(StrFormat(
        "cannot split %u vertices into %u non-empty shards", n, num_shards));
  }
  ShardPlan plan;
  plan.epoch = epoch;
  plan.graph_fingerprint = graph_fingerprint;
  plan.n = n;
  const uint32_t quotient = n / num_shards;
  const uint32_t remainder = n % num_shards;
  VertexId begin = 0;
  for (uint32_t shard = 0; shard < num_shards; ++shard) {
    const VertexId end = begin + quotient + (shard < remainder ? 1 : 0);
    plan.shards.push_back(ShardRange{shard, begin, end});
    begin = end;
  }
  return plan;
}

}  // namespace simrank
