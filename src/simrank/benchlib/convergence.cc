#include "simrank/benchlib/convergence.h"

#include <cmath>
#include <utility>

#include "simrank/core/psum.h"
#include "simrank/linalg/dense_matrix.h"

namespace simrank::bench {

ConvergenceResult MeasureConventionalConvergence(const DiGraph& graph,
                                                 double damping, double eps,
                                                 uint32_t max_iterations) {
  const uint32_t n = graph.n();
  DenseMatrix current = DenseMatrix::Identity(n);
  DenseMatrix next(n, n);
  ConvergenceResult result;
  for (uint32_t k = 1; k <= max_iterations; ++k) {
    internal::PsumPropagate(graph, current, &next, damping,
                            /*pin_diagonal=*/true, /*sieve_threshold=*/0.0,
                            /*ops=*/nullptr);
    const double delta = DenseMatrix::MaxAbsDiff(current, next);
    std::swap(current, next);
    result.iterations = k;
    result.final_delta = delta;
    if (delta <= eps) return result;
  }
  result.truncated = true;
  return result;
}

ConvergenceResult MeasureDifferentialConvergence(const DiGraph& graph,
                                                 double damping, double eps,
                                                 uint32_t max_iterations) {
  const uint32_t n = graph.n();
  DenseMatrix t_current = DenseMatrix::Identity(n);
  DenseMatrix t_next(n, n);
  double coeff = std::exp(-damping);
  ConvergenceResult result;
  for (uint32_t k = 1; k <= max_iterations; ++k) {
    internal::PsumPropagate(graph, t_current, &t_next, /*scale=*/1.0,
                            /*pin_diagonal=*/false, /*sieve_threshold=*/0.0,
                            /*ops=*/nullptr);
    coeff *= damping / static_cast<double>(k);
    const double delta = coeff * t_next.MaxNorm();
    std::swap(t_current, t_next);
    result.iterations = k;
    result.final_delta = delta;
    if (delta <= eps) return result;
  }
  result.truncated = true;
  return result;
}

}  // namespace simrank::bench
