// Benchmark dataset registry — laptop-scale analogues of the paper's
// Fig. 5 datasets (see DESIGN.md §1 for the substitution rationale).
//
// Every dataset is generated deterministically at startup; the realised
// vertex/edge counts are printed by bench/fig5_datasets so EXPERIMENTS.md
// can report them next to the paper's.
#ifndef OIPSIM_SIMRANK_BENCHLIB_DATASETS_H_
#define OIPSIM_SIMRANK_BENCHLIB_DATASETS_H_

#include <string>
#include <vector>

#include "simrank/graph/digraph.h"

namespace simrank::bench {

/// A named benchmark graph.
struct Dataset {
  std::string name;
  std::string paper_counterpart;
  DiGraph graph;
};

/// WEBG — the BERKSTAN analogue (copying-model web graph, d̄ ≈ 11).
Dataset MakeWebGraph();

/// CITN — the PATENT analogue (time-ordered citation DAG, d̄ ≈ 4.4).
Dataset MakeCitationGraph();

/// COAUTH-D02..D11 — the four DBLP co-authorship snapshots, scaled ~1:10.
/// `snapshot` in [0, 4).
Dataset MakeCoauthorSnapshot(int snapshot);

/// All four snapshots in growth order.
std::vector<Dataset> AllCoauthorSnapshots();

/// SYN — R-MAT graph with n = 2^10 and the requested average degree
/// (Fig. 6c's density sweep).
Dataset MakeSynGraph(uint32_t avg_degree, uint64_t seed = 99);

}  // namespace simrank::bench

#endif  // OIPSIM_SIMRANK_BENCHLIB_DATASETS_H_
