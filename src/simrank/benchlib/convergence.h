// Empirical convergence measurement (Exp-3, Fig. 6e/6f): how many
// iterations each model actually needs before its scores stop moving by
// more than eps, as opposed to the a-priori bounds of Section IV.
#ifndef OIPSIM_SIMRANK_BENCHLIB_CONVERGENCE_H_
#define OIPSIM_SIMRANK_BENCHLIB_CONVERGENCE_H_

#include <cstdint>

#include "simrank/graph/digraph.h"

namespace simrank::bench {

struct ConvergenceResult {
  /// First iteration k at which the update delta dropped to <= eps.
  uint32_t iterations = 0;
  /// The max-norm delta at that iteration.
  double final_delta = 0.0;
  /// True if max_iterations was hit before reaching eps.
  bool truncated = false;
};

/// Iterates conventional SimRank (psum kernel) until
/// ||S_{k+1} - S_k||_max <= eps.
ConvergenceResult MeasureConventionalConvergence(const DiGraph& graph,
                                                 double damping, double eps,
                                                 uint32_t max_iterations);

/// Iterates the differential model until the Eq. 15 increment
/// ||e^{-C}·C^{k+1}/(k+1)!·T_{k+1}||_max <= eps.
ConvergenceResult MeasureDifferentialConvergence(const DiGraph& graph,
                                                 double damping, double eps,
                                                 uint32_t max_iterations);

}  // namespace simrank::bench

#endif  // OIPSIM_SIMRANK_BENCHLIB_CONVERGENCE_H_
