#include "simrank/benchlib/datasets.h"

#include "simrank/common/macros.h"
#include "simrank/common/string_util.h"
#include "simrank/gen/generators.h"

namespace simrank::bench {

Dataset MakeWebGraph() {
  gen::WebGraphParams params;
  params.n = 3000;
  // Steady-state in-degree ≈ out_degree / (1 - in_copy_prob * copy_prob);
  // these land at BERKSTAN's d ≈ 11 with the heavy template-page
  // structure (near-duplicate in-neighbour sets) of real web crawls.
  params.out_degree = 4;
  params.copy_prob = 0.85;
  params.in_copy_prob = 0.8;
  params.seed = 20130408;
  Result<DiGraph> graph = gen::WebGraph(params);
  OIPSIM_CHECK(graph.ok());
  return Dataset{"WEBG", "BERKSTAN (685K/7.6M, d=11.1)",
                 std::move(graph).value()};
}

Dataset MakeCitationGraph() {
  gen::CitationGraphParams params;
  params.n = 4000;
  // ~3 cited families with ~1.5 members each lands PATENT's d ≈ 4.4.
  params.refs_per_node = 3;
  params.pref_prob = 0.45;
  params.window = 250;
  params.seed = 19751219;
  Result<DiGraph> graph = gen::CitationGraph(params);
  OIPSIM_CHECK(graph.ok());
  return Dataset{"CITN", "PATENT (3.77M/16.5M, d=4.4)",
                 std::move(graph).value()};
}

Dataset MakeCoauthorSnapshot(int snapshot) {
  OIPSIM_CHECK(snapshot >= 0 && snapshot < 4);
  // Paper snapshot sizes: 5,982 / 9,342 / 13,736 / 19,371 — scaled ~1:10.
  static constexpr uint32_t kAuthors[4] = {598, 934, 1374, 1937};
  static const char* kNames[4] = {"COAUTH-d02", "COAUTH-d05", "COAUTH-d08",
                                  "COAUTH-d11"};
  static const char* kCounterparts[4] = {
      "DBLP D02 (5,982/16.0K, d=2.7)", "DBLP D05 (9,342/22.4K, d=2.4)",
      "DBLP D08 (13,736/37.7K, d=2.7)", "DBLP D11 (19,371/51.1K, d=2.6)"};
  gen::CoauthorGraphParams params;
  params.num_authors = kAuthors[snapshot];
  // ~0.62 papers per author with small communities, teams of 2-4 and a
  // strong stable-team tendency lands DBLP's d ≈ 2.4 with the repeated-
  // collaboration structure that makes neighbour sets shareable.
  params.num_papers = (kAuthors[snapshot] * 62) / 100;
  params.num_communities = std::max(4u, kAuthors[snapshot] / 10);
  params.max_authors_per_paper = 4;
  params.cross_community_prob = 0.15;
  params.repeat_team_prob = 0.7;
  params.seed = 2000 + static_cast<uint64_t>(snapshot) * 3;
  Result<DiGraph> graph = gen::CoauthorGraph(params);
  OIPSIM_CHECK(graph.ok());
  return Dataset{kNames[snapshot], kCounterparts[snapshot],
                 std::move(graph).value()};
}

std::vector<Dataset> AllCoauthorSnapshots() {
  std::vector<Dataset> snapshots;
  for (int s = 0; s < 4; ++s) snapshots.push_back(MakeCoauthorSnapshot(s));
  return snapshots;
}

Dataset MakeSynGraph(uint32_t avg_degree, uint64_t seed) {
  gen::Ssca2Params params;
  params.n = 1024;
  // Uniform clique sizes in [2, max]: the size-biased mean of (size - 1)
  // is ~(2 max - 1)/3, so max ≈ 1.5 d hits the requested average degree.
  params.max_clique_size = std::max(3u, (avg_degree * 3) / 2);
  params.inter_clique_ratio = 0.15;
  params.seed = seed;
  Result<DiGraph> graph = gen::Ssca2(params);
  OIPSIM_CHECK(graph.ok());
  return Dataset{StrFormat("SYN-d%u", avg_degree),
                 StrFormat("GTGraph SSCA2 300K, m=%uK", avg_degree * 300),
                 std::move(graph).value()};
}

}  // namespace simrank::bench
