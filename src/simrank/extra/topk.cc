#include "simrank/extra/topk.h"

#include <algorithm>

#include "simrank/common/macros.h"

namespace simrank {

std::vector<ScoredVertex> TopKFromRow(std::span<const double> row,
                                      VertexId query, uint32_t k,
                                      bool exclude_query) {
  const auto n = static_cast<uint32_t>(row.size());
  std::vector<ScoredVertex> all;
  all.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    if (exclude_query && v == query) continue;
    all.push_back(ScoredVertex{v, row[v]});
  }
  const size_t keep = std::min<size_t>(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<int64_t>(keep),
                    all.end(), ScoredVertexBefore);
  all.resize(keep);
  return all;
}

std::vector<ScoredVertex> TopKFromRowSlice(std::span<const double> slice,
                                           VertexId base, VertexId query,
                                           uint32_t k, bool exclude_query) {
  const auto count = static_cast<uint32_t>(slice.size());
  std::vector<ScoredVertex> all;
  all.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const VertexId v = base + i;
    if (exclude_query && v == query) continue;
    all.push_back(ScoredVertex{v, slice[i]});
  }
  const size_t keep = std::min<size_t>(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<int64_t>(keep),
                    all.end(), ScoredVertexBefore);
  all.resize(keep);
  return all;
}

std::vector<ScoredVertex> TopKSimilar(const DenseMatrix& scores,
                                      VertexId query, uint32_t k,
                                      bool exclude_query) {
  OIPSIM_CHECK_LT(query, scores.rows());
  return TopKFromRow({scores.Row(query), scores.cols()}, query, k,
                     exclude_query);
}

std::vector<VertexId> TopKIds(const DenseMatrix& scores, VertexId query,
                              uint32_t k, bool exclude_query) {
  std::vector<VertexId> ids;
  for (const ScoredVertex& sv : TopKSimilar(scores, query, k, exclude_query)) {
    ids.push_back(sv.vertex);
  }
  return ids;
}

}  // namespace simrank
