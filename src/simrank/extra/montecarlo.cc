#include "simrank/extra/montecarlo.h"

#include <cmath>

#include "simrank/common/macros.h"

namespace simrank {

namespace {

/// Deterministic per-(fingerprint, step, vertex) hash for coupled walks.
inline uint64_t CoupledHash(uint64_t seed, uint32_t r, uint32_t t,
                            uint32_t v) {
  uint64_t h = seed ^ (static_cast<uint64_t>(r) << 40) ^
               (static_cast<uint64_t>(t) << 20) ^ v;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

}  // namespace

MonteCarloSimRank::MonteCarloSimRank(const DiGraph& graph,
                                     const MonteCarloOptions& options)
    : options_(options), n_(graph.n()) {
  OIPSIM_CHECK_GT(options.num_fingerprints, 0u);
  OIPSIM_CHECK_GT(options.walk_length, 0u);
  walks_.resize(options.num_fingerprints);
  for (uint32_t r = 0; r < options.num_fingerprints; ++r) {
    auto& walk = walks_[r];
    walk.assign(static_cast<size_t>(options.walk_length + 1) * n_,
                UINT32_MAX);
    // Step 0: every walk sits at its start vertex.
    for (uint32_t v = 0; v < n_; ++v) walk[v] = v;
    for (uint32_t t = 1; t <= options.walk_length; ++t) {
      const size_t prev = static_cast<size_t>(t - 1) * n_;
      const size_t cur = static_cast<size_t>(t) * n_;
      for (uint32_t v = 0; v < n_; ++v) {
        const uint32_t at = walk[prev + v];
        if (at == UINT32_MAX) continue;
        auto in = graph.InNeighbors(at);
        if (in.empty()) continue;  // walk dies at a source vertex
        // The *coupling*: the choice depends on (r, t, at) only, so two
        // walks at the same vertex take the same step.
        walk[cur + v] =
            in[CoupledHash(options.seed, r, t, at) % in.size()];
      }
    }
  }
}

double MonteCarloSimRank::EstimatePair(VertexId a, VertexId b) const {
  OIPSIM_CHECK(a < n_ && b < n_);
  if (a == b) return 1.0;
  double sum = 0.0;
  for (const auto& walk : walks_) {
    for (uint32_t t = 1; t <= options_.walk_length; ++t) {
      const size_t offset = static_cast<size_t>(t) * n_;
      const uint32_t pa = walk[offset + a];
      const uint32_t pb = walk[offset + b];
      if (pa == UINT32_MAX || pb == UINT32_MAX) break;  // a walk died
      if (pa == pb) {
        sum += std::pow(options_.damping, static_cast<double>(t));
        break;  // first meeting only
      }
    }
  }
  return sum / static_cast<double>(walks_.size());
}

std::vector<double> MonteCarloSimRank::EstimateRow(VertexId a) const {
  std::vector<double> row(n_, 0.0);
  for (VertexId b = 0; b < n_; ++b) row[b] = EstimatePair(a, b);
  return row;
}

}  // namespace simrank
