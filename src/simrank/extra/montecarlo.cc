#include "simrank/extra/montecarlo.h"

#include "simrank/common/macros.h"

namespace simrank {

namespace {

WalkIndex BuildWalks(const DiGraph& graph, const MonteCarloOptions& options) {
  WalkIndexOptions index_options;
  index_options.num_fingerprints = options.num_fingerprints;
  index_options.walk_length = options.walk_length;
  index_options.damping = options.damping;
  index_options.seed = options.seed;
  index_options.num_threads = 1;  // serial, like the original estimator
  Result<WalkIndex> index = WalkIndex::Build(graph, index_options);
  OIPSIM_CHECK_MSG(index.ok(), "invalid MonteCarloOptions: %s",
                   index.status().ToString().c_str());
  return std::move(index).value();
}

}  // namespace

MonteCarloSimRank::MonteCarloSimRank(const DiGraph& graph,
                                     const MonteCarloOptions& options)
    : index_(BuildWalks(graph, options)), options_(options) {}

}  // namespace simrank
