// Monte-Carlo SimRank estimation (Fogaras & Rácz, TKDE'07 — the paper's
// Related Work). Estimates s(a, b) = E[C^τ] where τ is the first meeting
// time of two coupled reverse random walks started at a and b.
//
// Walks are coupled through a shared hash: at fingerprint r and step t,
// every walk at vertex v steps to the same pseudo-random in-neighbour of v.
// Coupling guarantees that once two walks meet they stay together, which is
// exactly the first-meeting semantics the estimator needs.
#ifndef OIPSIM_SIMRANK_EXTRA_MONTECARLO_H_
#define OIPSIM_SIMRANK_EXTRA_MONTECARLO_H_

#include <cstdint>
#include <vector>

#include "simrank/common/status.h"
#include "simrank/graph/digraph.h"

namespace simrank {

struct MonteCarloOptions {
  /// Fingerprints (independent walk pairs) per estimate.
  uint32_t num_fingerprints = 256;
  /// Maximum walk length; meetings beyond it contribute 0.
  uint32_t walk_length = 12;
  double damping = 0.6;
  uint64_t seed = 7;
};

/// Shared-fingerprint Monte-Carlo estimator. Precomputes all walks once
/// (O(num_fingerprints · walk_length · n) memory), then answers pair
/// queries in O(num_fingerprints · walk_length).
class MonteCarloSimRank {
 public:
  /// Builds the fingerprint walks for every vertex.
  MonteCarloSimRank(const DiGraph& graph, const MonteCarloOptions& options);

  /// Estimate of s(a, b). Exact value 1 for a == b.
  double EstimatePair(VertexId a, VertexId b) const;

  /// Estimates a full row s(a, ·).
  std::vector<double> EstimateRow(VertexId a) const;

  const MonteCarloOptions& options() const { return options_; }

 private:
  /// walks_[r][t * n + v] = position after t steps of fingerprint r's walk
  /// started at v (UINT32_MAX once the walk left a vertex with no
  /// in-neighbours).
  std::vector<std::vector<uint32_t>> walks_;
  MonteCarloOptions options_;
  uint32_t n_;
};

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_EXTRA_MONTECARLO_H_
