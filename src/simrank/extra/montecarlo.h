// Monte-Carlo SimRank estimation (Fogaras & Rácz, TKDE'07 — the paper's
// Related Work). Estimates s(a, b) = E[C^τ] where τ is the first meeting
// time of two coupled reverse random walks started at a and b.
//
// This is a thin in-memory wrapper around the walk-index estimator
// (index/walk_index.h): one shared kernel builds the coupled walk tables,
// so the on-the-fly estimator and the persistent index sample identical
// walk distributions for equal seeds by construction. Use WalkIndex
// directly when the walks should be built in parallel or persisted.
#ifndef OIPSIM_SIMRANK_EXTRA_MONTECARLO_H_
#define OIPSIM_SIMRANK_EXTRA_MONTECARLO_H_

#include <cstdint>
#include <vector>

#include "simrank/common/status.h"
#include "simrank/graph/digraph.h"
#include "simrank/index/walk_index.h"

namespace simrank {

struct MonteCarloOptions {
  /// Fingerprints (independent walk pairs) per estimate.
  uint32_t num_fingerprints = 256;
  /// Maximum walk length; meetings beyond it contribute 0.
  uint32_t walk_length = 12;
  double damping = 0.6;
  uint64_t seed = 7;
};

/// Shared-fingerprint Monte-Carlo estimator. Precomputes all walks once
/// (O(num_fingerprints · walk_length · n) memory), then answers pair
/// queries in O(num_fingerprints · walk_length).
class MonteCarloSimRank {
 public:
  /// Builds the fingerprint walks for every vertex. Options must be valid
  /// (positive counts, damping in (0, 1)); violations are programming
  /// errors and abort.
  MonteCarloSimRank(const DiGraph& graph, const MonteCarloOptions& options);

  /// Estimate of s(a, b). Exact value 1 for a == b.
  double EstimatePair(VertexId a, VertexId b) const {
    return index_.EstimatePair(a, b);
  }

  /// Estimates a full row s(a, ·).
  std::vector<double> EstimateRow(VertexId a) const {
    return index_.EstimateSingleSource(a);
  }

  const MonteCarloOptions& options() const { return options_; }

 private:
  WalkIndex index_;
  MonteCarloOptions options_;
};

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_EXTRA_MONTECARLO_H_
