// P-Rank (Zhao, Han & Sun, CIKM'09): structural similarity from both
// in-links and out-links. The paper's Related Work notes that "since the
// iterative paradigms of SimRank and P-Rank are almost similar, our
// techniques for SimRank can be easily extended to P-Rank" — this module
// is that extension, built on the same partial-sums propagation kernel.
//
//   s_{k+1}(a,b) = λ·C/(|I(a)||I(b)|)·ΣΣ s_k(in-pairs)
//                + (1-λ)·C/(|O(a)||O(b)|)·ΣΣ s_k(out-pairs),
// with s(a,a) = 1. λ = 1 recovers SimRank exactly.
#ifndef OIPSIM_SIMRANK_EXTRA_PRANK_H_
#define OIPSIM_SIMRANK_EXTRA_PRANK_H_

#include "simrank/common/status.h"
#include "simrank/core/kernel_stats.h"
#include "simrank/core/options.h"
#include "simrank/graph/digraph.h"
#include "simrank/linalg/dense_matrix.h"

namespace simrank {

struct PRankOptions {
  SimRankOptions simrank;
  /// Weight of the in-link term; 1.0 degenerates to SimRank.
  double lambda = 0.5;
};

/// Computes all-pairs P-Rank scores with partial-sums memoisation on both
/// link directions.
Result<DenseMatrix> PRank(const DiGraph& graph, const PRankOptions& options,
                          KernelStats* stats = nullptr);

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_EXTRA_PRANK_H_
