// Top-k similarity queries over a computed score matrix or a single score
// row (e.g. a single-source estimate from the walk index).
#ifndef OIPSIM_SIMRANK_EXTRA_TOPK_H_
#define OIPSIM_SIMRANK_EXTRA_TOPK_H_

#include <cstdint>
#include <span>
#include <vector>

#include "simrank/graph/digraph.h"
#include "simrank/linalg/dense_matrix.h"

namespace simrank {

/// One ranked answer of a top-k query.
struct ScoredVertex {
  VertexId vertex = 0;
  double score = 0.0;

  friend bool operator==(const ScoredVertex&, const ScoredVertex&) = default;
};

/// Top-k over an explicit score row s(query, ·) of length n. Descending
/// score, ties broken by ascending id; the query vertex is excluded when
/// `exclude_query` is true. This is the primitive behind TopKSimilar and
/// the walk-index QueryEngine.
std::vector<ScoredVertex> TopKFromRow(std::span<const double> row,
                                      VertexId query, uint32_t k,
                                      bool exclude_query = true);

/// Top-k over a slice of a score row: `slice[i]` is s(query, base + i).
/// Same ordering contract as TopKFromRow, with returned vertex ids offset
/// by `base`. Merging per-shard results — each shard contributing its top
/// min(k, slice length) over its vertex range — under the same
/// (score desc, vertex asc) comparator reproduces TopKFromRow over the
/// full row exactly: the comparator is a strict total order over distinct
/// ids, and every global top-k member is in its own shard's top-k.
std::vector<ScoredVertex> TopKFromRowSlice(std::span<const double> slice,
                                           VertexId base, VertexId query,
                                           uint32_t k,
                                           bool exclude_query = true);

/// The TopKFromRow / TopKFromRowSlice comparator, exposed so a router can
/// merge per-shard candidates with the identical tie-breaking.
inline bool ScoredVertexBefore(const ScoredVertex& a, const ScoredVertex& b) {
  return a.score != b.score ? a.score > b.score : a.vertex < b.vertex;
}

/// Returns the k vertices most similar to `query` (descending score, ties
/// broken by ascending id for determinism). The query vertex itself is
/// excluded when `exclude_query` is true (the common "find my neighbours"
/// use, e.g. the paper's top-30 co-author list of Fig. 6h).
std::vector<ScoredVertex> TopKSimilar(const DenseMatrix& scores,
                                      VertexId query, uint32_t k,
                                      bool exclude_query = true);

/// Extracts the ranking (vertex ids only) from TopKSimilar.
std::vector<VertexId> TopKIds(const DenseMatrix& scores, VertexId query,
                              uint32_t k, bool exclude_query = true);

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_EXTRA_TOPK_H_
