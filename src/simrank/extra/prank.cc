#include "simrank/extra/prank.h"

#include <utility>

#include "simrank/common/timer.h"
#include "simrank/core/bounds.h"
#include "simrank/core/psum.h"
#include "simrank/graph/graph_ops.h"

namespace simrank {

Result<DenseMatrix> PRank(const DiGraph& graph, const PRankOptions& options,
                          KernelStats* stats) {
  if (!options.simrank.Valid()) {
    return Status::InvalidArgument("invalid SimRank options");
  }
  if (options.lambda < 0.0 || options.lambda > 1.0) {
    return Status::InvalidArgument("P-Rank lambda must be in [0, 1]");
  }
  const uint32_t n = graph.n();
  const uint32_t iterations =
      options.simrank.iterations > 0
          ? options.simrank.iterations
          : ConventionalIterationsForAccuracy(options.simrank.damping,
                                              options.simrank.epsilon);
  WallTimer setup_timer;
  setup_timer.Start();
  // The out-link term is the in-link term on the reverse graph.
  DiGraph reversed = Transpose(graph);
  setup_timer.Stop();

  OpCounter ops;
  WallTimer timer;
  timer.Start();
  DenseMatrix current = DenseMatrix::Identity(n);
  DenseMatrix in_term(n, n);
  DenseMatrix out_term(n, n);
  const double c = options.simrank.damping;
  for (uint32_t k = 0; k < iterations; ++k) {
    internal::PsumPropagate(graph, current, &in_term,
                            options.lambda * c,
                            /*pin_diagonal=*/false,
                            /*sieve_threshold=*/0.0, &ops);
    internal::PsumPropagate(reversed, current, &out_term,
                            (1.0 - options.lambda) * c,
                            /*pin_diagonal=*/false,
                            /*sieve_threshold=*/0.0, &ops);
    in_term.Add(out_term);
    for (uint32_t a = 0; a < n; ++a) in_term(a, a) = 1.0;
    std::swap(current, in_term);
  }
  timer.Stop();

  if (stats != nullptr) {
    stats->iterations = iterations;
    stats->seconds_setup = setup_timer.ElapsedSeconds();
    stats->seconds_iterate = timer.ElapsedSeconds();
    stats->ops = ops.counts();
    stats->score_buffers = 3;
  }
  return current;
}

}  // namespace simrank
