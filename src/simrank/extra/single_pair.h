// On-demand single-pair SimRank (in the spirit of Li et al., SDM'10, from
// the paper's Related Work): computes s_K(a, b) for one pair without the
// O(n²) all-pairs iteration, by memoised recursion over the SimRank
// recurrence
//   s_k(a, b) = C / (|I(a)||I(b)|) · Σ_{i,j} s_{k-1}(i, j).
//
// The memo is keyed by (pair, depth), so the cost is bounded by the number
// of distinct pairs reachable within K backward steps of (a, b) — far
// below n² on sparse graphs when the query pair is local, though it can
// approach all-pairs cost on dense or highly-mixing graphs.
#ifndef OIPSIM_SIMRANK_EXTRA_SINGLE_PAIR_H_
#define OIPSIM_SIMRANK_EXTRA_SINGLE_PAIR_H_

#include <cstdint>

#include "simrank/common/status.h"
#include "simrank/core/options.h"
#include "simrank/graph/digraph.h"

namespace simrank {

/// Statistics of a single-pair evaluation.
struct SinglePairStats {
  /// Distinct (pair, depth) subproblems evaluated.
  uint64_t subproblems = 0;
};

/// Computes s_K(a, b) exactly (equal to row (a,b) of the all-pairs
/// iteration with the same K). K is options.iterations, or derived from
/// options.epsilon as usual.
Result<double> SinglePairSimRank(const DiGraph& graph, VertexId a, VertexId b,
                                 const SimRankOptions& options,
                                 SinglePairStats* stats = nullptr);

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_EXTRA_SINGLE_PAIR_H_
