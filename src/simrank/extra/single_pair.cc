#include "simrank/extra/single_pair.h"

#include <unordered_map>

#include "simrank/core/bounds.h"

namespace simrank {

namespace {

struct Evaluator {
  const DiGraph& graph;
  double damping;
  SinglePairStats* stats;
  // Key: (min(a,b) << 32 | max(a,b)) at a given depth. Symmetry of s_k
  // lets both orientations share one entry.
  std::vector<std::unordered_map<uint64_t, double>> memo;

  double Eval(VertexId a, VertexId b, uint32_t k) {
    if (a == b) return 1.0;
    if (k == 0) return 0.0;
    auto in_a = graph.InNeighbors(a);
    auto in_b = graph.InNeighbors(b);
    if (in_a.empty() || in_b.empty()) return 0.0;

    const uint64_t key = a < b
                             ? (static_cast<uint64_t>(a) << 32) | b
                             : (static_cast<uint64_t>(b) << 32) | a;
    auto [it, inserted] = memo[k].try_emplace(key, 0.0);
    if (!inserted) return it->second;
    if (stats != nullptr) ++stats->subproblems;

    double sum = 0.0;
    for (VertexId i : in_a) {
      for (VertexId j : in_b) {
        sum += Eval(i, j, k - 1);
      }
    }
    const double value =
        damping * sum /
        (static_cast<double>(in_a.size()) * static_cast<double>(in_b.size()));
    // NOTE: re-find instead of caching `it` — recursion may rehash the map.
    memo[k][key] = value;
    return value;
  }
};

}  // namespace

Result<double> SinglePairSimRank(const DiGraph& graph, VertexId a, VertexId b,
                                 const SimRankOptions& options,
                                 SinglePairStats* stats) {
  if (!options.Valid()) {
    return Status::InvalidArgument("invalid SimRank options");
  }
  if (a >= graph.n() || b >= graph.n()) {
    return Status::OutOfRange("vertex id out of range");
  }
  const uint32_t iterations =
      options.iterations > 0
          ? options.iterations
          : ConventionalIterationsForAccuracy(options.damping,
                                              options.epsilon);
  Evaluator evaluator{graph, options.damping, stats, {}};
  evaluator.memo.resize(iterations + 1);
  return evaluator.Eval(a, b, iterations);
}

}  // namespace simrank
