#include "simrank/mst/tree.h"

#include <algorithm>

namespace simrank {

Tree::Tree(const Arborescence& arb) : Tree(arb.root, arb.parent) {}

Tree::Tree(uint32_t root, std::vector<uint32_t> parent)
    : root_(root), parent_(std::move(parent)) {
  OIPSIM_CHECK_LT(root_, parent_.size());
  OIPSIM_CHECK_EQ(parent_[root_], root_);
  BuildDerived();
}

void Tree::BuildDerived() {
  const uint32_t n = size();
  children_.assign(n, {});
  for (uint32_t v = 0; v < n; ++v) {
    if (v != root_) {
      OIPSIM_CHECK_LT(parent_[v], n);
      children_[parent_[v]].push_back(v);
    }
  }
  for (auto& kids : children_) std::sort(kids.begin(), kids.end());

  depth_.assign(n, 0);
  max_depth_ = 0;
  // BFS from the root; also validates connectivity/acyclicity.
  std::vector<uint32_t> queue{root_};
  std::vector<bool> seen(n, false);
  seen[root_] = true;
  for (size_t head = 0; head < queue.size(); ++head) {
    uint32_t v = queue[head];
    for (uint32_t c : children_[v]) {
      OIPSIM_CHECK(!seen[c]);
      seen[c] = true;
      depth_[c] = depth_[v] + 1;
      max_depth_ = std::max(max_depth_, depth_[c]);
      queue.push_back(c);
    }
  }
  OIPSIM_CHECK_EQ(queue.size(), static_cast<size_t>(n));
}

void Tree::DepthFirstWalk(const std::function<void(uint32_t)>& enter,
                          const std::function<void(uint32_t)>& leave) const {
  struct Frame {
    uint32_t node;
    size_t next_child;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{root_, 0});
  enter(root_);
  while (!stack.empty()) {
    Frame& top = stack.back();
    const auto& kids = children_[top.node];
    if (top.next_child < kids.size()) {
      uint32_t child = kids[top.next_child++];
      enter(child);
      stack.push_back(Frame{child, 0});
    } else {
      leave(top.node);
      stack.pop_back();
    }
  }
}

std::vector<std::vector<uint32_t>> Tree::PathDecomposition() const {
  std::vector<std::vector<uint32_t>> chains;
  // Each chain starts at the root or at a branch node's 2nd+ child.
  struct Start {
    uint32_t head;   // first node of the chain
    uint32_t anchor; // node the chain hangs off (parent of head), or head
  };
  std::vector<Start> starts{{root_, root_}};
  for (size_t i = 0; i < starts.size(); ++i) {
    std::vector<uint32_t> chain;
    uint32_t v = starts[i].head;
    if (starts[i].anchor != v) chain.push_back(starts[i].anchor);
    while (true) {
      chain.push_back(v);
      const auto& kids = children_[v];
      if (kids.empty()) break;
      for (size_t c = 1; c < kids.size(); ++c) {
        starts.push_back(Start{kids[c], v});
      }
      v = kids[0];
    }
    chains.push_back(std::move(chain));
  }
  return chains;
}

}  // namespace simrank
