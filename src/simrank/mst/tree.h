// Rooted tree built from a parent array, with the traversals the OIP
// kernels need: children lists, a depth-first order with enter/leave
// events (used for the O(n)-memory diff/undo walk over partial sums), and
// the root-to-leaf path decomposition shown in Fig. 2d of the paper.
#ifndef OIPSIM_SIMRANK_MST_TREE_H_
#define OIPSIM_SIMRANK_MST_TREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "simrank/common/macros.h"
#include "simrank/mst/arborescence.h"

namespace simrank {

/// Immutable rooted tree over nodes [0, n).
class Tree {
 public:
  /// Constructs the trivial tree with a single root node 0.
  Tree() : Tree(0, {0}) {}

  /// Builds from an Arborescence (parent of root == root).
  explicit Tree(const Arborescence& arb);

  /// Builds from a raw parent array with explicit root.
  Tree(uint32_t root, std::vector<uint32_t> parent);

  uint32_t size() const { return static_cast<uint32_t>(parent_.size()); }
  uint32_t root() const { return root_; }
  uint32_t parent(uint32_t v) const {
    OIPSIM_DCHECK(v < size());
    return parent_[v];
  }
  const std::vector<uint32_t>& children(uint32_t v) const {
    OIPSIM_DCHECK(v < size());
    return children_[v];
  }

  /// Depth of node (root has depth 0).
  uint32_t depth(uint32_t v) const {
    OIPSIM_DCHECK(v < size());
    return depth_[v];
  }
  uint32_t max_depth() const { return max_depth_; }

  /// Iterative DFS from the root. `enter(v)` fires when v is first
  /// reached, `leave(v)` after all of v's subtree finished. The root gets
  /// both events. Children are visited in ascending id order.
  void DepthFirstWalk(const std::function<void(uint32_t)>& enter,
                      const std::function<void(uint32_t)>& leave) const;

  /// Decomposes the tree edges into root-to-leaf chains the way Fig. 2d
  /// does: each internal node continues its chain with its first child;
  /// every further child starts a new chain beginning at that node.
  /// Returns the chains, each a node sequence starting at the root or at a
  /// branch node.
  std::vector<std::vector<uint32_t>> PathDecomposition() const;

 private:
  void BuildDerived();

  uint32_t root_ = 0;
  std::vector<uint32_t> parent_;
  std::vector<std::vector<uint32_t>> children_;
  std::vector<uint32_t> depth_;
  uint32_t max_depth_ = 0;
};

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_MST_TREE_H_
