#include "simrank/mst/arborescence.h"

#include <limits>

namespace simrank {

Result<Arborescence> MinInEdgeArborescence(
    uint32_t num_nodes, uint32_t root,
    const std::vector<WeightedEdge>& edges) {
  if (root >= num_nodes) {
    return Status::InvalidArgument("root out of range");
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> best_weight(num_nodes, kInf);
  std::vector<uint32_t> parent(num_nodes);
  for (uint32_t v = 0; v < num_nodes; ++v) parent[v] = v;

  for (const WeightedEdge& e : edges) {
    if (e.src >= num_nodes || e.dst >= num_nodes) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
    if (e.dst == root || e.src == e.dst) continue;
    if (e.weight < best_weight[e.dst] ||
        (e.weight == best_weight[e.dst] && e.src < parent[e.dst])) {
      best_weight[e.dst] = e.weight;
      parent[e.dst] = e.src;
    }
  }

  Arborescence result;
  result.root = root;
  result.parent = parent;
  for (uint32_t v = 0; v < num_nodes; ++v) {
    if (v == root) continue;
    if (best_weight[v] == kInf) {
      return Status::InvalidArgument("node has no incoming edge");
    }
    result.total_weight += best_weight[v];
  }

  // Cycle check: walk parents from each node; on a DAG input this never
  // revisits a node before reaching the root.
  std::vector<uint8_t> state(num_nodes, 0);  // 0=unseen 1=in-progress 2=done
  for (uint32_t start = 0; start < num_nodes; ++start) {
    if (state[start] == 2) continue;
    // Follow the parent chain, marking the path in-progress.
    std::vector<uint32_t> path;
    uint32_t v = start;
    while (state[v] == 0 && v != root) {
      state[v] = 1;
      path.push_back(v);
      v = parent[v];
    }
    if (state[v] == 1) {
      return Status::InvalidArgument(
          "greedy min-in-edge selection formed a cycle (input not a DAG)");
    }
    for (uint32_t node : path) state[node] = 2;
    state[root] = 2;
  }
  return result;
}

Result<double> ChuLiuEdmondsCost(uint32_t num_nodes, uint32_t root,
                                 std::vector<WeightedEdge> edges) {
  if (root >= num_nodes) {
    return Status::InvalidArgument("root out of range");
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();
  double total = 0.0;
  uint32_t n = num_nodes;
  uint32_t r = root;

  while (true) {
    // 1. Cheapest incoming edge per node.
    std::vector<double> in_weight(n, kInf);
    std::vector<uint32_t> pre(n, UINT32_MAX);
    for (const WeightedEdge& e : edges) {
      if (e.src == e.dst || e.dst == r) continue;
      if (e.weight < in_weight[e.dst]) {
        in_weight[e.dst] = e.weight;
        pre[e.dst] = e.src;
      }
    }
    for (uint32_t v = 0; v < n; ++v) {
      if (v != r && in_weight[v] == kInf) {
        return Status::InvalidArgument("no arborescence: unreachable node");
      }
    }

    // 2. Accumulate and detect cycles among chosen edges.
    std::vector<int32_t> id(n, -1);
    std::vector<int32_t> visited(n, -1);
    uint32_t num_cycles = 0;
    for (uint32_t v = 0; v < n; ++v) {
      if (v == r) continue;
      total += in_weight[v];
    }
    for (uint32_t v = 0; v < n; ++v) {
      if (v == r) continue;
      uint32_t u = v;
      while (u != r && visited[u] == -1 && id[u] == -1) {
        visited[u] = static_cast<int32_t>(v);
        u = pre[u];
      }
      if (u != r && id[u] == -1 && visited[u] == static_cast<int32_t>(v)) {
        // Found a new cycle through u; label its members.
        uint32_t w = u;
        do {
          id[w] = static_cast<int32_t>(num_cycles);
          w = pre[w];
        } while (w != u);
        ++num_cycles;
      }
    }
    if (num_cycles == 0) break;

    // 3. Contract cycles into super-nodes and re-weight.
    uint32_t next_id = num_cycles;
    for (uint32_t v = 0; v < n; ++v) {
      if (id[v] == -1) id[v] = static_cast<int32_t>(next_id++);
    }
    std::vector<WeightedEdge> contracted;
    contracted.reserve(edges.size());
    for (const WeightedEdge& e : edges) {
      uint32_t u = static_cast<uint32_t>(id[e.src]);
      uint32_t v = static_cast<uint32_t>(id[e.dst]);
      if (u == v) continue;
      // `total` already paid in_weight[e.dst] this round, so a later
      // choice of this edge only costs the difference.
      contracted.push_back(WeightedEdge{u, v, e.weight - in_weight[e.dst]});
    }
    edges = std::move(contracted);
    r = static_cast<uint32_t>(id[r]);
    n = next_id;
  }
  return total;
}

}  // namespace simrank
