// Minimum spanning arborescence (directed MST).
//
// DMST-Reduce (paper, Section III-C) builds a weighted digraph G* whose
// vertices are the distinct in-neighbour sets plus a root ∅, with an edge
// (A -> B) whenever |A| <= |B|, weighted by the transition cost of Eq. (7).
// Because edges only go from smaller to larger sets (ties broken by a fixed
// vertex order), G* is a DAG rooted at ∅, and the optimum branching is
// simply each node's cheapest incoming edge — no cycle can arise. We
// implement that fast path and, as a correctness oracle, the general
// Chu-Liu/Edmonds algorithm (Gabow et al.'s problem, reference [7] of the
// paper) which works on arbitrary digraphs.
#ifndef OIPSIM_SIMRANK_MST_ARBORESCENCE_H_
#define OIPSIM_SIMRANK_MST_ARBORESCENCE_H_

#include <cstdint>
#include <vector>

#include "simrank/common/status.h"

namespace simrank {

/// Weighted directed edge for arborescence computation.
struct WeightedEdge {
  uint32_t src = 0;
  uint32_t dst = 0;
  double weight = 0.0;
};

/// A rooted spanning arborescence: parent[v] for every node (parent of the
/// root is the root itself), plus the total edge weight.
struct Arborescence {
  uint32_t root = 0;
  std::vector<uint32_t> parent;
  double total_weight = 0.0;
};

/// Greedy min-in-edge branching: every non-root node picks its cheapest
/// incoming edge (ties broken by smaller source id for determinism).
/// Returns an error if some node has no incoming edge or if the greedy
/// choice forms a cycle — neither can happen when the edge set is a DAG
/// reachable from `root`, which DMST-Reduce guarantees.
Result<Arborescence> MinInEdgeArborescence(
    uint32_t num_nodes, uint32_t root,
    const std::vector<WeightedEdge>& edges);

/// Chu-Liu/Edmonds: minimum total weight of a spanning arborescence rooted
/// at `root` on an arbitrary digraph (cycles allowed). Returns an error if
/// no arborescence exists. Used as the optimality oracle in tests.
Result<double> ChuLiuEdmondsCost(uint32_t num_nodes, uint32_t root,
                                 std::vector<WeightedEdge> edges);

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_MST_ARBORESCENCE_H_
