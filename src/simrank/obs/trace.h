// Per-request span tracing for the serving stack.
//
// A TraceRecorder is a fixed-capacity, allocation-free span buffer owned
// by exactly one thread for the lifetime of one request. Instrumented
// code never takes a recorder parameter: it consults a thread-local
// plain pointer (null = tracing off), so the disabled path costs one TLS
// load and one predictable branch per site, and the enabled path costs
// two monotonic clock reads per span plus plain stores. Counters are
// plain uint64 adds with no clock read, cheap enough for per-slot /
// per-byte accounting inside the probe loops.
//
// The recorder is deliberately not propagated into ThreadPool workers:
// fan-out code (batch queries, router scatter threads) measures child
// durations locally and records them after the join via
// AddCompletedSpan, keeping every recorder single-threaded.
//
// Serialization is one compact JSON document (spans as a parent-indexed
// tree, counters, raw child traces from downstream shards) with no
// newlines, so a trace travels intact in an HTTP header — the channel
// the router uses to collect shard sub-traces without perturbing
// response bodies byte-for-byte.
#ifndef OIPSIM_SIMRANK_OBS_TRACE_H_
#define OIPSIM_SIMRANK_OBS_TRACE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace simrank {

/// Pipeline stages a request can spend time in. Server-side stages come
/// first, then engine stages, then router stages.
enum class TraceStage : uint8_t {
  kRequest = 0,    // whole request, root span
  kQueueWait,      // dispatch to worker pickup
  kCacheLookup,    // row-cache probe
  kIndexProbe,     // inverted-index probe + accumulate loop
  kColdRead,       // segment prefetch / cold store read
  kDecode,         // walk-row varint decode
  kAccumulate,     // score accumulation over bucket entries
  kOverlayMerge,   // delta-overlay row merge
  kSerialize,      // response body construction
  kRowFetch,       // router: fetch source row from owning shard
  kShardExchange,  // router: one shard round-trip (detail = shard)
  kMerge,          // router: merge shard partials
  kNumStages,
};

inline constexpr uint32_t kNumTraceStages =
    static_cast<uint32_t>(TraceStage::kNumStages);

const char* TraceStageName(TraceStage stage);

/// Work counters accumulated over a request, no clock reads.
enum class TraceCounter : uint8_t {
  kCacheHits = 0,
  kCacheMisses,
  kRowsDecoded,
  kBytesRead,
  kSlotsProbed,
  kBucketEntries,
  kOverlayRowsMerged,
  kShardsContacted,
  kConflictRetries,
  kNumCounters,
};

inline constexpr uint32_t kNumTraceCounters =
    static_cast<uint32_t>(TraceCounter::kNumCounters);

const char* TraceCounterName(TraceCounter counter);

/// CLOCK_MONOTONIC now, in nanoseconds.
uint64_t TraceNowNanos();

/// Process-unique 64-bit trace id (never zero).
uint64_t GenerateTraceId();

/// 16-hex-digit form of a trace id.
std::string TraceIdToHex(uint64_t id);

/// Parses a 1..16 hex digit trace id; returns false (and leaves `*id`
/// untouched) on malformed input or a zero id.
bool ParseTraceId(std::string_view text, uint64_t* id);

/// One recorded interval. `parent` indexes into the recorder's span
/// array; -1 marks the root.
struct TraceSpan {
  static constexpr uint32_t kDetailCapacity = 24;

  TraceStage stage = TraceStage::kRequest;
  int16_t parent = -1;
  uint64_t start_ns = 0;     // relative to the recorder's first span
  uint64_t duration_ns = 0;  // 0 while still open
  char detail[kDetailCapacity] = {};  // optional label, truncated
};

/// Fixed-capacity span recorder for one request. All methods must be
/// called from the single thread that owns the request; none allocate
/// except AddChildTrace (which only runs on the already-traced router
/// merge path).
class TraceRecorder {
 public:
  static constexpr uint32_t kMaxSpans = 64;
  static constexpr uint32_t kMaxOpenDepth = 16;

  explicit TraceRecorder(uint64_t trace_id)
      : trace_id_(trace_id == 0 ? GenerateTraceId() : trace_id) {}

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  uint64_t trace_id() const { return trace_id_; }

  /// Opens a nested span; the innermost still-open span becomes its
  /// parent. Returns the span index, or -1 if the buffer is full (the
  /// drop is counted and reported in the JSON).
  int OpenSpan(TraceStage stage, std::string_view detail = {});

  /// Closes the span returned by OpenSpan. Passing -1 is a no-op so
  /// callers can close unconditionally.
  void CloseSpan(int index);

  /// Records an already-measured interval (e.g. timed on a fan-out
  /// thread and reported after the join). `start_ns` is an absolute
  /// TraceNowNanos() reading.
  void AddCompletedSpan(TraceStage stage, uint64_t start_ns,
                        uint64_t duration_ns, std::string_view detail = {});

  void Add(TraceCounter counter, uint64_t delta) {
    counters_[static_cast<uint32_t>(counter)] += delta;
  }

  /// Attaches a downstream trace (a shard's serialized trace JSON) to be
  /// embedded under "children". Ignores anything not shaped like a JSON
  /// object.
  void AddChildTrace(std::string json);

  uint32_t num_spans() const { return num_spans_; }
  const TraceSpan& span(uint32_t i) const { return spans_[i]; }
  uint64_t counter(TraceCounter c) const {
    return counters_[static_cast<uint32_t>(c)];
  }
  uint32_t dropped_spans() const { return dropped_spans_; }
  const std::vector<std::string>& children() const { return children_; }

  /// The whole trace as one single-line JSON object:
  ///   {"trace_id":"…","spans":[{"stage":"…","parent":-1,"start_ns":N,
  ///    "duration_ns":N,"detail":"…"},…],"counters":{…},
  ///    "dropped_spans":N,"children":[…]}
  /// "detail" is omitted when empty, "dropped_spans"/"children" when
  /// zero/absent. Contains no newline bytes.
  std::string ToJson() const;

 private:
  uint64_t trace_id_;
  uint64_t base_ns_ = 0;  // absolute time of the first span
  uint32_t num_spans_ = 0;
  uint32_t dropped_spans_ = 0;
  uint32_t open_depth_ = 0;
  int16_t open_stack_[kMaxOpenDepth];
  TraceSpan spans_[kMaxSpans];
  uint64_t counters_[kNumTraceCounters] = {};
  std::vector<std::string> children_;
};

namespace internal {
extern thread_local TraceRecorder* tls_trace_recorder;
}  // namespace internal

/// The recorder bound to this thread, or null when tracing is off. The
/// null check is the entire cost of an untraced instrumentation site.
inline TraceRecorder* CurrentTraceRecorder() {
  return internal::tls_trace_recorder;
}

/// Binds `recorder` to this thread for the enclosing scope, restoring
/// the previous binding (normally null) on exit.
class TraceBinding {
 public:
  explicit TraceBinding(TraceRecorder* recorder)
      : previous_(internal::tls_trace_recorder) {
    internal::tls_trace_recorder = recorder;
  }
  ~TraceBinding() { internal::tls_trace_recorder = previous_; }

  TraceBinding(const TraceBinding&) = delete;
  TraceBinding& operator=(const TraceBinding&) = delete;

 private:
  TraceRecorder* previous_;
};

/// RAII span over the current thread's recorder; a complete no-op (no
/// clock read) when tracing is off.
class TraceScope {
 public:
  explicit TraceScope(TraceStage stage, std::string_view detail = {})
      : recorder_(CurrentTraceRecorder()) {
    if (recorder_ != nullptr) {
      index_ = recorder_->OpenSpan(stage, detail);
    }
  }
  ~TraceScope() {
    if (recorder_ != nullptr) {
      recorder_->CloseSpan(index_);
    }
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceRecorder* recorder_;
  int index_ = -1;
};

/// Counter bump on the current recorder; one TLS load + branch when off.
inline void TraceAdd(TraceCounter counter, uint64_t delta) {
  if (TraceRecorder* recorder = CurrentTraceRecorder()) {
    recorder->Add(counter, delta);
  }
}

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_OBS_TRACE_H_
