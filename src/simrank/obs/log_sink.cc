#include "simrank/obs/log_sink.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <unistd.h>

#include <utility>
#include <vector>

#include "simrank/common/string_util.h"

namespace simrank {

Result<std::unique_ptr<JsonlLogSink>> JsonlLogSink::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    return Status::IoError(StrFormat("open %s: %s", path.c_str(),
                                     strerror(errno)));
  }
  return std::unique_ptr<JsonlLogSink>(new JsonlLogSink(path, fd));
}

JsonlLogSink::JsonlLogSink(std::string path, int fd)
    : path_(std::move(path)), fd_(fd) {
  writer_ = std::thread([this] { WriterLoop(); });
}

JsonlLogSink::~JsonlLogSink() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  writer_.join();
  ::close(fd_);
}

void JsonlLogSink::Append(std::string line) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.size() >= kMaxQueuedLines) {
      ++dropped_;
      return;
    }
    queue_.push_back(std::move(line));
  }
  wake_.notify_one();
}

void JsonlLogSink::Flush() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_.wait(lock, [this] { return queue_.empty() && !writing_; });
}

uint64_t JsonlLogSink::lines_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return written_;
}

uint64_t JsonlLogSink::lines_dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void JsonlLogSink::WriterLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_.wait(lock, [this] { return !queue_.empty() || shutdown_; });
    if (queue_.empty() && shutdown_) return;
    // Batch everything queued into one buffer and write it unlocked.
    std::vector<std::string> batch(
        std::make_move_iterator(queue_.begin()),
        std::make_move_iterator(queue_.end()));
    queue_.clear();
    writing_ = true;
    lock.unlock();
    std::string buffer;
    size_t total = 0;
    for (const std::string& line : batch) total += line.size() + 1;
    buffer.reserve(total);
    for (const std::string& line : batch) {
      buffer += line;
      buffer += '\n';
    }
    size_t offset = 0;
    while (offset < buffer.size()) {
      const ssize_t n =
          ::write(fd_, buffer.data() + offset, buffer.size() - offset);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // unwritable sink: drop the rest of the batch
      }
      offset += static_cast<size_t>(n);
    }
    lock.lock();
    writing_ = false;
    written_ += batch.size();
    drained_.notify_all();
  }
}

}  // namespace simrank
