// In-process metrics history: the last ~15 minutes of every exported
// metric at 1 s resolution, so a just-degraded node can be inspected
// after the fact via GET /v1/debug/timeseries.
//
// Rather than teaching every counter to self-register, the history is fed
// the node's own Prometheus exposition text (the exact bytes /metrics
// serves) once per interval and parses it — every gauge, counter and
// histogram bucket already exported becomes a series for free, and the
// two can never drift apart. A background MetricsSampler drives the
// feeding; the same parser powers the router's fleet-wide /metrics
// aggregation.
#ifndef OIPSIM_SIMRANK_OBS_METRICS_HISTORY_H_
#define OIPSIM_SIMRANK_OBS_METRICS_HISTORY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "simrank/common/macros.h"

namespace simrank {

/// One sample line of a Prometheus text exposition.
struct PromSample {
  std::string name;    // metric name, e.g. "simrank_requests_total"
  std::string labels;  // raw label block including braces, or ""
  double value = 0.0;
};

/// A metric family: the samples sharing one name/TYPE declaration.
struct PromFamily {
  std::string name;
  std::string type;  // "counter" | "gauge" | "histogram" | "untyped"
  std::vector<PromSample> samples;
};

/// Parses Prometheus text exposition v0.0.4 (the format this repo's
/// /metrics endpoints emit). Histogram _bucket/_sum/_count samples are
/// grouped under their declared family name. Unparseable lines are
/// skipped.
std::vector<PromFamily> ParsePrometheusText(std::string_view text);

/// Fixed-window ring of (unix second, value) points per series. All
/// methods are thread-safe.
class MetricsHistory {
 public:
  struct Options {
    uint32_t window_seconds = 900;
    uint32_t interval_ms = 1000;
  };

  explicit MetricsHistory(Options options);
  OIPSIM_DISALLOW_COPY_AND_ASSIGN(MetricsHistory);

  /// Parses `metrics_text` and appends one point per sample line,
  /// stamped `unix_seconds`.
  void Record(std::string_view metrics_text, uint64_t unix_seconds);

  /// JSON for /v1/debug/timeseries?metric=...&window=...: every series
  /// whose name is `metric` exactly, or one of metric_bucket /
  /// metric_sum / metric_count (histogram families). `window_seconds` is
  /// clamped to the configured window; points older than the newest
  /// recorded stamp minus the window are dropped.
  std::string QueryJson(std::string_view metric,
                        uint64_t window_seconds) const;

  /// JSON list of available family names.
  std::string ListJson() const;

  const Options& options() const { return options_; }
  size_t series_count() const;

 private:
  struct Series {
    std::string name;
    std::string labels;
    std::vector<std::pair<uint64_t, double>> ring;
    size_t next = 0;
    bool full = false;
  };

  Options options_;
  size_t capacity_;
  mutable std::mutex mutex_;
  std::map<std::string, Series> series_;     // key: name + labels
  std::map<std::string, std::string> families_;  // family name -> type
};

/// Drives a MetricsHistory: every interval it calls `provider` (the
/// node's own metrics builder) and records the result.
class MetricsSampler {
 public:
  MetricsSampler(MetricsHistory* history,
                 std::function<std::string()> provider)
      : history_(history), provider_(std::move(provider)) {}
  ~MetricsSampler() { Stop(); }

  OIPSIM_DISALLOW_COPY_AND_ASSIGN(MetricsSampler);

  void Start();
  void Stop();
  uint64_t samples_taken() const {
    return samples_taken_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();

  MetricsHistory* history_;
  std::function<std::string()> provider_;
  std::atomic<uint64_t> samples_taken_{0};
  std::atomic<bool> stop_{true};
  std::thread thread_;
};

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_OBS_METRICS_HISTORY_H_
