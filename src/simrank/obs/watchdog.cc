#include "simrank/obs/watchdog.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "simrank/obs/profiler.h"
#include "simrank/obs/trace.h"

namespace simrank {

void Watchdog::Beat() {
  last_beat_ns_.store(TraceNowNanos(), std::memory_order_release);
}

uint64_t Watchdog::CurrentLagMicros() const {
  const uint64_t last = last_beat_ns_.load(std::memory_order_acquire);
  if (last == 0) return 0;
  const uint64_t now = TraceNowNanos();
  return now > last ? (now - last) / 1000 : 0;
}

void Watchdog::Start() {
  if (!stop_.load(std::memory_order_acquire)) return;
  stop_.store(false, std::memory_order_release);
  Beat();
  thread_ = std::thread([this] { Loop(); });
}

void Watchdog::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

Watchdog::Snapshot Watchdog::snapshot() const {
  Snapshot out;
  out.loop_lag_us = CurrentLagMicros();
  out.max_loop_lag_us =
      std::max(max_lag_us_.load(std::memory_order_relaxed), out.loop_lag_us);
  out.queue_depth = queue_depth_.load(std::memory_order_relaxed);
  out.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  out.stalls = stalls_.load(std::memory_order_relaxed);
  out.last_stall_us = last_stall_us_.load(std::memory_order_relaxed);
  return out;
}

void Watchdog::Loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.poll_interval_ms));

    const uint64_t lag_us = CurrentLagMicros();
    uint64_t max_lag = max_lag_us_.load(std::memory_order_relaxed);
    while (lag_us > max_lag &&
           !max_lag_us_.compare_exchange_weak(max_lag, lag_us,
                                              std::memory_order_relaxed)) {
    }

    if (queue_depth_provider_) {
      const uint64_t depth = queue_depth_provider_();
      queue_depth_.store(depth, std::memory_order_relaxed);
      uint64_t max_depth = max_queue_depth_.load(std::memory_order_relaxed);
      while (depth > max_depth &&
             !max_queue_depth_.compare_exchange_weak(
                 max_depth, depth, std::memory_order_relaxed)) {
      }
    }

    if (lag_us > options_.stall_threshold_us) {
      stall_peak_us_ = std::max(stall_peak_us_, lag_us);
      last_stall_us_.store(stall_peak_us_, std::memory_order_relaxed);
      if (!in_stall_) {
        // Edge-triggered: one warning per stall episode.
        in_stall_ = true;
        stalls_.fetch_add(1, std::memory_order_relaxed);
        std::string stack;
        const int64_t tid = watched_tid_.load(std::memory_order_acquire);
        if (tid != 0) {
          stack = CpuProfiler::Instance().CaptureThreadStack(tid);
        }
        std::fprintf(
            stderr,
            "[watchdog] %s stalled: lag=%.3fs threshold=%.3fs "
            "queue_depth=%llu stack=%s\n",
            options_.name, static_cast<double>(lag_us) / 1e6,
            static_cast<double>(options_.stall_threshold_us) / 1e6,
            static_cast<unsigned long long>(
                queue_depth_.load(std::memory_order_relaxed)),
            stack.empty() ? "(unavailable)" : stack.c_str());
        std::fflush(stderr);
      }
    } else if (in_stall_) {
      in_stall_ = false;
      stall_peak_us_ = 0;
    }
  }
}

}  // namespace simrank
