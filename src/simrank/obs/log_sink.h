// Background JSONL file appender for access and trace logs.
//
// The event loop and worker threads must never block on disk, so Append
// only takes a mutex, pushes the line onto a queue and signals a single
// writer thread, which batches whatever is queued into one write(2) per
// wakeup. Lines are written verbatim with a trailing newline — callers
// hand in complete single-line JSON documents. If the queue backs up past
// a bound (a stalled disk), lines are dropped and counted rather than
// stalling request handling.
#ifndef OIPSIM_SIMRANK_OBS_LOG_SINK_H_
#define OIPSIM_SIMRANK_OBS_LOG_SINK_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "simrank/common/status.h"

namespace simrank {

class JsonlLogSink {
 public:
  /// Opens `path` for appending and starts the writer thread.
  static Result<std::unique_ptr<JsonlLogSink>> Open(const std::string& path);

  /// Drains the queue, joins the writer and closes the file.
  ~JsonlLogSink();

  JsonlLogSink(const JsonlLogSink&) = delete;
  JsonlLogSink& operator=(const JsonlLogSink&) = delete;

  /// Enqueues one line (without trailing newline). Never blocks on IO.
  void Append(std::string line);

  /// Blocks until everything enqueued so far has been written. Test and
  /// shutdown aid, not for the request path.
  void Flush();

  const std::string& path() const { return path_; }
  uint64_t lines_written() const;
  uint64_t lines_dropped() const;

 private:
  /// Queue bound before Append starts dropping; generous — a line is a
  /// few hundred bytes, so this is a few MB of backlog.
  static constexpr size_t kMaxQueuedLines = 16384;

  JsonlLogSink(std::string path, int fd);

  void WriterLoop();

  const std::string path_;
  const int fd_;

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable drained_;
  std::deque<std::string> queue_;
  bool shutdown_ = false;
  bool writing_ = false;
  uint64_t written_ = 0;
  uint64_t dropped_ = 0;
  std::thread writer_;
};

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_OBS_LOG_SINK_H_
