#include "simrank/obs/metrics_history.h"

#include <algorithm>
#include <chrono>

#include "simrank/common/json_writer.h"
#include "simrank/common/string_util.h"

namespace simrank {
namespace {

/// Strips a histogram sample suffix so `foo_bucket`, `foo_sum` and
/// `foo_count` group under family `foo` (only when `foo` is a declared
/// histogram — plain counters legitimately end in _count-like names).
std::string FamilyNameFor(const std::string& sample_name,
                          const std::map<std::string, std::string>& types) {
  static constexpr std::string_view kSuffixes[] = {"_bucket", "_sum",
                                                   "_count"};
  for (std::string_view suffix : kSuffixes) {
    if (sample_name.size() > suffix.size() &&
        sample_name.compare(sample_name.size() - suffix.size(),
                            suffix.size(), suffix) == 0) {
      std::string base =
          sample_name.substr(0, sample_name.size() - suffix.size());
      auto it = types.find(base);
      if (it != types.end() && it->second == "histogram") return base;
    }
  }
  return sample_name;
}

}  // namespace

std::vector<PromFamily> ParsePrometheusText(std::string_view text) {
  std::vector<PromFamily> families;
  std::map<std::string, size_t> index;
  std::map<std::string, std::string> types;

  auto family_for = [&](const std::string& name) -> PromFamily& {
    auto [it, inserted] = index.emplace(name, families.size());
    if (inserted) {
      families.push_back(PromFamily{name, "untyped", {}});
      auto type_it = types.find(name);
      if (type_it != types.end()) families.back().type = type_it->second;
    }
    return families[it->second];
  };

  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = StrTrim(text.substr(pos, eol - pos));
    pos = eol + 1;
    if (line.empty()) continue;

    if (line[0] == '#') {
      if (StartsWith(line, "# TYPE ")) {
        const std::string_view rest = line.substr(7);
        const size_t space = rest.find(' ');
        if (space != std::string_view::npos) {
          const std::string name(StrTrim(rest.substr(0, space)));
          const std::string type(StrTrim(rest.substr(space + 1)));
          types[name] = type;
          family_for(name).type = type;
        }
      }
      continue;
    }

    // Sample line: name[{labels}] value
    size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string_view::npos || name_end == 0) continue;
    PromSample sample;
    sample.name.assign(line.substr(0, name_end));
    std::string_view rest = line.substr(name_end);
    if (rest[0] == '{') {
      // Our exporters never emit '}' inside label values, so the last '}'
      // closes the block.
      const size_t close = rest.rfind('}');
      if (close == std::string_view::npos) continue;
      sample.labels.assign(rest.substr(0, close + 1));
      rest = rest.substr(close + 1);
    }
    double value = 0.0;
    if (!ParseDouble(StrTrim(rest), &value)) continue;
    sample.value = value;
    family_for(FamilyNameFor(sample.name, types))
        .samples.push_back(std::move(sample));
  }
  return families;
}

MetricsHistory::MetricsHistory(Options options) : options_(options) {
  if (options_.interval_ms == 0) options_.interval_ms = 1000;
  if (options_.window_seconds == 0) options_.window_seconds = 1;
  capacity_ = std::max<size_t>(
      1, static_cast<size_t>(options_.window_seconds) * 1000 /
             options_.interval_ms);
}

void MetricsHistory::Record(std::string_view metrics_text,
                            uint64_t unix_seconds) {
  const std::vector<PromFamily> families = ParsePrometheusText(metrics_text);
  std::lock_guard<std::mutex> lock(mutex_);
  for (const PromFamily& family : families) {
    families_[family.name] = family.type;
    for (const PromSample& sample : family.samples) {
      const std::string key = sample.name + sample.labels;
      Series& series = series_[key];
      if (series.ring.empty()) {
        series.name = sample.name;
        series.labels = sample.labels;
        series.ring.reserve(16);
      }
      if (series.ring.size() < capacity_ && !series.full) {
        series.ring.emplace_back(unix_seconds, sample.value);
        if (series.ring.size() == capacity_) series.full = true;
      } else {
        series.ring[series.next] = {unix_seconds, sample.value};
        series.full = true;
      }
      if (series.full) series.next = (series.next + 1) % capacity_;
    }
  }
}

std::string MetricsHistory::QueryJson(std::string_view metric,
                                      uint64_t window_seconds) const {
  const uint64_t window =
      std::min<uint64_t>(window_seconds == 0 ? options_.window_seconds
                                             : window_seconds,
                         options_.window_seconds);
  std::lock_guard<std::mutex> lock(mutex_);

  // Matching series: exact name, or the histogram expansion of `metric`.
  const std::string bucket = std::string(metric) + "_bucket";
  const std::string sum = std::string(metric) + "_sum";
  const std::string count = std::string(metric) + "_count";
  std::vector<const Series*> matched;
  uint64_t newest = 0;
  for (const auto& [key, series] : series_) {
    if (series.name == metric || series.name == bucket ||
        series.name == sum || series.name == count) {
      matched.push_back(&series);
      for (const auto& [stamp, value] : series.ring) {
        (void)value;
        newest = std::max(newest, stamp);
      }
    }
  }
  const uint64_t cutoff = newest >= window ? newest - window + 1 : 0;

  JsonWriter json;
  json.BeginObject();
  json.Key("metric").String(metric);
  json.Key("window_seconds").Uint(window);
  json.Key("interval_ms").Uint(options_.interval_ms);
  json.Key("series").BeginArray();
  for (const Series* series : matched) {
    // Chronological order: the ring's oldest entry first.
    std::vector<std::pair<uint64_t, double>> points;
    points.reserve(series->ring.size());
    const size_t n = series->ring.size();
    const size_t start = series->full ? series->next : 0;
    for (size_t i = 0; i < n; ++i) {
      const auto& point = series->ring[(start + i) % n];
      if (point.first >= cutoff) points.push_back(point);
    }
    if (points.empty()) continue;
    json.BeginObject();
    json.Key("name").String(series->name);
    json.Key("labels").String(series->labels);
    json.Key("points").BeginArray();
    for (const auto& [stamp, value] : points) {
      json.BeginArray();
      json.Uint(stamp);
      json.Double(value);
      json.EndArray();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

std::string MetricsHistory::ListJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonWriter json;
  json.BeginObject();
  json.Key("window_seconds").Uint(options_.window_seconds);
  json.Key("interval_ms").Uint(options_.interval_ms);
  json.Key("metrics").BeginArray();
  for (const auto& [name, type] : families_) {
    json.BeginObject();
    json.Key("name").String(name);
    json.Key("type").String(type);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

size_t MetricsHistory::series_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return series_.size();
}

void MetricsSampler::Start() {
  if (!stop_.load(std::memory_order_acquire)) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
}

void MetricsSampler::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void MetricsSampler::Loop() {
  const auto interval =
      std::chrono::milliseconds(history_->options().interval_ms);
  auto next = std::chrono::steady_clock::now();
  while (!stop_.load(std::memory_order_acquire)) {
    const uint64_t unix_seconds = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    history_->Record(provider_(), unix_seconds);
    samples_taken_.fetch_add(1, std::memory_order_relaxed);
    next += interval;
    // Sleep in short slices so Stop() is prompt even at long intervals.
    while (!stop_.load(std::memory_order_acquire) &&
           std::chrono::steady_clock::now() < next) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
}

}  // namespace simrank
