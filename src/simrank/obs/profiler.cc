#include "simrank/obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "simrank/common/json_writer.h"
#include "simrank/common/string_util.h"
#include "simrank/obs/log_sink.h"

#if defined(__linux__)
#include <cxxabi.h>
#include <dlfcn.h>
#include <elf.h>
#include <fcntl.h>
#include <link.h>
#include <pthread.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>
#endif

namespace simrank {

#if defined(__linux__)

// Older glibc spells the SIGEV_THREAD_ID target field through the union.
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif

namespace {

constexpr uint32_t kMaxFrames = 32;
constexpr uint32_t kRingCapacity = 2048;

struct RawSample {
  uint32_t depth;
  uintptr_t pc[kMaxFrames];
};

/// Per-registered-thread state. Stable address (held by unique_ptr in the
/// registry); the owning thread's TLS slot and the signal handler point at
/// it. The ring is allocated when the thread first participates in a
/// session and reused afterwards — it is never freed while the process
/// lives, which is what makes the handler's unsynchronized access safe.
struct ThreadState {
  int64_t tid = 0;
  char name[32] = {};
  uintptr_t stack_lo = 0;
  uintptr_t stack_hi = 0;

  // Written by the signal handler, read offline after disarming.
  std::atomic<uint64_t> head{0};  // total captures; slot = head % capacity
  std::atomic<RawSample*> ring{nullptr};
  std::atomic<bool> armed{false};
  std::unique_ptr<RawSample[]> ring_storage;

  timer_t timer{};
  bool timer_created = false;
};

__thread ThreadState* tls_thread_state = nullptr;

/// One-shot capture slot for CaptureThreadStack. The requesting thread
/// holds the registry mutex for the whole exchange, so there is at most
/// one outstanding request.
struct CaptureSlot {
  std::atomic<int64_t> target_tid{0};
  std::atomic<bool> done{false};
  RawSample sample;
};
CaptureSlot g_capture;

/// Async-signal-safe frame-pointer walk. Leaf PC and starting frame come
/// from the interrupted context; every dereferenced frame pointer is
/// bounds-checked against the thread's stack and forced to grow, so a
/// broken chain terminates the walk instead of faulting.
void CaptureBacktrace(void* ucontext_void, const ThreadState& state,
                      RawSample* out) {
  out->depth = 0;
  uintptr_t pc = 0;
  uintptr_t fp = 0;
#if defined(__x86_64__)
  const ucontext_t* uc = static_cast<const ucontext_t*>(ucontext_void);
  pc = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
#elif defined(__aarch64__)
  const ucontext_t* uc = static_cast<const ucontext_t*>(ucontext_void);
  pc = static_cast<uintptr_t>(uc->uc_mcontext.pc);
  fp = static_cast<uintptr_t>(uc->uc_mcontext.regs[29]);
#else
  (void)ucontext_void;
  pc = reinterpret_cast<uintptr_t>(__builtin_return_address(0));
  fp = reinterpret_cast<uintptr_t>(__builtin_frame_address(0));
#endif
  if (pc != 0) out->pc[out->depth++] = pc;
  while (out->depth < kMaxFrames) {
    if (fp < state.stack_lo || fp + 2 * sizeof(uintptr_t) > state.stack_hi ||
        (fp & (sizeof(uintptr_t) - 1)) != 0) {
      break;
    }
    const uintptr_t* frame = reinterpret_cast<const uintptr_t*>(fp);
    const uintptr_t ret = frame[1];
    const uintptr_t next_fp = frame[0];
    if (ret < 4096) break;
    out->pc[out->depth++] = ret;
    if (next_fp <= fp) break;
    fp = next_fp;
  }
}

void ProfilerSignalHandler(int /*signo*/, siginfo_t* /*info*/,
                           void* ucontext) {
  const int saved_errno = errno;
  ThreadState* state = tls_thread_state;
  if (state != nullptr) {
    if (g_capture.target_tid.load(std::memory_order_acquire) == state->tid) {
      CaptureBacktrace(ucontext, *state, &g_capture.sample);
      g_capture.target_tid.store(0, std::memory_order_release);
      g_capture.done.store(true, std::memory_order_release);
    } else if (state->armed.load(std::memory_order_acquire)) {
      RawSample* ring = state->ring.load(std::memory_order_acquire);
      if (ring != nullptr) {
        const uint64_t slot =
            state->head.load(std::memory_order_relaxed) % kRingCapacity;
        CaptureBacktrace(ucontext, *state, &ring[slot]);
        state->head.fetch_add(1, std::memory_order_release);
      }
    }
  }
  errno = saved_errno;
}

void InstallHandlerOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction action = {};
    action.sa_sigaction = &ProfilerSignalHandler;
    action.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&action.sa_mask);
    ::sigaction(SIGPROF, &action, nullptr);
  });
}

/// Registry of registered threads plus the single-session state. A plain
/// namespace-scope singleton (leaked on exit) so worker threads may still
/// unregister during static destruction.
struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadState>> live;
  // Threads that unregistered mid-session; their samples are folded into
  // the session report, then the states are dropped.
  std::vector<std::unique_ptr<ThreadState>> retired;
  bool session_active = false;
  uint32_t session_hz = 0;
  std::chrono::steady_clock::time_point session_start;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

void ArmThread(ThreadState* state, uint32_t hz) {
  if (state->ring_storage == nullptr) {
    state->ring_storage = std::make_unique<RawSample[]>(kRingCapacity);
  }
  state->head.store(0, std::memory_order_relaxed);
  state->ring.store(state->ring_storage.get(), std::memory_order_release);

  struct sigevent event = {};
  event.sigev_notify = SIGEV_THREAD_ID;
  event.sigev_signo = SIGPROF;
  event.sigev_notify_thread_id = static_cast<pid_t>(state->tid);
  // CLOCK_THREAD_CPUTIME_ID names the *calling* thread's CPU clock, but
  // timers are armed centrally from the session starter; the target
  // thread's clock needs the kernel's per-thread encoding (the same
  // computation pthread_getcpuclockid does): ~tid in the high bits,
  // CPUCLOCK_SCHED | CPUCLOCK_PERTHREAD_MASK in the low three.
  const clockid_t thread_clock = static_cast<clockid_t>(
      (~static_cast<clockid_t>(state->tid) << 3) | 6);
  if (::timer_create(thread_clock, &event, &state->timer) != 0) {
    return;
  }
  state->timer_created = true;
  state->armed.store(true, std::memory_order_release);

  const long interval_ns = static_cast<long>(1000000000ll / hz);
  struct itimerspec spec = {};
  spec.it_interval.tv_sec = 0;
  spec.it_interval.tv_nsec = interval_ns;
  spec.it_value = spec.it_interval;
  ::timer_settime(state->timer, 0, &spec, nullptr);
}

void DisarmThread(ThreadState* state) {
  state->armed.store(false, std::memory_order_release);
  if (state->timer_created) {
    ::timer_delete(state->timer);
    state->timer_created = false;
  }
}

/// Function symbols of the main executable, read from its .symtab.
/// dladdr only sees .dynsym, so every internal-linkage function (anonymous
/// namespaces, statics — most of the serving hot path) would otherwise
/// degrade to "binary+0xoffset" and break profile attribution. Built
/// lazily on the first offline symbolization, never in the handler.
class ExeSymbolTable {
 public:
  static const ExeSymbolTable& Instance() {
    static const ExeSymbolTable* table = new ExeSymbolTable();
    return *table;
  }

  /// Mangled name of the function covering runtime address `pc`, or
  /// nullptr when pc is outside the executable or between functions.
  const char* Lookup(uintptr_t pc) const {
    if (funcs_.empty() || pc < text_lo_ || pc >= text_hi_) return nullptr;
    const uintptr_t vaddr = pc - bias_;
    auto it = std::upper_bound(
        funcs_.begin(), funcs_.end(), vaddr,
        [](uintptr_t v, const Func& f) { return v < f.addr; });
    if (it == funcs_.begin()) return nullptr;
    --it;
    if (it->size != 0 && vaddr >= it->addr + it->size) return nullptr;
    return it->name.c_str();
  }

 private:
  struct Func {
    uintptr_t addr;
    uintptr_t size;
    std::string name;
  };

  static int CollectMainPhdrs(struct dl_phdr_info* info, size_t /*size*/,
                              void* data) {
    auto* self = static_cast<ExeSymbolTable*>(data);
    self->bias_ = info->dlpi_addr;
    for (int i = 0; i < info->dlpi_phnum; ++i) {
      const auto& phdr = info->dlpi_phdr[i];
      if (phdr.p_type != PT_LOAD || (phdr.p_flags & PF_X) == 0) continue;
      const uintptr_t lo = info->dlpi_addr + phdr.p_vaddr;
      self->text_lo_ = self->text_lo_ == 0 ? lo : std::min(self->text_lo_, lo);
      self->text_hi_ = std::max(self->text_hi_, lo + phdr.p_memsz);
    }
    return 1;  // the first entry is the main program; stop
  }

  ExeSymbolTable() {
    ::dl_iterate_phdr(&CollectMainPhdrs, this);
    const int fd = ::open("/proc/self/exe", O_RDONLY | O_CLOEXEC);
    if (fd < 0) return;
    struct stat st = {};
    if (::fstat(fd, &st) != 0 || st.st_size < static_cast<off_t>(sizeof(Elf64_Ehdr))) {
      ::close(fd);
      return;
    }
    const size_t len = static_cast<size_t>(st.st_size);
    void* map = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED) return;
    const auto* bytes = static_cast<const unsigned char*>(map);
    const auto* ehdr = reinterpret_cast<const Elf64_Ehdr*>(bytes);
    if (std::memcmp(ehdr->e_ident, ELFMAG, SELFMAG) == 0 &&
        ehdr->e_ident[EI_CLASS] == ELFCLASS64 &&
        ehdr->e_shoff + static_cast<uint64_t>(ehdr->e_shnum) *
                sizeof(Elf64_Shdr) <= len) {
      const auto* shdrs =
          reinterpret_cast<const Elf64_Shdr*>(bytes + ehdr->e_shoff);
      for (uint16_t s = 0; s < ehdr->e_shnum; ++s) {
        if (shdrs[s].sh_type != SHT_SYMTAB) continue;
        if (shdrs[s].sh_link >= ehdr->e_shnum) continue;
        const Elf64_Shdr& strtab = shdrs[shdrs[s].sh_link];
        if (shdrs[s].sh_offset + shdrs[s].sh_size > len ||
            strtab.sh_offset + strtab.sh_size > len) {
          continue;
        }
        const auto* syms =
            reinterpret_cast<const Elf64_Sym*>(bytes + shdrs[s].sh_offset);
        const char* names =
            reinterpret_cast<const char*>(bytes + strtab.sh_offset);
        const uint64_t count = shdrs[s].sh_size / sizeof(Elf64_Sym);
        for (uint64_t i = 0; i < count; ++i) {
          if (ELF64_ST_TYPE(syms[i].st_info) != STT_FUNC) continue;
          if (syms[i].st_value == 0 || syms[i].st_name == 0) continue;
          if (syms[i].st_name >= strtab.sh_size) continue;
          funcs_.push_back(Func{static_cast<uintptr_t>(syms[i].st_value),
                                static_cast<uintptr_t>(syms[i].st_size),
                                std::string(names + syms[i].st_name)});
        }
      }
      std::sort(funcs_.begin(), funcs_.end(),
                [](const Func& a, const Func& b) { return a.addr < b.addr; });
    }
    ::munmap(map, len);
  }

  std::vector<Func> funcs_;
  uintptr_t bias_ = 0;
  uintptr_t text_lo_ = 0;
  uintptr_t text_hi_ = 0;
};

/// dladdr + demangle with a per-report cache. Non-leaf PCs are return
/// addresses, so they are nudged back one byte to land inside the call.
std::string SymbolizePc(uintptr_t pc, bool leaf,
                        std::unordered_map<uintptr_t, std::string>* cache) {
  const uintptr_t addr = leaf ? pc : pc - 1;
  auto it = cache->find(addr);
  if (it != cache->end()) return it->second;

  std::string name;
  Dl_info info = {};
  const bool have_dl = ::dladdr(reinterpret_cast<void*>(addr), &info) != 0;
  const char* mangled =
      have_dl && info.dli_sname != nullptr ? info.dli_sname : nullptr;
  // Internal-linkage functions are invisible to dladdr; the executable's
  // own .symtab covers them.
  if (mangled == nullptr) mangled = ExeSymbolTable::Instance().Lookup(addr);
  if (mangled != nullptr) {
    int demangle_status = 0;
    char* demangled = abi::__cxa_demangle(mangled, nullptr, nullptr,
                                          &demangle_status);
    if (demangle_status == 0 && demangled != nullptr) {
      name.assign(demangled);
    } else {
      name.assign(mangled);
    }
    std::free(demangled);
  } else if (have_dl && info.dli_fname != nullptr &&
             info.dli_fbase != nullptr) {
    const char* base = std::strrchr(info.dli_fname, '/');
    name = StrFormat(
        "%s+0x%llx", base != nullptr ? base + 1 : info.dli_fname,
        static_cast<unsigned long long>(
            addr - reinterpret_cast<uintptr_t>(info.dli_fbase)));
  } else {
    name = "[unknown]";
  }
  // Collapsed-stack format reserves ';' as the frame separator.
  std::replace(name.begin(), name.end(), ';', ':');
  (*cache)[addr] = name;
  return name;
}

/// Renders one raw stack as "thread;outer;...;leaf" (capture order is
/// leaf-first, so frames are emitted in reverse).
std::string RenderStack(const char* thread_name, const RawSample& sample,
                        std::unordered_map<uintptr_t, std::string>* cache) {
  std::string line(thread_name);
  for (uint32_t i = sample.depth; i > 0; --i) {
    line.push_back(';');
    line += SymbolizePc(sample.pc[i - 1], /*leaf=*/i == 1, cache);
  }
  return line;
}

/// Folds one thread's ring into the per-stack counts.
void CollectThread(const ThreadState& state,
                   std::map<std::string, uint64_t>* stacks,
                   std::unordered_map<uintptr_t, std::string>* cache,
                   uint64_t* total, uint64_t* dropped) {
  const RawSample* ring = state.ring.load(std::memory_order_acquire);
  if (ring == nullptr) return;
  const uint64_t head = state.head.load(std::memory_order_acquire);
  const uint64_t available = std::min<uint64_t>(head, kRingCapacity);
  *total += head;
  *dropped += head - available;
  const uint64_t begin = head - available;
  for (uint64_t i = begin; i < head; ++i) {
    const RawSample& sample = ring[i % kRingCapacity];
    if (sample.depth == 0) continue;
    ++(*stacks)[RenderStack(state.name, sample, cache)];
  }
}

}  // namespace

int64_t CurrentTid() {
  return static_cast<int64_t>(::syscall(SYS_gettid));
}

CpuProfiler& CpuProfiler::Instance() {
  static CpuProfiler* instance = new CpuProfiler();
  return *instance;
}

void CpuProfiler::RegisterCurrentThread(const char* name) {
  if (tls_thread_state != nullptr) return;
  auto state = std::make_unique<ThreadState>();
  state->tid = CurrentTid();
  std::strncpy(state->name, name, sizeof(state->name) - 1);
  pthread_attr_t attr;
  if (::pthread_getattr_np(::pthread_self(), &attr) == 0) {
    void* stack_addr = nullptr;
    size_t stack_size = 0;
    if (::pthread_attr_getstack(&attr, &stack_addr, &stack_size) == 0) {
      state->stack_lo = reinterpret_cast<uintptr_t>(stack_addr);
      state->stack_hi = state->stack_lo + stack_size;
    }
    ::pthread_attr_destroy(&attr);
  }
  InstallHandlerOnce();

  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  tls_thread_state = state.get();
  if (registry.session_active) {
    ArmThread(state.get(), registry.session_hz);
  }
  registry.live.push_back(std::move(state));
}

void CpuProfiler::UnregisterCurrentThread() {
  ThreadState* state = tls_thread_state;
  if (state == nullptr) return;
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  tls_thread_state = nullptr;
  DisarmThread(state);
  auto it = std::find_if(
      registry.live.begin(), registry.live.end(),
      [state](const std::unique_ptr<ThreadState>& s) { return s.get() == state; });
  if (it == registry.live.end()) return;
  if (registry.session_active) {
    // Keep the samples for the session's Stop().
    registry.retired.push_back(std::move(*it));
  }
  registry.live.erase(it);
}

Status CpuProfiler::Start(uint32_t frequency_hz) {
  if (frequency_hz == 0 || frequency_hz > kMaxHz) {
    return Status::InvalidArgument(
        StrFormat("profile frequency must be in [1, %u] Hz", kMaxHz));
  }
  InstallHandlerOnce();
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  if (registry.session_active) {
    return Status::InvalidArgument("a profiling session is already running");
  }
  registry.retired.clear();
  registry.session_active = true;
  registry.session_hz = frequency_hz;
  registry.session_start = std::chrono::steady_clock::now();
  for (auto& state : registry.live) {
    ArmThread(state.get(), frequency_hz);
  }
  session_active_.store(true, std::memory_order_release);
  return Status::OK();
}

ProfileReport CpuProfiler::Stop() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  ProfileReport report;
  if (!registry.session_active) return report;
  for (auto& state : registry.live) {
    DisarmThread(state.get());
    ++report.armed_threads;
  }
  report.armed_threads += static_cast<uint32_t>(registry.retired.size());
  // A signal already past the armed check may still be completing; give it
  // a moment before reading the rings. Rings are never freed, so even a
  // straggler past this grace period writes into valid (merely ignored)
  // memory.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));

  report.duration_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    registry.session_start)
          .count();
  report.frequency_hz = registry.session_hz;

  std::map<std::string, uint64_t> stacks;
  std::unordered_map<uintptr_t, std::string> cache;
  for (const auto& state : registry.live) {
    CollectThread(*state, &stacks, &cache, &report.total_samples,
                  &report.dropped_samples);
  }
  for (const auto& state : registry.retired) {
    CollectThread(*state, &stacks, &cache, &report.total_samples,
                  &report.dropped_samples);
  }
  registry.retired.clear();
  registry.session_active = false;
  session_active_.store(false, std::memory_order_release);

  // Highest count first; ties resolved lexically for a stable report.
  std::vector<std::pair<uint64_t, const std::string*>> ordered;
  ordered.reserve(stacks.size());
  for (const auto& [line, count] : stacks) {
    ordered.emplace_back(count, &line);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return *a.second < *b.second;
            });
  for (const auto& [count, line] : ordered) {
    report.collapsed += *line;
    report.collapsed += ' ';
    report.collapsed += StrFormat("%llu", static_cast<unsigned long long>(count));
    report.collapsed += '\n';
  }
  return report;
}

Result<ProfileReport> CpuProfiler::ProfileFor(double seconds,
                                              uint32_t frequency_hz) {
  if (!(seconds > 0.0) || seconds > kMaxSeconds) {
    return Status::InvalidArgument(
        StrFormat("profile duration must be in (0, %.0f] seconds",
                  kMaxSeconds));
  }
  OIPSIM_RETURN_IF_ERROR(Start(frequency_hz));
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  return Stop();
}

std::string CpuProfiler::CaptureThreadStack(int64_t tid) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  const ThreadState* state = nullptr;
  for (const auto& candidate : registry.live) {
    if (candidate->tid == tid) {
      state = candidate.get();
      break;
    }
  }
  if (state == nullptr) return "";
  InstallHandlerOnce();
  g_capture.done.store(false, std::memory_order_release);
  g_capture.sample.depth = 0;
  g_capture.target_tid.store(tid, std::memory_order_release);
  if (::syscall(SYS_tgkill, ::getpid(), static_cast<pid_t>(tid), SIGPROF) !=
      0) {
    g_capture.target_tid.store(0, std::memory_order_release);
    return "";
  }
  // The mutex is held across the wait, so no other request can race for
  // the capture slot; the target cannot unregister (it would block on the
  // mutex), keeping its state alive.
  for (int i = 0; i < 200; ++i) {
    if (g_capture.done.load(std::memory_order_acquire)) break;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  if (!g_capture.done.load(std::memory_order_acquire)) {
    g_capture.target_tid.store(0, std::memory_order_release);
    return "";
  }
  std::unordered_map<uintptr_t, std::string> cache;
  return RenderStack(state->name, g_capture.sample, &cache);
}

#else  // !__linux__

int64_t CurrentTid() { return 0; }

CpuProfiler& CpuProfiler::Instance() {
  static CpuProfiler* instance = new CpuProfiler();
  return *instance;
}

void CpuProfiler::RegisterCurrentThread(const char* /*name*/) {}
void CpuProfiler::UnregisterCurrentThread() {}

Status CpuProfiler::Start(uint32_t /*frequency_hz*/) {
  return Status::Unimplemented("sampling profiler requires Linux");
}

ProfileReport CpuProfiler::Stop() { return ProfileReport{}; }

Result<ProfileReport> CpuProfiler::ProfileFor(double /*seconds*/,
                                              uint32_t /*frequency_hz*/) {
  return Status::Unimplemented("sampling profiler requires Linux");
}

std::string CpuProfiler::CaptureThreadStack(int64_t /*tid*/) { return ""; }

#endif  // __linux__

// ---------------------------------------------------------------------------
// ProfileLogger

Result<std::unique_ptr<ProfileLogger>> ProfileLogger::Start(Options options) {
  if (options.frequency_hz == 0 ||
      options.frequency_hz > CpuProfiler::kMaxHz) {
    return Status::InvalidArgument("profile-log frequency out of range");
  }
  if (options.period_seconds == 0) {
    return Status::InvalidArgument("profile-log period must be positive");
  }
  if (!(options.duty_cycle > 0.0) || options.duty_cycle > 1.0) {
    return Status::InvalidArgument("profile-log duty cycle must be in (0, 1]");
  }
  auto sink = JsonlLogSink::Open(options.path);
  OIPSIM_RETURN_IF_ERROR(sink.status());
  std::unique_ptr<ProfileLogger> logger(new ProfileLogger(std::move(options)));
  logger->sink_ = std::move(*sink);
  logger->thread_ = std::thread([raw = logger.get()] { raw->Loop(); });
  return logger;
}

ProfileLogger::ProfileLogger(Options options) : options_(std::move(options)) {}

ProfileLogger::~ProfileLogger() { Stop(); }

void ProfileLogger::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (sink_ != nullptr) sink_->Flush();
}

void ProfileLogger::Loop() {
  const double sample_seconds =
      static_cast<double>(options_.period_seconds) * options_.duty_cycle;
  while (!stop_.load(std::memory_order_acquire)) {
    const auto period_start = std::chrono::steady_clock::now();
    // An on-demand session owns the profiler for this period; skip it.
    auto profiled =
        CpuProfiler::Instance().ProfileFor(sample_seconds,
                                           options_.frequency_hz);
    if (profiled.ok()) {
      const ProfileReport& report = *profiled;
      const uint64_t unix_micros = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count());
      JsonWriter json;
      json.BeginObject();
      json.Key("unix_micros").Uint(unix_micros);
      json.Key("duration_seconds").Double(report.duration_seconds);
      json.Key("frequency_hz").Uint(report.frequency_hz);
      json.Key("samples").Uint(report.total_samples);
      json.Key("dropped").Uint(report.dropped_samples);
      json.Key("threads").Uint(report.armed_threads);
      json.Key("collapsed").String(report.collapsed);
      json.EndObject();
      sink_->Append(json.str());
      profiles_written_.fetch_add(1, std::memory_order_relaxed);
    }
    const auto period_end =
        period_start + std::chrono::seconds(options_.period_seconds);
    while (!stop_.load(std::memory_order_acquire) &&
           std::chrono::steady_clock::now() < period_end) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
}

}  // namespace simrank
