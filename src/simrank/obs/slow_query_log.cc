#include "simrank/obs/slow_query_log.h"

#include <utility>

namespace simrank {

void SlowQueryLog::Record(SlowQueryEntry entry) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(entry));
    return;
  }
  ring_[next_] = std::move(entry);
  next_ = (next_ + 1) % capacity_;
}

std::vector<SlowQueryEntry> SlowQueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SlowQueryEntry> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

uint64_t SlowQueryLog::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

}  // namespace simrank
