// Fixed-size ring of the slowest / sampled recent queries.
//
// Dapper-style capture: requests that cross a latency threshold (or win a
// probabilistic sample) deposit their full trace JSON here, so `GET
// /v1/debug/slow` can answer "what were the last N slow queries doing,
// stage by stage" without any external collector. The ring is
// mutex-guarded — it is touched once per *captured* request, never on the
// per-request fast path — and overwrites oldest-first.
#ifndef OIPSIM_SIMRANK_OBS_SLOW_QUERY_LOG_H_
#define OIPSIM_SIMRANK_OBS_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace simrank {

struct SlowQueryEntry {
  uint64_t unix_micros = 0;      // wall clock at completion
  uint64_t duration_micros = 0;  // end-to-end request latency
  uint64_t trace_id = 0;
  std::string target;      // request path + query string
  std::string trace_json;  // TraceRecorder::ToJson() output
};

class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity) : capacity_(capacity) {}

  /// Deposits one entry, evicting the oldest when full. No-op when the
  /// log was configured with zero capacity.
  void Record(SlowQueryEntry entry);

  /// Entries oldest-first.
  std::vector<SlowQueryEntry> Snapshot() const;

  /// Total entries ever recorded (including evicted ones).
  uint64_t total_recorded() const;

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<SlowQueryEntry> ring_;  // ring_[next_] is the oldest
  size_t next_ = 0;
  uint64_t total_ = 0;
};

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_OBS_SLOW_QUERY_LOG_H_
