// Event-loop & worker-pool watchdog.
//
// The watched loop (the server's epoll loop) calls Beat() once per
// iteration — one relaxed atomic store. A monitor thread wakes every
// poll_interval_ms, measures heartbeat lag (now - last beat) and polls the
// worker queue depth. When lag crosses stall_threshold_us it logs one
// stack-annotated warning per stall episode to stderr, using
// CpuProfiler::CaptureThreadStack to name where the loop thread is stuck.
// Lag, high-water marks and stall counts feed simrank_loop_lag_seconds /
// simrank_queue_depth and the /v1/stats watchdog block.
#ifndef OIPSIM_SIMRANK_OBS_WATCHDOG_H_
#define OIPSIM_SIMRANK_OBS_WATCHDOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>

#include "simrank/common/macros.h"

namespace simrank {

struct WatchdogOptions {
  /// Monitor wake-up period. The watched loop must beat at least this
  /// often when idle (cap its poll timeout accordingly).
  uint32_t poll_interval_ms = 100;
  /// Heartbeat lag that counts as a stall and triggers a warning.
  uint64_t stall_threshold_us = 1000000;
  /// Label used in warnings, e.g. "epoll-loop".
  const char* name = "loop";
};

class Watchdog {
 public:
  explicit Watchdog(WatchdogOptions options = WatchdogOptions{})
      : options_(options) {}
  ~Watchdog() { Stop(); }

  /// Replaces the options; only valid while stopped.
  void set_options(const WatchdogOptions& options) { options_ = options; }

  OIPSIM_DISALLOW_COPY_AND_ASSIGN(Watchdog);

  /// Called by the watched loop every iteration. Wait-free.
  void Beat();

  /// Kernel tid of the watched loop thread, for stall stack annotation;
  /// call from that thread with CurrentTid() before Start().
  void SetWatchedTid(int64_t tid) {
    watched_tid_.store(tid, std::memory_order_release);
  }

  /// Optional worker-queue depth, polled once per monitor tick.
  void SetQueueDepthProvider(std::function<uint64_t()> provider) {
    queue_depth_provider_ = std::move(provider);
  }

  void Start();
  void Stop();

  struct Snapshot {
    uint64_t loop_lag_us = 0;      // now - last beat
    uint64_t max_loop_lag_us = 0;  // high-water since Start
    uint64_t queue_depth = 0;      // last polled
    uint64_t max_queue_depth = 0;
    uint64_t stalls = 0;           // threshold crossings (one per episode)
    uint64_t last_stall_us = 0;    // worst lag of the latest stall
  };
  Snapshot snapshot() const;

  const WatchdogOptions& options() const { return options_; }

 private:
  void Loop();
  uint64_t CurrentLagMicros() const;

  WatchdogOptions options_;
  std::atomic<uint64_t> last_beat_ns_{0};
  std::atomic<int64_t> watched_tid_{0};
  std::function<uint64_t()> queue_depth_provider_;

  std::atomic<uint64_t> max_lag_us_{0};
  std::atomic<uint64_t> queue_depth_{0};
  std::atomic<uint64_t> max_queue_depth_{0};
  std::atomic<uint64_t> stalls_{0};
  std::atomic<uint64_t> last_stall_us_{0};
  bool in_stall_ = false;  // monitor thread only
  uint64_t stall_peak_us_ = 0;

  std::atomic<bool> stop_{true};
  std::thread thread_;
};

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_OBS_WATCHDOG_H_
