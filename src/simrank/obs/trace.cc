#include "simrank/obs/trace.h"

#include <time.h>

#include <atomic>
#include <random>

#include "simrank/common/json_writer.h"
#include "simrank/common/macros.h"
#include "simrank/common/string_util.h"

namespace simrank {

namespace internal {
thread_local TraceRecorder* tls_trace_recorder = nullptr;
}  // namespace internal

const char* TraceStageName(TraceStage stage) {
  switch (stage) {
    case TraceStage::kRequest:
      return "request";
    case TraceStage::kQueueWait:
      return "queue_wait";
    case TraceStage::kCacheLookup:
      return "cache_lookup";
    case TraceStage::kIndexProbe:
      return "index_probe";
    case TraceStage::kColdRead:
      return "cold_read";
    case TraceStage::kDecode:
      return "decode";
    case TraceStage::kAccumulate:
      return "accumulate";
    case TraceStage::kOverlayMerge:
      return "overlay_merge";
    case TraceStage::kSerialize:
      return "serialize";
    case TraceStage::kRowFetch:
      return "row_fetch";
    case TraceStage::kShardExchange:
      return "shard_exchange";
    case TraceStage::kMerge:
      return "merge";
    case TraceStage::kNumStages:
      break;
  }
  return "unknown";
}

const char* TraceCounterName(TraceCounter counter) {
  switch (counter) {
    case TraceCounter::kCacheHits:
      return "cache_hits";
    case TraceCounter::kCacheMisses:
      return "cache_misses";
    case TraceCounter::kRowsDecoded:
      return "rows_decoded";
    case TraceCounter::kBytesRead:
      return "bytes_read";
    case TraceCounter::kSlotsProbed:
      return "slots_probed";
    case TraceCounter::kBucketEntries:
      return "bucket_entries";
    case TraceCounter::kOverlayRowsMerged:
      return "overlay_rows_merged";
    case TraceCounter::kShardsContacted:
      return "shards_contacted";
    case TraceCounter::kConflictRetries:
      return "conflict_retries";
    case TraceCounter::kNumCounters:
      break;
  }
  return "unknown";
}

uint64_t TraceNowNanos() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t GenerateTraceId() {
  static const uint64_t seed = [] {
    std::random_device device;
    return (static_cast<uint64_t>(device()) << 32) ^ device();
  }();
  static std::atomic<uint64_t> counter{1};
  uint64_t id = 0;
  while (id == 0) {
    id = SplitMix64(seed ^ counter.fetch_add(1, std::memory_order_relaxed));
  }
  return id;
}

std::string TraceIdToHex(uint64_t id) {
  static const char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[id & 0xf];
    id >>= 4;
  }
  return out;
}

bool ParseTraceId(std::string_view text, uint64_t* id) {
  if (text.empty() || text.size() > 16) return false;
  uint64_t value = 0;
  for (char c : text) {
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<uint64_t>(c - 'A') + 10;
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  if (value == 0) return false;
  *id = value;
  return true;
}

namespace {

void CopyDetail(std::string_view detail, char* out) {
  const size_t n =
      detail.size() < TraceSpan::kDetailCapacity - 1
          ? detail.size()
          : static_cast<size_t>(TraceSpan::kDetailCapacity - 1);
  std::memcpy(out, detail.data(), n);
  out[n] = '\0';
}

}  // namespace

int TraceRecorder::OpenSpan(TraceStage stage, std::string_view detail) {
  if (num_spans_ >= kMaxSpans || open_depth_ >= kMaxOpenDepth) {
    ++dropped_spans_;
    return -1;
  }
  const uint64_t now = TraceNowNanos();
  if (num_spans_ == 0) base_ns_ = now;
  const int index = static_cast<int>(num_spans_++);
  TraceSpan& span = spans_[index];
  span.stage = stage;
  span.parent =
      open_depth_ > 0 ? open_stack_[open_depth_ - 1] : int16_t{-1};
  span.start_ns = now - base_ns_;
  span.duration_ns = 0;
  if (!detail.empty()) CopyDetail(detail, span.detail);
  open_stack_[open_depth_++] = static_cast<int16_t>(index);
  return index;
}

void TraceRecorder::CloseSpan(int index) {
  if (index < 0 || static_cast<uint32_t>(index) >= num_spans_) return;
  TraceSpan& span = spans_[index];
  const uint64_t now = TraceNowNanos();
  const uint64_t absolute_start = base_ns_ + span.start_ns;
  span.duration_ns = now > absolute_start ? now - absolute_start : 0;
  // Pop through the open stack until this span is gone; scopes close
  // LIFO, so normally this pops exactly one entry.
  while (open_depth_ > 0 &&
         open_stack_[open_depth_ - 1] != static_cast<int16_t>(index)) {
    --open_depth_;
  }
  if (open_depth_ > 0) --open_depth_;
}

void TraceRecorder::AddCompletedSpan(TraceStage stage, uint64_t start_ns,
                                     uint64_t duration_ns,
                                     std::string_view detail) {
  if (num_spans_ >= kMaxSpans) {
    ++dropped_spans_;
    return;
  }
  if (num_spans_ == 0) base_ns_ = start_ns;
  TraceSpan& span = spans_[num_spans_++];
  span.stage = stage;
  span.parent =
      open_depth_ > 0 ? open_stack_[open_depth_ - 1] : int16_t{-1};
  span.start_ns = start_ns > base_ns_ ? start_ns - base_ns_ : 0;
  span.duration_ns = duration_ns;
  if (!detail.empty()) CopyDetail(detail, span.detail);
}

void TraceRecorder::AddChildTrace(std::string json) {
  // Only accept something shaped like a single-line JSON object; a
  // malformed child would corrupt the merged document.
  if (json.empty() || json.front() != '{' || json.back() != '}' ||
      json.find('\n') != std::string::npos) {
    return;
  }
  children_.push_back(std::move(json));
}

std::string TraceRecorder::ToJson() const {
  std::string out;
  out.reserve(256 + 96 * num_spans_);
  out += "{\"trace_id\":\"";
  out += TraceIdToHex(trace_id_);
  out += "\",\"spans\":[";
  for (uint32_t i = 0; i < num_spans_; ++i) {
    const TraceSpan& span = spans_[i];
    if (i > 0) out += ',';
    out += "{\"stage\":\"";
    out += TraceStageName(span.stage);
    out += "\",\"parent\":";
    out += StrFormat("%d", static_cast<int>(span.parent));
    out += ",\"start_ns\":";
    out += StrFormat("%llu", static_cast<unsigned long long>(span.start_ns));
    out += ",\"duration_ns\":";
    out +=
        StrFormat("%llu", static_cast<unsigned long long>(span.duration_ns));
    if (span.detail[0] != '\0') {
      out += ",\"detail\":\"";
      JsonEscape(span.detail, &out);
      out += '"';
    }
    out += '}';
  }
  out += "],\"counters\":{";
  bool first = true;
  for (uint32_t c = 0; c < kNumTraceCounters; ++c) {
    if (counters_[c] == 0) continue;
    if (!first) out += ',';
    first = false;
    out += '"';
    out += TraceCounterName(static_cast<TraceCounter>(c));
    out += "\":";
    out += StrFormat("%llu", static_cast<unsigned long long>(counters_[c]));
  }
  out += '}';
  if (dropped_spans_ > 0) {
    out += ",\"dropped_spans\":";
    out += StrFormat("%u", dropped_spans_);
  }
  if (!children_.empty()) {
    out += ",\"children\":[";
    for (size_t i = 0; i < children_.size(); ++i) {
      if (i > 0) out += ',';
      out += children_[i];
    }
    out += ']';
  }
  out += '}';
  return out;
}

}  // namespace simrank
