// Signal-based sampling CPU profiler: the serving binaries profile
// themselves.
//
// Long-lived threads register with the process-wide CpuProfiler (the epoll
// loop, ThreadPool workers, router connection threads). A profiling
// session arms one POSIX timer per registered thread —
// timer_create(CLOCK_THREAD_CPUTIME_ID) delivering SIGPROF via
// SIGEV_THREAD_ID — so each thread is sampled in proportion to the CPU it
// actually burns and idle threads cost nothing. The signal handler is
// async-signal-safe: it walks frame pointers within the thread's known
// stack bounds and appends raw PCs to a pre-allocated per-thread
// lock-free ring. Symbolization (dladdr + demangling) and aggregation
// into flamegraph collapsed-stack text happen offline at Stop().
//
// Disarmed cost is one thread-local pointer per registered thread and
// nothing on any request path; responses are byte-identical with a
// session armed or not (the profiler never touches request handling).
#ifndef OIPSIM_SIMRANK_OBS_PROFILER_H_
#define OIPSIM_SIMRANK_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "simrank/common/macros.h"
#include "simrank/common/status.h"

namespace simrank {

class JsonlLogSink;

/// Aggregated result of one profiling session.
struct ProfileReport {
  /// Flamegraph collapsed-stack text: one "thread;outer;...;leaf count"
  /// line per unique stack, highest count first.
  std::string collapsed;
  uint64_t total_samples = 0;
  /// Samples overwritten because a thread's ring wrapped.
  uint64_t dropped_samples = 0;
  /// Threads that had a timer armed during the session.
  uint32_t armed_threads = 0;
  double duration_seconds = 0.0;
  uint32_t frequency_hz = 0;
};

/// Process-wide profiler. All methods are thread-safe; at most one
/// session runs at a time (concurrent Start returns AlreadyExists-like
/// InvalidArgument so callers can answer 409).
class CpuProfiler {
 public:
  static constexpr uint32_t kDefaultHz = 97;   // co-prime with common tick rates
  static constexpr uint32_t kMaxHz = 1000;
  static constexpr double kMaxSeconds = 60.0;

  static CpuProfiler& Instance();

  /// Registers the calling thread for sampling. `name` becomes the root
  /// frame of its stacks (truncated to 31 chars). Re-registering the same
  /// thread is a no-op.
  void RegisterCurrentThread(const char* name);

  /// Removes the calling thread; its samples so far stay visible to the
  /// session's Stop(). Must be called before the thread exits if
  /// RegisterCurrentThread was.
  void UnregisterCurrentThread();

  /// Arms per-thread timers at `frequency_hz`. Fails when a session is
  /// already running.
  Status Start(uint32_t frequency_hz = kDefaultHz);

  /// Disarms, symbolizes and aggregates. Returns an empty report when no
  /// session was running.
  ProfileReport Stop();

  /// Blocking convenience: Start, sleep `seconds`, Stop.
  Result<ProfileReport> ProfileFor(double seconds,
                                   uint32_t frequency_hz = kDefaultHz);

  bool running() const { return session_active_.load(std::memory_order_acquire); }

  /// One-shot stack capture of a *registered* thread (the watchdog's
  /// stall annotation): signals `tid`, symbolizes its current stack into
  /// "thread;outer;...;leaf". Empty string when the thread is not
  /// registered or did not respond in time.
  std::string CaptureThreadStack(int64_t tid);

 private:
  CpuProfiler() = default;
  OIPSIM_DISALLOW_COPY_AND_ASSIGN(CpuProfiler);

  std::atomic<bool> session_active_{false};
};

/// RAII thread registration.
class ScopedProfiledThread {
 public:
  explicit ScopedProfiledThread(const char* name) {
    CpuProfiler::Instance().RegisterCurrentThread(name);
  }
  ~ScopedProfiledThread() { CpuProfiler::Instance().UnregisterCurrentThread(); }
  OIPSIM_DISALLOW_COPY_AND_ASSIGN(ScopedProfiledThread);
};

/// Kernel thread id of the calling thread (gettid); 0 where unsupported.
int64_t CurrentTid();

/// Continuous low-rate background profiling behind --profile-log: every
/// `period_seconds` it runs one CpuProfiler session at `frequency_hz` and
/// appends a JSON line {unix_micros, duration_seconds, frequency_hz,
/// samples, dropped, threads, collapsed} to `path`. Periods that lose the
/// profiler to an on-demand /v1/debug/profile session are skipped, not
/// queued.
class ProfileLogger {
 public:
  struct Options {
    std::string path;
    uint32_t frequency_hz = 19;
    uint32_t period_seconds = 60;
    /// Fraction of each period spent sampling, (0, 1].
    double duty_cycle = 1.0;
  };

  static Result<std::unique_ptr<ProfileLogger>> Start(Options options);
  ~ProfileLogger();

  void Stop();
  uint64_t profiles_written() const {
    return profiles_written_.load(std::memory_order_relaxed);
  }

 private:
  explicit ProfileLogger(Options options);
  OIPSIM_DISALLOW_COPY_AND_ASSIGN(ProfileLogger);

  void Loop();

  Options options_;
  std::unique_ptr<JsonlLogSink> sink_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> profiles_written_{0};
  std::thread thread_;
};

}  // namespace simrank

#endif  // OIPSIM_SIMRANK_OBS_PROFILER_H_
